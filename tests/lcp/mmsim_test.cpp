// MMSIM solver tests: cross-validation against Lemke (exact) on small
// structured QPs from the real model builder, parameter invariances, and
// the Sherman–Morrison closed form of the paper.
#include "lcp/mmsim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generator.h"
#include "lcp/lemke.h"
#include "legal/model.h"
#include "legal/row_assign.h"
#include "util/check.h"

namespace mch::lcp {
namespace {

/// A small legalization QP produced by the real pipeline.
struct SmallProblem {
  db::Design design;
  legal::LegalizationModel model;
};

SmallProblem make_problem(std::size_t singles, std::size_t doubles,
                          double density, std::uint64_t seed) {
  gen::GeneratorOptions opts;
  opts.seed = seed;
  opts.nets_per_cell = 0.0;  // no netlist needed here
  SmallProblem p{gen::generate_random_design(singles, doubles, density, opts),
                 {}};
  const legal::RowAssignment rows = legal::assign_rows(p.design);
  p.model = legal::build_model(p.design, rows);
  return p;
}

MmsimOptions tight() {
  MmsimOptions o;
  o.tolerance = 1e-10;
  o.max_iterations = 200000;
  return o;
}

TEST(MmsimTest, MatchesLemkeOnSmallSingleHeightProblem) {
  const SmallProblem p = make_problem(12, 0, 0.6, 7);
  const MmsimSolver solver(p.model.qp, tight());
  const MmsimResult mmsim = solver.solve();
  ASSERT_TRUE(mmsim.converged);

  const LemkeResult lemke = solve_lemke(p.model.qp.to_dense_lcp());
  ASSERT_EQ(lemke.status, LemkeStatus::kSolved);

  // Primal parts must agree (unique QP optimum; duals may be degenerate).
  for (std::size_t i = 0; i < p.model.num_variables(); ++i)
    EXPECT_NEAR(mmsim.x[i], lemke.z[i], 1e-5) << "variable " << i;
  EXPECT_NEAR(p.model.qp.objective(mmsim.x),
              p.model.qp.objective(Vector(
                  lemke.z.begin(),
                  lemke.z.begin() +
                      static_cast<std::ptrdiff_t>(p.model.num_variables()))),
              1e-6);
}

TEST(MmsimTest, MatchesLemkeOnSmallMixedHeightProblem) {
  const SmallProblem p = make_problem(10, 4, 0.7, 11);
  const MmsimSolver solver(p.model.qp, tight());
  const MmsimResult mmsim = solver.solve();
  ASSERT_TRUE(mmsim.converged);

  const LemkeResult lemke = solve_lemke(p.model.qp.to_dense_lcp());
  ASSERT_EQ(lemke.status, LemkeStatus::kSolved);
  for (std::size_t i = 0; i < p.model.num_variables(); ++i)
    EXPECT_NEAR(mmsim.x[i], lemke.z[i], 1e-4) << "variable " << i;
}

TEST(MmsimTest, SolutionSatisfiesLcpConditions) {
  const SmallProblem p = make_problem(30, 5, 0.75, 13);
  const MmsimSolver solver(p.model.qp, tight());
  const MmsimResult r = solver.solve();
  ASSERT_TRUE(r.converged);
  const LcpResidual res = p.model.qp.lcp_residual(r.z);
  EXPECT_LT(res.z_negativity, 1e-9);
  EXPECT_LT(res.w_negativity, 1e-6);
  EXPECT_LT(res.complementarity, 1e-4);
}

TEST(MmsimTest, SpacingConstraintsHoldAtSolution) {
  const SmallProblem p = make_problem(40, 8, 0.8, 17);
  const MmsimSolver solver(p.model.qp, tight());
  const MmsimResult r = solver.solve();
  ASSERT_TRUE(r.converged);
  EXPECT_LT(p.model.qp.max_constraint_violation(r.x), 1e-6);
}

TEST(MmsimTest, GammaInvariance) {
  const SmallProblem p = make_problem(15, 3, 0.6, 19);
  MmsimOptions base = tight();
  base.gamma = 2.0;
  MmsimOptions other = tight();
  other.gamma = 1.0;
  const MmsimResult a = MmsimSolver(p.model.qp, base).solve();
  const MmsimResult b = MmsimSolver(p.model.qp, other).solve();
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  for (std::size_t i = 0; i < p.model.num_variables(); ++i)
    EXPECT_NEAR(a.x[i], b.x[i], 1e-6);
}

TEST(MmsimTest, WarmStartReachesSameSolution) {
  const SmallProblem p = make_problem(20, 4, 0.7, 23);
  const MmsimSolver solver(p.model.qp, tight());
  const MmsimResult cold = solver.solve();
  ASSERT_TRUE(cold.converged);

  Vector s0(p.model.qp.lcp_size(), 0.0);
  for (std::size_t i = 0; i < p.model.num_variables(); ++i)
    s0[i] = -p.model.qp.p[i];  // start at the GP positions
  const MmsimResult warm = solver.solve_from(s0);
  ASSERT_TRUE(warm.converged);
  for (std::size_t i = 0; i < p.model.num_variables(); ++i)
    EXPECT_NEAR(cold.x[i], warm.x[i], 1e-6);
}

TEST(MmsimTest, UnconstrainedProblemReturnsClampedTargets) {
  // One cell per row: no spacing constraints; optimum is x = max(x', 0).
  gen::GeneratorOptions opts;
  opts.seed = 3;
  opts.nets_per_cell = 0.0;
  db::Design design = gen::generate_random_design(4, 0, 0.05, opts);
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  if (model.qp.num_constraints() > 0) GTEST_SKIP() << "cells share rows";
  const MmsimResult r = MmsimSolver(model.qp, tight()).solve();
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < model.num_variables(); ++i)
    EXPECT_NEAR(r.x[i], std::max(0.0, -model.qp.p[i]), 1e-7);
}

TEST(MmsimTest, InvalidBetaRejected) {
  const SmallProblem p = make_problem(5, 0, 0.5, 29);
  MmsimOptions o;
  o.beta = 2.5;
  EXPECT_THROW(MmsimSolver(p.model.qp, o), CheckError);
  o.beta = 0.0;
  EXPECT_THROW(MmsimSolver(p.model.qp, o), CheckError);
}

// Paper §3.2: with only double-height cells, EEᵀ = 2I and the
// Sherman–Morrison formula gives K⁻¹ = I − λ/(2λ+1)·EᵀE in closed form;
// our per-block inverse must match it.
TEST(MmsimTest, ShermanMorrisonClosedFormForDoubles) {
  const double lambda = 1000.0;
  const SmallProblem p = make_problem(0, 6, 0.5, 31);
  const auto& k = p.model.qp.K;
  const double off = -lambda / (2.0 * lambda + 1.0);
  const double diag = 1.0 - lambda / (2.0 * lambda + 1.0);
  for (std::size_t b = 0; b < k.block_count(); ++b) {
    ASSERT_EQ(k.block_size(b), 2u);
    const auto& inv = k.block_inverse(b);
    EXPECT_NEAR(inv(0, 0), diag, 1e-9);
    EXPECT_NEAR(inv(1, 1), diag, 1e-9);
    EXPECT_NEAR(inv(0, 1), -off, 1e-9);  // E row is (−1, 1): EᵀE off-diag −1
    EXPECT_NEAR(inv(1, 0), -off, 1e-9);
  }
}

TEST(MmsimTest, SchurTridiagonalMatchesBruteForce) {
  const SmallProblem p = make_problem(10, 3, 0.8, 37);
  const auto d = schur_tridiagonal(p.model.qp.K, p.model.qp.B);
  const std::size_t m = p.model.qp.num_constraints();
  ASSERT_EQ(d.size(), m);

  // Brute force: assemble B K⁻¹ Bᵀ densely.
  const std::size_t n = p.model.num_variables();
  linalg::DenseMatrix kinv(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      kinv(i, j) = p.model.qp.K.inverse_entry(i, j);
  linalg::DenseMatrix bd(m, n);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c) bd(r, c) = p.model.qp.B.at(r, c);
  const linalg::DenseMatrix full = bd.multiply(kinv).multiply(bd.transpose());
  for (std::size_t r = 0; r < m; ++r) {
    EXPECT_NEAR(d.diag(r), full(r, r), 1e-9);
    if (r + 1 < m) {
      EXPECT_NEAR(d.upper(r), full(r, r + 1), 1e-9);
      EXPECT_NEAR(d.lower(r), full(r + 1, r), 1e-9);
    }
  }
}

TEST(MmsimTest, SuggestThetaPositiveAndBounded) {
  const SmallProblem p = make_problem(25, 5, 0.7, 41);
  const MmsimSolver solver(p.model.qp, MmsimOptions{});
  const double theta = solver.suggest_theta();
  EXPECT_GT(theta, 0.0);
  EXPECT_LE(theta, 0.9);
  EXPECT_GT(solver.estimate_mu_max(), 0.0);
}

TEST(MmsimTest, JacobiSplittingReachesSameSolution) {
  // The block-Jacobi ablation converges (slower) to the same fixed point —
  // any fixed point of the modulus map solves the LCP regardless of M.
  const SmallProblem p = make_problem(20, 4, 0.6, 43);
  MmsimOptions gs = tight();
  MmsimOptions jacobi = tight();
  jacobi.splitting = MmsimSplitting::kJacobi;
  const MmsimResult a = MmsimSolver(p.model.qp, gs).solve();
  const MmsimResult b = MmsimSolver(p.model.qp, jacobi).solve();
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  for (std::size_t i = 0; i < p.model.num_variables(); ++i)
    EXPECT_NEAR(a.x[i], b.x[i], 1e-5);
}

TEST(MmsimTest, GaussSeidelNotSlowerThanJacobi) {
  const SmallProblem p = make_problem(60, 10, 0.7, 47);
  MmsimOptions gs = tight();
  MmsimOptions jacobi = tight();
  jacobi.splitting = MmsimSplitting::kJacobi;
  const MmsimResult a = MmsimSolver(p.model.qp, gs).solve();
  const MmsimResult b = MmsimSolver(p.model.qp, jacobi).solve();
  ASSERT_TRUE(a.converged);
  if (b.converged) {
    EXPECT_LE(a.iterations, b.iterations * 2);
  }
}

TEST(MmsimTest, TraceRecordsDecay) {
  const SmallProblem p = make_problem(40, 8, 0.7, 51);
  MmsimOptions o = tight();
  o.trace_stride = 10;
  const MmsimResult r = MmsimSolver(p.model.qp, o).solve();
  ASSERT_TRUE(r.converged);
  ASSERT_GE(r.trace.size(), 2u);
  // Deltas shrink overall (allow plateaus between adjacent samples).
  EXPECT_LT(r.trace.back().second, r.trace.front().second);
  for (std::size_t k = 0; k < r.trace.size(); ++k)
    EXPECT_EQ(r.trace[k].first % 10, 1u);  // sampled every 10, 1-indexed
}

// Objective decrease property: MMSIM's solution is at least as good as the
// snapped GP projection, across random instances.
class MmsimRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(MmsimRandomSweep, BeatsNaiveFeasiblePoints) {
  const SmallProblem p =
      make_problem(8 + GetParam() * 3, GetParam(), 0.5 + 0.04 * GetParam(),
                   100 + GetParam());
  const MmsimResult r = MmsimSolver(p.model.qp, tight()).solve();
  ASSERT_TRUE(r.converged);
  ASSERT_LT(p.model.qp.max_constraint_violation(r.x), 1e-6);

  const LemkeResult lemke = solve_lemke(p.model.qp.to_dense_lcp());
  ASSERT_EQ(lemke.status, LemkeStatus::kSolved);
  const Vector lemke_x(
      lemke.z.begin(),
      lemke.z.begin() + static_cast<std::ptrdiff_t>(p.model.num_variables()));
  EXPECT_NEAR(p.model.qp.objective(r.x), p.model.qp.objective(lemke_x),
              1e-4 * (1.0 + std::abs(p.model.qp.objective(lemke_x))));
}

INSTANTIATE_TEST_SUITE_P(Instances, MmsimRandomSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace mch::lcp
