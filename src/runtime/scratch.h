// Per-thread scratch buffers for kernel bodies.
//
// A chunk body sometimes needs a small temporary — the fused MMSIM kernels
// need one rhs slot per dense K-block row, for example. Allocating inside
// the loop would put the allocator on the hot path and sharing one buffer
// across threads would race, so thread_scratch() hands every thread its own
// lazily grown buffer (never shrunk, so steady-state use allocates
// nothing).
//
// Contents are undefined between calls: a body must fully write what it
// reads and must never carry results across chunks through scratch. Under
// that discipline the determinism contract of parallel.h is unaffected —
// scratch only changes where temporaries live, never the values written to
// outputs.
#pragma once

#include <cstddef>
#include <vector>

namespace mch::runtime {

/// Number of independent scratch buffers per thread; a kernel may hold up
/// to this many live temporaries at once (slot argument below).
inline constexpr std::size_t kScratchSlots = 4;

/// Returns this thread's scratch buffer #slot, grown to at least min_size
/// elements. The reference is valid until the next thread_scratch() call
/// for the same slot on the same thread.
std::vector<double>& thread_scratch(std::size_t slot, std::size_t min_size);

}  // namespace mch::runtime
