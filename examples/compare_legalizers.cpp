// Runs every implemented legalizer on one benchmark and prints a
// Table-2-style comparison row — the quickest way to see the paper's
// headline result on your machine.
//
//   ./compare_legalizers [benchmark-name] [scale] [--threads N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "eval/suite_runner.h"
#include "io/table.h"
#include "runtime/options.h"

int main(int argc, char** argv) {
  using namespace mch;
  runtime::configure_threads_from_cli(argc, argv);
  // Positional args, with the --threads flag (and its value) skipped.
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 ||
        std::strcmp(argv[i], "-j") == 0) {
      ++i;
    } else if (std::strncmp(argv[i], "--threads=", 10) != 0) {
      positional.push_back(argv[i]);
    }
  }
  const std::string name =
      !positional.empty() ? positional[0] : "des_perf_1";
  const double scale =
      positional.size() > 1 ? std::atof(positional[1].c_str()) : 0.05;

  gen::GeneratorOptions options;
  options.scale = scale;
  const gen::BenchmarkSpec& spec = gen::find_spec(name);
  std::printf("benchmark %s at scale %.3f (density %.2f)\n\n", name.c_str(),
              scale, spec.density);

  io::Table table({"Method", "Total Disp (sites)", "Mean Disp", "dHPWL",
                   "Runtime (s)", "legal"});
  double best = 0.0;
  for (const auto which :
       {eval::Legalizer::kTetris, eval::Legalizer::kLocalBase,
        eval::Legalizer::kLocalImproved, eval::Legalizer::kMixedAbacus,
        eval::Legalizer::kMmsim}) {
    db::Design design = gen::generate_design(spec, options);
    const eval::RunResult result = eval::run_legalizer(design, which);
    table.row()
        .cell(eval::to_string(which))
        .cell(result.disp.total_sites, 1)
        .cell(result.disp.mean_sites, 3)
        .percent(result.delta_hpwl)
        .cell(result.seconds, 3)
        .cell(result.legal ? "yes" : "NO");
    if (which == eval::Legalizer::kMmsim) best = result.disp.total_sites;
  }
  std::cout << table.to_text();
  std::printf("\nmmsim is the paper's algorithm; the others are the "
              "baselines of its Table 2 plus historical Tetris. Expect "
              "mmsim to hold the smallest displacement (%.1f here), with "
              "the margin growing with design density.\n",
              best);
  return 0;
}
