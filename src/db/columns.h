// Structure-of-arrays view of a design's cells for gather-heavy kernels.
//
// Model assembly and row bucketing read four or five fields of every cell
// while sweeping millions of them; striding 56-byte Cell records wastes most
// of each cache line on fields those kernels never touch (current positions,
// orientation, rail type). CellColumns gathers the hot fields once into flat
// columns — coordinates as doubles, height as u16, the two skip flags packed
// into one byte — so the sweeps stream dense arrays instead.
//
// The view is a snapshot: build it, run the kernel batch, drop it. It does
// not track later Design mutations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "db/design.h"

namespace mch::db {

struct CellColumns {
  static constexpr std::uint8_t kFixed = 1;
  static constexpr std::uint8_t kErased = 2;

  std::vector<double> gp_x;
  std::vector<double> gp_y;
  std::vector<double> width;
  std::vector<double> x;  ///< current x (obstacle intervals read it)
  std::vector<double> y;  ///< current y (obstacle rows read it)
  std::vector<std::uint16_t> height_rows;
  std::vector<std::uint8_t> flags;  ///< kFixed / kErased bits

  std::size_t size() const { return gp_x.size(); }
  bool fixed(std::size_t i) const { return (flags[i] & kFixed) != 0; }
  bool erased(std::size_t i) const { return (flags[i] & kErased) != 0; }
  /// True when the cell participates in legalization (movable, live).
  bool movable(std::size_t i) const { return flags[i] == 0; }

  /// Gathers the hot columns of every cell (erased slots included, flagged).
  static CellColumns from(const Design& design);
};

}  // namespace mch::db
