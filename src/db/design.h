// Placement database: chip geometry, mixed-height standard cells, nets.
//
// Geometry model (matches the paper's benchmarks, which are derived from the
// ISPD-2015 contest set):
//   * The placeable area is a grid of `num_rows` rows of uniform height
//     `row_height`, each divided into `num_sites` sites of uniform width
//     `site_width`. Origin at the bottom-left corner (0, 0).
//   * Power rails run along row boundaries and alternate VSS/VDD starting
//     with `bottom_rail` at y = 0. A cell occupying rows [r, r+h) has its
//     bottom edge on rail index r.
//   * Odd-row-height cells can be flipped vertically, so they may sit on any
//     row. Even-row-height cells have a designed bottom-rail type and must
//     sit on a row whose bottom rail matches (paper Fig. 1).
//
// Cells carry both their global-placement position (gp_x, gp_y) — the
// legalization target — and their current position (x, y) that legalizers
// mutate. Displacement metrics compare the two.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace mch::db {

/// Power rail type along a row boundary.
enum class RailType : std::uint8_t { kVss = 0, kVdd = 1 };

/// The opposite rail type.
constexpr RailType flip(RailType t) {
  return t == RailType::kVss ? RailType::kVdd : RailType::kVss;
}

const char* to_string(RailType t);

/// Chip geometry: uniform rows and sites.
struct Chip {
  std::size_t num_rows = 0;
  std::size_t num_sites = 0;     ///< sites per row
  double site_width = 1.0;
  double row_height = 1.0;
  RailType bottom_rail = RailType::kVss;  ///< rail at y = 0

  double width() const { return static_cast<double>(num_sites) * site_width; }
  double height() const {
    return static_cast<double>(num_rows) * row_height;
  }
  /// y coordinate of the bottom edge of row r.
  double row_y(std::size_t row) const {
    return static_cast<double>(row) * row_height;
  }
  /// Rail type at the bottom boundary of row r.
  RailType rail_at(std::size_t row) const {
    return (row % 2 == 0) ? bottom_rail : flip(bottom_rail);
  }
};

/// A standard cell. Width in distance units; height in integer row counts.
struct Cell {
  std::size_t id = 0;
  double width = 0.0;
  std::size_t height_rows = 1;  ///< 1 = single, 2 = double, ...
  /// Designed bottom-rail type; only constrains placement when height_rows
  /// is even (odd-height cells can flip to match any row).
  RailType bottom_rail = RailType::kVss;
  /// Orientation: true = vertically flipped (Bookshelf "FS"). Odd-height
  /// cells flip to align their power pins with the row's rail (paper
  /// Fig. 1); legal::assign_orientations derives this after legalization.
  /// Even-height cells never flip — flipping cannot fix their rails.
  bool flipped = false;
  /// Fixed cells (macros, pre-placed blocks, Bookshelf terminals) never
  /// move: legalizers treat them as obstacles. Their (x, y) must be
  /// row/site aligned and legal on entry; the rail rule does not apply to
  /// them (macros bring their own power structure).
  bool fixed = false;
  /// Tombstone set by Design::erase_cell. Erased cells keep their slot in
  /// Design::cells() — so every other cell id stays stable across ECO
  /// streams — but the legalizers, the legality checker, and the metrics
  /// all skip them as if they were deleted.
  bool erased = false;

  double gp_x = 0.0;  ///< global-placement x (bottom-left)
  double gp_y = 0.0;  ///< global-placement y (bottom-left)
  double x = 0.0;     ///< current (legalized) x
  double y = 0.0;     ///< current (legalized) y

  bool is_multi_row() const { return height_rows > 1; }
  bool is_even_height() const { return height_rows % 2 == 0; }

  /// True if the cell may be placed with its bottom edge on row `row` of the
  /// given chip, considering only the power-rail rule (not overlap/bounds).
  bool rail_compatible(const Chip& chip, std::size_t row) const {
    if (!is_even_height()) return true;  // vertical flip fixes odd heights
    return chip.rail_at(row) == bottom_rail;
  }
};

/// A pin: an offset into a cell.
struct Pin {
  std::size_t cell = 0;  ///< cell index in Design::cells
  double dx = 0.0;       ///< offset from the cell's bottom-left corner
  double dy = 0.0;
};

/// A net is a set of pins; wirelength is half-perimeter (HPWL).
struct Net {
  std::vector<Pin> pins;
};

/// A complete design: chip, cells, and netlist.
class Design {
 public:
  Design() = default;
  explicit Design(const Chip& chip) : chip_(chip) {}

  const Chip& chip() const { return chip_; }
  Chip& chip() { return chip_; }

  std::string name;

  const std::vector<Cell>& cells() const { return cells_; }
  std::vector<Cell>& cells() { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }
  std::vector<Net>& nets() { return nets_; }

  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return nets_.size(); }

  /// Appends a cell, assigning its id. Returns the index.
  std::size_t add_cell(Cell cell);

  /// Appends a net. Pin cell indices must be valid.
  std::size_t add_net(Net net);

  // ECO mutation helpers. An engineering change order arrives as a batch
  // of cell moves, inserts, and deletes against an already-placed design;
  // these keep every existing cell id stable so resident state keyed by id
  // (models, partitions, solver workspaces) survives the batch.

  /// Retargets a movable cell's global placement. The target is clamped so
  /// the cell's outline stays inside the chip on both axes — ECO tools
  /// routinely nudge cells past the die edge, and the legalizer's model
  /// only guards the left/bottom boundary.
  void move_cell(std::size_t id, double gp_x, double gp_y);

  /// Appends a new cell (id = index, like add_cell) with its current
  /// position initialized to its (clamped) GP position. Fixed cells are
  /// allowed — an inserted macro becomes a new obstacle. Returns the id.
  std::size_t insert_cell(Cell cell);

  /// Tombstones a cell: marks it erased and strips its pins from every
  /// net. The slot stays in cells() so other ids do not shift; all
  /// consumers skip erased cells.
  void erase_cell(std::size_t id);

  /// Number of erased (tombstoned) cells.
  std::size_t num_erased_cells() const;

  /// Sum of cell areas (width × height_rows × row_height).
  double total_cell_area() const;

  /// total_cell_area / chip area.
  double density() const;

  /// Row index whose bottom edge is nearest to y, clamped so a cell of the
  /// given height fits vertically on the chip.
  std::size_t nearest_row(double y, std::size_t height_rows = 1) const;

  /// Nearest row to y at which a cell may legally sit, honoring the
  /// power-rail rule and the vertical fit; for even-height cells this is the
  /// nearest rail-matching row (paper §3). Requires a compatible row to
  /// exist (guaranteed when num_rows > height_rows).
  std::size_t nearest_legal_row(const Cell& cell) const;

  /// x snapped to the nearest site boundary, clamped so the given width
  /// stays inside the chip.
  double snap_x_to_site(double x, double width) const;

  /// Number of cells with the given row height (movable cells only).
  std::size_t count_cells_with_height(std::size_t height_rows) const;

  /// Number of fixed cells (obstacles).
  std::size_t num_fixed_cells() const;

  /// Copies every cell's current position back to its GP position. Used by
  /// flows that re-legalize from a previous result.
  void commit_positions_as_gp();

  /// Resets every cell's current position to its GP position.
  void reset_positions_to_gp();

 private:
  Chip chip_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
};

}  // namespace mch::db
