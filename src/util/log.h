// Minimal leveled logger writing to stderr.
//
// The library is quiet by default (Level::kWarn); benches and examples raise
// the level to kInfo for progress reporting. Not thread-safe by design: all
// algorithms in this project are single-threaded, matching the paper.
#pragma once

#include <sstream>
#include <string>

namespace mch {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the process-wide minimum level that is emitted.
LogLevel log_level();

/// Sets the process-wide minimum level that is emitted.
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mch

#define MCH_LOG(level)                                   \
  if (static_cast<int>(::mch::LogLevel::level) <         \
      static_cast<int>(::mch::log_level())) {            \
  } else                                                 \
    ::mch::detail::LogLine(::mch::LogLevel::level)
