#include "gen/spec.h"

#include <gtest/gtest.h>

#include <set>

#include "util/check.h"

namespace mch::gen {
namespace {

TEST(SpecTest, SuiteHasTwentyBenchmarks) {
  EXPECT_EQ(ispd2015_mch_suite().size(), 20u);
}

TEST(SpecTest, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const BenchmarkSpec& spec : ispd2015_mch_suite()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
  }
}

TEST(SpecTest, Table1ValuesSpotCheck) {
  const BenchmarkSpec& des = find_spec("des_perf_1");
  EXPECT_EQ(des.num_single_cells, 103842u);
  EXPECT_EQ(des.num_double_cells, 8802u);
  EXPECT_DOUBLE_EQ(des.density, 0.91);

  const BenchmarkSpec& sb12 = find_spec("superblue12");
  EXPECT_EQ(sb12.num_single_cells, 1172586u);
  EXPECT_EQ(sb12.num_double_cells, 114362u);
  EXPECT_DOUBLE_EQ(sb12.density, 0.45);

  const BenchmarkSpec& pci = find_spec("pci_bridge32_b");
  EXPECT_EQ(pci.num_single_cells, 25734u);
  EXPECT_DOUBLE_EQ(pci.density, 0.14);
}

TEST(SpecTest, DoubleFractionRoughlyTenPercent) {
  // The benchmarks were built by doubling 10% of cells; the published
  // counts should reflect that within a loose band.
  for (const BenchmarkSpec& spec : ispd2015_mch_suite()) {
    const double fraction =
        static_cast<double>(spec.num_double_cells) /
        static_cast<double>(spec.num_single_cells + spec.num_double_cells);
    EXPECT_GT(fraction, 0.015) << spec.name;
    EXPECT_LT(fraction, 0.15) << spec.name;
  }
}

TEST(SpecTest, DensitiesInUnitInterval) {
  for (const BenchmarkSpec& spec : ispd2015_mch_suite()) {
    EXPECT_GT(spec.density, 0.0) << spec.name;
    EXPECT_LE(spec.density, 1.0) << spec.name;
  }
}

TEST(SpecTest, FindSpecUnknownThrows) {
  EXPECT_THROW(find_spec("nonexistent"), CheckError);
}

}  // namespace
}  // namespace mch::gen
