// Fixed-cell (macro/obstacle) support across the pipeline: generation,
// model construction, the MMSIM flow, and the obstacle-capable baselines.
// The paper's benchmarks dropped the contest's blockages, so this is an
// extension — but any production legalizer must handle pre-placed macros.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/local.h"
#include "baselines/tetris.h"
#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "legal/flow.h"
#include "legal/model.h"

namespace mch {
namespace {

gen::GeneratorOptions macro_options(std::uint64_t seed,
                                    std::size_t macros = 6) {
  gen::GeneratorOptions options;
  options.seed = seed;
  options.fixed_macros = macros;
  options.macro_height_rows = 6;
  options.macro_width_sites = 30.0;
  return options;
}

TEST(ObstacleGenTest, MacrosGeneratedFixedAndLegal) {
  const db::Design design =
      gen::generate_random_design(800, 80, 0.5, macro_options(1));
  EXPECT_EQ(design.num_fixed_cells(), 6u);
  for (const db::Cell& cell : design.cells()) {
    if (!cell.fixed) continue;
    EXPECT_DOUBLE_EQ(cell.x, cell.gp_x);
    EXPECT_DOUBLE_EQ(cell.y, cell.gp_y);
    // Row/site aligned.
    EXPECT_NEAR(std::fmod(cell.y, design.chip().row_height), 0.0, 1e-9);
    EXPECT_NEAR(std::fmod(cell.x, design.chip().site_width), 0.0, 1e-9);
  }
}

TEST(ObstacleGenTest, MacrosDoNotOverlapEachOther) {
  const db::Design design =
      gen::generate_random_design(500, 50, 0.4, macro_options(2, 10));
  for (std::size_t i = 0; i < design.num_cells(); ++i)
    for (std::size_t j = i + 1; j < design.num_cells(); ++j) {
      const db::Cell& a = design.cells()[i];
      const db::Cell& b = design.cells()[j];
      if (!a.fixed || !b.fixed) continue;
      const double ha = a.height_rows * design.chip().row_height;
      const double hb = b.height_rows * design.chip().row_height;
      const bool overlap = a.x < b.x + b.width && b.x < a.x + a.width &&
                           a.y < b.y + hb && b.y < a.y + ha;
      EXPECT_FALSE(overlap) << i << " vs " << j;
    }
}

TEST(ObstacleModelTest, FixedCellsHaveNoVariables) {
  db::Design design =
      gen::generate_random_design(100, 10, 0.5, macro_options(3));
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  std::size_t expected = 0;
  for (const db::Cell& cell : design.cells())
    if (!cell.fixed) expected += cell.height_rows;
  EXPECT_EQ(model.num_variables(), expected);
  for (std::size_t c = 0; c < design.num_cells(); ++c) {
    if (design.cells()[c].fixed) {
      EXPECT_EQ(model.cell_first_var[c],
                legal::LegalizationModel::kNoVariable);
    }
  }
}

TEST(ObstacleModelTest, ObstacleBoundRowsPresent) {
  // A movable cell to the right of a macro in its row must carry a
  // one-sided bound x >= macro_end: at least one B row with a single
  // nonzero must exist.
  db::Design design =
      gen::generate_random_design(400, 40, 0.6, macro_options(4));
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  std::size_t single_nnz_rows = 0;
  const auto& B = model.qp.B;
  for (std::size_t r = 0; r < B.rows(); ++r) {
    const std::size_t nnz = B.row_ptr()[r + 1] - B.row_ptr()[r];
    ASSERT_GE(nnz, 1u);
    ASSERT_LE(nnz, 2u);
    if (nnz == 1) {
      ++single_nnz_rows;
      EXPECT_DOUBLE_EQ(B.values()[B.row_ptr()[r]], 1.0);
      EXPECT_GT(model.qp.b[r], 0.0);
    }
  }
  EXPECT_GT(single_nnz_rows, 0u);
}

class ObstacleFlowTest : public ::testing::TestWithParam<double> {};

TEST_P(ObstacleFlowTest, FlowLegalAtAllDensities) {
  db::Design design =
      gen::generate_random_design(900, 90, GetParam(), macro_options(5));
  const legal::FlowResult result = legal::legalize(design);
  EXPECT_TRUE(result.legal) << result.legality.summary();
  // Macros did not move.
  for (const db::Cell& cell : design.cells()) {
    if (!cell.fixed) continue;
    EXPECT_DOUBLE_EQ(cell.x, cell.gp_x);
    EXPECT_DOUBLE_EQ(cell.y, cell.gp_y);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, ObstacleFlowTest,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(ObstacleFlowTest, NoMovableCellOverlapsAnyMacro) {
  db::Design design =
      gen::generate_random_design(700, 70, 0.7, macro_options(6));
  const legal::FlowResult result = legal::legalize(design);
  ASSERT_TRUE(result.legal) << result.legality.summary();
  for (const db::Cell& cell : design.cells()) {
    if (cell.fixed) continue;
    const double h = cell.height_rows * design.chip().row_height;
    for (const db::Cell& macro : design.cells()) {
      if (!macro.fixed) continue;
      const double mh = macro.height_rows * design.chip().row_height;
      const bool overlap = cell.x < macro.x + macro.width &&
                           macro.x < cell.x + cell.width &&
                           cell.y < macro.y + mh && macro.y < cell.y + h;
      EXPECT_FALSE(overlap) << "cell " << cell.id << " vs macro "
                            << macro.id;
    }
  }
}

TEST(ObstacleBaselineTest, TetrisHandlesMacros) {
  db::Design design =
      gen::generate_random_design(700, 70, 0.6, macro_options(7));
  const auto stats = baselines::tetris_legalize(design);
  EXPECT_EQ(stats.failed_cells, 0u);
  const db::LegalityReport report = db::check_legality(design);
  EXPECT_TRUE(report.legal()) << report.summary();
}

TEST(ObstacleBaselineTest, LocalHandlesMacros) {
  for (const auto variant :
       {baselines::LocalVariant::kBase, baselines::LocalVariant::kImproved}) {
    db::Design design =
        gen::generate_random_design(700, 70, 0.6, macro_options(8));
    const auto stats = baselines::local_legalize(design, variant);
    EXPECT_EQ(stats.failed_cells, 0u);
    const db::LegalityReport report = db::check_legality(design);
    EXPECT_TRUE(report.legal()) << report.summary();
  }
}

TEST(ObstacleFlowTest, MmsimStillBeatsGreedyWithMacros) {
  db::Design mmsim_design =
      gen::generate_random_design(900, 90, 0.75, macro_options(9));
  db::Design greedy_design = mmsim_design;
  const legal::FlowResult flow = legal::legalize(mmsim_design);
  ASSERT_TRUE(flow.legal);
  baselines::tetris_legalize(greedy_design);
  ASSERT_TRUE(db::check_legality(greedy_design).legal());
  EXPECT_LE(eval::displacement(mmsim_design).total_sites,
            eval::displacement(greedy_design).total_sites * 1.05);
}

}  // namespace
}  // namespace mch
