#include "util/rss.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace mch::util {

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

std::size_t current_rss_bytes() {
#if defined(__linux__)
  long rss_pages = 0;
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long vm_pages = 0;
    if (std::fscanf(f, "%ld %ld", &vm_pages, &rss_pages) != 2) rss_pages = 0;
    std::fclose(f);
  }
  if (rss_pages <= 0) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(rss_pages) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

double peak_rss_mb() {
  return static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
}

double current_rss_mb() {
  return static_cast<double>(current_rss_bytes()) / (1024.0 * 1024.0);
}

}  // namespace mch::util
