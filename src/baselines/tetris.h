// Tetris legalizer (Hill, US patent 6370673) generalized to mixed heights.
//
// The classic greedy: process cells in GP x-order; place each at the
// nearest free rail-correct site-aligned position and freeze it. Fast and
// simple, but each decision is local and irrevocable, which is exactly the
// behavior the paper's global MMSIM formulation improves upon. Included as
// the historical baseline and as the workhorse inside the paper's own
// Tetris-like allocation step.
#pragma once

#include "db/design.h"

namespace mch::baselines {

struct TetrisLegalizerStats {
  double seconds = 0.0;
  std::size_t failed_cells = 0;  ///< no free position found (chip overfull)
};

/// Legalizes the design in place (site-aligned output).
TetrisLegalizerStats tetris_legalize(db::Design& design);

}  // namespace mch::baselines
