// Property-based sweeps over the whole pipeline: for a grid of densities,
// height mixes, and seeds, the flow must always produce a legal placement
// that preserves the GP ordering within rows, and the MMSIM's continuous
// solution must always satisfy its KKT system.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "legal/flow.h"
#include "legal/model.h"

namespace mch {
namespace {

struct Scenario {
  double density;
  double double_fraction;   ///< of the cell count
  double triple_fraction;   ///< of the single-cell budget
  std::uint64_t seed;
};

class FlowPropertyTest : public ::testing::TestWithParam<Scenario> {};

db::Design make_design(const Scenario& s) {
  gen::GeneratorOptions options;
  options.seed = s.seed;
  options.triple_fraction = s.triple_fraction;
  const std::size_t total = 700;
  const auto doubles =
      static_cast<std::size_t>(s.double_fraction * total);
  return gen::generate_random_design(total - doubles, doubles, s.density,
                                     options);
}

TEST_P(FlowPropertyTest, AlwaysLegal) {
  db::Design design = make_design(GetParam());
  const legal::FlowResult result = legal::legalize(design);
  EXPECT_TRUE(result.legal) << result.legality.summary();
  EXPECT_EQ(result.allocation.unplaced_cells, 0u);
}

TEST_P(FlowPropertyTest, DisplacementBounded) {
  db::Design design = make_design(GetParam());
  const legal::FlowResult result = legal::legalize(design);
  ASSERT_TRUE(result.legal);
  const eval::DisplacementStats disp = eval::displacement(design);
  // Mean displacement stays within a handful of sites for near-legal GP
  // input at any density the chip can hold.
  EXPECT_LT(disp.mean_sites, 25.0);
  // No cell teleports across the chip unless density forces relocation.
  if (GetParam().density < 0.7) {
    EXPECT_LT(disp.max_sites,
              static_cast<double>(design.chip().num_sites));
  }
}

TEST_P(FlowPropertyTest, KktResidualsHoldAtSolverOutput) {
  db::Design design = make_design(GetParam());
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  lcp::MmsimOptions options;
  options.tolerance = 1e-8;
  options.max_iterations = 300000;
  const lcp::MmsimResult result =
      lcp::MmsimSolver(model.qp, options).solve();
  ASSERT_TRUE(result.converged);
  const lcp::LcpResidual residual = model.qp.lcp_residual(result.z);
  const double scale = 1.0 + linalg::norm_inf(result.z);
  EXPECT_LT(residual.z_negativity, 1e-9 * scale);
  EXPECT_LT(residual.w_negativity, 1e-6 * scale);
  EXPECT_LT(residual.complementarity, 1e-5 * scale * scale);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlowPropertyTest,
    ::testing::Values(Scenario{0.15, 0.10, 0.0, 1},
                      Scenario{0.40, 0.10, 0.0, 2},
                      Scenario{0.60, 0.10, 0.0, 3},
                      Scenario{0.80, 0.10, 0.0, 4},
                      Scenario{0.90, 0.10, 0.0, 5},
                      Scenario{0.50, 0.00, 0.0, 6},   // singles only
                      Scenario{0.50, 0.30, 0.0, 7},   // many doubles
                      Scenario{0.50, 0.10, 0.08, 8},  // with triples
                      Scenario{0.70, 0.20, 0.05, 9},
                      Scenario{0.30, 0.10, 0.0, 10}));

TEST(FlowEdgeCaseTest, SingleCellDesign) {
  db::Chip chip;
  chip.num_rows = 4;
  chip.num_sites = 20;
  chip.row_height = 8.0;
  db::Design design(chip);
  db::Cell cell;
  cell.width = 5;
  cell.gp_x = 7.3;
  cell.gp_y = 9.1;
  design.add_cell(cell);
  const legal::FlowResult result = legal::legalize(design);
  EXPECT_TRUE(result.legal);
  EXPECT_DOUBLE_EQ(design.cells()[0].x, 7.0);  // nearest site
  EXPECT_DOUBLE_EQ(design.cells()[0].y, 8.0);  // nearest row
}

TEST(FlowEdgeCaseTest, CellAsWideAsTheChip) {
  db::Chip chip;
  chip.num_rows = 4;
  chip.num_sites = 10;
  db::Design design(chip);
  db::Cell wide;
  wide.width = 10;
  wide.gp_x = 3.0;  // pushes past the right edge
  wide.gp_y = 0.0;
  design.add_cell(wide);
  const legal::FlowResult result = legal::legalize(design);
  EXPECT_TRUE(result.legal) << result.legality.summary();
  EXPECT_DOUBLE_EQ(design.cells()[0].x, 0.0);
}

TEST(FlowEdgeCaseTest, EverythingInOneRow) {
  db::Chip chip;
  chip.num_rows = 2;
  chip.num_sites = 200;
  chip.row_height = 10.0;
  db::Design design(chip);
  for (int i = 0; i < 30; ++i) {
    db::Cell cell;
    cell.width = 5;
    cell.gp_x = 50.0 + 0.1 * i;  // all piled onto the same spot
    cell.gp_y = 1.0;
    design.add_cell(cell);
  }
  const legal::FlowResult result = legal::legalize(design);
  EXPECT_TRUE(result.legal) << result.legality.summary();
  // Chain must have spread into a 150-site run of abutting cells.
  double min_x = 1e9, max_x = -1e9;
  for (const db::Cell& cell : design.cells()) {
    min_x = std::min(min_x, cell.x);
    max_x = std::max(max_x, cell.x + cell.width);
  }
  EXPECT_GE(max_x - min_x, 150.0 - 1e-9);
}

TEST(FlowEdgeCaseTest, IdenticalGpPositionsDeterministicOrder) {
  db::Chip chip;
  chip.num_rows = 2;
  chip.num_sites = 100;
  chip.row_height = 10.0;
  db::Design design(chip);
  for (int i = 0; i < 5; ++i) {
    db::Cell cell;
    cell.width = 4;
    cell.gp_x = 40.0;
    cell.gp_y = 0.0;
    design.add_cell(cell);
  }
  const legal::FlowResult result = legal::legalize(design);
  ASSERT_TRUE(result.legal);
  // Ties broken by id: cells appear left-to-right in id order.
  for (std::size_t i = 0; i + 1 < design.num_cells(); ++i)
    EXPECT_LT(design.cells()[i].x, design.cells()[i + 1].x);
}

TEST(FlowEdgeCaseTest, NearCapacityDesignStillLegal) {
  gen::GeneratorOptions options;
  options.seed = 99;
  db::Design design = gen::generate_random_design(900, 100, 0.97, options);
  const legal::FlowResult result = legal::legalize(design);
  EXPECT_TRUE(result.legal) << result.legality.summary();
  EXPECT_EQ(result.allocation.unplaced_cells, 0u);
}

}  // namespace
}  // namespace mch
