#include "baselines/mixed_abacus.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.h"
#include "util/log.h"
#include "util/timer.h"

namespace mch::baselines {

namespace {

struct Cluster {
  double x = 0.0;
  double w = 0.0;
  double q = 0.0;
  double wt = 0.0;
  std::size_t first = 0;
  std::size_t last = 0;
};

struct Row {
  std::vector<Cluster> clusters;
  std::vector<std::size_t> cells;  ///< single-height members, left to right
  std::vector<double> widths;
  double floor = 0.0;  ///< right edge of the rightmost multi-row obstacle
  /// Total width of clusters committed since the floor last moved. Clusters
  /// older than that sit entirely left of the floor (an obstacle commits
  /// only right of every existing cluster), so only this share competes for
  /// the remaining [floor, max_x) capacity.
  double used_since_floor = 0.0;

  double frontier() const {
    return clusters.empty() ? floor
                            : std::max(floor, clusters.back().x +
                                                  clusters.back().w);
  }
};

double clamp_position(double x, double width, double min_x, double max_x) {
  const double hi = max_x - width;
  if (hi < min_x) return min_x;
  return std::clamp(x, min_x, hi);
}

double trial_insert(const Row& row, double target, double width,
                    double max_x) {
  if (max_x - row.floor < row.used_since_floor + width)
    return std::numeric_limits<double>::infinity();

  Cluster virt;
  virt.w = width;
  virt.wt = 1.0;
  virt.q = target;
  virt.x = clamp_position(target, width, row.floor, max_x);
  std::size_t k = row.clusters.size();
  while (k > 0) {
    const Cluster& prev = row.clusters[k - 1];
    if (prev.x + prev.w <= virt.x) break;
    virt.q = prev.q + virt.q - virt.wt * prev.w;
    virt.wt += prev.wt;
    virt.w += prev.w;
    virt.x = clamp_position(virt.q / virt.wt, virt.w, row.floor, max_x);
    --k;
  }
  return virt.x + virt.w - width;
}

void commit_insert(Row& row, std::size_t cell_id, double target, double width,
                   double max_x) {
  row.cells.push_back(cell_id);
  row.widths.push_back(width);
  row.used_since_floor += width;

  Cluster c;
  c.w = width;
  c.wt = 1.0;
  c.q = target;
  c.first = c.last = row.cells.size() - 1;
  c.x = clamp_position(target, width, row.floor, max_x);
  row.clusters.push_back(c);
  while (row.clusters.size() >= 2) {
    Cluster& prev = row.clusters[row.clusters.size() - 2];
    Cluster& curr = row.clusters.back();
    if (prev.x + prev.w <= curr.x) break;
    prev.q += curr.q - curr.wt * prev.w;
    prev.wt += curr.wt;
    prev.w += curr.w;
    prev.last = curr.last;
    row.clusters.pop_back();
    Cluster& merged = row.clusters.back();
    merged.x = clamp_position(merged.q / merged.wt, merged.w, row.floor,
                              max_x);
  }
}

}  // namespace

MixedAbacusStats mixed_abacus_legalize(db::Design& design) {
  Timer timer;
  MixedAbacusStats stats;
  const db::Chip& chip = design.chip();
  const double max_x = chip.width();

  for (const db::Cell& cell : design.cells())
    MCH_CHECK_MSG(!cell.fixed,
                  "mixed_abacus_legalize does not support fixed cells "
                  "(the paper's benchmarks have none); use the local or "
                  "tetris baselines on obstacle designs");

  std::vector<Row> rows(chip.num_rows);
  std::vector<std::size_t> order(design.num_cells());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double xa = design.cells()[a].gp_x;
    const double xb = design.cells()[b].gp_x;
    if (xa != xb) return xa < xb;
    return a < b;
  });

  for (const std::size_t id : order) {
    db::Cell& cell = design.cells()[id];
    const std::size_t h = cell.height_rows;
    const std::size_t max_base = chip.num_rows - h;
    const auto anchor = design.nearest_row(cell.gp_y, h);

    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_row = chip.num_rows;
    double best_x = 0.0;

    for (std::size_t dist = 0; dist < chip.num_rows; ++dist) {
      bool any = false;
      for (const int sign : {+1, -1}) {
        if (dist == 0 && sign < 0) continue;
        const auto r = static_cast<std::ptrdiff_t>(anchor) +
                       sign * static_cast<std::ptrdiff_t>(dist);
        if (r < 0 || r > static_cast<std::ptrdiff_t>(max_base)) continue;
        any = true;
        const auto base = static_cast<std::size_t>(r);
        if (!cell.rail_compatible(chip, base)) continue;
        const double dy = chip.row_y(base) - cell.gp_y;
        if (dy * dy >= best_cost) continue;

        double x;
        if (h == 1) {
          x = trial_insert(rows[base], cell.gp_x, cell.width, max_x);
        } else {
          // Joint frontier of the spanned rows.
          double frontier = 0.0;
          for (std::size_t rr = base; rr < base + h; ++rr)
            frontier = std::max(frontier, rows[rr].frontier());
          x = std::max(cell.gp_x, frontier);
          if (x + cell.width > max_x)
            x = std::numeric_limits<double>::infinity();
        }
        if (!std::isfinite(x)) continue;
        const double dx = x - cell.gp_x;
        const double cost = dx * dx + dy * dy;
        if (cost < best_cost) {
          best_cost = cost;
          best_row = base;
          best_x = x;
        }
      }
      if (!any) break;
      const double ring_dy =
          static_cast<double>(dist) * chip.row_height -
          std::abs(cell.gp_y - chip.row_y(anchor));
      if (best_row != chip.num_rows && ring_dy > 0.0 &&
          ring_dy * ring_dy > best_cost)
        break;
    }

    if (best_row == chip.num_rows) {
      ++stats.failed_cells;
      MCH_LOG(kWarn) << "mixed abacus: no row for cell " << id;
      continue;
    }

    cell.y = chip.row_y(best_row);
    if (h == 1) {
      commit_insert(rows[best_row], id, cell.gp_x, cell.width, max_x);
    } else {
      cell.x = best_x;
      for (std::size_t rr = best_row; rr < best_row + h; ++rr) {
        Row& row = rows[rr];
        MCH_CHECK(row.frontier() <= best_x + 1e-9);
        row.floor = best_x + cell.width;
        row.used_since_floor = 0.0;
      }
    }
  }

  // Positions of single-height cells from the final cluster chains.
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Row& row = rows[r];
    for (const Cluster& c : row.clusters) {
      double offset = 0.0;
      for (std::size_t i = c.first; i <= c.last; ++i) {
        design.cells()[row.cells[i]].x = c.x + offset;
        offset += row.widths[i];
      }
    }
  }

  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace mch::baselines
