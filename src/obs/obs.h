// Umbrella for the observability subsystem: tracing + metrics + artifact
// plumbing. Depends only on util/ so every layer (linalg, lcp, legal,
// service, runtime, eval, benches) can link it without cycles.
//
// Enablement model — both subsystems follow the same env convention,
// resolved once at static init (so gtest binaries run under the `.trace`
// ctest variant pick it up with no code changes):
//
//   MCH_TRACE / MCH_METRICS unset or "0"  -> disabled
//   "1"                                   -> enabled, no artifact written
//   any other value                       -> enabled, value is the output path
//
// `mchlegal --trace out.json --metrics out.json` and the bench drivers call
// set_trace_path()/set_metrics_path() to the same effect, and
// flush_artifacts() at exit writes whatever paths are pending.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mch::obs {

/// Applies the MCH_TRACE/MCH_METRICS path convention above. Runs once at
/// static init; calling it again re-reads the environment (tests).
void init_from_env();

/// Enables tracing and schedules the Chrome trace to be written to `path`
/// by flush_artifacts(). Empty path = enabled without artifact.
void set_trace_path(std::string path);
const std::string& trace_path();

/// Enables metrics export and schedules the JSON snapshot to `path`.
void set_metrics_path(std::string path);
const std::string& metrics_path();

/// Writes any scheduled trace/metrics artifacts. Safe to call with nothing
/// scheduled (no-op). Returns false if any scheduled write failed.
bool flush_artifacts();

/// Samples current + peak RSS into the gauges "rss.current_mb{phase=X}" and
/// "rss.peak_mb{phase=X}". Cheap (/proc read); no-op when both tracing and
/// metrics are disabled.
void sample_rss(const char* phase);

}  // namespace mch::obs
