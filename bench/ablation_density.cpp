// Density ablation: sweeps the design density at a fixed cell count and
// reports the illegal-cell ratio after MMSIM, the displacement, and the
// iteration count. Explains Table 1's outliers — des_perf_1 (0.91) and
// fft_1 (0.84) are the only designs with a notable illegal ratio because
// relaxed-right-boundary spills grow sharply once rows approach capacity.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/suite_runner.h"
#include "io/table.h"

int main() {
  using namespace mch;
  std::printf("Ablation — density sweep (20k cells, 10%% double-height)\n\n");

  io::Table table({"Density", "#I. Cell", "%I. Cell", "Disp/cell (sites)",
                   "dHPWL", "Iterations", "Time (s)", "legal"});
  bench::JsonSnapshot json("ablation_density");
  for (const double density :
       {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95}) {
    gen::GeneratorOptions options;
    options.seed = bench::bench_seed();
    db::Design design =
        gen::generate_random_design(18000, 2000, density, options);
    design.name = "sweep";
    const eval::RunResult result =
        eval::run_legalizer(design, eval::Legalizer::kMmsim);
    table.row()
        .cell(density, 2)
        .cell(result.illegal_after_solver)
        .percent(static_cast<double>(result.illegal_after_solver) /
                 static_cast<double>(result.num_cells))
        .cell(result.disp.mean_sites, 3)
        .percent(result.delta_hpwl)
        .cell(result.solver_iterations)
        .cell(result.seconds, 2)
        .cell(result.legal ? "yes" : "NO");
    char name[32];
    std::snprintf(name, sizeof(name), "density/%.2f", density);
    json.add(name, result.num_cells, result.seconds);
    std::cerr << "." << std::flush;
  }
  std::cerr << "\n";
  std::cout << table.to_text() << "\n";
  std::cout << "Shape: illegal ratio ~0 through moderate densities and "
               "rising sharply past ~0.8, mirroring Table 1's des_perf_1 "
               "and fft_1 outliers.\n";
  mch::bench::print_peak_rss();
  json.write();
  return 0;
}
