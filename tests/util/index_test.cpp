#include "util/index.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>

#include "util/check.h"

namespace mch {
namespace {

TEST(IndexTest, SentinelIsMaxAndNeverAValidCount) {
  EXPECT_EQ(kInvalidIndex, std::numeric_limits<index_t>::max());
  EXPECT_FALSE(index_fits(kMaxIndexCount));
  EXPECT_TRUE(index_fits(kMaxIndexCount - 1));
  EXPECT_TRUE(index_fits(0));
}

TEST(IndexTest, ToIndexRoundTripsInRange) {
  EXPECT_EQ(to_index(0), index_t{0});
  EXPECT_EQ(to_index(12345), index_t{12345});
  const std::size_t largest = kMaxIndexCount - 1;
  EXPECT_EQ(static_cast<std::size_t>(to_index(largest)), largest);
}

TEST(IndexTest, ToIndexThrowsBeyondRange) {
  EXPECT_THROW(to_index(kMaxIndexCount), CheckError);
#ifndef MCH_INDEX64
  // With the 32-bit default, a size_t beyond 2^32 must fail loudly instead
  // of wrapping (the wrap is exactly the bug check_index_range guards).
  EXPECT_THROW(to_index(std::size_t{1} << 33), CheckError);
#endif
}

TEST(IndexTest, CheckIndexRangeGuardsBulkFills) {
  EXPECT_NO_THROW(check_index_range(1000, "test entities"));
  EXPECT_THROW(check_index_range(kMaxIndexCount, "test entities"),
               CheckError);
}

TEST(IndexTest, SentinelComparesEqualAfterWidening) {
  // The stored sentinel must survive a widening to size_t and still be
  // recognizable by comparing against kInvalidIndex (the convention the
  // model's kNoVariable relies on).
  const index_t stored = kInvalidIndex;
  const std::size_t widened = stored;
  EXPECT_EQ(static_cast<index_t>(widened), kInvalidIndex);
}

}  // namespace
}  // namespace mch
