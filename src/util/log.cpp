#include "util/log.h"

#include <cstdio>

namespace mch {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace mch
