// Uniform driver running any legalizer on a design and collecting the
// metrics the paper's tables report. Shared by the benches, the examples,
// and the integration tests so every experiment measures identically.
#pragma once

#include <string>

#include "db/design.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "gen/spec.h"
#include "legal/flow.h"

namespace mch::eval {

enum class Legalizer {
  kMmsim,          ///< the paper's algorithm ("Ours")
  kTetris,         ///< greedy Tetris baseline
  kLocalBase,      ///< DAC'16-style local legalizer
  kLocalImproved,  ///< DAC'16-Imp-style local legalizer
  kMixedAbacus,    ///< ASP-DAC'17-style mixed-height Abacus
};

const char* to_string(Legalizer legalizer);

struct RunResult {
  std::string benchmark;
  Legalizer legalizer = Legalizer::kMmsim;
  bool legal = false;
  std::string legality_summary;
  double seconds = 0.0;  ///< legalization wall time (metrics excluded)

  DisplacementStats disp;
  double gp_hpwl = 0.0;
  double hpwl = 0.0;
  double delta_hpwl = 0.0;  ///< fraction, e.g. 0.0012 = 0.12%

  // Design characteristics (Table 1 columns).
  std::size_t num_cells = 0;
  std::size_t num_single = 0;
  std::size_t num_double = 0;
  double density = 0.0;

  // MMSIM-specific (Table 1 "#I. Cell" and solver diagnostics).
  std::size_t illegal_after_solver = 0;
  std::size_t solver_iterations = 0;
  bool solver_converged = false;
};

/// Resets the design to its GP positions, runs the legalizer, validates the
/// result and fills in all metrics.
RunResult run_legalizer(db::Design& design, Legalizer which,
                        const legal::FlowOptions& mmsim_options = {});

}  // namespace mch::eval
