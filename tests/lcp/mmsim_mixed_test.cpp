// Mixed-precision iterate (MCH_PRECISION=mixed / MmsimPrecision::kMixed):
// the float32 prelude + float64 residual checks + double polish must land
// within displacement tolerance of the full-double solve on well-posed
// designs, must stay INERT under the bitwise-contracted partition modes
// (kOff / kMatch), and must hand off to the recovery ladder — which forces
// full double — on degenerate designs. There is deliberately no bitwise
// assertion on the mixed path itself: mixed converges by the float64
// residual check, not by bit reproducibility (ALGORITHM.md ¶13).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "lcp/mmsim.h"
#include "legal/mmsim_legalizer.h"
#include "legal/model.h"
#include "legal/row_assign.h"

namespace mch::legal {
namespace {

db::Design make_design(std::size_t singles, std::size_t doubles,
                       double density, std::uint64_t seed) {
  gen::GeneratorOptions opts;
  opts.seed = seed;
  opts.nets_per_cell = 0.0;
  return gen::generate_random_design(singles, doubles, density, opts);
}

/// Solver-level agreement: the mixed solve of one component model lands
/// within tolerance of the double solve of the same QP.
TEST(MmsimMixedTest, SolverConvergesCloseToDouble) {
  db::Design design = make_design(400, 60, 0.7, 11);
  const RowAssignment rows = assign_rows(design);
  const LegalizationModel model = build_model(design, rows);

  lcp::MmsimOptions options;
  options.tolerance = 1e-8;
  options.max_iterations = 200000;

  options.precision = lcp::MmsimPrecision::kDouble;
  const lcp::MmsimResult reference =
      lcp::MmsimSolver(model.qp, options).solve();
  ASSERT_TRUE(reference.converged);
  EXPECT_EQ(reference.mixed_iterations, 0u);

  options.precision = lcp::MmsimPrecision::kMixed;
  const lcp::MmsimResult mixed = lcp::MmsimSolver(model.qp, options).solve();
  ASSERT_TRUE(mixed.converged);
  // The float32 prelude actually ran, and the polish kept some double
  // iterations at the end.
  EXPECT_GT(mixed.mixed_iterations, 0u);
  EXPECT_LT(mixed.mixed_iterations, mixed.iterations);

  double max_diff = 0.0, max_ref = 0.0;
  ASSERT_EQ(mixed.x.size(), reference.x.size());
  for (std::size_t i = 0; i < reference.x.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(mixed.x[i] - reference.x[i]));
    max_ref = std::max(max_ref, std::abs(reference.x[i]));
  }
  EXPECT_LE(max_diff, 1e-3 * (1.0 + max_ref))
      << "mixed primal diverged from double: " << max_diff;
}

/// Legalizer-level agreement across the suite shapes: same designs, tiered
/// partitioning, double vs mixed — total displacement within 0.1%.
TEST(MmsimMixedTest, TieredDisplacementWithinToleranceAcrossSuites) {
  struct Spec {
    std::size_t singles, doubles;
    double density;
    std::uint64_t seed;
  };
  for (const Spec& spec : {Spec{1500, 200, 0.6, 3}, Spec{1200, 300, 0.75, 7},
                           Spec{2000, 0, 0.8, 13}}) {
    db::Design double_design =
        make_design(spec.singles, spec.doubles, spec.density, spec.seed);
    db::Design mixed_design = double_design;
    const RowAssignment rows = assign_rows(double_design);

    MmsimLegalizerOptions options;
    options.partition = PartitionMode::kTiered;

    options.mmsim.precision = lcp::MmsimPrecision::kDouble;
    const MmsimLegalizerStats ref_stats =
        mmsim_legalize_continuous(double_design, rows, options);
    ASSERT_TRUE(ref_stats.converged);
    EXPECT_EQ(ref_stats.precision_used, lcp::MmsimPrecision::kDouble);
    EXPECT_EQ(ref_stats.mixed_iterations, 0u);

    options.mmsim.precision = lcp::MmsimPrecision::kMixed;
    const MmsimLegalizerStats mixed_stats =
        mmsim_legalize_continuous(mixed_design, rows, options);
    ASSERT_TRUE(mixed_stats.converged);
    EXPECT_EQ(mixed_stats.precision_used, lcp::MmsimPrecision::kMixed);
    EXPECT_GT(mixed_stats.mixed_iterations, 0u);

    const double ref_disp = eval::displacement(double_design).total_sites;
    const double mixed_disp = eval::displacement(mixed_design).total_sites;
    EXPECT_LE(std::abs(mixed_disp - ref_disp),
              1e-3 * std::max(1.0, ref_disp))
        << "seed " << spec.seed << ": disp " << mixed_disp << " vs "
        << ref_disp;
  }
}

/// kOff and kMatch carry the bitwise determinism contract, so a mixed
/// request must be silently demoted to full double there — positions
/// bitwise identical to an explicit double run.
TEST(MmsimMixedTest, InertUnderBitwiseContractModes) {
  for (const PartitionMode mode : {PartitionMode::kOff,
                                   PartitionMode::kMatch}) {
    db::Design requested = make_design(500, 80, 0.65, 17);
    db::Design reference = requested;
    const RowAssignment rows = assign_rows(requested);

    MmsimLegalizerOptions options;
    options.partition = mode;

    options.mmsim.precision = lcp::MmsimPrecision::kMixed;
    const MmsimLegalizerStats stats =
        mmsim_legalize_continuous(requested, rows, options);
    EXPECT_EQ(stats.precision_used, lcp::MmsimPrecision::kDouble);
    EXPECT_EQ(stats.mixed_iterations, 0u);

    options.mmsim.precision = lcp::MmsimPrecision::kDouble;
    mmsim_legalize_continuous(reference, rows, options);

    for (std::size_t c = 0; c < requested.num_cells(); ++c) {
      ASSERT_EQ(std::memcmp(&requested.cells()[c].x, &reference.cells()[c].x,
                            sizeof(double)),
                0)
          << to_string(mode) << ": cell " << c;
    }
  }
}

/// Degenerate designs under mixed: the solve must not wedge — the failed
/// attempt hands off to the recovery ladder (which forces full double),
/// the audit runs, and any clamped cells end up inside the chip.
TEST(MmsimMixedTest, DegenerateDesignsHandOffToRecoveryLadder) {
  for (const gen::DegenerateMode mode :
       {gen::DegenerateMode::kNearSingularCoupling,
        gen::DegenerateMode::kInfeasibleRowCapacity,
        gen::DegenerateMode::kObstacleSaturatedRows}) {
    db::Design design = gen::generate_degenerate_design(mode, 24, 3);
    const RowAssignment rows = assign_rows(design);

    MmsimLegalizerOptions options;
    options.partition = PartitionMode::kTiered;
    options.mmsim.precision = lcp::MmsimPrecision::kMixed;
    // A budget far too small for these pathologies, plus one injected
    // failure so the handoff happens even when a pathology accidentally
    // converges: the first (mixed) attempt fails and escalates.
    options.mmsim.max_iterations = 50;
    options.recovery.forced_failures = 1;

    const MmsimLegalizerStats stats =
        mmsim_legalize_continuous(design, rows, options);
    EXPECT_TRUE(stats.recovery.attempted()) << gen::to_string(mode);
    EXPECT_TRUE(stats.recovery.audit_ran) << gen::to_string(mode);
    for (const SolveFailure& failure : stats.recovery.failures) {
      for (const std::size_t c : failure.cells) {
        const db::Cell& cell = design.cells()[c];
        EXPECT_GE(cell.x, -1e-9) << gen::to_string(mode);
        EXPECT_LE(cell.x + cell.width, design.chip().width() + 1e-9)
            << gen::to_string(mode);
      }
    }
  }
}

}  // namespace
}  // namespace mch::legal
