// Bitwise-identity suite for the SIMD linalg kernels: at every level the
// CPU supports (scalar, AVX2, AVX-512), the CSR gathers and the flat
// block-diagonal sweeps must reproduce the scalar reference bit for bit —
// the dispatch level is a pure performance knob (ALGORITHM.md ¶13).
// Runs again as ".mt4" with MCH_THREADS=4 so the contract also holds
// through the parallel runtime's chunked sweeps, and as ".simd-off" with
// MCH_SIMD=0 where every level collapses to the scalar loop.
#include "linalg/simd.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "linalg/block_diag.h"
#include "linalg/csr.h"
#include "linalg/dense_matrix.h"
#include "linalg/simd_kernels.h"
#include "linalg/sparse.h"

namespace mch::linalg {
namespace {

bool bitwise_equal(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (simd_level_supported() >= SimdLevel::kAvx2)
    levels.push_back(SimdLevel::kAvx2);
  if (simd_level_supported() >= SimdLevel::kAvx512)
    levels.push_back(SimdLevel::kAvx512);
  return levels;
}

/// Restores the entry level when a test returns, so level flips cannot
/// leak across test cases.
class LevelGuard {
 public:
  LevelGuard() : entry_(simd_level()) {}
  ~LevelGuard() { set_simd_level(entry_); }

 private:
  SimdLevel entry_;
};

/// The spacing-constraint shape: ≤2 entries per row (gather2-eligible),
/// both signs, a sprinkling of empty and single-entry rows so the blend
/// masks of the short-row lanes are exercised.
CsrMatrix gather2_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> col(0, cols - 1);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  CooMatrix coo(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    if (r % 11 == 3) continue;  // empty row
    coo.add(r, col(rng), val(rng));
    if (r % 5 != 1) coo.add(r, col(rng), val(rng));
  }
  return CsrMatrix::from_coo(coo);
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  Vector v(n);
  for (double& x : v) x = val(rng);
  return v;
}

TEST(SimdDispatchTest, SetLevelClampsToHardware) {
  LevelGuard guard;
  // Whatever we ask for, the installed level never exceeds the CPU.
  for (const SimdLevel request :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    const SimdLevel installed = set_simd_level(request);
    EXPECT_LE(static_cast<int>(installed),
              static_cast<int>(simd_level_supported()));
    EXPECT_EQ(installed, simd_level());
  }
  EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx512), "avx512");
}

TEST(SimdDispatchTest, KernelTableNullAtScalar) {
  EXPECT_EQ(kernels::csr_simd_kernels(SimdLevel::kScalar), nullptr);
}

TEST(SimdCsrTest, MultiplyAddBitwiseAcrossLevels) {
  LevelGuard guard;
  const CsrMatrix a = gather2_matrix(257, 193, 11);  // off power-of-2 sizes
  const Vector x = random_vector(193, 12);

  set_simd_level(SimdLevel::kScalar);
  Vector reference = random_vector(257, 13);
  a.multiply_add(0.7, x, reference);

  for (const SimdLevel level : supported_levels()) {
    ASSERT_EQ(set_simd_level(level), level);
    Vector y = random_vector(257, 13);
    a.multiply_add(0.7, x, y);
    EXPECT_TRUE(bitwise_equal(y, reference)) << simd_level_name(level);
  }
}

TEST(SimdCsrTest, MultiplyAdd2BitwiseAcrossLevels) {
  LevelGuard guard;
  const CsrMatrix a = gather2_matrix(300, 210, 21);
  const Vector x1 = random_vector(210, 22);
  const Vector x2 = random_vector(210, 23);

  set_simd_level(SimdLevel::kScalar);
  Vector reference = random_vector(300, 24);
  a.multiply_add2(1.25, x1, -0.5, x2, reference);

  for (const SimdLevel level : supported_levels()) {
    ASSERT_EQ(set_simd_level(level), level);
    Vector y = random_vector(300, 24);
    a.multiply_add2(1.25, x1, -0.5, x2, y);
    EXPECT_TRUE(bitwise_equal(y, reference)) << simd_level_name(level);
  }
}

TEST(SimdCsrTest, MultiplyTransposeAdd2BitwiseAcrossLevels) {
  LevelGuard guard;
  // The transpose sweep gathers through Bᵀ's own gather2 view, so build a
  // matrix whose *columns* have ≤2 entries by transposing the row shape.
  const CsrMatrix a = gather2_matrix(180, 260, 31);
  const Vector x1 = random_vector(180, 32);
  const Vector x2 = random_vector(180, 33);

  set_simd_level(SimdLevel::kScalar);
  Vector reference = random_vector(260, 34);
  a.multiply_transpose_add2(0.9, x1, 1.1, x2, reference);

  for (const SimdLevel level : supported_levels()) {
    ASSERT_EQ(set_simd_level(level), level);
    Vector y = random_vector(260, 34);
    a.multiply_transpose_add2(0.9, x1, 1.1, x2, y);
    EXPECT_TRUE(bitwise_equal(y, reference)) << simd_level_name(level);
  }
}

/// Mixed scalar/general blocks: the flat sweeps vectorize the scalar lanes
/// and must leave the dense-block positions to the scalar block path.
BlockDiagMatrix mixed_block_matrix(std::size_t scalars, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(0.5, 3.0);
  BlockDiagMatrix k;
  for (std::size_t i = 0; i < scalars; ++i) {
    k.add_scalar_block(val(rng));
    if (i % 17 == 5) {  // interleave a 2×2 general block
      DenseMatrix block(2, 2);
      block(0, 0) = val(rng) + 2.0;
      block(0, 1) = 0.3;
      block(1, 0) = 0.3;
      block(1, 1) = val(rng) + 2.0;
      k.add_block(block);
    }
  }
  return k;
}

TEST(SimdBlockDiagTest, MultiplyAddAndSolveBitwiseAcrossLevels) {
  LevelGuard guard;
  const BlockDiagMatrix k = mixed_block_matrix(300, 41);
  const std::size_t n = k.size();
  const Vector x = random_vector(n, 42);

  set_simd_level(SimdLevel::kScalar);
  Vector ref_mul = random_vector(n, 43);
  k.multiply_add(0.8, x, ref_mul);
  Vector ref_solve;
  k.solve(x, ref_solve);
  Vector ref_shifted;
  k.solve_shifted(1.0, 0.5, x, ref_shifted);

  for (const SimdLevel level : supported_levels()) {
    ASSERT_EQ(set_simd_level(level), level);
    Vector y = random_vector(n, 43);
    k.multiply_add(0.8, x, y);
    EXPECT_TRUE(bitwise_equal(y, ref_mul)) << simd_level_name(level);
    Vector solved;
    k.solve(x, solved);
    EXPECT_TRUE(bitwise_equal(solved, ref_solve)) << simd_level_name(level);
    Vector shifted;
    k.solve_shifted(1.0, 0.5, x, shifted);
    EXPECT_TRUE(bitwise_equal(shifted, ref_shifted))
        << simd_level_name(level);
  }
}

}  // namespace
}  // namespace mch::linalg
