#include "linalg/csr.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "linalg/simd.h"
#include "linalg/simd_kernels.h"
#include "linalg/sparse.h"
#include "runtime/parallel.h"
#include "util/check.h"

namespace mch::linalg {

namespace {
using runtime::kGrainRows;
using runtime::parallel_for;

kernels::CsrGather2Ctx gather2_ctx(const CsrGather2& g) {
  return kernels::CsrGather2Ctx{g.v0.data(), g.v1.data(), g.c0.data(),
                                g.c1.data(), g.len.data()};
}
}  // namespace

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

CsrMatrix::CsrMatrix(const CsrMatrix& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      row_ptr_(other.row_ptr_),
      col_idx_(other.col_idx_),
      values_(other.values_) {
  std::lock_guard<std::mutex> lock(other.transpose_mutex_);
  transpose_cache_ = other.transpose_cache_;
  gather2_cache_ = other.gather2_cache_;
}

CsrMatrix& CsrMatrix::operator=(const CsrMatrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = other.row_ptr_;
  col_idx_ = other.col_idx_;
  values_ = other.values_;
  std::shared_ptr<const CsrMatrix> cache;
  std::shared_ptr<const CsrGather2> gather_cache;
  {
    std::lock_guard<std::mutex> lock(other.transpose_mutex_);
    cache = other.transpose_cache_;
    gather_cache = other.gather2_cache_;
  }
  std::lock_guard<std::mutex> lock(transpose_mutex_);
  transpose_cache_ = std::move(cache);
  gather2_cache_ = std::move(gather_cache);
  return *this;
}

CsrMatrix::CsrMatrix(CsrMatrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      row_ptr_(std::move(other.row_ptr_)),
      col_idx_(std::move(other.col_idx_)),
      values_(std::move(other.values_)),
      transpose_cache_(std::move(other.transpose_cache_)),
      gather2_cache_(std::move(other.gather2_cache_)) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.row_ptr_.assign(1, 0);
}

CsrMatrix& CsrMatrix::operator=(CsrMatrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = std::move(other.row_ptr_);
  col_idx_ = std::move(other.col_idx_);
  values_ = std::move(other.values_);
  transpose_cache_ = std::move(other.transpose_cache_);
  gather2_cache_ = std::move(other.gather2_cache_);
  other.rows_ = 0;
  other.cols_ = 0;
  other.row_ptr_.assign(1, 0);
  return *this;
}

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  check_index_range(coo.cols(), "CsrMatrix columns");
  CsrMatrix csr(coo.rows(), coo.cols());
  const std::size_t n = coo.entries();

  // Counting sort by row.
  std::vector<std::size_t> counts(coo.rows() + 1, 0);
  for (std::size_t k = 0; k < n; ++k) ++counts[coo.row_indices()[k] + 1];
  std::partial_sum(counts.begin(), counts.end(), counts.begin());

  std::vector<std::size_t> cols(n);
  std::vector<double> vals(n);
  {
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t slot = cursor[coo.row_indices()[k]]++;
      cols[slot] = coo.col_indices()[k];
      vals[slot] = coo.values()[k];
    }
  }

  // Sort within each row by column and merge duplicates.
  csr.row_ptr_.assign(coo.rows() + 1, 0);
  csr.col_idx_.reserve(n);
  csr.values_.reserve(n);
  std::vector<std::size_t> order;
  for (std::size_t r = 0; r < coo.rows(); ++r) {
    const std::size_t begin = counts[r];
    const std::size_t end = counts[r + 1];
    order.resize(end - begin);
    std::iota(order.begin(), order.end(), begin);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return cols[a] < cols[b]; });
    std::size_t i = 0;
    while (i < order.size()) {
      const std::size_t col = cols[order[i]];
      double sum = 0.0;
      while (i < order.size() && cols[order[i]] == col) sum += vals[order[i++]];
      if (sum != 0.0) {
        csr.col_idx_.push_back(static_cast<index_t>(col));
        csr.values_.push_back(sum);
      }
    }
    csr.row_ptr_[r + 1] = csr.col_idx_.size();
  }
  return csr;
}

CsrMatrix CsrMatrix::identity(std::size_t n) {
  check_index_range(n, "CsrMatrix identity");
  CsrMatrix eye(n, n);
  eye.col_idx_.resize(n);
  eye.values_.assign(n, 1.0);
  std::iota(eye.col_idx_.begin(), eye.col_idx_.end(), index_t{0});
  std::iota(eye.row_ptr_.begin(), eye.row_ptr_.end(), std::size_t{0});
  return eye;
}

CsrMatrix CsrMatrix::from_parts(std::size_t rows, std::size_t cols,
                                std::vector<std::size_t> row_ptr,
                                std::vector<index_t> col_idx, Vector values) {
  check_index_range(cols, "CsrMatrix columns");
  MCH_CHECK_MSG(row_ptr.size() == rows + 1 && row_ptr.front() == 0 &&
                    row_ptr.back() == col_idx.size() &&
                    col_idx.size() == values.size(),
                "inconsistent CSR arrays");
  CsrMatrix csr(rows, cols);
  csr.row_ptr_ = std::move(row_ptr);
  csr.col_idx_ = std::move(col_idx);
  csr.values_ = std::move(values);
  return csr;
}

void CsrMatrix::multiply(const Vector& x, Vector& y) const {
  MCH_CHECK(x.size() == cols_);
  y.assign(rows_, 0.0);
  multiply_add(1.0, x, y);
}

void CsrMatrix::multiply_add(double alpha, const Vector& x, Vector& y) const {
  MCH_CHECK(x.size() == cols_ && y.size() == rows_);
  // Row-parallel: each output row is owned by exactly one iteration. The
  // SIMD path runs rows 4/8 at a time through the gather table; bitwise
  // identical to the scalar loop (see simd_kernels.h).
  if (const auto* sk = kernels::csr_simd_kernels(simd_level())) {
    if (const CsrGather2* g = gather2_view()) {
      const kernels::CsrGather2Ctx ctx = gather2_ctx(*g);
      parallel_for(std::size_t{0}, rows_, kGrainRows,
                   [&](std::size_t lo, std::size_t hi) {
                     sk->add(ctx, alpha, x.data(), y.data(), lo, hi);
                   });
      return;
    }
  }
  parallel_for(std::size_t{0}, rows_, kGrainRows,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t r = lo; r < hi; ++r) {
                   double sum = 0.0;
                   for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
                     sum += values_[k] * x[col_idx_[k]];
                   y[r] += alpha * sum;
                 }
               });
}

void CsrMatrix::multiply_add2(double a1, const Vector& x1, double a2,
                              const Vector& x2, Vector& y) const {
  MCH_CHECK(x1.size() == cols_ && x2.size() == cols_ && y.size() == rows_);
  // One pass over the structure; per row, the two sums are accumulated and
  // applied in the same order the two separate multiply_add calls would
  // use, so the result is bitwise identical to the sequential pair.
  if (const auto* sk = kernels::csr_simd_kernels(simd_level())) {
    if (const CsrGather2* g = gather2_view()) {
      const kernels::CsrGather2Ctx ctx = gather2_ctx(*g);
      parallel_for(std::size_t{0}, rows_, kGrainRows,
                   [&](std::size_t lo, std::size_t hi) {
                     sk->add2(ctx, a1, x1.data(), a2, x2.data(), y.data(), lo,
                              hi);
                   });
      return;
    }
  }
  parallel_for(std::size_t{0}, rows_, kGrainRows,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t r = lo; r < hi; ++r) {
                   double sum1 = 0.0;
                   double sum2 = 0.0;
                   for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1];
                        ++k) {
                     const double v = values_[k];
                     const std::size_t c = col_idx_[k];
                     sum1 += v * x1[c];
                     sum2 += v * x2[c];
                   }
                   y[r] += a1 * sum1;
                   y[r] += a2 * sum2;
                 }
               });
}

const CsrMatrix& CsrMatrix::transpose_view() const {
  {
    std::lock_guard<std::mutex> lock(transpose_mutex_);
    if (transpose_cache_) return *transpose_cache_;
  }
  // Build outside the lock (from_coo is the expensive part), then publish.
  // Two threads racing here build identical views; the first store wins.
  auto built = std::make_shared<const CsrMatrix>(transpose());
  std::lock_guard<std::mutex> lock(transpose_mutex_);
  if (!transpose_cache_) transpose_cache_ = std::move(built);
  return *transpose_cache_;
}

const CsrGather2* CsrMatrix::gather2_view() const {
  {
    std::lock_guard<std::mutex> lock(transpose_mutex_);
    if (gather2_cache_)
      return gather2_cache_->eligible ? gather2_cache_.get() : nullptr;
  }
  // Build outside the lock, publish under it; racing builds are identical
  // and the first store wins. An ineligible matrix caches a stub so the
  // row-length scan never repeats.
  auto table = std::make_shared<CsrGather2>();
  bool fits = cols_ <= std::numeric_limits<std::uint32_t>::max();
  for (std::size_t r = 0; fits && r < rows_; ++r)
    fits = row_ptr_[r + 1] - row_ptr_[r] <= 2;
  if (fits) {
    table->v0.assign(rows_, 0.0);
    table->v1.assign(rows_, 0.0);
    table->c0.assign(rows_, 0);
    table->c1.assign(rows_, 0);
    table->len.assign(rows_, 0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::size_t begin = row_ptr_[r];
      const std::size_t n = row_ptr_[r + 1] - begin;
      table->len[r] = static_cast<std::uint8_t>(n);
      if (n >= 1) {
        table->v0[r] = values_[begin];
        table->c0[r] = static_cast<std::uint32_t>(col_idx_[begin]);
      }
      if (n >= 2) {
        table->v1[r] = values_[begin + 1];
        table->c1[r] = static_cast<std::uint32_t>(col_idx_[begin + 1]);
      }
    }
    table->eligible = true;
  }
  std::lock_guard<std::mutex> lock(transpose_mutex_);
  if (!gather2_cache_) gather2_cache_ = std::move(table);
  return gather2_cache_->eligible ? gather2_cache_.get() : nullptr;
}

void CsrMatrix::multiply_transpose(const Vector& x, Vector& y) const {
  MCH_CHECK(x.size() == rows_);
  y.assign(cols_, 0.0);
  multiply_transpose_add(1.0, x, y);
}

void CsrMatrix::multiply_transpose_add(double alpha, const Vector& x,
                                       Vector& y) const {
  MCH_CHECK(x.size() == rows_ && y.size() == cols_);
  // Gather through the cached Aᵀ view rather than scattering into y: row c
  // of Aᵀ lists exactly the entries of column c of A, so each output
  // element is owned by one iteration and rows parallelize safely. The
  // entries arrive in the same ascending-row order the serial scatter
  // visited them, and the result does not depend on the thread count.
  const CsrMatrix& at = transpose_view();
  if (const auto* sk = kernels::csr_simd_kernels(simd_level())) {
    if (const CsrGather2* g = at.gather2_view()) {
      const kernels::CsrGather2Ctx ctx = gather2_ctx(*g);
      parallel_for(std::size_t{0}, cols_, kGrainRows,
                   [&](std::size_t lo, std::size_t hi) {
                     sk->add(ctx, alpha, x.data(), y.data(), lo, hi);
                   });
      return;
    }
  }
  parallel_for(std::size_t{0}, cols_, kGrainRows,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t c = lo; c < hi; ++c) {
                   double sum = 0.0;
                   for (std::size_t k = at.row_ptr_[c]; k < at.row_ptr_[c + 1];
                        ++k)
                     sum += at.values_[k] * x[at.col_idx_[k]];
                   y[c] += alpha * sum;
                 }
               });
}

void CsrMatrix::multiply_transpose_add2(double a1, const Vector& x1, double a2,
                                        const Vector& x2, Vector& y) const {
  MCH_CHECK(x1.size() == rows_ && x2.size() == rows_ && y.size() == cols_);
  const CsrMatrix& at = transpose_view();
  if (const auto* sk = kernels::csr_simd_kernels(simd_level())) {
    if (const CsrGather2* g = at.gather2_view()) {
      const kernels::CsrGather2Ctx ctx = gather2_ctx(*g);
      parallel_for(std::size_t{0}, cols_, kGrainRows,
                   [&](std::size_t lo, std::size_t hi) {
                     sk->add2(ctx, a1, x1.data(), a2, x2.data(), y.data(), lo,
                              hi);
                   });
      return;
    }
  }
  parallel_for(std::size_t{0}, cols_, kGrainRows,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t c = lo; c < hi; ++c) {
                   double sum1 = 0.0;
                   double sum2 = 0.0;
                   for (std::size_t k = at.row_ptr_[c]; k < at.row_ptr_[c + 1];
                        ++k) {
                     const double v = at.values_[k];
                     const std::size_t r = at.col_idx_[k];
                     sum1 += v * x1[r];
                     sum2 += v * x2[r];
                   }
                   y[c] += a1 * sum1;
                   y[c] += a2 * sum2;
                 }
               });
}

CsrMatrix CsrMatrix::transpose() const {
  CooMatrix coo(cols_, rows_);
  coo.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      coo.add(col_idx_[k], r, values_[k]);
  return from_coo(coo);
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  MCH_CHECK(row < rows_ && col < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

}  // namespace mch::linalg
