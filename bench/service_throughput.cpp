// Resident-session ECO throughput (ROADMAP "legalization server").
//
// Loads one design into a service::LegalizationSession, then serves a
// randomized ECO trace (mostly small move batches, a few inserts/erases)
// and reports request latency percentiles and requests/sec. Every few
// requests the same design state is also legalized from scratch with the
// one-shot legal::legalize so the incremental path's speedup is measured
// against the exact work it avoids.
//
//   ./service_throughput [num-requests] [ops-per-request]
//   ./service_throughput --multi [num-designs] [num-clients]
//
// The default design is 50k cells (45k single + 5k double, density 0.7) at
// MCH_BENCH_SCALE=0.05-equivalent sizing; the counts scale linearly with
// MCH_BENCH_SCALE like the table benches.
//
// The --multi mode drives the two-level scheduler with a queue of many
// heterogeneous designs (default 120, sized 400–2400 cells): first a
// single client submits every design serially, then num-clients client
// threads drain the same queue concurrently, each request served through
// its own match-mode LegalizationSession on the shared worker pool. Every
// request's positions must hash bitwise-identical across the two phases
// (and, sampled, to the one-shot legal::legalize), and the wall-clock
// ratio must show >= 0.7 parallel efficiency against the machine's core
// count. Results land in results/service_throughput_multi.json.
//
// With tracing/metrics enabled the bench also writes observability
// artifacts next to its JSON snapshot: results/service_throughput.trace.json
// (Chrome trace events for the whole request stream) and
// results/service_throughput.metrics.json (the metrics-registry snapshot
// with per-request latency histograms). MCH_TRACE/MCH_METRICS paths
// override the defaults; the multi-client mode uses *_multi artifact names.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "gen/generator.h"
#include "io/table.h"
#include "legal/flow.h"
#include "obs/obs.h"
#include "service/session.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

/// FNV-1a over the raw bit patterns of the placed positions: equal hashes
/// across phases is the bench's bitwise-determinism witness.
std::uint64_t position_hash(const mch::db::Design& design) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    h ^= bits;
    h *= 1099511628211ull;
  };
  for (std::size_t c = 0; c < design.num_cells(); ++c) {
    if (design.cells()[c].erased) continue;
    mix(design.cells()[c].x);
    mix(design.cells()[c].y);
  }
  return h;
}

/// The heterogeneous request queue: design r's size cycles through a
/// small/medium mix (scaled by MCH_BENCH_SCALE like everything else) and
/// every design gets its own seed, so no two requests are alike.
std::size_t multi_design_cells(std::size_t r) {
  static const std::size_t kSizes[] = {400, 1500, 700, 2400,
                                       550, 1100, 850};
  const double sizing = mch::bench::bench_scale() / 0.05;
  const std::size_t cells = static_cast<std::size_t>(
      static_cast<double>(kSizes[r % (sizeof kSizes / sizeof kSizes[0])]) *
      sizing);
  return std::max<std::size_t>(cells, 50);
}

mch::db::Design make_multi_design(std::size_t r) {
  mch::gen::GeneratorOptions options;
  options.seed = mch::bench::bench_seed() + 7919 * (r + 1);
  const std::size_t cells = multi_design_cells(r);
  return mch::gen::generate_random_design(cells - cells / 10, cells / 10,
                                          0.7, options);
}

struct ServedRequest {
  std::uint64_t hash = 0;
  double seconds = 0.0;
  bool legal = false;
};

/// One queue entry end to end: generate the design, serve it through a
/// fresh match-mode session, and hash the positions.
ServedRequest serve_multi_design(std::size_t r) {
  mch::service::LegalizationSession session(make_multi_design(r));
  mch::Timer timer;
  const mch::service::SessionResult result =
      session.full_legalize(mch::service::SolveMode::kMatch);
  ServedRequest served;
  served.seconds = timer.seconds();
  served.legal = result.legal;
  served.hash = position_hash(session.design());
  return served;
}

int run_multi_client(std::size_t num_designs, std::size_t num_clients) {
  using namespace mch;
  const char* json_dir = std::getenv("MCH_BENCH_JSON_DIR");
  const std::string artifact_dir = json_dir != nullptr ? json_dir : "results";
  if (obs::trace_path().empty())
    obs::set_trace_path(artifact_dir + "/service_throughput_multi.trace.json");
  if (obs::metrics_path().empty())
    obs::set_metrics_path(artifact_dir +
                          "/service_throughput_multi.metrics.json");

  std::size_t total_cells = 0;
  for (std::size_t r = 0; r < num_designs; ++r)
    total_cells += multi_design_cells(r);
  std::printf(
      "multi-client queue: %zu heterogeneous designs (%zu cells total), "
      "%zu clients\n",
      num_designs, total_cells, num_clients);

  // Phase 1 — single-client serial submission: the baseline every
  // efficiency claim is measured against, and the reference hash per
  // request. Sampled requests are also checked against the one-shot
  // legal::legalize (the session's match-mode bitwise contract).
  std::vector<ServedRequest> serial(num_designs);
  std::size_t illegal = 0;
  std::size_t hash_mismatches = 0;
  const std::size_t scratch_every = std::max<std::size_t>(1, num_designs / 8);
  Timer serial_timer;
  for (std::size_t r = 0; r < num_designs; ++r) {
    serial[r] = serve_multi_design(r);
    if (!serial[r].legal) ++illegal;
  }
  const double serial_seconds = serial_timer.seconds();
  for (std::size_t r = 0; r < num_designs; r += scratch_every) {
    db::Design copy = make_multi_design(r);
    legal::FlowOptions options;
    options.solver.partition = legal::PartitionMode::kMatch;
    const legal::FlowResult scratch = legal::legalize(copy, options);
    if (!scratch.legal) ++illegal;
    if (position_hash(copy) != serial[r].hash) {
      std::printf("FAIL: request %zu differs from one-shot legalize\n", r);
      ++hash_mismatches;
    }
  }

  // Phase 2 — the same queue drained by num_clients concurrent submitters.
  // Each client claims the next design off a shared cursor; all component
  // solves from all in-flight requests interleave on the shared pool.
  const std::uint64_t jobs_before = obs::counter("sched.jobs").value();
  const std::uint64_t steals_before = obs::counter("sched.steals").value();
  std::vector<ServedRequest> multi(num_designs);
  std::atomic<std::size_t> cursor{0};
  std::atomic<int> ready{0};
  Timer multi_timer;
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (std::size_t client = 0; client < num_clients; ++client) {
    clients.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < static_cast<int>(num_clients))
        std::this_thread::yield();
      for (;;) {
        const std::size_t r = cursor.fetch_add(1);
        if (r >= num_designs) return;
        multi[r] = serve_multi_design(r);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double multi_seconds = multi_timer.seconds();

  std::vector<double> latencies;
  latencies.reserve(num_designs);
  for (std::size_t r = 0; r < num_designs; ++r) {
    latencies.push_back(multi[r].seconds);
    if (!multi[r].legal) ++illegal;
    if (multi[r].hash != serial[r].hash) {
      std::printf("FAIL: request %zu not bitwise stable under %zu clients\n",
                  r, num_clients);
      ++hash_mismatches;
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // A client thread is the unit of submission-side parallelism, but the
  // machine can't run more of them than it has cores — the efficiency
  // denominator is the smaller of the two ("parallel efficiency at the
  // machine's core count").
  const double ideal =
      static_cast<double>(std::min<std::size_t>(num_clients, hw));
  const double speedup =
      multi_seconds > 0.0 ? serial_seconds / multi_seconds : 0.0;
  const double efficiency = speedup / ideal;

  const std::uint64_t sched_jobs = obs::counter("sched.jobs").value();
  const std::uint64_t steals =
      obs::counter("sched.steals").value() - steals_before;

  io::Table table({"designs", "clients", "serial s", "multi s", "speedup",
                   "efficiency", "p50 ms", "p99 ms"});
  table.row()
      .cell(num_designs)
      .cell(num_clients)
      .cell(serial_seconds)
      .cell(multi_seconds)
      .cell(speedup)
      .cell(efficiency)
      .cell(percentile(latencies, 0.50) * 1e3)
      .cell(percentile(latencies, 0.99) * 1e3);
  std::printf("\n%s\n", table.to_text().c_str());
  std::printf(
      "scheduler: %llu jobs since start (%llu this phase), %llu steals, "
      "queue depth p99 %.1f\n",
      static_cast<unsigned long long>(sched_jobs),
      static_cast<unsigned long long>(sched_jobs - jobs_before),
      static_cast<unsigned long long>(steals),
      obs::histogram("sched.queue_depth").percentile(0.99));
  std::printf("illegal results: %zu, hash mismatches: %zu\n", illegal,
              hash_mismatches);
  mch::bench::print_peak_rss();

  bench::JsonSnapshot json("service_throughput_multi");
  json.add("serial/total", total_cells, serial_seconds);
  json.add("multi/total", total_cells, multi_seconds);
  json.add("multi/p50", total_cells, percentile(latencies, 0.50));
  json.add("multi/p99", total_cells, percentile(latencies, 0.99));
  // Dimensionless records, kept in the same schema: "cells" carries the
  // client count and "seconds" the ratio.
  json.add("multi/speedup", num_clients, speedup);
  json.add("multi/efficiency", num_clients, efficiency);
  json.write();

  obs::set_metrics_attribute("bench", "service_throughput_multi");
  obs::set_metrics_attribute("designs", std::to_string(num_designs));
  obs::set_metrics_attribute("clients", std::to_string(num_clients));
  obs::flush_artifacts();

  if (illegal > 0 || hash_mismatches > 0) return 1;
  // The scheduler's acceptance bar: >= 0.7 parallel efficiency at the
  // machine's core count against single-client serial submission.
  if (efficiency < 0.7) {
    std::printf("FAIL: efficiency %.2f below the 0.7 bar\n", efficiency);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mch;
  bench::bench_threads(argc, argv);
  bench::print_bench_banner("service_throughput");

  if (argc > 1 && std::strcmp(argv[1], "--multi") == 0) {
    const std::size_t num_designs =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 120;
    const std::size_t num_clients =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3]))
                 : std::max(2u, std::thread::hardware_concurrency());
    return run_multi_client(std::max<std::size_t>(num_designs, 1),
                            std::max<std::size_t>(num_clients, 1));
  }

  // This bench always emits the observability artifacts (the request stream
  // is exactly what the trace/histogram layer exists to explain); explicit
  // MCH_TRACE/MCH_METRICS paths take precedence over the defaults.
  const char* json_dir = std::getenv("MCH_BENCH_JSON_DIR");
  const std::string artifact_dir = json_dir != nullptr ? json_dir : "results";
  if (obs::trace_path().empty())
    obs::set_trace_path(artifact_dir + "/service_throughput.trace.json");
  if (obs::metrics_path().empty())
    obs::set_metrics_path(artifact_dir + "/service_throughput.metrics.json");

  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 128;
  const std::size_t ops_per_request =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8;

  // 50k cells at the default scale (0.05), growing linearly like the table
  // benches.
  const double sizing = bench::bench_scale() / 0.05;
  const auto num_single = static_cast<std::size_t>(45000 * sizing);
  const auto num_double = static_cast<std::size_t>(5000 * sizing);
  gen::GeneratorOptions gen_options;
  gen_options.seed = bench::bench_seed();
  db::Design design =
      gen::generate_random_design(num_single, num_double, 0.7, gen_options);
  std::printf("design: %zu cells (%zu single, %zu double), density 0.70\n",
              design.num_cells(), num_single, num_double);

  service::SessionOptions session_options;
  service::LegalizationSession session(std::move(design), session_options);

  // Establish the resident state: legalize, adopt the legal placement as
  // the GP (the ECO baseline), and solve once more so the session's model/
  // partition/solution describe the committed state.
  service::SessionResult full = session.full_legalize();
  std::printf("initial full legalize: %s, %.3fs, %zu components\n",
              full.legal ? "legal" : "ILLEGAL", full.seconds,
              full.session.components_total);
  session.commit_legal_as_gp();
  full = session.full_legalize();
  std::printf("resident solve on committed GP: %s, %.3fs\n",
              full.legal ? "legal" : "ILLEGAL", full.seconds);

  const db::Chip& chip = session.design().chip();
  Rng rng(bench::bench_seed() + 1234);
  const auto pick_live_movable = [&]() -> std::size_t {
    for (;;) {
      const auto id = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(session.design().num_cells()) - 1));
      const db::Cell& cell = session.design().cells()[id];
      if (!cell.fixed && !cell.erased) return id;
    }
  };

  std::vector<double> latencies;  // seconds per ECO request
  latencies.reserve(num_requests);
  std::vector<double> scratch_seconds;
  double eco_at_scratch_samples = 0.0;  // ECO latency on the sampled requests
  std::size_t illegal = 0;
  std::size_t fallbacks = 0;
  std::size_t warm_hits = 0;
  double dirty_sum = 0.0;
  double reused_sum = 0.0;
  double touched_sum = 0.0;

  const std::size_t scratch_every = std::max<std::size_t>(1, num_requests / 8);

  for (std::size_t req = 0; req < num_requests; ++req) {
    service::EcoRequest request;
    for (std::size_t k = 0; k < ops_per_request; ++k) {
      const double roll = rng.uniform();
      if (roll < 0.90) {
        const std::size_t id = pick_live_movable();
        const db::Cell& cell = session.design().cells()[id];
        request.ops.push_back(service::EcoOp::move(
            id, cell.gp_x + rng.normal(0.0, 6.0 * chip.site_width),
            cell.gp_y + rng.normal(0.0, 0.8 * chip.row_height)));
      } else if (roll < 0.95) {
        db::Cell payload = session.design().cells()[pick_live_movable()];
        payload.gp_x = rng.uniform(0.0, chip.width() - payload.width);
        payload.gp_y = rng.uniform(0.0, chip.height());
        request.ops.push_back(service::EcoOp::insert(payload));
      } else {
        request.ops.push_back(service::EcoOp::erase(pick_live_movable()));
      }
    }

    const service::SessionResult result = session.eco(request);
    latencies.push_back(result.seconds);
    if (!result.legal) ++illegal;
    fallbacks += result.session.full_solve_fallbacks;
    warm_hits += result.session.warm_start_hits;
    dirty_sum += static_cast<double>(result.session.components_dirty);
    reused_sum += static_cast<double>(result.session.components_reused);
    touched_sum += static_cast<double>(result.session.touched_cells);

    // Sampled from-scratch comparison: legalize a copy of the exact same
    // design state with the one-shot flow.
    if (req % scratch_every == 0) {
      db::Design copy = session.design();
      Timer timer;
      const legal::FlowResult scratch =
          legal::legalize(copy, session_options.flow);
      scratch_seconds.push_back(timer.seconds());
      eco_at_scratch_samples += result.seconds;
      if (!scratch.legal) ++illegal;
    }
  }

  const double n = static_cast<double>(num_requests);
  double total = 0.0;
  for (const double s : latencies) total += s;

  io::Table table({"requests", "ops/req", "p50 ms", "p99 ms", "mean ms",
                   "req/s", "dirty", "reused", "warm rate", "fallbacks"});
  table.row()
      .cell(num_requests)
      .cell(ops_per_request)
      .cell(percentile(latencies, 0.50) * 1e3)
      .cell(percentile(latencies, 0.99) * 1e3)
      .cell(total / n * 1e3)
      .cell(n / total)
      .cell(dirty_sum / n)
      .cell(reused_sum / n)
      .cell(dirty_sum > 0.0 ? static_cast<double>(warm_hits) / dirty_sum : 0.0)
      .cell(fallbacks);
  std::printf("\n%s\n", table.to_text().c_str());
  std::printf("mean touched cells per request: %.1f\n", touched_sum / n);

  double scratch_total = 0.0;
  for (const double s : scratch_seconds) scratch_total += s;
  const double scratch_mean =
      scratch_seconds.empty()
          ? 0.0
          : scratch_total / static_cast<double>(scratch_seconds.size());
  const double eco_mean_at_samples =
      scratch_seconds.empty()
          ? 0.0
          : eco_at_scratch_samples /
                static_cast<double>(scratch_seconds.size());
  const double speedup =
      eco_mean_at_samples > 0.0 ? scratch_mean / eco_mean_at_samples : 0.0;
  std::printf(
      "from-scratch legalize (sampled %zux): mean %.3fs; incremental ECO on "
      "the same states: mean %.4fs — speedup %.1fx\n",
      scratch_seconds.size(), scratch_mean, eco_mean_at_samples, speedup);
  std::printf("illegal results: %zu\n", illegal);
  mch::bench::print_peak_rss();

  const std::size_t cells = session.design().num_cells();
  bench::JsonSnapshot json("service_throughput");
  json.add("full_legalize", cells, full.seconds);
  json.add("eco/p50", cells, percentile(latencies, 0.50));
  json.add("eco/p99", cells, percentile(latencies, 0.99));
  json.add("eco/mean", cells, total / n);
  json.add("scratch/mean", cells, scratch_mean);
  json.write();

  obs::set_metrics_attribute("bench", "service_throughput");
  obs::set_metrics_attribute("requests", std::to_string(num_requests));
  obs::set_metrics_attribute("ops_per_request",
                             std::to_string(ops_per_request));
  obs::flush_artifacts();

  if (illegal > 0) return 1;
  // The acceptance bar of the resident-session work: incremental ECO must
  // be at least 5x faster than re-legalizing from scratch.
  if (speedup < 5.0) {
    std::printf("FAIL: speedup %.1fx below the 5x bar\n", speedup);
    return 1;
  }
  return 0;
}
