// Site-granular occupancy tracking and nearest-free-position search.
//
// Shared machinery of the paper's Tetris-like allocation (§4), the Tetris
// baseline legalizer, and the DAC'16-style local legalizer. All coordinates
// are integer *site* indices; callers convert from distance units. Working
// on the site grid makes "cells must be located at placement sites" (problem
// constraint (2)) structural rather than a numerical afterthought.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "db/design.h"

namespace mch::legal {

using SiteIndex = std::int64_t;

/// Disjoint occupied intervals [start, end) on one row, auto-coalescing.
class RowOccupancy {
 public:
  /// True when [start, end) intersects no occupied interval.
  bool is_free(SiteIndex start, SiteIndex end) const;

  /// Marks [start, end) occupied. Requires is_free(start, end).
  void occupy(SiteIndex start, SiteIndex end);

  /// Removes exactly the span [start, end), which must be occupied. Used by
  /// legalizers that relocate already-placed cells.
  void release(SiteIndex start, SiteIndex end);

  /// Appends the intervals intersecting [lo, hi) to `out` (clipped).
  void collect(SiteIndex lo, SiteIndex hi,
               std::vector<std::pair<SiteIndex, SiteIndex>>& out) const;

  std::size_t interval_count() const { return intervals_.size(); }

 private:
  std::map<SiteIndex, SiteIndex> intervals_;  ///< start -> end, disjoint
};

/// A feasible placement candidate returned by the search.
struct PlacementCandidate {
  bool found = false;
  std::size_t base_row = 0;
  SiteIndex site = 0;
  double cost = 0.0;  ///< |Δx| + |Δy| in distance units from the target
};

/// Occupancy of the whole chip with placement search.
class OccupancyGrid {
 public:
  explicit OccupancyGrid(const db::Chip& chip);

  const db::Chip& chip() const { return chip_; }

  /// True when the w-site span at `site` is free on rows
  /// [base_row, base_row + height) and inside the chip.
  bool is_free(std::size_t base_row, std::size_t height, SiteIndex site,
               SiteIndex width_sites) const;

  /// Occupies the span. Requires is_free(...).
  void occupy(std::size_t base_row, std::size_t height, SiteIndex site,
              SiteIndex width_sites);

  /// Releases a span previously occupied.
  void release(std::size_t base_row, std::size_t height, SiteIndex site,
               SiteIndex width_sites);

  /// Convenience overloads taking a cell whose x/y are site/row aligned.
  void occupy_cell(const db::Cell& cell);
  void release_cell(const db::Cell& cell);

  /// Occupies every site/row the cell's outline touches, rounding outward.
  /// For obstacles whose position need not be grid-aligned.
  void occupy_outline(const db::Cell& cell);

  /// Finds the minimum-cost feasible position for a cell of the given
  /// height/width whose target is (target_x, target_y) in distance units.
  /// Honors rail compatibility for the cell. Cost is Manhattan distance.
  /// `max_row_distance` optionally restricts the row search radius (used by
  /// the local-window baselines); 0 means unrestricted.
  PlacementCandidate find_nearest(const db::Cell& cell, double target_x,
                                  double target_y,
                                  std::size_t max_row_distance = 0) const;

  /// Nearest feasible site for a fixed base row; cost is |Δx| only,
  /// measured from the target rounded to the nearest site (positions are
  /// site-quantized, so sub-site target precision is meaningless).
  /// Returns found = false when the row span cannot fit the width anywhere.
  PlacementCandidate find_in_rows(std::size_t base_row, std::size_t height,
                                  SiteIndex width_sites,
                                  double target_x) const;

  SiteIndex num_sites() const {
    return static_cast<SiteIndex>(chip_.num_sites);
  }

  /// Width of a cell in sites (rounded up — cells narrower than their site
  /// count cannot overlap when site-aligned).
  SiteIndex width_sites(const db::Cell& cell) const;

 private:
  db::Chip chip_;
  std::vector<RowOccupancy> rows_;
};

}  // namespace mch::legal
