// Model-based property tests: the interval-map occupancy structures are
// checked against a brute-force bitmap reference model under randomized
// operation sequences, and the windowed nearest-gap search is checked
// against exhaustive scanning.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "legal/eviction.h"
#include "legal/occupancy.h"
#include "util/rng.h"

namespace mch::legal {
namespace {

db::Chip test_chip(std::size_t rows = 8, std::size_t sites = 120) {
  db::Chip chip;
  chip.num_rows = rows;
  chip.num_sites = sites;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  return chip;
}

TEST(OccupancyPropertyTest, RandomOccupyReleaseMatchesBitmap) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    RowOccupancy row;
    std::vector<bool> bitmap(200, false);
    struct Span {
      SiteIndex start, end;
    };
    std::vector<Span> live;

    for (int op = 0; op < 300; ++op) {
      if (live.empty() || rng.bernoulli(0.6)) {
        // Try to occupy a random span; legal only if bitmap-free.
        const auto start =
            static_cast<SiteIndex>(rng.uniform_int(0, 190));
        const auto len = static_cast<SiteIndex>(rng.uniform_int(1, 9));
        const SiteIndex end = std::min<SiteIndex>(start + len, 200);
        bool free = true;
        for (SiteIndex i = start; i < end; ++i) free = free && !bitmap[i];
        ASSERT_EQ(row.is_free(start, end), free)
            << "trial " << trial << " op " << op;
        if (free) {
          row.occupy(start, end);
          for (SiteIndex i = start; i < end; ++i) bitmap[i] = true;
          live.push_back({start, end});
        }
      } else {
        // Release a random live span.
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        const Span span = live[pick];
        row.release(span.start, span.end);
        for (SiteIndex i = span.start; i < span.end; ++i) bitmap[i] = false;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    // Final agreement over every unit span.
    for (SiteIndex i = 0; i < 200; ++i)
      ASSERT_EQ(row.is_free(i, i + 1), !bitmap[i]) << "site " << i;
  }
}

TEST(OccupancyPropertyTest, FindInRowsMatchesExhaustiveSearch) {
  Rng rng(202);
  for (int trial = 0; trial < 30; ++trial) {
    const db::Chip chip = test_chip();
    OccupancyGrid grid(chip);
    // Random blockers.
    const int blocks = static_cast<int>(rng.uniform_int(0, 25));
    for (int b = 0; b < blocks; ++b) {
      const auto r = static_cast<std::size_t>(rng.uniform_int(0, 7));
      const auto s = static_cast<SiteIndex>(rng.uniform_int(0, 110));
      const auto w = static_cast<SiteIndex>(rng.uniform_int(1, 10));
      if (grid.is_free(r, 1, s, w)) grid.occupy(r, 1, s, w);
    }

    const auto base = static_cast<std::size_t>(rng.uniform_int(0, 6));
    const std::size_t height = rng.bernoulli(0.3) ? 2 : 1;
    const auto width = static_cast<SiteIndex>(rng.uniform_int(1, 12));
    const double target = rng.uniform(0.0, 120.0);

    const PlacementCandidate cand =
        grid.find_in_rows(base, height, width, target);

    // Exhaustive reference. find_in_rows quantizes the target to the
    // nearest site first, so the reference does too.
    const double target_site =
        static_cast<double>(std::llround(target / chip.site_width));
    bool exists = false;
    double best_cost = 1e18;
    for (SiteIndex s = 0; s + width <= 120; ++s) {
      if (!grid.is_free(base, height, s, width)) continue;
      exists = true;
      best_cost = std::min(
          best_cost, std::abs(static_cast<double>(s) - target_site));
    }

    ASSERT_EQ(cand.found, exists) << "trial " << trial;
    if (exists) {
      EXPECT_NEAR(cand.cost, best_cost, 1e-9) << "trial " << trial;
      EXPECT_TRUE(grid.is_free(base, height, cand.site, width));
    }
  }
}

TEST(OccupancyPropertyTest, FindNearestCandidateAlwaysPlaceable) {
  Rng rng(303);
  for (int trial = 0; trial < 20; ++trial) {
    const db::Chip chip = test_chip();
    OccupancyGrid grid(chip);
    const int blocks = static_cast<int>(rng.uniform_int(10, 40));
    for (int b = 0; b < blocks; ++b) {
      const auto r = static_cast<std::size_t>(rng.uniform_int(0, 7));
      const auto s = static_cast<SiteIndex>(rng.uniform_int(0, 100));
      const auto w = static_cast<SiteIndex>(rng.uniform_int(3, 20));
      if (grid.is_free(r, 1, s, w)) grid.occupy(r, 1, s, w);
    }
    db::Cell cell;
    cell.width = static_cast<double>(rng.uniform_int(2, 8));
    cell.height_rows = rng.bernoulli(0.3) ? 2 : 1;
    cell.bottom_rail =
        rng.bernoulli(0.5) ? db::RailType::kVss : db::RailType::kVdd;
    const PlacementCandidate cand = grid.find_nearest(
        cell, rng.uniform(0.0, 120.0), rng.uniform(0.0, 80.0));
    if (!cand.found) continue;
    EXPECT_TRUE(grid.is_free(cand.base_row, cell.height_rows, cand.site,
                             grid.width_sites(cell)));
    EXPECT_TRUE(cell.rail_compatible(chip, cand.base_row));
  }
}

TEST(OccupancyPropertyTest, UnalignedFixedOutlineFullyBlocks) {
  const db::Chip chip = test_chip();
  OwnedOccupancy occ(chip);
  db::Design design(chip);
  db::Cell macro;
  macro.width = 7.4;  // covers sites [3, 11) after outward rounding
  macro.height_rows = 2;
  macro.fixed = true;
  macro.x = macro.gp_x = 3.2;
  macro.y = macro.gp_y = 10.0;
  const std::size_t id = design.add_cell(macro);
  occ.place_fixed(design, id);
  EXPECT_FALSE(occ.is_free(1, 1, 3, 1));
  EXPECT_FALSE(occ.is_free(1, 1, 10, 1));
  EXPECT_FALSE(occ.is_free(2, 1, 5, 2));
  EXPECT_TRUE(occ.is_free(1, 1, 0, 3));
  EXPECT_TRUE(occ.is_free(1, 1, 11, 5));
  EXPECT_TRUE(occ.is_free(3, 1, 3, 8));  // row above the macro
  // The macro is found as a blocker and refuses eviction.
  const auto ids = occ.blockers(1, 2, 5, 3);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], id);
}

}  // namespace
}  // namespace mch::legal
