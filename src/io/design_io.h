// Design (de)serialization in a compact Bookshelf-like text format.
//
// The format stores the chip grid, every cell (dimensions, rail type, GP and
// current positions) and the netlist, so generated benchmark instances can
// be persisted, diffed, and re-loaded for reproducibility studies.
//
//   mchdesign 2
//   name <string>
//   chip <num_rows> <num_sites> <site_width> <row_height> <VSS|VDD>
//   cells <n>
//   <width> <height_rows> <VSS|VDD> <fixed 0|1> <gp_x> <gp_y> <x> <y>  × n
//   nets <k>
//   <npins> [<cell> <dx> <dy>]...                                     × k
//
// Version 1 files (without the fixed flag) are still read.
#pragma once

#include <iosfwd>
#include <string>

#include "db/design.h"

namespace mch::io {

/// Writes the design to a stream. Throws CheckError on stream failure.
void write_design(std::ostream& os, const db::Design& design);

/// Writes the design to a file.
void save_design(const std::string& path, const db::Design& design);

/// Parses a design from a stream. Throws CheckError on malformed input.
db::Design read_design(std::istream& is);

/// Loads a design from a file.
db::Design load_design(const std::string& path);

}  // namespace mch::io
