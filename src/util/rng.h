// Deterministic pseudo-random number generation.
//
// All stochastic components of the project (the benchmark generator above
// all) draw from this xoshiro256++ engine so that every suite, test, and
// bench run is reproducible bit-for-bit across platforms. std::mt19937 would
// also be deterministic, but distributions in <random> are not portable
// across standard libraries; we implement the few distributions we need.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace mch {

/// xoshiro256++ engine (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-seeds the engine; identical seeds give identical streams.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Box–Muller, cached pair).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) { return uniform() < p; }

 private:
  std::uint64_t state_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mch
