// The complete placement flow the paper's legalizer sits in, end to end on
// one netlist:
//
//   quadratic global placement  →  MMSIM legalization  →  detailed placement
//
//   ./full_flow [num-cells] [macros]
#include <cstdio>
#include <cstdlib>

#include "db/legality.h"
#include "dp/detailed.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "gp/quadratic_placer.h"
#include "io/svg.h"
#include "legal/flow.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace mch;
  const std::size_t num_cells =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4000;
  const std::size_t macros =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 4;

  // A netlisted design; the generator's placement is scrambled so only the
  // connectivity survives — global placement must do the real work.
  gen::GeneratorOptions options;
  options.seed = 42;
  options.fixed_macros = macros;
  db::Design design = gen::generate_random_design(
      num_cells - num_cells / 10, num_cells / 10, 0.5, options);
  Rng rng(43);
  for (db::Cell& cell : design.cells()) {
    if (cell.fixed) continue;
    cell.x = cell.gp_x = rng.uniform(0.0, design.chip().width() / 8.0);
    cell.y = cell.gp_y = rng.uniform(0.0, design.chip().height() / 8.0);
  }
  std::printf("netlist: %zu cells (%zu fixed macros), %zu nets\n",
              design.num_cells(), design.num_fixed_cells(),
              design.num_nets());

  // Stage 1: global placement. A strong anchor schedule hands the
  // legalizer a well-spread placement (our upper-bound spreader is plain
  // Tetris, so it needs more pull than a density-driven SimPL would).
  gp::GlobalPlacementOptions gp_options;
  gp_options.anchor_weight_step = 0.5;
  gp_options.iterations = 24;
  const gp::GlobalPlacementStats gp_stats = gp::place(design, gp_options);
  std::printf("[1] global placement:   HPWL %.0f (unconstrained optimum "
              "%.0f) in %.2fs\n",
              gp_stats.final_hpwl, gp_stats.initial_hpwl, gp_stats.seconds);
  io::SvgOptions svg;
  svg.pixels_per_unit = 900.0 / design.chip().width();
  svg.draw_displacement = false;
  io::save_svg("flow_1_global.svg", design, svg);

  // Stage 2: MMSIM legalization.
  const legal::FlowResult legal_result = legal::legalize(design);
  std::printf("[2] MMSIM legalization: %s, HPWL %.0f (+%.1f%%), "
              "displacement %.0f sites, %.2fs\n",
              legal_result.legal ? "legal" : "ILLEGAL",
              eval::hpwl(design),
              eval::delta_hpwl_fraction(design) * 100.0,
              eval::displacement(design).total_sites,
              legal_result.total_seconds);
  io::save_svg("flow_2_legal.svg", design, svg);

  // Stage 3: detailed placement.
  const dp::DetailedPlacementStats dp_stats = dp::refine(design);
  const db::LegalityReport final_report = db::check_legality(design);
  std::printf("[3] detailed placement: HPWL %.0f (-%.2f%%), %zu moves, "
              "%.2fs — %s\n",
              dp_stats.hpwl_after,
              dp_stats.improvement_fraction() * 100.0,
              dp_stats.reorder_moves + dp_stats.swap_moves +
                  dp_stats.shift_moves,
              dp_stats.seconds,
              final_report.legal() ? "still legal" : "ILLEGAL");
  io::save_svg("flow_3_refined.svg", design, svg);
  std::printf("wrote flow_1_global.svg, flow_2_legal.svg, "
              "flow_3_refined.svg\n");
  return legal_result.legal && final_report.legal() ? 0 : 1;
}
