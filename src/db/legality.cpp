#include "db/legality.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <unordered_set>

namespace mch::db {

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kOutsideChip:
      return "outside-chip";
    case ViolationKind::kOffSite:
      return "off-site";
    case ViolationKind::kOffRow:
      return "off-row";
    case ViolationKind::kOverlap:
      return "overlap";
    case ViolationKind::kRailMismatch:
      return "rail-mismatch";
  }
  return "unknown";
}

std::string LegalityReport::summary() const {
  std::ostringstream os;
  if (legal()) {
    os << "legal";
  } else {
    os << total_violations << " violations (outside=" << outside_chip
       << " off-site=" << off_site << " off-row=" << off_row
       << " overlap=" << overlaps << " rail=" << rail_mismatches
       << " max-overlap=" << max_overlap_depth << ")";
  }
  return os.str();
}

namespace {

void record(LegalityReport& report, const LegalityOptions& options,
            Violation violation) {
  ++report.total_violations;
  if (report.violations.size() < options.max_recorded)
    report.violations.push_back(std::move(violation));
}

/// Row index range [first, end) touched by a vertical outline [y, y + h),
/// clamped to the chip. Used for cells that are not row-aligned (fixed
/// macros and off-row violators), which must still occupy every row their
/// outline intersects so the overlap sweep sees them.
std::pair<std::size_t, std::size_t> touched_rows(const Chip& chip, double y,
                                                 double height, double eps) {
  const auto first = static_cast<std::size_t>(std::clamp(
      std::floor(y / chip.row_height + eps), 0.0,
      static_cast<double>(chip.num_rows)));
  const auto end = static_cast<std::size_t>(std::clamp(
      std::ceil((y + height) / chip.row_height - eps), 0.0,
      static_cast<double>(chip.num_rows)));
  return {first, end};
}

}  // namespace

LegalityReport check_legality(const Design& design,
                              const LegalityOptions& options) {
  LegalityReport report;
  const Chip& chip = design.chip();
  const double eps = options.tolerance;

  // Per-cell checks, and row occupancy lists for the overlap sweep.
  std::vector<std::vector<std::size_t>> row_cells(chip.num_rows);
  for (const Cell& cell : design.cells()) {
    // Tombstoned cells occupy nothing and obey no rules.
    if (cell.erased) continue;

    // (1) Inside the chip region.
    const double height =
        static_cast<double>(cell.height_rows) * chip.row_height;
    if (cell.x < -eps || cell.x + cell.width > chip.width() + eps ||
        cell.y < -eps || cell.y + height > chip.height() + eps) {
      ++report.outside_chip;
      std::ostringstream os;
      os << "cell " << cell.id << " at (" << cell.x << "," << cell.y
         << ") extends outside the chip";
      record(report, options,
             {ViolationKind::kOutsideChip, cell.id, 0, os.str()});
    }

    // Fixed cells (obstacles) are exempt from alignment and rail rules —
    // they are immutable input. They still participate in the overlap
    // sweep, occupying every row their outline touches.
    if (cell.fixed) {
      const auto [first_row, end_row] = touched_rows(chip, cell.y, height, eps);
      for (std::size_t r = first_row; r < end_row; ++r)
        row_cells[r].push_back(cell.id);
      continue;
    }

    // (2a) On a row boundary. The vertical-fit comparison must happen in
    // the double domain: num_rows and height_rows are unsigned, and their
    // difference wraps for a cell taller than the chip.
    const double row_float = cell.y / chip.row_height;
    const double row_round = std::round(row_float);
    const bool on_row =
        std::abs(cell.y - row_round * chip.row_height) <= eps &&
        row_round >= 0.0 &&
        row_round <= static_cast<double>(chip.num_rows) -
                         static_cast<double>(cell.height_rows);
    if (!on_row) {
      ++report.off_row;
      std::ostringstream os;
      os << "cell " << cell.id << " y=" << cell.y << " not on a row";
      record(report, options, {ViolationKind::kOffRow, cell.id, 0, os.str()});
      // An off-row cell still physically occupies every row its outline
      // touches; register it there so the overlap sweep can see collisions
      // with row-aligned cells instead of silently skipping it.
      const auto [first_row, end_row] = touched_rows(chip, cell.y, height, eps);
      for (std::size_t r = first_row; r < end_row; ++r)
        row_cells[r].push_back(cell.id);
    }

    // (2b) On a site boundary.
    if (options.require_site_alignment) {
      const double site_float = cell.x / chip.site_width;
      if (std::abs(cell.x - std::round(site_float) * chip.site_width) > eps) {
        ++report.off_site;
        std::ostringstream os;
        os << "cell " << cell.id << " x=" << cell.x << " not on a site";
        record(report, options,
               {ViolationKind::kOffSite, cell.id, 0, os.str()});
      }
    }

    // (4) Power-rail alignment, only meaningful when the cell is on a row.
    if (on_row) {
      const auto row = static_cast<std::size_t>(row_round);
      if (!cell.rail_compatible(chip, row)) {
        ++report.rail_mismatches;
        std::ostringstream os;
        os << "cell " << cell.id << " (" << to_string(cell.bottom_rail)
           << "-bottom, height " << cell.height_rows << ") on row " << row
           << " with " << to_string(chip.rail_at(row)) << " rail";
        record(report, options,
               {ViolationKind::kRailMismatch, cell.id, 0, os.str()});
      }
      for (std::size_t r = row;
           r < std::min(row + cell.height_rows, chip.num_rows); ++r)
        row_cells[r].push_back(cell.id);
    }
  }

  // (3) Overlaps: per-row sweep over cells sorted by x. A multi-row cell
  // appears in every row it occupies; a pair sharing two rows would be
  // reported twice, so overlapping pairs are deduplicated through a hash
  // set keyed on the ordered id pair — violation-heavy designs produce
  // O(cells²) pairs, and a linear scan over a growing pair list would make
  // the checker quadratic in the *violation* count on top of that.
  std::unordered_set<std::uint64_t> seen_pairs;
  for (std::size_t r = 0; r < chip.num_rows; ++r) {
    auto& ids = row_cells[r];
    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      const double xa = design.cells()[a].x;
      const double xb = design.cells()[b].x;
      return xa != xb ? xa < xb : a < b;
    });
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      const Cell& left = design.cells()[ids[i]];
      // A cell can overlap several successors, not just the next one.
      for (std::size_t j = i + 1; j < ids.size(); ++j) {
        const Cell& right = design.cells()[ids[j]];
        const double spill = left.x + left.width - right.x;
        if (spill <= eps) break;  // sorted by x: no further overlaps with i
        const std::uint64_t key =
            (static_cast<std::uint64_t>(std::min(left.id, right.id)) << 32) |
            static_cast<std::uint64_t>(std::max(left.id, right.id));
        if (!seen_pairs.insert(key).second) continue;
        // The overlapped extent cannot exceed the right cell's own width (a
        // narrow cell contained inside a wide one overlaps by its width,
        // not by the distance to the wide cell's far edge).
        const double depth = std::min(spill, right.width);
        ++report.overlaps;
        report.max_overlap_depth = std::max(report.max_overlap_depth, depth);
        std::ostringstream os;
        os << "cells " << left.id << " and " << right.id << " overlap by "
           << depth << " in row " << r;
        record(report, options,
               {ViolationKind::kOverlap, left.id, right.id, os.str()});
      }
    }
  }

  return report;
}

}  // namespace mch::db
