#include "lcp/mmsim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "lcp/mmsim_kernels.h"
#include "linalg/power_iteration.h"
#include "obs/metrics.h"
#include "linalg/simd.h"
#include "runtime/parallel.h"
#include "runtime/scratch.h"
#include "util/check.h"
#include "util/log.h"
#include "util/timer.h"

namespace mch::lcp {

namespace {
using runtime::kGrainElementwise;
using runtime::parallel_for;
using runtime::parallel_reduce;

/// Grain for the non-1×1 block sweep of the fused kernel; mirrors the
/// block sweeps in linalg/block_diag.cpp.
constexpr std::size_t kGrainBlocks = 256;

/// Systems below this LCP dimension skip phase-time collection: two clock
/// reads per scope would rival the arithmetic of a tiny component solve.
constexpr std::size_t kPhaseProfileMinSize = 256;

/// Adds the scope's wall time to `bucket` when enabled; costs nothing (not
/// even a clock read) when disabled.
class PhaseTimer {
 public:
  PhaseTimer(bool enabled, double& bucket)
      : bucket_(enabled ? &bucket : nullptr) {
    if (bucket_) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (bucket_)
      *bucket_ += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* bucket_;
  std::chrono::steady_clock::time_point start_;
};

double fold_max(double a, double b) { return std::max(a, b); }
float fold_max_f(float a, float b) { return std::max(a, b); }

}  // namespace

using linalg::BlockDiagMatrix;
using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Tridiagonal;

bool fused_kernels_default() {
  if (const char* env = std::getenv("MCH_FUSED_KERNELS")) {
    const std::string value(env);
    if (value == "0" || value == "off" || value == "false") return false;
  }
  return true;
}

MmsimPrecision precision_default() {
  if (const char* env = std::getenv("MCH_PRECISION")) {
    const std::string value(env);
    if (value == "mixed") return MmsimPrecision::kMixed;
    if (!value.empty() && value != "double")
      MCH_LOG(kWarn) << "unrecognized MCH_PRECISION value '" << value
                     << "', using double";
  }
  return MmsimPrecision::kDouble;
}

Tridiagonal schur_tridiagonal(const BlockDiagMatrix& k, const CsrMatrix& b,
                              const std::vector<bool>* coupling_breaks) {
  const std::size_t m = b.rows();
  MCH_CHECK(coupling_breaks == nullptr || coupling_breaks->size() == m);
  Tridiagonal d(m);

  // Entry (r, r') of B K⁻¹ Bᵀ = Σ_{i,j} B[r,i] · K⁻¹[i,j] · B[r',j].
  // B has at most two nonzeros per row, so each entry needs at most four
  // K⁻¹ lookups; K⁻¹ is block diagonal so each lookup is O(log #blocks).
  const auto entry = [&](std::size_t r, std::size_t rp) {
    double sum = 0.0;
    for (std::size_t ka = b.row_ptr()[r]; ka < b.row_ptr()[r + 1]; ++ka)
      for (std::size_t kb = b.row_ptr()[rp]; kb < b.row_ptr()[rp + 1]; ++kb)
        sum += b.values()[ka] * b.values()[kb] *
               k.inverse_entry(b.col_idx()[ka], b.col_idx()[kb]);
    return sum;
  };

  for (std::size_t r = 0; r < m; ++r) {
    d.diag(r) = entry(r, r);
    if (r + 1 < m && !(coupling_breaks && (*coupling_breaks)[r + 1])) {
      d.upper(r) = entry(r, r + 1);
      d.lower(r) = entry(r + 1, r);
    }
  }
  return d;
}

MmsimSolver::MmsimSolver(const StructuredQp& qp, const MmsimOptions& options,
                         const std::vector<bool>* schur_coupling_breaks)
    : qp_(qp), opts_(options) {
  MCH_CHECK_MSG(opts_.beta > 0.0 && opts_.beta < 2.0,
                "beta must be in (0, 2)");
  MCH_CHECK(opts_.theta > 0.0 && opts_.gamma > 0.0);

  Timer timer;
  // (1,1) block of M + I: K/β* + I, block diagonal; store with inverses.
  // Scalar blocks shift in place through the flat array — same arithmetic
  // (v/β + 1, inverted as exactly its reciprocal) without a DenseMatrix.
  for (std::size_t blk = 0; blk < qp_.K.block_count(); ++blk) {
    if (qp_.K.is_scalar_block(blk)) {
      const std::size_t off = qp_.K.block_offset(blk);
      shifted_k_.add_scalar_block(qp_.K.scalar_values()[off] / opts_.beta +
                                  1.0);
      continue;
    }
    const DenseMatrix& kb = qp_.K.block(blk);
    const std::size_t n = kb.rows();
    DenseMatrix shifted(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        shifted(r, c) = kb(r, c) / opts_.beta + (r == c ? 1.0 : 0.0);
    shifted_k_.add_block(shifted);
  }

  d_ = mch::lcp::schur_tridiagonal(qp_.K, qp_.B, schur_coupling_breaks);
  // (2,2) block of M + I: D/θ* + I. The matrix is constant across the
  // iteration, so factor the Thomas pivots once here; every step then runs
  // only the short-recurrence forward sweep.
  shifted_d_ = d_.scaled_plus_identity(1.0 / opts_.theta, 1.0);
  MCH_CHECK_MSG(shifted_d_lu_.factor(shifted_d_), "D/θ + I singular");

  // Prebuild what the fused kernels traverse per element: the cached Bᵀ
  // view (so no per-product lock) and the scalar/general classification of
  // each variable's K block.
  bt_ = &qp_.B.transpose_view();
  general_var_.assign(qp_.K.size(), 0);
  for (const std::size_t b : qp_.K.general_block_indices()) {
    const std::size_t off = qp_.K.block_offset(b);
    const std::size_t size = qp_.K.block_size(b);
    for (std::size_t i = 0; i < size; ++i) general_var_[off + i] = 1;
    max_general_rows_ = std::max(max_general_rows_, size);
  }
  // Fixed-width-2 gather tables: the SoA views cached on B/Bᵀ (csr.h),
  // shared with the SIMD product kernels. Only the fused path reads them,
  // so skip the build entirely for reference-path solvers.
  if (opts_.fused) {
    // num_constraints() > 0: the padding slots load (and discard) column 0
    // of the opposite s half, which must therefore exist. An empty B makes
    // every gather a no-op anyway, so the CSR loops lose nothing there.
    if (qp_.num_constraints() > 0 && qp_.num_variables() > 0) {
      bt_g2_ = bt_->gather2_view();
      b_g2_ = qp_.B.gather2_view();
      gather2_ = bt_g2_ != nullptr && b_g2_ != nullptr;
      if (!gather2_) {
        bt_g2_ = nullptr;
        b_g2_ = nullptr;
      }
    }
    // Flattened general-block tables (see the header): K block + inverse
    // per block, contiguous, so the block sweep streams one array instead
    // of chasing two small heap objects per block.
    const auto& gb = qp_.K.general_block_indices();
    gb_off_.resize(gb.size());
    gb_dim_.resize(gb.size());
    gb_data_.resize(gb.size());
    std::size_t total = 0;
    for (std::size_t g = 0; g < gb.size(); ++g) {
      const std::size_t bn = qp_.K.block_size(gb[g]);
      gb_off_[g] = qp_.K.block_offset(gb[g]);
      gb_dim_[g] = static_cast<std::uint32_t>(bn);
      gb_data_[g] = total;
      total += 2 * bn * bn;
    }
    gb_vals_.resize(total);
    for (std::size_t g = 0; g < gb.size(); ++g) {
      const std::size_t bn = gb_dim_[g];
      const DenseMatrix& kb = qp_.K.block(gb[g]);
      const DenseMatrix& inv = shifted_k_.block_inverse(gb[g]);
      double* out = gb_vals_.data() + gb_data_[g];
      for (std::size_t r = 0; r < bn; ++r)
        for (std::size_t c = 0; c < bn; ++c) *out++ = kb(r, c);
      for (std::size_t r = 0; r < bn; ++r)
        for (std::size_t c = 0; c < bn; ++c) *out++ = inv(r, c);
    }
  }

  // Mixed mode needs the gather2 fused machinery; anything else (reference
  // path, wide rows, empty systems) silently stays full double.
  mixed_active_ = opts_.precision == MmsimPrecision::kMixed && gather2_;
  if (mixed_active_) {
    const auto to_f = [](const auto& src, linalg::AlignedVector<float>& dst) {
      dst.resize(src.size());
      for (std::size_t i = 0; i < src.size(); ++i)
        dst[i] = static_cast<float>(src[i]);
    };
    to_f(qp_.K.scalar_values(), kv_f_);
    to_f(shifted_k_.scalar_inverses(), siv_f_);
    to_f(qp_.p, p_f_);
    to_f(qp_.b, b_f_);
    to_f(bt_g2_->v0, bt_v0f_);
    to_f(bt_g2_->v1, bt_v1f_);
    to_f(b_g2_->v0, b_v0f_);
    to_f(b_g2_->v1, b_v1f_);
    to_f(gb_vals_, gb_vals_f_);
    to_f(d_.diag_data(), diag_f_);
    to_f(d_.lower_data(), lower_f_);
    to_f(d_.upper_data(), upper_f_);
    to_f(shifted_d_lu_.c_prime(), c_prime_f_);
    to_f(shifted_d_lu_.inv_pivot(), inv_pivot_f_);
    to_f(shifted_d_lu_.g(), g_f_);
  }
  profile_ = qp_.lcp_size() >= kPhaseProfileMinSize;
  setup_seconds_ = timer.seconds();
}

double MmsimSolver::estimate_mu_max() const {
  const std::size_t m = qp_.num_constraints();
  if (m == 0) return 0.0;
  Vector t, u, v;
  const auto gamma_op = [&](const Vector& y, Vector& out) {
    qp_.B.multiply_transpose(y, t);  // t = Bᵀ y
    qp_.K.solve(t, u);               // u = K⁻¹ t
    qp_.B.multiply(u, v);            // v = B u
    MCH_CHECK_MSG(d_.solve(v, out), "D is singular");  // out = D⁻¹ v
  };
  return linalg::power_iteration(m, gamma_op).eigenvalue;
}

double MmsimSolver::suggest_theta() const {
  const double mu_max = estimate_mu_max();
  if (mu_max <= 0.0) return opts_.theta;
  const double bound = 2.0 * (2.0 - opts_.beta) / (opts_.beta * mu_max);
  // Theorem 2's bound assumes the exact Schur complement; with the
  // tridiagonal approximation D the empirically safe region is narrower
  // (bench/ablation_parameters maps it), so never suggest beyond the
  // paper's validated θ* = 0.5.
  return std::min(0.9 * bound, 0.5);
}

MmsimResult MmsimSolver::solve() const {
  return solve_from(Vector(qp_.lcp_size(), 0.0));
}

void MmsimResidualPartials::merge_max(const MmsimResidualPartials& other) {
  z_norm = std::max(z_norm, other.z_norm);
  w_norm = std::max(w_norm, other.w_norm);
  z_negativity = std::max(z_negativity, other.z_negativity);
  w_negativity = std::max(w_negativity, other.w_negativity);
  complementarity = std::max(complementarity, other.complementarity);
}

MmsimResidualPartials MmsimSolver::residual_partials(const Vector& z) const {
  Vector w;
  qp_.lcp_apply(z, w);
  MmsimResidualPartials partials;
  partials.z_norm = linalg::norm_inf(z);
  partials.w_norm = linalg::norm_inf(w);
  for (std::size_t i = 0; i < z.size(); ++i) {
    partials.z_negativity = std::max(partials.z_negativity, -z[i]);
    partials.w_negativity = std::max(partials.w_negativity, -w[i]);
    partials.complementarity =
        std::max(partials.complementarity, std::abs(z[i] * w[i]));
  }
  return partials;
}

bool MmsimSolver::residual_ok(const MmsimResidualPartials& partials,
                              double tolerance) {
  const double scale_z = 1.0 + partials.z_norm;
  const double scale_w = 1.0 + partials.w_norm;
  return partials.z_negativity <= tolerance * scale_z &&
         partials.w_negativity <= tolerance * scale_w &&
         partials.complementarity <= tolerance * scale_z * scale_w;
}

bool MmsimSolver::scaled_residual_ok(const Vector& z) const {
  return residual_ok(residual_partials(z), opts_.residual_tolerance);
}

MmsimSolver::State MmsimSolver::make_state() const {
  State state;
  reset_state(state);
  return state;
}

MmsimSolver::State MmsimSolver::make_state(const Vector& s0) const {
  State state;
  reset_state(state, &s0);
  return state;
}

void MmsimSolver::reset_state(State& state, const Vector* s0) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();
  if (s0 != nullptr) {
    MCH_CHECK(s0->size() == n + m);
    state.s1.assign(s0->begin(),
                    s0->begin() + static_cast<std::ptrdiff_t>(n));
    state.s2.assign(s0->begin() + static_cast<std::ptrdiff_t>(n), s0->end());
  } else {
    state.s1.assign(n, 0.0);
    state.s2.assign(m, 0.0);
  }
  state.z.assign(n + m, 0.0);
  state.z_prev.assign(n + m, 0.0);
  state.abs1.resize(n);
  state.abs2.resize(m);
  state.rhs1.resize(n);
  state.rhs2.resize(m);
  state.new_s1.resize(n);
  state.new_s2.resize(m);
  state.iterations = 0;
  state.phase = MmsimPhaseTimes{};
}

double MmsimSolver::step(State& state) const {
  return opts_.fused ? step_fused(state) : step_reference(state);
}

// The retained stage-by-stage iteration: the bitwise reference the fused
// kernels must reproduce (tests/lcp/mmsim_fused_test compares them step by
// step) and the MCH_FUSED_KERNELS=0 escape hatch. Two pieces of shared
// machinery intentionally differ from the pre-fusion code — the prefactored
// Thomas solve and the hoisted 1/γ multiply — because both paths must use
// the same rounding for their bitwise contract to hold.
double MmsimSolver::step_reference(State& state) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();
  Vector& s1 = state.s1;
  Vector& s2 = state.s2;
  Vector& abs1 = state.abs1;
  Vector& abs2 = state.abs2;
  Vector& rhs1 = state.rhs1;
  Vector& rhs2 = state.rhs2;
  const double inv_beta_minus_1 = 1.0 / opts_.beta - 1.0;
  const double inv_theta = 1.0 / opts_.theta;
  const double inv_gamma = 1.0 / opts_.gamma;

  {
    PhaseTimer timer(profile_, state.phase.kernel_seconds);
    state.z_prev = state.z;

    // All element-wise stages of the modulus update run on the runtime; the
    // matrix products parallelize internally. Each stage owns its output
    // elements, so the iterates are identical at every thread count.
    parallel_for(std::size_t{0}, n, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     abs1[i] = std::abs(s1[i]);
                 });
    parallel_for(std::size_t{0}, m, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     abs2[i] = std::abs(s2[i]);
                 });
    rhs1.assign(n, 0.0);
  }

  // rhs1 = (1/β−1)·K s1 + Bᵀ s2 + (|s1| − K|s1|) + Bᵀ|s2| − γ p.
  {
    PhaseTimer timer(profile_, state.phase.spmv_seconds);
    qp_.K.multiply_add(inv_beta_minus_1, s1, rhs1);
    qp_.B.multiply_transpose_add(1.0, s2, rhs1);
  }
  {
    PhaseTimer timer(profile_, state.phase.kernel_seconds);
    parallel_for(std::size_t{0}, n, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) rhs1[i] += abs1[i];
                 });
  }
  {
    PhaseTimer timer(profile_, state.phase.spmv_seconds);
    qp_.K.multiply_add(-1.0, abs1, rhs1);
    qp_.B.multiply_transpose_add(1.0, abs2, rhs1);
  }
  {
    PhaseTimer timer(profile_, state.phase.kernel_seconds);
    parallel_for(std::size_t{0}, n, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     rhs1[i] -= opts_.gamma * qp_.p[i];
                 });
  }

  // Forward solve of the block lower triangular system:
  //   (K/β + I)·s1' = rhs1             (block-diagonal solve)
  {
    PhaseTimer timer(profile_, state.phase.spmv_seconds);
    shifted_k_.solve(rhs1, state.new_s1);
  }

  //   rhs2 = (D/θ)·s2 − B|s1| + |s2| + γ b − B·s1_used, where s1_used is
  //   the fresh iterate under the paper's Gauss–Seidel splitting (the B
  //   block of M) or the previous one under the Jacobi ablation.
  if (m > 0) {
    {
      PhaseTimer timer(profile_, state.phase.spmv_seconds);
      d_.multiply(s2, rhs2);
    }
    {
      PhaseTimer timer(profile_, state.phase.kernel_seconds);
      parallel_for(std::size_t{0}, m, kGrainElementwise,
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t i = lo; i < hi; ++i)
                       rhs2[i] = inv_theta * rhs2[i] + abs2[i] +
                                 opts_.gamma * qp_.b[i];
                   });
    }
    {
      PhaseTimer timer(profile_, state.phase.spmv_seconds);
      qp_.B.multiply_add(-1.0, abs1, rhs2);
      qp_.B.multiply_add(
          -1.0,
          opts_.splitting == MmsimSplitting::kGaussSeidel ? state.new_s1 : s1,
          rhs2);
    }
    //   (D/θ + I)·s2' = rhs2           (Thomas solve, prefactored)
    PhaseTimer timer(profile_, state.phase.thomas_seconds);
    shifted_d_lu_.solve(rhs2, state.new_s2, state.thomas_d);
  } else {
    state.new_s2.clear();
  }

  s1.swap(state.new_s1);
  s2.swap(state.new_s2);

  // z = (|s| + s)/γ  (so z = max(s, 0)·2/γ).
  Vector& z = state.z;
  {
    PhaseTimer timer(profile_, state.phase.kernel_seconds);
    parallel_for(std::size_t{0}, n, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     z[i] = (std::abs(s1[i]) + s1[i]) * inv_gamma;
                 });
    parallel_for(std::size_t{0}, m, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     z[n + i] = (std::abs(s2[i]) + s2[i]) * inv_gamma;
                 });
  }

  ++state.iterations;
  PhaseTimer timer(profile_, state.phase.reduction_seconds);
  return linalg::diff_norm_inf(z, state.z_prev);
}

// Fused iteration: one parallel sweep per half-step computes |s|, the rhs
// chain, the triangular solve's local part, the z update, and the delta
// partial in a single pass, with Bᵀ/B gathers inlined through the cached
// CSR views. No abs1/abs2/rhs1 intermediates are materialized.
//
// Bitwise equality with step_reference holds because every output element's
// floating-point operation chain is replicated term by term in the
// reference order — including the zero-valued scalar-sweep terms that
// BlockDiagMatrix::multiply_add contributes at non-1×1-block positions, and
// recomputing |s| on the fly (std::abs is exact). The delta is an ∞-norm
// max-fold, associative and commutative over the identical value multiset,
// so splitting it across the three sweeps changes nothing.
double MmsimSolver::step_fused(State& state) const {
  return gather2_ ? step_fused_impl<true>(state)
                  : step_fused_impl<false>(state);
}

// kGather2 = true swaps every CSR row loop for a constant-trip-count pass
// over the padded width-2 tables: no per-row trip-count branch to
// mispredict, uint32 column loads, no row_ptr loads at all. The padding
// terms are trailing `0.0 · x` adds; x + ±0.0 == x bitwise for every x
// except −0.0 + +0.0 == +0.0, so the only observable deviation from the
// CSR loop is the sign of an exactly-zero accumulator — which the chains
// below erase before it can touch a nonzero bit (each gather sum is
// followed by further adds, and z = (|s|+s)/γ collapses zero signs), so
// z/x/dual stay bitwise identical to step_reference.
template <bool kGather2>
double MmsimSolver::step_fused_impl(State& state) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();
  Vector& s1 = state.s1;
  Vector& s2 = state.s2;
  Vector& rhs2 = state.rhs2;
  Vector& new_s1 = state.new_s1;
  Vector& new_s2 = state.new_s2;
  Vector& z = state.z;
  const double c1 = 1.0 / opts_.beta - 1.0;
  const double inv_theta = 1.0 / opts_.theta;
  const double gamma = opts_.gamma;
  const double inv_gamma = 1.0 / opts_.gamma;

  const auto& kv = qp_.K.scalar_values();
  const auto& siv = shifted_k_.scalar_inverses();
  const std::vector<std::size_t>& bt_rp = bt_->row_ptr();
  const auto& bt_ci = bt_->col_idx();
  const auto& bt_v = bt_->values();
  const double* const bt_v0 = kGather2 ? bt_g2_->v0.data() : nullptr;
  const double* const bt_v1 = kGather2 ? bt_g2_->v1.data() : nullptr;
  const std::uint32_t* const bt_c0 = kGather2 ? bt_g2_->c0.data() : nullptr;
  const std::uint32_t* const bt_c1 = kGather2 ? bt_g2_->c1.data() : nullptr;
  // SIMD sweep kernels (bitwise identical to the scalar loops below); only
  // the gather2 layout has the SoA shape they consume.
  const kernels::MmsimSimdKernels* const sk =
      kGather2 ? kernels::mmsim_simd_kernels(linalg::simd_level()) : nullptr;

  double delta = 0.0;
  {
    PhaseTimer timer(profile_, state.phase.kernel_seconds);

    // Primal half, 1×1-block rows (the ~90% fast path).
    kernels::PrimalCtx pctx{};
    if (sk != nullptr)
      pctx = {s1.data(),   s2.data(),   kv.data(),
              siv.data(),  qp_.p.data(), bt_v0,
              bt_v1,       bt_c0,       bt_c1,
              general_var_.data(),      new_s1.data(),
              z.data(),    c1,          gamma,
              inv_gamma};
    const double scalar_delta = parallel_reduce(
        std::size_t{0}, n, kGrainElementwise, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          if constexpr (kGather2) {
            if (sk != nullptr) return sk->primal(pctx, lo, hi);
          }
          double best = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            if (general_var_[i]) continue;
            const double s1i = s1[i];
            const double a1 = std::abs(s1i);
            // One traversal of the Bᵀ row feeds both gather terms (each
            // accumulator folds the same values in the same order as its
            // standalone gather would).
            double g_s2 = 0.0;   // Bᵀ s2
            double g_abs = 0.0;  // Bᵀ |s2|
            if constexpr (kGather2) {
              {
                const double v = bt_v0[i];
                const double x = s2[bt_c0[i]];
                g_s2 += v * x;
                g_abs += v * std::abs(x);
              }
              {
                const double v = bt_v1[i];
                const double x = s2[bt_c1[i]];
                g_s2 += v * x;
                g_abs += v * std::abs(x);
              }
            } else {
              for (std::size_t k = bt_rp[i]; k < bt_rp[i + 1]; ++k) {
                const double v = bt_v[k];
                const double x = s2[bt_ci[k]];
                g_s2 += v * x;
                g_abs += v * std::abs(x);
              }
            }
            double r = 0.0;
            r += c1 * kv[i] * s1i;   // (1/β−1)·K s1, scalar sweep
            r += g_s2;
            r += a1;                 // + |s1|
            r += -1.0 * kv[i] * a1;  // − K|s1|, scalar sweep
            r += g_abs;
            r -= gamma * qp_.p[i];
            const double ns = siv[i] * r;  // (K/β + I)⁻¹, scalar row
            new_s1[i] = ns;
            const double zi = (std::abs(ns) + ns) * inv_gamma;
            best = std::max(best, std::abs(zi - z[i]));
            z[i] = zi;
          }
          return best;
        },
        fold_max);

    // Primal half, multi-row blocks (tall cells), streaming the flattened
    // gb_* tables. The per-thread scratch holds the block's rhs; the chain
    // includes the zero terms the flat scalar sweeps of the reference
    // contribute at these positions. kBn = 2 compiles the dominant
    // double-height case with every block loop fully unrolled; kBn = 0 is
    // the runtime-size fallback. Identical values in identical order either
    // way.
    const auto block_body = [&]<std::size_t kBn>(std::size_t g, double& best,
                                                 std::vector<double>& rb) {
      const std::size_t off = gb_off_[g];
      const std::size_t bn = kBn != 0 ? kBn : gb_dim_[g];
      const double* const kd = gb_vals_.data() + gb_data_[g];
      const double* const invd = kd + bn * bn;
      for (std::size_t r = 0; r < bn; ++r) {
        const std::size_t i = off + r;
        const double s1i = s1[i];
        const double a1 = std::abs(s1i);
        double g_s2 = 0.0;   // Bᵀ s2
        double g_abs = 0.0;  // Bᵀ |s2|, same single traversal
        if constexpr (kGather2) {
          {
            const double v = bt_v0[i];
            const double x = s2[bt_c0[i]];
            g_s2 += v * x;
            g_abs += v * std::abs(x);
          }
          {
            const double v = bt_v1[i];
            const double x = s2[bt_c1[i]];
            g_s2 += v * x;
            g_abs += v * std::abs(x);
          }
        } else {
          for (std::size_t k = bt_rp[i]; k < bt_rp[i + 1]; ++k) {
            const double v = bt_v[k];
            const double x = s2[bt_ci[k]];
            g_s2 += v * x;
            g_abs += v * std::abs(x);
          }
        }
        double acc = 0.0;
        acc += c1 * kv[i] * s1i;  // zero term of the scalar sweep
        double sum = 0.0;
        for (std::size_t c = 0; c < bn; ++c)
          sum += kd[r * bn + c] * s1[off + c];
        acc += c1 * sum;  // (1/β−1)·K s1, block sweep
        acc += g_s2;
        acc += a1;
        acc += -1.0 * kv[i] * a1;  // zero term of the scalar sweep
        sum = 0.0;
        for (std::size_t c = 0; c < bn; ++c)
          sum += kd[r * bn + c] * std::abs(s1[off + c]);
        acc += -1.0 * sum;  // − K|s1|, block sweep
        acc += g_abs;
        acc -= gamma * qp_.p[i];
        rb[r] = acc;
      }
      for (std::size_t r = 0; r < bn; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < bn; ++c) sum += invd[r * bn + c] * rb[c];
        new_s1[off + r] = sum;
        const double zi = (std::abs(sum) + sum) * inv_gamma;
        best = std::max(best, std::abs(zi - z[off + r]));
        z[off + r] = zi;
      }
    };
    const double general_delta = parallel_reduce(
        std::size_t{0}, gb_off_.size(), kGrainBlocks, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double best = 0.0;
          std::vector<double>& rb =
              runtime::thread_scratch(0, max_general_rows_);
          for (std::size_t g = lo; g < hi; ++g) {
            if (gb_dim_[g] == 2)
              block_body.template operator()<2>(g, best, rb);
            else
              block_body.template operator()<0>(g, best, rb);
          }
          return best;
        },
        fold_max);
    delta = std::max(scalar_delta, general_delta);
  }

  if (m > 0) {
    {
      PhaseTimer timer(profile_, state.phase.kernel_seconds);
      // Dual rhs in one sweep: the tridiagonal D row, the modulus terms,
      // and both B-row gathers (|s1| and the splitting-dependent s1).
      const Vector& s1_used =
          opts_.splitting == MmsimSplitting::kGaussSeidel ? new_s1 : s1;
      const std::vector<std::size_t>& b_rp = qp_.B.row_ptr();
      const auto& b_ci = qp_.B.col_idx();
      const auto& b_v = qp_.B.values();
      const double* const b_v0 = kGather2 ? b_g2_->v0.data() : nullptr;
      const double* const b_v1 = kGather2 ? b_g2_->v1.data() : nullptr;
      const std::uint32_t* const b_c0 = kGather2 ? b_g2_->c0.data() : nullptr;
      const std::uint32_t* const b_c1 = kGather2 ? b_g2_->c1.data() : nullptr;
      kernels::DualRhsCtx dctx{};
      if (sk != nullptr)
        dctx = {s2.data(),
                d_.diag_data().data(),
                d_.lower_data().data(),
                d_.upper_data().data(),
                qp_.b.data(),
                s1.data(),
                s1_used.data(),
                b_v0,
                b_v1,
                b_c0,
                b_c1,
                rhs2.data(),
                inv_theta,
                gamma,
                m};
      parallel_for(
          std::size_t{0}, m, kGrainElementwise,
          [&](std::size_t lo, std::size_t hi) {
            if constexpr (kGather2) {
              if (sk != nullptr) {
                sk->dual_rhs(dctx, lo, hi);
                return;
              }
            }
            for (std::size_t i = lo; i < hi; ++i) {
              double sum = d_.diag(i) * s2[i];
              if (i > 0) sum += d_.lower(i - 1) * s2[i - 1];
              if (i + 1 < m) sum += d_.upper(i) * s2[i + 1];
              double t =
                  inv_theta * sum + std::abs(s2[i]) + gamma * qp_.b[i];
              double g_abs = 0.0;   // B |s1|
              double g_used = 0.0;  // B s1_used, same single traversal
              if constexpr (kGather2) {
                {
                  const double v = b_v0[i];
                  const std::size_t c = b_c0[i];
                  g_abs += v * std::abs(s1[c]);
                  g_used += v * s1_used[c];
                }
                {
                  const double v = b_v1[i];
                  const std::size_t c = b_c1[i];
                  g_abs += v * std::abs(s1[c]);
                  g_used += v * s1_used[c];
                }
              } else {
                for (std::size_t k = b_rp[i]; k < b_rp[i + 1]; ++k) {
                  const double v = b_v[k];
                  const std::size_t c = b_ci[k];
                  g_abs += v * std::abs(s1[c]);
                  g_used += v * s1_used[c];
                }
              }
              t += -1.0 * g_abs;
              t += -1.0 * g_used;
              rhs2[i] = t;
            }
          });
    }
    {
      PhaseTimer timer(profile_, state.phase.thomas_seconds);
      shifted_d_lu_.solve(rhs2, new_s2, state.thomas_d);
    }
    {
      PhaseTimer timer(profile_, state.phase.kernel_seconds);
      kernels::DualZCtx zctx{};
      if (sk != nullptr) zctx = {new_s2.data(), z.data() + n, inv_gamma};
      const double dual_delta = parallel_reduce(
          std::size_t{0}, m, kGrainElementwise, 0.0,
          [&](std::size_t lo, std::size_t hi) {
            if constexpr (kGather2) {
              if (sk != nullptr) return sk->dual_z(zctx, lo, hi);
            }
            double best = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
              const double ns = new_s2[i];
              const double zi = (std::abs(ns) + ns) * inv_gamma;
              best = std::max(best, std::abs(zi - z[n + i]));
              z[n + i] = zi;
            }
            return best;
          },
          fold_max);
      delta = std::max(delta, dual_delta);
    }
  } else {
    new_s2.clear();
  }

  s1.swap(new_s1);
  s2.swap(new_s2);
  ++state.iterations;
  return delta;
}

// One float32 fused iteration — the same three sweeps as step_fused_impl
// with every operand drawn from the float mirrors, plus a float Thomas
// solve over the converted factor arrays. Only runs on gather2 solvers
// (mixed_active_), so the kGather2 == false shapes never reach here.
float MmsimSolver::step_mixed(State& state) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();
  PhaseTimer timer(profile_, state.phase.mixed_seconds);

  auto& fs1 = state.fs1;
  auto& fs2 = state.fs2;
  auto& fnew_s1 = state.fnew_s1;
  auto& fnew_s2 = state.fnew_s2;
  auto& frhs2 = state.frhs2;
  const float c1 = static_cast<float>(1.0 / opts_.beta - 1.0);
  const float inv_theta = static_cast<float>(1.0 / opts_.theta);
  const float gamma = static_cast<float>(opts_.gamma);
  const float inv_gamma = static_cast<float>(1.0 / opts_.gamma);
  float* const fz1 = state.fz.data();
  float* const fz2 = state.fz.data() + n;
  const kernels::MmsimSimdKernels* const sk =
      kernels::mmsim_simd_kernels(linalg::simd_level());

  // Primal half, 1×1-block rows.
  const kernels::PrimalCtxF pctx{fs1.data(),
                                 fs2.data(),
                                 kv_f_.data(),
                                 siv_f_.data(),
                                 p_f_.data(),
                                 bt_v0f_.data(),
                                 bt_v1f_.data(),
                                 bt_g2_->c0.data(),
                                 bt_g2_->c1.data(),
                                 general_var_.data(),
                                 fnew_s1.data(),
                                 fz1,
                                 c1,
                                 gamma,
                                 inv_gamma};
  float delta = parallel_reduce(
      std::size_t{0}, n, kGrainElementwise, 0.0f,
      [&](std::size_t lo, std::size_t hi) {
        if (sk != nullptr) return sk->primal_f(pctx, lo, hi);
        float best = 0.0f;
        for (std::size_t i = lo; i < hi; ++i) {
          if (general_var_[i]) continue;
          const float s1i = fs1[i];
          const float a1 = std::abs(s1i);
          float g_s2 = 0.0f;
          float g_abs = 0.0f;
          g_s2 += bt_v0f_[i] * fs2[bt_g2_->c0[i]];
          g_abs += bt_v0f_[i] * std::abs(fs2[bt_g2_->c0[i]]);
          g_s2 += bt_v1f_[i] * fs2[bt_g2_->c1[i]];
          g_abs += bt_v1f_[i] * std::abs(fs2[bt_g2_->c1[i]]);
          float r = 0.0f;
          r += c1 * kv_f_[i] * s1i;
          r += g_s2;
          r += a1;
          r += -1.0f * kv_f_[i] * a1;
          r += g_abs;
          r -= gamma * p_f_[i];
          const float ns = siv_f_[i] * r;
          fnew_s1[i] = ns;
          const float zi = (std::abs(ns) + ns) * inv_gamma;
          best = std::max(best, std::abs(zi - fz1[i]));
          fz1[i] = zi;
        }
        return best;
      },
      fold_max_f);

  // Primal half, multi-row blocks (tall cells), float gb tables.
  const float general_delta = parallel_reduce(
      std::size_t{0}, gb_off_.size(), kGrainBlocks, 0.0f,
      [&](std::size_t lo, std::size_t hi) {
        float best = 0.0f;
        std::vector<double>& rb =
            runtime::thread_scratch(0, max_general_rows_);
        for (std::size_t g = lo; g < hi; ++g) {
          const std::size_t off = gb_off_[g];
          const std::size_t bn = gb_dim_[g];
          const float* const kd = gb_vals_f_.data() + gb_data_[g];
          const float* const invd = kd + bn * bn;
          for (std::size_t r = 0; r < bn; ++r) {
            const std::size_t i = off + r;
            const float s1i = fs1[i];
            const float a1 = std::abs(s1i);
            float g_s2 = 0.0f;
            float g_abs = 0.0f;
            g_s2 += bt_v0f_[i] * fs2[bt_g2_->c0[i]];
            g_abs += bt_v0f_[i] * std::abs(fs2[bt_g2_->c0[i]]);
            g_s2 += bt_v1f_[i] * fs2[bt_g2_->c1[i]];
            g_abs += bt_v1f_[i] * std::abs(fs2[bt_g2_->c1[i]]);
            float acc = 0.0f;
            float sum = 0.0f;
            for (std::size_t c = 0; c < bn; ++c)
              sum += kd[r * bn + c] * fs1[off + c];
            acc += c1 * sum;
            acc += g_s2;
            acc += a1;
            sum = 0.0f;
            for (std::size_t c = 0; c < bn; ++c)
              sum += kd[r * bn + c] * std::abs(fs1[off + c]);
            acc += -1.0f * sum;
            acc += g_abs;
            acc -= gamma * p_f_[i];
            rb[r] = acc;
          }
          for (std::size_t r = 0; r < bn; ++r) {
            float sum = 0.0f;
            for (std::size_t c = 0; c < bn; ++c)
              sum += invd[r * bn + c] * static_cast<float>(rb[c]);
            fnew_s1[off + r] = sum;
            const float zi = (std::abs(sum) + sum) * inv_gamma;
            best = std::max(best, std::abs(zi - fz1[off + r]));
            fz1[off + r] = zi;
          }
        }
        return best;
      },
      fold_max_f);
  delta = std::max(delta, general_delta);

  if (m > 0) {
    const float* const fs1_used =
        opts_.splitting == MmsimSplitting::kGaussSeidel ? fnew_s1.data()
                                                        : fs1.data();
    const kernels::DualRhsCtxF dctx{fs2.data(),
                                    diag_f_.data(),
                                    lower_f_.data(),
                                    upper_f_.data(),
                                    b_f_.data(),
                                    fs1.data(),
                                    fs1_used,
                                    b_v0f_.data(),
                                    b_v1f_.data(),
                                    b_g2_->c0.data(),
                                    b_g2_->c1.data(),
                                    frhs2.data(),
                                    inv_theta,
                                    gamma,
                                    m};
    parallel_for(std::size_t{0}, m, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   if (sk != nullptr) {
                     sk->dual_rhs_f(dctx, lo, hi);
                     return;
                   }
                   for (std::size_t i = lo; i < hi; ++i) {
                     float sum = diag_f_[i] * fs2[i];
                     if (i > 0) sum += lower_f_[i - 1] * fs2[i - 1];
                     if (i + 1 < m) sum += upper_f_[i] * fs2[i + 1];
                     float t =
                         inv_theta * sum + std::abs(fs2[i]) + gamma * b_f_[i];
                     float g_abs = 0.0f;
                     float g_used = 0.0f;
                     g_abs += b_v0f_[i] * std::abs(fs1[b_g2_->c0[i]]);
                     g_used += b_v0f_[i] * fs1_used[b_g2_->c0[i]];
                     g_abs += b_v1f_[i] * std::abs(fs1[b_g2_->c1[i]]);
                     g_used += b_v1f_[i] * fs1_used[b_g2_->c1[i]];
                     t += -1.0f * g_abs;
                     t += -1.0f * g_used;
                     frhs2[i] = t;
                   }
                 });

    // Float Thomas solve over the converted factor arrays — the same
    // short recurrence as TridiagonalFactorization::solve.
    float* const fd = state.fthomas_d.data();
    fd[0] = frhs2[0] * inv_pivot_f_[0];
    for (std::size_t i = 1; i < m; ++i)
      fd[i] = frhs2[i] * inv_pivot_f_[i] - g_f_[i] * fd[i - 1];
    fnew_s2[m - 1] = fd[m - 1];
    for (std::size_t i = m - 1; i-- > 0;)
      fnew_s2[i] = fd[i] - c_prime_f_[i] * fnew_s2[i + 1];

    const kernels::DualZCtxF zctx{fnew_s2.data(), fz2, inv_gamma};
    const float dual_delta = parallel_reduce(
        std::size_t{0}, m, kGrainElementwise, 0.0f,
        [&](std::size_t lo, std::size_t hi) {
          if (sk != nullptr) return sk->dual_z_f(zctx, lo, hi);
          float best = 0.0f;
          for (std::size_t i = lo; i < hi; ++i) {
            const float ns = fnew_s2[i];
            const float zi = (std::abs(ns) + ns) * inv_gamma;
            best = std::max(best, std::abs(zi - fz2[i]));
            fz2[i] = zi;
          }
          return best;
        },
        fold_max_f);
    delta = std::max(delta, dual_delta);
  }

  fs1.swap(fnew_s1);
  fs2.swap(fnew_s2);
  ++state.iterations;
  return delta;
}

void MmsimSolver::promote_mixed(State& state) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();
  const double inv_gamma = 1.0 / opts_.gamma;
  parallel_for(std::size_t{0}, n, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   const double s = static_cast<double>(state.fs1[i]);
                   state.s1[i] = s;
                   state.z[i] = (std::abs(s) + s) * inv_gamma;
                 }
               });
  parallel_for(std::size_t{0}, m, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   const double s = static_cast<double>(state.fs2[i]);
                   state.s2[i] = s;
                   state.z[n + i] = (std::abs(s) + s) * inv_gamma;
                 }
               });
}

void MmsimSolver::run_mixed_prelude(State& state, MmsimResult& result) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();

  // Seed the float shadow from the (possibly warm-started) double state.
  state.fs1.resize(n);
  state.fnew_s1.resize(n);
  state.fs2.resize(m);
  state.fnew_s2.resize(m);
  state.frhs2.resize(m);
  state.fthomas_d.resize(m);
  state.fz.resize(n + m);
  for (std::size_t i = 0; i < n; ++i)
    state.fs1[i] = static_cast<float>(state.s1[i]);
  for (std::size_t i = 0; i < m; ++i)
    state.fs2[i] = static_cast<float>(state.s2[i]);
  for (std::size_t i = 0; i < n + m; ++i)
    state.fz[i] = static_cast<float>(state.z[i]);

  // Leave at least two iterations of budget for the double polish: the
  // stopping rule needs consecutive full-precision deltas.
  const std::size_t budget =
      opts_.max_iterations > 2 ? opts_.max_iterations - 2 : 0;
  const std::size_t interval = std::max<std::size_t>(
      std::size_t{1}, opts_.mixed_check_interval);
  // Below this the float32 iterate is dithering in its own rounding noise;
  // hand off to the polish rather than keep spinning.
  const float float_floor =
      static_cast<float>(std::max(opts_.tolerance, 1e-5));
  double best_measure = std::numeric_limits<double>::infinity();
  std::size_t stalls = 0;

  static obs::Counter& checkpoints = obs::counter("mmsim.mixed.checkpoints");
  const char* handoff_reason = "budget";
  while (state.iterations < budget) {
    float fdelta = 0.0f;
    for (std::size_t j = 0; j < interval && state.iterations < budget; ++j)
      fdelta = step_mixed(state);

    // Full-precision checkpoint: promote the iterate and measure the true
    // LCP residual in float64.
    promote_mixed(state);
    checkpoints.add();
    const MmsimResidualPartials parts = residual_partials(state.z);
    if (residual_ok(parts, opts_.residual_tolerance)) {
      handoff_reason = "residual_ok";
      break;
    }
    if (fdelta < float_floor) {
      handoff_reason = "float_floor";
      break;
    }
    // Residual stall: two consecutive checks without meaningful progress
    // mean float32 resolution is exhausted — stop burning iterations and
    // let the polish (and, failing that, the recovery ladder) take over.
    const double measure =
        parts.complementarity + parts.z_negativity + parts.w_negativity;
    if (measure < 0.9 * best_measure) {
      stalls = 0;
    } else if (++stalls >= 2) {
      handoff_reason = "stall";
      break;
    }
    best_measure = std::min(best_measure, measure);
  }
  obs::counter("mmsim.mixed.handoff", "reason", handoff_reason).add();
  result.mixed_iterations = state.iterations;
}

MmsimResult MmsimSolver::run_loop(State& state) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();

  Timer timer;
  MmsimResult result;
  result.setup_seconds = setup_seconds_;

  // Mixed mode front-loads float32 iterations, then falls through to the
  // double loop below as its polish (warm-started from the promoted
  // iterate, same stopping rule, remaining iteration budget). kDouble runs
  // the loop alone — identical to the pre-mixed behavior.
  if (mixed_active_ && qp_.lcp_size() > 0) run_mixed_prelude(state, result);

  std::size_t k = 0;
  while (state.iterations < opts_.max_iterations) {
    result.final_delta = step(state);
    // Keyed on the global iteration counter (not the loop-local k) so the
    // sample positions stay stride-aligned when the mixed prelude has
    // already consumed part of the budget; identical to k in double mode,
    // where the loop starts at iteration 0.
    if (opts_.trace_stride > 0 &&
        (state.iterations - 1) % opts_.trace_stride == 0)
      result.trace.emplace_back(state.iterations, result.final_delta);
    if (k > 0 && result.final_delta < opts_.tolerance) {
      bool stop = true;
      if (opts_.residual_check) {
        PhaseTimer phase_timer(profile_, state.phase.reduction_seconds);
        static obs::Counter& residual_checks =
            obs::counter("mmsim.residual_checks");
        residual_checks.add();
        stop = scaled_residual_ok(state.z);
      }
      if (stop) {
        result.converged = true;
        break;
      }
    }
    ++k;
  }
  result.iterations = state.iterations;
  {
    static obs::Counter& solves = obs::counter("mmsim.solves");
    static obs::Counter& iterations = obs::counter("mmsim.iterations");
    solves.add();
    iterations.add(state.iterations);
  }

  // Copy (not move) out of the state: its buffers stay alive for the next
  // reset_state() to reuse.
  result.z = state.z;
  result.x.assign(result.z.begin(),
                  result.z.begin() + static_cast<std::ptrdiff_t>(n));
  result.dual.assign(result.z.begin() + static_cast<std::ptrdiff_t>(n),
                     result.z.end());
  result.s.resize(n + m);
  std::copy(state.s1.begin(), state.s1.end(), result.s.begin());
  std::copy(state.s2.begin(), state.s2.end(),
            result.s.begin() + static_cast<std::ptrdiff_t>(n));
  result.phase = state.phase;
  result.solve_seconds = timer.seconds();
  return result;
}

MmsimResult MmsimSolver::solve_from(const Vector& s0) const {
  State state = make_state(s0);
  return run_loop(state);
}

MmsimResult MmsimSolver::solve_in(State& state, const Vector* s0) const {
  reset_state(state, s0);
  return run_loop(state);
}

}  // namespace mch::lcp
