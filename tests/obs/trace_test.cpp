#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace mch::obs {
namespace {

/// Every test runs with tracing force-enabled and an empty ring, and
/// restores the process-wide enablement flag afterwards so the suite is
/// order-independent (and well-behaved under the `.trace` ctest variant,
/// where the flag starts out true).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = tracing_enabled();
    old_capacity_ = trace_ring_capacity();
    set_tracing_enabled(true);
    clear_trace();
  }
  void TearDown() override {
    set_trace_ring_capacity(old_capacity_);
    clear_trace();
    set_tracing_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
  std::size_t old_capacity_ = 0;
};

const CollectedEvent* find_event(const std::vector<CollectedEvent>& events,
                                 const char* name) {
  for (const CollectedEvent& e : events)
    if (std::strcmp(e.name, name) == 0) return &e;
  return nullptr;
}

TEST_F(TraceTest, NestedSpansRecordChildFirstAndStayContained) {
  {
    TraceSpan parent("test.parent");
    {
      TraceSpan child("test.child");
      child.arg("depth", 1);
    }
    parent.arg("depth", 0);
  }

  const std::vector<CollectedEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Spans are pushed at destruction, so the child lands before the parent.
  EXPECT_STREQ(events[0].name, "test.child");
  EXPECT_STREQ(events[1].name, "test.parent");

  const CollectedEvent& child = events[0];
  const CollectedEvent& parent = events[1];
  EXPECT_GE(child.start_ns, parent.start_ns);
  EXPECT_LE(child.start_ns + child.dur_ns, parent.start_ns + parent.dur_ns);
  EXPECT_EQ(child.tid, parent.tid);
}

TEST_F(TraceTest, ArgsRoundTripThroughTheRing) {
  {
    TraceSpan span("test.args");
    span.arg("count", 42)
        .arg("ratio", 0.5)
        .arg("mode", "tiered")
        .arg("design", intern(std::string("adaptec") + "1"));
  }
  const std::vector<CollectedEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 1u);
  const CollectedEvent& e = events[0];
  ASSERT_EQ(e.args.size(), 4u);

  EXPECT_STREQ(e.args[0].key, "count");
  ASSERT_EQ(e.args[0].kind, TraceArg::Kind::kInt);
  EXPECT_EQ(e.args[0].value.i, 42);

  EXPECT_STREQ(e.args[1].key, "ratio");
  ASSERT_EQ(e.args[1].kind, TraceArg::Kind::kDouble);
  EXPECT_DOUBLE_EQ(e.args[1].value.d, 0.5);

  EXPECT_STREQ(e.args[2].key, "mode");
  ASSERT_EQ(e.args[2].kind, TraceArg::Kind::kString);
  EXPECT_STREQ(e.args[2].value.s, "tiered");

  ASSERT_EQ(e.args[3].kind, TraceArg::Kind::kString);
  EXPECT_STREQ(e.args[3].value.s, "adaptec1");
}

TEST_F(TraceTest, ArgsBeyondMaxAreDroppedSilently) {
  {
    TraceSpan span("test.overflow_args");
    for (int i = 0; i < 10; ++i) span.arg("k", i);
  }
  const std::vector<CollectedEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].args.size(), TraceSpan::kMaxArgs);
}

TEST_F(TraceTest, InternReturnsStablePointerForEqualText) {
  const std::string dynamic = std::string("bench_") + "x";
  const char* a = intern(dynamic);
  const char* b = intern("bench_x");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "bench_x");
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  set_tracing_enabled(false);
  {
    TraceSpan span("test.invisible");
    span.arg("ignored", 1);
  }
  set_tracing_enabled(true);
  EXPECT_TRUE(collect_trace_events().empty());
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCountsThem) {
  set_trace_ring_capacity(8);
  clear_trace();  // re-caps this thread's existing buffer

  for (int i = 0; i < 20; ++i) {
    TraceSpan span("test.wrap");
    span.arg("i", i);
  }

  const TraceStats stats = trace_stats();
  EXPECT_EQ(stats.recorded, 20u);
  EXPECT_EQ(stats.dropped, 12u);
  EXPECT_EQ(stats.buffered, 8u);

  // The survivors are the 8 newest, oldest-first.
  const std::vector<CollectedEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t k = 0; k < events.size(); ++k) {
    ASSERT_EQ(events[k].args.size(), 1u);
    EXPECT_EQ(events[k].args[0].value.i,
              static_cast<std::int64_t>(12 + k));
  }
}

TEST_F(TraceTest, ThreadsInterleaveIntoSeparateBuffers) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_trace_thread_name("interleave-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("test.mt");
        span.arg("thread", t).arg("i", i);
      }
    });
  }
  // The main thread traces concurrently with the workers.
  for (int i = 0; i < kSpansPerThread; ++i) TraceSpan span("test.mt.main");
  for (std::thread& t : threads) t.join();

  const std::vector<CollectedEvent> events = collect_trace_events();
  std::set<int> tids;
  int mt_events = 0;
  for (const CollectedEvent& e : events) {
    tids.insert(e.tid);
    if (std::strcmp(e.name, "test.mt") == 0) ++mt_events;
  }
  EXPECT_EQ(mt_events, kThreads * kSpansPerThread);
  // Main thread + one buffer per traced thread.
  EXPECT_GE(tids.size(), static_cast<std::size_t>(kThreads) + 1);

  // Per-thread streams stay oldest-first after the merge.
  for (int t = 0; t < kThreads; ++t) {
    std::int64_t last = -1;
    for (const CollectedEvent& e : events) {
      if (std::strcmp(e.name, "test.mt") != 0) continue;
      if (e.args[0].value.i != t) continue;
      EXPECT_GT(e.args[1].value.i, last);
      last = e.args[1].value.i;
    }
    EXPECT_EQ(last, kSpansPerThread - 1);
  }
}

TEST_F(TraceTest, ChromeJsonIsWellFormedAndCarriesSchema) {
  {
    TraceSpan span("test.json");
    span.arg("quote", "needs \"escaping\"\n");
  }
  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"schema\": \"mch-trace/1\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("test.json"), std::string::npos);
  EXPECT_NE(json.find("\\\"escaping\\\"\\n"), std::string::npos);
  // Balanced braces/brackets — a cheap structural check that survives
  // refactors without parsing JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, ClearTraceEmptiesBuffersAndResetsStats) {
  { TraceSpan span("test.clear"); }
  EXPECT_EQ(trace_stats().recorded, 1u);
  clear_trace();
  const TraceStats stats = trace_stats();
  EXPECT_EQ(stats.recorded, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.buffered, 0u);
  EXPECT_TRUE(collect_trace_events().empty());
}

}  // namespace
}  // namespace mch::obs
