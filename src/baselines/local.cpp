#include "baselines/local.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "legal/occupancy.h"
#include "util/log.h"
#include "util/timer.h"

namespace mch::baselines {

namespace {

/// First-fit search: rows in increasing vertical distance, accepting the
/// first row that can accommodate the cell without weighing it against
/// candidates in further rows. This is the "quick pick of a nearby
/// accommodating region" behavior of the published base algorithm; the
/// improved variant refines its output with a ripple pass.
legal::PlacementCandidate first_fit(const db::Design& design,
                                    const legal::OccupancyGrid& grid,
                                    const db::Cell& cell) {
  const db::Chip& chip = design.chip();
  const std::size_t h = cell.height_rows;
  const std::size_t max_base = chip.num_rows - h;
  const std::size_t anchor = design.nearest_row(cell.gp_y, h);
  const legal::SiteIndex w = grid.width_sites(cell);

  legal::PlacementCandidate best;
  for (std::size_t dist = 0; dist <= chip.num_rows; ++dist) {
    bool any = false;
    for (const int sign : {+1, -1}) {
      if (dist == 0 && sign < 0) continue;
      const auto row = static_cast<std::ptrdiff_t>(anchor) +
                       sign * static_cast<std::ptrdiff_t>(dist);
      if (row < 0 || row > static_cast<std::ptrdiff_t>(max_base)) continue;
      any = true;
      const auto base = static_cast<std::size_t>(row);
      if (!cell.rail_compatible(chip, base)) continue;
      legal::PlacementCandidate cand =
          grid.find_in_rows(base, h, w, cell.gp_x);
      if (!cand.found) continue;
      cand.cost += std::abs(chip.row_y(base) - cell.gp_y);
      // First fit: take the first nearby-row candidate with a modest
      // horizontal detour instead of weighing all rows against each other.
      return cand;
    }
    if (!any) break;
  }
  return best;
}

/// Places one cell: direct snap when free, otherwise the first-fit search.
/// Returns false when no position exists anywhere.
bool place_cell(const db::Design& design, legal::OccupancyGrid& grid,
                db::Cell& cell, LocalLegalizerStats& stats) {
  const db::Chip& chip = design.chip();
  const std::size_t row = design.nearest_legal_row(cell);
  const auto site = static_cast<legal::SiteIndex>(
      std::llround(cell.gp_x / chip.site_width));
  const legal::SiteIndex w = grid.width_sites(cell);
  const auto clamped_site = std::clamp<legal::SiteIndex>(
      site, 0, std::max<legal::SiteIndex>(0, grid.num_sites() - w));
  if (grid.is_free(row, cell.height_rows, clamped_site, w)) {
    grid.occupy(row, cell.height_rows, clamped_site, w);
    cell.x = static_cast<double>(clamped_site) * chip.site_width;
    cell.y = chip.row_y(row);
    ++stats.direct_placements;
    return true;
  }

  const legal::PlacementCandidate cand = first_fit(design, grid, cell);
  if (!cand.found) return false;
  grid.occupy(cand.base_row, cell.height_rows, cand.site, w);
  cell.x = static_cast<double>(cand.site) * chip.site_width;
  cell.y = chip.row_y(cand.base_row);
  ++stats.window_placements;
  return true;
}

}  // namespace

LocalLegalizerStats local_legalize(db::Design& design, LocalVariant variant) {
  Timer timer;
  LocalLegalizerStats stats;
  const db::Chip& chip = design.chip();
  legal::OccupancyGrid grid(chip);

  // Obstacles block the grid up front and are skipped by the sweep.
  for (std::size_t i = 0; i < design.num_cells(); ++i)
    if (design.cells()[i].fixed) grid.occupy_outline(design.cells()[i]);

  std::vector<std::size_t> order;
  order.reserve(design.num_cells());
  for (std::size_t i = 0; i < design.num_cells(); ++i)
    if (!design.cells()[i].fixed) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double xa = design.cells()[a].gp_x;
    const double xb = design.cells()[b].gp_x;
    if (xa != xb) return xa < xb;
    return a < b;
  });

  for (const std::size_t id : order) {
    db::Cell& cell = design.cells()[id];
    if (!place_cell(design, grid, cell, stats)) {
      ++stats.failed_cells;
      MCH_LOG(kWarn) << "local legalizer: no position for cell " << id;
    }
  }

  // "Improved" variant: ripple refinement on top of the base pass — every
  // cell is lifted out and re-inserted at its now-best position. Each move
  // strictly reduces that cell's displacement, so the refined placement is
  // never worse than the base one. This mirrors the authors'
  // post-conference improved binary, which beat their DAC'16 numbers (see
  // paper Table 2 "DAC'16-Imp").
  if (variant == LocalVariant::kImproved) {
    for (const std::size_t id : order) {
      db::Cell& cell = design.cells()[id];
      grid.release_cell(cell);
      const double old_x = cell.x;
      const double old_y = cell.y;
      const legal::PlacementCandidate cand =
          grid.find_nearest(cell, cell.gp_x, cell.gp_y);
      if (cand.found) {
        const double new_cost =
            std::abs(static_cast<double>(cand.site) * chip.site_width -
                     cell.gp_x) +
            std::abs(chip.row_y(cand.base_row) - cell.gp_y);
        const double old_cost =
            std::abs(old_x - cell.gp_x) + std::abs(old_y - cell.gp_y);
        if (new_cost < old_cost) {
          grid.occupy(cand.base_row, cell.height_rows, cand.site,
                      grid.width_sites(cell));
          cell.x = static_cast<double>(cand.site) * chip.site_width;
          cell.y = chip.row_y(cand.base_row);
          continue;
        }
      }
      // Keep the original spot.
      grid.occupy_cell(cell);
    }
  }

  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace mch::baselines
