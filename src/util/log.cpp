#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mch {

namespace {

/// MCH_LOG_LEVEL overrides the compiled default: "debug", "info", "warn",
/// "error", "off" (case-sensitive, matching the level names).
LogLevel initial_level() {
  const char* env = std::getenv("MCH_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_sink_mutex;
thread_local int t_worker_id = -1;

/// Seconds since the first log line (monotonic), so lines across threads
/// order by a shared steady clock rather than wall time.
double uptime_seconds() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_worker_id(int worker_id) { t_worker_id = worker_id; }

int log_worker_id() { return t_worker_id; }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  // One fprintf per line under the mutex: concurrent lines never interleave.
  const double uptime = uptime_seconds();
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (t_worker_id >= 0) {
    std::fprintf(stderr, "[%10.4f][%s][w%d] %s\n", uptime, level_tag(level),
                 t_worker_id, message.c_str());
  } else {
    std::fprintf(stderr, "[%10.4f][%s] %s\n", uptime, level_tag(level),
                 message.c_str());
  }
}
}  // namespace detail

}  // namespace mch
