#include "legal/row_assign.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generator.h"
#include "legal/flow.h"
#include "util/check.h"

namespace mch::legal {
namespace {

db::Chip test_chip() {
  db::Chip chip;
  chip.num_rows = 10;
  chip.num_sites = 100;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  return chip;
}

TEST(RowAssignTest, SingleHeightGoesToNearestRow) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 4;
  cell.gp_y = 27.0;  // nearest row 3
  design.add_cell(cell);
  cell.gp_y = 22.0;  // nearest row 2
  design.add_cell(cell);
  const RowAssignment rows = compute_row_assignment(design);
  EXPECT_EQ(rows[0], 3u);
  EXPECT_EQ(rows[1], 2u);
}

TEST(RowAssignTest, EvenHeightHonorsRail) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 4;
  cell.height_rows = 2;
  cell.bottom_rail = db::RailType::kVdd;  // odd row indices
  cell.gp_y = 20.0;                       // nearest row 2 → must move to 1 or 3
  design.add_cell(cell);
  const RowAssignment rows = compute_row_assignment(design);
  EXPECT_TRUE(rows[0] == 1 || rows[0] == 3);
}

TEST(RowAssignTest, AssignRowsWritesY) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 4;
  cell.gp_y = 27.0;
  cell.y = -1.0;
  design.add_cell(cell);
  const RowAssignment rows = assign_rows(design);
  EXPECT_DOUBLE_EQ(design.cells()[0].y, design.chip().row_y(rows[0]));
}

TEST(RowAssignTest, TallCellClampedToFit) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 4;
  cell.height_rows = 3;
  cell.gp_y = 95.0;  // top of the chip; base must be ≤ 7
  design.add_cell(cell);
  const RowAssignment rows = compute_row_assignment(design);
  EXPECT_LE(rows[0], 7u);
}

TEST(RowAssignTest, YDisplacementIsMinimalAmongLegalRows) {
  // Property: no other rail-compatible row is strictly closer.
  gen::GeneratorOptions opts;
  opts.seed = 33;
  db::Design design = gen::generate_random_design(200, 50, 0.4, opts);
  const RowAssignment rows = compute_row_assignment(design);
  for (std::size_t i = 0; i < design.num_cells(); ++i) {
    const db::Cell& cell = design.cells()[i];
    const double chosen =
        std::abs(design.chip().row_y(rows[i]) - cell.gp_y);
    for (std::size_t r = 0;
         r + cell.height_rows <= design.chip().num_rows; ++r) {
      if (!cell.rail_compatible(design.chip(), r)) continue;
      EXPECT_GE(std::abs(design.chip().row_y(r) - cell.gp_y) + 1e-9, chosen)
          << "cell " << i << " row " << r;
    }
  }
}

TEST(OrientationTest, OddHeightFlipsToMatchRail) {
  db::Design design(test_chip());  // bottom rail VSS; row 1 = VDD
  db::Cell cell;
  cell.width = 4;
  cell.bottom_rail = db::RailType::kVss;
  cell.x = 0;
  cell.y = 10.0;  // row 1 (VDD): VSS-bottom single must flip
  design.add_cell(cell);
  cell.y = 0.0;  // row 0 (VSS): no flip
  design.add_cell(cell);
  const std::size_t flipped = assign_orientations(design);
  EXPECT_EQ(flipped, 1u);
  EXPECT_TRUE(design.cells()[0].flipped);
  EXPECT_FALSE(design.cells()[1].flipped);
}

TEST(OrientationTest, EvenHeightNeverFlips) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 4;
  cell.height_rows = 2;
  cell.bottom_rail = db::RailType::kVss;
  cell.x = 0;
  cell.y = 0.0;  // row 0: rail matches
  design.add_cell(cell);
  EXPECT_EQ(assign_orientations(design), 0u);
  EXPECT_FALSE(design.cells()[0].flipped);
}

TEST(OrientationTest, EvenHeightOnWrongRailRejected) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 4;
  cell.height_rows = 2;
  cell.bottom_rail = db::RailType::kVdd;  // row 0 is VSS
  cell.x = 0;
  cell.y = 0.0;
  design.add_cell(cell);
  EXPECT_THROW(assign_orientations(design), CheckError);
}

TEST(OrientationTest, TripleHeightFlipsLikeSingles) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 4;
  cell.height_rows = 3;
  cell.bottom_rail = db::RailType::kVdd;
  cell.x = 0;
  cell.y = 0.0;  // row 0 = VSS: flip
  design.add_cell(cell);
  EXPECT_EQ(assign_orientations(design), 1u);
  EXPECT_TRUE(design.cells()[0].flipped);
}

TEST(OrientationTest, FlowAssignsOrientations) {
  gen::GeneratorOptions opts;
  opts.seed = 44;
  db::Design design = gen::generate_random_design(300, 40, 0.5, opts);
  // Scatter designed rails so some odd cells land on mismatched rows.
  for (std::size_t i = 0; i < design.num_cells(); ++i)
    design.cells()[i].bottom_rail =
        (i % 2 == 0) ? db::RailType::kVss : db::RailType::kVdd;
  legal::FlowOptions options;
  const legal::FlowResult result = legal::legalize(design);
  ASSERT_TRUE(result.legal);
  std::size_t flipped = 0;
  for (const db::Cell& cell : design.cells()) {
    if (cell.flipped) ++flipped;
    if (cell.is_even_height()) {
      EXPECT_FALSE(cell.flipped);
    }
  }
  EXPECT_GT(flipped, 0u);
  (void)options;
}

}  // namespace
}  // namespace mch::legal
