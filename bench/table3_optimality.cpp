// Reproduces the §5.3 optimality experiment: on the suite with *only*
// single-row-height cells (the paper's "benchmarks without doubling the
// cell heights"), the MMSIM solver and Abacus's PlaceRow subroutine —
// swapped into the identical flow — must produce the SAME total cell
// displacement, empirically validating Theorem 2. The paper also reports a
// 1.51× MMSIM speedup over PlaceRow at full scale.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "baselines/abacus.h"
#include "bench_common.h"
#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "io/table.h"
#include "legal/flow.h"
#include "legal/tetris_alloc.h"
#include "runtime/parallel.h"
#include "util/timer.h"

namespace {

/// Per-benchmark measurements, filled concurrently (one slot per spec).
struct SpecResult {
  double disp_mmsim = 0.0;
  double disp_placerow = 0.0;
  bool equal = false;
  double t_mmsim = 0.0;
  double t_placerow = 0.0;
  double t_incr = 0.0;
  double do_not_optimize = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mch;
  const unsigned threads = bench::bench_threads(argc, argv);
  gen::GeneratorOptions options = bench::bench_options();
  std::printf("Section 5.3 — MMSIM optimality on single-row-height designs "
              "(scale %.3f, seed %llu, threads %u)\n\n",
              options.scale,
              static_cast<unsigned long long>(options.seed), threads);

  io::Table table({"Benchmark", "Disp MMSIM", "Disp PlaceRow", "Equal",
                   "t MMSIM (s)", "t PlaceRow (s)", "t PlaceRow-incr (s)"});
  const std::vector<gen::BenchmarkSpec>& suite = gen::ispd2015_mch_suite();
  std::vector<SpecResult> rows(suite.size());

  // One benchmark per runtime task; displacements are deterministic, the
  // timing columns are wall-clock and inflate a little under contention.
  runtime::parallel_for(std::size_t{0}, suite.size(), 1, [&](std::size_t lo,
                                                             std::size_t hi) {
   for (std::size_t s = lo; s < hi; ++s) {
    // Single-height variant: all cells single-row ("without doubling").
    gen::BenchmarkSpec single = suite[s];
    single.num_single_cells += single.num_double_cells;
    single.num_double_cells = 0;
    db::Design mmsim_design = gen::generate_design(single, options);
    db::Design placerow_design = mmsim_design;

    Timer timer;
    legal::FlowOptions flow_options;
    flow_options.solver.mmsim.tolerance = 1e-7;
    flow_options.solver.mmsim.max_iterations = 500000;
    flow_options.verify = false;
    legal::legalize(mmsim_design, flow_options);
    const double t_mmsim = timer.seconds();

    timer.reset();
    baselines::placerow_legalize_fixed_rows(placerow_design,
                                            /*clamp_right_boundary=*/false);
    legal::tetris_allocate(placerow_design);
    const double t_placerow = timer.seconds();

    // The literal Abacus usage of the subroutine: PlaceRow re-run on the
    // whole row after every cell insertion (what a per-cell legalizer pays,
    // and the fairer runtime comparison to the paper's 1.51x claim).
    timer.reset();
    double do_not_optimize = 0.0;
    {
      db::Design incr = placerow_design;  // geometry only; positions unused
      const legal::RowAssignment assignment =
          legal::compute_row_assignment(incr);
      std::vector<std::vector<baselines::PlaceRowCell>> per_row(
          incr.chip().num_rows);
      std::vector<std::size_t> order(incr.num_cells());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return incr.cells()[a].gp_x < incr.cells()[b].gp_x;
                });
      for (const std::size_t id : order) {
        auto& row = per_row[assignment[id]];
        row.push_back({incr.cells()[id].gp_x, incr.cells()[id].width, 1.0});
        do_not_optimize += baselines::place_row(row).back();
      }
    }
    const double t_incr = timer.seconds();

    const double disp_mmsim =
        eval::displacement(mmsim_design).total_sites;
    const double disp_placerow =
        eval::displacement(placerow_design).total_sites;
    rows[s] = {disp_mmsim,
               disp_placerow,
               std::abs(disp_mmsim - disp_placerow) <=
                   1e-3 * std::max(1.0, disp_placerow),
               t_mmsim,
               t_placerow,
               t_incr,
               do_not_optimize};
    std::cerr << "." << std::flush;
   }
  });
  std::cerr << "\n";

  bool all_equal = true;
  double mmsim_time = 0.0, placerow_time = 0.0, incr_time = 0.0;
  double benchmark_do_not_optimize = 0.0;
  bench::JsonSnapshot json("table3_optimality");
  for (std::size_t s = 0; s < suite.size(); ++s) {
    const SpecResult& r = rows[s];
    const std::size_t cells = static_cast<std::size_t>(
        static_cast<double>(suite[s].num_single_cells +
                            suite[s].num_double_cells) *
        options.scale);
    json.add(suite[s].name + "/mmsim", cells, r.t_mmsim);
    json.add(suite[s].name + "/placerow", cells, r.t_placerow);
    all_equal = all_equal && r.equal;
    mmsim_time += r.t_mmsim;
    placerow_time += r.t_placerow;
    incr_time += r.t_incr;
    benchmark_do_not_optimize += r.do_not_optimize;

    table.row()
        .cell(suite[s].name)
        .cell(r.disp_mmsim, 1)
        .cell(r.disp_placerow, 1)
        .cell(r.equal ? "yes" : "NO")
        .cell(r.t_mmsim, 3)
        .cell(r.t_placerow, 3)
        .cell(r.t_incr, 3);
  }

  std::cout << table.to_text() << "\n";
  std::cout << (all_equal
                    ? "Total displacements IDENTICAL on every benchmark — "
                      "Theorem 2 optimality empirically validated.\n"
                    : "MISMATCH detected — optimality claim violated!\n");
  std::printf("Aggregate runtime: MMSIM %.2fs | streaming PlaceRow %.2fs | "
              "per-insertion PlaceRow %.2fs.\n",
              mmsim_time, placerow_time, incr_time);
  std::printf("Note: one streaming PlaceRow pass per row is linear-time and "
              "beats both; the paper's 1.51x MMSIM speedup is against the "
              "Abacus-style per-insertion usage (last column), whose cost "
              "grows quadratically with row length.\n");
  (void)benchmark_do_not_optimize;
  mch::bench::print_peak_rss();
  json.write();
  return all_equal ? 0 : 1;
}
