#include "dp/detailed.h"

#include <gtest/gtest.h>

#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "legal/flow.h"

namespace mch::dp {
namespace {

/// A legalized design with a netlist — the detailed placer's input.
db::Design legalized_design(std::uint64_t seed, double density = 0.55,
                            std::size_t macros = 0) {
  gen::GeneratorOptions options;
  options.seed = seed;
  options.fixed_macros = macros;
  db::Design design = gen::generate_random_design(800, 80, density, options);
  const legal::FlowResult flow = legal::legalize(design);
  MCH_CHECK(flow.legal);
  return design;
}

TEST(DetailedPlacementTest, PreservesLegality) {
  db::Design design = legalized_design(1);
  refine(design);
  const db::LegalityReport report = db::check_legality(design);
  EXPECT_TRUE(report.legal()) << report.summary();
}

TEST(DetailedPlacementTest, NeverIncreasesHpwl) {
  for (std::uint64_t seed = 2; seed < 6; ++seed) {
    db::Design design = legalized_design(seed);
    const double before = eval::hpwl(design);
    const DetailedPlacementStats stats = refine(design);
    EXPECT_LE(stats.hpwl_after, before + 1e-6) << "seed " << seed;
    EXPECT_DOUBLE_EQ(stats.hpwl_before, before);
    EXPECT_DOUBLE_EQ(stats.hpwl_after, eval::hpwl(design));
  }
}

TEST(DetailedPlacementTest, ActuallyImprovesWirelength) {
  db::Design design = legalized_design(7);
  const DetailedPlacementStats stats = refine(design);
  EXPECT_GT(stats.reorder_moves + stats.swap_moves + stats.shift_moves, 0u);
  EXPECT_GT(stats.improvement_fraction(), 0.0);
}

TEST(DetailedPlacementTest, FixedCellsNeverMove) {
  db::Design design = legalized_design(8, 0.5, /*macros=*/4);
  std::vector<std::pair<double, double>> before;
  for (const db::Cell& cell : design.cells())
    if (cell.fixed) before.emplace_back(cell.x, cell.y);
  refine(design);
  std::size_t k = 0;
  for (const db::Cell& cell : design.cells()) {
    if (!cell.fixed) continue;
    EXPECT_DOUBLE_EQ(cell.x, before[k].first);
    EXPECT_DOUBLE_EQ(cell.y, before[k].second);
    ++k;
  }
  EXPECT_TRUE(db::check_legality(design).legal());
}

TEST(DetailedPlacementTest, Deterministic) {
  db::Design a = legalized_design(9);
  db::Design b = legalized_design(9);
  refine(a);
  refine(b);
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells()[i].x, b.cells()[i].x);
    EXPECT_DOUBLE_EQ(a.cells()[i].y, b.cells()[i].y);
  }
}

TEST(DetailedPlacementTest, OpsCanBeDisabled) {
  db::Design design = legalized_design(10);
  DetailedPlacementOptions options;
  options.enable_reorder = false;
  options.enable_vertical_swaps = false;
  options.enable_shift = false;
  const DetailedPlacementStats stats = refine(design, options);
  EXPECT_EQ(stats.reorder_moves, 0u);
  EXPECT_EQ(stats.swap_moves, 0u);
  EXPECT_EQ(stats.shift_moves, 0u);
  EXPECT_DOUBLE_EQ(stats.hpwl_before, stats.hpwl_after);
}

TEST(DetailedPlacementTest, ShiftOnlyStillLegalAndMonotone) {
  db::Design design = legalized_design(11, 0.8);
  DetailedPlacementOptions options;
  options.enable_reorder = false;
  options.enable_vertical_swaps = false;
  const DetailedPlacementStats stats = refine(design, options);
  EXPECT_LE(stats.hpwl_after, stats.hpwl_before + 1e-6);
  EXPECT_TRUE(db::check_legality(design).legal());
}

TEST(DetailedPlacementTest, StopsWhenConverged) {
  gen::GeneratorOptions options;
  options.seed = 12;
  db::Design design = gen::generate_random_design(40, 4, 0.3, options);
  legal::legalize(design);
  DetailedPlacementOptions dp_options;
  dp_options.max_passes = 30;
  const DetailedPlacementStats stats = refine(design, dp_options);
  // A 44-cell design converges long before the pass budget.
  EXPECT_LT(stats.passes, 30u);
  // Re-running immediately finds nothing.
  const DetailedPlacementStats again = refine(design, dp_options);
  EXPECT_EQ(again.reorder_moves + again.swap_moves + again.shift_moves, 0u);
  EXPECT_EQ(again.passes, 1u);
}

TEST(DetailedPlacementTest, NoNetsIsNoOp) {
  gen::GeneratorOptions options;
  options.seed = 13;
  options.nets_per_cell = 0.0;
  db::Design design = gen::generate_random_design(200, 20, 0.5, options);
  legal::legalize(design);
  const DetailedPlacementStats stats = refine(design);
  EXPECT_EQ(stats.reorder_moves + stats.swap_moves + stats.shift_moves, 0u);
  EXPECT_TRUE(db::check_legality(design).legal());
}

TEST(DetailedPlacementTest, DenseDesignStaysLegal) {
  db::Design design = legalized_design(14, 0.9);
  refine(design);
  const db::LegalityReport report = db::check_legality(design);
  EXPECT_TRUE(report.legal()) << report.summary();
}

}  // namespace
}  // namespace mch::dp
