#include "runtime/thread_pool.h"

#include <string>

#include "obs/trace.h"
#include "util/check.h"
#include "util/log.h"

namespace mch::runtime {

namespace {
thread_local bool t_in_task = false;

/// RAII flag so nested parallel constructs detect they are inside a chunk.
struct InTaskScope {
  InTaskScope() { t_in_task = true; }
  ~InTaskScope() { t_in_task = false; }
};
}  // namespace

bool ThreadPool::in_task() { return t_in_task; }

ThreadPool::ThreadPool(unsigned thread_count) {
  MCH_CHECK_MSG(thread_count >= 1, "thread pool needs at least one thread");
  workers_.reserve(thread_count - 1);
  for (unsigned id = 1; id < thread_count; ++id)
    workers_.emplace_back([this, id] { worker_main(id); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::execute_chunk(const std::function<void(std::size_t)>& task,
                               std::size_t chunk) {
  InTaskScope scope;
  try {
    task(chunk);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_main(unsigned worker_id) {
  set_log_worker_id(static_cast<int>(worker_id));
  obs::set_trace_thread_name("worker-" + std::to_string(worker_id));
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] {
      return shutdown_ || (task_ != nullptr && generation_ != seen_generation);
    });
    if (shutdown_) return;
    // Join the new job: copy its state while still holding the lock. The
    // submitter cannot finish the job (and recycle the state) before this
    // worker leaves, because active_workers_ is raised under the same lock
    // its completion wait re-checks.
    seen_generation = generation_;
    const std::function<void(std::size_t)>* task = task_;
    const std::size_t limit = chunk_limit_;
    ++active_workers_;
    lock.unlock();
    {
      // One busy span per job join (not per chunk): bounded event volume
      // even when a job has thousands of fine-grained chunks.
      obs::TraceSpan busy("pool.worker.busy");
      std::size_t executed = 0;
      for (;;) {
        const std::size_t chunk =
            next_chunk_.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= limit) break;
        execute_chunk(*task, chunk);
        ++executed;
      }
      busy.arg("chunks", executed);
    }
    lock.lock();
    if (--active_workers_ == 0) done_.notify_all();
  }
}

void ThreadPool::run(std::size_t chunks,
                     const std::function<void(std::size_t)>& task) {
  if (chunks == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  MCH_CHECK_MSG(task_ == nullptr,
                "concurrent top-level ThreadPool::run calls are not supported");
  task_ = &task;
  chunk_limit_ = chunks;
  next_chunk_.store(0, std::memory_order_relaxed);
  first_error_ = nullptr;
  ++generation_;
  lock.unlock();
  wake_.notify_all();

  // The submitter is one of the pool's threads: help drain the chunks.
  for (;;) {
    const std::size_t chunk =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= chunks) break;
    execute_chunk(task, chunk);
  }

  // Every chunk has been claimed; wait for joined workers to finish theirs.
  // A worker may still join while we wait — it finds the cursor drained and
  // leaves again. Once task_ is cleared below (under the same lock the wait
  // holds) no worker joins until the next run().
  lock.lock();
  done_.wait(lock, [&] { return active_workers_ == 0; });
  task_ = nullptr;
  chunk_limit_ = 0;
  std::exception_ptr error = first_error_;
  first_error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace mch::runtime
