#include "runtime/runtime.h"

#include <cstdlib>
#include <thread>

#include "util/log.h"

namespace mch::runtime {

namespace {
unsigned env_threads() {
  const char* env = std::getenv("MCH_THREADS");
  if (!env || *env == '\0') return 0;
  const long value = std::atol(env);
  if (value < 1) {
    MCH_LOG(kWarn) << "ignoring invalid MCH_THREADS='" << env << "'";
    return 0;
  }
  return static_cast<unsigned>(value);
}
}  // namespace

unsigned Runtime::resolve_thread_count(unsigned requested) {
  if (requested >= 1) return requested;
  const unsigned from_env = env_threads();
  if (from_env >= 1) return from_env;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware >= 1 ? hardware : 1;
}

Runtime::Runtime(unsigned threads) { reconfigure(threads); }

void Runtime::reconfigure(unsigned threads) {
  threads_ = resolve_thread_count(threads);
  scheduler_.reset();  // join the old workers before spawning new ones
  if (threads_ > 1) scheduler_ = std::make_unique<Scheduler>(threads_);
}

Runtime& Runtime::instance() {
  static Runtime runtime(0);
  return runtime;
}

void Runtime::configure(unsigned threads) { instance().reconfigure(threads); }

}  // namespace mch::runtime
