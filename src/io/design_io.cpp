#include "io/design_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace mch::io {

using db::Cell;
using db::Chip;
using db::Design;
using db::Net;
using db::Pin;
using db::RailType;

namespace {

RailType parse_rail(const std::string& token) {
  if (token == "VSS") return RailType::kVss;
  if (token == "VDD") return RailType::kVdd;
  MCH_CHECK_MSG(false, "bad rail token: " << token);
  return RailType::kVss;
}

}  // namespace

void write_design(std::ostream& os, const Design& design) {
  const Chip& chip = design.chip();
  os << "mchdesign 2\n";
  os << "name " << (design.name.empty() ? "unnamed" : design.name) << '\n';
  os << std::setprecision(17);
  os << "chip " << chip.num_rows << ' ' << chip.num_sites << ' '
     << chip.site_width << ' ' << chip.row_height << ' '
     << db::to_string(chip.bottom_rail) << '\n';
  os << "cells " << design.num_cells() << '\n';
  for (const Cell& cell : design.cells())
    os << cell.width << ' ' << cell.height_rows << ' '
       << db::to_string(cell.bottom_rail) << ' ' << (cell.fixed ? 1 : 0)
       << ' ' << cell.gp_x << ' ' << cell.gp_y << ' ' << cell.x << ' '
       << cell.y << '\n';
  os << "nets " << design.num_nets() << '\n';
  for (const db::NetView& net : design.nets()) {
    os << net.pins.size();
    for (const Pin& pin : net.pins)
      os << ' ' << pin.cell << ' ' << pin.dx << ' ' << pin.dy;
    os << '\n';
  }
  MCH_CHECK_MSG(os.good(), "stream failure while writing design");
}

void save_design(const std::string& path, const Design& design) {
  std::ofstream file(path);
  MCH_CHECK_MSG(file.is_open(), "cannot open " << path << " for writing");
  write_design(file, design);
}

Design read_design(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  MCH_CHECK_MSG(magic == "mchdesign" && (version == 1 || version == 2),
                "not an mchdesign v1/v2 stream");

  std::string keyword;
  is >> keyword;
  MCH_CHECK(keyword == "name");
  std::string name;
  is >> name;

  is >> keyword;
  MCH_CHECK(keyword == "chip");
  Chip chip;
  std::string rail;
  is >> chip.num_rows >> chip.num_sites >> chip.site_width >>
      chip.row_height >> rail;
  chip.bottom_rail = parse_rail(rail);
  MCH_CHECK_MSG(is.good(), "truncated chip record");

  Design design(chip);
  design.name = name;

  is >> keyword;
  MCH_CHECK(keyword == "cells");
  std::size_t num_cells = 0;
  is >> num_cells;
  for (std::size_t i = 0; i < num_cells; ++i) {
    Cell cell;
    is >> cell.width >> cell.height_rows >> rail;
    if (version >= 2) {
      int fixed = 0;
      is >> fixed;
      cell.fixed = fixed != 0;
    }
    is >> cell.gp_x >> cell.gp_y >> cell.x >> cell.y;
    MCH_CHECK_MSG(is.good(), "truncated cell record " << i);
    cell.bottom_rail = parse_rail(rail);
    design.add_cell(cell);
  }

  is >> keyword;
  MCH_CHECK(keyword == "nets");
  std::size_t num_nets = 0;
  is >> num_nets;
  for (std::size_t i = 0; i < num_nets; ++i) {
    std::size_t pins = 0;
    is >> pins;
    Net net;
    net.pins.resize(pins);
    for (Pin& pin : net.pins) is >> pin.cell >> pin.dx >> pin.dy;
    MCH_CHECK_MSG(is.good(), "truncated net record " << i);
    design.add_net(std::move(net));
  }
  return design;
}

Design load_design(const std::string& path) {
  std::ifstream file(path);
  MCH_CHECK_MSG(file.is_open(), "cannot open " << path);
  return read_design(file);
}

}  // namespace mch::io
