// SIMD kernel tables for the linalg sweeps: the width-2 CSR gathers of the
// constraint matrix and the flat scalar-block sweeps of BlockDiagMatrix.
//
// Contexts are plain pointer bundles so the per-ISA translation units (built
// with -mavx2 / -mavx512* and -ffp-contract=off) stay free of inline
// standard-library code — nothing compiled with vector ISAs may leak into
// TUs that run on baseline hardware via COMDAT folding.
//
// Every double kernel is BITWISE IDENTICAL to the scalar reference loop it
// replaces: each output element's floating-point chain is replicated
// term-for-term in the reference order (short CSR rows select real terms
// with blend masks instead of padded 0.0·x adds, so not even the sign of an
// exactly-zero accumulator can differ), and -ffp-contract=off keeps the
// compiler from fusing any multiply-add. See ALGORITHM.md par.13.
#pragma once

#include <cstddef>
#include <cstdint>

#include "linalg/simd.h"

namespace mch::linalg::kernels {

/// Width-2 SoA gather view of CSR rows (CsrMatrix::gather2_view()): row r
/// has value/column slots (v0[r], c0[r]) and (v1[r], c1[r]) with len[r] in
/// 0..2 real entries; padding slots hold value 0.0 and column 0 and are
/// masked out of every load.
struct CsrGather2Ctx {
  const double* v0;
  const double* v1;
  const std::uint32_t* c0;
  const std::uint32_t* c1;
  const std::uint8_t* len;
};

struct CsrSimdKernels {
  /// y[r] += alpha * (row r of A · x) for r in [lo, hi).
  void (*add)(const CsrGather2Ctx& g, double alpha, const double* x,
              double* y, std::size_t lo, std::size_t hi);
  /// y[r] += a1 * (row r · x1); y[r] += a2 * (row r · x2) — the fused
  /// two-accumulator form of multiply_add2.
  void (*add2)(const CsrGather2Ctx& g, double a1, const double* x1, double a2,
               const double* x2, double* y, std::size_t lo, std::size_t hi);
  /// y[i] += alpha * v[i] * x[i] — the flat scalar-block sweep of
  /// BlockDiagMatrix::multiply_add.
  void (*ew_scale_add)(double alpha, const double* v, const double* x,
                       double* y, std::size_t lo, std::size_t hi);
  /// y[i] = v[i] * x[i] — the flat scalar-block sweep of
  /// BlockDiagMatrix::solve.
  void (*ew_mul)(const double* v, const double* x, double* y, std::size_t lo,
                 std::size_t hi);
};

/// Kernel table for `level`; nullptr when the level is kScalar or the
/// platform has no SIMD build — callers then run the scalar loops.
const CsrSimdKernels* csr_simd_kernels(SimdLevel level);

#if defined(MCH_SIMD_X86)
extern const CsrSimdKernels kCsrSimdAvx2;
extern const CsrSimdKernels kCsrSimdAvx512;
#endif

}  // namespace mch::linalg::kernels
