#include "legal/tetris_alloc.h"

#include <gtest/gtest.h>

#include "db/legality.h"
#include "gen/generator.h"
#include "legal/row_assign.h"

namespace mch::legal {
namespace {

db::Chip test_chip() {
  db::Chip chip;
  chip.num_rows = 6;
  chip.num_sites = 50;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  return chip;
}

TEST(TetrisAllocTest, AlreadyLegalPlacementUntouched) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 5;
  cell.gp_x = cell.x = 10;
  cell.gp_y = cell.y = 0;
  design.add_cell(cell);
  cell.gp_x = cell.x = 20;
  design.add_cell(cell);
  const TetrisStats stats = tetris_allocate(design);
  EXPECT_EQ(stats.illegal_cells, 0u);
  EXPECT_DOUBLE_EQ(design.cells()[0].x, 10.0);
  EXPECT_DOUBLE_EQ(design.cells()[1].x, 20.0);
  EXPECT_TRUE(db::check_legality(design).legal());
}

TEST(TetrisAllocTest, SnapsOffSitePositions) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 5;
  cell.x = 10.37;
  cell.y = 0;
  design.add_cell(cell);
  const TetrisStats stats = tetris_allocate(design);
  EXPECT_EQ(stats.illegal_cells, 0u);
  EXPECT_DOUBLE_EQ(design.cells()[0].x, 10.0);
}

TEST(TetrisAllocTest, ResolvesResidualOverlap) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 5;
  cell.x = 10;
  cell.y = 0;
  design.add_cell(cell);
  cell.x = 12;  // overlaps the first
  design.add_cell(cell);
  const TetrisStats stats = tetris_allocate(design);
  EXPECT_EQ(stats.illegal_cells, 1u);
  EXPECT_EQ(stats.unplaced_cells, 0u);
  EXPECT_TRUE(db::check_legality(design).legal());
}

TEST(TetrisAllocTest, LeftCellKeepsPosition) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 5;
  cell.x = 10;
  cell.y = 0;
  design.add_cell(cell);
  cell.x = 12;
  design.add_cell(cell);
  tetris_allocate(design);
  // Scan order is left-to-right: the left cell is accepted unmoved.
  EXPECT_DOUBLE_EQ(design.cells()[0].x, 10.0);
  EXPECT_GE(design.cells()[1].x, 15.0);
}

TEST(TetrisAllocTest, FixesOutOfRightBoundary) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 8;
  cell.x = 47;  // extends to 55 > 50
  cell.y = 0;
  design.add_cell(cell);
  const TetrisStats stats = tetris_allocate(design);
  EXPECT_EQ(stats.illegal_cells, 1u);
  EXPECT_TRUE(db::check_legality(design).legal());
  EXPECT_LE(design.cells()[0].x + design.cells()[0].width, 50.0);
}

TEST(TetrisAllocTest, RelocatedMultiRowKeepsRailParity) {
  db::Design design(test_chip());
  // Fill row 0 completely so the double cell must move.
  db::Cell filler;
  filler.width = 50;
  filler.x = 0;
  filler.y = 0;
  design.add_cell(filler);
  db::Cell tall;
  tall.width = 5;
  tall.height_rows = 2;
  tall.bottom_rail = db::RailType::kVss;  // even rows
  tall.x = 10;
  tall.y = 0;  // conflicts with the filler
  design.add_cell(tall);
  const TetrisStats stats = tetris_allocate(design);
  EXPECT_EQ(stats.illegal_cells, 1u);
  const db::LegalityReport report = db::check_legality(design);
  EXPECT_TRUE(report.legal()) << report.summary();
  const auto row = static_cast<std::size_t>(design.cells()[1].y / 10.0);
  EXPECT_EQ(row % 2, 0u);
}

TEST(TetrisAllocTest, NotRowAlignedInputRejected) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 5;
  cell.x = 10;
  cell.y = 57.0;  // rounds to row 6 > 5 for height 1... row 6 doesn't exist
  design.add_cell(cell);
  EXPECT_THROW(tetris_allocate(design), CheckError);
}

TEST(TetrisAllocTest, RelocationCostAccounted) {
  db::Design design(test_chip());
  db::Cell cell;
  cell.width = 5;
  cell.gp_x = cell.x = 10;
  cell.gp_y = cell.y = 0;
  design.add_cell(cell);
  design.add_cell(cell);  // exact duplicate: one must move
  const TetrisStats stats = tetris_allocate(design);
  EXPECT_EQ(stats.illegal_cells, 1u);
  EXPECT_GT(stats.relocation_cost_sites, 0.0);
}

TEST(TetrisAllocTest, EndToEndAfterRowAssignment) {
  gen::GeneratorOptions opts;
  opts.seed = 55;
  db::Design design = gen::generate_random_design(400, 60, 0.6, opts);
  assign_rows(design);  // y on rows; x still the (noisy) GP values
  const TetrisStats stats = tetris_allocate(design);
  EXPECT_EQ(stats.unplaced_cells, 0u);
  const db::LegalityReport report = db::check_legality(design);
  EXPECT_TRUE(report.legal()) << report.summary();
}

}  // namespace
}  // namespace mch::legal
