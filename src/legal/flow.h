// The complete legalization flow of the paper (Fig. 4):
//
//   global placement  →  row assignment  →  multi-row pre-processing +
//   MMSIM on the LCP  →  multi-row restore  →  Tetris-like allocation
//   →  legal placement.
//
// This is the library's main entry point; `mch::legal::legalize` is what a
// downstream placer calls after global placement.
#pragma once

#include "db/design.h"
#include "db/legality.h"
#include "legal/mmsim_legalizer.h"
#include "legal/row_assign.h"
#include "legal/tetris_alloc.h"

namespace mch::legal {

struct FlowOptions {
  MmsimLegalizerOptions solver;
  /// Validate the final placement with the legality checker (cheap; on by
  /// default so callers can trust FlowResult::legal).
  bool verify = true;
};

struct FlowResult {
  RowAssignment base_rows;
  MmsimLegalizerStats solver;
  TetrisStats allocation;
  db::LegalityReport legality;  ///< populated when options.verify
  bool legal = false;
  double total_seconds = 0.0;
};

/// Legalizes the design in place: reads cells' (gp_x, gp_y), writes final
/// legal (x, y).
FlowResult legalize(db::Design& design, const FlowOptions& options = {});

}  // namespace mch::legal
