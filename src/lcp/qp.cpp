#include "lcp/qp.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mch::lcp {

double StructuredQp::objective(const Vector& x) const {
  MCH_CHECK(x.size() == num_variables());
  Vector kx;
  K.multiply(x, kx);
  return 0.5 * linalg::dot(x, kx) + linalg::dot(p, x);
}

double StructuredQp::max_constraint_violation(const Vector& x) const {
  Vector bx;
  B.multiply(x, bx);
  double worst = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    worst = std::max(worst, b[i] - bx[i]);
  return worst;
}

void StructuredQp::lcp_apply(const Vector& z, Vector& y) const {
  const std::size_t n = num_variables();
  const std::size_t m = num_constraints();
  MCH_CHECK(z.size() == n + m);

  const Vector x(z.begin(), z.begin() + static_cast<std::ptrdiff_t>(n));
  const Vector r(z.begin() + static_cast<std::ptrdiff_t>(n), z.end());

  // Top block: K x − Bᵀ r + p.
  Vector top;
  K.multiply(x, top);
  B.multiply_transpose_add(-1.0, r, top);
  // Bottom block: B x − b.
  Vector bottom;
  B.multiply(x, bottom);

  y.assign(n + m, 0.0);
  for (std::size_t i = 0; i < n; ++i) y[i] = top[i] + p[i];
  for (std::size_t i = 0; i < m; ++i) y[n + i] = bottom[i] - b[i];
}

LcpResidual StructuredQp::lcp_residual(const Vector& z) const {
  Vector w;
  lcp_apply(z, w);
  LcpResidual res;
  for (std::size_t i = 0; i < z.size(); ++i) {
    res.z_negativity = std::max(res.z_negativity, -z[i]);
    res.w_negativity = std::max(res.w_negativity, -w[i]);
    res.complementarity =
        std::max(res.complementarity, std::abs(z[i] * w[i]));
  }
  return res;
}

DenseLcp StructuredQp::to_dense_lcp() const {
  const std::size_t n = num_variables();
  const std::size_t m = num_constraints();
  DenseLcp lcp;
  lcp.A = linalg::DenseMatrix(n + m, n + m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) lcp.A(i, j) = K.entry(i, j);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t k = B.row_ptr()[r]; k < B.row_ptr()[r + 1]; ++k) {
      const std::size_t c = B.col_idx()[k];
      const double v = B.values()[k];
      lcp.A(n + r, c) = v;    //  B block
      lcp.A(c, n + r) = -v;   // −Bᵀ block
    }
  lcp.q.assign(n + m, 0.0);
  for (std::size_t i = 0; i < n; ++i) lcp.q[i] = p[i];
  for (std::size_t i = 0; i < m; ++i) lcp.q[n + i] = -b[i];
  return lcp;
}

}  // namespace mch::lcp
