#!/usr/bin/env bash
# Repo verification driver: tier-1 build + ctest, plus an AddressSanitizer
# job over the solver/legalizer suites (the workspace arena hands slot
# references to parallel workers — ASan is what would catch a stale one).
#
#   tools/verify.sh            # full: Release build + ctest + ASan job
#   tools/verify.sh --fast     # skip the ASan job
#   tools/verify.sh --bigmem   # additionally run the 1M-cell memory smoke
#
# Build trees: ./build (default config) and ./build-asan (MCH_ENABLE_ASAN,
# RelWithDebInfo). Both are incremental across runs.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
BIGMEM=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --bigmem) BIGMEM=1 ;;
    *) echo "usage: tools/verify.sh [--fast] [--bigmem]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build (Release default) =="
cmake -B build -S . >/dev/null
cmake --build build -j4

echo "== tier-1: ctest =="
(cd build && ctest -j2 --output-on-failure)

echo "== recovery: fault-injected legal/lcp suites =="
# The .recovery ctest variant runs with MCH_FORCE_SOLVER_FAILURE=1, so
# every legalization solve exercises the escalation ladder and must still
# meet its contracts; the plain legality/recovery regression suites ride
# along for the checker fixes.
(cd build && ctest -j2 --output-on-failure \
  -R '\.recovery$|RecoveryLadderTest|DegenerateDesignTest|LegalityTest')

echo "== session: resident-service suites =="
# The .session ctest variant runs the eval/integration suites with
# MCH_SESSION=1, serving every MMSIM legalization through a resident
# service::LegalizationSession; the SessionTest suite covers the
# incremental ECO path and the match-mode bitwise contract directly.
(cd build && ctest -j2 --output-on-failure \
  -R '\.session$|SessionTest')

if [[ "$FAST" == 0 ]]; then
  echo "== asan: build solver/legalizer suites =="
  cmake -B build-asan -S . -DMCH_ENABLE_ASAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  ASAN_TARGETS=(
    lcp_mmsim_test lcp_mmsim_fused_test lcp_solver_test lcp_psor_test
    legal_mmsim_legalizer_test legal_partition_test linalg_csr_test
  )
  for t in "${ASAN_TARGETS[@]}"; do
    cmake --build build-asan -j4 --target "$t"
  done

  echo "== asan: run (serial and 4-thread pool) =="
  for t in "${ASAN_TARGETS[@]}"; do
    bin="$(find build-asan/tests -name "$t" -type f | head -1)"
    "$bin" --gtest_brief=1
    MCH_THREADS=4 "$bin" --gtest_brief=1
  done
fi

if [[ "$BIGMEM" == 1 ]]; then
  echo "== bigmem: 1M-cell legalization under an address-space cap =="
  # Opt-in (several minutes of solve time): legalize the 1M-cell baseline
  # scale design end to end inside a ulimit -v cap. The streamed spine
  # peaks near 0.5 GB at 1M cells and the pre-refactor layout needed ~1.1 GB
  # (see results/scaling_memory.txt), so a 1 GiB address-space cap gives
  # the current layout 2x headroom while a regression that reintroduces a
  # staging copy or an extract-everything high-water mark aborts on
  # allocation instead of silently fitting. Requires the Release bench
  # build from the tier-1 step above.
  cmake --build build -j4 --target scaling_memory
  (
    ulimit -v $((1024 * 1024))  # 1 GiB of address space
    build/bench/scaling_memory --point baseline 1000000 streamed
  )
fi

echo "verify: OK"
