// Options plumbing and cross-module consistency checks for the experiment
// runner: custom solver options must reach the MMSIM, and the metrics the
// runner reports must agree with direct computation.
#include <gtest/gtest.h>

#include "eval/suite_runner.h"

namespace mch::eval {
namespace {

db::Design small_design(std::uint64_t seed) {
  gen::GeneratorOptions options;
  options.seed = seed;
  return gen::generate_random_design(400, 50, 0.6, options);
}

TEST(SuiteRunnerOptionsTest, CustomLambdaReachesTheModel) {
  // A tiny λ leaves visible subcell mismatch, which the Tetris allocation
  // then fixes; the run must still be legal but typically needs more
  // allocation repairs than the λ=1000 default.
  db::Design design = small_design(1);
  legal::FlowOptions loose;
  loose.solver.model.lambda = 1.0;
  const RunResult loose_run = run_legalizer(design, Legalizer::kMmsim, loose);
  EXPECT_TRUE(loose_run.legal) << loose_run.legality_summary;

  legal::FlowOptions tight;
  tight.solver.model.lambda = 1000.0;
  const RunResult tight_run = run_legalizer(design, Legalizer::kMmsim, tight);
  EXPECT_TRUE(tight_run.legal);
  EXPECT_GE(loose_run.illegal_after_solver, tight_run.illegal_after_solver);
}

TEST(SuiteRunnerOptionsTest, CustomToleranceChangesIterations) {
  db::Design design = small_design(2);
  legal::FlowOptions coarse;
  coarse.solver.mmsim.tolerance = 1e-2;
  const RunResult coarse_run =
      run_legalizer(design, Legalizer::kMmsim, coarse);
  legal::FlowOptions fine;
  fine.solver.mmsim.tolerance = 1e-8;
  const RunResult fine_run = run_legalizer(design, Legalizer::kMmsim, fine);
  EXPECT_LT(coarse_run.solver_iterations, fine_run.solver_iterations);
  EXPECT_TRUE(coarse_run.legal);
  EXPECT_TRUE(fine_run.legal);
}

TEST(SuiteRunnerOptionsTest, ReportedMetricsMatchDirectComputation) {
  db::Design design = small_design(3);
  const RunResult result = run_legalizer(design, Legalizer::kMmsim);
  // The design still holds the final placement; recompute directly.
  EXPECT_DOUBLE_EQ(result.disp.total_sites,
                   displacement(design).total_sites);
  EXPECT_DOUBLE_EQ(result.hpwl, hpwl(design));
  EXPECT_DOUBLE_EQ(result.gp_hpwl, gp_hpwl(design));
  EXPECT_NEAR(result.delta_hpwl,
              (result.hpwl - result.gp_hpwl) / result.gp_hpwl, 1e-12);
}

TEST(SuiteRunnerOptionsTest, MacroDesignsRunThroughMmsimAndLocal) {
  gen::GeneratorOptions options;
  options.seed = 4;
  options.fixed_macros = 4;
  db::Design design = gen::generate_random_design(400, 40, 0.5, options);
  design.name = "macros";
  for (const auto which :
       {Legalizer::kMmsim, Legalizer::kTetris, Legalizer::kLocalBase}) {
    const RunResult result = run_legalizer(design, which);
    EXPECT_TRUE(result.legal)
        << to_string(which) << ": " << result.legality_summary;
  }
}

}  // namespace
}  // namespace mch::eval
