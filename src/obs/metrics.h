// Process-wide metrics registry: counters, gauges, log2-bucket histograms.
//
// All instruments are registered once (by name, created on first use) and
// live for the process; updates are relaxed atomics, so incrementing a
// counter from a pool worker costs one atomic add and never takes a lock.
// Hot paths should hold a reference instead of re-looking up by name:
//
//   static obs::Counter& hits = obs::counter("solve.warm_start_hits");
//   hits.add(1);
//
// Counter families use a label convention baked into the name:
// "recovery.rung{rung=psor}". metrics_json() renders one top-level entry
// per full name; tools/trace_summary.py groups families by the base name.
//
// Histograms bucket by log2 of the value scaled to integer "ticks"
// (value * 1e9, so seconds become nanoseconds): bucket = bit_width(ticks),
// 64 buckets total. Percentiles come from a cumulative walk with linear
// interpolation inside the winning bucket — coarse (factor-of-two
// resolution) but allocation-free and mergeable.
//
// metrics_enabled() gates the export side only; instruments always count
// (the cost is too small to gate) so in-process consumers (tests, stats
// structs) can read them regardless.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mch::obs {

/// Whether metrics artifacts should be written. Resolved from MCH_METRICS
/// at process start (unset/"0" = off), flippable at runtime.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Records one observation. Values are scaled by 1e9 before bucketing,
  /// so seconds land in nanosecond-resolution log2 buckets; zero and
  /// negative values count into bucket 0.
  void observe(double value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Approximate quantile in the original value units (q in [0,1]);
  /// 0 when empty. Linear interpolation inside the selected bucket.
  double percentile(double q) const;

  std::uint64_t bucket_count(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Look up (creating on first use) the instrument named `name`. The
/// returned reference is stable for the process lifetime. Names should be
/// lowercase dotted paths, with optional {key=value} labels:
/// "session.eco.latency_seconds", "recovery.rung{rung=lemke}".
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Convenience for counter families: counter("base{key=value}").
Counter& counter(std::string_view base, std::string_view label_key,
                 std::string_view label_value);
Gauge& gauge(std::string_view base, std::string_view label_key,
             std::string_view label_value);

/// Free-form provenance attached to the JSON snapshot ("build", "simd",
/// "threads", "design", ...). Later calls with the same key overwrite.
void set_metrics_attribute(std::string_view key, std::string_view value);

/// The metrics JSON document: schema/attributes plus every registered
/// counter, gauge, and histogram (count/sum/mean/p50/p95/p99 and the
/// non-empty buckets). Layout mirrors bench::JsonSnapshot.
std::string metrics_json();

/// Writes metrics_json() to `path`; false when the file cannot be opened.
bool write_metrics(const std::string& path);

/// Resets every registered instrument to zero (registrations and
/// attributes survive). For tests and multi-phase benches.
void reset_metrics();

}  // namespace mch::obs
