// Placement database: chip geometry, mixed-height standard cells, nets.
//
// Geometry model (matches the paper's benchmarks, which are derived from the
// ISPD-2015 contest set):
//   * The placeable area is a grid of `num_rows` rows of uniform height
//     `row_height`, each divided into `num_sites` sites of uniform width
//     `site_width`. Origin at the bottom-left corner (0, 0).
//   * Power rails run along row boundaries and alternate VSS/VDD starting
//     with `bottom_rail` at y = 0. A cell occupying rows [r, r+h) has its
//     bottom edge on rail index r.
//   * Odd-row-height cells can be flipped vertically, so they may sit on any
//     row. Even-row-height cells have a designed bottom-rail type and must
//     sit on a row whose bottom rail matches (paper Fig. 1).
//
// Cells carry both their global-placement position (gp_x, gp_y) — the
// legalization target — and their current position (x, y) that legalizers
// mutate. Displacement metrics compare the two.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/index.h"

namespace mch::db {

/// Power rail type along a row boundary.
enum class RailType : std::uint8_t { kVss = 0, kVdd = 1 };

/// The opposite rail type.
constexpr RailType flip(RailType t) {
  return t == RailType::kVss ? RailType::kVdd : RailType::kVss;
}

const char* to_string(RailType t);

/// Chip geometry: uniform rows and sites.
struct Chip {
  std::size_t num_rows = 0;
  std::size_t num_sites = 0;     ///< sites per row
  double site_width = 1.0;
  double row_height = 1.0;
  RailType bottom_rail = RailType::kVss;  ///< rail at y = 0

  double width() const { return static_cast<double>(num_sites) * site_width; }
  double height() const {
    return static_cast<double>(num_rows) * row_height;
  }
  /// y coordinate of the bottom edge of row r.
  double row_y(std::size_t row) const {
    return static_cast<double>(row) * row_height;
  }
  /// Rail type at the bottom boundary of row r.
  RailType rail_at(std::size_t row) const {
    return (row % 2 == 0) ? bottom_rail : flip(bottom_rail);
  }
};

/// Largest representable Cell::height_rows (chips top out around 10⁴ rows,
/// so 16 bits leaves an order-of-magnitude margin).
inline constexpr std::size_t kMaxHeightRows =
    std::numeric_limits<std::uint16_t>::max();

/// Checked narrowing for Cell::height_rows.
inline std::uint16_t to_height_rows(std::size_t rows) {
  MCH_CHECK_MSG(rows <= kMaxHeightRows,
                "cell height " << rows << " rows exceeds the 16-bit limit");
  return static_cast<std::uint16_t>(rows);
}

/// A standard cell. Width in distance units; height in integer row counts.
///
/// The record is packed to 56 bytes (from the naive 64): the five doubles
/// lead so the model/row-assignment kernels stream aligned coordinates, the
/// id narrows to mch::index_t, and height_rows to 16 bits (see
/// kMaxHeightRows). At 10M cells the cell array alone saves 80 MB, and the
/// hot fields of one cell fit a single cache line.
struct Cell {
  double width = 0.0;
  double gp_x = 0.0;  ///< global-placement x (bottom-left)
  double gp_y = 0.0;  ///< global-placement y (bottom-left)
  double x = 0.0;     ///< current (legalized) x
  double y = 0.0;     ///< current (legalized) y

  index_t id = 0;
  std::uint16_t height_rows = 1;  ///< 1 = single, 2 = double, ...
  /// Designed bottom-rail type; only constrains placement when height_rows
  /// is even (odd-height cells can flip to match any row).
  RailType bottom_rail = RailType::kVss;
  /// Orientation: true = vertically flipped (Bookshelf "FS"). Odd-height
  /// cells flip to align their power pins with the row's rail (paper
  /// Fig. 1); legal::assign_orientations derives this after legalization.
  /// Even-height cells never flip — flipping cannot fix their rails.
  bool flipped = false;
  /// Fixed cells (macros, pre-placed blocks, Bookshelf terminals) never
  /// move: legalizers treat them as obstacles. Their (x, y) must be
  /// row/site aligned and legal on entry; the rail rule does not apply to
  /// them (macros bring their own power structure).
  bool fixed = false;
  /// Tombstone set by Design::erase_cell. Erased cells keep their slot in
  /// Design::cells() — so every other cell id stays stable across ECO
  /// streams — but the legalizers, the legality checker, and the metrics
  /// all skip them as if they were deleted.
  bool erased = false;

  bool is_multi_row() const { return height_rows > 1; }
  bool is_even_height() const { return height_rows % 2 == 0; }

  /// True if the cell may be placed with its bottom edge on row `row` of the
  /// given chip, considering only the power-rail rule (not overlap/bounds).
  bool rail_compatible(const Chip& chip, std::size_t row) const {
    if (!is_even_height()) return true;  // vertical flip fixes odd heights
    return chip.rail_at(row) == bottom_rail;
  }
};

static_assert(sizeof(Cell) <= 56, "Cell record grew past its 56-byte budget");

/// A pin: an offset into a cell. Packed to 12 bytes (index_t cell id,
/// float offsets): the netlist is among the largest arrays of a
/// multi-million-cell design yet is dead weight during legalization, and
/// pin offsets are sub-micron quantities a float carries exactly as far as
/// HPWL needs.
struct Pin {
  index_t cell = 0;  ///< cell index in Design::cells
  float dx = 0.0f;   ///< offset from the cell's bottom-left corner
  float dy = 0.0f;
};

static_assert(sizeof(Pin) <= 12, "Pin record grew past its 12-byte budget");

/// A net is a set of pins; wirelength is half-perimeter (HPWL). This is
/// the *builder* type handed to Design::add_net (and produced by the
/// loaders); Design stores nets pooled in two flat arrays, not as a
/// vector of these.
struct Net {
  std::vector<Pin> pins;
};

/// Non-owning view of one net's pins inside the pooled store.
class PinSpan {
 public:
  PinSpan() = default;
  PinSpan(const Pin* data, std::size_t size) : data_(data), size_(size) {}
  const Pin* begin() const { return data_; }
  const Pin* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Pin& operator[](std::size_t i) const { return data_[i]; }

 private:
  const Pin* data_ = nullptr;
  std::size_t size_ = 0;
};

/// One net as viewed through the pool. Mirrors the builder Net's `.pins`
/// member so `for (const auto& net : design.nets()) ... net.pins[i]` reads
/// identically against either representation.
struct NetView {
  PinSpan pins;
};

/// Iterable, indexable view over the pooled netlist. Values are NetView
/// temporaries — bind them by value or `const auto&`, never `const Net&`.
class NetRange {
 public:
  NetRange(const std::vector<index_t>& first, const std::vector<Pin>& pins)
      : first_(&first), pins_(&pins) {}

  std::size_t size() const {
    return first_->empty() ? 0 : first_->size() - 1;
  }
  NetView operator[](std::size_t n) const {
    const std::size_t begin = (*first_)[n];
    const std::size_t end = (*first_)[n + 1];
    return NetView{PinSpan(pins_->data() + begin, end - begin)};
  }

  class iterator {
   public:
    iterator(const NetRange* range, std::size_t n) : range_(range), n_(n) {}
    NetView operator*() const { return (*range_)[n_]; }
    iterator& operator++() { ++n_; return *this; }
    bool operator!=(const iterator& other) const { return n_ != other.n_; }

   private:
    const NetRange* range_;
    std::size_t n_;
  };
  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, size()); }

 private:
  const std::vector<index_t>* first_;
  const std::vector<Pin>* pins_;
};

/// A complete design: chip, cells, and netlist.
class Design {
 public:
  Design() = default;
  explicit Design(const Chip& chip) : chip_(chip) {}

  const Chip& chip() const { return chip_; }
  Chip& chip() { return chip_; }

  std::string name;

  const std::vector<Cell>& cells() const { return cells_; }
  std::vector<Cell>& cells() { return cells_; }
  /// View over the pooled netlist (flat pin array + per-net offsets).
  NetRange nets() const { return NetRange(net_first_, net_pins_); }

  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const {
    return net_first_.empty() ? 0 : net_first_.size() - 1;
  }
  std::size_t num_pins() const { return net_pins_.size(); }

  /// Appends a cell, assigning its id. Returns the index.
  std::size_t add_cell(Cell cell);

  /// Appends a net. Pin cell indices must be valid.
  std::size_t add_net(Net net);

  // ECO mutation helpers. An engineering change order arrives as a batch
  // of cell moves, inserts, and deletes against an already-placed design;
  // these keep every existing cell id stable so resident state keyed by id
  // (models, partitions, solver workspaces) survives the batch.

  /// Retargets a movable cell's global placement. The target is clamped so
  /// the cell's outline stays inside the chip on both axes — ECO tools
  /// routinely nudge cells past the die edge, and the legalizer's model
  /// only guards the left/bottom boundary.
  void move_cell(std::size_t id, double gp_x, double gp_y);

  /// Appends a new cell (id = index, like add_cell) with its current
  /// position initialized to its (clamped) GP position. Fixed cells are
  /// allowed — an inserted macro becomes a new obstacle. Returns the id.
  std::size_t insert_cell(Cell cell);

  /// Tombstones a cell: marks it erased and strips its pins from every
  /// net. The slot stays in cells() so other ids do not shift; all
  /// consumers skip erased cells.
  void erase_cell(std::size_t id);

  /// Number of erased (tombstoned) cells.
  std::size_t num_erased_cells() const;

  /// Sum of cell areas (width × height_rows × row_height).
  double total_cell_area() const;

  /// total_cell_area / chip area.
  double density() const;

  /// Row index whose bottom edge is nearest to y, clamped so a cell of the
  /// given height fits vertically on the chip.
  std::size_t nearest_row(double y, std::size_t height_rows = 1) const;

  /// Nearest row to y at which a cell may legally sit, honoring the
  /// power-rail rule and the vertical fit; for even-height cells this is the
  /// nearest rail-matching row (paper §3). Requires a compatible row to
  /// exist (guaranteed when num_rows > height_rows).
  std::size_t nearest_legal_row(const Cell& cell) const;

  /// x snapped to the nearest site boundary, clamped so the given width
  /// stays inside the chip.
  double snap_x_to_site(double x, double width) const;

  /// Number of cells with the given row height (movable cells only).
  std::size_t count_cells_with_height(std::size_t height_rows) const;

  /// Number of fixed cells (obstacles).
  std::size_t num_fixed_cells() const;

  /// Copies every cell's current position back to its GP position. Used by
  /// flows that re-legalize from a previous result.
  void commit_positions_as_gp();

  /// Resets every cell's current position to its GP position.
  void reset_positions_to_gp();

 private:
  Chip chip_;
  std::vector<Cell> cells_;
  // Pooled netlist: net n's pins are net_pins_[net_first_[n] ..
  // net_first_[n+1]). Empty vectors when no net was added; net_first_
  // holds nets+1 offsets otherwise. At 1M cells the pool is ~3x smaller
  // than a vector<Net> of per-net heap vectors.
  std::vector<index_t> net_first_;
  std::vector<Pin> net_pins_;
};

}  // namespace mch::db
