// Tridiagonal matrices and the Thomas solve.
//
// The MMSIM splitting approximates the Schur complement B·K⁻¹·Bᵀ by its
// tridiagonal part D, so the (2,2) block of every per-iteration linear solve
// is (D/θ* + I) — a tridiagonal system solved in O(m) by the Thomas
// algorithm. The algorithm is stable here because the systems we feed it are
// symmetric positive definite (D is the tridiagonal part of an SPD matrix
// shifted by +I).
#pragma once

#include <cstddef>

#include "linalg/vector_ops.h"

namespace mch::linalg {

/// Symmetric-storage-free tridiagonal matrix with independent bands.
class Tridiagonal {
 public:
  /// Zero matrix of size n.
  explicit Tridiagonal(std::size_t n = 0)
      : diag_(n, 0.0),
        lower_(n > 0 ? n - 1 : 0, 0.0),
        upper_(n > 0 ? n - 1 : 0, 0.0) {}

  std::size_t size() const { return diag_.size(); }

  double& diag(std::size_t i) { return diag_[i]; }
  double diag(std::size_t i) const { return diag_[i]; }
  /// Sub-diagonal entry (i+1, i), 0 <= i < n-1.
  double& lower(std::size_t i) { return lower_[i]; }
  double lower(std::size_t i) const { return lower_[i]; }
  /// Super-diagonal entry (i, i+1), 0 <= i < n-1.
  double& upper(std::size_t i) { return upper_[i]; }
  double upper(std::size_t i) const { return upper_[i]; }

  /// Whole bands, for kernels that stream the matrix (lcp/mmsim_kernels.h)
  /// and for building reduced-precision mirrors.
  const Vector& diag_data() const { return diag_; }
  const Vector& lower_data() const { return lower_; }
  const Vector& upper_data() const { return upper_; }

  /// Returns alpha * this + beta * I as a new matrix.
  Tridiagonal scaled_plus_identity(double alpha, double beta) const;

  /// y = T x.
  void multiply(const Vector& x, Vector& y) const;

  /// Solves T x = rhs by the Thomas algorithm. Requires T nonsingular
  /// without pivoting (guaranteed for the SPD-shifted systems used here).
  /// Returns false if a pivot underflows.
  bool solve(const Vector& rhs, Vector& x) const;

  /// solve() with caller-provided forward-sweep scratch (modified super-
  /// diagonal and rhs), so iterative callers pay no per-solve allocation
  /// once the buffers have grown to size. Arithmetic — and therefore the
  /// result — is bitwise identical to solve().
  bool solve_with(const Vector& rhs, Vector& x, Vector& scratch_c,
                  Vector& scratch_d) const;

 private:
  Vector diag_;
  Vector lower_;
  Vector upper_;
};

/// Precomputed Thomas factorization for solving against one tridiagonal
/// matrix many times (MMSIM solves (D/θ* + I) x = rhs every iteration with
/// a constant matrix). factor() runs the pivot recurrence once; solve()
/// then runs the forward sweep as
///
///     d'[i] = rhs[i]·(1/pivot[i]) − (lower[i−1]/pivot[i])·d'[i−1]
///
/// with both coefficients precomputed, so the serial dependency chain per
/// row is one multiply-subtract instead of a multiply-subtract-divide —
/// the division latency leaves the critical path. This is an algebraic
/// rearrangement of the classic recurrence: same factorization, different
/// rounding, so results differ from Tridiagonal::solve() in the last ulps
/// (callers that advertise bitwise contracts must use one or the other
/// consistently; MMSIM uses the factorization in both its reference and
/// fused paths).
class TridiagonalFactorization {
 public:
  TridiagonalFactorization() = default;

  /// Factors `t`. Returns false (leaving the factorization invalid) if a
  /// pivot underflows; `t` itself is not retained.
  bool factor(const Tridiagonal& t);

  bool valid() const { return valid_; }
  std::size_t size() const { return inv_pivot_.size(); }

  /// Solves T x = rhs using the precomputed coefficients. `scratch` holds
  /// the forward-sweep values; no allocation once it has grown to size.
  void solve(const Vector& rhs, Vector& x, Vector& scratch) const;

  /// Factor arrays, exposed so the mixed-precision iterate can run the same
  /// recurrence on float32 copies (lcp/mmsim.cpp).
  const Vector& c_prime() const { return c_prime_; }
  const Vector& inv_pivot() const { return inv_pivot_; }
  const Vector& g() const { return g_; }

 private:
  Vector c_prime_;    ///< upper[i]/pivot[i], size n−1
  Vector inv_pivot_;  ///< 1/pivot[i], size n
  Vector g_;          ///< lower[i−1]/pivot[i] (g_[0] = 0), size n
  bool valid_ = false;
};

}  // namespace mch::linalg
