// Block-diagonal SPD matrices with contiguous blocks.
//
// The Hessian K = Q + λEᵀE of the penalized legalization QP couples only
// the subcell variables of one cell, so K is block diagonal with one block
// per cell (a 1x1 block for single-row-height cells). This class stores the
// blocks and their explicit inverses, giving O(n) apply/solve and O(1)
// access to individual entries of K⁻¹ — the access pattern needed to form
// the tridiagonal Schur-complement approximation D.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace mch::linalg {

class BlockDiagMatrix {
 public:
  BlockDiagMatrix() = default;

  /// Appends an SPD block at the next free offset. Throws CheckError if the
  /// block is not invertible. Returns the block index.
  std::size_t add_block(const DenseMatrix& block);

  /// Appends a copy of this matrix's block b — block and stored inverse —
  /// to dst, skipping the re-inversion add_block would do. Used when
  /// extracting sub-problems that reuse existing blocks verbatim. Returns
  /// dst's new block index.
  std::size_t append_block_to(BlockDiagMatrix& dst, std::size_t b) const;

  /// Total matrix dimension (sum of block sizes).
  std::size_t size() const { return size_; }
  std::size_t block_count() const { return offsets_.size(); }

  /// Starting variable index of a block.
  std::size_t block_offset(std::size_t b) const { return offsets_[b]; }
  /// Dimension of a block.
  std::size_t block_size(std::size_t b) const { return blocks_[b].rows(); }

  const DenseMatrix& block(std::size_t b) const { return blocks_[b]; }
  const DenseMatrix& block_inverse(std::size_t b) const {
    return inverses_[b];
  }

  /// Block index owning variable i (O(log #blocks)).
  std::size_t block_of(std::size_t i) const;

  /// Entry K(i, j); zero when i and j belong to different blocks.
  double entry(std::size_t i, std::size_t j) const;

  /// Entry K⁻¹(i, j); zero when i and j belong to different blocks.
  double inverse_entry(std::size_t i, std::size_t j) const;

  /// y = K x.
  void multiply(const Vector& x, Vector& y) const;

  /// y += alpha * K x.
  void multiply_add(double alpha, const Vector& x, Vector& y) const;

  /// Solves K y = x exactly via the stored block inverses.
  void solve(const Vector& x, Vector& y) const;

  /// Solves (alpha*K + beta*I) y = x. Each block system is solved densely;
  /// requires the shifted blocks to be nonsingular (true for alpha,beta > 0
  /// since K is SPD).
  void solve_shifted(double alpha, double beta, const Vector& x,
                     Vector& y) const;

  /// Flat per-variable view of the dominant 1×1 blocks: K(i,i) where
  /// variable i is a scalar block, 0.0 at positions owned by larger blocks.
  /// This is the exact array multiply_add sweeps, exposed so fused iteration
  /// kernels (lcp/mmsim.cpp) can replicate its arithmetic in place.
  const std::vector<double>& scalar_values() const { return scalar_values_; }
  /// Flat per-variable view of 1/K(i,i), zeros at non-scalar positions.
  const std::vector<double>& scalar_inverses() const {
    return scalar_inverses_;
  }
  /// Block indices of the non-1×1 blocks, in ascending offset order.
  const std::vector<std::size_t>& general_block_indices() const {
    return general_blocks_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::size_t> offsets_;
  std::vector<DenseMatrix> blocks_;
  std::vector<DenseMatrix> inverses_;

  // Fast path for the dominant 1×1 blocks (single-row-height cells are
  // ~90% of a design): their values and inverses live in flat arrays so
  // multiply/solve touch them in one vectorizable sweep. `scalar_mask_[b]`
  // marks 1×1 blocks; scalar_* are indexed by variable, with zeros at
  // positions owned by larger blocks.
  std::vector<bool> scalar_mask_;
  std::vector<double> scalar_values_;    ///< K(i,i) for scalar blocks, else 0
  std::vector<double> scalar_inverses_;  ///< 1/K(i,i) for scalar blocks, else 0
  std::vector<std::size_t> general_blocks_;  ///< indices of non-1×1 blocks
};

}  // namespace mch::linalg
