#include "legal/eviction.h"

#include <gtest/gtest.h>

#include "db/legality.h"

namespace mch::legal {
namespace {

db::Chip test_chip() {
  db::Chip chip;
  chip.num_rows = 4;
  chip.num_sites = 30;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  return chip;
}

db::Design design_with_cells(std::size_t singles, std::size_t doubles) {
  db::Design design(test_chip());
  for (std::size_t i = 0; i < singles; ++i) {
    db::Cell cell;
    cell.width = 5;
    design.add_cell(cell);
  }
  for (std::size_t i = 0; i < doubles; ++i) {
    db::Cell cell;
    cell.width = 5;
    cell.height_rows = 2;
    cell.bottom_rail = db::RailType::kVss;
    design.add_cell(cell);
  }
  return design;
}

TEST(OwnedOccupancyTest, PlaceWritesPositionAndBlocks) {
  db::Design design = design_with_cells(1, 0);
  OwnedOccupancy occ(design.chip());
  occ.place(design, 0, 2, 10);
  EXPECT_DOUBLE_EQ(design.cells()[0].x, 10.0);
  EXPECT_DOUBLE_EQ(design.cells()[0].y, 20.0);
  EXPECT_FALSE(occ.is_free(2, 1, 10, 5));
  EXPECT_TRUE(occ.is_free(2, 1, 15, 5));
}

TEST(OwnedOccupancyTest, RemoveFrees) {
  db::Design design = design_with_cells(1, 0);
  OwnedOccupancy occ(design.chip());
  occ.place(design, 0, 1, 8);
  occ.remove(design, 0);
  EXPECT_TRUE(occ.is_free(1, 1, 8, 5));
  EXPECT_EQ(occ.max_end(1), 0);
}

TEST(OwnedOccupancyTest, BlockersIdentifiesOverlappers) {
  db::Design design = design_with_cells(3, 0);
  OwnedOccupancy occ(design.chip());
  occ.place(design, 0, 0, 0);    // [0, 5)
  occ.place(design, 1, 0, 10);   // [10, 15)
  occ.place(design, 2, 1, 3);    // row 1
  const auto ids = occ.blockers(0, 1, 4, 8);  // span [4, 12) row 0
  EXPECT_EQ(ids, (std::vector<std::size_t>{0, 1}));
  const auto both_rows = occ.blockers(0, 2, 0, 30);
  EXPECT_EQ(both_rows, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(OwnedOccupancyTest, MaxEndTracksRightmost) {
  db::Design design = design_with_cells(2, 0);
  OwnedOccupancy occ(design.chip());
  occ.place(design, 0, 0, 3);
  occ.place(design, 1, 0, 20);
  EXPECT_EQ(occ.max_end(0), 25);
  occ.remove(design, 1);
  EXPECT_EQ(occ.max_end(0), 8);
}

TEST(OwnedOccupancyTest, PlaceWithoutEvictionWhenSpaceExists) {
  db::Design design = design_with_cells(1, 0);
  OwnedOccupancy occ(design.chip());
  design.cells()[0].gp_x = 12.0;
  design.cells()[0].gp_y = 0.0;
  EXPECT_TRUE(occ.place_with_eviction(design, 0, 12.0, 0.0));
  EXPECT_DOUBLE_EQ(design.cells()[0].x, 12.0);
}

TEST(OwnedOccupancyTest, EvictionFreesSpanForDoubleHeight) {
  // Each row is packed with width-2 singles except one 6-site gap, and the
  // gaps are staggered so no two adjacent rows share a free span: a
  // double-height cell cannot be placed anywhere without eviction.
  db::Design design(test_chip());
  std::vector<std::pair<std::size_t, std::size_t>> placements;  // id, row
  for (std::size_t r = 0; r < 4; ++r) {
    const SiteIndex gap_start = (r % 2 == 0) ? 24 : 0;
    for (SiteIndex s = 0; s + 2 <= 30; s += 2) {
      if (s >= gap_start && s < gap_start + 6) continue;
      db::Cell cell;
      cell.width = 2;
      cell.gp_x = static_cast<double>(s);
      cell.gp_y = static_cast<double>(10 * r);
      placements.emplace_back(design.add_cell(cell), r);
    }
  }
  db::Cell tall;
  tall.width = 5;
  tall.height_rows = 2;
  tall.bottom_rail = db::RailType::kVss;  // base row must be even: 0 or 2
  tall.gp_x = 12.0;
  tall.gp_y = 0.0;
  const std::size_t tall_id = design.add_cell(tall);

  OwnedOccupancy occ(design.chip());
  for (const auto& [id, row] : placements)
    occ.place(design, id, row,
              static_cast<SiteIndex>(design.cells()[id].gp_x));

  // Sanity: no direct position exists.
  ASSERT_FALSE(occ.find_nearest(design.cells()[tall_id], 12.0, 0.0).found);

  ASSERT_TRUE(occ.place_with_eviction(design, tall_id, 12.0, 0.0));
  const db::LegalityReport report = db::check_legality(design);
  EXPECT_TRUE(report.legal()) << report.summary();
  // The tall cell sits on a rail-correct even row at the target x.
  const auto row = static_cast<std::size_t>(design.cells()[tall_id].y / 10.0);
  EXPECT_EQ(row % 2, 0u);
  EXPECT_DOUBLE_EQ(design.cells()[tall_id].x, 12.0);
}

TEST(OwnedOccupancyTest, EvictionRefusesMultiRowVictims) {
  // The whole chip is covered by double-height cells: eviction (which only
  // relocates singles) must give up rather than cascade.
  db::Design design(test_chip());
  std::vector<std::size_t> talls;
  for (std::size_t r = 0; r < 4; r += 2)
    for (std::size_t s = 0; s < 6; ++s) {
      db::Cell cell;
      cell.width = 5;
      cell.height_rows = 2;
      cell.bottom_rail = db::RailType::kVss;
      talls.push_back(design.add_cell(cell));
    }
  OwnedOccupancy occ(design.chip());
  std::size_t k = 0;
  for (std::size_t r = 0; r < 4; r += 2)
    for (std::size_t s = 0; s < 6; ++s, ++k)
      occ.place(design, talls[k], r, static_cast<SiteIndex>(5 * s));

  db::Cell extra;
  extra.width = 5;
  extra.height_rows = 2;
  extra.bottom_rail = db::RailType::kVss;
  const std::size_t id = design.add_cell(extra);
  EXPECT_FALSE(occ.place_with_eviction(design, id, 12.0, 0.0));
}

}  // namespace
}  // namespace mch::legal
