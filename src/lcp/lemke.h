// Lemke's complementary pivoting method for dense LCPs.
//
// Exact (up to roundoff) reference solver used in tests to cross-validate
// the MMSIM on small instances. Handles the positive-semidefinite saddle
// matrices arising from the legalization KKT system: for feasible convex
// QPs, Lemke terminates at a solution rather than on a secondary ray.
#pragma once

#include <cstddef>

#include "lcp/lcp.h"

namespace mch::lcp {

enum class LemkeStatus {
  kSolved,          ///< complementary solution found
  kRayTermination,  ///< unbounded ray — no solution found on this path
  kMaxIterations,   ///< pivot limit exceeded (cycling safeguard)
};

struct LemkeResult {
  LemkeStatus status = LemkeStatus::kMaxIterations;
  Vector z;
  std::size_t pivots = 0;
};

/// Solves LCP(q, A) by Lemke's method with the standard covering vector of
/// ones. Dense O(n³)-ish; intended for n up to a few hundred (tests only).
LemkeResult solve_lemke(const DenseLcp& problem,
                        std::size_t max_pivots = 10000);

}  // namespace mch::lcp
