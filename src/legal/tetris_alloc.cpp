#include "legal/tetris_alloc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "legal/eviction.h"
#include "util/check.h"
#include "util/log.h"

namespace mch::legal {

TetrisStats tetris_allocate(db::Design& design) {
  TetrisStats stats;
  const db::Chip& chip = design.chip();
  OwnedOccupancy occupancy(chip);

  // Step 1: snap to the nearest site (not clamped right — step 2 flags
  // out-of-boundary cells instead, exactly as in the paper).
  struct Snapped {
    std::size_t cell;
    SiteIndex site;
    std::size_t base_row;
  };
  // Obstacles are registered first; they are never snapped or relocated.
  for (std::size_t c = 0; c < design.num_cells(); ++c)
    if (design.cells()[c].fixed && !design.cells()[c].erased)
      occupancy.place_fixed(design, c);

  std::vector<Snapped> order;
  order.reserve(design.num_cells());
  for (std::size_t c = 0; c < design.num_cells(); ++c) {
    db::Cell& cell = design.cells()[c];
    if (cell.fixed || cell.erased) continue;
    const auto site = static_cast<SiteIndex>(
        std::llround(cell.x / chip.site_width));
    const auto base_row = static_cast<std::size_t>(
        std::llround(cell.y / chip.row_height));
    MCH_CHECK_MSG(base_row + cell.height_rows <= chip.num_rows,
                  "cell " << c << " not row-aligned before allocation");
    order.push_back({c, std::max<SiteIndex>(site, 0), base_row});
  }

  // Step 2: left-to-right legality scan.
  std::sort(order.begin(), order.end(), [](const Snapped& a, const Snapped& b) {
    if (a.site != b.site) return a.site < b.site;
    return a.cell < b.cell;
  });

  std::vector<Snapped> illegal;
  for (const Snapped& s : order) {
    db::Cell& cell = design.cells()[s.cell];
    const SiteIndex w = occupancy.width_sites(cell);
    if (occupancy.is_free(s.base_row, cell.height_rows, s.site, w)) {
      occupancy.place(design, s.cell, s.base_row, s.site);
    } else {
      illegal.push_back(s);
    }
  }
  stats.illegal_cells = illegal.size();

  // Step 3: nearest free rail-correct position for each illegal cell, with
  // bounded eviction as the last resort on near-capacity chips.
  for (const Snapped& s : illegal) {
    db::Cell& cell = design.cells()[s.cell];
    const double target_x = static_cast<double>(s.site) * chip.site_width;
    const double target_y = chip.row_y(s.base_row);
    const double before_x = target_x;
    const double before_y = target_y;
    if (!occupancy.place_with_eviction(design, s.cell, target_x, target_y)) {
      ++stats.unplaced_cells;
      MCH_LOG(kWarn) << "tetris allocation: no free position for cell "
                     << cell.id;
      continue;
    }
    stats.relocation_cost_sites +=
        (std::abs(cell.x - before_x) + std::abs(cell.y - before_y)) /
        chip.site_width;
  }
  return stats;
}

}  // namespace mch::legal
