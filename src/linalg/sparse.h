// Sparse-matrix assembly: the COO triplet builder.
//
// The constraint matrix B of the legalization QP has at most two nonzeros
// per row; it is assembled here in coordinate format and converted to the
// immutable CSR engine in csr.h (CsrMatrix::from_coo — the COO builder is
// the conversion source). Duplicate entries are summed on conversion,
// matching the usual triplet-assembly convention. We keep std::size_t
// indices for simplicity and because index width is not the bottleneck.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr.h"
#include "linalg/vector_ops.h"

namespace mch::linalg {

/// Coordinate-format triplet accumulator for assembling a sparse matrix.
class CooMatrix {
 public:
  CooMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entries() const { return row_idx_.size(); }

  /// Appends value at (row, col). Duplicates are summed by to_csr().
  void add(std::size_t row, std::size_t col, double value);

  /// Reserves storage for n entries.
  void reserve(std::size_t n) {
    row_idx_.reserve(n);
    col_idx_.reserve(n);
    values_.reserve(n);
  }

  const std::vector<std::size_t>& row_indices() const { return row_idx_; }
  const std::vector<std::size_t>& col_indices() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_idx_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace mch::linalg
