// Pluggable per-component LCP solver layer.
//
// The legalization constraint graph decomposes into independent connected
// components (see legal/partition.h), and the best solver differs by
// component size: a handful of variables is solved exactly by Lemke
// pivoting in microseconds, a constraint-free component (a cell alone
// between two obstacles) is a bound-constrained QP that PSOR handles
// directly, and everything else runs the paper's MMSIM. This header gives
// the three solvers one interface behind a factory so the legalizer's
// SolverPolicy can pick per component.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "lcp/lemke.h"
#include "lcp/mmsim.h"
#include "lcp/psor.h"
#include "lcp/qp.h"
#include "lcp/workspace.h"

namespace mch::lcp {

enum class LcpSolverKind {
  kMmsim,  ///< structured modulus splitting — the production path
  kPsor,   ///< projected SOR on the bound-constrained QP (m = 0 only)
  kLemke,  ///< dense complementary pivoting — exact, small systems only
};

const char* to_string(LcpSolverKind kind);

struct LcpSolveResult {
  Vector x;     ///< primal variables (cell/subcell positions)
  Vector dual;  ///< multipliers of the spacing rows (empty for PSOR)
  /// MMSIM/PSOR iterations, or Lemke pivots.
  std::size_t iterations = 0;
  bool converged = false;
  double setup_seconds = 0.0;
  double solve_seconds = 0.0;
  /// MMSIM per-phase timing (zero for PSOR/Lemke and for tiny systems —
  /// see MmsimPhaseTimes).
  MmsimPhaseTimes phase;
};

struct LcpSolverConfig {
  MmsimOptions mmsim;
  PsorOptions psor;
  std::size_t lemke_max_pivots = 20000;
  /// For MMSIM on a sub-problem extracted from a larger system: rows whose
  /// tridiagonal Schur coupling to the preceding row must be dropped
  /// because the rows were not adjacent in the parent ordering (keeps the
  /// sub-solve iterating exactly as the parent would). Not owned; must
  /// outlive the solver. nullptr = no breaks.
  const std::vector<bool>* schur_coupling_breaks = nullptr;
};

/// Uniform interface over the LCP solvers. Instances are bound to one QP
/// (setup happens at construction); the QP must outlive the solver.
class LcpSolver {
 public:
  virtual ~LcpSolver() = default;
  virtual LcpSolverKind kind() const = 0;
  /// Solves the QP's KKT LCP from the zero start.
  virtual LcpSolveResult solve() const = 0;
  /// Workspace-backed solve: iterates in the slot's buffers (no per-solve
  /// allocation once the slot has seen the shape) and stores the final
  /// iterate back as the slot's warm-start payload. When `warm_start` is
  /// true and the slot holds a payload of matching shape, iteration starts
  /// from it — same fixed point, fewer iterations; when false the solve is
  /// bitwise identical to solve(). A null slot forwards to solve(); the
  /// base implementation (Lemke) ignores the slot entirely.
  virtual LcpSolveResult solve(SolverWorkspace::Slot* slot,
                               bool warm_start) const;
};

/// Builds the requested solver for the QP. Throws CheckError when the kind
/// cannot handle the QP's structure (PSOR with m > 0: the saddle KKT matrix
/// has zero diagonal entries, see lcp/psor.h).
std::unique_ptr<LcpSolver> make_lcp_solver(LcpSolverKind kind,
                                           const StructuredQp& qp,
                                           const LcpSolverConfig& config = {});

}  // namespace mch::lcp
