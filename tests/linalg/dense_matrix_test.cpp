#include "linalg/dense_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace mch::linalg {
namespace {

DenseMatrix random_spd(std::size_t n, Rng& rng) {
  // A = G Gᵀ + n·I is SPD for any G.
  DenseMatrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1, 1);
  DenseMatrix a = g.multiply(g.transpose());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(DenseMatrixTest, IdentityMultiply) {
  const DenseMatrix eye = DenseMatrix::identity(3);
  Vector y;
  eye.multiply({1, 2, 3}, y);
  EXPECT_EQ(y, (Vector{1, 2, 3}));
}

TEST(DenseMatrixTest, MultiplyRectangular) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Vector y;
  a.multiply({1, 1, 1}, y);
  EXPECT_EQ(y, (Vector{6, 15}));
}

TEST(DenseMatrixTest, MatrixProduct) {
  DenseMatrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 0;
  b(0, 1) = 1;
  b(1, 0) = 1;
  b(1, 1) = 0;
  const DenseMatrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2);
  EXPECT_DOUBLE_EQ(c(0, 1), 1);
  EXPECT_DOUBLE_EQ(c(1, 0), 4);
  EXPECT_DOUBLE_EQ(c(1, 1), 3);
}

TEST(DenseMatrixTest, Transpose) {
  DenseMatrix a(2, 3);
  a(0, 2) = 7;
  a(1, 0) = -2;
  const DenseMatrix at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  EXPECT_DOUBLE_EQ(at(2, 0), 7);
  EXPECT_DOUBLE_EQ(at(0, 1), -2);
}

TEST(DenseMatrixTest, SolveDiagonal) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2;
  a(1, 1) = 4;
  Vector x;
  ASSERT_TRUE(a.solve({2, 8}, x));
  EXPECT_DOUBLE_EQ(x[0], 1);
  EXPECT_DOUBLE_EQ(x[1], 2);
}

TEST(DenseMatrixTest, SolveNeedsPivoting) {
  // Zero on the initial pivot position forces a row swap.
  DenseMatrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  Vector x;
  ASSERT_TRUE(a.solve({3, 5}, x));
  EXPECT_DOUBLE_EQ(x[0], 5);
  EXPECT_DOUBLE_EQ(x[1], 3);
}

TEST(DenseMatrixTest, SolveSingularFails) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  Vector x;
  EXPECT_FALSE(a.solve({1, 2}, x));
}

TEST(DenseMatrixTest, InverseRoundTrip) {
  Rng rng(3);
  const DenseMatrix a = random_spd(5, rng);
  DenseMatrix inv;
  ASSERT_TRUE(a.inverse(inv));
  const DenseMatrix prod = a.multiply(inv);
  EXPECT_LT(prod.frobenius_distance(DenseMatrix::identity(5)), 1e-9);
}

TEST(DenseMatrixTest, CholeskyFactorReconstructs) {
  Rng rng(4);
  const DenseMatrix a = random_spd(6, rng);
  DenseMatrix lower;
  ASSERT_TRUE(a.cholesky(lower));
  const DenseMatrix rebuilt = lower.multiply(lower.transpose());
  EXPECT_LT(rebuilt.frobenius_distance(a), 1e-9);
}

TEST(DenseMatrixTest, CholeskyRejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  DenseMatrix lower;
  EXPECT_FALSE(a.cholesky(lower));
}

TEST(DenseMatrixTest, AddScaled) {
  DenseMatrix a = DenseMatrix::identity(2);
  a.add_scaled(3.0, DenseMatrix::identity(2));
  EXPECT_DOUBLE_EQ(a(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

// Property sweep: solve(rhs) then multiply reproduces rhs for random SPD
// systems of several orders.
class DenseSolveSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DenseSolveSweep, SolveMultiplyRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(77 + n);
  const DenseMatrix a = random_spd(n, rng);
  Vector rhs(n);
  for (double& v : rhs) v = rng.uniform(-3, 3);
  Vector x, back;
  ASSERT_TRUE(a.solve(rhs, x));
  a.multiply(x, back);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], rhs[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseSolveSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

}  // namespace
}  // namespace mch::linalg
