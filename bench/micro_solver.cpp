// Google-benchmark microbenchmarks of the pipeline stages, demonstrating
// the linear-time scaling that underpins the paper's efficiency claim:
// model build, MMSIM setup + iterations, PlaceRow collapse, and the
// Tetris-like allocation all scale ~O(n).
#include <benchmark/benchmark.h>

#include <map>

#include "baselines/abacus.h"
#include "gen/generator.h"
#include "lcp/mmsim.h"
#include "legal/flow.h"
#include "legal/model.h"
#include "legal/row_assign.h"
#include "legal/tetris_alloc.h"

namespace {

using namespace mch;

const db::Design& cached_design(std::size_t cells) {
  static std::map<std::size_t, db::Design> cache;
  auto it = cache.find(cells);
  if (it == cache.end()) {
    gen::GeneratorOptions options;
    options.seed = 7;
    options.nets_per_cell = 0.0;
    it = cache
             .emplace(cells, gen::generate_random_design(
                                 cells - cells / 10, cells / 10, 0.6,
                                 options))
             .first;
  }
  return it->second;
}

void BM_ModelBuild(benchmark::State& state) {
  db::Design design = cached_design(static_cast<std::size_t>(state.range(0)));
  const legal::RowAssignment rows = legal::assign_rows(design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(legal::build_model(design, rows));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ModelBuild)->Range(1000, 64000)->Complexity(benchmark::oN);

void BM_MmsimIterations(benchmark::State& state) {
  db::Design design = cached_design(static_cast<std::size_t>(state.range(0)));
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  lcp::MmsimOptions options;
  options.max_iterations = 100;  // fixed budget: measures per-iteration cost
  options.tolerance = 0.0;
  options.residual_check = false;
  const lcp::MmsimSolver solver(model.qp, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MmsimIterations)->Range(1000, 64000)->Complexity(benchmark::oN);

void BM_MmsimSolveToConvergence(benchmark::State& state) {
  db::Design design = cached_design(static_cast<std::size_t>(state.range(0)));
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  const lcp::MmsimSolver solver(model.qp, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MmsimSolveToConvergence)->Range(1000, 16000);

void BM_PlaceRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<baselines::PlaceRowCell> cells;
  cells.reserve(n);
  double target = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    target += 3.0 + static_cast<double>(i % 5);
    cells.push_back({target * 0.8, 4.0});  // 20% compression: collapses
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::place_row(cells));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlaceRow)->Range(256, 65536)->Complexity(benchmark::oN);

void BM_TetrisAllocate(benchmark::State& state) {
  const db::Design& base = cached_design(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    db::Design design = base;
    legal::assign_rows(design);
    state.ResumeTiming();
    benchmark::DoNotOptimize(legal::tetris_allocate(design));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TetrisAllocate)->Range(1000, 32000);

void BM_FullFlow(benchmark::State& state) {
  const db::Design& base = cached_design(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    db::Design design = base;
    state.ResumeTiming();
    legal::FlowOptions options;
    options.verify = false;
    benchmark::DoNotOptimize(legal::legalize(design, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullFlow)->Range(1000, 16000);

}  // namespace

BENCHMARK_MAIN();
