// Abacus (Spindler, Schlichtmann & Johannes, ISPD'08) for single-row-height
// cells: the PlaceRow cluster-collapse subroutine and the full legalizer.
//
// PlaceRow solves, for one row with a fixed left-to-right cell order,
//
//     min Σ wt_i (x_i − e_i)²   s.t.  x_{i+1} ≥ x_i + w_i,  x ≥ min_x,
//                                     x_last + w_last ≤ max_x (optional)
//
// exactly, by merging cells into clusters whose optimal position is the
// weighted mean of member targets (a PAVA-style collapse). The paper's §5.3
// experiment swaps PlaceRow in for the MMSIM on single-height designs and
// observes *identical* total displacement — both are exact for the relaxed
// fixed-order problem; we reproduce that equivalence in tests and in
// bench/table3_optimality.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "db/design.h"

namespace mch::baselines {

/// One cell of a PlaceRow instance.
struct PlaceRowCell {
  double target = 0.0;  ///< desired x (GP position)
  double width = 0.0;
  double weight = 1.0;  ///< objective weight (1 for plain Abacus)
};

/// Optimal x positions for the given ordered cells. `max_x` may be
/// +infinity to relax the right boundary (as the MMSIM formulation does).
std::vector<double> place_row(
    const std::vector<PlaceRowCell>& cells, double min_x = 0.0,
    double max_x = std::numeric_limits<double>::infinity());

/// Objective value Σ wt_i (x_i − target_i)² of a PlaceRow solution.
double place_row_objective(const std::vector<PlaceRowCell>& cells,
                           const std::vector<double>& x);

struct AbacusOptions {
  /// Rows examined on each side of a cell's nearest row before the
  /// y-distance pruning bound applies.
  std::size_t min_rows_each_side = 3;
  /// Honor the right boundary inside PlaceRow (the classic algorithm does).
  bool clamp_right_boundary = true;
};

struct AbacusStats {
  double seconds = 0.0;
  std::size_t failed_cells = 0;  ///< cells no row could accommodate
};

/// Full Abacus legalizer for designs whose cells are all single-row-height:
/// processes cells in GP x-order, tries nearby rows with trial PlaceRow
/// insertions, and commits each cell to the cheapest row. Writes final
/// continuous positions; callers snap to sites afterwards (see
/// legal::tetris_allocate). Requires every cell to have height_rows == 1.
AbacusStats abacus_legalize(db::Design& design,
                            const AbacusOptions& options = {});

/// The §5.3 experiment arm: fixed nearest-row assignment (identical to the
/// MMSIM flow's), then one exact PlaceRow per row with the right boundary
/// relaxed. Writes continuous positions into the design.
AbacusStats placerow_legalize_fixed_rows(db::Design& design,
                                         bool clamp_right_boundary = false);

}  // namespace mch::baselines
