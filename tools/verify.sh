#!/usr/bin/env bash
# Repo verification driver: tier-1 build + ctest, the env-variant ctest
# jobs (.recovery/.session/.simd-off/.mixed), an AddressSanitizer job over
# the solver/legalizer suites (the workspace arena hands slot references to
# parallel workers — ASan is what would catch a stale one), and a UBSan job
# over the SIMD/mixed kernel suites.
#
#   tools/verify.sh            # full: Release build + ctest + ASan + UBSan
#   tools/verify.sh --fast     # skip the sanitizer jobs
#   tools/verify.sh --bigmem   # additionally run the 1M-cell memory smoke
#
# Build trees: ./build (default config), ./build-asan (MCH_ENABLE_ASAN) and
# ./build-ubsan (MCH_ENABLE_UBSAN), both RelWithDebInfo sanitizer trees.
# All are incremental across runs.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
BIGMEM=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --bigmem) BIGMEM=1 ;;
    *) echo "usage: tools/verify.sh [--fast] [--bigmem]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build (Release default) =="
cmake -B build -S . >/dev/null
cmake --build build -j4

echo "== tier-1: ctest =="
(cd build && ctest -j2 --output-on-failure)

echo "== recovery: fault-injected legal/lcp suites =="
# The .recovery ctest variant runs with MCH_FORCE_SOLVER_FAILURE=1, so
# every legalization solve exercises the escalation ladder and must still
# meet its contracts; the plain legality/recovery regression suites ride
# along for the checker fixes.
(cd build && ctest -j2 --output-on-failure \
  -R '\.recovery$|RecoveryLadderTest|DegenerateDesignTest|LegalityTest')

echo "== session: resident-service suites =="
# The .session ctest variant runs the eval/integration suites with
# MCH_SESSION=1, serving every MMSIM legalization through a resident
# service::LegalizationSession; the SessionTest suite covers the
# incremental ECO path and the match-mode bitwise contract directly.
(cd build && ctest -j2 --output-on-failure \
  -R '\.session$|SessionTest')

echo "== simd-off: scalar-reference kernel suites =="
# The .simd-off ctest variant runs the kernel/solver suites with MCH_SIMD=0
# so the scalar fallback — the bitwise reference the AVX kernels are
# contracted against — stays exercised on hardware that would otherwise
# always dispatch the vector paths; the Simd* suites run the cross-level
# bitwise-identity assertions directly.
(cd build && ctest -j2 --output-on-failure \
  -R '\.simd-off$|SimdDispatchTest|SimdCsrTest|SimdBlockDiagTest|MmsimSimdTest')

echo "== mixed: float32-iterate solver suites =="
# The .mixed ctest variant opts every MMSIM solve into the mixed-precision
# iterate (MCH_PRECISION=mixed: float32 sweeps, float64 residual checks,
# double polish); the MmsimMixedTest suite covers the displacement
# tolerance, the kOff/kMatch demotion, and the recovery handoff directly.
(cd build && ctest -j2 --output-on-failure \
  -R '\.mixed$|MmsimMixedTest')

if [[ "$FAST" == 0 ]]; then
  echo "== asan: build solver/legalizer suites =="
  cmake -B build-asan -S . -DMCH_ENABLE_ASAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  ASAN_TARGETS=(
    lcp_mmsim_test lcp_mmsim_fused_test lcp_solver_test lcp_psor_test
    legal_mmsim_legalizer_test legal_partition_test linalg_csr_test
  )
  for t in "${ASAN_TARGETS[@]}"; do
    cmake --build build-asan -j4 --target "$t"
  done

  echo "== asan: run (serial and 4-thread pool) =="
  for t in "${ASAN_TARGETS[@]}"; do
    bin="$(find build-asan/tests -name "$t" -type f | head -1)"
    "$bin" --gtest_brief=1
    MCH_THREADS=4 "$bin" --gtest_brief=1
  done

  echo "== ubsan: build SIMD/mixed kernel suites =="
  # The vector kernels are the one place the codebase hand-rolls pointer
  # arithmetic over SoA gather tables and reinterprets masks — UBSan over
  # the kernel suites (at every dispatch level and in mixed precision) is
  # what would catch a misaligned load or out-of-lane index.
  cmake -B build-ubsan -S . -DMCH_ENABLE_UBSAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  UBSAN_TARGETS=(
    linalg_simd_test linalg_csr_test lcp_mmsim_simd_test
    lcp_mmsim_mixed_test lcp_mmsim_fused_test
  )
  for t in "${UBSAN_TARGETS[@]}"; do
    cmake --build build-ubsan -j4 --target "$t"
  done

  echo "== ubsan: run (native SIMD, forced-scalar, mixed) =="
  for t in "${UBSAN_TARGETS[@]}"; do
    bin="$(find build-ubsan/tests -name "$t" -type f | head -1)"
    "$bin" --gtest_brief=1
    MCH_SIMD=0 "$bin" --gtest_brief=1
    MCH_PRECISION=mixed "$bin" --gtest_brief=1
  done
fi

if [[ "$BIGMEM" == 1 ]]; then
  echo "== bigmem: 1M-cell legalization under an address-space cap =="
  # Opt-in (several minutes of solve time): legalize the 1M-cell baseline
  # scale design end to end inside a ulimit -v cap. The streamed spine
  # peaks near 0.5 GB at 1M cells and the pre-refactor layout needed ~1.1 GB
  # (see results/scaling_memory.txt), so a 1 GiB address-space cap gives
  # the current layout 2x headroom while a regression that reintroduces a
  # staging copy or an extract-everything high-water mark aborts on
  # allocation instead of silently fitting. Requires the Release bench
  # build from the tier-1 step above.
  cmake --build build -j4 --target scaling_memory
  (
    ulimit -v $((1024 * 1024))  # 1 GiB of address space
    build/bench/scaling_memory --point baseline 1000000 streamed
  )
fi

echo "verify: OK"
