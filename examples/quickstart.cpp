// Quickstart: generate a mixed-cell-height benchmark, legalize it with the
// paper's MMSIM flow, and report the metrics the paper's tables use.
//
//   ./quickstart [benchmark-name] [scale]
//
// Defaults to fft_2 at 10% scale (a few seconds).
#include <cstdlib>
#include <iostream>

#include "eval/suite_runner.h"
#include "gen/generator.h"
#include "gen/spec.h"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "fft_2";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.10;

  // 1. Build a synthetic instance of the named Table-1 benchmark.
  mch::gen::GeneratorOptions gen_options;
  gen_options.scale = scale;
  const mch::gen::BenchmarkSpec& spec = mch::gen::find_spec(name);
  mch::db::Design design = mch::gen::generate_design(spec, gen_options);

  std::cout << "benchmark " << design.name << ": " << design.num_cells()
            << " cells (" << design.count_cells_with_height(2)
            << " double-height), density " << design.density() << ", chip "
            << design.chip().num_rows << " rows x "
            << design.chip().num_sites << " sites\n";

  // 2. Legalize with the MMSIM flow (row assignment -> LCP -> MMSIM ->
  //    Tetris-like allocation).
  const mch::eval::RunResult result =
      mch::eval::run_legalizer(design, mch::eval::Legalizer::kMmsim);

  // 3. Report.
  std::cout << "legal:               " << (result.legal ? "yes" : "NO — ")
            << (result.legal ? "" : result.legality_summary) << '\n'
            << "solver iterations:   " << result.solver_iterations
            << (result.solver_converged ? " (converged)" : " (NOT converged)")
            << '\n'
            << "illegal after MMSIM: " << result.illegal_after_solver << " ("
            << 100.0 * static_cast<double>(result.illegal_after_solver) /
                   static_cast<double>(result.num_cells)
            << "% of cells)\n"
            << "total displacement:  " << result.disp.total_sites
            << " sites (mean " << result.disp.mean_sites << ", max "
            << result.disp.max_sites << ")\n"
            << "GP HPWL:             " << result.gp_hpwl << '\n'
            << "delta HPWL:          " << result.delta_hpwl * 100.0 << "%\n"
            << "runtime:             " << result.seconds << " s\n";
  return result.legal ? 0 : 1;
}
