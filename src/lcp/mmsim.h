// Modulus-based matrix splitting iteration method (MMSIM) for the
// legalization KKT LCP — Algorithm 1 of the paper.
//
// The LCP(q, A) with A = [K −Bᵀ; B 0] is solved with the splitting (paper
// Eq. (16)):
//
//     M = [ K/β*      0    ]      N = M − A = [ (1/β*−1)K   Bᵀ  ]
//         [  B     D/θ*    ]                  [     0      D/θ* ]
//
// where D = tridiag(B K⁻¹ Bᵀ) approximates the Schur complement. With
// Ω = I, each iteration solves
//
//     (M + I) s⁽ᵏ⁺¹⁾ = N s⁽ᵏ⁾ + (I − A)|s⁽ᵏ⁾| − γ q,
//     z⁽ᵏ⁺¹⁾ = (|s⁽ᵏ⁺¹⁾| + s⁽ᵏ⁺¹⁾) / γ,
//
// and M + I is block lower triangular: the (1,1) block K/β* + I is block
// diagonal (one small block per cell — solved with precomputed block
// inverses in O(n)) and the (2,2) block D/θ* + I is tridiagonal (Thomas
// solve in O(m)). Every iteration is therefore linear-time in the circuit
// size; this is the paper's central efficiency claim.
//
// The element-wise modulus stages and all matrix products run on the global
// parallel runtime (src/runtime/) and are bitwise-deterministic for any
// thread count; the Thomas solve is the one inherently sequential stage.
//
// Convergence (paper Theorem 2): guaranteed for 0 < β* < 2 and
// 0 < θ* < 2(2 − β*)/(β*·μ_max), μ_max the largest eigenvalue of
// Γ = D⁻¹ B K⁻¹ Bᵀ. suggest_theta() estimates that bound by power
// iteration; the paper's fixed choice β* = θ* = 0.5 is the default.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "lcp/qp.h"
#include "linalg/tridiagonal.h"

namespace mch::lcp {

/// Which splitting builds M (ablation of the paper's Eq. 16 choice).
enum class MmsimSplitting {
  /// The paper's block-Gauss-Seidel form: M = [K/β* 0; B D/θ*] — the dual
  /// update sees the *current* primal iterate through the B block.
  kGaussSeidel,
  /// Block-Jacobi ablation: M = [K/β* 0; 0 D/θ*] — primal and dual relax
  /// independently. Converges markedly slower (see bench/ablation_parameters),
  /// demonstrating why the paper couples the blocks.
  kJacobi,
};

struct MmsimOptions {
  double beta = 0.5;        ///< β* in (0, 2); paper uses 0.5
  double theta = 0.5;       ///< θ* > 0; paper uses 0.5
  MmsimSplitting splitting = MmsimSplitting::kGaussSeidel;
  double gamma = 2.0;       ///< γ > 0 of the modulus transform
  /// Stop when ‖z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾‖∞ < tolerance. 1e-4 is far below the site
  /// pitch, so the Tetris allocation absorbs it; optimality tests tighten
  /// this to 1e-8.
  double tolerance = 1e-4;
  std::size_t max_iterations = 20000;
  /// The successive-difference criterion alone can fire prematurely when
  /// the iteration's contraction factor is close to 1 (e.g. θ* near the
  /// convergence boundary): steps become tiny long before the fixed point.
  /// When enabled, a candidate stop is accepted only if the scaled LCP
  /// residual (feasibility + complementarity) is also below
  /// residual_tolerance; otherwise the iteration continues.
  bool residual_check = true;
  double residual_tolerance = 1e-7;
  /// Record ‖z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾‖∞ every `trace_stride` iterations into
  /// MmsimResult::trace (0 = off). Used by the convergence bench/plots.
  std::size_t trace_stride = 0;
};

struct MmsimResult {
  Vector x;                   ///< primal variables (cell/subcell positions)
  Vector dual;                ///< multipliers of the spacing constraints
  Vector z;                   ///< full LCP solution [x; dual]
  std::size_t iterations = 0;
  bool converged = false;
  double final_delta = 0.0;   ///< last ‖z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾‖∞
  double setup_seconds = 0.0;
  double solve_seconds = 0.0;
  /// (iteration, delta) samples when options.trace_stride > 0.
  std::vector<std::pair<std::size_t, double>> trace;
};

/// Per-part maxima of the scaled-residual stopping test. Each field is an
/// ∞-norm-style maximum, so the partials of a sub-problem combine with those
/// of its siblings by plain max — the combined decision is then exactly the
/// decision the monolithic solver would have made on the concatenated z
/// (the partitioned legalizer relies on this to stay bitwise-faithful).
struct MmsimResidualPartials {
  double z_norm = 0.0;          ///< ‖z‖∞
  double w_norm = 0.0;          ///< ‖Az + q‖∞
  double z_negativity = 0.0;    ///< max(0, −z_i)
  double w_negativity = 0.0;    ///< max(0, −w_i)
  double complementarity = 0.0; ///< max |z_i·w_i|
  void merge_max(const MmsimResidualPartials& other);
};

class MmsimSolver {
 public:
  /// Prepares the splitting for the given QP: builds the shifted block
  /// inverses of K/β* + I and the tridiagonal D/θ* + I. The QP must outlive
  /// the solver.
  ///
  /// `schur_coupling_breaks` (optional, size = #constraints) marks rows
  /// whose tridiagonal coupling to the *preceding* row must be dropped from
  /// D. A sub-problem extracted from a larger system passes the rows that
  /// were not adjacent in the parent ordering, so the sub-solve iterates
  /// exactly as the parent solver would on those rows.
  MmsimSolver(const StructuredQp& qp, const MmsimOptions& options = {},
              const std::vector<bool>* schur_coupling_breaks = nullptr);

  /// Runs Algorithm 1 from s⁽⁰⁾ = 0.
  MmsimResult solve() const;

  /// Runs Algorithm 1 from the given start vector s⁽⁰⁾ (size lcp_size()).
  MmsimResult solve_from(const Vector& s0) const;

  /// Iteration state for the incremental step() API. The partitioned
  /// legalizer advances many per-component solvers in lockstep with a
  /// global stopping rule; solve_from() runs on the same machinery.
  struct State {
    Vector z;                 ///< current iterate [x; dual] (modulus image)
    std::size_t iterations = 0;

   private:
    friend class MmsimSolver;
    Vector s1, s2;            ///< splitting state, primal / dual parts
    Vector z_prev;
    Vector abs1, abs2, rhs1, rhs2, new_s1, new_s2;  ///< scratch
  };

  /// Fresh state at s⁽⁰⁾ = 0.
  State make_state() const;
  /// Fresh state at the given s⁽⁰⁾ (size lcp_size()).
  State make_state(const Vector& s0) const;

  /// Advances one modulus iteration and returns ‖z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾‖∞. The
  /// caller owns the stopping rule (solve_from() applies the tolerance +
  /// residual_check policy in MmsimOptions).
  double step(State& state) const;

  /// Residual maxima of z for the scaled stopping test; combine across
  /// sub-problems with merge_max, decide with residual_ok.
  MmsimResidualPartials residual_partials(const Vector& z) const;

  /// The scaled-residual decision on (possibly merged) partials.
  static bool residual_ok(const MmsimResidualPartials& partials,
                          double tolerance);

  /// The tridiagonal Schur approximation D = tridiag(B K⁻¹ Bᵀ).
  const linalg::Tridiagonal& schur_tridiagonal() const { return d_; }

  /// Estimates the convergence bound 2(2−β*)/(β*·μ_max) of Theorem 2 via
  /// power iteration on Γ = D⁻¹ B K⁻¹ Bᵀ, and returns a θ* inside it.
  /// Theorem 2's bound assumes the exact Schur complement; with the
  /// tridiagonal approximation D the admissible range is empirically
  /// narrower (see bench/ablation_parameters), so the suggestion is
  /// additionally capped at the paper's validated 0.5 — auto-θ exists to
  /// *shrink* θ* on unusual instances, never to enlarge it. Returns
  /// options.theta unchanged when m = 0.
  double suggest_theta() const;

  /// μ_max estimate of Γ = D⁻¹ B K⁻¹ Bᵀ (power iteration).
  double estimate_mu_max() const;

 private:
  /// True when the scaled LCP residual of z is below residual_tolerance.
  bool scaled_residual_ok(const Vector& z) const;

  const StructuredQp& qp_;
  MmsimOptions opts_;
  linalg::BlockDiagMatrix shifted_k_;  ///< K/β* + I with block inverses
  linalg::Tridiagonal d_;              ///< tridiag(B K⁻¹ Bᵀ)
  linalg::Tridiagonal shifted_d_;      ///< D/θ* + I
  double setup_seconds_ = 0.0;
};

/// Computes D = tridiag(B K⁻¹ Bᵀ) directly from the block-diagonal inverse
/// of K. Exposed for tests (validated against the paper's Sherman–Morrison
/// closed form for all-double-height designs). When `coupling_breaks` is
/// given (size = #rows), rows flagged true get zero coupling to their
/// predecessor — see the MmsimSolver constructor.
linalg::Tridiagonal schur_tridiagonal(
    const linalg::BlockDiagMatrix& k, const linalg::CsrMatrix& b,
    const std::vector<bool>* coupling_breaks = nullptr);

}  // namespace mch::lcp
