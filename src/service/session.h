// Resident legalization service — ROADMAP item "legalization server".
//
// The one-shot flow (legal::legalize) rebuilds the model, the constraint
// partition, and every solver workspace from scratch on each call, even
// when an ECO touches 25 of 50000 cells. A LegalizationSession instead
// loads a design once and keeps the LegalizationModel, the
// ConstraintPartition, the continuous per-variable solution, and the
// per-component SolverWorkspace arenas resident across a stream of typed
// requests:
//
//   * FullLegalize    — the complete paper flow on the current design
//                       state (rows → MMSIM → Tetris → orientations);
//   * EcoRequest      — a batch of cell moves/inserts/erases, solved
//                       incrementally: only the connected components
//                       reachable from the touched cells (through their
//                       affected row spans) are re-extracted and re-solved,
//                       warm-started from the previous solve via workspace
//                       slots keyed by a stable component anchor; clean
//                       components reuse the previous solution verbatim.
//
// The dirty-component rule: an ECO batch changes the model only in the
// touched cells' p/K entries and in the spacing rows of the affected chip
// rows (the union of each touched cell's old and new row spans). A
// component with no touched cell and no variable in an affected row
// therefore has a bit-identical local QP and an unchanged variable set —
// its previous converged solution is still a converged solution, so it is
// skipped entirely. Incremental results match a from-scratch solve to
// solver tolerance; `match`-mode requests instead run the full lockstep
// pipeline and are bitwise identical to a from-scratch legal::legalize of
// the same design state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/design.h"
#include "lcp/qp.h"
#include "lcp/workspace.h"
#include "legal/flow.h"
#include "legal/model.h"
#include "legal/partition.h"
#include "legal/row_assign.h"

namespace mch::service {

/// How a request is solved.
enum class SolveMode {
  kAuto,         ///< use SessionOptions::default_mode
  kIncremental,  ///< dirty components only; tolerance-level contract
  /// Full lockstep pipeline, bitwise identical to a from-scratch
  /// legal::legalize with PartitionMode::kMatch on the same design state.
  kMatch,
};

const char* to_string(SolveMode mode);

/// One ECO mutation. Build with the factories; `payload` is only read by
/// inserts.
struct EcoOp {
  enum class Kind { kMove, kInsert, kErase };
  Kind kind = Kind::kMove;
  std::size_t cell = 0;  ///< target of kMove / kErase
  double gp_x = 0.0;     ///< kMove target (clamped into the die)
  double gp_y = 0.0;
  db::Cell payload;      ///< kInsert: the new cell (gp_* = its position)

  static EcoOp move(std::size_t cell, double gp_x, double gp_y) {
    EcoOp op;
    op.kind = Kind::kMove;
    op.cell = cell;
    op.gp_x = gp_x;
    op.gp_y = gp_y;
    return op;
  }
  static EcoOp insert(db::Cell cell) {
    EcoOp op;
    op.kind = Kind::kInsert;
    op.payload = cell;
    return op;
  }
  static EcoOp erase(std::size_t cell) {
    EcoOp op;
    op.kind = Kind::kErase;
    op.cell = cell;
    return op;
  }
};

/// A batched ECO request: the ops apply in order, then one solve runs.
struct EcoRequest {
  std::vector<EcoOp> ops;
  SolveMode mode = SolveMode::kAuto;
};

/// Displacement of the session's design versus its GP positions, in the
/// same units as eval::DisplacementStats (kept local so the service layer
/// does not depend on eval/).
struct SessionDisplacement {
  double total_sites = 0.0;
  double mean_sites = 0.0;
  double max_sites = 0.0;
  std::size_t moved_cells = 0;
};

/// Per-phase wall-clock of one request, seconds. Full solves only fill
/// rows/model/solve/total (the flow does not time its tail phases
/// separately).
struct SessionPhases {
  double apply = 0.0;      ///< ECO op application + delta tracking
  double rows = 0.0;       ///< row re-assignment (touched cells or full)
  double model = 0.0;      ///< build_model
  double partition = 0.0;  ///< incremental repartition / full partition
  double extract = 0.0;    ///< dirty-component extraction
  double solve = 0.0;      ///< component solves (or the full solve section)
  double reuse = 0.0;      ///< clean-component solution reuse + write-back
  double allocate = 0.0;   ///< Tetris allocation + orientations
  double verify = 0.0;     ///< legality check
  double total = 0.0;
};

/// Incremental-solve bookkeeping of one request.
struct SessionStats {
  bool incremental = false;  ///< the dirty-component path actually ran
  std::size_t touched_cells = 0;
  std::size_t affected_rows = 0;
  std::size_t components_total = 0;
  std::size_t components_dirty = 0;   ///< re-extracted and re-solved
  std::size_t components_reused = 0;  ///< previous solution kept verbatim
  /// Dirty components whose solve started from a matching warm-start
  /// payload (a previous solve of the same region).
  std::size_t warm_start_hits = 0;
  double warm_start_rate = 0.0;  ///< hits / dirty (0 when no dirty)
  /// Incremental results that failed verification and were re-solved from
  /// scratch (SessionOptions::fallback_to_full_on_illegal).
  std::size_t full_solve_fallbacks = 0;
};

/// What kind of request produced a result.
enum class RequestKind { kFullLegalize, kEco };

/// The stable session-result struct every request returns.
struct SessionResult {
  std::uint64_t request_id = 0;
  RequestKind kind = RequestKind::kFullLegalize;
  SolveMode mode = SolveMode::kAuto;  ///< resolved mode that ran
  bool legal = false;
  std::string legality_summary;
  legal::MmsimLegalizerStats solver;  ///< includes recovery-ladder activity
  legal::TetrisStats allocation;
  SessionDisplacement displacement;
  SessionStats session;
  SessionPhases phase;
  double seconds = 0.0;  ///< whole-request wall clock (== phase.total)
};

struct SessionOptions {
  /// Solver configuration used by full solves; the model λ, MMSIM
  /// parameters, tiered policy, and recovery ladder also govern the
  /// incremental component solves. The workspace/prebuilt_model/…
  /// session hooks inside are overwritten by the session itself.
  legal::FlowOptions flow;
  /// Mode used by requests that ask for kAuto.
  SolveMode default_mode = SolveMode::kIncremental;
  /// Check legality after every request (cheap; part of the request
  /// latency contract).
  bool verify = true;
  /// When a verified incremental result is illegal, transparently re-solve
  /// the request from scratch (counted in SessionStats::full_solve_fallbacks).
  bool fallback_to_full_on_illegal = true;
};

/// A resident legalization engine serving a stream of requests against one
/// design. A session is not thread-safe: one request at a time per
/// session. *Distinct* sessions are safe to drive from concurrent client
/// threads — each request's component solves are scheduler jobs packed
/// onto the shared worker pool (runtime/scheduler.h), and match-mode
/// results stay bitwise equal to a serial one-shot legal::legalize
/// (tests/service/scheduler_determinism_test.cpp).
class LegalizationSession {
 public:
  explicit LegalizationSession(db::Design design, SessionOptions options = {});

  /// The session's design in its current (mutated, legalized) state.
  const db::Design& design() const { return design_; }
  std::uint64_t num_requests() const { return next_request_; }

  /// Runs the complete flow on the current design state. `mode` kMatch
  /// forces the bitwise lockstep pipeline; kAuto/kIncremental run the
  /// configured partition mode (a full solve is never incremental).
  SessionResult full_legalize(SolveMode mode = SolveMode::kAuto);

  /// Applies the batch and re-solves. Incremental unless the request (or
  /// default_mode) says kMatch, or no previous solve exists yet.
  SessionResult eco(const EcoRequest& request);
  SessionResult eco(std::vector<EcoOp> ops);

  /// ECO streams that want stability measured against the previous *legal*
  /// placement: copies positions to GP (like db::Design::
  /// commit_positions_as_gp) and invalidates the resident solve state —
  /// every GP changed, so nothing is reusable and the next request
  /// full-solves.
  void commit_legal_as_gp();

 private:
  struct ApplyOutcome;

  ApplyOutcome apply_ops(const std::vector<EcoOp>& ops);
  void run_full(bool force_match, SessionResult& result);
  void run_incremental(const legal::PartitionDelta& delta,
                       SessionResult& result);
  void finish(SessionResult& result);

  db::Design design_;
  SessionOptions options_;
  std::uint64_t next_request_ = 0;
  bool solved_ = false;  ///< model_/partition_/solution_ describe design_

  legal::RowAssignment base_rows_;
  legal::LegalizationModel model_;
  legal::ConstraintPartition partition_;
  lcp::Vector solution_;  ///< continuous per-variable solution of model_

  /// Full solves iterate in per-component-index slots; incremental solves
  /// in slots keyed by a stable component anchor (the smallest cell id).
  /// Separate arenas so the two numbering schemes never clobber each
  /// other's warm-start payloads.
  lcp::SolverWorkspace workspace_full_;
  lcp::SolverWorkspace workspace_eco_;
  /// Component anchor (cell id of the component's first variable) → slot
  /// index in workspace_eco_. Repeated ECOs touching the same region land
  /// in the same slot and warm-start from their previous solve.
  std::unordered_map<std::size_t, std::size_t> eco_slot_of_anchor_;
};

}  // namespace mch::service
