// Detailed-placement refinement after MMSIM legalization (extension): the
// downstream stage the paper's consumers (e.g. MrDP [12]) run on this
// legalizer's output. Reports HPWL recovered per move type over a slice of
// the suite — and shows the legalizer's output is a good DP starting point
// (small residual gains).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "db/legality.h"
#include "dp/detailed.h"
#include "eval/suite_runner.h"
#include "io/table.h"

int main() {
  using namespace mch;
  const gen::GeneratorOptions options = bench::bench_options();
  std::printf("Detailed placement refinement after MMSIM legalization "
              "(scale %.3f)\n\n",
              options.scale);

  io::Table table({"Benchmark", "HPWL legal", "HPWL refined", "gain",
                   "reorders", "swaps", "shifts", "passes", "t (s)",
                   "legal"});
  bench::JsonSnapshot json("dp_refinement");
  for (const char* name :
       {"fft_2", "fft_1", "des_perf_b", "pci_bridge32_a", "matrix_mult_a"}) {
    db::Design design =
        gen::generate_design(gen::find_spec(name), options);
    const eval::RunResult legalized =
        eval::run_legalizer(design, eval::Legalizer::kMmsim);
    const dp::DetailedPlacementStats stats = dp::refine(design);
    const bool legal = db::check_legality(design).legal();
    table.row()
        .cell(name)
        .cell(stats.hpwl_before, 0)
        .cell(stats.hpwl_after, 0)
        .percent(stats.improvement_fraction())
        .cell(stats.reorder_moves)
        .cell(stats.swap_moves)
        .cell(stats.shift_moves)
        .cell(stats.passes)
        .cell(stats.seconds, 2)
        .cell(legal ? "yes" : "NO");
    json.add(name, design.num_cells(), stats.seconds);
    (void)legalized;
    std::cerr << "." << std::flush;
  }
  std::cerr << "\n";
  std::cout << table.to_text() << "\n";

  // Per-operation ablation on one benchmark.
  std::printf("Per-operation ablation (fft_1):\n");
  io::Table ablation({"Ops enabled", "HPWL gain", "moves"});
  struct Config {
    const char* label;
    bool reorder, swaps, shift;
  };
  for (const Config& config :
       {Config{"reorder only", true, false, false},
        Config{"swaps only", false, true, false},
        Config{"shift only", false, false, true},
        Config{"all", true, true, true}}) {
    db::Design design =
        gen::generate_design(gen::find_spec("fft_1"), options);
    eval::run_legalizer(design, eval::Legalizer::kMmsim);
    dp::DetailedPlacementOptions dp_options;
    dp_options.enable_reorder = config.reorder;
    dp_options.enable_vertical_swaps = config.swaps;
    dp_options.enable_shift = config.shift;
    const dp::DetailedPlacementStats stats = dp::refine(design, dp_options);
    ablation.row()
        .cell(config.label)
        .percent(stats.improvement_fraction(), 3)
        .cell(stats.reorder_moves + stats.swap_moves + stats.shift_moves);
  }
  std::cout << ablation.to_text();
  mch::bench::print_peak_rss();
  json.write();
  return 0;
}
