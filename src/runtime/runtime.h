// Process-wide parallel runtime configuration.
//
// A single Runtime owns the worker thread pool shared by every parallel
// kernel in the library. The thread count is resolved, in order of
// precedence, from:
//
//   1. an explicit Runtime::configure(n) call (the --threads CLI flag in
//      the benches/tools ends up here, see runtime/options.h);
//   2. the MCH_THREADS environment variable;
//   3. std::thread::hardware_concurrency().
//
// A thread count of 1 keeps every kernel on the calling thread with no pool
// at all — exactly the pre-runtime serial behavior. Larger counts enable
// the pool, and by the determinism contract of runtime/parallel.h every
// result is bitwise-identical to the 1-thread run.
//
// configure() may be called repeatedly (the tests switch between 1 and N
// threads to compare results) but only from a single thread while no
// parallel work is in flight.
#pragma once

#include <memory>

#include "runtime/scheduler.h"

namespace mch::runtime {

class Runtime {
 public:
  /// The process-wide instance. First use resolves the thread count from
  /// MCH_THREADS / hardware concurrency and spins up the pool if needed.
  static Runtime& instance();

  /// Re-configures the global thread count; 0 means "auto" (MCH_THREADS,
  /// then hardware concurrency). Tears down and rebuilds the pool.
  static void configure(unsigned threads);

  /// Resolves a requested thread count the same way configure() does,
  /// without touching the global instance.
  static unsigned resolve_thread_count(unsigned requested);

  unsigned threads() const { return threads_; }

  /// The shared work-stealing scheduler, or nullptr when running
  /// single-threaded. (`pool()` is the historical name; the scheduler is
  /// the pool plus the cross-job queueing on top.)
  Scheduler* scheduler() const { return scheduler_.get(); }
  Scheduler* pool() const { return scheduler_.get(); }

 private:
  explicit Runtime(unsigned threads);
  void reconfigure(unsigned threads);

  unsigned threads_ = 1;
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace mch::runtime
