// Reproduces Table 2 of the paper: total displacement (sites), ΔHPWL, and
// runtime of four mixed-cell-height legalizers over the 20-benchmark suite,
// with normalized averages in the last row.
//
// Method mapping (reimplementations; see DESIGN.md §4):
//   DAC'16       → local          (Chow–Pui–Young-style local legalizer)
//   DAC'16-Imp   → local-imp      (+ ripple refinement)
//   ASP-DAC'17   → mixed-abacus   (Wang et al.-style extended Abacus)
//   Ours         → mmsim          (the paper's algorithm)
//
// Paper shape to verify: "Ours" smallest normalized displacement (1.16 /
// 1.10 / 1.06 / 1.00 in the paper) and smallest ΔHPWL (1.72 / 1.41 / 1.22 /
// 1.00), with runtime the same order of magnitude as the local methods.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "eval/suite_runner.h"
#include "io/table.h"

int main() {
  using namespace mch;
  const gen::GeneratorOptions options = bench::bench_options();
  std::printf("Table 2 — legalizer comparison (scale %.3f, seed %llu)\n\n",
              options.scale,
              static_cast<unsigned long long>(options.seed));

  const std::vector<eval::Legalizer> methods = {
      eval::Legalizer::kLocalBase, eval::Legalizer::kLocalImproved,
      eval::Legalizer::kMixedAbacus, eval::Legalizer::kMmsim};
  const std::vector<std::string> labels = {"DAC'16", "DAC'16-Imp",
                                           "ASP-DAC'17", "Ours"};

  std::vector<std::string> headers = {"Benchmark", "GP HPWL"};
  for (const std::string& label : labels) headers.push_back("Disp " + label);
  for (const std::string& label : labels) headers.push_back("dHPWL " + label);
  for (const std::string& label : labels) headers.push_back("Time(s) " + label);
  io::Table table(headers);

  // Normalized-average accumulators (normalize to "Ours" per benchmark,
  // exactly as the paper's last row does).
  std::vector<double> disp_ratio_sum(methods.size(), 0.0);
  std::vector<double> hpwl_ratio_sum(methods.size(), 0.0);
  std::vector<double> time_ratio_sum(methods.size(), 0.0);
  bool all_legal = true;

  for (const gen::BenchmarkSpec& spec : gen::ispd2015_mch_suite()) {
    std::vector<eval::RunResult> results;
    for (const eval::Legalizer method : methods) {
      db::Design design = gen::generate_design(spec, options);
      results.push_back(eval::run_legalizer(design, method));
      all_legal = all_legal && results.back().legal;
      std::cerr << "." << std::flush;
    }
    const eval::RunResult& ours = results.back();

    table.row().cell(spec.name).cell(ours.gp_hpwl / 1e6, 3);
    for (const eval::RunResult& r : results)
      table.cell(r.disp.total_sites, 0);
    for (const eval::RunResult& r : results) table.percent(r.delta_hpwl);
    for (const eval::RunResult& r : results) table.cell(r.seconds, 2);

    for (std::size_t m = 0; m < methods.size(); ++m) {
      disp_ratio_sum[m] +=
          results[m].disp.total_sites / ours.disp.total_sites;
      hpwl_ratio_sum[m] +=
          ours.delta_hpwl > 0.0 ? results[m].delta_hpwl / ours.delta_hpwl
                                : 1.0;
      time_ratio_sum[m] += results[m].seconds / ours.seconds;
    }
  }
  std::cerr << "\n";

  const double n = static_cast<double>(gen::ispd2015_mch_suite().size());
  table.row().cell("N. Average").cell("");
  for (std::size_t m = 0; m < methods.size(); ++m)
    table.cell(disp_ratio_sum[m] / n, 2);
  for (std::size_t m = 0; m < methods.size(); ++m)
    table.cell(hpwl_ratio_sum[m] / n, 2);
  for (std::size_t m = 0; m < methods.size(); ++m)
    table.cell(time_ratio_sum[m] / n, 2);

  std::cout << table.to_text() << "\n";
  std::cout << (all_legal ? "All placements verified legal.\n"
                          : "WARNING: some placements were ILLEGAL — "
                            "metrics above are not comparable!\n");
  std::cout << "Paper reference (full scale): N.Average disp 1.16 / 1.10 / "
               "1.06 / 1.00; dHPWL 1.72 / 1.41 / 1.22 / 1.00; time 1.02 / "
               "0.97 / 1.96 / 1.00.\n";
  return all_legal ? 0 : 1;
}
