#include "legal/mmsim_legalizer.h"

#include "util/log.h"
#include "util/timer.h"

namespace mch::legal {

MmsimLegalizerStats mmsim_legalize_continuous(
    db::Design& design, const RowAssignment& base_rows,
    const MmsimLegalizerOptions& options) {
  MmsimLegalizerStats stats;

  Timer model_timer;
  const LegalizationModel model =
      build_model(design, base_rows, options.model);
  stats.model_seconds = model_timer.seconds();
  stats.num_variables = model.num_variables();
  stats.num_constraints = model.qp.num_constraints();

  lcp::MmsimOptions mmsim_options = options.mmsim;
  lcp::MmsimSolver solver(model.qp, mmsim_options);
  if (options.auto_theta) {
    mmsim_options.theta = solver.suggest_theta();
    // Rebuild with the derived θ*; setup is linear-time so this is cheap.
    lcp::MmsimSolver tuned(model.qp, mmsim_options);
    const lcp::MmsimResult result = tuned.solve();
    stats.theta_used = mmsim_options.theta;
    stats.iterations = result.iterations;
    stats.converged = result.converged;
    stats.solve_seconds = result.solve_seconds + result.setup_seconds;
    stats.max_mismatch = model.max_mismatch(result.x);
    stats.objective = model.qp.objective(result.x);
    for (std::size_t c = 0; c < design.num_cells(); ++c) {
      if (design.cells()[c].fixed) continue;
      design.cells()[c].x = model.cell_x(result.x, c);
      design.cells()[c].y = design.chip().row_y(base_rows[c]);
    }
    return stats;
  }

  const lcp::MmsimResult result = solver.solve();
  stats.theta_used = mmsim_options.theta;
  stats.iterations = result.iterations;
  stats.converged = result.converged;
  stats.solve_seconds = result.solve_seconds + result.setup_seconds;
  stats.max_mismatch = model.max_mismatch(result.x);
  stats.objective = model.qp.objective(result.x);
  if (!result.converged) {
    MCH_LOG(kWarn) << "MMSIM did not converge in " << result.iterations
                   << " iterations (delta " << result.final_delta << ")";
  }

  for (std::size_t c = 0; c < design.num_cells(); ++c) {
    if (design.cells()[c].fixed) continue;
    design.cells()[c].x = model.cell_x(result.x, c);
    design.cells()[c].y = design.chip().row_y(base_rows[c]);
  }
  return stats;
}

}  // namespace mch::legal
