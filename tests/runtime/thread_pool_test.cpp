// Pool mechanics: exact chunk coverage under adversarial grains, nested
// parallel_for inlining, exception propagation with pool reuse, and clean
// reconfiguration/shutdown cycles.
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.h"
#include "runtime/runtime.h"

namespace mch::runtime {
namespace {

/// Every test leaves the global Runtime serial so suites sharing the binary
/// start from the default state.
class RuntimeTest : public ::testing::Test {
 protected:
  void TearDown() override { Runtime::configure(1); }
};

TEST_F(RuntimeTest, ChunkCount) {
  EXPECT_EQ(chunk_count(0, 64), 0u);
  EXPECT_EQ(chunk_count(1, 64), 1u);
  EXPECT_EQ(chunk_count(64, 64), 1u);
  EXPECT_EQ(chunk_count(65, 64), 2u);
  EXPECT_EQ(chunk_count(10, 3), 4u);
  EXPECT_EQ(chunk_count(10, 0), 10u);  // grain 0 behaves as grain 1
}

TEST_F(RuntimeTest, ResolveThreadCount) {
  EXPECT_EQ(Runtime::resolve_thread_count(1), 1u);
  EXPECT_EQ(Runtime::resolve_thread_count(5), 5u);
  EXPECT_GE(Runtime::resolve_thread_count(0), 1u);  // auto is at least 1
}

TEST_F(RuntimeTest, CoversRangeExactlyOnceUnderAdversarialGrains) {
  const std::size_t grains[] = {1, 2, 3, 7, 64, 1000000};
  const std::size_t sizes[] = {0, 1, 5, 1023, 1024, 1025, 10000};
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    Runtime::configure(threads);
    for (const std::size_t grain : grains) {
      for (const std::size_t n : sizes) {
        std::vector<int> counts(n, 0);
        parallel_for(std::size_t{0}, n, grain,
                     [&](std::size_t lo, std::size_t hi) {
                       ASSERT_LT(lo, hi);
                       ASSERT_LE(hi, n);
                       ASSERT_LE(hi - lo, grain == 0 ? 1 : grain);
                       for (std::size_t i = lo; i < hi; ++i) ++counts[i];
                     });
        const long total =
            std::accumulate(counts.begin(), counts.end(), 0L);
        ASSERT_EQ(total, static_cast<long>(n))
            << "threads=" << threads << " grain=" << grain << " n=" << n;
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(counts[i], 1) << "index " << i << " ran " << counts[i]
                                  << " times (threads=" << threads
                                  << " grain=" << grain << " n=" << n << ")";
      }
    }
  }
}

TEST_F(RuntimeTest, OffsetRangeCoversExactlyOnce) {
  Runtime::configure(4);
  constexpr std::size_t kBegin = 17, kEnd = 1042;
  std::vector<int> counts(kEnd, 0);
  parallel_for(kBegin, kEnd, 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++counts[i];
  });
  for (std::size_t i = 0; i < kEnd; ++i)
    ASSERT_EQ(counts[i], i >= kBegin ? 1 : 0) << "index " << i;
}

TEST_F(RuntimeTest, NestedParallelForRunsInline) {
  Runtime::configure(4);
  EXPECT_FALSE(ThreadPool::in_task());
  constexpr std::size_t kOuter = 8, kInner = 100;
  std::vector<std::vector<int>> hits(kOuter,
                                     std::vector<int>(kInner, 0));
  std::atomic<int> nested_in_task{0};
  parallel_for(std::size_t{0}, kOuter, 1,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t o = lo; o < hi; ++o) {
                   if (ThreadPool::in_task()) ++nested_in_task;
                   parallel_for(std::size_t{0}, kInner, 10,
                                [&, o](std::size_t ilo, std::size_t ihi) {
                                  for (std::size_t i = ilo; i < ihi; ++i)
                                    ++hits[o][i];
                                });
                 }
               });
  // With a 4-thread pool the outer bodies run inside pool tasks, so every
  // inner loop must have executed inline — and still exactly once per index.
  EXPECT_EQ(nested_in_task.load(), static_cast<int>(kOuter));
  for (std::size_t o = 0; o < kOuter; ++o)
    for (std::size_t i = 0; i < kInner; ++i)
      ASSERT_EQ(hits[o][i], 1) << "outer " << o << " inner " << i;
  EXPECT_FALSE(ThreadPool::in_task());
}

TEST_F(RuntimeTest, ExceptionPropagatesAndPoolSurvives) {
  Runtime::configure(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        parallel_for(std::size_t{0}, std::size_t{100}, 1,
                     [&](std::size_t lo, std::size_t) {
                       if (lo == 37)
                         throw std::runtime_error("chunk failure");
                     }),
        std::runtime_error);
    // The pool must stay usable after a throwing job.
    std::vector<int> counts(1000, 0);
    parallel_for(std::size_t{0}, counts.size(), 64,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) ++counts[i];
                 });
    for (std::size_t i = 0; i < counts.size(); ++i)
      ASSERT_EQ(counts[i], 1);
  }
}

TEST_F(RuntimeTest, PoolRunExecutesEveryChunkOnceAndIsReusable) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  for (const std::size_t chunks : {std::size_t{1}, std::size_t{257},
                                   std::size_t{13}}) {
    std::unique_ptr<std::atomic<int>[]> counts(new std::atomic<int>[chunks]);
    for (std::size_t c = 0; c < chunks; ++c) counts[c] = 0;
    pool.run(chunks, [&](std::size_t c) { ++counts[c]; });
    for (std::size_t c = 0; c < chunks; ++c)
      ASSERT_EQ(counts[c].load(), 1) << "chunk " << c << " of " << chunks;
  }
}

TEST_F(RuntimeTest, ReconfigureCyclesShutDownCleanly) {
  for (const unsigned threads : {1u, 2u, 4u, 8u, 3u, 1u, 4u}) {
    Runtime::configure(threads);
    EXPECT_EQ(Runtime::instance().threads(), threads);
    EXPECT_EQ(Runtime::instance().pool() == nullptr, threads == 1);
    long sum = parallel_reduce(
        std::size_t{0}, std::size_t{1000}, 16, 0L,
        [](std::size_t lo, std::size_t hi) {
          long s = 0;
          for (std::size_t i = lo; i < hi; ++i) s += static_cast<long>(i);
          return s;
        },
        [](long a, long b) { return a + b; });
    EXPECT_EQ(sum, 999L * 1000L / 2);
  }
}

}  // namespace
}  // namespace mch::runtime
