#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_set>

#include "util/log.h"

namespace mch::obs {

namespace {

constexpr std::size_t kDefaultRingCapacity = 16384;

/// One completed span in a thread's ring.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint8_t num_args = 0;
  TraceArg args[TraceSpan::kMaxArgs];
};

/// A thread's span ring. Owned by the global registry (buffers outlive
/// their threads so a drain after thread exit still sees their spans);
/// written only by the owning thread.
struct ThreadTraceBuffer {
  std::vector<TraceEvent> ring;
  std::size_t capacity = 0;
  std::size_t head = 0;         ///< next write slot
  std::uint64_t recorded = 0;   ///< total pushes since last clear
  std::uint64_t dropped = 0;    ///< pushes that overwrote an unread event
  int tid = 0;
  std::string name;

  void push(const char* span_name, std::uint64_t start_ns,
            std::uint64_t end_ns, const TraceArg* args,
            std::size_t num_args) {
    if (capacity == 0) return;
    TraceEvent* slot = nullptr;
    if (ring.size() < capacity) {
      ring.emplace_back();
      slot = &ring.back();
      head = ring.size() % capacity;  // wraps to 0 on the fill-up push
    } else {
      if (head >= ring.size()) head = 0;
      slot = &ring[head];
      ++head;
      ++dropped;
    }
    TraceEvent& event = *slot;
    event.name = span_name;
    event.start_ns = start_ns;
    event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
    event.num_args = static_cast<std::uint8_t>(
        num_args > TraceSpan::kMaxArgs ? TraceSpan::kMaxArgs : num_args);
    for (std::size_t a = 0; a < event.num_args; ++a) event.args[a] = args[a];
    ++recorded;
  }
};

bool env_truthy(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

std::size_t resolve_ring_capacity() {
  if (const char* env = std::getenv("MCH_TRACE_RING")) {
    const long long value = std::atoll(env);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  return kDefaultRingCapacity;
}

std::atomic<bool> g_enabled{env_truthy("MCH_TRACE")};
std::atomic<std::size_t> g_ring_capacity{resolve_ring_capacity()};

/// The process-wide trace epoch: everything is reported relative to the
/// first time anyone asked for the clock.
std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadTraceBuffer>> buffers;
  std::unordered_set<std::string> interned;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: buffers outlive all threads
  return *r;
}

thread_local ThreadTraceBuffer* t_buffer = nullptr;
thread_local std::string t_pending_name;

ThreadTraceBuffer& thread_buffer() {
  if (t_buffer != nullptr) return *t_buffer;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto buffer = std::make_unique<ThreadTraceBuffer>();
  buffer->tid = static_cast<int>(r.buffers.size());
  buffer->capacity = g_ring_capacity.load(std::memory_order_relaxed);
  buffer->ring.reserve(buffer->capacity < 1024 ? buffer->capacity : 1024);
  if (!t_pending_name.empty()) {
    buffer->name = t_pending_name;
  } else if (buffer->tid == 0) {
    // By construction the first thread to trace is almost always main; a
    // pool worker that beats it still gets named via its pending label.
    buffer->name = "main";
  } else {
    buffer->name = "thread-" + std::to_string(buffer->tid);
  }
  t_buffer = buffer.get();
  r.buffers.push_back(std::move(buffer));
  return *t_buffer;
}

void append_json_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

void append_args_json(std::string& out, const TraceArg* args,
                      std::size_t num_args) {
  out += '{';
  for (std::size_t a = 0; a < num_args; ++a) {
    if (a > 0) out += ',';
    out += '"';
    append_json_escaped(out, args[a].key != nullptr ? args[a].key : "?");
    out += "\":";
    char scratch[64];
    switch (args[a].kind) {
      case TraceArg::Kind::kInt:
        std::snprintf(scratch, sizeof scratch, "%lld",
                      static_cast<long long>(args[a].value.i));
        out += scratch;
        break;
      case TraceArg::Kind::kDouble:
        std::snprintf(scratch, sizeof scratch, "%.9g", args[a].value.d);
        out += scratch;
        break;
      case TraceArg::Kind::kString:
        out += '"';
        append_json_escaped(
            out, args[a].value.s != nullptr ? args[a].value.s : "");
        out += '"';
        break;
      case TraceArg::Kind::kNone:
        out += "null";
        break;
    }
  }
  out += '}';
}

/// Copies one buffer's events oldest-first. Caller holds the registry lock.
void collect_buffer(const ThreadTraceBuffer& buffer,
                    std::vector<CollectedEvent>& out) {
  const std::size_t n = buffer.ring.size();
  // When the ring has wrapped, the oldest event sits at head (the next
  // write slot); otherwise the ring is in push order already.
  const bool wrapped = buffer.recorded > n;
  const std::size_t first = wrapped ? buffer.head % n : 0;
  for (std::size_t k = 0; k < n; ++k) {
    const TraceEvent& event = buffer.ring[(first + k) % n];
    CollectedEvent collected;
    collected.name = event.name;
    collected.tid = buffer.tid;
    collected.start_ns = event.start_ns;
    collected.dur_ns = event.dur_ns;
    collected.args.assign(event.args, event.args + event.num_args);
    out.push_back(std::move(collected));
  }
}

}  // namespace

bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool enabled) {
  trace_epoch();  // pin the epoch before the first span
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void set_trace_ring_capacity(std::size_t events) {
  g_ring_capacity.store(events > 0 ? events : 1, std::memory_order_relaxed);
}

std::size_t trace_ring_capacity() {
  return g_ring_capacity.load(std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

const char* intern(std::string_view text) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.interned.emplace(text).first->c_str();
}

void set_trace_thread_name(std::string name) {
  if (t_buffer != nullptr) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    t_buffer->name = std::move(name);
  } else {
    t_pending_name = std::move(name);
  }
}

TraceSpan::TraceSpan(const char* name) {
  if (!tracing_enabled()) return;
  name_ = name;
  start_ns_ = trace_now_ns();
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  record_span(name_, start_ns_, trace_now_ns(), args_, num_args_);
}

TraceArg& TraceSpan::next_arg(const char* key) {
  TraceArg& slot = args_[num_args_];
  slot.key = key;
  ++num_args_;
  return slot;
}

TraceSpan& TraceSpan::arg(const char* key, double value) {
  if (!active_ || num_args_ >= kMaxArgs) return *this;
  TraceArg& slot = next_arg(key);
  slot.kind = TraceArg::Kind::kDouble;
  slot.value.d = value;
  return *this;
}

TraceSpan& TraceSpan::arg(const char* key, const char* value) {
  if (!active_ || num_args_ >= kMaxArgs) return *this;
  TraceArg& slot = next_arg(key);
  slot.kind = TraceArg::Kind::kString;
  slot.value.s = value;
  return *this;
}

TraceSpan& TraceSpan::arg_int(const char* key, std::int64_t value) {
  if (!active_ || num_args_ >= kMaxArgs) return *this;
  TraceArg& slot = next_arg(key);
  slot.kind = TraceArg::Kind::kInt;
  slot.value.i = value;
  return *this;
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, const TraceArg* args,
                 std::size_t num_args) {
  if (!tracing_enabled()) return;
  thread_buffer().push(name, start_ns, end_ns, args, num_args);
}

TraceStats trace_stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  TraceStats stats;
  stats.threads = r.buffers.size();
  for (const auto& buffer : r.buffers) {
    stats.recorded += buffer->recorded;
    stats.dropped += buffer->dropped;
    stats.buffered += buffer->ring.size();
  }
  return stats;
}

std::vector<CollectedEvent> collect_trace_events() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<CollectedEvent> events;
  for (const auto& buffer : r.buffers) collect_buffer(*buffer, events);
  return events;
}

std::string chrome_trace_json() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);

  std::uint64_t dropped = 0;
  for (const auto& buffer : r.buffers) dropped += buffer->dropped;

  std::string out;
  out.reserve(1 << 16);
  out += "{\n  \"schema\": \"mch-trace/1\",\n  \"displayTimeUnit\": \"ms\",\n";
  char scratch[128];
  std::snprintf(scratch, sizeof scratch,
                "  \"otherData\": {\"droppedSpans\": %llu},\n",
                static_cast<unsigned long long>(dropped));
  out += scratch;
  out += "  \"traceEvents\": [\n";

  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const auto& buffer : r.buffers) {
    comma();
    std::snprintf(scratch, sizeof scratch,
                  "    {\"ph\": \"M\", \"pid\": 1, \"tid\": %d, "
                  "\"name\": \"thread_name\", \"args\": {\"name\": \"",
                  buffer->tid);
    out += scratch;
    append_json_escaped(out, buffer->name.c_str());
    out += "\"}}";
  }
  std::vector<CollectedEvent> events;
  for (const auto& buffer : r.buffers) collect_buffer(*buffer, events);
  for (const CollectedEvent& event : events) {
    comma();
    std::snprintf(scratch, sizeof scratch,
                  "    {\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": "
                  "%.3f, \"dur\": %.3f, \"name\": \"",
                  event.tid, static_cast<double>(event.start_ns) / 1e3,
                  static_cast<double>(event.dur_ns) / 1e3);
    out += scratch;
    append_json_escaped(out, event.name != nullptr ? event.name : "?");
    out += "\", \"args\": ";
    append_args_json(out, event.args.data(), event.args.size());
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    MCH_LOG(kWarn) << "trace: cannot open " << path << " for writing";
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

void clear_trace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::size_t capacity = g_ring_capacity.load(std::memory_order_relaxed);
  for (const auto& buffer : r.buffers) {
    buffer->ring.clear();
    buffer->head = 0;
    buffer->recorded = 0;
    buffer->dropped = 0;
    buffer->capacity = capacity;
  }
}

}  // namespace mch::obs
