#include "linalg/block_diag.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace mch::linalg {
namespace {

// The Hessian block of a d-subcell cell: I_d + λ·chain-Laplacian, exactly as
// the legalization model builds it.
DenseMatrix cell_block(std::size_t d, double lambda) {
  DenseMatrix block(d, d);
  for (std::size_t i = 0; i < d; ++i) block(i, i) = 1.0;
  for (std::size_t i = 0; i + 1 < d; ++i) {
    block(i, i) += lambda;
    block(i + 1, i + 1) += lambda;
    block(i, i + 1) -= lambda;
    block(i + 1, i) -= lambda;
  }
  return block;
}

TEST(BlockDiagTest, SizesAndOffsets) {
  BlockDiagMatrix k;
  k.add_block(DenseMatrix::identity(1));
  k.add_block(cell_block(2, 10.0));
  k.add_block(DenseMatrix::identity(1));
  EXPECT_EQ(k.size(), 4u);
  EXPECT_EQ(k.block_count(), 3u);
  EXPECT_EQ(k.block_offset(0), 0u);
  EXPECT_EQ(k.block_offset(1), 1u);
  EXPECT_EQ(k.block_offset(2), 3u);
  EXPECT_EQ(k.block_of(0), 0u);
  EXPECT_EQ(k.block_of(1), 1u);
  EXPECT_EQ(k.block_of(2), 1u);
  EXPECT_EQ(k.block_of(3), 2u);
}

TEST(BlockDiagTest, EntryAccess) {
  BlockDiagMatrix k;
  k.add_block(cell_block(2, 5.0));
  k.add_block(DenseMatrix::identity(1));
  EXPECT_DOUBLE_EQ(k.entry(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(k.entry(0, 1), -5.0);
  EXPECT_DOUBLE_EQ(k.entry(0, 2), 0.0);  // cross-block
  EXPECT_DOUBLE_EQ(k.entry(2, 2), 1.0);
}

TEST(BlockDiagTest, InverseEntryMatchesDenseInverse) {
  const DenseMatrix block = cell_block(3, 7.0);
  DenseMatrix inv;
  ASSERT_TRUE(block.inverse(inv));
  BlockDiagMatrix k;
  k.add_block(block);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(k.inverse_entry(r, c), inv(r, c), 1e-12);
}

TEST(BlockDiagTest, MultiplyAndSolveRoundTrip) {
  Rng rng(9);
  BlockDiagMatrix k;
  k.add_block(cell_block(1, 3.0));
  k.add_block(cell_block(2, 3.0));
  k.add_block(cell_block(4, 3.0));
  Vector x(k.size());
  for (double& v : x) v = rng.uniform(-2, 2);
  Vector kx, back;
  k.multiply(x, kx);
  k.solve(kx, back);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
}

TEST(BlockDiagTest, SolveShiftedMatchesDense) {
  Rng rng(10);
  BlockDiagMatrix k;
  k.add_block(cell_block(1, 2.0));
  k.add_block(cell_block(3, 2.0));
  const double alpha = 2.0, beta = 1.0;
  Vector rhs(k.size());
  for (double& v : rhs) v = rng.uniform(-1, 1);
  Vector x;
  k.solve_shifted(alpha, beta, rhs, x);

  // Verify (αK + βI)x = rhs.
  Vector check(k.size(), 0.0);
  k.multiply_add(alpha, x, check);
  for (std::size_t i = 0; i < x.size(); ++i) check[i] += beta * x[i];
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(check[i], rhs[i], 1e-9);
}

TEST(BlockDiagTest, SingularBlockRejected) {
  DenseMatrix zero(2, 2);
  BlockDiagMatrix k;
  EXPECT_THROW(k.add_block(zero), CheckError);
}

TEST(BlockDiagTest, MultiplyAddScalesCorrectly) {
  BlockDiagMatrix k;
  k.add_block(DenseMatrix::identity(2));
  Vector y = {1, 1};
  k.multiply_add(-3.0, {2, 4}, y);
  EXPECT_EQ(y, (Vector{-5, -11}));
}

// Property: block-diagonal operations agree with assembling the full dense
// matrix, across random block structures.
class BlockDiagRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlockDiagRandomSweep, AgreesWithDenseAssembly) {
  Rng rng(100 + GetParam());
  BlockDiagMatrix k;
  std::size_t n = 0;
  const int blocks = 1 + static_cast<int>(rng.uniform_int(0, 5));
  for (int b = 0; b < blocks; ++b) {
    const auto d = static_cast<std::size_t>(rng.uniform_int(1, 4));
    k.add_block(cell_block(d, rng.uniform(0.5, 20.0)));
    n += d;
  }
  DenseMatrix dense(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) dense(r, c) = k.entry(r, c);

  Vector x(n);
  for (double& v : x) v = rng.uniform(-1, 1);
  Vector via_block, via_dense;
  k.multiply(x, via_block);
  dense.multiply(x, via_dense);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(via_block[i], via_dense[i], 1e-10);

  Vector solved, dense_solved;
  k.solve(x, solved);
  ASSERT_TRUE(dense.solve(x, dense_solved));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(solved[i], dense_solved[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Trials, BlockDiagRandomSweep, ::testing::Range(0, 10));

// 1×1 blocks live only in the flat scalar arrays — no DenseMatrix, no
// stored inverse matrix. The two entry points must behave identically.
TEST(BlockDiagScalarTest, AddBlockRoutesOneByOneToScalarStorage) {
  BlockDiagMatrix via_dense, via_scalar;
  via_dense.add_block(cell_block(1, 0.0));  // 1×1 identity via DenseMatrix
  DenseMatrix one_by_one(1, 1);
  one_by_one(0, 0) = 3.5;
  via_dense.add_block(one_by_one);
  via_scalar.add_scalar_block(1.0);
  via_scalar.add_scalar_block(3.5);

  for (const BlockDiagMatrix* k : {&via_dense, &via_scalar}) {
    EXPECT_TRUE(k->is_scalar_block(0));
    EXPECT_TRUE(k->is_scalar_block(1));
    EXPECT_EQ(k->scalar_values(), (std::vector<double>{1.0, 3.5}));
    EXPECT_EQ(k->scalar_inverses(), (std::vector<double>{1.0, 1.0 / 3.5}));
  }
}

TEST(BlockDiagScalarTest, BlockAccessorThrowsOnScalar) {
  BlockDiagMatrix k;
  k.add_scalar_block(2.0);
  k.add_block(cell_block(2, 4.0));
  EXPECT_THROW(k.block(0), CheckError);
  EXPECT_NO_THROW(k.block(1));
  EXPECT_DOUBLE_EQ(k.entry(0, 0), 2.0);  // read scalars through entry()
  EXPECT_DOUBLE_EQ(k.inverse_entry(0, 0), 0.5);
}

TEST(BlockDiagScalarTest, ScalarArraysZeroedUnderGeneralBlocks) {
  BlockDiagMatrix k;
  k.add_scalar_block(5.0);
  k.add_block(cell_block(2, 4.0));
  k.add_scalar_block(0.25);
  ASSERT_EQ(k.size(), 4u);
  EXPECT_EQ(k.scalar_values(), (std::vector<double>{5.0, 0.0, 0.0, 0.25}));
  EXPECT_EQ(k.scalar_inverses(), (std::vector<double>{0.2, 0.0, 0.0, 4.0}));
}

TEST(BlockDiagScalarTest, SingularScalarRejectedLikeDense) {
  BlockDiagMatrix k;
  EXPECT_THROW(k.add_scalar_block(0.0), CheckError);
  DenseMatrix zero(1, 1);
  EXPECT_THROW(k.add_block(zero), CheckError);
}

TEST(BlockDiagScalarTest, MixedScalarGeneralSolveMatchesDense) {
  Rng rng(42);
  BlockDiagMatrix k;
  k.add_scalar_block(2.5);
  k.add_block(cell_block(3, 6.0));
  k.add_scalar_block(0.75);
  const std::size_t n = k.size();
  DenseMatrix dense(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) dense(r, c) = k.entry(r, c);

  Vector rhs(n);
  for (double& v : rhs) v = rng.uniform(-1, 1);
  Vector solved, dense_solved, product, dense_product;
  k.solve(rhs, solved);
  ASSERT_TRUE(dense.solve(rhs, dense_solved));
  k.multiply(rhs, product);
  dense.multiply(rhs, dense_product);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(solved[i], dense_solved[i], 1e-10);
    EXPECT_NEAR(product[i], dense_product[i], 1e-12);
  }
}

}  // namespace
}  // namespace mch::linalg
