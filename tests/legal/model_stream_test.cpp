// Streamed-assembly identity tests: build_model (chunked, CSR-direct, with
// the union-find riding the constraint stream) must be *bitwise* identical
// to build_model_monolithic (the COO-staged reference oracle) on every
// design family the generator can produce — including the degenerate
// fault-injection designs and the production-scale variant families — and
// the partition streamed out of the build must equal partition_model run on
// the finished model. A second group pins the component-at-a-time solve
// schedule: toggling it must not change a single written-back position, and
// kMatch must stay bitwise equal to the monolithic solve either way.
#include <gtest/gtest.h>

#include <vector>

#include "gen/generator.h"
#include "legal/mmsim_legalizer.h"
#include "legal/model.h"
#include "legal/partition.h"
#include "legal/row_assign.h"

namespace mch::legal {
namespace {

// Exact (bitwise) equality of every model array. EXPECT_EQ on double
// vectors is deliberate: the streamed path must emit the same bits, not
// merely close values.
void expect_models_identical(const LegalizationModel& a,
                             const LegalizationModel& b) {
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.qp.p, b.qp.p);
  EXPECT_EQ(a.qp.b, b.qp.b);

  // CSR spine of B: the three arrays, not just the logical matrix.
  EXPECT_EQ(a.qp.B.rows(), b.qp.B.rows());
  EXPECT_EQ(a.qp.B.cols(), b.qp.B.cols());
  EXPECT_EQ(a.qp.B.row_ptr(), b.qp.B.row_ptr());
  EXPECT_EQ(a.qp.B.col_idx(), b.qp.B.col_idx());
  EXPECT_EQ(a.qp.B.values(), b.qp.B.values());

  // K block structure and payload (scalar fast-path arrays carry the 1×1
  // blocks; general blocks are compared entry-wise).
  ASSERT_EQ(a.qp.K.size(), b.qp.K.size());
  ASSERT_EQ(a.qp.K.block_count(), b.qp.K.block_count());
  EXPECT_EQ(a.qp.K.scalar_values(), b.qp.K.scalar_values());
  EXPECT_EQ(a.qp.K.scalar_inverses(), b.qp.K.scalar_inverses());
  for (std::size_t blk = 0; blk < a.qp.K.block_count(); ++blk) {
    ASSERT_EQ(a.qp.K.block_offset(blk), b.qp.K.block_offset(blk));
    ASSERT_EQ(a.qp.K.block_size(blk), b.qp.K.block_size(blk));
    ASSERT_EQ(a.qp.K.is_scalar_block(blk), b.qp.K.is_scalar_block(blk));
    if (a.qp.K.is_scalar_block(blk)) continue;
    const std::size_t off = a.qp.K.block_offset(blk);
    const std::size_t d = a.qp.K.block_size(blk);
    for (std::size_t r = 0; r < d; ++r)
      for (std::size_t c = 0; c < d; ++c)
        EXPECT_EQ(a.qp.K.entry(off + r, off + c),
                  b.qp.K.entry(off + r, off + c))
            << "K block " << blk << " (" << r << "," << c << ")";
  }

  // Bookkeeping arrays.
  ASSERT_EQ(a.variables.size(), b.variables.size());
  for (std::size_t v = 0; v < a.variables.size(); ++v) {
    EXPECT_EQ(a.variables[v].cell, b.variables[v].cell) << "variable " << v;
    EXPECT_EQ(a.variables[v].subrow, b.variables[v].subrow)
        << "variable " << v;
  }
  EXPECT_EQ(a.cell_first_var, b.cell_first_var);
  EXPECT_EQ(a.cell_var_count, b.cell_var_count);
  EXPECT_EQ(a.base_rows, b.base_rows);
  EXPECT_EQ(a.row_variables, b.row_variables);
  EXPECT_EQ(a.constraint_row, b.constraint_row);
}

void expect_partitions_identical(const ConstraintPartition& a,
                                 const ConstraintPartition& b) {
  EXPECT_EQ(a.variable_component, b.variable_component);
  EXPECT_EQ(a.constraint_component, b.constraint_component);
  EXPECT_EQ(a.component_variables, b.component_variables);
  EXPECT_EQ(a.component_constraints, b.component_constraints);
}

// Builds the model both ways on a copy of the design and checks model and
// streamed partition against the monolithic oracle.
void check_design(db::Design design) {
  const RowAssignment rows = assign_rows(design);
  ConstraintPartition streamed;
  const LegalizationModel model = build_model(design, rows, {}, &streamed);
  const LegalizationModel oracle = build_model_monolithic(design, rows);
  expect_models_identical(model, oracle);
  expect_partitions_identical(streamed, partition_model(oracle));
}

TEST(ModelStreamTest, MatchesMonolithicAcrossBenchmarkSuite) {
  gen::GeneratorOptions options;
  options.scale = 0.002;  // up to ~2.5k cells per spec; shapes preserved
  options.seed = 7;
  for (const gen::BenchmarkSpec& spec : gen::ispd2015_mch_suite()) {
    SCOPED_TRACE(spec.name);
    check_design(gen::generate_design(spec, options));
  }
}

TEST(ModelStreamTest, MatchesMonolithicOnDegenerateDesigns) {
  for (const gen::DegenerateMode mode :
       {gen::DegenerateMode::kNearSingularCoupling,
        gen::DegenerateMode::kInfeasibleRowCapacity,
        gen::DegenerateMode::kObstacleSaturatedRows}) {
    SCOPED_TRACE(gen::to_string(mode));
    check_design(gen::generate_degenerate_design(mode, 300, 3));
  }
}

TEST(ModelStreamTest, MatchesMonolithicOnScaleVariants) {
  for (const gen::ScaleVariant variant :
       {gen::ScaleVariant::kBaseline, gen::ScaleVariant::kObstacleHeavy,
        gen::ScaleVariant::kHighUtilization}) {
    SCOPED_TRACE(gen::to_string(variant));
    check_design(gen::generate_scale_design(variant, 2000, 11));
  }
}

TEST(ModelStreamTest, MatchesMonolithicWithObstaclesAndMixedHeights) {
  gen::GeneratorOptions options;
  options.seed = 5;
  options.fixed_macros = 12;
  check_design(gen::generate_random_design(1500, 300, 0.75, options));
}

TEST(ModelStreamTest, HandlesDesignWithNoMovableCells) {
  db::Chip chip;
  chip.num_rows = 2;
  chip.num_sites = 100;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  db::Design design(chip);
  db::Cell fixed;
  fixed.width = 20.0;
  fixed.gp_x = fixed.x = 10.0;
  fixed.gp_y = fixed.y = 0.0;
  fixed.fixed = true;
  design.add_cell(fixed);

  const RowAssignment rows = assign_rows(design);
  ConstraintPartition streamed;
  const LegalizationModel model = build_model(design, rows, {}, &streamed);
  const LegalizationModel oracle = build_model_monolithic(design, rows);
  EXPECT_EQ(model.num_variables(), 0u);
  EXPECT_EQ(model.qp.num_constraints(), 0u);
  expect_models_identical(model, oracle);
  expect_partitions_identical(streamed, partition_model(oracle));
  EXPECT_EQ(streamed.num_components(), 0u);
}

// partition_out of the full legalize must be the same canonical partition
// partition_model computes on the monolithic model — the legalizer streams
// it out of the build instead of re-walking B.
TEST(ModelStreamTest, LegalizerPartitionOutMatchesPartitionModel) {
  db::Design design = gen::generate_scale_design(
      gen::ScaleVariant::kObstacleHeavy, 1200, 17);
  db::Design reference = design;

  MmsimLegalizerOptions options;
  options.partition = PartitionMode::kTiered;
  ConstraintPartition out;
  options.partition_out = &out;
  mmsim_legalize_continuous(design, assign_rows(design), options);

  const RowAssignment rows = assign_rows(reference);
  const LegalizationModel oracle = build_model_monolithic(reference, rows);
  expect_partitions_identical(out, partition_model(oracle));
}

// Component-at-a-time scheduling must not change a single position: each
// component's solve depends only on its own sub-problem and workspace slot,
// so extract-solve-release largest-first and extract-everything-up-front
// write back identical bits.
TEST(ModelStreamTest, ComponentAtATimeToggleWritesIdenticalPositions) {
  for (const gen::ScaleVariant variant :
       {gen::ScaleVariant::kBaseline, gen::ScaleVariant::kObstacleHeavy}) {
    SCOPED_TRACE(gen::to_string(variant));
    db::Design streamed_design =
        gen::generate_scale_design(variant, 1500, 23);
    db::Design legacy_design = streamed_design;

    // Fresh arena per call: the default thread-local arena would carry the
    // first call's solutions into the second as warm starts, which is a
    // (legitimate) different starting point — not what this test pins.
    lcp::SolverWorkspace workspace_on, workspace_off;
    MmsimLegalizerOptions options;
    options.partition = PartitionMode::kTiered;
    options.component_at_a_time = true;
    options.workspace = &workspace_on;
    const MmsimLegalizerStats on = mmsim_legalize_continuous(
        streamed_design, assign_rows(streamed_design), options);

    options.component_at_a_time = false;
    options.workspace = &workspace_off;
    const MmsimLegalizerStats off = mmsim_legalize_continuous(
        legacy_design, assign_rows(legacy_design), options);

    EXPECT_EQ(on.converged, off.converged);
    EXPECT_EQ(on.num_components, off.num_components);
    EXPECT_EQ(on.component_iterations, off.component_iterations);
    ASSERT_EQ(streamed_design.num_cells(), legacy_design.num_cells());
    for (std::size_t c = 0; c < streamed_design.num_cells(); ++c) {
      EXPECT_EQ(streamed_design.cells()[c].x, legacy_design.cells()[c].x)
          << "cell " << c;
      EXPECT_EQ(streamed_design.cells()[c].y, legacy_design.cells()[c].y)
          << "cell " << c;
    }
  }
}

// kMatch ignores component_at_a_time (its lockstep driver needs every
// per-component solver alive at once) and must stay bitwise equal to the
// monolithic kOff solve with the flag in either state.
TEST(ModelStreamTest, MatchModeBitwiseEqualToOffUnderToggle) {
  db::Design off_design =
      gen::generate_scale_design(gen::ScaleVariant::kBaseline, 800, 29);
  db::Design match_design = off_design;
  db::Design match_legacy_design = off_design;

  MmsimLegalizerOptions options;
  options.partition = PartitionMode::kOff;
  mmsim_legalize_continuous(off_design, assign_rows(off_design), options);

  options.partition = PartitionMode::kMatch;
  options.component_at_a_time = true;
  mmsim_legalize_continuous(match_design, assign_rows(match_design), options);
  options.component_at_a_time = false;
  mmsim_legalize_continuous(match_legacy_design,
                            assign_rows(match_legacy_design), options);

  for (std::size_t c = 0; c < off_design.num_cells(); ++c) {
    EXPECT_EQ(match_design.cells()[c].x, off_design.cells()[c].x)
        << "cell " << c;
    EXPECT_EQ(match_legacy_design.cells()[c].x, off_design.cells()[c].x)
        << "cell " << c;
    EXPECT_EQ(match_design.cells()[c].y, off_design.cells()[c].y)
        << "cell " << c;
    EXPECT_EQ(match_legacy_design.cells()[c].y, off_design.cells()[c].y)
        << "cell " << c;
  }
}

}  // namespace
}  // namespace mch::legal
