// Reproduces Table 1 of the paper: benchmark statistics and the number of
// illegal cells remaining after the MMSIM legalization (before the
// Tetris-like allocation fixes them).
//
// Paper shape to verify: illegal ratios below ~0.1% except on the densest
// designs (des_perf_1 at 0.91, fft_1 at 0.84), suite average ≈ 0.03%.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/suite_runner.h"
#include "io/table.h"

int main(int argc, char** argv) {
  using namespace mch;
  const unsigned threads = bench::bench_threads(argc, argv);
  const gen::GeneratorOptions options = bench::bench_options();
  std::printf("Table 1 — illegal cells after MMSIM legalization "
              "(scale %.3f, seed %llu, threads %u)\n\n",
              options.scale,
              static_cast<unsigned long long>(options.seed), threads);

  io::Table table({"Benchmark", "#S. Cell", "#D. Cell", "Density", "#I. Cell",
                   "%I. Cell", "legal"});
  double illegal_ratio_sum = 0.0;
  std::size_t total_single = 0, total_double = 0, total_illegal = 0;
  double density_sum = 0.0;

  // One design per runtime task: the suite fans out across all cores.
  const std::vector<gen::BenchmarkSpec>& suite = gen::ispd2015_mch_suite();
  const std::vector<eval::RunResult> results =
      eval::SuiteRunner(options).run_cross(suite, {eval::Legalizer::kMmsim},
                                           {}, &std::cerr);
  std::cerr << "\n";

  bench::JsonSnapshot json("table1_illegal_cells");
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const eval::RunResult& result = results[i];
    json.add(suite[i].name, result.num_cells, result.seconds);
    const double ratio =
        static_cast<double>(result.illegal_after_solver) /
        static_cast<double>(result.num_cells);
    table.row()
        .cell(suite[i].name)
        .cell(result.num_single)
        .cell(result.num_double)
        .cell(result.density, 2)
        .cell(result.illegal_after_solver)
        .percent(ratio)
        .cell(result.legal ? "yes" : "NO");
    illegal_ratio_sum += ratio;
    total_single += result.num_single;
    total_double += result.num_double;
    total_illegal += result.illegal_after_solver;
    density_sum += result.density;
  }

  const double n = static_cast<double>(gen::ispd2015_mch_suite().size());
  table.row()
      .cell("Average")
      .cell(static_cast<std::size_t>(static_cast<double>(total_single) / n))
      .cell(static_cast<std::size_t>(static_cast<double>(total_double) / n))
      .cell(density_sum / n, 2)
      .cell(static_cast<std::size_t>(static_cast<double>(total_illegal) / n))
      .percent(illegal_ratio_sum / n)
      .cell("");

  std::cout << table.to_text() << "\n";
  std::cout << "Paper reference (full scale): average illegal ratio 0.03%; "
               "max 0.80% (des_perf_1), 0.57% (fft_1); zero on "
               "pci_bridge32_a/b.\n";
  mch::bench::print_peak_rss();
  json.write();
  return 0;
}
