#include "baselines/mixed_abacus.h"

#include <gtest/gtest.h>

#include "baselines/tetris.h"
#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "legal/tetris_alloc.h"

namespace mch::baselines {
namespace {

db::Design design_for(double density, std::uint64_t seed) {
  gen::GeneratorOptions opts;
  opts.seed = seed;
  return gen::generate_random_design(600, 70, density, opts);
}

TEST(MixedAbacusTest, ProducesLegalPlacementAfterSnap) {
  db::Design design = design_for(0.55, 91);
  const MixedAbacusStats stats = mixed_abacus_legalize(design);
  EXPECT_EQ(stats.failed_cells, 0u);
  legal::tetris_allocate(design);
  const db::LegalityReport report = db::check_legality(design);
  EXPECT_TRUE(report.legal()) << report.summary();
}

TEST(MixedAbacusTest, DenseDesignLegal) {
  db::Design design = design_for(0.9, 92);
  const MixedAbacusStats stats = mixed_abacus_legalize(design);
  EXPECT_EQ(stats.failed_cells, 0u);
  legal::tetris_allocate(design);
  EXPECT_TRUE(db::check_legality(design).legal());
}

TEST(MixedAbacusTest, ContinuousOutputOverlapFree) {
  db::Design design = design_for(0.7, 93);
  mixed_abacus_legalize(design);
  db::LegalityOptions options;
  options.require_site_alignment = false;
  options.tolerance = 1e-6;
  const db::LegalityReport report = db::check_legality(design, options);
  EXPECT_EQ(report.overlaps, 0u) << report.summary();
  EXPECT_EQ(report.rail_mismatches, 0u);
}

TEST(MixedAbacusTest, BeatsTetrisOnDenseDesigns) {
  // The cluster mechanics should clearly beat frontier packing, matching
  // the Table-2 ordering (ASP-DAC'17 well below Tetris-class greedy).
  double mixed_total = 0.0;
  double tetris_total = 0.0;
  for (std::uint64_t seed = 95; seed < 98; ++seed) {
    db::Design a = design_for(0.88, seed);
    db::Design b = a;
    mixed_abacus_legalize(a);
    legal::tetris_allocate(a);
    tetris_legalize(b);
    mixed_total += eval::displacement(a).total_sites;
    tetris_total += eval::displacement(b).total_sites;
  }
  EXPECT_LT(mixed_total, tetris_total);
}

TEST(MixedAbacusTest, SingleHeightOnlyDesignWorks) {
  gen::GeneratorOptions opts;
  opts.seed = 94;
  db::Design design = gen::generate_random_design(500, 0, 0.7, opts);
  mixed_abacus_legalize(design);
  legal::tetris_allocate(design);
  EXPECT_TRUE(db::check_legality(design).legal());
}

}  // namespace
}  // namespace mch::baselines
