#include "gp/quadratic_placer.h"

#include <gtest/gtest.h>

#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "legal/flow.h"
#include "util/check.h"
#include "util/rng.h"

namespace mch::gp {
namespace {

/// A design whose generator GP is discarded: only the netlist and cell
/// population matter; the placer must find positions on its own.
db::Design netlist_design(std::uint64_t seed, std::size_t cells = 600,
                          std::size_t macros = 0) {
  gen::GeneratorOptions options;
  options.seed = seed;
  options.fixed_macros = macros;
  db::Design design = gen::generate_random_design(
      cells - cells / 10, cells / 10, 0.5, options);
  // Scramble the positions so nothing of the generator's placement leaks.
  Rng rng(seed + 1000);
  for (db::Cell& cell : design.cells()) {
    if (cell.fixed) continue;
    cell.x = cell.gp_x = rng.uniform(0.0, design.chip().width() / 10.0);
    cell.y = cell.gp_y = rng.uniform(0.0, design.chip().height() / 10.0);
  }
  return design;
}

TEST(QuadraticPlacerTest, ProducesInChipPositions) {
  db::Design design = netlist_design(1);
  const GlobalPlacementStats stats = place(design);
  EXPECT_EQ(stats.iterations, GlobalPlacementOptions{}.iterations);
  for (const db::Cell& cell : design.cells()) {
    EXPECT_GE(cell.gp_x, 0.0);
    EXPECT_LE(cell.gp_x + cell.width, design.chip().width() + 1e-9);
    EXPECT_GE(cell.gp_y, 0.0);
    EXPECT_LE(cell.gp_y + static_cast<double>(cell.height_rows) *
                              design.chip().row_height,
              design.chip().height() + 1e-9);
  }
}

TEST(QuadraticPlacerTest, BeatsRandomPlacementOnHpwl) {
  db::Design design = netlist_design(2);
  // Random baseline wirelength.
  Rng rng(77);
  for (db::Cell& cell : design.cells()) {
    if (cell.fixed) continue;
    cell.x = rng.uniform(0.0, design.chip().width() - cell.width);
    cell.y = rng.uniform(0.0, design.chip().height() / 2.0);
  }
  const double random_hpwl = eval::hpwl(design);
  const GlobalPlacementStats stats = place(design);
  EXPECT_LT(stats.final_hpwl, 0.7 * random_hpwl);
}

TEST(QuadraticPlacerTest, SpreadingReducesOverlapWhileKeepingHpwlSane) {
  db::Design design = netlist_design(3);
  const GlobalPlacementStats stats = place(design);
  // The anchored solution must not collapse: the placement should span a
  // significant part of the chip.
  double min_x = 1e18, max_x = -1e18;
  for (const db::Cell& cell : design.cells()) {
    min_x = std::min(min_x, cell.gp_x);
    max_x = std::max(max_x, cell.gp_x + cell.width);
  }
  EXPECT_GT(max_x - min_x, design.chip().width() * 0.4);
  // Wirelength stays within a small factor of the unconstrained optimum.
  EXPECT_LT(stats.final_hpwl, 20.0 * stats.initial_hpwl + 1e-9);
}

TEST(QuadraticPlacerTest, OutputLegalizes) {
  db::Design design = netlist_design(4, 800);
  place(design);
  const legal::FlowResult result = legal::legalize(design);
  EXPECT_TRUE(result.legal) << result.legality.summary();
  // The legalization shock stays bounded: the GP is spread enough that
  // legalizing it costs a small multiple, not an order of magnitude (a
  // quadratic placer with a Tetris upper bound spreads less aggressively
  // than a production density-driven GP).
  EXPECT_LT(eval::delta_hpwl_fraction(design), 2.0);
}

TEST(QuadraticPlacerTest, FixedCellsAreAnchors) {
  db::Design design = netlist_design(5, 400, /*macros=*/3);
  std::vector<std::pair<double, double>> before;
  for (const db::Cell& cell : design.cells())
    if (cell.fixed) before.emplace_back(cell.x, cell.y);
  place(design);
  std::size_t k = 0;
  for (const db::Cell& cell : design.cells()) {
    if (!cell.fixed) continue;
    EXPECT_DOUBLE_EQ(cell.x, before[k].first);
    EXPECT_DOUBLE_EQ(cell.y, before[k].second);
    ++k;
  }
}

TEST(QuadraticPlacerTest, Deterministic) {
  db::Design a = netlist_design(6);
  db::Design b = netlist_design(6);
  place(a);
  place(b);
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells()[i].gp_x, b.cells()[i].gp_x);
    EXPECT_DOUBLE_EQ(a.cells()[i].gp_y, b.cells()[i].gp_y);
  }
}

TEST(QuadraticPlacerTest, RequiresNetlist) {
  gen::GeneratorOptions options;
  options.seed = 7;
  options.nets_per_cell = 0.0;
  db::Design design = gen::generate_random_design(50, 5, 0.5, options);
  EXPECT_THROW(place(design), CheckError);
}

}  // namespace
}  // namespace mch::gp
