#include "lcp/psor.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mch::lcp {

PsorResult solve_psor(const DenseLcp& problem, const PsorOptions& options) {
  PsorResult result;
  const PsorRunStats stats = solve_psor_in(problem, options, result.z);
  result.iterations = stats.iterations;
  result.converged = stats.converged;
  return result;
}

PsorRunStats solve_psor_in(const DenseLcp& problem, const PsorOptions& options,
                           Vector& z, bool warm_start) {
  const std::size_t n = problem.size();
  MCH_CHECK(options.omega > 0.0 && options.omega < 2.0);
  for (std::size_t i = 0; i < n; ++i)
    MCH_CHECK_MSG(problem.A(i, i) > 0.0, "PSOR needs a positive diagonal");

  if (!(warm_start && z.size() == n)) z.assign(n, 0.0);

  PsorRunStats stats;
  for (std::size_t k = 0; k < options.max_iterations; ++k) {
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double row = problem.q[i];
      for (std::size_t j = 0; j < n; ++j) row += problem.A(i, j) * z[j];
      const double updated =
          std::max(0.0, z[i] - options.omega * row / problem.A(i, i));
      delta = std::max(delta, std::abs(updated - z[i]));
      z[i] = updated;
    }
    stats.iterations = k + 1;
    if (delta < options.tolerance) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

}  // namespace mch::lcp
