// Shared configuration for the experiment harness binaries.
//
// Every table/figure bench regenerates its paper artifact on the synthetic
// suite. The suite scale is configurable so the whole harness runs in
// minutes by default yet can be pushed to the paper's full benchmark sizes:
//
//   MCH_BENCH_SCALE   fraction of each benchmark's published cell count
//                     (default 0.05; 1.0 = full scale, superblue12 ≈ 1.29M
//                     cells)
//   MCH_BENCH_SEED    generator seed (default 1)
//
// Thread count is shared with the rest of the harness: every bench accepts
// --threads N (and the MCH_THREADS environment variable) via
// bench_threads(), which forwards to runtime/options.h so examples, tools
// and benches all parse the knob identically.
//
// Experiment shapes (who wins, by what factor, where the crossovers are)
// are scale-invariant; see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "gen/generator.h"
#include "linalg/simd.h"
#include "runtime/options.h"
#include "runtime/runtime.h"
#include "util/rss.h"

namespace mch::bench {

/// The CMake build type the bench binary was compiled under (stamped by
/// bench/CMakeLists.txt). results/*.txt snapshots must say "Release" — the
/// bench build refuses to configure as Debug for exactly this reason.
inline const char* bench_build_type() {
#ifdef MCH_BUILD_TYPE
  return MCH_BUILD_TYPE;
#else
  return "unknown";
#endif
}

/// Prints the provenance header every bench emits at the top of its output
/// (and thus into its results/*.txt snapshot): build type, scale, seed.
inline void print_bench_banner(const char* name) {
  std::printf("# %s — build: %s, MCH_BENCH_SCALE=%s, MCH_BENCH_SEED=%s\n",
              name, bench_build_type(),
              std::getenv("MCH_BENCH_SCALE") ? std::getenv("MCH_BENCH_SCALE")
                                             : "(default)",
              std::getenv("MCH_BENCH_SEED") ? std::getenv("MCH_BENCH_SEED")
                                            : "(default)");
}

/// Configures the global Runtime from --threads/MCH_THREADS and returns the
/// resolved thread count. Call first thing in main(). Also stamps the
/// build-type provenance line into the output (every results/*.txt snapshot
/// starts with it).
inline unsigned bench_threads(int argc, char* const* argv) {
  const unsigned threads = runtime::configure_threads_from_cli(argc, argv);
  std::printf("# build: %s, threads: %u\n", bench_build_type(), threads);
  return threads;
}

/// Prints the process peak-RSS line every bench emits last (and thus into
/// the tail of its results/*.txt snapshot). getrusage's high-water mark is
/// process-monotone, so this covers the biggest design the bench touched.
inline void print_peak_rss() {
  std::printf("# peak RSS: %.1f MB\n", util::peak_rss_mb());
}

inline double bench_scale() {
  if (const char* env = std::getenv("MCH_BENCH_SCALE")) {
    const double value = std::atof(env);
    if (value > 0.0 && value <= 1.0) return value;
  }
  return 0.05;
}

inline std::uint64_t bench_seed() {
  if (const char* env = std::getenv("MCH_BENCH_SEED")) {
    const long long value = std::atoll(env);
    if (value > 0) return static_cast<std::uint64_t>(value);
  }
  return 1;
}

inline gen::GeneratorOptions bench_options() {
  gen::GeneratorOptions options;
  options.scale = bench_scale();
  options.seed = bench_seed();
  return options;
}

/// Machine-readable sibling of a results/*.txt snapshot. Each record is one
/// measured case (a benchmark design or a google-benchmark run); the file
/// carries the same provenance the text banner does — build type, active
/// SIMD level, thread count — plus the process peak RSS at write time.
///
/// write() lands in `results/` relative to the working directory (the
/// EXPERIMENTS.md commands run from the repo root); MCH_BENCH_JSON_DIR
/// overrides the directory. A missing directory skips the write silently so
/// ad-hoc runs from other directories do not fail or litter.
class JsonSnapshot {
 public:
  explicit JsonSnapshot(std::string bench) : bench_(std::move(bench)) {}

  void add(std::string name, std::size_t cells, double seconds) {
    records_.push_back({std::move(name), cells, seconds});
  }

  bool write() const {
    const char* dir = std::getenv("MCH_BENCH_JSON_DIR");
    const std::string path =
        std::string(dir != nullptr ? dir : "results") + "/" + bench_ +
        ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f,
                 "{\n"
                 "  \"schema\": \"mch-bench/1\",\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"build\": \"%s\",\n"
                 "  \"simd\": \"%s\",\n"
                 "  \"threads\": %u,\n"
                 "  \"peak_rss_mb\": %.1f,\n"
                 "  \"records\": [\n",
                 bench_.c_str(), bench_build_type(),
                 linalg::simd_level_name(linalg::simd_level()),
                 runtime::Runtime::instance().threads(),
                 util::peak_rss_mb());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"cells\": %zu, "
                   "\"seconds\": %.6f}%s\n",
                   r.name.c_str(), r.cells, r.seconds,
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Record {
    std::string name;
    std::size_t cells = 0;
    double seconds = 0.0;
  };
  std::string bench_;
  std::vector<Record> records_;
};

}  // namespace mch::bench
