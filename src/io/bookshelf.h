// Bookshelf placement format (UCLA .aux/.nodes/.nets/.pl/.scl), the
// interchange format of the ISPD placement contests whose 2015 edition the
// paper's benchmarks derive from.
//
// Reading maps a Bookshelf design onto the internal model:
//   * the .scl core rows must be uniform (equal height, site width and
//     count) — true for the ISPD sets; coordinates are shifted so the
//     bottom-left row origin is (0, 0);
//   * node heights must be integer multiples of the row height for movable
//     nodes (mixed-cell-height benchmarks satisfy this); terminals /FIXED
//     nodes become fixed obstacle cells at their .pl positions;
//   * even-row-height movable nodes get the bottom-rail type of their
//     nearest legal row, making the loaded GP rail-feasible (Bookshelf has
//     no rail notion; the paper's modified benchmarks construct it the
//     same way);
//   * .nets pin offsets (Bookshelf measures from the node center) are
//     converted to bottom-left-relative offsets.
//
// Writing produces a complete five-file bundle readable by this loader and
// by standard Bookshelf tools; save_bookshelf_pl writes just the .pl (the
// contest convention for returning placement results).
#pragma once

#include <string>

#include "db/design.h"

namespace mch::io {

/// Loads a design from a Bookshelf .aux file. Throws CheckError on
/// malformed input or unsupported (non-uniform-row) geometry.
db::Design load_bookshelf(const std::string& aux_path);

/// Writes <directory>/<name>.{aux,nodes,nets,pl,scl,wts}.
void save_bookshelf(const std::string& directory, const std::string& name,
                    const db::Design& design);

/// Writes a .pl file with the design's current placement.
void save_bookshelf_pl(const std::string& path, const db::Design& design);

}  // namespace mch::io
