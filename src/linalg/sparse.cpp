#include "linalg/sparse.h"

#include "util/check.h"

namespace mch::linalg {

void CooMatrix::add(std::size_t row, std::size_t col, double value) {
  MCH_CHECK_MSG(row < rows_ && col < cols_,
                "COO entry (" << row << "," << col << ") out of " << rows_
                              << "x" << cols_);
  row_idx_.push_back(row);
  col_idx_.push_back(col);
  values_.push_back(value);
}

}  // namespace mch::linalg
