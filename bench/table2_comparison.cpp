// Reproduces Table 2 of the paper: total displacement (sites), ΔHPWL, and
// runtime of four mixed-cell-height legalizers over the 20-benchmark suite,
// with normalized averages in the last row.
//
// Method mapping (reimplementations; see DESIGN.md §4):
//   DAC'16       → local          (Chow–Pui–Young-style local legalizer)
//   DAC'16-Imp   → local-imp      (+ ripple refinement)
//   ASP-DAC'17   → mixed-abacus   (Wang et al.-style extended Abacus)
//   Ours         → mmsim          (the paper's algorithm)
//
// Paper shape to verify: "Ours" smallest normalized displacement (1.16 /
// 1.10 / 1.06 / 1.00 in the paper) and smallest ΔHPWL (1.72 / 1.41 / 1.22 /
// 1.00), with runtime the same order of magnitude as the local methods.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "eval/suite_runner.h"
#include "io/table.h"

int main(int argc, char** argv) {
  using namespace mch;
  const unsigned threads = bench::bench_threads(argc, argv);
  const gen::GeneratorOptions options = bench::bench_options();
  std::printf("Table 2 — legalizer comparison (scale %.3f, seed %llu, "
              "threads %u)\n\n",
              options.scale,
              static_cast<unsigned long long>(options.seed), threads);

  const std::vector<eval::Legalizer> methods = {
      eval::Legalizer::kLocalBase, eval::Legalizer::kLocalImproved,
      eval::Legalizer::kMixedAbacus, eval::Legalizer::kMmsim};
  const std::vector<std::string> labels = {"DAC'16", "DAC'16-Imp",
                                           "ASP-DAC'17", "Ours"};

  std::vector<std::string> headers = {"Benchmark", "GP HPWL"};
  for (const std::string& label : labels) headers.push_back("Disp " + label);
  for (const std::string& label : labels) headers.push_back("dHPWL " + label);
  for (const std::string& label : labels) headers.push_back("Time(s) " + label);
  io::Table table(headers);

  // Normalized-average accumulators (normalize to "Ours" per benchmark,
  // exactly as the paper's last row does).
  std::vector<double> disp_ratio_sum(methods.size(), 0.0);
  std::vector<double> hpwl_ratio_sum(methods.size(), 0.0);
  std::vector<double> time_ratio_sum(methods.size(), 0.0);
  bool all_legal = true;

  // All (benchmark × method) runs fan out across the runtime's cores; the
  // results come back in row-major (spec, method) order.
  const std::vector<gen::BenchmarkSpec>& suite = gen::ispd2015_mch_suite();
  const std::vector<eval::RunResult> all_results =
      eval::SuiteRunner(options).run_cross(suite, methods, {}, &std::cerr);
  std::cerr << "\n";

  bench::JsonSnapshot json("table2_comparison");
  for (std::size_t s = 0; s < suite.size(); ++s) {
    const eval::RunResult* results = &all_results[s * methods.size()];
    for (std::size_t m = 0; m < methods.size(); ++m) {
      all_legal = all_legal && results[m].legal;
      json.add(suite[s].name + "/" + labels[m], results[m].num_cells,
               results[m].seconds);
    }
    const eval::RunResult& ours = results[methods.size() - 1];

    table.row().cell(suite[s].name).cell(ours.gp_hpwl / 1e6, 3);
    for (std::size_t m = 0; m < methods.size(); ++m)
      table.cell(results[m].disp.total_sites, 0);
    for (std::size_t m = 0; m < methods.size(); ++m)
      table.percent(results[m].delta_hpwl);
    for (std::size_t m = 0; m < methods.size(); ++m)
      table.cell(results[m].seconds, 2);

    for (std::size_t m = 0; m < methods.size(); ++m) {
      disp_ratio_sum[m] +=
          results[m].disp.total_sites / ours.disp.total_sites;
      hpwl_ratio_sum[m] +=
          ours.delta_hpwl > 0.0 ? results[m].delta_hpwl / ours.delta_hpwl
                                : 1.0;
      time_ratio_sum[m] += results[m].seconds / ours.seconds;
    }
  }

  const double n = static_cast<double>(gen::ispd2015_mch_suite().size());
  table.row().cell("N. Average").cell("");
  for (std::size_t m = 0; m < methods.size(); ++m)
    table.cell(disp_ratio_sum[m] / n, 2);
  for (std::size_t m = 0; m < methods.size(); ++m)
    table.cell(hpwl_ratio_sum[m] / n, 2);
  for (std::size_t m = 0; m < methods.size(); ++m)
    table.cell(time_ratio_sum[m] / n, 2);

  std::cout << table.to_text() << "\n";

  // Constraint-graph decomposition of the "Ours" runs: how many independent
  // sub-problems the solver fanned out, and the iteration total across them
  // (under tiered partitioning this is what independent termination saves
  // versus running every component to the slowest one's count).
  // The incremental columns (dirty/reused/warm rate) report the resident
  // session's bookkeeping when the run was served through one (MCH_SESSION=1
  // routes eval::run_legalizer that way); a full solve re-solves every
  // component, so they only become non-zero for incremental ECO serving —
  // see bench/service_throughput.cpp for the request-stream numbers.
  io::Table decomposition({"Benchmark", "Components", "Largest", "Mean size",
                           "Iters (max)", "Iters (sum)", "Dirty", "Reused",
                           "Warm rate"});
  for (std::size_t s = 0; s < suite.size(); ++s) {
    const eval::RunResult& ours =
        all_results[s * methods.size() + methods.size() - 1];
    if (ours.solver_components == 0) continue;  // monolithic run
    decomposition.row()
        .cell(suite[s].name)
        .cell(static_cast<double>(ours.solver_components), 0)
        .cell(static_cast<double>(ours.solver_max_component), 0)
        .cell(ours.solver_mean_component, 2)
        .cell(static_cast<double>(ours.solver_iterations), 0)
        .cell(static_cast<double>(ours.solver_component_iterations), 0)
        .cell(static_cast<double>(ours.session_dirty_components), 0)
        .cell(static_cast<double>(ours.session_reused_components), 0)
        .cell(ours.session_warm_rate, 2);
  }
  std::cout << "Solver decomposition (Ours):\n"
            << decomposition.to_text() << "\n";

  std::cout << (all_legal ? "All placements verified legal.\n"
                          : "WARNING: some placements were ILLEGAL — "
                            "metrics above are not comparable!\n");
  std::cout << "Paper reference (full scale): N.Average disp 1.16 / 1.10 / "
               "1.06 / 1.00; dHPWL 1.72 / 1.41 / 1.22 / 1.00; time 1.02 / "
               "0.97 / 1.96 / 1.00.\n";
  mch::bench::print_peak_rss();
  json.write();
  return all_legal ? 0 : 1;
}
