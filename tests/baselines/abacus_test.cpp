#include "baselines/abacus.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "db/legality.h"
#include "gen/generator.h"
#include "legal/tetris_alloc.h"
#include "util/rng.h"

namespace mch::baselines {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PlaceRowTest, NoOverlapKeepsTargets) {
  const std::vector<PlaceRowCell> cells = {{0, 2}, {5, 2}, {10, 2}};
  const std::vector<double> x = place_row(cells);
  EXPECT_EQ(x, (std::vector<double>{0, 5, 10}));
}

TEST(PlaceRowTest, TwoOverlappingCellsSplitTheMove) {
  // Targets 0 and 1, widths 2: optimal cluster center splits the overlap:
  // minimize (x−0)² + (x+2−1)² → x = −0.5, clamped to min_x = −inf? With
  // min_x = −10 the exact optimum −0.5 is feasible.
  const std::vector<PlaceRowCell> cells = {{0, 2}, {1, 2}};
  const std::vector<double> x = place_row(cells, -10.0);
  EXPECT_NEAR(x[0], -0.5, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(PlaceRowTest, LeftBoundaryClamps) {
  const std::vector<PlaceRowCell> cells = {{-5, 3}};
  const std::vector<double> x = place_row(cells, 0.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(PlaceRowTest, RightBoundaryClamps) {
  const std::vector<PlaceRowCell> cells = {{98, 5}};
  const std::vector<double> x = place_row(cells, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(x[0], 95.0);
}

TEST(PlaceRowTest, RelaxedRightBoundaryAllowsOverflow) {
  const std::vector<PlaceRowCell> cells = {{98, 5}};
  const std::vector<double> x = place_row(cells, 0.0, kInf);
  EXPECT_DOUBLE_EQ(x[0], 98.0);
}

TEST(PlaceRowTest, ChainCollapse) {
  // Three cells all targeting the same spot: the cluster centers on the
  // weighted mean minus offsets.
  const std::vector<PlaceRowCell> cells = {{10, 2}, {10, 2}, {10, 2}};
  const std::vector<double> x = place_row(cells, -100.0);
  // Cluster: min Σ (x + off_i − 10)², offs {0,2,4} → x = 10 − 2 = 8.
  EXPECT_NEAR(x[0], 8.0, 1e-12);
  EXPECT_NEAR(x[1], 10.0, 1e-12);
  EXPECT_NEAR(x[2], 12.0, 1e-12);
}

TEST(PlaceRowTest, WeightsBiasTheCluster) {
  const std::vector<PlaceRowCell> cells = {{0, 2, 3.0}, {0, 2, 1.0}};
  const std::vector<double> x = place_row(cells, -100.0);
  // min 3x² + (x+2)² → x = −0.5.
  EXPECT_NEAR(x[0], -0.5, 1e-12);
}

TEST(PlaceRowTest, SolutionIsFeasibleAndOrdered) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<PlaceRowCell> cells;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 30));
    double target = 0.0;
    for (int i = 0; i < n; ++i) {
      target += rng.uniform(0.0, 6.0);
      cells.push_back({target, rng.uniform(1.0, 5.0)});
    }
    const std::vector<double> x = place_row(cells, 0.0, 120.0);
    for (int i = 0; i < n; ++i) EXPECT_GE(x[i], -1e-12);
    for (int i = 0; i + 1 < n; ++i)
      EXPECT_GE(x[i + 1] - x[i] + 1e-12, cells[i].width);
  }
}

TEST(PlaceRowTest, OptimalityAgainstPerturbations) {
  // KKT-style check: no small feasible perturbation improves the objective.
  Rng rng(4);
  std::vector<PlaceRowCell> cells;
  double t = 0.0;
  for (int i = 0; i < 12; ++i) {
    t += rng.uniform(0.0, 4.0);
    cells.push_back({t, rng.uniform(1.0, 3.0)});
  }
  const std::vector<double> x = place_row(cells, 0.0, 40.0);
  const double base = place_row_objective(cells, x);
  Rng perturb(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> y = x;
    for (double& v : y) v += perturb.uniform(-0.05, 0.05);
    bool feasible = y.front() >= 0.0 && y.back() + cells.back().width <= 40.0;
    for (std::size_t i = 0; i + 1 < y.size() && feasible; ++i)
      feasible = y[i + 1] - y[i] >= cells[i].width;
    if (feasible) {
      EXPECT_GE(place_row_objective(cells, y), base - 1e-9);
    }
  }
}

TEST(AbacusTest, LegalizesSingleHeightDesign) {
  gen::GeneratorOptions opts;
  opts.seed = 21;
  db::Design design = gen::generate_random_design(500, 0, 0.6, opts);
  const AbacusStats stats = abacus_legalize(design);
  EXPECT_EQ(stats.failed_cells, 0u);
  // Abacus output is continuous; snap and check.
  legal::tetris_allocate(design);
  const db::LegalityReport report = db::check_legality(design);
  EXPECT_TRUE(report.legal()) << report.summary();
}

TEST(AbacusTest, RejectsMultiHeightCells) {
  gen::GeneratorOptions opts;
  opts.seed = 22;
  db::Design design = gen::generate_random_design(20, 5, 0.5, opts);
  EXPECT_THROW(abacus_legalize(design), CheckError);
  EXPECT_THROW(placerow_legalize_fixed_rows(design), CheckError);
}

TEST(AbacusTest, DenseDesignStillLegal) {
  gen::GeneratorOptions opts;
  opts.seed = 23;
  db::Design design = gen::generate_random_design(800, 0, 0.9, opts);
  const AbacusStats stats = abacus_legalize(design);
  EXPECT_EQ(stats.failed_cells, 0u);
  legal::tetris_allocate(design);
  EXPECT_TRUE(db::check_legality(design).legal());
}

TEST(PlaceRowFixedRowsTest, KeepsRowAssignment) {
  gen::GeneratorOptions opts;
  opts.seed = 24;
  db::Design design = gen::generate_random_design(300, 0, 0.5, opts);
  placerow_legalize_fixed_rows(design);
  for (const db::Cell& cell : design.cells()) {
    const std::size_t nearest = design.nearest_row(cell.gp_y, 1);
    EXPECT_DOUBLE_EQ(cell.y, design.chip().row_y(nearest));
  }
}

TEST(PlaceRowFixedRowsTest, RelaxedRightBoundaryMayOverflow) {
  // With clamping on, everything stays inside; with it off, cells may pass
  // the right edge (that is the relaxation the MMSIM formulation uses).
  gen::GeneratorOptions opts;
  opts.seed = 25;
  db::Design clamped = gen::generate_random_design(400, 0, 0.9, opts);
  db::Design relaxed = clamped;
  placerow_legalize_fixed_rows(clamped, /*clamp_right_boundary=*/true);
  placerow_legalize_fixed_rows(relaxed, /*clamp_right_boundary=*/false);
  for (const db::Cell& cell : clamped.cells())
    EXPECT_LE(cell.x + cell.width, clamped.chip().width() + 1e-9);
}

}  // namespace
}  // namespace mch::baselines
