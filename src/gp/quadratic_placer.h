// Quadratic global placement (SimPL-style lower/upper-bound iteration).
//
// The paper's input is "a global placement result, which computes the best
// position for each cell by ignoring overlaps" — this module produces such
// inputs from a netlist alone, completing the GP → legalization → detailed
// placement flow the paper sits in:
//
//   * lower bound: minimize quadratic wirelength — the clique-model graph
//     Laplacian over the netlist, with fixed cells as true anchors — plus
//     pseudo-anchor springs toward the last upper-bound (spread) placement,
//     solved per axis with Jacobi-preconditioned conjugate gradient;
//   * upper bound: a fast rough spreading of the lower-bound placement (the
//     Tetris frontier heuristic), which supplies the next anchors;
//   * the anchor weight grows linearly per iteration, so the solution
//     interpolates from pure wirelength optimality toward spreadness.
//
// The final *lower-bound* placement is returned as the GP (overlapping,
// off-grid — exactly what a legalizer consumes).
#pragma once

#include <cstddef>

#include "db/design.h"

namespace mch::gp {

struct GlobalPlacementOptions {
  std::size_t iterations = 16;      ///< lower/upper-bound rounds
  /// α_k = step · k. Our upper-bound spreader is a plain Tetris pass (no
  /// density-driven lookahead), so a stronger-than-SimPL schedule is needed
  /// to pull the quadratic blob apart; 0.2 balances wirelength against the
  /// legalization shock (see tests).
  double anchor_weight_step = 0.2;
  std::size_t max_clique_pins = 6;  ///< larger nets use a star model
  std::size_t cg_max_iterations = 300;
  double cg_tolerance = 1e-6;
};

struct GlobalPlacementStats {
  double initial_hpwl = 0.0;   ///< at the first unconstrained solution
  double final_hpwl = 0.0;     ///< of the returned GP
  double spread_hpwl = 0.0;    ///< of the last upper-bound (legal-ish) one
  std::size_t iterations = 0;
  double seconds = 0.0;
};

/// Computes a global placement for the design's netlist, writing the
/// result into gp_x/gp_y (and x/y). Fixed cells are anchors and do not
/// move. Requires a non-empty netlist.
GlobalPlacementStats place(db::Design& design,
                           const GlobalPlacementOptions& options = {});

}  // namespace mch::gp
