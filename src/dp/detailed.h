// Legality-preserving detailed placement.
//
// The paper slots into the flow  global placement → legalization →
// detailed placement; its follow-up consumers (e.g. MrDP [12], which runs
// this very legalizer first) refine the legal placement for wirelength.
// This module implements the three classic legality-preserving moves so
// the repository covers that downstream stage:
//
//   * local reorder — sliding windows of consecutive single-height cells in
//     a row are re-permuted (exhaustively, windows are small) when a
//     permutation lowers HPWL;
//   * vertical swap — equal-footprint single-height cells in nearby rows
//     exchange positions when that lowers HPWL;
//   * optimal shift — each cell independently slides to the HPWL-optimal
//     x (the median of its incident nets' target interval endpoints),
//     clamped to its free gap and the site grid.
//
// Every move is validated against an occupancy model, so the output is
// legal whenever the input is. Deterministic sweep order.
#pragma once

#include <cstddef>

#include "db/design.h"

namespace mch::dp {

struct DetailedPlacementOptions {
  std::size_t max_passes = 3;   ///< full sweeps (stops early at no-change)
  std::size_t window = 3;       ///< cells per reorder window (≤ 4 sensible)
  bool enable_reorder = true;
  bool enable_vertical_swaps = true;
  bool enable_shift = true;
  /// Rows examined on each side for vertical swap partners.
  std::size_t swap_row_radius = 2;
};

struct DetailedPlacementStats {
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
  std::size_t reorder_moves = 0;
  std::size_t swap_moves = 0;
  std::size_t shift_moves = 0;
  std::size_t passes = 0;
  double seconds = 0.0;

  double improvement_fraction() const {
    return hpwl_before > 0.0 ? (hpwl_before - hpwl_after) / hpwl_before
                             : 0.0;
  }
};

/// Refines the (legal) current placement in place. Fixed cells never move.
DetailedPlacementStats refine(db::Design& design,
                              const DetailedPlacementOptions& options = {});

}  // namespace mch::dp
