// The legalization quadratic program and its KKT-derived structured LCP.
//
// Problem (13) of the paper:
//
//     min  ½ xᵀ K x + pᵀ x     with  K = Q + λEᵀE  (block diagonal SPD)
//     s.t. B x >= b,  x >= 0
//
// Its KKT conditions are exactly the LCP(q, A) with the bisymmetric
// positive-semidefinite saddle matrix
//
//     A = [ K  −Bᵀ ]        q = [  p ]        z = [ x ]
//         [ B   0  ]            [ −b ]            [ r ]
//
// (Theorem 1 / Eq. (15) of the paper). This header holds the QP value type
// shared by the MMSIM solver, the reference solvers, and the tests.
#pragma once

#include <cstddef>

#include "linalg/block_diag.h"
#include "linalg/sparse.h"
#include "linalg/vector_ops.h"
#include "lcp/lcp.h"

namespace mch::lcp {

using linalg::BlockDiagMatrix;
using linalg::CsrMatrix;
using linalg::Vector;

/// Convex QP with block-diagonal SPD Hessian and sparse inequality rows.
struct StructuredQp {
  BlockDiagMatrix K;  ///< Hessian Q + λEᵀE; one block per cell.
  Vector p;           ///< linear term, p_i = −x'_i (negated GP position)
  CsrMatrix B;        ///< spacing constraints, ≤ 2 nonzeros (−1, +1) per row
  Vector b;           ///< right-hand sides (left-neighbor widths)

  std::size_t num_variables() const { return p.size(); }
  std::size_t num_constraints() const { return b.size(); }
  /// Dimension of the KKT LCP: variables + constraints.
  std::size_t lcp_size() const { return num_variables() + num_constraints(); }

  /// Objective value ½xᵀKx + pᵀx.
  double objective(const Vector& x) const;

  /// max(0, b_i − (Bx)_i) over constraint rows — inequality violation.
  double max_constraint_violation(const Vector& x) const;

  /// y = A z + q for the KKT saddle LCP, without materializing A.
  void lcp_apply(const Vector& z, Vector& y) const;

  /// Residuals of z as a solution of the KKT LCP.
  LcpResidual lcp_residual(const Vector& z) const;

  /// Materializes the KKT LCP densely (tests / small instances only).
  DenseLcp to_dense_lcp() const;
};

}  // namespace mch::lcp
