#include "baselines/tetris.h"

#include <gtest/gtest.h>

#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"

namespace mch::baselines {
namespace {

db::Design design_for(double density, std::uint64_t seed,
                      std::size_t singles = 400, std::size_t doubles = 50) {
  gen::GeneratorOptions opts;
  opts.seed = seed;
  return gen::generate_random_design(singles, doubles, density, opts);
}

TEST(TetrisBaselineTest, ProducesLegalPlacement) {
  db::Design design = design_for(0.5, 61);
  const TetrisLegalizerStats stats = tetris_legalize(design);
  EXPECT_EQ(stats.failed_cells, 0u);
  const db::LegalityReport report = db::check_legality(design);
  EXPECT_TRUE(report.legal()) << report.summary();
}

TEST(TetrisBaselineTest, DenseDesignLegal) {
  db::Design design = design_for(0.9, 62);
  const TetrisLegalizerStats stats = tetris_legalize(design);
  EXPECT_EQ(stats.failed_cells, 0u);
  EXPECT_TRUE(db::check_legality(design).legal());
}

TEST(TetrisBaselineTest, NeverMovesCellsLeftOfEarlierCells) {
  // Structural Tetris property: scanning cells in placement x-order per
  // row, positions never decrease (frontier packing). The fix-up pass can
  // violate this only for cells it relocates; at moderate density there are
  // none.
  db::Design design = design_for(0.4, 63);
  tetris_legalize(design);
  EXPECT_TRUE(db::check_legality(design).legal());
}

TEST(TetrisBaselineTest, SparseDesignNearZeroXDisplacement) {
  db::Design design = design_for(0.1, 64, 100, 10);
  tetris_legalize(design);
  const eval::DisplacementStats disp = eval::displacement(design);
  // Frontier ≈ empty: every cell lands at (or next site right of) its GP x.
  EXPECT_LT(disp.total_x_sites / static_cast<double>(design.num_cells()),
            2.0);
}

TEST(TetrisBaselineTest, RespectsRailsForDoubles) {
  db::Design design = design_for(0.5, 65, 50, 200);
  tetris_legalize(design);
  const db::LegalityReport report = db::check_legality(design);
  EXPECT_EQ(report.rail_mismatches, 0u) << report.summary();
}

}  // namespace
}  // namespace mch::baselines
