// End-to-end determinism: sparse products, the MMSIM solver, the full
// legalization flow and the evaluation suite must produce bitwise-identical
// results at 1 thread and at N threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "eval/suite_runner.h"
#include "gen/generator.h"
#include "lcp/mmsim.h"
#include "legal/flow.h"
#include "legal/model.h"
#include "legal/row_assign.h"
#include "linalg/sparse.h"
#include "runtime/runtime.h"

namespace mch {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { runtime::Runtime::configure(1); }
};

linalg::CsrMatrix random_csr(std::size_t rows, std::size_t cols,
                             std::size_t nnz_per_row, std::uint64_t seed) {
  linalg::CooMatrix coo(rows, cols);
  std::uint64_t state = seed;
  const auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 11;
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t k = 0; k < nnz_per_row; ++k)
      coo.add(r, next() % cols,
              static_cast<double>(next() % 2000) / 1000.0 - 1.0);
  return linalg::CsrMatrix::from_coo(coo);
}

linalg::Vector random_vector(std::size_t n, std::uint64_t seed) {
  linalg::Vector v(n);
  std::uint64_t state = seed;
  for (double& x : v) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    x = static_cast<double>(state >> 11) / static_cast<double>(1ULL << 53) -
        0.5;
  }
  return v;
}

TEST_F(DeterminismTest, SparseProductsBitwiseIdentical1VsN) {
  const linalg::CsrMatrix a = random_csr(311, 203, 5, 99);
  const linalg::Vector x = random_vector(203, 1);
  const linalg::Vector xt = random_vector(311, 2);

  runtime::Runtime::configure(1);
  linalg::Vector y1, y1_add = random_vector(311, 3);
  linalg::Vector t1, t1_add = random_vector(203, 4);
  a.multiply(x, y1);
  a.multiply_add(0.5, x, y1_add);
  a.multiply_transpose(xt, t1);
  a.multiply_transpose_add(-2.0, xt, t1_add);

  runtime::Runtime::configure(4);
  linalg::Vector y4, y4_add = random_vector(311, 3);
  linalg::Vector t4, t4_add = random_vector(203, 4);
  a.multiply(x, y4);
  a.multiply_add(0.5, x, y4_add);
  a.multiply_transpose(xt, t4);
  a.multiply_transpose_add(-2.0, xt, t4_add);

  ASSERT_EQ(y1, y4);
  ASSERT_EQ(y1_add, y4_add);
  ASSERT_EQ(t1, t4);
  ASSERT_EQ(t1_add, t4_add);
}

TEST_F(DeterminismTest, TransposeProductsIdenticalOnFreshCopies) {
  // The lazily built gather view must not change results whether it is
  // built serially, in parallel, or inherited from a copy.
  const linalg::CsrMatrix a = random_csr(200, 150, 4, 5);
  const linalg::Vector x = random_vector(200, 6);

  runtime::Runtime::configure(1);
  linalg::Vector serial;
  a.multiply_transpose(x, serial);  // also primes a's cache

  runtime::Runtime::configure(4);
  const linalg::CsrMatrix shared_cache = a;  // copy shares the built view
  const linalg::CsrMatrix fresh = random_csr(200, 150, 4, 5);  // cold cache
  linalg::Vector from_shared, from_fresh;
  shared_cache.multiply_transpose(x, from_shared);
  fresh.multiply_transpose(x, from_fresh);
  ASSERT_EQ(serial, from_shared);
  ASSERT_EQ(serial, from_fresh);
}

TEST_F(DeterminismTest, MmsimSolveBitwiseIdentical1VsN) {
  gen::GeneratorOptions opts;
  opts.seed = 11;
  opts.nets_per_cell = 0.0;
  db::Design design = gen::generate_random_design(120, 20, 0.6, opts);
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  lcp::MmsimOptions options;
  options.tolerance = 1e-8;
  options.max_iterations = 100000;
  const lcp::MmsimSolver solver(model.qp, options);

  runtime::Runtime::configure(1);
  const lcp::MmsimResult serial = solver.solve();
  for (const unsigned threads : {2u, 4u, 8u}) {
    runtime::Runtime::configure(threads);
    const lcp::MmsimResult parallel = solver.solve();
    ASSERT_EQ(parallel.iterations, serial.iterations)
        << "threads=" << threads;
    ASSERT_EQ(parallel.converged, serial.converged);
    ASSERT_EQ(parallel.final_delta, serial.final_delta);
    ASSERT_EQ(parallel.z, serial.z) << "threads=" << threads;
  }
}

TEST_F(DeterminismTest, FullLegalizationIdenticalPlacements1VsN) {
  gen::GeneratorOptions opts;
  opts.scale = 0.02;
  opts.seed = 1;
  const db::Design base = gen::generate_design(gen::find_spec("fft_2"), opts);

  runtime::Runtime::configure(1);
  db::Design serial = base;
  legal::legalize(serial);

  runtime::Runtime::configure(4);
  db::Design parallel = base;
  legal::legalize(parallel);

  ASSERT_EQ(serial.num_cells(), parallel.num_cells());
  for (std::size_t i = 0; i < serial.num_cells(); ++i) {
    ASSERT_EQ(serial.cells()[i].x, parallel.cells()[i].x) << "cell " << i;
    ASSERT_EQ(serial.cells()[i].y, parallel.cells()[i].y) << "cell " << i;
    ASSERT_EQ(serial.cells()[i].flipped, parallel.cells()[i].flipped);
  }
}

std::vector<eval::RunResult> run_small_suite() {
  gen::GeneratorOptions opts;
  opts.scale = 0.02;
  opts.seed = 1;
  std::vector<eval::SuiteJob> jobs;
  for (const char* name : {"fft_2", "pci_bridge32_a", "des_perf_a"})
    jobs.push_back({gen::find_spec(name), eval::Legalizer::kMmsim, {}});
  jobs.push_back({gen::find_spec("fft_2"), eval::Legalizer::kTetris, {}});
  return eval::SuiteRunner(opts).run(jobs);
}

TEST_F(DeterminismTest, SuiteRunnerMetricsIdentical1VsN) {
  runtime::Runtime::configure(1);
  const std::vector<eval::RunResult> serial = run_small_suite();

  runtime::Runtime::configure(4);
  const std::vector<eval::RunResult> parallel = run_small_suite();

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].benchmark, parallel[i].benchmark) << "job " << i;
    ASSERT_EQ(serial[i].legal, parallel[i].legal) << "job " << i;
    ASSERT_EQ(serial[i].disp.total_sites, parallel[i].disp.total_sites)
        << "job " << i;
    ASSERT_EQ(serial[i].hpwl, parallel[i].hpwl) << "job " << i;
    ASSERT_EQ(serial[i].delta_hpwl, parallel[i].delta_hpwl) << "job " << i;
    ASSERT_EQ(serial[i].illegal_after_solver,
              parallel[i].illegal_after_solver)
        << "job " << i;
    ASSERT_EQ(serial[i].solver_iterations, parallel[i].solver_iterations)
        << "job " << i;
  }
}

}  // namespace
}  // namespace mch
