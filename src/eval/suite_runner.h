// Uniform driver running any legalizer on a design and collecting the
// metrics the paper's tables report. Shared by the benches, the examples,
// and the integration tests so every experiment measures identically.
//
// SuiteRunner adds the coarse-grained layer on top: a whole experiment —
// (benchmark spec, legalizer) jobs — fans out one design per runtime task,
// so the Table 1–3 benches use every core the global Runtime is configured
// with (--threads / MCH_THREADS; see src/runtime/runtime.h). Every job
// generates its own design from its spec, so jobs share no mutable state
// and the reported metrics are identical at any thread count; only the
// wall-clock fields vary with machine load.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "db/design.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "gen/spec.h"
#include "lcp/mmsim.h"
#include "legal/flow.h"
#include "linalg/simd.h"

namespace mch::eval {

enum class Legalizer {
  kMmsim,          ///< the paper's algorithm ("Ours")
  kTetris,         ///< greedy Tetris baseline
  kLocalBase,      ///< DAC'16-style local legalizer
  kLocalImproved,  ///< DAC'16-Imp-style local legalizer
  kMixedAbacus,    ///< ASP-DAC'17-style mixed-height Abacus
};

const char* to_string(Legalizer legalizer);

struct RunResult {
  std::string benchmark;
  Legalizer legalizer = Legalizer::kMmsim;
  bool legal = false;
  std::string legality_summary;
  double seconds = 0.0;  ///< legalization wall time (metrics excluded)

  DisplacementStats disp;
  double gp_hpwl = 0.0;
  double hpwl = 0.0;
  double delta_hpwl = 0.0;  ///< fraction, e.g. 0.0012 = 0.12%

  // Design characteristics (Table 1 columns).
  std::size_t num_cells = 0;
  std::size_t num_single = 0;
  std::size_t num_double = 0;
  double density = 0.0;

  // MMSIM-specific (Table 1 "#I. Cell" and solver diagnostics).
  std::size_t illegal_after_solver = 0;
  std::size_t solver_iterations = 0;
  bool solver_converged = false;

  // Solver wall time and its per-phase breakdown (kernel sweeps, SpMV,
  // Thomas solves, stopping-rule reductions; see lcp::MmsimPhaseTimes).
  // The phase fields stay zero for systems small enough that per-phase
  // profiling is disabled.
  double solver_solve_seconds = 0.0;
  lcp::MmsimPhaseTimes solver_phase;

  // Constraint-graph decomposition diagnostics (zero when the solver ran
  // monolithically; see legal::PartitionMode).
  std::size_t solver_components = 0;
  std::size_t solver_max_component = 0;        ///< largest component n + m
  double solver_mean_component = 0.0;          ///< mean component n + m
  std::size_t solver_component_iterations = 0; ///< summed over components

  /// Mixed-precision attribution: iterations the float32 prelude
  /// contributed, the iterate precision that actually ran (after the
  /// legalizer's mode gate), and the active SIMD dispatch level.
  std::size_t solver_mixed_iterations = 0;
  lcp::MmsimPrecision solver_precision = lcp::MmsimPrecision::kDouble;
  linalg::SimdLevel solver_simd = linalg::SimdLevel::kScalar;

  /// Escalation-ladder activity (legal::RecoveryStats): all-zero on the
  /// happy path; failures carries the structured SolveFailure records when
  /// the ladder was exhausted and cells were clamped to snap positions.
  legal::RecoveryStats solver_recovery;

  // Session/incremental diagnostics, filled when the MMSIM run was served
  // by a service::LegalizationSession (MCH_SESSION=1 routes the suite
  // through the resident-session path; incremental requests also report
  // these). Zero for one-shot runs.
  bool via_session = false;
  std::size_t session_dirty_components = 0;
  std::size_t session_reused_components = 0;
  std::size_t session_warm_hits = 0;
  double session_warm_rate = 0.0;  ///< warm hits / dirty components

  /// Process-wide peak RSS (getrusage high-water mark) sampled when this
  /// run finished. Monotone across a suite: later runs inherit earlier
  /// peaks, so per-design attribution needs one process per design (see
  /// bench/scaling_memory.cpp).
  double peak_rss_mb = 0.0;
};

/// Resets the design to its GP positions, runs the legalizer, validates the
/// result and fills in all metrics.
RunResult run_legalizer(db::Design& design, Legalizer which,
                        const legal::FlowOptions& mmsim_options = {});

/// One unit of suite work: generate the spec'd design, run the legalizer.
struct SuiteJob {
  gen::BenchmarkSpec spec;
  Legalizer legalizer = Legalizer::kMmsim;
  legal::FlowOptions options;
};

/// Runs experiment suites with per-design fan-out over the global Runtime.
class SuiteRunner {
 public:
  explicit SuiteRunner(gen::GeneratorOptions generator_options = {})
      : gen_options_(generator_options) {}

  /// Runs every job (concurrently when the Runtime has threads to spare)
  /// and returns the results in job order. When `progress` is non-null one
  /// '.' is written per finished job. Metric fields are independent of the
  /// thread count; the seconds fields are wall-clock and are not.
  std::vector<RunResult> run(const std::vector<SuiteJob>& jobs,
                             std::ostream* progress = nullptr) const;

  /// Cross-product convenience: every spec × every method, in row-major
  /// order (result index = spec_index * methods.size() + method_index).
  std::vector<RunResult> run_cross(
      const std::vector<gen::BenchmarkSpec>& specs,
      const std::vector<Legalizer>& methods,
      const legal::FlowOptions& mmsim_options = {},
      std::ostream* progress = nullptr) const;

 private:
  gen::GeneratorOptions gen_options_;
};

}  // namespace mch::eval
