// Reusable per-problem solver scratch: the workspace arena.
//
// The partitioned legalizer solves hundreds of component LCPs per call and
// is re-entered once per legalization pass. Allocating every solver's
// iteration buffers per component per call puts the allocator on the hot
// path; the arena instead keeps one Slot per component slot index alive
// across solves (and across outer calls), so steady-state solves allocate
// nothing inside the solve loop — reset_state()/solve_psor_in() only
// reuse capacity.
//
// A Slot also carries the previous solve's final iterate for that slot
// (MMSIM's splitting vector s, PSOR's z). The tiered partition path warm-
// starts from it when the shapes still match; warm starts change only the
// iteration count, never the fixed point, so tiered results stay within
// solver tolerance of the monolithic reference. The lockstep (kMatch) and
// monolithic paths never warm-start — they are bitwise-contracted to the
// cold-start reference.
//
// Lifetime / thread-safety rules:
//   * prepare() must run with no solve in flight; it only grows the table.
//   * Slots live in a deque, so growing never moves existing slots —
//     references handed to parallel workers stay valid (the ASan job
//     exercises this).
//   * Distinct slots may be used concurrently; one slot must not.
#pragma once

#include <cstddef>
#include <deque>

#include "lcp/mmsim.h"

namespace mch::lcp {

class SolverWorkspace {
 public:
  struct Slot {
    MmsimSolver::State state;  ///< MMSIM buffers; capacity kept across solves
    Vector warm_s;             ///< previous MMSIM final s (empty = cold)
    Vector psor_z;             ///< PSOR iterate buffer / warm start
    /// Shape of warm_s / psor_z when they were stored; a later solve only
    /// warm-starts when its own (n, m) matches.
    std::size_t warm_variables = 0;
    std::size_t warm_constraints = 0;

    /// True when the slot holds a warm-start payload usable by a solve of
    /// shape (n, m) — i.e. a warm-started solve would actually start warm.
    bool has_warm(std::size_t n, std::size_t m) const {
      return warm_variables == n && warm_constraints == m &&
             (warm_s.size() == n + m || (m == 0 && psor_z.size() == n));
    }
  };

  /// Grows the table to at least `count` slots. Existing slots (and their
  /// warm-start payloads) are untouched.
  void prepare(std::size_t count) {
    while (slots_.size() < count) slots_.emplace_back();
  }

  std::size_t size() const { return slots_.size(); }
  Slot& slot(std::size_t i) { return slots_[i]; }

  /// Drops every slot's warm-start payload (keeps buffer capacity). Call
  /// when the slots are about to be reused for an unrelated problem set.
  void forget_warm_starts() {
    for (Slot& slot : slots_) {
      slot.warm_s.clear();
      slot.psor_z.clear();
      slot.warm_variables = 0;
      slot.warm_constraints = 0;
    }
  }

 private:
  std::deque<Slot> slots_;
};

}  // namespace mch::lcp
