// Integration tests mirroring the paper's §5.3 optimality experiment:
// on single-row-height designs the MMSIM flow and the Abacus-PlaceRow flow
// must produce the *same* total displacement (both are exact for the
// relaxed fixed-order problem), and on small mixed designs the MMSIM matches
// the exact Lemke solution of the same LCP.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/abacus.h"
#include "baselines/mixed_abacus.h"
#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "lcp/lemke.h"
#include "legal/flow.h"
#include "legal/model.h"
#include "legal/tetris_alloc.h"

namespace mch {
namespace {

class SingleHeightOptimality
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(SingleHeightOptimality, MmsimEqualsPlaceRow) {
  const auto [density, seed] = GetParam();
  gen::GeneratorOptions opts;
  opts.seed = seed;
  opts.nets_per_cell = 0.0;
  db::Design mmsim_design =
      gen::generate_random_design(600, 0, density, opts);
  db::Design placerow_design = mmsim_design;

  // Arm 1: the full MMSIM flow with a tight tolerance.
  legal::FlowOptions flow_options;
  flow_options.solver.mmsim.tolerance = 1e-8;
  flow_options.solver.mmsim.max_iterations = 200000;
  const legal::FlowResult flow = legal::legalize(mmsim_design, flow_options);
  ASSERT_TRUE(flow.legal) << flow.legality.summary();
  ASSERT_TRUE(flow.solver.converged);

  // Arm 2: identical flow with PlaceRow replacing the MMSIM solver.
  baselines::placerow_legalize_fixed_rows(placerow_design,
                                          /*clamp_right_boundary=*/false);
  legal::tetris_allocate(placerow_design);
  ASSERT_TRUE(db::check_legality(placerow_design).legal());

  const double mmsim_disp =
      eval::displacement(mmsim_design).total_sites;
  const double placerow_disp =
      eval::displacement(placerow_design).total_sites;
  // Identical totals, exactly as reported in §5.3 (allow site-snapping
  // noise of a fraction of a site across the whole design).
  EXPECT_NEAR(mmsim_disp, placerow_disp,
              1e-3 * std::max(1.0, placerow_disp));
}

INSTANTIATE_TEST_SUITE_P(
    DensitiesAndSeeds, SingleHeightOptimality,
    ::testing::Values(std::make_tuple(0.3, 101), std::make_tuple(0.5, 102),
                      std::make_tuple(0.7, 103), std::make_tuple(0.85, 104)));

TEST(MixedHeightOptimality, MmsimMatchesLemkeObjective) {
  gen::GeneratorOptions opts;
  opts.seed = 31;
  opts.nets_per_cell = 0.0;
  db::Design design = gen::generate_random_design(25, 6, 0.7, opts);
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);

  lcp::MmsimOptions mo;
  mo.tolerance = 1e-10;
  mo.max_iterations = 200000;
  const lcp::MmsimResult mmsim = lcp::MmsimSolver(model.qp, mo).solve();
  ASSERT_TRUE(mmsim.converged);

  const lcp::LemkeResult lemke = lcp::solve_lemke(model.qp.to_dense_lcp());
  ASSERT_EQ(lemke.status, lcp::LemkeStatus::kSolved);
  const lcp::Vector lemke_x(
      lemke.z.begin(),
      lemke.z.begin() + static_cast<std::ptrdiff_t>(model.num_variables()));

  EXPECT_NEAR(model.qp.objective(mmsim.x), model.qp.objective(lemke_x),
              1e-4 * (1.0 + std::abs(model.qp.objective(lemke_x))));
}

TEST(MixedHeightOptimality, TetrisAllocationBarelyPerturbsOptimum) {
  // Paper Table 1: almost no illegal cells after MMSIM at moderate density,
  // so the snapped result stays within a whisker of the continuous optimum.
  gen::GeneratorOptions opts;
  opts.seed = 37;
  db::Design design = gen::generate_random_design(800, 90, 0.5, opts);
  const legal::FlowResult flow = legal::legalize(design);
  ASSERT_TRUE(flow.legal);
  EXPECT_LT(flow.allocation.illegal_cells, design.num_cells() / 100);
  // Snapping moves each cell at most half a site in x.
  EXPECT_LT(flow.allocation.relocation_cost_sites,
            0.05 * static_cast<double>(design.num_cells()));
}

TEST(MixedHeightOptimality, QuadraticObjectiveNotWorseThanBaselines) {
  // The MMSIM minimizes quadratic displacement for the fixed assignment;
  // no baseline should achieve a smaller quadratic x-displacement *under
  // the same row assignment*. Compare against the strongest baseline by
  // re-pinning its y choices to the MMSIM rows where they coincide.
  gen::GeneratorOptions opts;
  opts.seed = 41;
  db::Design mmsim_design = gen::generate_random_design(500, 60, 0.75, opts);
  db::Design greedy_design = mmsim_design;

  legal::FlowOptions fo;
  fo.solver.mmsim.tolerance = 1e-8;
  const legal::FlowResult flow = legal::legalize(mmsim_design, fo);
  ASSERT_TRUE(flow.legal);

  baselines::mixed_abacus_legalize(greedy_design);
  legal::tetris_allocate(greedy_design);

  double mmsim_quad = 0.0, greedy_quad = 0.0;
  std::size_t compared = 0;
  for (std::size_t i = 0; i < mmsim_design.num_cells(); ++i) {
    if (mmsim_design.cells()[i].y != greedy_design.cells()[i].y) continue;
    const double dm =
        mmsim_design.cells()[i].x - mmsim_design.cells()[i].gp_x;
    const double dg =
        greedy_design.cells()[i].x - greedy_design.cells()[i].gp_x;
    mmsim_quad += dm * dm;
    greedy_quad += dg * dg;
    ++compared;
  }
  ASSERT_GT(compared, mmsim_design.num_cells() / 2);
  EXPECT_LE(mmsim_quad, greedy_quad * 1.05);
}

}  // namespace
}  // namespace mch
