// Shared configuration for the experiment harness binaries.
//
// Every table/figure bench regenerates its paper artifact on the synthetic
// suite. The suite scale is configurable so the whole harness runs in
// minutes by default yet can be pushed to the paper's full benchmark sizes:
//
//   MCH_BENCH_SCALE   fraction of each benchmark's published cell count
//                     (default 0.05; 1.0 = full scale, superblue12 ≈ 1.29M
//                     cells)
//   MCH_BENCH_SEED    generator seed (default 1)
//
// Thread count is shared with the rest of the harness: every bench accepts
// --threads N (and the MCH_THREADS environment variable) via
// bench_threads(), which forwards to runtime/options.h so examples, tools
// and benches all parse the knob identically.
//
// Experiment shapes (who wins, by what factor, where the crossovers are)
// are scale-invariant; see EXPERIMENTS.md.
#pragma once

#include <cstdlib>
#include <string>

#include "gen/generator.h"
#include "runtime/options.h"

namespace mch::bench {

/// Configures the global Runtime from --threads/MCH_THREADS and returns the
/// resolved thread count. Call first thing in main().
inline unsigned bench_threads(int argc, char* const* argv) {
  return runtime::configure_threads_from_cli(argc, argv);
}

inline double bench_scale() {
  if (const char* env = std::getenv("MCH_BENCH_SCALE")) {
    const double value = std::atof(env);
    if (value > 0.0 && value <= 1.0) return value;
  }
  return 0.05;
}

inline std::uint64_t bench_seed() {
  if (const char* env = std::getenv("MCH_BENCH_SEED")) {
    const long long value = std::atoll(env);
    if (value > 0) return static_cast<std::uint64_t>(value);
  }
  return 1;
}

inline gen::GeneratorOptions bench_options() {
  gen::GeneratorOptions options;
  options.scale = bench_scale();
  options.seed = bench_seed();
  return options;
}

}  // namespace mch::bench
