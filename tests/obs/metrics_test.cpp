#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace mch::obs {
namespace {

/// Exact percentile of a sorted sample (linear interpolation between
/// order statistics) — the reference the log2-bucket histogram is checked
/// against.
double reference_percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

/// Instruments are process-lifetime, so every test uses its own names and
/// resets what it touched; reset_metrics() in TearDown keeps later tests
/// (and the artifact written under the `.trace` variant) from seeing stale
/// values — registrations survive, which is the documented contract.
class MetricsTest : public ::testing::Test {
 protected:
  void TearDown() override { reset_metrics(); }
};

TEST_F(MetricsTest, CounterAccumulatesAndResets) {
  Counter& c = counter("test.counter.basic");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, LookupByNameIsStableAndIdentityPreserving) {
  Counter& a = counter("test.counter.identity");
  Counter& b = counter(std::string("test.counter.") + "identity");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST_F(MetricsTest, LabeledFamilyBakesLabelIntoTheName) {
  Counter& labeled = counter("test.family", "rung", "psor");
  Counter& direct = counter("test.family{rung=psor}");
  EXPECT_EQ(&labeled, &direct);
  labeled.add(3);
  const std::string json = metrics_json();
  EXPECT_NE(json.find("test.family{rung=psor}"), std::string::npos);
}

TEST_F(MetricsTest, GaugeHoldsLatestValue) {
  Gauge& g = gauge("test.gauge.rss");
  g.set(123.5);
  EXPECT_DOUBLE_EQ(g.value(), 123.5);
  g.set(7.25);
  EXPECT_DOUBLE_EQ(g.value(), 7.25);
}

TEST_F(MetricsTest, HistogramCountSumMeanAreExact) {
  Histogram& h = histogram("test.hist.moments");
  double expected_sum = 0.0;
  for (int i = 1; i <= 100; ++i) {
    const double v = static_cast<double>(i) * 1e-3;
    h.observe(v);
    expected_sum += v;
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), expected_sum, 1e-9);
  EXPECT_NEAR(h.mean(), expected_sum / 100.0, 1e-9);
}

TEST_F(MetricsTest, PercentilesMatchReferenceWithinBucketResolution) {
  Histogram& h = histogram("test.hist.percentiles");
  std::vector<double> values;
  // A latency-shaped sample: two orders of magnitude of spread.
  for (int i = 1; i <= 1000; ++i)
    values.push_back(1e-4 * std::pow(1.005, i));
  for (const double v : values) h.observe(v);

  // Log2 buckets carry factor-of-two resolution; interpolation inside the
  // bucket does better in practice, but 2x is the contract being tested.
  for (const double q : {0.50, 0.95, 0.99}) {
    const double ref = reference_percentile(values, q);
    const double got = h.percentile(q);
    EXPECT_GE(got, ref / 2.0) << "q=" << q;
    EXPECT_LE(got, ref * 2.0) << "q=" << q;
  }
  // Percentiles are monotone in q.
  EXPECT_LE(h.percentile(0.50), h.percentile(0.95));
  EXPECT_LE(h.percentile(0.95), h.percentile(0.99));
}

TEST_F(MetricsTest, HistogramEdgeCases) {
  Histogram& h = histogram("test.hist.edges");
  EXPECT_EQ(h.percentile(0.5), 0.0);  // empty
  h.observe(0.0);
  h.observe(-1.0);  // clamped into bucket 0
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  h.observe(1e12);  // overflow clamps to the top bucket, never out of range
  EXPECT_EQ(h.count(), 3u);
}

TEST_F(MetricsTest, JsonCarriesSchemaAttributesAndInstruments) {
  counter("test.json.counter").add(5);
  gauge("test.json.gauge").set(2.5);
  histogram("test.json.hist").observe(0.125);
  set_metrics_attribute("design", "unit-test");
  set_metrics_attribute("design", "unit-test-v2");  // overwrite wins

  const std::string json = metrics_json();
  EXPECT_NE(json.find("\"schema\": \"mch-metrics/1\""), std::string::npos);
  EXPECT_NE(json.find("\"design\": \"unit-test-v2\""), std::string::npos);
  EXPECT_EQ(json.find("\"unit-test\"\n"), std::string::npos);
  EXPECT_NE(json.find("test.json.counter"), std::string::npos);
  EXPECT_NE(json.find("test.json.gauge"), std::string::npos);
  EXPECT_NE(json.find("test.json.hist"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(MetricsTest, ConcurrentUpdatesAndRegistrationsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      // Shared instrument hammered from every thread...
      Counter& shared = counter("test.mt.shared");
      Histogram& hist = histogram("test.mt.hist");
      // ...while per-thread names force concurrent registrations, so the
      // registry lock and the relaxed update paths are exercised together
      // (the TSan job in tools/verify.sh runs this test).
      Counter& mine = counter("test.mt.thread", "t", std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        shared.add();
        mine.add();
        hist.observe(1e-6 * (i + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter("test.mt.shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(histogram("test.mt.hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(counter("test.mt.thread", "t", std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
}

TEST_F(MetricsTest, ResetMetricsZeroesEverythingButKeepsRegistrations) {
  Counter& c = counter("test.reset.counter");
  Histogram& h = histogram("test.reset.hist");
  c.add(9);
  h.observe(1.0);
  reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  // Same instrument object after the reset — registrations survive.
  EXPECT_EQ(&c, &counter("test.reset.counter"));
}

}  // namespace
}  // namespace mch::obs
