#include "legal/mmsim_legalizer.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "db/legality.h"
#include "lcp/solver.h"
#include "legal/partition.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "util/check.h"
#include "util/log.h"
#include "util/timer.h"

namespace mch::legal {

namespace {

using lcp::MmsimResidualPartials;
using lcp::MmsimSolver;
using lcp::Vector;
using runtime::parallel_for;

/// Components are heterogeneous units of work; schedule them one at a time.
constexpr std::size_t kGrainComponents = 1;

/// Lane-pipelined component driver with double-buffered extraction — the
/// DMA double-buffer analogue: each lane stages the *next* component's
/// gather tables (extract) before the *current* component's solve (consume)
/// occupies it, so a lane's solve always finds its sub-problem resident and
/// extraction overlaps the other lanes' solves. At most two extractions are
/// live per lane, keeping the streamed drivers' bounded high-water mark.
///
/// extract(i) must be pure (it may run in any order, on any thread) and
/// consume(i, problem) must write only i-keyed state — under those rules
/// the results are schedule-independent exactly like a plain parallel_for.
/// Lanes claim component indices from a shared cursor; with staging
/// disabled (MCH_SCHED_STAGING=0 / options) the legacy extract-then-consume
/// parallel_for runs instead.
template <typename ExtractFn, typename ConsumeFn>
void staged_component_loop(std::size_t num, bool staged, ExtractFn&& extract,
                           ConsumeFn&& consume) {
  if (!staged || num < 2) {
    parallel_for(std::size_t{0}, num, kGrainComponents,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     consume(i, extract(i));
                 });
    return;
  }
  static obs::Counter& staged_extractions =
      obs::counter("sched.staged_extractions");
  const std::size_t lanes = std::min<std::size_t>(
      runtime::Runtime::instance().threads(), num);
  std::atomic<std::size_t> cursor{0};
  parallel_for(std::size_t{0}, lanes, 1, [&](std::size_t, std::size_t) {
    std::size_t current = cursor.fetch_add(1, std::memory_order_relaxed);
    if (current >= num) return;
    ComponentProblem buffer = extract(current);
    for (;;) {
      const std::size_t next = cursor.fetch_add(1, std::memory_order_relaxed);
      std::optional<ComponentProblem> prefetched;
      if (next < num) {
        prefetched.emplace(extract(next));
        staged_extractions.add();
      }
      consume(current, std::move(buffer));
      if (next >= num) return;
      buffer = std::move(*prefetched);
      current = next;
    }
  });
}

PartitionMode resolve_partition_mode(PartitionMode requested) {
  if (requested != PartitionMode::kAuto) return requested;
  if (const char* env = std::getenv("MCH_PARTITION")) {
    const std::string value(env);
    if (value == "off") return PartitionMode::kOff;
    if (value == "match") return PartitionMode::kMatch;
    if (value == "tiered") return PartitionMode::kTiered;
    if (!value.empty()) {
      MCH_LOG(kWarn) << "unknown MCH_PARTITION value '" << value
                     << "'; using match";
    }
  }
  return PartitionMode::kMatch;
}

/// What every solve driver produces; one shared epilogue consumes it.
struct SolveOutcome {
  Vector x;  ///< global primal solution
  std::size_t iterations = 0;
  bool converged = false;
  /// Cells whose component exhausted the recovery ladder: their slots in x
  /// hold row-assigned snap positions, and the write-back clamps them into
  /// the chip instead of trusting an unconverged iterate.
  std::vector<std::size_t> clamped_cells;
};

/// Extracts every component sub-problem. Element slots are pre-sized so the
/// parallel writes are disjoint and the result is schedule-independent.
std::vector<ComponentProblem> extract_components(
    const LegalizationModel& model, const ConstraintPartition& partition) {
  std::vector<ComponentProblem> components(partition.num_components());
  parallel_for(std::size_t{0}, components.size(), kGrainComponents,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t c = lo; c < hi; ++c)
                   components[c] = model.component_problem(
                       partition.component_variables[c],
                       partition.component_constraints[c]);
               });
  return components;
}

/// Scatters each component's primal part into the global x.
void scatter_primal(const std::vector<ComponentProblem>& components,
                    const std::vector<Vector>& local_x, Vector& x) {
  for (std::size_t c = 0; c < components.size(); ++c)
    for (std::size_t v = 0; v < components[c].variables.size(); ++v)
      x[components[c].variables[v]] = local_x[c][v];
}

/// Monolithic reference path (PartitionMode::kOff). Iterates in workspace
/// slot 0's buffers (always from the cold start, so results are unchanged)
/// to avoid reallocating the iteration state on every outer call.
SolveOutcome solve_monolithic(const LegalizationModel& model,
                              const lcp::MmsimOptions& mmsim_options,
                              lcp::SolverWorkspace& workspace,
                              MmsimLegalizerStats& stats) {
  obs::TraceSpan span("solve.monolithic");
  const MmsimSolver solver(model.qp, mmsim_options);
  workspace.prepare(1);
  lcp::MmsimResult result = solver.solve_in(workspace.slot(0).state);
  span.arg("iterations", result.iterations)
      .arg("converged", result.converged);
  if (!result.converged) {
    MCH_LOG(kWarn) << "MMSIM did not converge in " << result.iterations
                   << " iterations (delta " << result.final_delta << ")";
  }
  stats.phase.accumulate(result.phase);
  stats.mixed_iterations += result.mixed_iterations;
  SolveOutcome outcome;
  outcome.x = std::move(result.x);
  outcome.iterations = result.iterations;
  outcome.converged = result.converged;
  return outcome;
}

/// Lockstep driver (PartitionMode::kMatch): every component advances one
/// MMSIM iteration per round, and the stopping rule is the monolithic one —
/// per-component deltas and residual partials fold by max, which is exactly
/// the ∞-norm of the concatenated system. All iterates are therefore
/// bitwise equal to the monolithic solver's, at any thread count.
SolveOutcome solve_lockstep(const LegalizationModel& model,
                            const std::vector<ComponentProblem>& components,
                            const lcp::MmsimOptions& mmsim_options,
                            lcp::SolverWorkspace& workspace,
                            MmsimLegalizerStats& stats) {
  obs::TraceSpan span("solve.lockstep");
  const std::size_t num = components.size();
  span.arg("components", num);
  workspace.prepare(num);
  std::vector<std::unique_ptr<MmsimSolver>> solvers(num);
  // States live in the workspace slots: reset_state() reuses their capacity,
  // so re-entering the legalizer allocates nothing per component here. The
  // start is always cold — kMatch is bitwise-contracted to the monolithic
  // reference.
  parallel_for(std::size_t{0}, num, kGrainComponents,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t c = lo; c < hi; ++c) {
                   solvers[c] = std::make_unique<MmsimSolver>(
                       components[c].qp, mmsim_options,
                       &components[c].schur_coupling_breaks);
                   solvers[c]->reset_state(workspace.slot(c).state);
                 }
               });

  std::vector<double> deltas(num, 0.0);
  std::vector<MmsimResidualPartials> partials(num);
  SolveOutcome outcome;
  for (std::size_t k = 0; k < mmsim_options.max_iterations; ++k) {
    parallel_for(std::size_t{0}, num, kGrainComponents,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t c = lo; c < hi; ++c)
                     deltas[c] = solvers[c]->step(workspace.slot(c).state);
                 });
    double delta = 0.0;
    for (const double d : deltas) delta = std::max(delta, d);
    outcome.iterations = k + 1;
    if (k > 0 && delta < mmsim_options.tolerance) {
      bool stop = true;
      if (mmsim_options.residual_check) {
        parallel_for(std::size_t{0}, num, kGrainComponents,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t c = lo; c < hi; ++c)
                         partials[c] = solvers[c]->residual_partials(
                             workspace.slot(c).state.z);
                     });
        MmsimResidualPartials merged;
        for (const MmsimResidualPartials& p : partials) merged.merge_max(p);
        stop = MmsimSolver::residual_ok(merged,
                                        mmsim_options.residual_tolerance);
      }
      if (stop) {
        outcome.converged = true;
        break;
      }
    }
  }
  if (!outcome.converged) {
    MCH_LOG(kWarn) << "lockstep MMSIM did not converge in "
                   << outcome.iterations << " iterations over " << num
                   << " components";
  }

  // Scatter the primal prefix of each component's iterate straight from the
  // workspace (the slot keeps its buffers for the next call).
  outcome.x.assign(model.num_variables(), 0.0);
  for (std::size_t c = 0; c < num; ++c) {
    const Vector& z = workspace.slot(c).state.z;
    for (std::size_t v = 0; v < components[c].variables.size(); ++v)
      outcome.x[components[c].variables[v]] = z[v];
    stats.phase.accumulate(workspace.slot(c).state.phase);
  }

  stats.components_mmsim = num;
  stats.component_iterations = outcome.iterations * num;
  return outcome;
}

lcp::LcpSolverKind pick_solver(std::size_t num_variables,
                               std::size_t num_constraints,
                               const SolverPolicy& policy) {
  const std::size_t size = num_variables + num_constraints;
  if (policy.psor_for_unconstrained && num_constraints == 0)
    return lcp::LcpSolverKind::kPsor;
  if (policy.lemke_max_size > 0 && size <= policy.lemke_max_size)
    return lcp::LcpSolverKind::kLemke;
  return lcp::LcpSolverKind::kMmsim;
}

lcp::LcpSolverKind pick_solver(const ComponentProblem& component,
                               const SolverPolicy& policy) {
  return pick_solver(component.variables.size(), component.constraints.size(),
                     policy);
}

/// Tiered driver (PartitionMode::kTiered): each component gets the solver
/// its size calls for and terminates independently — the sum of iterations
/// across components is what the decomposition saves versus running every
/// component to the globally slowest count.
SolveOutcome solve_tiered(const LegalizationModel& model,
                          const std::vector<ComponentProblem>& components,
                          const lcp::MmsimOptions& mmsim_options,
                          const SolverPolicy& policy,
                          lcp::SolverWorkspace& workspace,
                          MmsimLegalizerStats& stats) {
  const std::size_t num = components.size();
  workspace.prepare(num);
  // Zeroed on entry so an escalated-retry pass overwrites the counters of
  // the failed pass instead of double-counting.
  stats.components_mmsim = stats.components_psor = stats.components_lemke = 0;
  stats.component_iterations = 0;
  stats.mixed_iterations = 0;
  std::vector<lcp::LcpSolverKind> kinds(num);
  std::vector<lcp::LcpSolveResult> results(num);
  parallel_for(
      std::size_t{0}, num, kGrainComponents,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          kinds[c] = pick_solver(components[c], policy);
          obs::TraceSpan span("solve.component");
          span.arg("component", c)
              .arg("vars", components[c].variables.size())
              .arg("rows", components[c].constraints.size())
              .arg("solver", lcp::to_string(kinds[c]));
          lcp::LcpSolverConfig config;
          config.mmsim = mmsim_options;
          config.schur_coupling_breaks = &components[c].schur_coupling_breaks;
          // Match the MMSIM stopping quality so the tiers agree on accuracy.
          config.psor.tolerance = mmsim_options.tolerance;
          config.psor.max_iterations = mmsim_options.max_iterations;
          // Workspace-backed, warm-started solve: slot c keeps the previous
          // pass's iterate for this component slot, and the solver starts
          // from it when the shape still matches. Tiered mode terminates
          // per component on tolerance anyway, so a warm start only trims
          // iterations — kOff/kMatch stay cold to keep their bitwise
          // contracts. Slots are distinct per component, so the parallel
          // solves never share one.
          results[c] =
              lcp::make_lcp_solver(kinds[c], components[c].qp, config)
                  ->solve(&workspace.slot(c), /*warm_start=*/true);
          span.arg("iterations", results[c].iterations)
              .arg("warm", results[c].warm_started);
        }
      });

  SolveOutcome outcome;
  outcome.converged = true;
  std::vector<Vector> local_x(num);
  for (std::size_t c = 0; c < num; ++c) {
    switch (kinds[c]) {
      case lcp::LcpSolverKind::kMmsim:
        ++stats.components_mmsim;
        break;
      case lcp::LcpSolverKind::kPsor:
        ++stats.components_psor;
        break;
      case lcp::LcpSolverKind::kLemke:
        ++stats.components_lemke;
        break;
    }
    stats.component_iterations += results[c].iterations;
    stats.mixed_iterations += results[c].mixed_iterations;
    stats.phase.accumulate(results[c].phase);
    outcome.iterations = std::max(outcome.iterations, results[c].iterations);
    if (!results[c].converged) {
      outcome.converged = false;
      MCH_LOG(kWarn) << "component " << c << " ("
                     << lcp::to_string(kinds[c]) << ", size "
                     << components[c].variables.size() +
                            components[c].constraints.size()
                     << ") did not converge in " << results[c].iterations
                     << " iterations";
    }
    local_x[c] = std::move(results[c].x);
  }
  outcome.x.assign(model.num_variables(), 0.0);
  scatter_primal(components, local_x, outcome.x);
  return outcome;
}

/// Component-at-a-time tiered driver: each worker extracts one component
/// sub-problem, solves it, scatters its primal part into the global x, and
/// releases it before taking the next. Components are visited largest-first
/// so the big extractions never pile up concurrently behind the tail — the
/// solve's high-water mark holds at most one sub-problem per pool thread
/// instead of every component at once. Per-component results are identical
/// to solve_tiered's: each depends only on the component's QP and its
/// workspace slot (still keyed by component id), and the stats fold in
/// component-id order regardless of schedule.
SolveOutcome solve_tiered_streamed(const LegalizationModel& model,
                                   const ConstraintPartition& partition,
                                   const lcp::MmsimOptions& mmsim_options,
                                   const SolverPolicy& policy, bool staged,
                                   lcp::SolverWorkspace& workspace,
                                   MmsimLegalizerStats& stats) {
  const std::size_t num = partition.num_components();
  workspace.prepare(num);
  stats.components_mmsim = stats.components_psor = stats.components_lemke = 0;
  stats.component_iterations = 0;
  stats.mixed_iterations = 0;

  std::vector<std::size_t> order(num);
  for (std::size_t c = 0; c < num; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t sa = partition.component_size(a);
    const std::size_t sb = partition.component_size(b);
    if (sa != sb) return sa > sb;
    return a < b;
  });

  SolveOutcome outcome;
  outcome.converged = true;
  outcome.x.assign(model.num_variables(), 0.0);
  std::vector<lcp::LcpSolverKind> kinds(num);
  std::vector<lcp::LcpSolveResult> results(num);
  staged_component_loop(
      num, staged && runtime::Scheduler::staging_enabled(),
      [&](std::size_t i) {
        const std::size_t c = order[i];
        obs::TraceSpan span("solve.extract");
        span.arg("component", c)
            .arg("vars", partition.component_variables[c].size())
            .arg("rows", partition.component_constraints[c].size());
        return model.component_problem(partition.component_variables[c],
                                       partition.component_constraints[c]);
      },
      [&](std::size_t i, ComponentProblem component) {
        const std::size_t c = order[i];
        const auto& vars = partition.component_variables[c];
        const auto& rows = partition.component_constraints[c];
        kinds[c] = pick_solver(vars.size(), rows.size(), policy);
        obs::TraceSpan span("solve.component");
        span.arg("component", c)
            .arg("vars", vars.size())
            .arg("rows", rows.size())
            .arg("solver", lcp::to_string(kinds[c]));
        lcp::LcpSolverConfig config;
        config.mmsim = mmsim_options;
        config.schur_coupling_breaks = &component.schur_coupling_breaks;
        config.psor.tolerance = mmsim_options.tolerance;
        config.psor.max_iterations = mmsim_options.max_iterations;
        results[c] = lcp::make_lcp_solver(kinds[c], component.qp, config)
                         ->solve(&workspace.slot(c), /*warm_start=*/true);
        span.arg("iterations", results[c].iterations)
            .arg("warm", results[c].warm_started);
        // Scatter and drop the local solution before the next extraction.
        // Variable sets are disjoint across components, so the shared
        // writes are race-free.
        for (std::size_t v = 0; v < vars.size(); ++v)
          outcome.x[vars[v]] = results[c].x[v];
        results[c].x = Vector();
        results[c].dual = Vector();
      });

  for (std::size_t c = 0; c < num; ++c) {
    switch (kinds[c]) {
      case lcp::LcpSolverKind::kMmsim:
        ++stats.components_mmsim;
        break;
      case lcp::LcpSolverKind::kPsor:
        ++stats.components_psor;
        break;
      case lcp::LcpSolverKind::kLemke:
        ++stats.components_lemke;
        break;
    }
    stats.component_iterations += results[c].iterations;
    stats.mixed_iterations += results[c].mixed_iterations;
    stats.phase.accumulate(results[c].phase);
    outcome.iterations = std::max(outcome.iterations, results[c].iterations);
    if (!results[c].converged) {
      outcome.converged = false;
      MCH_LOG(kWarn) << "component " << c << " (" << lcp::to_string(kinds[c])
                     << ", size "
                     << partition.component_variables[c].size() +
                            partition.component_constraints[c].size()
                     << ") did not converge in " << results[c].iterations
                     << " iterations";
    }
  }
  return outcome;
}

/// Rungs 2+ of the escalation ladder: every component is routed through the
/// per-component solver ladder (lcp::solve_with_recovery), so components
/// that already converge pass straight through their primary solver while
/// the failing ones walk escalated MMSIM → reference MMSIM → PSOR → Lemke.
/// Components whose ladder is exhausted degrade explicitly — their cells
/// are set to row-assigned snap positions (gp_x clamped into the chip) and
/// recorded as structured SolveFailures — never shipped as an unconverged
/// iterate. Thin wrapper over solve_components with one job per component;
/// sub-problems are extracted one worker at a time inside the solve.
SolveOutcome recover_components(const db::Design& design,
                                const LegalizationModel& model,
                                const ConstraintPartition& partition,
                                const lcp::MmsimOptions& mmsim_options,
                                const SolverPolicy& policy,
                                const lcp::RecoveryOptions& recovery,
                                lcp::SolverWorkspace& workspace,
                                MmsimLegalizerStats& stats) {
  const std::size_t num = partition.num_components();
  workspace.prepare(num);
  std::vector<ComponentSolveJob> jobs(num);
  for (std::size_t c = 0; c < num; ++c)
    jobs[c] = {&partition.component_variables[c],
               &partition.component_constraints[c], &workspace.slot(c), c};

  MmsimLegalizerOptions solve_options;
  solve_options.mmsim = mmsim_options;
  solve_options.policy = policy;

  SolveOutcome outcome;
  outcome.x.assign(model.num_variables(), 0.0);
  ComponentSolveReport report = solve_components(
      design, model, jobs, solve_options, recovery, outcome.x);
  outcome.converged = report.converged;
  outcome.iterations = report.iterations;
  outcome.clamped_cells = std::move(report.clamped_cells);

  stats.phase.accumulate(report.phase);
  stats.mixed_iterations += report.mixed_iterations;
  // Historical semantics: every component counts as routed through the
  // ladder here (the report itself only counts beyond-primary ladders).
  stats.recovery.component_ladders += num;
  stats.recovery.ladder_attempts += report.recovery.ladder_attempts;
  stats.recovery.extra_iterations += report.recovery.extra_iterations;
  stats.recovery.recovered_components += report.recovery.recovered_components;
  stats.recovery.clamped_components += report.recovery.clamped_components;
  stats.recovery.clamped_cells += report.recovery.clamped_cells;
  for (SolveFailure& failure : report.recovery.failures)
    stats.recovery.failures.push_back(std::move(failure));
  return outcome;
}

}  // namespace

ComponentSolveReport solve_components(const db::Design& design,
                                      const LegalizationModel& model,
                                      const std::vector<ComponentSolveJob>& jobs,
                                      const MmsimLegalizerOptions& options,
                                      const lcp::RecoveryOptions& recovery,
                                      Vector& x) {
  const std::size_t num = jobs.size();
  std::vector<lcp::LcpSolverKind> kinds(num);
  std::vector<lcp::RecoveredSolve> recovered(num);
  staged_component_loop(
      num,
      options.staged_extraction && runtime::Scheduler::staging_enabled(),
      [&](std::size_t c) {
        obs::TraceSpan span("solve.extract");
        span.arg("component", jobs[c].component_id)
            .arg("vars", jobs[c].variables->size())
            .arg("rows", jobs[c].constraints->size());
        return model.component_problem(*jobs[c].variables,
                                       *jobs[c].constraints);
      },
      [&](std::size_t c, ComponentProblem component) {
        const auto& vars = *jobs[c].variables;
        kinds[c] = pick_solver(vars.size(), jobs[c].constraints->size(),
                               options.policy);
        obs::TraceSpan span("solve.component");
        span.arg("component", jobs[c].component_id)
            .arg("vars", vars.size())
            .arg("rows", jobs[c].constraints->size())
            .arg("solver", lcp::to_string(kinds[c]));
        // Extract, solve, scatter, release: at most two sub-problems per
        // lane are ever live (the staged one plus the solving one),
        // whatever the job count.
        lcp::LcpSolverConfig config;
        config.mmsim = options.mmsim;
        config.schur_coupling_breaks = &component.schur_coupling_breaks;
        config.psor.tolerance = options.mmsim.tolerance;
        config.psor.max_iterations = options.mmsim.max_iterations;
        // Distinct jobs must hold distinct slots (the caller's contract),
        // so the parallel solves never share one.
        recovered[c] = lcp::solve_with_recovery(
            kinds[c], component.qp, config, recovery, jobs[c].slot,
            /*warm_start=*/true);
        span.arg("iterations", recovered[c].result.iterations)
            .arg("rung", lcp::to_string(recovered[c].rung));
        if (recovered[c].rung != lcp::RecoveryRung::kExhausted) {
          // Variable sets are disjoint across jobs (caller's contract),
          // so the shared writes are race-free.
          for (std::size_t v = 0; v < vars.size(); ++v)
            x[vars[v]] = recovered[c].result.x[v];
          recovered[c].result.x = Vector();
          recovered[c].result.dual = Vector();
        }
      });

  ComponentSolveReport report;
  const double chip_width = design.chip().width();
  for (std::size_t c = 0; c < num; ++c) {
    const std::vector<index_t>& vars = *jobs[c].variables;
    const lcp::RecoveredSolve& rec = recovered[c];
    switch (kinds[c]) {
      case lcp::LcpSolverKind::kMmsim:
        ++report.components_mmsim;
        break;
      case lcp::LcpSolverKind::kPsor:
        ++report.components_psor;
        break;
      case lcp::LcpSolverKind::kLemke:
        ++report.components_lemke;
        break;
    }
    report.recovery.ladder_attempts += rec.attempts;
    report.recovery.extra_iterations += rec.wasted_iterations;
    if (rec.attempts > 1 || rec.rung != lcp::RecoveryRung::kPrimary)
      ++report.recovery.component_ladders;
    if (rec.rung == lcp::RecoveryRung::kExhausted) {
      report.converged = false;
      SolveFailure failure;
      failure.component = jobs[c].component_id;
      failure.num_variables = vars.size();
      failure.num_constraints = jobs[c].constraints->size();
      failure.attempts = rec.attempts;
      failure.iterations = rec.wasted_iterations;
      for (std::size_t v = 0; v < vars.size(); ++v) {
        const std::size_t g = vars[v];
        const std::size_t cell = model.variables[g].cell;
        const db::Cell& info = design.cells()[cell];
        x[g] = std::clamp(info.gp_x, 0.0,
                          std::max(0.0, chip_width - info.width));
        // Variable order groups a cell's subcells contiguously, so a
        // back()-check is a full dedup.
        if (failure.cells.empty() || failure.cells.back() != cell)
          failure.cells.push_back(cell);
      }
      report.clamped_cells.insert(report.clamped_cells.end(),
                                  failure.cells.begin(),
                                  failure.cells.end());
      report.recovery.clamped_cells += failure.cells.size();
      ++report.recovery.clamped_components;
      MCH_LOG(kWarn) << "solver recovery: " << failure.summary();
      report.recovery.failures.push_back(std::move(failure));
    } else {
      if (rec.rung != lcp::RecoveryRung::kPrimary)
        ++report.recovery.recovered_components;
      if (rec.result.warm_started) ++report.warm_started;
      // x was scattered inside the worker, before the sub-problem was
      // released.
      report.iterations = std::max(report.iterations, rec.result.iterations);
      report.component_iterations += rec.result.iterations;
      report.mixed_iterations += rec.result.mixed_iterations;
      report.phase.accumulate(rec.result.phase);
    }
  }
  return report;
}

std::string SolveFailure::summary() const {
  std::ostringstream os;
  if (component == kMonolithic)
    os << "monolithic system";
  else
    os << "component " << component;
  os << " (" << num_variables << " variables, " << num_constraints
     << " constraints) exhausted the escalation ladder after " << attempts
     << " attempts / " << iterations << " iterations; " << cells.size()
     << " cell(s) clamped to snap positions";
  return os.str();
}

const char* to_string(PartitionMode mode) {
  switch (mode) {
    case PartitionMode::kAuto:
      return "auto";
    case PartitionMode::kOff:
      return "off";
    case PartitionMode::kMatch:
      return "match";
    case PartitionMode::kTiered:
      return "tiered";
  }
  return "unknown";
}

MmsimLegalizerStats mmsim_legalize_continuous(
    db::Design& design, const RowAssignment& base_rows,
    const MmsimLegalizerOptions& options) {
  MmsimLegalizerStats stats;

  const PartitionMode mode = resolve_partition_mode(options.partition);

  // Partition state, declared before the model so the streamed build can
  // deposit the partition as a by-product of constraint emission.
  ConstraintPartition partition;
  bool have_partition = false;

  Timer model_timer;
  LegalizationModel built_model;
  if (options.prebuilt_model == nullptr) {
    obs::TraceSpan span("legalize.model_build");
    // Partitioned modes fold the union-find into the streaming build: the
    // edges are united as each constraint row is emitted, so the separate
    // whole-model partition walk disappears.
    const bool want_partition = mode != PartitionMode::kOff;
    built_model = build_model(design, base_rows, options.model,
                              want_partition ? &partition : nullptr);
    have_partition = want_partition;
    span.arg("variables", built_model.num_variables())
        .arg("constraints", built_model.qp.num_constraints());
  }
  const LegalizationModel& model =
      options.prebuilt_model != nullptr ? *options.prebuilt_model
                                        : built_model;
  if (options.prebuilt_model != nullptr) {
    // The prebuilt model must describe exactly this design state; the row
    // assignment is the cheapest complete witness of that.
    MCH_CHECK_MSG(model.base_rows == base_rows,
                  "prebuilt model was built for a different row assignment");
    MCH_CHECK(model.cell_first_var.size() == design.num_cells());
  }
  stats.model_seconds = model_timer.seconds();
  stats.num_variables = model.num_variables();
  stats.num_constraints = model.qp.num_constraints();
  obs::sample_rss("model_build");

  lcp::MmsimOptions mmsim_options = options.mmsim;

  // Mixed precision engages only under kTiered, whose components already
  // terminate independently. kOff and kMatch carry the off↔match bitwise
  // contract, which only the full-double iterate honors — forcing kDouble
  // here keeps that contract intact even under MCH_PRECISION=mixed.
  if (mode != PartitionMode::kTiered)
    mmsim_options.precision = lcp::MmsimPrecision::kDouble;
  stats.precision_used = mmsim_options.precision;
  stats.simd_level = linalg::simd_level();

  // Wall clock over the entire solve section — auto-θ probe, partitioning,
  // per-solver setup, and the iterations — so solve_seconds means the same
  // thing in every mode. The span mirrors the timer (optional so it can end
  // before the write-back without re-scoping the whole section).
  std::optional<obs::TraceSpan> solve_span;
  solve_span.emplace("legalize.solve");
  solve_span->arg("mode", to_string(mode))
      .arg("precision", mmsim_options.precision == lcp::MmsimPrecision::kMixed
                            ? "mixed"
                            : "double")
      .arg("simd", linalg::simd_level_name(stats.simd_level));
  Timer solve_timer;
  if (options.auto_theta) {
    // Probe the monolithic system for the Theorem-2 bound. Running the
    // probe globally keeps θ* identical across partition modes (and equal
    // to the pre-decomposition behaviour).
    const MmsimSolver probe(model.qp, mmsim_options);
    mmsim_options.theta = probe.suggest_theta();
  }

  // The workspace arena the solve drivers iterate in. The thread-local
  // default gives buffer reuse across outer calls with zero caller changes;
  // it is per-thread, so concurrent legalizer calls never share an arena: a
  // thread (client or pool worker) runs one legalize call at a time — a
  // nested job blocks its submitter until it completes, it never interleaves
  // other legalize calls onto this thread. The drivers' own parallel chunks
  // may execute on any worker (stealable children), but each slot is only
  // ever touched under its component index, so slots stay disjoint.
  static thread_local lcp::SolverWorkspace default_workspace;
  lcp::SolverWorkspace& workspace =
      options.workspace != nullptr ? *options.workspace : default_workspace;

  // Partition lazily: the partitioned modes need it up front (streamed out
  // of the model build above, or handed in by the session), the monolithic
  // mode only on the recovery path.
  std::vector<ComponentProblem> components;
  bool partitioned = false;
  const auto ensure_partitioned = [&] {
    if (partitioned) return;
    obs::TraceSpan span("legalize.partition");
    if (!have_partition) {
      if (options.prebuilt_partition != nullptr)
        partition = *options.prebuilt_partition;
      else
        partition = partition_model(model);
      have_partition = true;
    }
    stats.num_components = partition.num_components();
    stats.max_component_size = partition.max_component_size();
    stats.mean_component_size = partition.mean_component_size();
    // Lockstep needs every per-component solver alive at once, so kMatch
    // always extracts everything up front; the streamed tiered/recovery
    // drivers extract one component per worker instead, unless the legacy
    // extract-all layout was requested.
    if (mode == PartitionMode::kMatch || !options.component_at_a_time)
      components = extract_components(model, partition);
    partitioned = true;
    span.arg("components", partition.num_components())
        .arg("max_size", partition.max_component_size());
  };

  const lcp::RecoveryOptions recovery =
      lcp::resolve_recovery_options(options.recovery);
  std::size_t attempts = 0;
  const auto run_mode = [&](const lcp::MmsimOptions& mo) {
    SolveOutcome o;
    if (mode == PartitionMode::kOff) {
      o = solve_monolithic(model, mo, workspace, stats);
    } else {
      ensure_partitioned();
      if (mode == PartitionMode::kMatch) {
        o = solve_lockstep(model, components, mo, workspace, stats);
      } else if (options.component_at_a_time) {
        o = solve_tiered_streamed(model, partition, mo, options.policy,
                                  options.staged_extraction, workspace,
                                  stats);
      } else {
        o = solve_tiered(model, components, mo, options.policy, workspace,
                         stats);
      }
    }
    ++attempts;
    // Fault injection: the mode-level solve and its escalated retry consume
    // the first forced failures; the remainder is passed down to the
    // per-component ladders.
    if (recovery.enabled && attempts <= recovery.forced_failures)
      o.converged = false;
    return o;
  };

  SolveOutcome outcome = run_mode(mmsim_options);
  double theta_used = mmsim_options.theta;

  if (!outcome.converged && recovery.enabled) {
    // Rung 1 (whole solve): escalated parameters. θ* is re-probed on the
    // monolithic system so kOff and kMatch retries stay bitwise identical
    // to each other, preserving the lockstep contract under recovery.
    ++stats.recovery.escalations;
    obs::counter("recovery.escalations").add();
    stats.recovery.extra_iterations += outcome.iterations;
    lcp::MmsimOptions escalated = mmsim_options;
    // Recovery always runs full double: a solve that failed (or stalled
    // out of) the mixed iterate must not retry with the same reduced
    // precision that may have caused the failure.
    escalated.precision = lcp::MmsimPrecision::kDouble;
    if (recovery.reprobe_theta && model.qp.num_constraints() > 0) {
      const MmsimSolver probe(model.qp, mmsim_options);
      escalated.theta = probe.suggest_theta();
    }
    if (recovery.relaxed_gamma > 0.0) escalated.gamma = recovery.relaxed_gamma;
    escalated.max_iterations =
        mmsim_options.max_iterations *
        std::max<std::size_t>(1, recovery.budget_multiplier);
    SolveOutcome retry = run_mode(escalated);
    if (retry.converged) {
      outcome = std::move(retry);
      theta_used = escalated.theta;
    } else {
      // Rungs 2+: decompose (if not already) and walk the per-component
      // solver ladder, degrading exhausted components to snap clamps.
      stats.recovery.extra_iterations += retry.iterations;
      ensure_partitioned();
      lcp::RecoveryOptions ladder = recovery;
      ladder.forced_failures = recovery.forced_failures > attempts
                                   ? recovery.forced_failures - attempts
                                   : 0;
      // Same full-double rule for the per-component ladder (see above).
      lcp::MmsimOptions ladder_mmsim = mmsim_options;
      ladder_mmsim.precision = lcp::MmsimPrecision::kDouble;
      outcome = recover_components(design, model, partition, ladder_mmsim,
                                   options.policy, ladder, workspace, stats);
      theta_used = escalated.theta;
    }
  }
  stats.solve_seconds = solve_timer.seconds();
  solve_span->arg("iterations", outcome.iterations)
      .arg("converged", outcome.converged);
  solve_span.reset();
  obs::sample_rss("solve");
  {
    static obs::Counter& solves = obs::counter("legalize.solves");
    solves.add();
    obs::histogram("legalize.solve_seconds").observe(stats.solve_seconds);
    obs::histogram("legalize.model_seconds").observe(stats.model_seconds);
  }

  stats.theta_used = theta_used;
  stats.iterations = outcome.iterations;
  stats.converged = outcome.converged;
  stats.max_mismatch = model.max_mismatch(outcome.x);
  stats.objective = model.qp.objective(outcome.x);

  {
    obs::TraceSpan span("legalize.write_back");
    span.arg("cells", design.num_cells())
        .arg("clamped", outcome.clamped_cells.size());
    std::vector<char> clamped;
    if (!outcome.clamped_cells.empty()) {
      clamped.assign(design.num_cells(), 0);
      for (const std::size_t c : outcome.clamped_cells) clamped[c] = 1;
    }
    for (std::size_t c = 0; c < design.num_cells(); ++c) {
      if (design.cells()[c].fixed || design.cells()[c].erased) continue;
      double x = model.cell_x(outcome.x, c);
      if (!clamped.empty() && clamped[c]) {
        x = std::clamp(
            x, 0.0,
            std::max(0.0, design.chip().width() - design.cells()[c].width));
      }
      design.cells()[c].x = x;
      design.cells()[c].y = design.chip().row_y(base_rows[c]);
    }
  }
  obs::sample_rss("write_back");

  // Gate: whenever recovery engaged or the solve stayed unconverged, audit
  // the written-back result so no failure leaves the legalizer unverified.
  // The result is continuous (pre-snap), so sites are not required yet.
  if (stats.recovery.attempted() || !stats.converged) {
    db::LegalityOptions audit;
    audit.require_site_alignment = false;
    audit.tolerance = options.audit_tolerance;
    const db::LegalityReport report = db::check_legality(design, audit);
    stats.recovery.audit_ran = true;
    stats.recovery.audit_legal = report.legal();
    stats.recovery.audit_summary = report.summary();
    if (!report.legal()) {
      MCH_LOG(kWarn) << "post-recovery legality audit failed: "
                     << report.summary();
    }
  }

  // Session hooks: hand the resident caller the raw solution and the
  // partition (empty when the monolithic path never needed one).
  if (options.solution_out != nullptr)
    *options.solution_out = std::move(outcome.x);
  if (options.partition_out != nullptr)
    *options.partition_out =
        partitioned ? std::move(partition) : ConstraintPartition{};
  return stats;
}

}  // namespace mch::legal
