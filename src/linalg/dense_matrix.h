// Small dense matrices.
//
// Used for (a) the per-cell blocks of Q + λEᵀE (size = cell height in rows,
// so 1–4 in practice), (b) the reference LCP/QP solvers that cross-validate
// MMSIM on small instances, and (c) tests. Row-major storage; O(n³)
// factorizations are fine at these sizes.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.h"

namespace mch::linalg {

class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// y = A x.
  void multiply(const Vector& x, Vector& y) const;

  /// C = A * B.
  DenseMatrix multiply(const DenseMatrix& other) const;

  DenseMatrix transpose() const;

  /// A += alpha * B (same shape).
  void add_scaled(double alpha, const DenseMatrix& other);

  /// Frobenius-norm distance to another matrix of the same shape.
  double frobenius_distance(const DenseMatrix& other) const;

  /// Solves A x = rhs by Gaussian elimination with partial pivoting.
  /// Returns false if A is numerically singular. Requires square A.
  bool solve(const Vector& rhs, Vector& x) const;

  /// Returns A⁻¹ (by column solves). Requires square nonsingular A;
  /// returns false on singularity.
  bool inverse(DenseMatrix& inv) const;

  /// Cholesky factorization A = L Lᵀ of an SPD matrix; returns false if the
  /// matrix is not positive definite (within roundoff).
  bool cholesky(DenseMatrix& lower) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace mch::linalg
