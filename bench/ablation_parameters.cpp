// Ablation of the MMSIM hyper-parameters the paper fixes without a sweep
// (λ = 1000, β* = θ* = 0.5, Ω = I, γ):
//
//   1. θ* sweep — convergence region of the splitting. Theorem 2's bound
//      (with the exact Schur complement) admits larger θ*, but with the
//      tridiagonal approximation D the practical region ends near ~0.6;
//      the paper's 0.5 sits safely inside. Also prints the Theorem-2
//      estimate from power iteration for reference.
//   2. β* sweep — iterations to converge across the (0, 2) range.
//   3. λ sweep — maximum subcell mismatch of multi-row cells versus λ,
//      justifying λ = 1000 (mismatch far below one site).
//   4. γ sweep — solution invariance (γ only rescales the modulus state).
//   5. Solver cross-check — MMSIM vs the exact Lemke pivoting method on a
//      small instance: identical objective, runtime orders apart.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "gen/generator.h"
#include "io/table.h"
#include "lcp/lemke.h"
#include "lcp/mmsim.h"
#include "legal/model.h"
#include "legal/row_assign.h"
#include "util/timer.h"

namespace {

struct Instance {
  mch::db::Design design;
  mch::legal::LegalizationModel model;
};

Instance make_instance(std::size_t singles, std::size_t doubles,
                       double density, std::uint64_t seed, double lambda) {
  mch::gen::GeneratorOptions options;
  options.seed = seed;
  options.nets_per_cell = 0.0;
  Instance inst{
      mch::gen::generate_random_design(singles, doubles, density, options),
      {}};
  const mch::legal::RowAssignment rows = mch::legal::assign_rows(inst.design);
  mch::legal::ModelOptions model_options;
  model_options.lambda = lambda;
  inst.model = mch::legal::build_model(inst.design, rows, model_options);
  return inst;
}

}  // namespace

int main() {
  using namespace mch;
  std::printf("Ablation — MMSIM parameters (fft_2-like instance)\n\n");
  const Instance inst = make_instance(3000, 300, 0.6, bench::bench_seed(),
                                      1000.0);
  std::printf("instance: n=%zu variables, m=%zu constraints\n\n",
              inst.model.num_variables(), inst.model.qp.num_constraints());

  {
    lcp::MmsimSolver probe(inst.model.qp, {});
    std::printf("Theorem-2 bound estimate: mu_max=%.3f -> theta < %.3f "
                "(power iteration; exact-Schur assumption)\n\n",
                probe.estimate_mu_max(),
                2.0 * (2.0 - 0.5) / (0.5 * probe.estimate_mu_max()));
  }

  bench::JsonSnapshot json("ablation_parameters");
  std::printf("1) theta sweep (beta=0.5, tol=1e-6)\n");
  io::Table theta_table({"theta", "iterations", "converged", "seconds"});
  for (const double theta : {0.1, 0.25, 0.5, 0.6, 0.8, 1.0, 1.5}) {
    lcp::MmsimOptions o;
    o.theta = theta;
    o.tolerance = 1e-6;
    o.max_iterations = 30000;
    const lcp::MmsimSolver solver(inst.model.qp, o);
    Timer timer;
    const lcp::MmsimResult r = solver.solve();
    char name[32];
    std::snprintf(name, sizeof(name), "theta/%.2f", theta);
    json.add(name, inst.model.num_variables(), timer.seconds());
    theta_table.row()
        .cell(theta, 2)
        .cell(r.iterations)
        .cell(r.converged ? "yes" : "NO")
        .cell(timer.seconds(), 3);
  }
  std::cout << theta_table.to_text() << "\n";

  std::printf("2) beta sweep (theta=0.5, tol=1e-6)\n");
  io::Table beta_table({"beta", "iterations", "converged", "seconds"});
  for (const double beta : {0.2, 0.5, 0.8, 1.0, 1.2, 1.5}) {
    lcp::MmsimOptions o;
    o.beta = beta;
    o.tolerance = 1e-6;
    o.max_iterations = 30000;
    const lcp::MmsimSolver solver(inst.model.qp, o);
    Timer timer;
    const lcp::MmsimResult r = solver.solve();
    char name[32];
    std::snprintf(name, sizeof(name), "beta/%.2f", beta);
    json.add(name, inst.model.num_variables(), timer.seconds());
    beta_table.row()
        .cell(beta, 2)
        .cell(r.iterations)
        .cell(r.converged ? "yes" : "NO")
        .cell(timer.seconds(), 3);
  }
  std::cout << beta_table.to_text() << "\n";

  std::printf("3) lambda sweep — subcell mismatch of multi-row cells\n");
  io::Table lambda_table({"lambda", "max mismatch (sites)", "iterations"});
  for (const double lambda : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    const Instance li =
        make_instance(1000, 150, 0.7, bench::bench_seed() + 1, lambda);
    lcp::MmsimOptions o;
    o.tolerance = 1e-8;
    o.max_iterations = 200000;
    const lcp::MmsimResult r = lcp::MmsimSolver(li.model.qp, o).solve();
    lambda_table.row()
        .cell(lambda, 0)
        .cell(li.model.max_mismatch(r.x), 6)
        .cell(r.iterations);
  }
  std::cout << lambda_table.to_text() << "\n";

  std::printf("4) gamma invariance (identical x up to tolerance)\n");
  io::Table gamma_table({"gamma", "objective", "iterations"});
  for (const double gamma : {0.5, 1.0, 2.0, 4.0}) {
    lcp::MmsimOptions o;
    o.gamma = gamma;
    o.tolerance = 1e-8;
    o.max_iterations = 100000;
    const lcp::MmsimResult r = lcp::MmsimSolver(inst.model.qp, o).solve();
    gamma_table.row()
        .cell(gamma, 1)
        .cell(inst.model.qp.objective(r.x), 2)
        .cell(r.iterations);
  }
  std::cout << gamma_table.to_text() << "\n";

  std::printf("5) splitting ablation — the paper's Gauss-Seidel M (Eq. 16)\n"
              "   vs a block-Jacobi M (beta=theta=0.5, tol=1e-6)\n");
  io::Table split_table({"splitting", "iterations", "converged"});
  for (const auto splitting :
       {lcp::MmsimSplitting::kGaussSeidel, lcp::MmsimSplitting::kJacobi}) {
    lcp::MmsimOptions o;
    o.tolerance = 1e-6;
    o.max_iterations = 60000;
    o.splitting = splitting;
    const lcp::MmsimResult r = lcp::MmsimSolver(inst.model.qp, o).solve();
    split_table.row()
        .cell(splitting == lcp::MmsimSplitting::kGaussSeidel
                  ? "Gauss-Seidel (paper)"
                  : "Jacobi (ablated)")
        .cell(r.iterations)
        .cell(r.converged ? "yes" : "NO");
  }
  std::cout << split_table.to_text() << "\n";

  std::printf("6) convergence trace — ||dz||_inf decay every 200 iterations "
              "(beta=theta=0.5)\n");
  {
    lcp::MmsimOptions o;
    o.tolerance = 1e-8;
    o.max_iterations = 20000;
    o.trace_stride = 200;
    const lcp::MmsimResult r = lcp::MmsimSolver(inst.model.qp, o).solve();
    std::printf("   iter:delta ");
    for (std::size_t k = 0; k < r.trace.size(); k += 5)
      std::printf(" %zu:%.2e", r.trace[k].first, r.trace[k].second);
    std::printf("\n   (linear-rate decay: the MMSIM is a stationary "
                "iteration)\n\n");
  }

  std::printf("7) MMSIM vs exact Lemke pivoting (small instance)\n");
  {
    const Instance si = make_instance(60, 10, 0.6, bench::bench_seed() + 2,
                                      1000.0);
    lcp::MmsimOptions o;
    o.tolerance = 1e-9;
    o.max_iterations = 200000;
    Timer timer;
    const lcp::MmsimResult mm = lcp::MmsimSolver(si.model.qp, o).solve();
    const double t_mmsim = timer.seconds();
    timer.reset();
    const lcp::LemkeResult lk = lcp::solve_lemke(si.model.qp.to_dense_lcp());
    const double t_lemke = timer.seconds();
    const lcp::Vector lemke_x(
        lk.z.begin(),
        lk.z.begin() +
            static_cast<std::ptrdiff_t>(si.model.num_variables()));
    std::printf("  n+m = %zu: objective mmsim %.6f vs lemke %.6f "
                "(|diff| %.2e)\n",
                si.model.qp.lcp_size(), si.model.qp.objective(mm.x),
                si.model.qp.objective(lemke_x),
                std::abs(si.model.qp.objective(mm.x) -
                         si.model.qp.objective(lemke_x)));
    std::printf("  runtime: mmsim %.4fs (structured O(n) iterations) vs "
                "lemke %.4fs (dense pivoting)\n",
                t_mmsim, t_lemke);
  }
  mch::bench::print_peak_rss();
  json.write();
  return 0;
}
