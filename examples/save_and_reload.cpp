// Persistence workflow: generate a benchmark instance, save it in the
// bookshelf-lite format, reload it, legalize the copy, and verify the two
// paths agree — the pattern for distributing reproducible instances.
//
//   ./save_and_reload [benchmark-name] [path]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/metrics.h"
#include "gen/generator.h"
#include "io/design_io.h"
#include "legal/flow.h"

int main(int argc, char** argv) {
  using namespace mch;
  const std::string name = argc > 1 ? argv[1] : "fft_a";
  const std::string path =
      argc > 2 ? argv[2] : ("/tmp/" + name + ".mchdesign");

  gen::GeneratorOptions options;
  options.scale = 0.05;
  db::Design original = gen::generate_design(gen::find_spec(name), options);

  io::save_design(path, original);
  std::printf("saved %s (%zu cells, %zu nets) to %s\n", name.c_str(),
              original.num_cells(), original.num_nets(), path.c_str());

  db::Design reloaded = io::load_design(path);
  std::printf("reloaded: %zu cells, %zu nets\n", reloaded.num_cells(),
              reloaded.num_nets());

  const legal::FlowResult a = legal::legalize(original);
  const legal::FlowResult b = legal::legalize(reloaded);
  const double disp_a = eval::displacement(original).total_sites;
  const double disp_b = eval::displacement(reloaded).total_sites;
  std::printf("legalized original: %.2f sites (legal: %s)\n", disp_a,
              a.legal ? "yes" : "no");
  std::printf("legalized reload:   %.2f sites (legal: %s)\n", disp_b,
              b.legal ? "yes" : "no");
  const bool match = disp_a == disp_b;
  std::printf(match ? "bit-identical results — the format round-trips.\n"
                    : "MISMATCH — serialization lost information!\n");
  return match && a.legal && b.legal ? 0 : 1;
}
