#include "db/design.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mch::db {
namespace {

Chip test_chip() {
  Chip chip;
  chip.num_rows = 8;
  chip.num_sites = 100;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  chip.bottom_rail = RailType::kVss;
  return chip;
}

TEST(ChipTest, Geometry) {
  const Chip chip = test_chip();
  EXPECT_DOUBLE_EQ(chip.width(), 100.0);
  EXPECT_DOUBLE_EQ(chip.height(), 80.0);
  EXPECT_DOUBLE_EQ(chip.row_y(3), 30.0);
}

TEST(ChipTest, RailAlternation) {
  const Chip chip = test_chip();
  EXPECT_EQ(chip.rail_at(0), RailType::kVss);
  EXPECT_EQ(chip.rail_at(1), RailType::kVdd);
  EXPECT_EQ(chip.rail_at(2), RailType::kVss);
  EXPECT_EQ(chip.rail_at(7), RailType::kVdd);
}

TEST(ChipTest, RailAlternationVddBottom) {
  Chip chip = test_chip();
  chip.bottom_rail = RailType::kVdd;
  EXPECT_EQ(chip.rail_at(0), RailType::kVdd);
  EXPECT_EQ(chip.rail_at(1), RailType::kVss);
}

TEST(RailTest, Flip) {
  EXPECT_EQ(flip(RailType::kVss), RailType::kVdd);
  EXPECT_EQ(flip(RailType::kVdd), RailType::kVss);
}

TEST(CellTest, RailCompatibility) {
  const Chip chip = test_chip();
  Cell odd;
  odd.width = 4;
  odd.height_rows = 1;
  odd.bottom_rail = RailType::kVdd;
  // Odd heights flip to match any row.
  EXPECT_TRUE(odd.rail_compatible(chip, 0));
  EXPECT_TRUE(odd.rail_compatible(chip, 1));

  Cell even;
  even.width = 4;
  even.height_rows = 2;
  even.bottom_rail = RailType::kVss;
  EXPECT_TRUE(even.rail_compatible(chip, 0));
  EXPECT_FALSE(even.rail_compatible(chip, 1));
  EXPECT_TRUE(even.rail_compatible(chip, 2));

  Cell triple;
  triple.width = 4;
  triple.height_rows = 3;
  triple.bottom_rail = RailType::kVdd;
  EXPECT_TRUE(triple.rail_compatible(chip, 0));
  EXPECT_TRUE(triple.rail_compatible(chip, 1));

  Cell quad;
  quad.width = 4;
  quad.height_rows = 4;
  quad.bottom_rail = RailType::kVdd;
  EXPECT_FALSE(quad.rail_compatible(chip, 0));
  EXPECT_TRUE(quad.rail_compatible(chip, 1));
}

TEST(DesignTest, AddCellAssignsIds) {
  Design design(test_chip());
  Cell cell;
  cell.width = 5;
  EXPECT_EQ(design.add_cell(cell), 0u);
  EXPECT_EQ(design.add_cell(cell), 1u);
  EXPECT_EQ(design.cells()[1].id, 1u);
}

TEST(DesignTest, AddCellValidates) {
  Design design(test_chip());
  Cell bad;
  bad.width = 0.0;
  EXPECT_THROW(design.add_cell(bad), CheckError);
  bad.width = 5.0;
  bad.height_rows = 9;  // taller than the chip
  EXPECT_THROW(design.add_cell(bad), CheckError);
}

TEST(DesignTest, AddNetValidatesPinTargets) {
  Design design(test_chip());
  Cell cell;
  cell.width = 5;
  design.add_cell(cell);
  Net bad;
  bad.pins.push_back({3, 0, 0});
  EXPECT_THROW(design.add_net(bad), CheckError);
}

TEST(DesignTest, AreaAndDensity) {
  Design design(test_chip());
  Cell cell;
  cell.width = 10;
  cell.height_rows = 2;
  design.add_cell(cell);  // area 10 * 2 * 10 = 200
  cell.height_rows = 1;
  design.add_cell(cell);  // area 100
  EXPECT_DOUBLE_EQ(design.total_cell_area(), 300.0);
  EXPECT_DOUBLE_EQ(design.density(), 300.0 / 8000.0);
}

TEST(DesignTest, NearestRowClampsToFit) {
  const Design design(test_chip());
  EXPECT_EQ(design.nearest_row(-5.0, 1), 0u);
  EXPECT_EQ(design.nearest_row(31.0, 1), 3u);
  EXPECT_EQ(design.nearest_row(36.0, 1), 4u);
  EXPECT_EQ(design.nearest_row(1000.0, 1), 7u);
  EXPECT_EQ(design.nearest_row(1000.0, 3), 5u);  // must fit 3 rows
}

TEST(DesignTest, NearestLegalRowForEvenHeights) {
  Design design(test_chip());
  Cell even;
  even.width = 4;
  even.height_rows = 2;
  even.bottom_rail = RailType::kVss;  // needs even row index
  even.gp_y = 10.0;                   // nearest row 1 (VDD) — must shift
  const std::size_t id = design.add_cell(even);
  const std::size_t row = design.nearest_legal_row(design.cells()[id]);
  EXPECT_TRUE(row == 0 || row == 2);
  EXPECT_EQ(design.chip().rail_at(row), RailType::kVss);
}

TEST(DesignTest, NearestLegalRowPicksCloserCompatible) {
  Design design(test_chip());
  Cell even;
  even.width = 4;
  even.height_rows = 2;
  even.bottom_rail = RailType::kVdd;  // rows 1, 3, 5
  even.gp_y = 21.0;                   // nearest row 2; row 3 closer than 1
  const std::size_t id = design.add_cell(even);
  EXPECT_EQ(design.nearest_legal_row(design.cells()[id]), 3u);
}

TEST(DesignTest, SnapXToSite) {
  Design design(test_chip());
  EXPECT_DOUBLE_EQ(design.snap_x_to_site(5.4, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(design.snap_x_to_site(5.6, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(design.snap_x_to_site(-2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(design.snap_x_to_site(99.0, 3.0), 97.0);  // clamped right
}

TEST(DesignTest, CountCellsWithHeight) {
  Design design(test_chip());
  Cell cell;
  cell.width = 2;
  cell.height_rows = 1;
  design.add_cell(cell);
  design.add_cell(cell);
  cell.height_rows = 2;
  design.add_cell(cell);
  EXPECT_EQ(design.count_cells_with_height(1), 2u);
  EXPECT_EQ(design.count_cells_with_height(2), 1u);
  EXPECT_EQ(design.count_cells_with_height(3), 0u);
}

TEST(DesignTest, FixedCellAccounting) {
  Design design(test_chip());
  Cell cell;
  cell.width = 5;
  design.add_cell(cell);
  cell.fixed = true;
  cell.height_rows = 2;
  design.add_cell(cell);
  EXPECT_EQ(design.num_fixed_cells(), 1u);
  // Height census counts movable cells only.
  EXPECT_EQ(design.count_cells_with_height(1), 1u);
  EXPECT_EQ(design.count_cells_with_height(2), 0u);
}

TEST(DesignTest, PositionResetAndCommit) {
  Design design(test_chip());
  Cell cell;
  cell.width = 2;
  cell.gp_x = 5;
  cell.gp_y = 10;
  design.add_cell(cell);
  design.cells()[0].x = 7;
  design.cells()[0].y = 20;
  design.reset_positions_to_gp();
  EXPECT_DOUBLE_EQ(design.cells()[0].x, 5);
  EXPECT_DOUBLE_EQ(design.cells()[0].y, 10);
  design.cells()[0].x = 9;
  design.commit_positions_as_gp();
  EXPECT_DOUBLE_EQ(design.cells()[0].gp_x, 9);
}

TEST(DesignEcoTest, MoveCellClampsIntoDieOnAllBoundaries) {
  Design design(test_chip());
  Cell cell;
  cell.width = 5;
  design.add_cell(cell);

  // Past the right and top edges: flush against them, not outside (the
  // historical bug was clamping only at 0).
  design.move_cell(0, 200.0, 500.0);
  EXPECT_DOUBLE_EQ(design.cells()[0].gp_x, 95.0);   // 100 - width
  EXPECT_DOUBLE_EQ(design.cells()[0].gp_y, 70.0);   // 80 - row height

  design.move_cell(0, -50.0, -50.0);
  EXPECT_DOUBLE_EQ(design.cells()[0].gp_x, 0.0);
  EXPECT_DOUBLE_EQ(design.cells()[0].gp_y, 0.0);

  design.move_cell(0, 40.0, 25.0);
  EXPECT_DOUBLE_EQ(design.cells()[0].gp_x, 40.0);
  EXPECT_DOUBLE_EQ(design.cells()[0].gp_y, 25.0);
}

TEST(DesignEcoTest, MoveCellRejectsFixedAndErased) {
  Design design(test_chip());
  Cell cell;
  cell.width = 5;
  design.add_cell(cell);
  cell.fixed = true;
  cell.x = 10;
  cell.y = 0;
  design.add_cell(cell);

  EXPECT_THROW(design.move_cell(1, 20.0, 0.0), CheckError);
  design.erase_cell(0);
  EXPECT_THROW(design.move_cell(0, 20.0, 0.0), CheckError);
  EXPECT_THROW(design.erase_cell(0), CheckError);  // already erased
}

TEST(DesignEcoTest, InsertCellKeepsIdsStable) {
  Design design(test_chip());
  Cell cell;
  cell.width = 5;
  cell.gp_x = 3;
  design.add_cell(cell);
  cell.gp_x = 11;
  design.add_cell(cell);

  Cell extra;
  extra.width = 4;
  extra.gp_x = 250.0;  // clamped like move_cell
  extra.gp_y = 500.0;
  const std::size_t id = design.insert_cell(extra);
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(design.num_cells(), 3u);
  EXPECT_DOUBLE_EQ(design.cells()[0].gp_x, 3.0);  // untouched
  EXPECT_DOUBLE_EQ(design.cells()[1].gp_x, 11.0);
  EXPECT_DOUBLE_EQ(design.cells()[id].gp_x, 96.0);
  EXPECT_DOUBLE_EQ(design.cells()[id].gp_y, 70.0);
}

TEST(DesignEcoTest, EraseCellTombstonesAndStripsPins) {
  Design design(test_chip());
  Cell cell;
  cell.width = 5;
  design.add_cell(cell);
  design.add_cell(cell);
  Net net;
  net.pins.push_back({0, 1.0, 1.0});
  net.pins.push_back({1, 1.0, 1.0});
  design.add_net(net);

  design.erase_cell(0);
  EXPECT_TRUE(design.cells()[0].erased);
  EXPECT_EQ(design.num_cells(), 2u);  // the slot stays
  EXPECT_EQ(design.num_erased_cells(), 1u);
  ASSERT_EQ(design.nets()[0].pins.size(), 1u);
  EXPECT_EQ(design.nets()[0].pins[0].cell, 1u);
  // Erased cells drop out of the aggregate accounting.
  EXPECT_EQ(design.count_cells_with_height(1), 1u);
}

}  // namespace
}  // namespace mch::db
