#include "util/check.h"

#include <gtest/gtest.h>

#include <string>

namespace mch {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(MCH_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsCheckError) {
  EXPECT_THROW(MCH_CHECK(false), CheckError);
}

TEST(CheckTest, MessageContainsExpressionAndLocation) {
  try {
    MCH_CHECK(2 < 1);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(CheckTest, CheckMsgIncludesStreamedDetail) {
  try {
    MCH_CHECK_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(CheckTest, CheckErrorIsLogicError) {
  EXPECT_THROW(MCH_CHECK(false), std::logic_error);
}

}  // namespace
}  // namespace mch
