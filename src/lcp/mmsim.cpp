#include "lcp/mmsim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "linalg/power_iteration.h"
#include "runtime/parallel.h"
#include "runtime/scratch.h"
#include "util/check.h"
#include "util/timer.h"

namespace mch::lcp {

namespace {
using runtime::kGrainElementwise;
using runtime::parallel_for;
using runtime::parallel_reduce;

/// Grain for the non-1×1 block sweep of the fused kernel; mirrors the
/// block sweeps in linalg/block_diag.cpp.
constexpr std::size_t kGrainBlocks = 256;

/// Systems below this LCP dimension skip phase-time collection: two clock
/// reads per scope would rival the arithmetic of a tiny component solve.
constexpr std::size_t kPhaseProfileMinSize = 256;

/// Adds the scope's wall time to `bucket` when enabled; costs nothing (not
/// even a clock read) when disabled.
class PhaseTimer {
 public:
  PhaseTimer(bool enabled, double& bucket)
      : bucket_(enabled ? &bucket : nullptr) {
    if (bucket_) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (bucket_)
      *bucket_ += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* bucket_;
  std::chrono::steady_clock::time_point start_;
};

double fold_max(double a, double b) { return std::max(a, b); }

}  // namespace

using linalg::BlockDiagMatrix;
using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::Tridiagonal;

bool fused_kernels_default() {
  if (const char* env = std::getenv("MCH_FUSED_KERNELS")) {
    const std::string value(env);
    if (value == "0" || value == "off" || value == "false") return false;
  }
  return true;
}

Tridiagonal schur_tridiagonal(const BlockDiagMatrix& k, const CsrMatrix& b,
                              const std::vector<bool>* coupling_breaks) {
  const std::size_t m = b.rows();
  MCH_CHECK(coupling_breaks == nullptr || coupling_breaks->size() == m);
  Tridiagonal d(m);

  // Entry (r, r') of B K⁻¹ Bᵀ = Σ_{i,j} B[r,i] · K⁻¹[i,j] · B[r',j].
  // B has at most two nonzeros per row, so each entry needs at most four
  // K⁻¹ lookups; K⁻¹ is block diagonal so each lookup is O(log #blocks).
  const auto entry = [&](std::size_t r, std::size_t rp) {
    double sum = 0.0;
    for (std::size_t ka = b.row_ptr()[r]; ka < b.row_ptr()[r + 1]; ++ka)
      for (std::size_t kb = b.row_ptr()[rp]; kb < b.row_ptr()[rp + 1]; ++kb)
        sum += b.values()[ka] * b.values()[kb] *
               k.inverse_entry(b.col_idx()[ka], b.col_idx()[kb]);
    return sum;
  };

  for (std::size_t r = 0; r < m; ++r) {
    d.diag(r) = entry(r, r);
    if (r + 1 < m && !(coupling_breaks && (*coupling_breaks)[r + 1])) {
      d.upper(r) = entry(r, r + 1);
      d.lower(r) = entry(r + 1, r);
    }
  }
  return d;
}

MmsimSolver::MmsimSolver(const StructuredQp& qp, const MmsimOptions& options,
                         const std::vector<bool>* schur_coupling_breaks)
    : qp_(qp), opts_(options) {
  MCH_CHECK_MSG(opts_.beta > 0.0 && opts_.beta < 2.0,
                "beta must be in (0, 2)");
  MCH_CHECK(opts_.theta > 0.0 && opts_.gamma > 0.0);

  Timer timer;
  // (1,1) block of M + I: K/β* + I, block diagonal; store with inverses.
  // Scalar blocks shift in place through the flat array — same arithmetic
  // (v/β + 1, inverted as exactly its reciprocal) without a DenseMatrix.
  for (std::size_t blk = 0; blk < qp_.K.block_count(); ++blk) {
    if (qp_.K.is_scalar_block(blk)) {
      const std::size_t off = qp_.K.block_offset(blk);
      shifted_k_.add_scalar_block(qp_.K.scalar_values()[off] / opts_.beta +
                                  1.0);
      continue;
    }
    const DenseMatrix& kb = qp_.K.block(blk);
    const std::size_t n = kb.rows();
    DenseMatrix shifted(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        shifted(r, c) = kb(r, c) / opts_.beta + (r == c ? 1.0 : 0.0);
    shifted_k_.add_block(shifted);
  }

  d_ = mch::lcp::schur_tridiagonal(qp_.K, qp_.B, schur_coupling_breaks);
  // (2,2) block of M + I: D/θ* + I. The matrix is constant across the
  // iteration, so factor the Thomas pivots once here; every step then runs
  // only the short-recurrence forward sweep.
  shifted_d_ = d_.scaled_plus_identity(1.0 / opts_.theta, 1.0);
  MCH_CHECK_MSG(shifted_d_lu_.factor(shifted_d_), "D/θ + I singular");

  // Prebuild what the fused kernels traverse per element: the cached Bᵀ
  // view (so no per-product lock) and the scalar/general classification of
  // each variable's K block.
  bt_ = &qp_.B.transpose_view();
  general_var_.assign(qp_.K.size(), 0);
  for (const std::size_t b : qp_.K.general_block_indices()) {
    const std::size_t off = qp_.K.block_offset(b);
    const std::size_t size = qp_.K.block_size(b);
    for (std::size_t i = 0; i < size; ++i) general_var_[off + i] = 1;
    max_general_rows_ = std::max(max_general_rows_, size);
  }
  // Fixed-width-2 gather tables (see the header). Only the fused path reads
  // them, so skip the build entirely for reference-path solvers.
  if (opts_.fused) {
    const auto max_row_len = [](const linalg::CsrMatrix& mat) {
      std::size_t longest = 0;
      for (std::size_t r = 0; r < mat.rows(); ++r)
        longest = std::max(longest,
                           mat.row_ptr()[r + 1] - mat.row_ptr()[r]);
      return longest;
    };
    const std::size_t limit = std::numeric_limits<std::uint32_t>::max();
    // num_constraints() > 0: the padding slots load (and discard) column 0
    // of the opposite s half, which must therefore exist. An empty B makes
    // every gather a no-op anyway, so the CSR loops lose nothing there.
    if (qp_.num_constraints() > 0 && qp_.num_variables() > 0 &&
        qp_.num_variables() < limit && qp_.num_constraints() < limit &&
        max_row_len(qp_.B) <= 2 && max_row_len(*bt_) <= 2) {
      const auto build = [](const linalg::CsrMatrix& mat, Vector& gval,
                            std::vector<std::uint32_t>& gcol) {
        gval.assign(2 * mat.rows(), 0.0);
        gcol.assign(2 * mat.rows(), 0);
        for (std::size_t r = 0; r < mat.rows(); ++r) {
          std::size_t slot = 2 * r;
          for (std::size_t k = mat.row_ptr()[r]; k < mat.row_ptr()[r + 1];
               ++k, ++slot) {
            gval[slot] = mat.values()[k];
            gcol[slot] = static_cast<std::uint32_t>(mat.col_idx()[k]);
          }
          // Padding slots keep value 0.0; point them at the row's first
          // real column (or 0) so the gather load stays in-bounds.
          for (; slot < 2 * r + 2; ++slot) gcol[slot] = gcol[2 * r];
        }
      };
      build(*bt_, bt_gval_, bt_gcol_);
      build(qp_.B, b_gval_, b_gcol_);
      gather2_ = true;
    }
    // Flattened general-block tables (see the header): K block + inverse
    // per block, contiguous, so the block sweep streams one array instead
    // of chasing two small heap objects per block.
    const auto& gb = qp_.K.general_block_indices();
    gb_off_.resize(gb.size());
    gb_dim_.resize(gb.size());
    gb_data_.resize(gb.size());
    std::size_t total = 0;
    for (std::size_t g = 0; g < gb.size(); ++g) {
      const std::size_t bn = qp_.K.block_size(gb[g]);
      gb_off_[g] = qp_.K.block_offset(gb[g]);
      gb_dim_[g] = static_cast<std::uint32_t>(bn);
      gb_data_[g] = total;
      total += 2 * bn * bn;
    }
    gb_vals_.resize(total);
    for (std::size_t g = 0; g < gb.size(); ++g) {
      const std::size_t bn = gb_dim_[g];
      const DenseMatrix& kb = qp_.K.block(gb[g]);
      const DenseMatrix& inv = shifted_k_.block_inverse(gb[g]);
      double* out = gb_vals_.data() + gb_data_[g];
      for (std::size_t r = 0; r < bn; ++r)
        for (std::size_t c = 0; c < bn; ++c) *out++ = kb(r, c);
      for (std::size_t r = 0; r < bn; ++r)
        for (std::size_t c = 0; c < bn; ++c) *out++ = inv(r, c);
    }
  }
  profile_ = qp_.lcp_size() >= kPhaseProfileMinSize;
  setup_seconds_ = timer.seconds();
}

double MmsimSolver::estimate_mu_max() const {
  const std::size_t m = qp_.num_constraints();
  if (m == 0) return 0.0;
  Vector t, u, v;
  const auto gamma_op = [&](const Vector& y, Vector& out) {
    qp_.B.multiply_transpose(y, t);  // t = Bᵀ y
    qp_.K.solve(t, u);               // u = K⁻¹ t
    qp_.B.multiply(u, v);            // v = B u
    MCH_CHECK_MSG(d_.solve(v, out), "D is singular");  // out = D⁻¹ v
  };
  return linalg::power_iteration(m, gamma_op).eigenvalue;
}

double MmsimSolver::suggest_theta() const {
  const double mu_max = estimate_mu_max();
  if (mu_max <= 0.0) return opts_.theta;
  const double bound = 2.0 * (2.0 - opts_.beta) / (opts_.beta * mu_max);
  // Theorem 2's bound assumes the exact Schur complement; with the
  // tridiagonal approximation D the empirically safe region is narrower
  // (bench/ablation_parameters maps it), so never suggest beyond the
  // paper's validated θ* = 0.5.
  return std::min(0.9 * bound, 0.5);
}

MmsimResult MmsimSolver::solve() const {
  return solve_from(Vector(qp_.lcp_size(), 0.0));
}

void MmsimResidualPartials::merge_max(const MmsimResidualPartials& other) {
  z_norm = std::max(z_norm, other.z_norm);
  w_norm = std::max(w_norm, other.w_norm);
  z_negativity = std::max(z_negativity, other.z_negativity);
  w_negativity = std::max(w_negativity, other.w_negativity);
  complementarity = std::max(complementarity, other.complementarity);
}

MmsimResidualPartials MmsimSolver::residual_partials(const Vector& z) const {
  Vector w;
  qp_.lcp_apply(z, w);
  MmsimResidualPartials partials;
  partials.z_norm = linalg::norm_inf(z);
  partials.w_norm = linalg::norm_inf(w);
  for (std::size_t i = 0; i < z.size(); ++i) {
    partials.z_negativity = std::max(partials.z_negativity, -z[i]);
    partials.w_negativity = std::max(partials.w_negativity, -w[i]);
    partials.complementarity =
        std::max(partials.complementarity, std::abs(z[i] * w[i]));
  }
  return partials;
}

bool MmsimSolver::residual_ok(const MmsimResidualPartials& partials,
                              double tolerance) {
  const double scale_z = 1.0 + partials.z_norm;
  const double scale_w = 1.0 + partials.w_norm;
  return partials.z_negativity <= tolerance * scale_z &&
         partials.w_negativity <= tolerance * scale_w &&
         partials.complementarity <= tolerance * scale_z * scale_w;
}

bool MmsimSolver::scaled_residual_ok(const Vector& z) const {
  return residual_ok(residual_partials(z), opts_.residual_tolerance);
}

MmsimSolver::State MmsimSolver::make_state() const {
  State state;
  reset_state(state);
  return state;
}

MmsimSolver::State MmsimSolver::make_state(const Vector& s0) const {
  State state;
  reset_state(state, &s0);
  return state;
}

void MmsimSolver::reset_state(State& state, const Vector* s0) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();
  if (s0 != nullptr) {
    MCH_CHECK(s0->size() == n + m);
    state.s1.assign(s0->begin(),
                    s0->begin() + static_cast<std::ptrdiff_t>(n));
    state.s2.assign(s0->begin() + static_cast<std::ptrdiff_t>(n), s0->end());
  } else {
    state.s1.assign(n, 0.0);
    state.s2.assign(m, 0.0);
  }
  state.z.assign(n + m, 0.0);
  state.z_prev.assign(n + m, 0.0);
  state.abs1.resize(n);
  state.abs2.resize(m);
  state.rhs1.resize(n);
  state.rhs2.resize(m);
  state.new_s1.resize(n);
  state.new_s2.resize(m);
  state.iterations = 0;
  state.phase = MmsimPhaseTimes{};
}

double MmsimSolver::step(State& state) const {
  return opts_.fused ? step_fused(state) : step_reference(state);
}

// The retained stage-by-stage iteration: the bitwise reference the fused
// kernels must reproduce (tests/lcp/mmsim_fused_test compares them step by
// step) and the MCH_FUSED_KERNELS=0 escape hatch. Two pieces of shared
// machinery intentionally differ from the pre-fusion code — the prefactored
// Thomas solve and the hoisted 1/γ multiply — because both paths must use
// the same rounding for their bitwise contract to hold.
double MmsimSolver::step_reference(State& state) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();
  Vector& s1 = state.s1;
  Vector& s2 = state.s2;
  Vector& abs1 = state.abs1;
  Vector& abs2 = state.abs2;
  Vector& rhs1 = state.rhs1;
  Vector& rhs2 = state.rhs2;
  const double inv_beta_minus_1 = 1.0 / opts_.beta - 1.0;
  const double inv_theta = 1.0 / opts_.theta;
  const double inv_gamma = 1.0 / opts_.gamma;

  {
    PhaseTimer timer(profile_, state.phase.kernel_seconds);
    state.z_prev = state.z;

    // All element-wise stages of the modulus update run on the runtime; the
    // matrix products parallelize internally. Each stage owns its output
    // elements, so the iterates are identical at every thread count.
    parallel_for(std::size_t{0}, n, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     abs1[i] = std::abs(s1[i]);
                 });
    parallel_for(std::size_t{0}, m, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     abs2[i] = std::abs(s2[i]);
                 });
    rhs1.assign(n, 0.0);
  }

  // rhs1 = (1/β−1)·K s1 + Bᵀ s2 + (|s1| − K|s1|) + Bᵀ|s2| − γ p.
  {
    PhaseTimer timer(profile_, state.phase.spmv_seconds);
    qp_.K.multiply_add(inv_beta_minus_1, s1, rhs1);
    qp_.B.multiply_transpose_add(1.0, s2, rhs1);
  }
  {
    PhaseTimer timer(profile_, state.phase.kernel_seconds);
    parallel_for(std::size_t{0}, n, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) rhs1[i] += abs1[i];
                 });
  }
  {
    PhaseTimer timer(profile_, state.phase.spmv_seconds);
    qp_.K.multiply_add(-1.0, abs1, rhs1);
    qp_.B.multiply_transpose_add(1.0, abs2, rhs1);
  }
  {
    PhaseTimer timer(profile_, state.phase.kernel_seconds);
    parallel_for(std::size_t{0}, n, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     rhs1[i] -= opts_.gamma * qp_.p[i];
                 });
  }

  // Forward solve of the block lower triangular system:
  //   (K/β + I)·s1' = rhs1             (block-diagonal solve)
  {
    PhaseTimer timer(profile_, state.phase.spmv_seconds);
    shifted_k_.solve(rhs1, state.new_s1);
  }

  //   rhs2 = (D/θ)·s2 − B|s1| + |s2| + γ b − B·s1_used, where s1_used is
  //   the fresh iterate under the paper's Gauss–Seidel splitting (the B
  //   block of M) or the previous one under the Jacobi ablation.
  if (m > 0) {
    {
      PhaseTimer timer(profile_, state.phase.spmv_seconds);
      d_.multiply(s2, rhs2);
    }
    {
      PhaseTimer timer(profile_, state.phase.kernel_seconds);
      parallel_for(std::size_t{0}, m, kGrainElementwise,
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t i = lo; i < hi; ++i)
                       rhs2[i] = inv_theta * rhs2[i] + abs2[i] +
                                 opts_.gamma * qp_.b[i];
                   });
    }
    {
      PhaseTimer timer(profile_, state.phase.spmv_seconds);
      qp_.B.multiply_add(-1.0, abs1, rhs2);
      qp_.B.multiply_add(
          -1.0,
          opts_.splitting == MmsimSplitting::kGaussSeidel ? state.new_s1 : s1,
          rhs2);
    }
    //   (D/θ + I)·s2' = rhs2           (Thomas solve, prefactored)
    PhaseTimer timer(profile_, state.phase.thomas_seconds);
    shifted_d_lu_.solve(rhs2, state.new_s2, state.thomas_d);
  } else {
    state.new_s2.clear();
  }

  s1.swap(state.new_s1);
  s2.swap(state.new_s2);

  // z = (|s| + s)/γ  (so z = max(s, 0)·2/γ).
  Vector& z = state.z;
  {
    PhaseTimer timer(profile_, state.phase.kernel_seconds);
    parallel_for(std::size_t{0}, n, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     z[i] = (std::abs(s1[i]) + s1[i]) * inv_gamma;
                 });
    parallel_for(std::size_t{0}, m, kGrainElementwise,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i)
                     z[n + i] = (std::abs(s2[i]) + s2[i]) * inv_gamma;
                 });
  }

  ++state.iterations;
  PhaseTimer timer(profile_, state.phase.reduction_seconds);
  return linalg::diff_norm_inf(z, state.z_prev);
}

// Fused iteration: one parallel sweep per half-step computes |s|, the rhs
// chain, the triangular solve's local part, the z update, and the delta
// partial in a single pass, with Bᵀ/B gathers inlined through the cached
// CSR views. No abs1/abs2/rhs1 intermediates are materialized.
//
// Bitwise equality with step_reference holds because every output element's
// floating-point operation chain is replicated term by term in the
// reference order — including the zero-valued scalar-sweep terms that
// BlockDiagMatrix::multiply_add contributes at non-1×1-block positions, and
// recomputing |s| on the fly (std::abs is exact). The delta is an ∞-norm
// max-fold, associative and commutative over the identical value multiset,
// so splitting it across the three sweeps changes nothing.
double MmsimSolver::step_fused(State& state) const {
  return gather2_ ? step_fused_impl<true>(state)
                  : step_fused_impl<false>(state);
}

// kGather2 = true swaps every CSR row loop for a constant-trip-count pass
// over the padded width-2 tables: no per-row trip-count branch to
// mispredict, uint32 column loads, no row_ptr loads at all. The padding
// terms are trailing `0.0 · x` adds; x + ±0.0 == x bitwise for every x
// except −0.0 + +0.0 == +0.0, so the only observable deviation from the
// CSR loop is the sign of an exactly-zero accumulator — which the chains
// below erase before it can touch a nonzero bit (each gather sum is
// followed by further adds, and z = (|s|+s)/γ collapses zero signs), so
// z/x/dual stay bitwise identical to step_reference.
template <bool kGather2>
double MmsimSolver::step_fused_impl(State& state) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();
  Vector& s1 = state.s1;
  Vector& s2 = state.s2;
  Vector& rhs2 = state.rhs2;
  Vector& new_s1 = state.new_s1;
  Vector& new_s2 = state.new_s2;
  Vector& z = state.z;
  const double c1 = 1.0 / opts_.beta - 1.0;
  const double inv_theta = 1.0 / opts_.theta;
  const double gamma = opts_.gamma;
  const double inv_gamma = 1.0 / opts_.gamma;

  const std::vector<double>& kv = qp_.K.scalar_values();
  const std::vector<double>& siv = shifted_k_.scalar_inverses();
  const std::vector<std::size_t>& bt_rp = bt_->row_ptr();
  const auto& bt_ci = bt_->col_idx();
  const std::vector<double>& bt_v = bt_->values();
  const double* const bt_gv = bt_gval_.data();
  const std::uint32_t* const bt_gc = bt_gcol_.data();

  double delta = 0.0;
  {
    PhaseTimer timer(profile_, state.phase.kernel_seconds);

    // Primal half, 1×1-block rows (the ~90% fast path).
    const double scalar_delta = parallel_reduce(
        std::size_t{0}, n, kGrainElementwise, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double best = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            if (general_var_[i]) continue;
            const double s1i = s1[i];
            const double a1 = std::abs(s1i);
            // One traversal of the Bᵀ row feeds both gather terms (each
            // accumulator folds the same values in the same order as its
            // standalone gather would).
            double g_s2 = 0.0;   // Bᵀ s2
            double g_abs = 0.0;  // Bᵀ |s2|
            if constexpr (kGather2) {
              for (std::size_t k = 2 * i; k < 2 * i + 2; ++k) {
                const double v = bt_gv[k];
                const double x = s2[bt_gc[k]];
                g_s2 += v * x;
                g_abs += v * std::abs(x);
              }
            } else {
              for (std::size_t k = bt_rp[i]; k < bt_rp[i + 1]; ++k) {
                const double v = bt_v[k];
                const double x = s2[bt_ci[k]];
                g_s2 += v * x;
                g_abs += v * std::abs(x);
              }
            }
            double r = 0.0;
            r += c1 * kv[i] * s1i;   // (1/β−1)·K s1, scalar sweep
            r += g_s2;
            r += a1;                 // + |s1|
            r += -1.0 * kv[i] * a1;  // − K|s1|, scalar sweep
            r += g_abs;
            r -= gamma * qp_.p[i];
            const double ns = siv[i] * r;  // (K/β + I)⁻¹, scalar row
            new_s1[i] = ns;
            const double zi = (std::abs(ns) + ns) * inv_gamma;
            best = std::max(best, std::abs(zi - z[i]));
            z[i] = zi;
          }
          return best;
        },
        fold_max);

    // Primal half, multi-row blocks (tall cells), streaming the flattened
    // gb_* tables. The per-thread scratch holds the block's rhs; the chain
    // includes the zero terms the flat scalar sweeps of the reference
    // contribute at these positions. kBn = 2 compiles the dominant
    // double-height case with every block loop fully unrolled; kBn = 0 is
    // the runtime-size fallback. Identical values in identical order either
    // way.
    const auto block_body = [&]<std::size_t kBn>(std::size_t g, double& best,
                                                 std::vector<double>& rb) {
      const std::size_t off = gb_off_[g];
      const std::size_t bn = kBn != 0 ? kBn : gb_dim_[g];
      const double* const kd = gb_vals_.data() + gb_data_[g];
      const double* const invd = kd + bn * bn;
      for (std::size_t r = 0; r < bn; ++r) {
        const std::size_t i = off + r;
        const double s1i = s1[i];
        const double a1 = std::abs(s1i);
        double g_s2 = 0.0;   // Bᵀ s2
        double g_abs = 0.0;  // Bᵀ |s2|, same single traversal
        if constexpr (kGather2) {
          for (std::size_t k = 2 * i; k < 2 * i + 2; ++k) {
            const double v = bt_gv[k];
            const double x = s2[bt_gc[k]];
            g_s2 += v * x;
            g_abs += v * std::abs(x);
          }
        } else {
          for (std::size_t k = bt_rp[i]; k < bt_rp[i + 1]; ++k) {
            const double v = bt_v[k];
            const double x = s2[bt_ci[k]];
            g_s2 += v * x;
            g_abs += v * std::abs(x);
          }
        }
        double acc = 0.0;
        acc += c1 * kv[i] * s1i;  // zero term of the scalar sweep
        double sum = 0.0;
        for (std::size_t c = 0; c < bn; ++c)
          sum += kd[r * bn + c] * s1[off + c];
        acc += c1 * sum;  // (1/β−1)·K s1, block sweep
        acc += g_s2;
        acc += a1;
        acc += -1.0 * kv[i] * a1;  // zero term of the scalar sweep
        sum = 0.0;
        for (std::size_t c = 0; c < bn; ++c)
          sum += kd[r * bn + c] * std::abs(s1[off + c]);
        acc += -1.0 * sum;  // − K|s1|, block sweep
        acc += g_abs;
        acc -= gamma * qp_.p[i];
        rb[r] = acc;
      }
      for (std::size_t r = 0; r < bn; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < bn; ++c) sum += invd[r * bn + c] * rb[c];
        new_s1[off + r] = sum;
        const double zi = (std::abs(sum) + sum) * inv_gamma;
        best = std::max(best, std::abs(zi - z[off + r]));
        z[off + r] = zi;
      }
    };
    const double general_delta = parallel_reduce(
        std::size_t{0}, gb_off_.size(), kGrainBlocks, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double best = 0.0;
          std::vector<double>& rb =
              runtime::thread_scratch(0, max_general_rows_);
          for (std::size_t g = lo; g < hi; ++g) {
            if (gb_dim_[g] == 2)
              block_body.template operator()<2>(g, best, rb);
            else
              block_body.template operator()<0>(g, best, rb);
          }
          return best;
        },
        fold_max);
    delta = std::max(scalar_delta, general_delta);
  }

  if (m > 0) {
    {
      PhaseTimer timer(profile_, state.phase.kernel_seconds);
      // Dual rhs in one sweep: the tridiagonal D row, the modulus terms,
      // and both B-row gathers (|s1| and the splitting-dependent s1).
      const Vector& s1_used =
          opts_.splitting == MmsimSplitting::kGaussSeidel ? new_s1 : s1;
      const std::vector<std::size_t>& b_rp = qp_.B.row_ptr();
      const auto& b_ci = qp_.B.col_idx();
      const std::vector<double>& b_v = qp_.B.values();
      const double* const b_gv = b_gval_.data();
      const std::uint32_t* const b_gc = b_gcol_.data();
      parallel_for(
          std::size_t{0}, m, kGrainElementwise,
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              double sum = d_.diag(i) * s2[i];
              if (i > 0) sum += d_.lower(i - 1) * s2[i - 1];
              if (i + 1 < m) sum += d_.upper(i) * s2[i + 1];
              double t =
                  inv_theta * sum + std::abs(s2[i]) + gamma * qp_.b[i];
              double g_abs = 0.0;   // B |s1|
              double g_used = 0.0;  // B s1_used, same single traversal
              if constexpr (kGather2) {
                for (std::size_t k = 2 * i; k < 2 * i + 2; ++k) {
                  const double v = b_gv[k];
                  const std::size_t c = b_gc[k];
                  g_abs += v * std::abs(s1[c]);
                  g_used += v * s1_used[c];
                }
              } else {
                for (std::size_t k = b_rp[i]; k < b_rp[i + 1]; ++k) {
                  const double v = b_v[k];
                  const std::size_t c = b_ci[k];
                  g_abs += v * std::abs(s1[c]);
                  g_used += v * s1_used[c];
                }
              }
              t += -1.0 * g_abs;
              t += -1.0 * g_used;
              rhs2[i] = t;
            }
          });
    }
    {
      PhaseTimer timer(profile_, state.phase.thomas_seconds);
      shifted_d_lu_.solve(rhs2, new_s2, state.thomas_d);
    }
    {
      PhaseTimer timer(profile_, state.phase.kernel_seconds);
      const double dual_delta = parallel_reduce(
          std::size_t{0}, m, kGrainElementwise, 0.0,
          [&](std::size_t lo, std::size_t hi) {
            double best = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
              const double ns = new_s2[i];
              const double zi = (std::abs(ns) + ns) * inv_gamma;
              best = std::max(best, std::abs(zi - z[n + i]));
              z[n + i] = zi;
            }
            return best;
          },
          fold_max);
      delta = std::max(delta, dual_delta);
    }
  } else {
    new_s2.clear();
  }

  s1.swap(new_s1);
  s2.swap(new_s2);
  ++state.iterations;
  return delta;
}

MmsimResult MmsimSolver::run_loop(State& state) const {
  const std::size_t n = qp_.num_variables();
  const std::size_t m = qp_.num_constraints();

  Timer timer;
  MmsimResult result;
  result.setup_seconds = setup_seconds_;

  for (std::size_t k = 0; k < opts_.max_iterations; ++k) {
    result.final_delta = step(state);
    result.iterations = k + 1;
    if (opts_.trace_stride > 0 && k % opts_.trace_stride == 0)
      result.trace.emplace_back(k + 1, result.final_delta);
    if (k > 0 && result.final_delta < opts_.tolerance) {
      bool stop = true;
      if (opts_.residual_check) {
        PhaseTimer phase_timer(profile_, state.phase.reduction_seconds);
        stop = scaled_residual_ok(state.z);
      }
      if (stop) {
        result.converged = true;
        break;
      }
    }
  }

  // Copy (not move) out of the state: its buffers stay alive for the next
  // reset_state() to reuse.
  result.z = state.z;
  result.x.assign(result.z.begin(),
                  result.z.begin() + static_cast<std::ptrdiff_t>(n));
  result.dual.assign(result.z.begin() + static_cast<std::ptrdiff_t>(n),
                     result.z.end());
  result.s.resize(n + m);
  std::copy(state.s1.begin(), state.s1.end(), result.s.begin());
  std::copy(state.s2.begin(), state.s2.end(),
            result.s.begin() + static_cast<std::ptrdiff_t>(n));
  result.phase = state.phase;
  result.solve_seconds = timer.seconds();
  return result;
}

MmsimResult MmsimSolver::solve_from(const Vector& s0) const {
  State state = make_state(s0);
  return run_loop(state);
}

MmsimResult MmsimSolver::solve_in(State& state, const Vector* s0) const {
  reset_state(state, s0);
  return run_loop(state);
}

}  // namespace mch::lcp
