// SVG layout plots — reproduces Figure 5 of the paper.
//
// Draws the chip outline, the row/rail grid, cells in blue, and (optionally)
// red displacement segments from each cell's GP position to its legalized
// position, exactly the visual of Fig. 5(a); a window option produces the
// zoomed partial layout of Fig. 5(b).
#pragma once

#include <string>

#include "db/design.h"

namespace mch::io {

struct SvgOptions {
  double pixels_per_unit = 1.0;   ///< drawing scale
  bool draw_displacement = true;  ///< red GP→legal segments (Fig. 5 style)
  bool draw_rows = true;          ///< row boundaries / rail shading
  /// Optional window in design coordinates; full chip when w or h is 0.
  double window_x = 0.0;
  double window_y = 0.0;
  double window_w = 0.0;
  double window_h = 0.0;
};

/// Renders the design's current placement to an SVG string.
std::string render_svg(const db::Design& design, const SvgOptions& options = {});

/// Renders and writes to a file.
void save_svg(const std::string& path, const db::Design& design,
              const SvgOptions& options = {});

}  // namespace mch::io
