// Lightweight contract-checking macros.
//
// MCH_CHECK is always on and throws mch::CheckError so that callers (and
// tests) can observe violated preconditions without aborting the process.
// MCH_DCHECK compiles away in release builds (NDEBUG); use it on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mch {

/// Thrown when an MCH_CHECK precondition/invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace mch

#define MCH_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::mch::detail::check_failed(#expr, __FILE__, __LINE__, {});    \
  } while (false)

#define MCH_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream mch_os_;                                    \
      mch_os_ << msg;                                                \
      ::mch::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                  mch_os_.str());                    \
    }                                                                \
  } while (false)

#ifdef NDEBUG
#define MCH_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define MCH_DCHECK(expr) MCH_CHECK(expr)
#endif
