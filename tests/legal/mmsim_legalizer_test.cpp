#include "legal/mmsim_legalizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/abacus.h"
#include "db/legality.h"
#include "gen/generator.h"

namespace mch::legal {
namespace {

db::Design small_design(std::size_t singles, std::size_t doubles,
                        double density, std::uint64_t seed) {
  gen::GeneratorOptions opts;
  opts.seed = seed;
  opts.nets_per_cell = 0.0;
  return gen::generate_random_design(singles, doubles, density, opts);
}

TEST(MmsimLegalizerTest, ProducesRowAlignedOverlapFreeContinuousResult) {
  db::Design design = small_design(300, 40, 0.6, 3);
  const RowAssignment rows = assign_rows(design);
  const MmsimLegalizerStats stats =
      mmsim_legalize_continuous(design, rows);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.iterations, 0u);

  // Continuous output: y on rows, x possibly off-site but overlap-free up
  // to the solver tolerance and subcell mismatch.
  db::LegalityOptions options;
  options.require_site_alignment = false;
  options.tolerance = 1e-2;
  const db::LegalityReport report = db::check_legality(design, options);
  EXPECT_EQ(report.overlaps, 0u) << report.summary();
  EXPECT_EQ(report.off_row, 0u);
  EXPECT_EQ(report.rail_mismatches, 0u);
}

TEST(MmsimLegalizerTest, LambdaSuppressesSubcellMismatch) {
  double previous = 1e18;
  for (const double lambda : {1.0, 100.0, 10000.0}) {
    db::Design design = small_design(100, 40, 0.8, 5);
    const RowAssignment rows = assign_rows(design);
    MmsimLegalizerOptions options;
    options.model.lambda = lambda;
    options.mmsim.tolerance = 1e-7;
    options.mmsim.max_iterations = 150000;
    const MmsimLegalizerStats stats =
        mmsim_legalize_continuous(design, rows, options);
    EXPECT_TRUE(stats.converged) << "lambda " << lambda;
    EXPECT_LE(stats.max_mismatch, previous + 1e-9) << "lambda " << lambda;
    previous = stats.max_mismatch;
  }
  // At the paper's λ = 1000+ the mismatch is far below a site width.
  EXPECT_LT(previous, 1e-2);
}

TEST(MmsimLegalizerTest, MatchesPlaceRowOnSingleHeightFixedRows) {
  // The §5.3 equivalence at the solver level, before any site snapping.
  db::Design mmsim_design = small_design(250, 0, 0.7, 7);
  db::Design placerow_design = mmsim_design;

  const RowAssignment rows = assign_rows(mmsim_design);
  MmsimLegalizerOptions options;
  options.mmsim.tolerance = 1e-9;
  options.mmsim.max_iterations = 200000;
  mmsim_legalize_continuous(mmsim_design, rows, options);

  baselines::placerow_legalize_fixed_rows(placerow_design,
                                          /*clamp_right_boundary=*/false);

  for (std::size_t i = 0; i < mmsim_design.num_cells(); ++i)
    EXPECT_NEAR(mmsim_design.cells()[i].x, placerow_design.cells()[i].x,
                1e-4)
        << "cell " << i;
}

TEST(MmsimLegalizerTest, AutoThetaConvergesToSameSolution) {
  db::Design a = small_design(120, 20, 0.6, 9);
  db::Design b = a;
  const RowAssignment rows_a = assign_rows(a);
  const RowAssignment rows_b = assign_rows(b);

  MmsimLegalizerOptions fixed;
  fixed.mmsim.tolerance = 1e-8;
  const MmsimLegalizerStats sa = mmsim_legalize_continuous(a, rows_a, fixed);

  MmsimLegalizerOptions automatic = fixed;
  automatic.auto_theta = true;
  const MmsimLegalizerStats sb =
      mmsim_legalize_continuous(b, rows_b, automatic);

  EXPECT_TRUE(sa.converged);
  EXPECT_TRUE(sb.converged);
  EXPECT_GT(sb.theta_used, 0.0);
  for (std::size_t i = 0; i < a.num_cells(); ++i)
    EXPECT_NEAR(a.cells()[i].x, b.cells()[i].x, 1e-4);
}

TEST(MmsimLegalizerTest, StatsPopulated) {
  db::Design design = small_design(150, 20, 0.6, 11);
  const RowAssignment rows = assign_rows(design);
  const MmsimLegalizerStats stats = mmsim_legalize_continuous(design, rows);
  EXPECT_EQ(stats.num_variables, 150u + 2 * 20u);
  EXPECT_GT(stats.num_constraints, 0u);
  EXPECT_GT(stats.solve_seconds, 0.0);
  EXPECT_LT(stats.objective, 0.0);  // ½‖x‖²−xᵀx' < 0 near the targets
}

// Warm starting (tiered mode re-entering with a SolverWorkspace) is an
// iteration-count optimization, never a result-quality change: the warm
// solve must converge, to the same solution up to the solver tolerance.
TEST(MmsimLegalizerTest, TieredWarmStartConvergesToColdSolution) {
  db::Design cold_design = small_design(400, 60, 0.7, 19);
  const RowAssignment rows = assign_rows(cold_design);
  db::Design warm_design = cold_design;

  MmsimLegalizerOptions options;
  options.partition = PartitionMode::kTiered;
  options.mmsim.tolerance = 1e-7;
  options.mmsim.max_iterations = 150000;

  const MmsimLegalizerStats cold =
      mmsim_legalize_continuous(cold_design, rows, options);
  ASSERT_TRUE(cold.converged);

  // Re-entering through one workspace: the first call populates the warm
  // vectors, the second starts every component from its previous s.
  lcp::SolverWorkspace workspace;
  options.workspace = &workspace;
  db::Design scratch_design = warm_design;
  ASSERT_TRUE(
      mmsim_legalize_continuous(scratch_design, rows, options).converged);
  const MmsimLegalizerStats warm =
      mmsim_legalize_continuous(warm_design, rows, options);
  ASSERT_TRUE(warm.converged);

  // Same tolerance, same fixed point: positions agree to solver tolerance.
  for (std::size_t i = 0; i < cold_design.num_cells(); ++i) {
    EXPECT_NEAR(warm_design.cells()[i].x, cold_design.cells()[i].x, 1e-4)
        << "cell " << i;
  }
  // Warm starting from the converged s of an identical solve should not
  // take more iterations than the cold critical path.
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(MmsimLegalizerTest, PreservesCellOrderingWithinRows) {
  // The key property motivating the whole approach (paper Fig. 5(b)).
  db::Design design = small_design(500, 80, 0.8, 13);
  const RowAssignment rows = assign_rows(design);
  db::Design input = design;
  mmsim_legalize_continuous(design, rows);

  // For every pair of cells sharing a row with known GP order, the final
  // x order must match.
  for (std::size_t i = 0; i < design.num_cells(); ++i)
    for (std::size_t j = i + 1; j < design.num_cells(); ++j) {
      const db::Cell& a = design.cells()[i];
      const db::Cell& b = design.cells()[j];
      const bool share_row =
          rows[i] < rows[j] + b.height_rows && rows[j] < rows[i] + a.height_rows;
      if (!share_row) continue;
      const double gp_a = input.cells()[i].gp_x;
      const double gp_b = input.cells()[j].gp_x;
      if (gp_a == gp_b) continue;
      const bool gp_before = gp_a < gp_b || (gp_a == gp_b && i < j);
      if (gp_before)
        EXPECT_LE(a.x, b.x + 1e-6) << i << " vs " << j;
      else
        EXPECT_LE(b.x, a.x + 1e-6) << i << " vs " << j;
    }
}

}  // namespace
}  // namespace mch::legal
