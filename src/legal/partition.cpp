#include "legal/partition.h"

#include <algorithm>

#include "util/check.h"

namespace mch::legal {

ConstraintPartition finalize_partition(UnionFind& uf,
                                       const LegalizationModel& model) {
  const std::size_t n = model.num_variables();
  const std::size_t m = model.qp.num_constraints();
  const auto& B = model.qp.B;
  check_index_range(n, "partition variables");
  check_index_range(m, "partition constraints");

  ConstraintPartition partition;
  partition.variable_component.assign(n, 0);

  // Canonical component ids: ascending smallest variable index. Scanning
  // the variables in order and numbering unseen roots achieves exactly
  // that, and fills component_variables sorted as a side effect.
  std::vector<std::size_t> root_component(n, static_cast<std::size_t>(-1));
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t root = uf.find(v);
    if (root_component[root] == static_cast<std::size_t>(-1)) {
      root_component[root] = partition.component_variables.size();
      partition.component_variables.emplace_back();
    }
    const std::size_t c = root_component[root];
    partition.variable_component[v] = static_cast<index_t>(c);
    partition.component_variables[c].push_back(static_cast<index_t>(v));
  }

  partition.constraint_component.assign(m, 0);
  partition.component_constraints.resize(partition.num_components());
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t c =
        partition.variable_component[B.col_idx()[B.row_ptr()[r]]];
    partition.constraint_component[r] = static_cast<index_t>(c);
    partition.component_constraints[c].push_back(static_cast<index_t>(r));
  }
  return partition;
}

std::size_t ConstraintPartition::max_component_size() const {
  std::size_t worst = 0;
  for (std::size_t c = 0; c < num_components(); ++c)
    worst = std::max(worst, component_size(c));
  return worst;
}

double ConstraintPartition::mean_component_size() const {
  if (num_components() == 0) return 0.0;
  std::size_t total = 0;
  for (std::size_t c = 0; c < num_components(); ++c)
    total += component_size(c);
  return static_cast<double>(total) / static_cast<double>(num_components());
}

ConstraintPartition partition_model(const LegalizationModel& model) {
  const std::size_t n = model.num_variables();
  const std::size_t m = model.qp.num_constraints();
  UnionFind uf(n);

  // Subcell ties: each Hessian block spans one cell's contiguous variables.
  const auto& k = model.qp.K;
  for (std::size_t b = 0; b < k.block_count(); ++b) {
    const std::size_t off = k.block_offset(b);
    for (std::size_t i = 1; i < k.block_size(b); ++i)
      uf.unite(off, off + i);
  }

  // Spacing chains: each row of B couples its (at most two) variables.
  const auto& B = model.qp.B;
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t begin = B.row_ptr()[r];
    const std::size_t end = B.row_ptr()[r + 1];
    MCH_CHECK_MSG(end > begin, "constraint " << r << " has no variables");
    for (std::size_t e = begin + 1; e < end; ++e)
      uf.unite(B.col_idx()[begin], B.col_idx()[e]);
  }

  return finalize_partition(uf, model);
}

ConstraintPartition repartition_model(const LegalizationModel& model,
                                      const LegalizationModel& prev_model,
                                      const ConstraintPartition& previous,
                                      const PartitionDelta& delta) {
  const std::size_t n = model.num_variables();
  const std::size_t m = model.qp.num_constraints();
  MCH_CHECK(delta.touched_cells.size() == model.cell_first_var.size());
  UnionFind uf(n);

  // A previous component is dirty when any of its variables belongs to a
  // touched cell or sits in an affected row; only dirty components can
  // have gained or lost edges, so clean ones survive verbatim.
  const auto affected = [&](std::size_t row) {
    return row < delta.affected_rows.size() &&
           delta.affected_rows[row] != 0;
  };
  std::vector<char> prev_dirty(previous.num_components(), 0);
  for (std::size_t v = 0; v < prev_model.num_variables(); ++v) {
    const VariableInfo& info = prev_model.variables[v];
    if (delta.touched_cells[info.cell] != 0 ||
        affected(prev_model.base_rows[info.cell] + info.subrow))
      prev_dirty[previous.variable_component[v]] = 1;
  }

  // Variables are matched across the two models by (cell, subrow): ids are
  // stable and an untouched cell keeps its variable count.
  const auto to_new_var = [&](std::size_t prev_var) {
    const VariableInfo& info = prev_model.variables[prev_var];
    const std::size_t first = model.cell_first_var[info.cell];
    MCH_CHECK_MSG(first != LegalizationModel::kNoVariable,
                  "clean component references erased cell " << info.cell);
    return first + info.subrow;
  };

  // Clean previous components are swallowed with one wholesale union each:
  // their internal edge structure cannot have changed (cells untouched,
  // rows unaffected), so walking their chains again is pure waste.
  for (std::size_t c = 0; c < previous.num_components(); ++c) {
    if (prev_dirty[c]) continue;
    const std::vector<index_t>& vars = previous.component_variables[c];
    const std::size_t anchor = to_new_var(vars[0]);
    for (std::size_t i = 1; i < vars.size(); ++i)
      uf.unite(anchor, to_new_var(vars[i]));
  }

  // Subcell ties are per-cell and cheap; walk them all (this also wires up
  // inserted multi-row cells, which have no previous component).
  const auto& k = model.qp.K;
  for (std::size_t b = 0; b < k.block_count(); ++b) {
    const std::size_t off = k.block_offset(b);
    for (std::size_t i = 1; i < k.block_size(b); ++i)
      uf.unite(off, off + i);
  }

  // Spacing chains: walk a new B row only when its chip row is affected or
  // its variables came from a dirty previous component. Rows failing both
  // tests belong to a clean component and were covered by the wholesale
  // union above — skipping their find()-heavy unions is where the
  // incremental repartition earns its keep.
  const auto& B = model.qp.B;
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t begin = B.row_ptr()[r];
    const std::size_t end = B.row_ptr()[r + 1];
    MCH_CHECK_MSG(end > begin, "constraint " << r << " has no variables");
    if (!affected(model.constraint_row[r])) {
      // Unaffected row ⇒ every member cell is untouched (a touched cell's
      // old and new spans are all affected rows), so the previous variable
      // exists and its component's dirtiness decides.
      const VariableInfo& info = model.variables[B.col_idx()[begin]];
      const std::size_t prev_var =
          prev_model.cell_first_var[info.cell] + info.subrow;
      if (!prev_dirty[previous.variable_component[prev_var]]) continue;
    }
    for (std::size_t e = begin + 1; e < end; ++e)
      uf.unite(B.col_idx()[begin], B.col_idx()[e]);
  }

  return finalize_partition(uf, model);
}

}  // namespace mch::legal
