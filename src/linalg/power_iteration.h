// Power iteration for the dominant eigenvalue of a linear operator.
//
// Used to estimate μ_max of Γ = D⁻¹·B·K⁻¹·Bᵀ, which bounds the admissible
// θ* of the MMSIM splitting (Theorem 2 of the paper): θ* must satisfy
// 0 < θ* < 2(2 − β*)/(β*·μ_max). Γ is similar to an SPD matrix, so its
// spectrum is real positive and plain power iteration converges.
#pragma once

#include <cstddef>
#include <functional>

#include "linalg/vector_ops.h"

namespace mch::linalg {

struct PowerIterationResult {
  double eigenvalue = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Estimates the dominant eigenvalue of the operator y = op(x) of the given
/// dimension. `op` must write its output into the second argument.
/// Deterministic start vector (all ones with a small linear ramp to avoid
/// unlucky orthogonality).
PowerIterationResult power_iteration(
    std::size_t dimension,
    const std::function<void(const Vector&, Vector&)>& op,
    std::size_t max_iterations = 200, double tolerance = 1e-8);

}  // namespace mch::linalg
