#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace mch {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() != b.next_u64()) ++differing;
  EXPECT_GT(differing, 60);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.next_u64());
  rng.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next_u64(), first[i]);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 12.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 12.25);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 9);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all values hit in 1000 draws
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-10, -3);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -3);
  }
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(10);
  EXPECT_THROW(rng.uniform_int(3, 2), CheckError);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace mch
