#include "eval/suite_runner.h"

#include <cstdlib>
#include <cstring>
#include <ostream>

#include "baselines/local.h"
#include "baselines/mixed_abacus.h"
#include "baselines/tetris.h"
#include "db/legality.h"
#include "legal/tetris_alloc.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "service/session.h"
#include "util/rss.h"
#include "util/timer.h"

namespace mch::eval {

namespace {

/// MCH_SESSION=1 routes every MMSIM run through a resident
/// service::LegalizationSession (the ctest `.session` variants set it).
bool run_via_session() {
  const char* env = std::getenv("MCH_SESSION");
  return env != nullptr && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "") != 0;
}

}  // namespace

const char* to_string(Legalizer legalizer) {
  switch (legalizer) {
    case Legalizer::kMmsim:
      return "mmsim";
    case Legalizer::kTetris:
      return "tetris";
    case Legalizer::kLocalBase:
      return "local";
    case Legalizer::kLocalImproved:
      return "local-imp";
    case Legalizer::kMixedAbacus:
      return "mixed-abacus";
  }
  return "unknown";
}

RunResult run_legalizer(db::Design& design, Legalizer which,
                        const legal::FlowOptions& mmsim_options) {
  RunResult result;
  result.benchmark = design.name;
  result.legalizer = which;
  result.num_cells = design.num_cells();
  result.num_single = design.count_cells_with_height(1);
  result.num_double = design.count_cells_with_height(2);
  result.density = design.density();
  result.gp_hpwl = gp_hpwl(design);

  design.reset_positions_to_gp();

  Timer timer;
  switch (which) {
    case Legalizer::kMmsim: {
      if (run_via_session()) {
        // MCH_SESSION=1: serve the run through a resident
        // service::LegalizationSession instead of the one-shot flow, so the
        // whole eval/integration suite exercises the session path. A full
        // legalize through the session is the same pipeline (it reuses
        // legal::legalize with a prebuilt model), so all metrics below are
        // comparable.
        service::SessionOptions session_options;
        session_options.flow = mmsim_options;
        session_options.verify = false;  // verified uniformly below
        service::LegalizationSession session(design, session_options);
        const service::SessionResult served = session.full_legalize();
        design.cells() = session.design().cells();
        result.via_session = true;
        result.illegal_after_solver = served.allocation.illegal_cells;
        result.solver_iterations = served.solver.iterations;
        result.solver_converged = served.solver.converged;
        result.solver_solve_seconds = served.solver.solve_seconds;
        result.solver_phase = served.solver.phase;
        result.solver_components = served.solver.num_components;
        result.solver_max_component = served.solver.max_component_size;
        result.solver_mean_component = served.solver.mean_component_size;
        result.solver_component_iterations =
            served.solver.component_iterations;
        result.solver_mixed_iterations = served.solver.mixed_iterations;
        result.solver_precision = served.solver.precision_used;
        result.solver_simd = served.solver.simd_level;
        result.solver_recovery = served.solver.recovery;
        result.session_dirty_components = served.session.components_dirty;
        result.session_reused_components = served.session.components_reused;
        result.session_warm_hits = served.session.warm_start_hits;
        result.session_warm_rate = served.session.warm_start_rate;
        break;
      }
      legal::FlowOptions options = mmsim_options;
      options.verify = false;  // verified uniformly below
      const legal::FlowResult flow = legal::legalize(design, options);
      result.illegal_after_solver = flow.allocation.illegal_cells;
      result.solver_iterations = flow.solver.iterations;
      result.solver_converged = flow.solver.converged;
      result.solver_solve_seconds = flow.solver.solve_seconds;
      result.solver_phase = flow.solver.phase;
      result.solver_components = flow.solver.num_components;
      result.solver_max_component = flow.solver.max_component_size;
      result.solver_mean_component = flow.solver.mean_component_size;
      result.solver_component_iterations = flow.solver.component_iterations;
      result.solver_mixed_iterations = flow.solver.mixed_iterations;
      result.solver_precision = flow.solver.precision_used;
      result.solver_simd = flow.solver.simd_level;
      result.solver_recovery = flow.solver.recovery;
      break;
    }
    case Legalizer::kTetris:
      baselines::tetris_legalize(design);
      break;
    case Legalizer::kLocalBase:
      baselines::local_legalize(design, baselines::LocalVariant::kBase);
      break;
    case Legalizer::kLocalImproved:
      baselines::local_legalize(design, baselines::LocalVariant::kImproved);
      break;
    case Legalizer::kMixedAbacus:
      baselines::mixed_abacus_legalize(design);
      // Cluster output is continuous; snap to sites the same way the
      // MMSIM flow does.
      legal::tetris_allocate(design);
      break;
  }
  result.seconds = timer.seconds();

  const db::LegalityReport report = db::check_legality(design);
  result.legal = report.legal();
  result.legality_summary = report.summary();

  result.disp = displacement(design);
  result.hpwl = hpwl(design);
  result.delta_hpwl =
      result.gp_hpwl > 0.0 ? (result.hpwl - result.gp_hpwl) / result.gp_hpwl
                           : 0.0;
  result.peak_rss_mb = util::peak_rss_mb();
  return result;
}

std::vector<RunResult> SuiteRunner::run(const std::vector<SuiteJob>& jobs,
                                        std::ostream* progress) const {
  std::vector<RunResult> results(jobs.size());
  // Grain 1: one design per task. Each job builds its design from the spec
  // (the generator draws from a per-design RNG seeded by the spec and the
  // generator options, so jobs are fully independent), and nested
  // parallelism inside the solver becomes stealable child jobs on the
  // shared scheduler, so workers idling between designs help finish a
  // neighbor's solve. Results are written into the job's own slot — order
  // and content are therefore independent of the thread count and of who
  // steals what.
  runtime::parallel_for(
      std::size_t{0}, jobs.size(), 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          obs::TraceSpan span("suite.job");
          span.arg("benchmark", obs::intern(jobs[j].spec.name))
              .arg("legalizer", to_string(jobs[j].legalizer));
          db::Design design = gen::generate_design(jobs[j].spec, gen_options_);
          results[j] =
              run_legalizer(design, jobs[j].legalizer, jobs[j].options);
          span.arg("cells", results[j].num_cells)
              .arg("legal", results[j].legal);
          obs::histogram("suite.job_seconds").observe(results[j].seconds);
          // Writing one character to a standard stream is race-free per the
          // iostreams guarantees; dots may arrive out of order, which is
          // fine for a progress ticker.
          if (progress) *progress << '.' << std::flush;
        }
      });
  return results;
}

std::vector<RunResult> SuiteRunner::run_cross(
    const std::vector<gen::BenchmarkSpec>& specs,
    const std::vector<Legalizer>& methods,
    const legal::FlowOptions& mmsim_options, std::ostream* progress) const {
  std::vector<SuiteJob> jobs;
  jobs.reserve(specs.size() * methods.size());
  for (const gen::BenchmarkSpec& spec : specs)
    for (const Legalizer method : methods)
      jobs.push_back({spec, method, mmsim_options});
  return run(jobs, progress);
}

}  // namespace mch::eval
