// SIMD kernel tables for the fused MMSIM half-step sweeps.
//
// Each kernel processes index range [lo, hi) of one of the three fused
// sweeps of lcp/mmsim.cpp (primal modulus update, dual rhs assembly, dual
// z update) over plain pointer bundles — the structure-of-arrays gather
// tables (linalg::CsrGather2) plus the flat solver arrays. Double kernels
// are BITWISE IDENTICAL to the scalar fused sweeps: every lane replicates
// the scalar chain term for term (including the padded 0.0·x gather terms
// — the same padding contract the scalar fused path already carries), the
// per-ISA TUs are compiled with -ffp-contract=off, and the delta ∞-norm is
// a max-fold, order-independent over the identical value multiset.
//
// Float kernels run the same chains in float32 for the opt-in mixed
// precision iterate (MCH_PRECISION=mixed). They carry no bitwise contract
// — mixed mode converges by the float64 residual check, not by bit
// reproducibility (ALGORITHM.md par.13).
#pragma once

#include <cstddef>
#include <cstdint>

#include "linalg/simd.h"

namespace mch::lcp::kernels {

/// Primal modulus sweep (1×1-block lanes; general-block lanes are masked
/// out and left to the block sweep). z points at the primal segment base.
struct PrimalCtx {
  const double* s1;
  const double* s2;
  const double* kv;   ///< K scalar values (0.0 at general positions)
  const double* siv;  ///< (K/β + I)⁻¹ scalar inverses
  const double* p;
  const double* bt_v0;
  const double* bt_v1;
  const std::uint32_t* bt_c0;
  const std::uint32_t* bt_c1;
  const unsigned char* general;  ///< nonzero = lane owned by the block sweep
  double* new_s1;
  double* z;
  double c1;  ///< 1/β − 1
  double gamma;
  double inv_gamma;
};

/// Dual rhs sweep: tridiagonal D row + modulus terms + both B-row gathers.
/// Boundary rows (no lower/upper neighbor) are handled scalar in-kernel.
struct DualRhsCtx {
  const double* s2;
  const double* diag;
  const double* lower;
  const double* upper;
  const double* b;
  const double* s1;       ///< |s1| gather source (previous iterate)
  const double* s1_used;  ///< splitting-dependent gather (new_s1 or s1)
  const double* b_v0;
  const double* b_v1;
  const std::uint32_t* b_c0;
  const std::uint32_t* b_c1;
  double* rhs2;
  double inv_theta;
  double gamma;
  std::size_t m;  ///< constraint count (for the neighbor guards)
};

/// Dual z update; z points at the dual segment base (state z + n).
struct DualZCtx {
  const double* new_s2;
  double* z;
  double inv_gamma;
};

/// Float mirrors for the mixed-precision iterate.
struct PrimalCtxF {
  const float* s1;
  const float* s2;
  const float* kv;
  const float* siv;
  const float* p;
  const float* bt_v0;
  const float* bt_v1;
  const std::uint32_t* bt_c0;
  const std::uint32_t* bt_c1;
  const unsigned char* general;
  float* new_s1;
  float* z;
  float c1;
  float gamma;
  float inv_gamma;
};

struct DualRhsCtxF {
  const float* s2;
  const float* diag;
  const float* lower;
  const float* upper;
  const float* b;
  const float* s1;
  const float* s1_used;
  const float* b_v0;
  const float* b_v1;
  const std::uint32_t* b_c0;
  const std::uint32_t* b_c1;
  float* rhs2;
  float inv_theta;
  float gamma;
  std::size_t m;
};

struct DualZCtxF {
  const float* new_s2;
  float* z;
  float inv_gamma;
};

struct MmsimSimdKernels {
  /// Each sweep returns its chunk's delta partial (∞-norm max over the
  /// lanes it updated); rhs assembly returns nothing.
  double (*primal)(const PrimalCtx& c, std::size_t lo, std::size_t hi);
  void (*dual_rhs)(const DualRhsCtx& c, std::size_t lo, std::size_t hi);
  double (*dual_z)(const DualZCtx& c, std::size_t lo, std::size_t hi);
  float (*primal_f)(const PrimalCtxF& c, std::size_t lo, std::size_t hi);
  void (*dual_rhs_f)(const DualRhsCtxF& c, std::size_t lo, std::size_t hi);
  float (*dual_z_f)(const DualZCtxF& c, std::size_t lo, std::size_t hi);
};

/// Kernel table for `level`; nullptr when the level is kScalar or the
/// platform has no SIMD build — the fused sweeps then run their scalar
/// loops.
const MmsimSimdKernels* mmsim_simd_kernels(linalg::SimdLevel level);

#if defined(MCH_SIMD_X86)
extern const MmsimSimdKernels kMmsimSimdAvx2;
extern const MmsimSimdKernels kMmsimSimdAvx512;
#endif

}  // namespace mch::lcp::kernels
