#include "gen/transform.h"

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "legal/flow.h"

namespace mch::gen {
namespace {

db::Design single_height_design(std::uint64_t seed) {
  GeneratorOptions options;
  options.seed = seed;
  return generate_random_design(1000, 0, 0.5, options);
}

TEST(TransformTest, ConvertsRequestedFraction) {
  db::Design design = single_height_design(1);
  const MixedHeightTransformStats stats =
      make_mixed_height(design, 0.10, 7);
  EXPECT_EQ(stats.converted_cells, 100u);
  EXPECT_EQ(design.count_cells_with_height(2), 100u);
  EXPECT_EQ(design.count_cells_with_height(1), 900u);
}

TEST(TransformTest, AreaApproximatelyPreserved) {
  db::Design design = single_height_design(2);
  const MixedHeightTransformStats stats =
      make_mixed_height(design, 0.10, 7);
  // "This modification maintains the total cell area" — up to the one-site
  // round-up of odd widths.
  EXPECT_NEAR(stats.area_after, stats.area_before,
              0.05 * stats.area_before);
  EXPECT_GE(stats.area_after, stats.area_before - 1e-9);
}

TEST(TransformTest, Deterministic) {
  db::Design a = single_height_design(3);
  db::Design b = single_height_design(3);
  make_mixed_height(a, 0.2, 11);
  make_mixed_height(b, 0.2, 11);
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    EXPECT_EQ(a.cells()[i].height_rows, b.cells()[i].height_rows);
    EXPECT_DOUBLE_EQ(a.cells()[i].width, b.cells()[i].width);
  }
}

TEST(TransformTest, ConvertedCellsAreRailFeasible) {
  db::Design design = single_height_design(4);
  make_mixed_height(design, 0.15, 13);
  for (const db::Cell& cell : design.cells()) {
    if (cell.height_rows != 2) continue;
    bool feasible = false;
    for (std::size_t r = 0; r + 2 <= design.chip().num_rows; ++r)
      feasible = feasible || cell.rail_compatible(design.chip(), r);
    EXPECT_TRUE(feasible);
  }
}

TEST(TransformTest, ZeroFractionIsNoOp) {
  db::Design design = single_height_design(5);
  const MixedHeightTransformStats stats = make_mixed_height(design, 0.0, 1);
  EXPECT_EQ(stats.converted_cells, 0u);
  EXPECT_EQ(design.count_cells_with_height(2), 0u);
}

TEST(TransformTest, FixedCellsNeverConverted) {
  GeneratorOptions options;
  options.seed = 6;
  options.fixed_macros = 3;
  db::Design design = generate_random_design(200, 0, 0.4, options);
  make_mixed_height(design, 1.0, 9);
  for (const db::Cell& cell : design.cells()) {
    if (cell.fixed) {
      EXPECT_GT(cell.height_rows, 2u);  // macros stay macros
    }
  }
  EXPECT_EQ(design.count_cells_with_height(2), 200u);
}

TEST(TransformTest, TransformedDesignLegalizes) {
  // The full paper pipeline: single-height design → 10% doubling → MMSIM.
  db::Design design = single_height_design(7);
  make_mixed_height(design, 0.10, 17);
  const legal::FlowResult result = legal::legalize(design);
  EXPECT_TRUE(result.legal) << result.legality.summary();
}

}  // namespace
}  // namespace mch::gen
