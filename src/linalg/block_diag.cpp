#include "linalg/block_diag.h"

#include <algorithm>
#include <cmath>

#include "linalg/simd_kernels.h"
#include "runtime/parallel.h"
#include "util/check.h"

namespace mch::linalg {

namespace {
using runtime::kGrainElementwise;
using runtime::parallel_for;

/// Grain for the non-1×1 block sweeps: blocks are small dense systems, a
/// few hundred per chunk keeps dispatch cost negligible.
constexpr std::size_t kGrainBlocks = 256;
}  // namespace

std::size_t BlockDiagMatrix::add_scalar_block(double value) {
  // Same criterion as DenseMatrix::solve's pivot check, so a singular 1×1
  // block fails identically through either entry point.
  MCH_CHECK_MSG(std::abs(value) >= 1e-300, "block is singular");
  offsets_.push_back(to_index(size_));
  scalar_mask_.push_back(true);
  scalar_values_.push_back(value);
  scalar_inverses_.push_back(1.0 / value);
  size_ += 1;
  return offsets_.size() - 1;
}

std::size_t BlockDiagMatrix::add_block(const DenseMatrix& block) {
  MCH_CHECK(block.rows() == block.cols() && block.rows() > 0);
  if (block.rows() == 1) return add_scalar_block(block(0, 0));

  DenseMatrix inv;
  MCH_CHECK_MSG(block.inverse(inv), "block is singular");
  offsets_.push_back(to_index(size_));
  scalar_mask_.push_back(false);
  scalar_values_.resize(size_ + block.rows(), 0.0);
  scalar_inverses_.resize(size_ + block.rows(), 0.0);
  general_blocks_.push_back(to_index(offsets_.size() - 1));
  general_dense_.push_back(block);
  general_inverses_.push_back(std::move(inv));

  size_ += block.rows();
  return offsets_.size() - 1;
}

std::size_t BlockDiagMatrix::append_block_to(BlockDiagMatrix& dst,
                                             std::size_t b) const {
  MCH_CHECK(b < offsets_.size());
  if (scalar_mask_[b]) {
    // Copy the stored value/inverse pair verbatim (no re-inversion).
    const std::size_t off = offsets_[b];
    dst.offsets_.push_back(to_index(dst.size_));
    dst.scalar_mask_.push_back(true);
    dst.scalar_values_.push_back(scalar_values_[off]);
    dst.scalar_inverses_.push_back(scalar_inverses_[off]);
    dst.size_ += 1;
    return dst.offsets_.size() - 1;
  }

  const std::size_t slot = general_slot(b);
  const DenseMatrix& block = general_dense_[slot];
  dst.offsets_.push_back(to_index(dst.size_));
  dst.scalar_mask_.push_back(false);
  dst.scalar_values_.resize(dst.size_ + block.rows(), 0.0);
  dst.scalar_inverses_.resize(dst.size_ + block.rows(), 0.0);
  dst.general_blocks_.push_back(to_index(dst.offsets_.size() - 1));
  dst.general_dense_.push_back(block);
  dst.general_inverses_.push_back(general_inverses_[slot]);

  dst.size_ += block.rows();
  return dst.offsets_.size() - 1;
}

std::size_t BlockDiagMatrix::general_slot(std::size_t b) const {
  const auto it = std::lower_bound(general_blocks_.begin(),
                                   general_blocks_.end(), b);
  MCH_CHECK_MSG(it != general_blocks_.end() && *it == b,
                "block " << b
                         << " is a scalar block with no dense view; read it "
                            "through scalar_values()/entry()");
  return static_cast<std::size_t>(it - general_blocks_.begin());
}

std::size_t BlockDiagMatrix::block_of(std::size_t i) const {
  MCH_CHECK(i < size_);
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), i);
  return static_cast<std::size_t>(it - offsets_.begin()) - 1;
}

double BlockDiagMatrix::entry(std::size_t i, std::size_t j) const {
  const std::size_t b = block_of(i);
  if (block_of(j) != b) return 0.0;
  if (scalar_mask_[b]) return scalar_values_[i];
  return block(b)(i - offsets_[b], j - offsets_[b]);
}

double BlockDiagMatrix::inverse_entry(std::size_t i, std::size_t j) const {
  const std::size_t b = block_of(i);
  if (block_of(j) != b) return 0.0;
  if (scalar_mask_[b]) return scalar_inverses_[i];
  return block_inverse(b)(i - offsets_[b], j - offsets_[b]);
}

void BlockDiagMatrix::multiply(const Vector& x, Vector& y) const {
  y.assign(size_, 0.0);
  multiply_add(1.0, x, y);
}

void BlockDiagMatrix::multiply_add(double alpha, const Vector& x,
                                   Vector& y) const {
  MCH_CHECK(x.size() == size_ && y.size() == size_);
  // One flat sweep covers every scalar block (zeros elsewhere are benign);
  // a second sweep handles the multi-row blocks. Both are parallel: every
  // y element is owned by one index of one sweep (general blocks overwrite
  // only their own offsets, and the sweeps are separated by a barrier).
  const kernels::CsrSimdKernels* const sk =
      kernels::csr_simd_kernels(simd_level());
  parallel_for(std::size_t{0}, size_, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 if (sk != nullptr) {
                   sk->ew_scale_add(alpha, scalar_values_.data(), x.data(),
                                    y.data(), lo, hi);
                   return;
                 }
                 for (std::size_t i = lo; i < hi; ++i)
                   y[i] += alpha * scalar_values_[i] * x[i];
               });
  parallel_for(std::size_t{0}, general_blocks_.size(), kGrainBlocks,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t g = lo; g < hi; ++g) {
                   const DenseMatrix& blk = general_dense_[g];
                   const std::size_t off = offsets_[general_blocks_[g]];
                   const std::size_t n = blk.rows();
                   for (std::size_t r = 0; r < n; ++r) {
                     double sum = 0.0;
                     for (std::size_t c = 0; c < n; ++c)
                       sum += blk(r, c) * x[off + c];
                     y[off + r] += alpha * sum;
                   }
                 }
               });
}

void BlockDiagMatrix::solve(const Vector& x, Vector& y) const {
  MCH_CHECK(x.size() == size_);
  y.resize(size_);
  const kernels::CsrSimdKernels* const sk =
      kernels::csr_simd_kernels(simd_level());
  parallel_for(std::size_t{0}, size_, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 if (sk != nullptr) {
                   sk->ew_mul(scalar_inverses_.data(), x.data(), y.data(), lo,
                              hi);
                   return;
                 }
                 for (std::size_t i = lo; i < hi; ++i)
                   y[i] = scalar_inverses_[i] * x[i];
               });
  parallel_for(std::size_t{0}, general_blocks_.size(), kGrainBlocks,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t g = lo; g < hi; ++g) {
                   const DenseMatrix& inv = general_inverses_[g];
                   const std::size_t off = offsets_[general_blocks_[g]];
                   const std::size_t n = inv.rows();
                   for (std::size_t r = 0; r < n; ++r) {
                     double sum = 0.0;
                     for (std::size_t c = 0; c < n; ++c)
                       sum += inv(r, c) * x[off + c];
                     y[off + r] = sum;
                   }
                 }
               });
}

void BlockDiagMatrix::solve_shifted(double alpha, double beta, const Vector& x,
                                    Vector& y) const {
  MCH_CHECK(x.size() == size_);
  y.assign(size_, 0.0);
  Vector rhs, sol;
  // Blocks ascend by offset and general_blocks_ lists the non-1×1 blocks in
  // that same order, so a single cursor g tracks the dense slot.
  std::size_t g = 0;
  for (std::size_t b = 0; b < offsets_.size(); ++b) {
    const std::size_t off = offsets_[b];
    if (scalar_mask_[b]) {
      // Dominant fast path: single-height cells.
      y[off] = x[off] / (alpha * scalar_values_[off] + beta);
      continue;
    }
    const DenseMatrix& blk = general_dense_[g++];
    const std::size_t n = blk.rows();
    DenseMatrix shifted = blk;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        shifted(r, c) = alpha * blk(r, c) + (r == c ? beta : 0.0);
    rhs.assign(x.begin() + static_cast<std::ptrdiff_t>(off),
               x.begin() + static_cast<std::ptrdiff_t>(off + n));
    MCH_CHECK_MSG(shifted.solve(rhs, sol), "shifted block singular");
    std::copy(sol.begin(), sol.end(),
              y.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

}  // namespace mch::linalg
