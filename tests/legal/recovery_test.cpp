// Fault-injection tests of the legalizer's non-convergence escalation
// ladder: every rung is forced via RecoveryOptions::forced_failures (the
// same knob the MCH_FORCE_SOLVER_FAILURE .recovery ctest variant sets), and
// the degenerate-design generator supplies genuinely pathological inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <string>

#include "db/legality.h"
#include "gen/generator.h"
#include "legal/mmsim_legalizer.h"
#include "legal/row_assign.h"

namespace mch::legal {
namespace {

db::Design small_design(std::size_t singles, std::size_t doubles,
                        double density, std::uint64_t seed) {
  gen::GeneratorOptions opts;
  opts.seed = seed;
  opts.nets_per_cell = 0.0;
  return gen::generate_random_design(singles, doubles, density, opts);
}

/// Options with fault injection pinned to `forced` failed attempts.
/// forced > 0 also shields the test from the ambient environment variable
/// (explicit settings win in resolve_recovery_options).
MmsimLegalizerOptions forced_failure_options(std::size_t forced) {
  MmsimLegalizerOptions options;
  options.recovery.forced_failures = forced;
  return options;
}

TEST(RecoveryLadderTest, HappyPathLeavesRecoveryUntouched) {
  db::Design design = small_design(200, 30, 0.6, 11);
  const RowAssignment rows = assign_rows(design);
  // forced_failures = 0 would let MCH_FORCE_SOLVER_FAILURE leak in under
  // the .recovery variant, which is exactly what this test must not see —
  // so it disables recovery injection via an explicit no-op ladder instead.
  MmsimLegalizerOptions options;
  options.recovery.enabled = true;
  options.recovery.forced_failures = 0;
  unsetenv("MCH_FORCE_SOLVER_FAILURE");
  const MmsimLegalizerStats stats =
      mmsim_legalize_continuous(design, rows, options);
  EXPECT_TRUE(stats.converged);
  EXPECT_FALSE(stats.recovery.attempted());
  EXPECT_EQ(stats.recovery.escalations, 0u);
  EXPECT_EQ(stats.recovery.component_ladders, 0u);
  EXPECT_FALSE(stats.recovery.audit_ran);
  EXPECT_TRUE(stats.recovery.failures.empty());
}

TEST(RecoveryLadderTest, FirstFailureRecoversByWholeSolveEscalation) {
  db::Design reference_design = small_design(200, 30, 0.6, 11);
  db::Design design = reference_design;
  const RowAssignment rows = assign_rows(design);
  const RowAssignment reference_rows = assign_rows(reference_design);

  const MmsimLegalizerStats stats =
      mmsim_legalize_continuous(design, rows, forced_failure_options(1));
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.recovery.escalations, 1u);
  EXPECT_EQ(stats.recovery.component_ladders, 0u);
  EXPECT_EQ(stats.recovery.clamped_components, 0u);
  EXPECT_GT(stats.recovery.extra_iterations, 0u);
  EXPECT_TRUE(stats.recovery.audit_ran);  // recovery engaged → audited
  // The audited result is continuous, overlap-free output: no overlaps or
  // off-row placements at the audit tolerance. (audit_legal itself may be
  // false for healthy results too — the relaxed model has no right-boundary
  // constraint, so outside_chip spill is legitimate pre-snap.)
  EXPECT_FALSE(stats.recovery.audit_summary.empty());

  // The escalated retry converges to the same optimum (different θ/γ only
  // change the trajectory, not the fixed point).
  MmsimLegalizerOptions clean;
  unsetenv("MCH_FORCE_SOLVER_FAILURE");
  mmsim_legalize_continuous(reference_design, reference_rows, clean);
  for (std::size_t c = 0; c < design.num_cells(); ++c)
    EXPECT_NEAR(design.cells()[c].x, reference_design.cells()[c].x, 1e-2)
        << "cell " << c;
}

TEST(RecoveryLadderTest, SecondFailureDescendsToComponentLadders) {
  db::Design design = small_design(200, 30, 0.6, 11);
  const RowAssignment rows = assign_rows(design);
  const MmsimLegalizerStats stats =
      mmsim_legalize_continuous(design, rows, forced_failure_options(2));
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.recovery.escalations, 1u);
  EXPECT_GT(stats.num_components, 0u);  // kOff partitions lazily on descent
  EXPECT_EQ(stats.recovery.component_ladders, stats.num_components);
  EXPECT_GE(stats.recovery.ladder_attempts, stats.num_components);
  EXPECT_EQ(stats.recovery.clamped_components, 0u);
  EXPECT_TRUE(stats.recovery.audit_ran);
}

TEST(RecoveryLadderTest, ExhaustedLadderClampsToSnapPositions) {
  db::Design design = small_design(60, 10, 0.5, 13);
  const RowAssignment rows = assign_rows(design);
  // Enough forced failures to exhaust every rung of every component ladder.
  const MmsimLegalizerStats stats =
      mmsim_legalize_continuous(design, rows, forced_failure_options(999));
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.recovery.escalations, 1u);
  EXPECT_GT(stats.recovery.component_ladders, 0u);
  EXPECT_EQ(stats.recovery.clamped_components, stats.num_components);
  EXPECT_GT(stats.recovery.clamped_cells, 0u);
  ASSERT_EQ(stats.recovery.failures.size(), stats.num_components);

  // Structured records: every failure names its component, its attempts,
  // and the clamped cells; the summary is renderable.
  std::size_t recorded_cells = 0;
  for (const SolveFailure& failure : stats.recovery.failures) {
    EXPECT_NE(failure.component, SolveFailure::kMonolithic);
    EXPECT_GT(failure.attempts, 0u);
    EXPECT_FALSE(failure.cells.empty());
    EXPECT_FALSE(failure.summary().empty());
    recorded_cells += failure.cells.size();
  }
  EXPECT_EQ(recorded_cells, stats.recovery.clamped_cells);

  // Degrade contract: clamped cells sit at row-assigned snap positions —
  // gp_x clamped into the chip, y on the assigned row — never at an
  // unconverged iterate.
  const db::Chip& chip = design.chip();
  for (const SolveFailure& failure : stats.recovery.failures) {
    for (const std::size_t c : failure.cells) {
      const db::Cell& cell = design.cells()[c];
      const double snap_x = std::clamp(
          cell.gp_x, 0.0, std::max(0.0, chip.width() - cell.width));
      EXPECT_DOUBLE_EQ(cell.x, snap_x) << "cell " << c;
      EXPECT_DOUBLE_EQ(cell.y, chip.row_y(rows[c])) << "cell " << c;
    }
  }

  // The audit must have run — an exhausted ladder never ships unverified.
  EXPECT_TRUE(stats.recovery.audit_ran);
  EXPECT_FALSE(stats.recovery.audit_summary.empty());
}

TEST(RecoveryLadderTest, GenuineBudgetFailureRecoversWithoutInjection) {
  db::Design design = small_design(200, 30, 0.7, 17);
  const RowAssignment rows = assign_rows(design);
  MmsimLegalizerOptions options;
  options.mmsim.max_iterations = 1;  // genuine non-convergence
  options.recovery.budget_multiplier = 100000;
  options.recovery.forced_failures = 0;
  unsetenv("MCH_FORCE_SOLVER_FAILURE");
  const MmsimLegalizerStats stats =
      mmsim_legalize_continuous(design, rows, options);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.recovery.escalations, 1u);
  EXPECT_TRUE(stats.recovery.audit_ran);
}

// Satellite: each solve driver surfaces converged == false through the
// stats when recovery is disabled and the budget is one iteration.
class SurfacesFailurePerMode
    : public ::testing::TestWithParam<PartitionMode> {};

TEST_P(SurfacesFailurePerMode, OneIterationBudgetSurfacesNonConvergence) {
  db::Design design = small_design(150, 20, 0.7, 19);
  const RowAssignment rows = assign_rows(design);
  MmsimLegalizerOptions options;
  options.partition = GetParam();
  options.mmsim.max_iterations = 1;
  options.recovery.enabled = false;
  // Pin every tiered component onto MMSIM so the one-iteration budget is a
  // guaranteed failure (Lemke's pivot budget is separate and would succeed).
  options.policy.lemke_max_size = 0;
  options.policy.psor_for_unconstrained = false;
  const MmsimLegalizerStats stats =
      mmsim_legalize_continuous(design, rows, options);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.iterations, 1u);
  EXPECT_FALSE(stats.recovery.attempted());
  // The failure gate still audits the (unconverged) write-back.
  EXPECT_TRUE(stats.recovery.audit_ran);
}

INSTANTIATE_TEST_SUITE_P(AllModes, SurfacesFailurePerMode,
                         ::testing::Values(PartitionMode::kOff,
                                           PartitionMode::kMatch,
                                           PartitionMode::kTiered),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// --- degenerate-design generator -------------------------------------------

TEST(DegenerateDesignTest, ModesAreDeterministicAndWellFormed) {
  for (const gen::DegenerateMode mode :
       {gen::DegenerateMode::kNearSingularCoupling,
        gen::DegenerateMode::kInfeasibleRowCapacity,
        gen::DegenerateMode::kObstacleSaturatedRows}) {
    const db::Design a = gen::generate_degenerate_design(mode, 24, 5);
    const db::Design b = gen::generate_degenerate_design(mode, 24, 5);
    ASSERT_GE(a.num_cells(), 24u) << gen::to_string(mode);
    ASSERT_EQ(a.num_cells(), b.num_cells());
    for (std::size_t c = 0; c < a.num_cells(); ++c) {
      EXPECT_EQ(a.cells()[c].x, b.cells()[c].x);
      EXPECT_EQ(a.cells()[c].gp_x, a.cells()[c].x);  // committed as GP
    }
    // Pathological by construction: the GP input is not legal.
    const db::LegalityReport report = db::check_legality(a);
    EXPECT_FALSE(report.legal()) << gen::to_string(mode);
  }
}

TEST(DegenerateDesignTest, InfeasibleRowCapacityExceedsChipCapacity) {
  const db::Design design = gen::generate_degenerate_design(
      gen::DegenerateMode::kInfeasibleRowCapacity, 32, 7);
  double movable_area = 0.0;
  for (const db::Cell& cell : design.cells())
    movable_area += cell.width * static_cast<double>(cell.height_rows) *
                    design.chip().row_height;
  const double chip_area = design.chip().width() *
                           static_cast<double>(design.chip().num_rows) *
                           design.chip().row_height;
  EXPECT_GT(movable_area, 1.2 * chip_area);
}

TEST(DegenerateDesignTest, LadderDegradesGracefullyOnPathologicalInputs) {
  // The recovery contract on designs that genuinely cannot legalize: the
  // solve completes (no throw), and if anything failed, it is audited and
  // recorded rather than silent.
  for (const gen::DegenerateMode mode :
       {gen::DegenerateMode::kNearSingularCoupling,
        gen::DegenerateMode::kInfeasibleRowCapacity,
        gen::DegenerateMode::kObstacleSaturatedRows}) {
    db::Design design = gen::generate_degenerate_design(mode, 24, 3);
    const RowAssignment rows = assign_rows(design);
    MmsimLegalizerOptions options;
    options.mmsim.max_iterations = 2000;  // modest budget
    const MmsimLegalizerStats stats =
        mmsim_legalize_continuous(design, rows, options);
    if (!stats.converged || stats.recovery.attempted()) {
      EXPECT_TRUE(stats.recovery.audit_ran) << gen::to_string(mode);
      EXPECT_EQ(stats.recovery.clamped_cells >= 1,
                !stats.recovery.failures.empty())
          << gen::to_string(mode);
    }
    // Clamped cells (if any) are snapped inside the chip, never left at an
    // unconverged iterate. (Non-clamped continuous output may legitimately
    // spill past the right boundary — the allocation stage repairs that.)
    for (const SolveFailure& failure : stats.recovery.failures) {
      for (const std::size_t c : failure.cells) {
        const db::Cell& cell = design.cells()[c];
        EXPECT_GE(cell.x, -1e-9) << gen::to_string(mode);
        EXPECT_LE(cell.x + cell.width, design.chip().width() + 1e-9)
            << gen::to_string(mode);
      }
    }
  }
}

}  // namespace
}  // namespace mch::legal
