// parallel_reduce determinism: bitwise-identical results at every thread
// count, ordered combination, and agreement of the linalg vector kernels
// with straight serial loops.
#include "runtime/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/vector_ops.h"
#include "runtime/runtime.h"

namespace mch::runtime {
namespace {

/// Deterministic pseudo-random doubles in [-1, 1) (no <random> to keep the
/// sequence pinned across standard libraries).
linalg::Vector random_vector(std::size_t n, std::uint64_t seed) {
  linalg::Vector v(n);
  std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v[i] = static_cast<double>(static_cast<std::int64_t>(state >> 11)) /
           static_cast<double>(1LL << 52);
  }
  return v;
}

double reduce_sum(const linalg::Vector& v, std::size_t grain) {
  return parallel_reduce(
      std::size_t{0}, v.size(), grain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) s += v[i];
        return s;
      },
      [](double a, double b) { return a + b; });
}

class ParallelReduceTest : public ::testing::Test {
 protected:
  void TearDown() override { Runtime::configure(1); }
};

TEST_F(ParallelReduceTest, SumBitwiseIdenticalAcrossThreadCounts) {
  const linalg::Vector v = random_vector(100003, 42);
  Runtime::configure(1);
  const double serial = reduce_sum(v, 1000);
  for (const unsigned threads : {2u, 4u, 8u}) {
    Runtime::configure(threads);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const double parallel = reduce_sum(v, 1000);
      ASSERT_EQ(parallel, serial)  // bitwise, not almost-equal
          << "threads=" << threads << " repeat=" << repeat;
    }
  }
  // And the chunked sum is still numerically the plain sum.
  double straight = 0.0;
  for (const double x : v) straight += x;
  EXPECT_NEAR(serial, straight, 1e-9 * v.size());
}

TEST_F(ParallelReduceTest, MaxReduceMatchesSerialExactly) {
  const linalg::Vector v = random_vector(54321, 7);
  const double expected = *std::max_element(v.begin(), v.end());
  for (const unsigned threads : {1u, 4u}) {
    Runtime::configure(threads);
    const double maxed = parallel_reduce(
        std::size_t{0}, v.size(), 512, v[0],
        [&](std::size_t lo, std::size_t hi) {
          double m = v[lo];
          for (std::size_t i = lo; i < hi; ++i) m = std::max(m, v[i]);
          return m;
        },
        [](double a, double b) { return std::max(a, b); });
    EXPECT_EQ(maxed, expected) << "threads=" << threads;
  }
}

TEST_F(ParallelReduceTest, CombineFoldsInChunkOrder) {
  Runtime::configure(4);
  using Trace = std::vector<std::size_t>;
  const Trace order = parallel_reduce(
      std::size_t{0}, std::size_t{1000}, 32, Trace{},
      [](std::size_t lo, std::size_t) { return Trace{lo}; },
      [](Trace acc, const Trace& chunk) {
        acc.insert(acc.end(), chunk.begin(), chunk.end());
        return acc;
      });
  ASSERT_EQ(order.size(), chunk_count(1000, 32));
  for (std::size_t c = 0; c < order.size(); ++c)
    EXPECT_EQ(order[c], c * 32);  // ascending chunk starts, no interleaving
}

TEST_F(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  Runtime::configure(4);
  EXPECT_EQ(reduce_sum({}, 64), 0.0);
  const double sentinel = parallel_reduce(
      std::size_t{5}, std::size_t{5}, 8, -1.5,
      [](std::size_t, std::size_t) { return 99.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(sentinel, -1.5);
}

class VectorOpsParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { Runtime::configure(1); }
};

TEST_F(VectorOpsParallelTest, DotBitwiseIdenticalAcrossThreadCounts) {
  const linalg::Vector a = random_vector(70001, 3);
  const linalg::Vector b = random_vector(70001, 11);
  Runtime::configure(1);
  const double serial = linalg::dot(a, b);
  for (const unsigned threads : {2u, 4u, 8u}) {
    Runtime::configure(threads);
    ASSERT_EQ(linalg::dot(a, b), serial) << "threads=" << threads;
  }
  double straight = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) straight += a[i] * b[i];
  EXPECT_NEAR(serial, straight, 1e-9 * a.size());
}

TEST_F(VectorOpsParallelTest, NormsBitwiseIdenticalAcrossThreadCounts) {
  const linalg::Vector a = random_vector(70001, 5);
  const linalg::Vector b = random_vector(70001, 6);
  Runtime::configure(1);
  const double n2 = linalg::norm2(a);
  const double ninf = linalg::norm_inf(a);
  const double dinf = linalg::diff_norm_inf(a, b);
  for (const unsigned threads : {2u, 4u, 8u}) {
    Runtime::configure(threads);
    ASSERT_EQ(linalg::norm2(a), n2) << "threads=" << threads;
    ASSERT_EQ(linalg::norm_inf(a), ninf) << "threads=" << threads;
    ASSERT_EQ(linalg::diff_norm_inf(a, b), dinf) << "threads=" << threads;
  }
  double max_abs = 0.0;
  for (const double x : a) max_abs = std::max(max_abs, std::abs(x));
  EXPECT_EQ(ninf, max_abs);
}

TEST_F(VectorOpsParallelTest, ElementwiseKernelsMatchSerial) {
  const linalg::Vector x = random_vector(50000, 13);
  linalg::Vector y_serial = random_vector(50000, 17);
  linalg::Vector y_parallel = y_serial;

  Runtime::configure(1);
  linalg::axpy(2.5, x, y_serial);
  linalg::scale(0.75, y_serial);
  Runtime::configure(4);
  linalg::axpy(2.5, x, y_parallel);
  linalg::scale(0.75, y_parallel);
  ASSERT_EQ(y_serial, y_parallel);  // elementwise, so trivially bitwise

  linalg::Vector abs_out, pos_out;
  linalg::abs_into(x, abs_out);
  linalg::positive_part(x, pos_out);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(abs_out[i], std::abs(x[i]));
    ASSERT_EQ(pos_out[i], std::max(x[i], 0.0));
  }
}

}  // namespace
}  // namespace mch::runtime
