#include "lcp/lemke.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mch::lcp {
namespace {

TEST(LemkeTest, TrivialNonnegativeQ) {
  DenseLcp p;
  p.A = linalg::DenseMatrix::identity(3);
  p.q = {1, 0, 2};
  const LemkeResult r = solve_lemke(p);
  ASSERT_EQ(r.status, LemkeStatus::kSolved);
  EXPECT_EQ(r.z, (Vector{0, 0, 0}));
}

TEST(LemkeTest, OneDimensional) {
  // w = z - 2 >= 0, z >= 0, zw = 0  =>  z = 2.
  DenseLcp p;
  p.A = linalg::DenseMatrix::identity(1);
  p.q = {-2};
  const LemkeResult r = solve_lemke(p);
  ASSERT_EQ(r.status, LemkeStatus::kSolved);
  EXPECT_NEAR(r.z[0], 2.0, 1e-9);
}

TEST(LemkeTest, TextbookTwoByTwo) {
  // A = [[2,1],[1,2]], q = [-5,-6]: solution z = (4/3, 7/3).
  DenseLcp p;
  p.A = linalg::DenseMatrix(2, 2);
  p.A(0, 0) = 2;
  p.A(0, 1) = 1;
  p.A(1, 0) = 1;
  p.A(1, 1) = 2;
  p.q = {-5, -6};
  const LemkeResult r = solve_lemke(p);
  ASSERT_EQ(r.status, LemkeStatus::kSolved);
  EXPECT_NEAR(r.z[0], 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.z[1], 7.0 / 3.0, 1e-9);
  EXPECT_LT(residual(p, r.z).max(), 1e-8);
}

TEST(LemkeTest, MixedActiveInactive) {
  // Identity A: z_i = max(0, -q_i).
  DenseLcp p;
  p.A = linalg::DenseMatrix::identity(4);
  p.q = {-1, 2, -3, 0};
  const LemkeResult r = solve_lemke(p);
  ASSERT_EQ(r.status, LemkeStatus::kSolved);
  EXPECT_NEAR(r.z[0], 1, 1e-9);
  EXPECT_NEAR(r.z[1], 0, 1e-9);
  EXPECT_NEAR(r.z[2], 3, 1e-9);
  EXPECT_NEAR(r.z[3], 0, 1e-9);
}

TEST(LemkeTest, RandomSpdProblemsSolve) {
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    linalg::DenseMatrix g(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1, 1);
    DenseLcp p;
    p.A = g.multiply(g.transpose());
    for (std::size_t i = 0; i < n; ++i) p.A(i, i) += 0.5;
    p.q.resize(n);
    for (double& v : p.q) v = rng.uniform(-5, 5);

    const LemkeResult r = solve_lemke(p);
    ASSERT_EQ(r.status, LemkeStatus::kSolved) << "trial " << trial;
    EXPECT_LT(residual(p, r.z).max(), 1e-7) << "trial " << trial;
  }
}

TEST(LemkeTest, RayTerminationOnInfeasible) {
  // A = 0 with negative q has no solution: w = q < 0 regardless of z.
  DenseLcp p;
  p.A = linalg::DenseMatrix(1, 1);
  p.A(0, 0) = 0.0;
  p.q = {-1};
  const LemkeResult r = solve_lemke(p);
  EXPECT_EQ(r.status, LemkeStatus::kRayTermination);
}

}  // namespace
}  // namespace mch::lcp
