#!/usr/bin/env python3
"""Summarize an mch-trace/mch-metrics artifact pair on the terminal.

Reads the Chrome trace-event JSON written by `mchlegal --trace` (or any
bench/test run with MCH_TRACE=<path>) and prints a per-phase wall-clock
breakdown plus the top-k slowest per-component solves. When the matching
metrics snapshot (`--metrics`, from `--metrics`/MCH_METRICS=<path>) is
given, its counters and latency histograms are appended.

    tools/trace_summary.py run.trace.json [--metrics run.metrics.json] \
        [--top 10]

Stdlib only — no third-party dependencies.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    """Returns the complete-span events ("ph": "X") from a trace file."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") not in (None, "mch-trace/1"):
        print(f"warning: unexpected trace schema {doc.get('schema')!r}",
              file=sys.stderr)
    events = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    dropped = doc.get("otherData", {}).get("droppedSpans", 0)
    return events, dropped


def fmt_ms(us):
    return f"{us / 1e3:10.3f} ms"


def phase_breakdown(events):
    """Aggregates span durations by name, widest total first.

    Nested spans each count their own wall time, so the table reads as "time
    attributable to spans named X" — the root span (legalize / session.*)
    gives the denominator for the %-of-run column.
    """
    agg = defaultdict(lambda: [0, 0.0, 0.0])  # name -> [count, total, max]
    for e in events:
        entry = agg[e["name"]]
        entry[0] += 1
        entry[1] += e["dur"]
        entry[2] = max(entry[2], e["dur"])
    total_us = max((e["ts"] + e["dur"] for e in events), default=0.0) - min(
        (e["ts"] for e in events), default=0.0)

    print(f"phase breakdown ({len(events)} spans, "
          f"wall clock {total_us / 1e3:.3f} ms):")
    print(f"  {'span':<28} {'count':>6} {'total':>13} {'mean':>13} "
          f"{'max':>13} {'% wall':>7}")
    for name, (count, total, peak) in sorted(
            agg.items(), key=lambda kv: -kv[1][1]):
        share = 100.0 * total / total_us if total_us > 0 else 0.0
        print(f"  {name:<28} {count:>6} {fmt_ms(total)} "
              f"{fmt_ms(total / count)} {fmt_ms(peak)} {share:>6.1f}%")


def slowest_components(events, top_k):
    solves = [e for e in events if e["name"] == "solve.component"]
    if not solves:
        return
    solves.sort(key=lambda e: -e["dur"])
    print(f"\ntop {min(top_k, len(solves))} slowest component solves "
          f"(of {len(solves)}):")
    for e in solves[:top_k]:
        args = e.get("args", {})
        detail = ", ".join(f"{k}={v}" for k, v in args.items())
        print(f"  {fmt_ms(e['dur'])}  tid {e.get('tid', '?'):>2}  {detail}")


def metrics_summary(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") not in (None, "mch-metrics/1"):
        print(f"warning: unexpected metrics schema {doc.get('schema')!r}",
              file=sys.stderr)

    attributes = doc.get("attributes", {})
    if attributes:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(attributes.items()))
        print(f"\nmetrics attributes: {rendered}")

    counters = doc.get("counters", {})
    if counters:
        print("counters:")
        for name, value in sorted(counters.items()):
            print(f"  {name:<44} {value:>12}")

    gauges = doc.get("gauges", {})
    if gauges:
        print("gauges:")
        for name, value in sorted(gauges.items()):
            print(f"  {name:<44} {value:>12.2f}")

    histograms = doc.get("histograms", {})
    if histograms:
        print("histograms (seconds):")
        print(f"  {'name':<36} {'count':>7} {'mean':>10} {'p50':>10} "
              f"{'p95':>10} {'p99':>10}")
        for name, h in sorted(histograms.items()):
            print(f"  {name:<36} {h['count']:>7} {h['mean']:>10.6f} "
                  f"{h['p50']:>10.6f} {h['p95']:>10.6f} {h['p99']:>10.6f}")


def main():
    parser = argparse.ArgumentParser(
        description="Per-phase breakdown of an mch trace/metrics pair.")
    parser.add_argument("trace", help="Chrome trace JSON (mch-trace/1)")
    parser.add_argument("--metrics", help="metrics JSON (mch-metrics/1)")
    parser.add_argument("--top", type=int, default=10, metavar="K",
                        help="slowest component solves to list (default 10)")
    args = parser.parse_args()

    events, dropped = load_events(args.trace)
    if not events:
        print("no spans in trace (was tracing enabled?)")
        return 1
    if dropped:
        print(f"note: {dropped} spans dropped by ring overwrite — "
              "raise MCH_TRACE_RING for full coverage\n")

    phase_breakdown(events)
    slowest_components(events, args.top)
    if args.metrics:
        metrics_summary(args.metrics)
    return 0


if __name__ == "__main__":
    sys.exit(main())
