#include "linalg/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/log.h"

namespace mch::linalg {

namespace {

#if defined(MCH_SIMD_X86)
SimdLevel detect_supported() {
  __builtin_cpu_init();
  // The AVX-512 kernels use F/VL/DQ (masked double ops + 256-bit index
  // loads); every AVX-512 server core that reports F reports VL/DQ too,
  // but check anyway so we never dispatch into an illegal instruction.
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512dq")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
}
#else
SimdLevel detect_supported() { return SimdLevel::kScalar; }
#endif

SimdLevel resolve_env(SimdLevel supported) {
  const char* env = std::getenv("MCH_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return supported;
  }
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
      std::strcmp(env, "scalar") == 0) {
    return SimdLevel::kScalar;
  }
  SimdLevel requested = supported;
  if (std::strcmp(env, "avx2") == 0) {
    requested = SimdLevel::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    requested = SimdLevel::kAvx512;
  } else {
    MCH_LOG(kWarn) << "MCH_SIMD=" << env << " not recognized; using "
                   << simd_level_name(supported);
    return supported;
  }
  if (requested > supported) {
    MCH_LOG(kWarn) << "MCH_SIMD=" << env << " unsupported on this CPU; using "
                   << simd_level_name(supported);
    return supported;
  }
  return requested;
}

std::atomic<int>& active_level() {
  static std::atomic<int> level{
      static_cast<int>(resolve_env(detect_supported()))};
  return level;
}

}  // namespace

SimdLevel simd_level_supported() {
  static const SimdLevel supported = detect_supported();
  return supported;
}

SimdLevel simd_level() {
  return static_cast<SimdLevel>(active_level().load(std::memory_order_relaxed));
}

SimdLevel set_simd_level(SimdLevel level) {
  if (level > simd_level_supported()) level = simd_level_supported();
  active_level().store(static_cast<int>(level), std::memory_order_relaxed);
  return level;
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512: return "avx512";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kScalar: break;
  }
  return "scalar";
}

}  // namespace mch::linalg
