#include "util/rng.h"

#include <cmath>

namespace mch {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MCH_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MCH_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t raw;
  do {
    raw = next_u64();
  } while (raw >= limit);
  return lo + static_cast<std::int64_t>(raw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so std::log is finite.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

}  // namespace mch
