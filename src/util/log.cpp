#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mch {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
thread_local int t_worker_id = -1;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_worker_id(int worker_id) { t_worker_id = worker_id; }

int log_worker_id() { return t_worker_id; }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  // One fprintf per line under the mutex: concurrent lines never interleave.
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (t_worker_id >= 0) {
    std::fprintf(stderr, "[%s][w%d] %s\n", level_tag(level), t_worker_id,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
  }
}
}  // namespace detail

}  // namespace mch
