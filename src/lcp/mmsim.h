// Modulus-based matrix splitting iteration method (MMSIM) for the
// legalization KKT LCP — Algorithm 1 of the paper.
//
// The LCP(q, A) with A = [K −Bᵀ; B 0] is solved with the splitting (paper
// Eq. (16)):
//
//     M = [ K/β*      0    ]      N = M − A = [ (1/β*−1)K   Bᵀ  ]
//         [  B     D/θ*    ]                  [     0      D/θ* ]
//
// where D = tridiag(B K⁻¹ Bᵀ) approximates the Schur complement. With
// Ω = I, each iteration solves
//
//     (M + I) s⁽ᵏ⁺¹⁾ = N s⁽ᵏ⁾ + (I − A)|s⁽ᵏ⁾| − γ q,
//     z⁽ᵏ⁺¹⁾ = (|s⁽ᵏ⁺¹⁾| + s⁽ᵏ⁺¹⁾) / γ,
//
// and M + I is block lower triangular: the (1,1) block K/β* + I is block
// diagonal (one small block per cell — solved with precomputed block
// inverses in O(n)) and the (2,2) block D/θ* + I is tridiagonal (Thomas
// solve in O(m)). Every iteration is therefore linear-time in the circuit
// size; this is the paper's central efficiency claim.
//
// The element-wise modulus stages and all matrix products run on the global
// parallel runtime (src/runtime/) and are bitwise-deterministic for any
// thread count; the Thomas solve is the one inherently sequential stage.
//
// Convergence (paper Theorem 2): guaranteed for 0 < β* < 2 and
// 0 < θ* < 2(2 − β*)/(β*·μ_max), μ_max the largest eigenvalue of
// Γ = D⁻¹ B K⁻¹ Bᵀ. suggest_theta() estimates that bound by power
// iteration; the paper's fixed choice β* = θ* = 0.5 is the default.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "lcp/qp.h"
#include "linalg/tridiagonal.h"

namespace mch::lcp {

/// Default for MmsimOptions::fused: false when the MCH_FUSED_KERNELS
/// environment variable is "0"/"off"/"false", true otherwise. The fused
/// kernels are bitwise identical to the reference path, so the knob exists
/// for A/B benchmarking and the .fused-off ctest variant, not correctness.
bool fused_kernels_default();

/// Arithmetic precision of the splitting iterate.
enum class MmsimPrecision {
  /// Full float64 iteration — the bitwise-deterministic reference. Always
  /// what the `match`/`.mt4`/`.part` contracts run on.
  kDouble,
  /// Opt-in mixed mode (ALGORITHM.md ¶13): the bulk of the iteration runs
  /// the fused sweeps in float32 (twice the SIMD lanes, half the memory
  /// traffic), a float64 scaled-residual check runs every
  /// MmsimOptions::mixed_check_interval iterations, and the solve always
  /// finishes with full-precision double iterations ("polish") under the
  /// unchanged stopping rule — so the *accepted* solution is validated
  /// entirely in float64. No bitwise contract: iterates depend on the
  /// float32 trajectory. Requires the fused gather2 path; solvers that
  /// don't qualify (reference mode, wide rows) silently run kDouble.
  kMixed,
};

/// Default for MmsimOptions::precision: kMixed when the MCH_PRECISION
/// environment variable is "mixed", kDouble otherwise ("double", unset, or
/// unrecognized — the latter with a warning).
MmsimPrecision precision_default();

/// Which splitting builds M (ablation of the paper's Eq. 16 choice).
enum class MmsimSplitting {
  /// The paper's block-Gauss-Seidel form: M = [K/β* 0; B D/θ*] — the dual
  /// update sees the *current* primal iterate through the B block.
  kGaussSeidel,
  /// Block-Jacobi ablation: M = [K/β* 0; 0 D/θ*] — primal and dual relax
  /// independently. Converges markedly slower (see bench/ablation_parameters),
  /// demonstrating why the paper couples the blocks.
  kJacobi,
};

struct MmsimOptions {
  double beta = 0.5;        ///< β* in (0, 2); paper uses 0.5
  double theta = 0.5;       ///< θ* > 0; paper uses 0.5
  MmsimSplitting splitting = MmsimSplitting::kGaussSeidel;
  double gamma = 2.0;       ///< γ > 0 of the modulus transform
  /// Stop when ‖z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾‖∞ < tolerance. 1e-4 is far below the site
  /// pitch, so the Tetris allocation absorbs it; optimality tests tighten
  /// this to 1e-8.
  double tolerance = 1e-4;
  std::size_t max_iterations = 20000;
  /// The successive-difference criterion alone can fire prematurely when
  /// the iteration's contraction factor is close to 1 (e.g. θ* near the
  /// convergence boundary): steps become tiny long before the fixed point.
  /// When enabled, a candidate stop is accepted only if the scaled LCP
  /// residual (feasibility + complementarity) is also below
  /// residual_tolerance; otherwise the iteration continues.
  bool residual_check = true;
  double residual_tolerance = 1e-7;
  /// Record ‖z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾‖∞ every `trace_stride` iterations into
  /// MmsimResult::trace (0 = off). Used by the convergence bench/plots.
  std::size_t trace_stride = 0;
  /// Run the fused single-sweep iteration kernels (two parallel sweeps per
  /// half-step, no abs1/abs2/rhs1 intermediates) instead of the retained
  /// stage-by-stage reference path. Both produce bitwise-identical iterates
  /// at every thread count; fused is ~2× faster on large systems.
  bool fused = fused_kernels_default();
  /// Iterate precision (see MmsimPrecision). Mixed mode engages only on
  /// fused gather2-eligible solvers; everything else runs kDouble.
  MmsimPrecision precision = precision_default();
  /// Mixed mode: float32 iterations between two float64 scaled-residual
  /// checks. Each check promotes the iterate and runs one full residual
  /// evaluation, so the interval trades check latency against overshoot.
  std::size_t mixed_check_interval = 32;
};

/// Wall-clock breakdown of a solve by kernel phase, accumulated across
/// step() calls. Only collected for systems of at least 256 LCP variables —
/// timer reads would dominate the arithmetic of the many tiny component
/// solves the partitioned legalizer runs, and those contribute nothing to
/// the totals anyway.
struct MmsimPhaseTimes {
  double kernel_seconds = 0.0;     ///< element-wise modulus/rhs/z sweeps
  double spmv_seconds = 0.0;       ///< standalone matrix products + block solves
  double thomas_seconds = 0.0;     ///< tridiagonal (D/θ* + I) solves
  double reduction_seconds = 0.0;  ///< delta folds of the stopping rule
  double mixed_seconds = 0.0;      ///< float32 iterations of mixed mode
  double total() const {
    return kernel_seconds + spmv_seconds + thomas_seconds +
           reduction_seconds + mixed_seconds;
  }
  void accumulate(const MmsimPhaseTimes& other) {
    kernel_seconds += other.kernel_seconds;
    spmv_seconds += other.spmv_seconds;
    thomas_seconds += other.thomas_seconds;
    reduction_seconds += other.reduction_seconds;
    mixed_seconds += other.mixed_seconds;
  }
};

struct MmsimResult {
  Vector x;                   ///< primal variables (cell/subcell positions)
  Vector dual;                ///< multipliers of the spacing constraints
  Vector z;                   ///< full LCP solution [x; dual]
  /// Final splitting iterate [s1; s2] — the warm-start vector for a later
  /// solve of the same (or a nearby) problem via solve_from()/solve_in().
  Vector s;
  MmsimPhaseTimes phase;      ///< per-phase timing (see MmsimPhaseTimes)
  std::size_t iterations = 0;
  /// How many of `iterations` ran in float32 (0 outside mixed mode). The
  /// remainder is the double-precision polish.
  std::size_t mixed_iterations = 0;
  bool converged = false;
  double final_delta = 0.0;   ///< last ‖z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾‖∞
  double setup_seconds = 0.0;
  double solve_seconds = 0.0;
  /// (iteration, delta) samples when options.trace_stride > 0.
  std::vector<std::pair<std::size_t, double>> trace;
};

/// Per-part maxima of the scaled-residual stopping test. Each field is an
/// ∞-norm-style maximum, so the partials of a sub-problem combine with those
/// of its siblings by plain max — the combined decision is then exactly the
/// decision the monolithic solver would have made on the concatenated z
/// (the partitioned legalizer relies on this to stay bitwise-faithful).
struct MmsimResidualPartials {
  double z_norm = 0.0;          ///< ‖z‖∞
  double w_norm = 0.0;          ///< ‖Az + q‖∞
  double z_negativity = 0.0;    ///< max(0, −z_i)
  double w_negativity = 0.0;    ///< max(0, −w_i)
  double complementarity = 0.0; ///< max |z_i·w_i|
  void merge_max(const MmsimResidualPartials& other);
};

class MmsimSolver {
 public:
  /// Prepares the splitting for the given QP: builds the shifted block
  /// inverses of K/β* + I and the tridiagonal D/θ* + I. The QP must outlive
  /// the solver.
  ///
  /// `schur_coupling_breaks` (optional, size = #constraints) marks rows
  /// whose tridiagonal coupling to the *preceding* row must be dropped from
  /// D. A sub-problem extracted from a larger system passes the rows that
  /// were not adjacent in the parent ordering, so the sub-solve iterates
  /// exactly as the parent solver would on those rows.
  MmsimSolver(const StructuredQp& qp, const MmsimOptions& options = {},
              const std::vector<bool>* schur_coupling_breaks = nullptr);

  /// Runs Algorithm 1 from s⁽⁰⁾ = 0.
  MmsimResult solve() const;

  /// Runs Algorithm 1 from the given start vector s⁽⁰⁾ (size lcp_size()).
  MmsimResult solve_from(const Vector& s0) const;

  /// Iteration state for the incremental step() API. The partitioned
  /// legalizer advances many per-component solvers in lockstep with a
  /// global stopping rule; solve_from()/solve_in() run on the same
  /// machinery. States are plain buffer bundles: a SolverWorkspace slot
  /// keeps one alive across solves so reset_state() can reuse its capacity.
  struct State {
    Vector z;                 ///< current iterate [x; dual] (modulus image)
    std::size_t iterations = 0;
    MmsimPhaseTimes phase;    ///< timing accumulated by step()

   private:
    friend class MmsimSolver;
    Vector s1, s2;            ///< splitting state, primal / dual parts
    Vector z_prev;
    Vector abs1, abs2, rhs1, rhs2, new_s1, new_s2;  ///< scratch
    Vector thomas_d;          ///< Thomas forward-sweep scratch
    /// Float32 shadow of the splitting state + scratch, touched only by
    /// mixed mode's prelude (sized lazily there, capacity reused).
    linalg::AlignedVector<float> fs1, fs2, fnew_s1, fnew_s2;
    linalg::AlignedVector<float> fz, frhs2, fthomas_d;
  };

  /// Fresh state at s⁽⁰⁾ = 0.
  State make_state() const;
  /// Fresh state at the given s⁽⁰⁾ (size lcp_size()).
  State make_state(const Vector& s0) const;

  /// Re-initializes `state` in place at s⁽⁰⁾ = *s0 (zero when null),
  /// reusing the buffers' capacity — no allocation when the shapes repeat.
  /// Equivalent to overwriting with make_state().
  void reset_state(State& state, const Vector* s0 = nullptr) const;

  /// Runs Algorithm 1 on caller-owned buffers: reset_state(state, s0), then
  /// the MmsimOptions stopping rule. Bitwise identical to solve_from() for
  /// the same s0; the point is buffer reuse across solves (SolverWorkspace).
  MmsimResult solve_in(State& state, const Vector* s0 = nullptr) const;

  /// Advances one modulus iteration and returns ‖z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾‖∞. The
  /// caller owns the stopping rule (solve_from() applies the tolerance +
  /// residual_check policy in MmsimOptions).
  double step(State& state) const;

  /// Residual maxima of z for the scaled stopping test; combine across
  /// sub-problems with merge_max, decide with residual_ok.
  MmsimResidualPartials residual_partials(const Vector& z) const;

  /// The scaled-residual decision on (possibly merged) partials.
  static bool residual_ok(const MmsimResidualPartials& partials,
                          double tolerance);

  /// The tridiagonal Schur approximation D = tridiag(B K⁻¹ Bᵀ).
  const linalg::Tridiagonal& schur_tridiagonal() const { return d_; }

  /// Estimates the convergence bound 2(2−β*)/(β*·μ_max) of Theorem 2 via
  /// power iteration on Γ = D⁻¹ B K⁻¹ Bᵀ, and returns a θ* inside it.
  /// Theorem 2's bound assumes the exact Schur complement; with the
  /// tridiagonal approximation D the admissible range is empirically
  /// narrower (see bench/ablation_parameters), so the suggestion is
  /// additionally capped at the paper's validated 0.5 — auto-θ exists to
  /// *shrink* θ* on unusual instances, never to enlarge it. Returns
  /// options.theta unchanged when m = 0.
  double suggest_theta() const;

  /// μ_max estimate of Γ = D⁻¹ B K⁻¹ Bᵀ (power iteration).
  double estimate_mu_max() const;

 private:
  /// True when the scaled LCP residual of z is below residual_tolerance.
  bool scaled_residual_ok(const Vector& z) const;

  /// The retained stage-by-stage iteration (opts_.fused == false).
  double step_reference(State& state) const;
  /// The fused single-sweep iteration; bitwise equal to step_reference.
  double step_fused(State& state) const;
  /// step_fused body, specialized on whether the fixed-width-2 gather
  /// tables are in use (kGather2 = true compiles the B/Bᵀ gathers as
  /// constant-trip-count loops with no per-row branch).
  template <bool kGather2>
  double step_fused_impl(State& state) const;
  /// One float32 fused iteration of mixed mode; returns the float delta.
  float step_mixed(State& state) const;
  /// Copies the float32 iterate back into the double state (s1/s2 and the
  /// modulus image z), so float64 checks and the polish see it.
  void promote_mixed(State& state) const;
  /// The float32 phase of mixed mode: seeds the float shadow from the
  /// double state, iterates step_mixed with a float64 scaled-residual check
  /// every mixed_check_interval iterations, and stops on float convergence,
  /// residual stall, or budget — leaving the promoted iterate in `state`
  /// for the double polish that follows.
  void run_mixed_prelude(State& state, MmsimResult& result) const;
  /// Iteration loop + result packaging shared by solve_from()/solve_in().
  MmsimResult run_loop(State& state) const;

  const StructuredQp& qp_;
  MmsimOptions opts_;
  linalg::BlockDiagMatrix shifted_k_;  ///< K/β* + I with block inverses
  linalg::Tridiagonal d_;              ///< tridiag(B K⁻¹ Bᵀ)
  linalg::Tridiagonal shifted_d_;      ///< D/θ* + I
  /// Thomas factorization of shifted_d_, computed once at setup. Both step
  /// paths solve through it (required for their bitwise equality — see
  /// TridiagonalFactorization on why it rounds differently from
  /// Tridiagonal::solve).
  linalg::TridiagonalFactorization shifted_d_lu_;
  /// Cached Bᵀ view, prebuilt at construction so the fused kernels gather
  /// through it without the per-call lock of multiply_transpose_add.
  const linalg::CsrMatrix* bt_ = nullptr;
  /// Per-variable flag: 1 when the variable belongs to a non-1×1 K block
  /// (handled by the block sweep of the fused kernel instead of the flat
  /// scalar sweep).
  std::vector<unsigned char> general_var_;
  /// Fixed-width-2 (padded ELL / SoA) gather tables for the fused sweeps:
  /// the CsrGather2 views cached on B and its transpose (see csr.h), held
  /// when every B and Bᵀ row has at most two entries — always true for the
  /// pairwise spacing constraints this solver exists for. Short rows are
  /// padded with value 0.0 *after* their real entries, so each gather folds
  /// the same values in the same order as the CSR loop plus trailing ±0
  /// terms. Those padding terms can at most flip the sign of an
  /// exactly-zero s entry (never a z bit — see step_fused_impl), which is
  /// below the solver's bitwise contract on z/x/dual. uint32 columns halve
  /// the index traffic of the hot sweeps; the split v0/v1 slot arrays are
  /// what the SIMD sweep kernels (lcp/mmsim_kernels.h) load directly.
  bool gather2_ = false;
  const linalg::CsrGather2* bt_g2_ = nullptr;
  const linalg::CsrGather2* b_g2_ = nullptr;
  /// Flattened copies of the non-1×1 K blocks for the fused block sweep
  /// (built only for fused solvers). Block g of general_block_indices()
  /// owns gb_vals_[gb_data_[g] .. gb_data_[g] + 2·bn²): its K block
  /// (row-major, bn = gb_dim_[g]) followed by the block's inverse from
  /// shifted_k_. One contiguous stream instead of two heap-scattered
  /// DenseMatrix objects per block — same values, same arithmetic order.
  std::vector<std::size_t> gb_off_;
  std::vector<std::uint32_t> gb_dim_;
  std::vector<std::size_t> gb_data_;
  Vector gb_vals_;
  /// Largest non-1×1 block dimension — sizes the per-thread block scratch.
  std::size_t max_general_rows_ = 0;
  /// Mixed mode engaged: precision == kMixed on a fused gather2-eligible
  /// solver. When set, the float32 mirrors below are populated.
  bool mixed_active_ = false;
  /// Float32 copies of everything the float sweeps read: K scalar values
  /// and shifted inverses, p, b, the split gather-slot values of Bᵀ and B
  /// (columns are shared with the double tables), the flattened general
  /// blocks, and the D bands + Thomas factor arrays of the dual solve.
  linalg::AlignedVector<float> kv_f_, siv_f_, p_f_, b_f_;
  linalg::AlignedVector<float> bt_v0f_, bt_v1f_, b_v0f_, b_v1f_;
  linalg::AlignedVector<float> gb_vals_f_;
  linalg::AlignedVector<float> diag_f_, lower_f_, upper_f_;
  linalg::AlignedVector<float> c_prime_f_, inv_pivot_f_, g_f_;
  /// Collect MmsimPhaseTimes. Disabled for tiny systems, where the timer
  /// reads would rival the arithmetic (see MmsimPhaseTimes).
  bool profile_ = false;
  double setup_seconds_ = 0.0;
};

/// Computes D = tridiag(B K⁻¹ Bᵀ) directly from the block-diagonal inverse
/// of K. Exposed for tests (validated against the paper's Sherman–Morrison
/// closed form for all-double-height designs). When `coupling_breaks` is
/// given (size = #rows), rows flagged true get zero coupling to their
/// predecessor — see the MmsimSolver constructor.
linalg::Tridiagonal schur_tridiagonal(
    const linalg::BlockDiagMatrix& k, const linalg::CsrMatrix& b,
    const std::vector<bool>* coupling_breaks = nullptr);

}  // namespace mch::lcp
