// MMSIM legalization step: model build + Algorithm 1 + subcell restore.
//
// Produces the continuous, row-aligned placement that is optimal for the
// relaxed problem (13); the Tetris-like allocation then snaps it to sites
// and repairs right-boundary spills. Split from the flow driver so the
// optimality experiments (§5.3) can run the solver in isolation.
#pragma once

#include <cstddef>

#include "db/design.h"
#include "lcp/mmsim.h"
#include "legal/model.h"
#include "legal/row_assign.h"

namespace mch::legal {

struct MmsimLegalizerOptions {
  ModelOptions model;        ///< λ penalty (paper: 1000)
  lcp::MmsimOptions mmsim;   ///< β*, θ*, γ, tolerance (paper: 0.5/0.5)
  /// When true, θ* is re-derived from the Theorem-2 bound via power
  /// iteration instead of using options.mmsim.theta.
  bool auto_theta = false;
};

struct MmsimLegalizerStats {
  std::size_t num_variables = 0;
  std::size_t num_constraints = 0;
  std::size_t iterations = 0;
  bool converged = false;
  double max_mismatch = 0.0;     ///< worst subcell disagreement before restore
  double theta_used = 0.0;
  double model_seconds = 0.0;
  double solve_seconds = 0.0;
  double objective = 0.0;        ///< relaxed QP objective at the solution
};

/// Solves the relaxed problem for the given row assignment and writes the
/// restored positions (continuous x, row-aligned y) into the design.
MmsimLegalizerStats mmsim_legalize_continuous(
    db::Design& design, const RowAssignment& base_rows,
    const MmsimLegalizerOptions& options = {});

}  // namespace mch::legal
