// Generality ablation (beyond the paper's evaluation): the paper's
// formulation covers any cell height — subcell splitting generalizes — but
// its benchmarks contain only single- and double-height cells. This sweep
// adds triple- and quadruple-height populations and shows the flow stays
// legal and near-optimal, with iteration counts and illegal-cell counts
// growing gracefully as the height mix becomes harder.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/suite_runner.h"
#include "io/table.h"

int main() {
  using namespace mch;
  std::printf("Ablation — cell-height mix (10k cells, density 0.6)\n\n");

  struct Mix {
    const char* label;
    double doubles;  ///< fraction of all cells
    double triples;  ///< fraction of the single budget
    double quads;
  };
  const Mix mixes[] = {
      {"singles only", 0.00, 0.00, 0.00},
      {"10% double (paper)", 0.10, 0.00, 0.00},
      {"30% double", 0.30, 0.00, 0.00},
      {"10% double + 5% triple", 0.10, 0.05, 0.00},
      {"10% double + 5% triple + 3% quad", 0.10, 0.05, 0.03},
      {"20% double + 10% triple + 5% quad", 0.20, 0.10, 0.05},
  };

  io::Table table({"Height mix", "#1", "#2", "#3", "#4", "#I. Cell",
                   "Disp/cell", "Iterations", "Time (s)", "legal"});
  bench::JsonSnapshot json("ablation_heights");
  for (const Mix& mix : mixes) {
    gen::GeneratorOptions options;
    options.seed = bench::bench_seed();
    options.triple_fraction = mix.triples;
    options.quad_fraction = mix.quads;
    const std::size_t total = 10000;
    const auto doubles = static_cast<std::size_t>(mix.doubles * total);
    db::Design design =
        gen::generate_random_design(total - doubles, doubles, 0.6, options);
    design.name = mix.label;
    const eval::RunResult result =
        eval::run_legalizer(design, eval::Legalizer::kMmsim);
    table.row()
        .cell(mix.label)
        .cell(design.count_cells_with_height(1))
        .cell(design.count_cells_with_height(2))
        .cell(design.count_cells_with_height(3))
        .cell(design.count_cells_with_height(4))
        .cell(result.illegal_after_solver)
        .cell(result.disp.mean_sites, 3)
        .cell(result.solver_iterations)
        .cell(result.seconds, 2)
        .cell(result.legal ? "yes" : "NO");
    json.add(mix.label, result.num_cells, result.seconds);
    std::cerr << "." << std::flush;
  }
  std::cerr << "\n";
  std::cout << table.to_text() << "\n";
  std::cout << "The paper's formulation (subcell splitting + chain-penalty "
               "blocks) handles heights beyond 2 without modification; odd "
               "heights are free of the rail constraint, so triples are "
               "easier to seat than doubles.\n";
  mch::bench::print_peak_rss();
  json.write();
  return 0;
}
