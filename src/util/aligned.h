// 64-byte-aligned allocation for numeric arrays.
//
// The SIMD kernels (linalg/simd.h) load 64-byte vectors; std::vector's
// default allocator only guarantees alignof(std::max_align_t) (16 on this
// ABI), so solver arenas and CSR value arrays allocate through this
// allocator instead. Alignment is a cache-line: one allocation alignment
// serves both AVX2 (32 B) and AVX-512 (64 B) loads, and keeps hot arrays
// from straddling lines at their base.
//
// The kernels still use unaligned load instructions (chunk offsets inside
// an array are not always multiples of the vector width), so alignment is
// a performance property, never a correctness requirement.
#pragma once

#include <cstddef>
#include <new>

namespace mch::util {

template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment power of two");
  static_assert(Alignment >= alignof(T), "alignment below type requirement");

  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

}  // namespace mch::util
