// Generic (dense) linear complementarity problems.
//
// LCP(q, A): find w, z with  w = A z + q >= 0,  z >= 0,  zᵀw = 0.
//
// The dense form is used by the reference solvers (Lemke, PSOR) that
// cross-validate the structured MMSIM solver on small instances; production
// solves never materialize A densely.
#pragma once

#include <cstddef>

#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace mch::lcp {

using linalg::DenseMatrix;
using linalg::Vector;

struct DenseLcp {
  DenseMatrix A;
  Vector q;

  std::size_t size() const { return q.size(); }
};

/// Quality of a candidate LCP solution z (w is recomputed as A z + q).
struct LcpResidual {
  double z_negativity = 0.0;      ///< max(0, -z_i) over i
  double w_negativity = 0.0;      ///< max(0, -w_i) over i
  double complementarity = 0.0;   ///< max_i |z_i * w_i|

  double max() const;
};

/// Computes feasibility/complementarity residuals of z for the dense LCP.
LcpResidual residual(const DenseLcp& problem, const Vector& z);

}  // namespace mch::lcp
