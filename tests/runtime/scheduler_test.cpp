// Scheduler mechanics: exact chunk coverage under adversarial grains,
// concurrent top-level submissions (the multi-client regression), nested
// parallel_for as stealable children with the inline-fallback metric,
// exception propagation — including from a stolen task — pool-scoped
// worker identities, and clean reconfiguration/shutdown cycles.
#include "runtime/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "runtime/runtime.h"

namespace mch::runtime {
namespace {

/// Every test leaves the global Runtime serial and the scheduler knobs
/// re-armed from the environment, so suites sharing the binary start from
/// a known state and MCH_SCHED_* sweeps apply to the whole binary.
class RuntimeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Runtime::configure(1);
    Scheduler::reset_knobs();
  }
};

TEST_F(RuntimeTest, ChunkCount) {
  EXPECT_EQ(chunk_count(0, 64), 0u);
  EXPECT_EQ(chunk_count(1, 64), 1u);
  EXPECT_EQ(chunk_count(64, 64), 1u);
  EXPECT_EQ(chunk_count(65, 64), 2u);
  EXPECT_EQ(chunk_count(10, 3), 4u);
  EXPECT_EQ(chunk_count(10, 0), 10u);  // grain 0 behaves as grain 1
}

TEST_F(RuntimeTest, ResolveThreadCount) {
  EXPECT_EQ(Runtime::resolve_thread_count(1), 1u);
  EXPECT_EQ(Runtime::resolve_thread_count(5), 5u);
  EXPECT_GE(Runtime::resolve_thread_count(0), 1u);  // auto is at least 1
}

TEST_F(RuntimeTest, CoversRangeExactlyOnceUnderAdversarialGrains) {
  const std::size_t grains[] = {1, 2, 3, 7, 64, 1000000};
  const std::size_t sizes[] = {0, 1, 5, 1023, 1024, 1025, 10000};
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    Runtime::configure(threads);
    for (const std::size_t grain : grains) {
      for (const std::size_t n : sizes) {
        std::vector<int> counts(n, 0);
        parallel_for(std::size_t{0}, n, grain,
                     [&](std::size_t lo, std::size_t hi) {
                       ASSERT_LT(lo, hi);
                       ASSERT_LE(hi, n);
                       ASSERT_LE(hi - lo, grain == 0 ? 1 : grain);
                       for (std::size_t i = lo; i < hi; ++i) ++counts[i];
                     });
        const long total =
            std::accumulate(counts.begin(), counts.end(), 0L);
        ASSERT_EQ(total, static_cast<long>(n))
            << "threads=" << threads << " grain=" << grain << " n=" << n;
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(counts[i], 1) << "index " << i << " ran " << counts[i]
                                  << " times (threads=" << threads
                                  << " grain=" << grain << " n=" << n << ")";
      }
    }
  }
}

TEST_F(RuntimeTest, OffsetRangeCoversExactlyOnce) {
  Runtime::configure(4);
  constexpr std::size_t kBegin = 17, kEnd = 1042;
  std::vector<int> counts(kEnd, 0);
  parallel_for(kBegin, kEnd, 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++counts[i];
  });
  for (std::size_t i = 0; i < kEnd; ++i)
    ASSERT_EQ(counts[i], i >= kBegin ? 1 : 0) << "index " << i;
}

// Regression for the multi-client abort: the old pool fired MCH_CHECK
// ("concurrent top-level ThreadPool::run calls are not supported") and
// killed the process when two threads submitted jobs at once. The
// scheduler must interleave the jobs on the shared workers, run every
// chunk of every job exactly once, and return each submitter its own
// results.
TEST_F(RuntimeTest, ConcurrentTopLevelSubmissionsInterleave) {
  Runtime::configure(4);
  constexpr int kClients = 4;
  constexpr std::size_t kItems = 4096;
  std::atomic<int> ready{0};
  std::vector<std::vector<int>> counts(kClients,
                                       std::vector<int>(kItems, 0));
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      // Rendezvous so the submissions genuinely overlap.
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      for (int round = 0; round < 8; ++round) {
        parallel_for(std::size_t{0}, kItems, 64,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i)
                         ++counts[client][i];
                     });
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int client = 0; client < kClients; ++client)
    for (std::size_t i = 0; i < kItems; ++i)
      ASSERT_EQ(counts[client][i], 8)
          << "client " << client << " index " << i;
}

// Nested parallel_for no longer serializes inline: the inner construct is
// a nested job whose chunks are stealable children, still covering every
// index exactly once, and the in_task flag survives the nesting.
TEST_F(RuntimeTest, NestedParallelForSchedulesStealableChildren) {
  Runtime::configure(4);
  Scheduler::set_nested_scheduling(true);
  EXPECT_FALSE(Scheduler::in_task());
  constexpr std::size_t kOuter = 8, kInner = 100;
  std::vector<std::vector<int>> hits(kOuter,
                                     std::vector<int>(kInner, 0));
  std::atomic<int> nested_in_task{0};
  const std::uint64_t nested_jobs_before =
      obs::counter("sched.nested_jobs").value();
  parallel_for(std::size_t{0}, kOuter, 1,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t o = lo; o < hi; ++o) {
                   if (Scheduler::in_task()) ++nested_in_task;
                   parallel_for(std::size_t{0}, kInner, 10,
                                [&, o](std::size_t ilo, std::size_t ihi) {
                                  EXPECT_TRUE(Scheduler::in_task());
                                  for (std::size_t i = ilo; i < ihi; ++i)
                                    ++hits[o][i];
                                });
                   // The outer body is still inside its chunk after the
                   // nested job completed (the in-task flag is restored,
                   // not cleared).
                   EXPECT_TRUE(Scheduler::in_task());
                 }
               });
  EXPECT_EQ(nested_in_task.load(), static_cast<int>(kOuter));
  for (std::size_t o = 0; o < kOuter; ++o)
    for (std::size_t i = 0; i < kInner; ++i)
      ASSERT_EQ(hits[o][i], 1) << "outer " << o << " inner " << i;
  EXPECT_FALSE(Scheduler::in_task());
  EXPECT_EQ(obs::counter("sched.nested_jobs").value() - nested_jobs_before,
            static_cast<std::uint64_t>(kOuter));
}

// With MCH_SCHED_NESTED=0 the legacy inline fallback runs — and every
// chunk it serializes is accounted in sched.nested_inline.
TEST_F(RuntimeTest, NestedInlineFallbackIsCounted) {
  Runtime::configure(4);
  Scheduler::set_nested_scheduling(false);
  constexpr std::size_t kOuter = 4, kInner = 40, kGrain = 10;
  std::vector<std::vector<int>> hits(kOuter,
                                     std::vector<int>(kInner, 0));
  const std::uint64_t inline_before =
      obs::counter("sched.nested_inline").value();
  parallel_for(std::size_t{0}, kOuter, 1,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t o = lo; o < hi; ++o)
                   parallel_for(std::size_t{0}, kInner, kGrain,
                                [&, o](std::size_t ilo, std::size_t ihi) {
                                  for (std::size_t i = ilo; i < ihi; ++i)
                                    ++hits[o][i];
                                });
               });
  for (std::size_t o = 0; o < kOuter; ++o)
    for (std::size_t i = 0; i < kInner; ++i)
      ASSERT_EQ(hits[o][i], 1) << "outer " << o << " inner " << i;
  EXPECT_EQ(obs::counter("sched.nested_inline").value() - inline_before,
            kOuter * chunk_count(kInner, kGrain));
}

TEST_F(RuntimeTest, ExceptionPropagatesAndPoolSurvives) {
  Runtime::configure(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        parallel_for(std::size_t{0}, std::size_t{100}, 1,
                     [&](std::size_t lo, std::size_t) {
                       if (lo == 37)
                         throw std::runtime_error("chunk failure");
                     }),
        std::runtime_error);
    // The scheduler must stay usable after a throwing job.
    std::vector<int> counts(1000, 0);
    parallel_for(std::size_t{0}, counts.size(), 64,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) ++counts[i];
                 });
    for (std::size_t i = 0; i < counts.size(); ++i)
      ASSERT_EQ(counts[i], 1);
  }
}

// Exception propagation from a *stolen* task: a worker submits a nested
// job and blocks inside its first chunk until the remaining nested chunks
// have run. Those chunks sit on the worker's own deque, so they can only
// execute by being stolen — one of them throws, and the error must travel
// stolen chunk -> nested submitter -> outer job -> outer submitter.
TEST_F(RuntimeTest, ExceptionPropagatesFromStolenTask) {
  Runtime::configure(4);
  Scheduler* sched = Runtime::instance().scheduler();
  ASSERT_NE(sched, nullptr);
  std::atomic<bool> ran_nested{false};
  bool threw = false;
  const std::uint64_t steals_before = obs::counter("sched.steals").value();
  std::atomic<int> inside{0};
  std::atomic<bool> claimed{false};
  std::atomic<int> others_done{0};
  try {
    // Two outer chunks with a rendezvous: the submitter can hold only one
    // at a time, so the other is guaranteed to run on a pool worker — no
    // matter how a single-core machine schedules the wakeups.
    parallel_for(std::size_t{0}, std::size_t{2}, 1,
                 [&](std::size_t, std::size_t) {
                   inside.fetch_add(1);
                   while (inside.load() < 2) std::this_thread::yield();
                   // Only a pool worker's nested children land on a worker
                   // deque (an external submitter's go to the injection
                   // queue), so only a worker stages the bait.
                   if (sched->current_worker_index() < 0) return;
                   if (claimed.exchange(true)) return;
                   ran_nested.store(true);
                   parallel_for(
                       std::size_t{0}, std::size_t{4}, 1,
                       [&](std::size_t lo, std::size_t) {
                         if (lo == 0) {
                           // Pin the nested submitter here until the
                           // other chunks ran elsewhere (stolen).
                           while (others_done.load() < 3)
                             std::this_thread::yield();
                           return;
                         }
                         others_done.fetch_add(1);
                         if (lo == 1)
                           throw std::runtime_error("stolen chunk");
                       });
                 });
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "stolen chunk");
    threw = true;
  }
  ASSERT_TRUE(ran_nested.load()) << "no outer chunk ever ran on a worker";
  EXPECT_TRUE(threw);
  EXPECT_GT(obs::counter("sched.steals").value(), steals_before);
}

TEST_F(RuntimeTest, SchedulerRunExecutesEveryChunkOnceAndIsReusable) {
  Scheduler sched(4);
  EXPECT_EQ(sched.thread_count(), 4u);
  for (const std::size_t chunks : {std::size_t{1}, std::size_t{257},
                                   std::size_t{13}}) {
    std::unique_ptr<std::atomic<int>[]> counts(new std::atomic<int>[chunks]);
    for (std::size_t c = 0; c < chunks; ++c) counts[c] = 0;
    sched.run(chunks, [&](std::size_t c) { ++counts[c]; });
    for (std::size_t c = 0; c < chunks; ++c)
      ASSERT_EQ(counts[c].load(), 1) << "chunk " << c << " of " << chunks;
  }
}

// Two pools in one process must hand out distinct worker identities — the
// old per-pool "worker-N" names collided between the global Runtime's pool
// and ad-hoc test pools, interleaving unrelated threads in trace output.
TEST_F(RuntimeTest, WorkerIdentitiesArePoolScopedUnique) {
  Scheduler a(2);
  Scheduler b(2);
  EXPECT_NE(a.pool_id(), b.pool_id());

  const bool was_tracing = obs::tracing_enabled();
  obs::set_tracing_enabled(true);
  obs::clear_trace();
  // A two-sided rendezvous per pool forces the single worker to claim a
  // chunk (and hence register its named trace buffer): neither side can
  // finish its own chunk until both are inside the job.
  const auto drive = [](Scheduler& sched) {
    std::atomic<int> inside{0};
    sched.run(2, [&](std::size_t) {
      inside.fetch_add(1);
      while (inside.load() < 2) std::this_thread::yield();
    });
  };
  drive(a);
  drive(b);
  const std::string json = obs::chrome_trace_json();
  obs::set_tracing_enabled(was_tracing);
  obs::clear_trace();

  const std::string name_a = "worker-" + std::to_string(a.pool_id()) + ".0";
  const std::string name_b = "worker-" + std::to_string(b.pool_id()) + ".0";
  EXPECT_NE(json.find(name_a), std::string::npos) << json;
  EXPECT_NE(json.find(name_b), std::string::npos) << json;
}

TEST_F(RuntimeTest, ReconfigureCyclesShutDownCleanly) {
  for (const unsigned threads : {1u, 2u, 4u, 8u, 3u, 1u, 4u}) {
    Runtime::configure(threads);
    EXPECT_EQ(Runtime::instance().threads(), threads);
    EXPECT_EQ(Runtime::instance().scheduler() == nullptr, threads == 1);
    long sum = parallel_reduce(
        std::size_t{0}, std::size_t{1000}, 16, 0L,
        [](std::size_t lo, std::size_t hi) {
          long s = 0;
          for (std::size_t i = lo; i < hi; ++i) s += static_cast<long>(i);
          return s;
        },
        [](long a, long b) { return a + b; });
    EXPECT_EQ(sum, 999L * 1000L / 2);
  }
}

}  // namespace
}  // namespace mch::runtime
