#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mch::eval {

DisplacementStats displacement(const db::Design& design) {
  DisplacementStats stats;
  const double site = design.chip().site_width;
  std::size_t live_cells = 0;
  for (const db::Cell& cell : design.cells()) {
    if (cell.erased) continue;
    ++live_cells;
    const double dx = std::abs(cell.x - cell.gp_x);
    const double dy = std::abs(cell.y - cell.gp_y);
    const double manhattan_sites = (dx + dy) / site;
    stats.total_sites += manhattan_sites;
    stats.total_x_sites += dx / site;
    stats.total_y_sites += dy / site;
    stats.max_sites = std::max(stats.max_sites, manhattan_sites);
    stats.quadratic += dx * dx + dy * dy;
    if (manhattan_sites > 1e-9) ++stats.moved_cells;
  }
  if (live_cells > 0)
    stats.mean_sites = stats.total_sites / static_cast<double>(live_cells);
  return stats;
}

namespace {

template <typename GetX, typename GetY>
double hpwl_impl(const db::Design& design, GetX get_x, GetY get_y) {
  double total = 0.0;
  for (const db::NetView& net : design.nets()) {
    if (net.pins.size() < 2) continue;
    double min_x = std::numeric_limits<double>::infinity();
    double max_x = -min_x;
    double min_y = min_x;
    double max_y = -min_x;
    for (const db::Pin& pin : net.pins) {
      const db::Cell& cell = design.cells()[pin.cell];
      const double px = get_x(cell) + pin.dx;
      const double py = get_y(cell) + pin.dy;
      min_x = std::min(min_x, px);
      max_x = std::max(max_x, px);
      min_y = std::min(min_y, py);
      max_y = std::max(max_y, py);
    }
    total += (max_x - min_x) + (max_y - min_y);
  }
  return total;
}

}  // namespace

double hpwl(const db::Design& design) {
  return hpwl_impl(
      design, [](const db::Cell& c) { return c.x; },
      [](const db::Cell& c) { return c.y; });
}

double gp_hpwl(const db::Design& design) {
  return hpwl_impl(
      design, [](const db::Cell& c) { return c.gp_x; },
      [](const db::Cell& c) { return c.gp_y; });
}

double delta_hpwl_fraction(const db::Design& design) {
  const double base = gp_hpwl(design);
  if (base <= 0.0) return 0.0;
  return (hpwl(design) - base) / base;
}

}  // namespace mch::eval
