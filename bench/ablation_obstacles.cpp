// Obstacle ablation (extension beyond the paper): sweeps the number of
// fixed macros at a fixed movable population and compares the MMSIM flow
// against the obstacle-capable baselines. The paper's benchmarks dropped
// the contest's blockages; this shows the LCP formulation absorbs them
// naturally — obstacles become one-sided bound rows in B — and the method
// ranking is unchanged.
#include <cstdio>
#include <iostream>

#include "baselines/local.h"
#include "baselines/tetris.h"
#include "bench_common.h"
#include "db/legality.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "io/table.h"
#include "legal/flow.h"

int main() {
  using namespace mch;
  std::printf("Ablation — fixed macros (10k movable cells, density 0.6, "
              "6-row x 30-site macros)\n\n");

  io::Table table({"#Macros", "Disp MMSIM", "Disp Local", "Disp Tetris",
                   "#I. Cell", "Iterations", "t MMSIM (s)", "all legal"});
  bench::JsonSnapshot json("ablation_obstacles");
  for (const std::size_t macros : {0, 2, 4, 8, 16, 32}) {
    gen::GeneratorOptions options;
    options.seed = bench::bench_seed();
    options.fixed_macros = macros;
    options.macro_height_rows = 6;
    options.macro_width_sites = 30.0;
    const db::Design base =
        gen::generate_random_design(9000, 1000, 0.6, options);

    db::Design mmsim_design = base;
    const legal::FlowResult flow = legal::legalize(mmsim_design);
    db::Design local_design = base;
    baselines::local_legalize(local_design, baselines::LocalVariant::kBase);
    db::Design tetris_design = base;
    baselines::tetris_legalize(tetris_design);

    const bool all_legal = flow.legal &&
                           db::check_legality(local_design).legal() &&
                           db::check_legality(tetris_design).legal();
    table.row()
        .cell(macros)
        .cell(eval::displacement(mmsim_design).total_sites, 0)
        .cell(eval::displacement(local_design).total_sites, 0)
        .cell(eval::displacement(tetris_design).total_sites, 0)
        .cell(flow.allocation.illegal_cells)
        .cell(flow.solver.iterations)
        .cell(flow.total_seconds, 2)
        .cell(all_legal ? "yes" : "NO");
    json.add("macros/" + std::to_string(macros), base.num_cells(),
             flow.total_seconds);
    std::cerr << "." << std::flush;
  }
  std::cerr << "\n";
  std::cout << table.to_text() << "\n";
  std::cout << "Macros fragment the rows, so displacement grows for every "
               "method; the MMSIM keeps its lead because the obstacle "
               "bounds enter the QP exactly.\n";
  mch::bench::print_peak_rss();
  json.write();
  return 0;
}
