// Minimal leveled logger writing to stderr.
//
// The library is quiet by default (Level::kWarn); benches and examples raise
// the level to kInfo for progress reporting, and the MCH_LOG_LEVEL env var
// ("debug"/"info"/"warn"/"error"/"off") overrides the default at process
// start. Thread-safe: the level is an atomic and sink writes are serialized
// by a mutex, so kernels running on the runtime's worker pool (src/runtime/)
// may log freely. Every line carries a monotonic uptime timestamp
// ("[   12.3456]", seconds since the first log line), and lines emitted
// off the main thread are prefixed with the worker id registered via
// set_log_worker_id (the scheduler registers a process-unique id per
// worker, so ids never collide across pools).
#pragma once

#include <sstream>
#include <string>

namespace mch {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the process-wide minimum level that is emitted.
LogLevel log_level();

/// Sets the process-wide minimum level that is emitted.
void set_log_level(LogLevel level);

/// Tags the calling thread's log lines with "[wN]". The main thread keeps
/// the default id -1 (no prefix); pool workers register their index.
void set_log_worker_id(int worker_id);

/// The calling thread's registered worker id, -1 when unregistered.
int log_worker_id();

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mch

#define MCH_LOG(level)                                   \
  if (static_cast<int>(::mch::LogLevel::level) <         \
      static_cast<int>(::mch::log_level())) {            \
  } else                                                 \
    ::mch::detail::LogLine(::mch::LogLevel::level)
