// Sparse matrices: COO builder and immutable CSR.
//
// The constraint matrix B of the legalization QP has at most two nonzeros
// per row, so CSR with 32-bit column indices would suffice; we keep
// std::size_t indices for simplicity and because index width is not the
// bottleneck. Duplicate COO entries are summed on conversion, matching the
// usual triplet-assembly convention.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "linalg/vector_ops.h"

namespace mch::linalg {

/// Coordinate-format triplet accumulator for assembling a sparse matrix.
class CooMatrix {
 public:
  CooMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entries() const { return row_idx_.size(); }

  /// Appends value at (row, col). Duplicates are summed by to_csr().
  void add(std::size_t row, std::size_t col, double value);

  /// Reserves storage for n entries.
  void reserve(std::size_t n) {
    row_idx_.reserve(n);
    col_idx_.reserve(n);
    values_.reserve(n);
  }

  const std::vector<std::size_t>& row_indices() const { return row_idx_; }
  const std::vector<std::size_t>& col_indices() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_idx_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Immutable compressed-sparse-row matrix.
///
/// The transpose products gather through a lazily built and cached CSR view
/// of Aᵀ instead of scattering into y: each output element is then owned by
/// exactly one loop iteration, which lets the runtime parallelize transpose
/// products row-wise with results independent of the thread count (the
/// cache also makes repeated transpose products cheaper in any case). The
/// cache is immutable once built and shared between copies.
class CsrMatrix {
 public:
  /// Empty rows x cols matrix with no entries.
  CsrMatrix(std::size_t rows = 0, std::size_t cols = 0);

  CsrMatrix(const CsrMatrix& other);
  CsrMatrix& operator=(const CsrMatrix& other);
  CsrMatrix(CsrMatrix&& other) noexcept;
  CsrMatrix& operator=(CsrMatrix&& other) noexcept;

  /// Builds from a COO accumulator; duplicate entries are summed, explicit
  /// zeros (after summing) are kept out of the structure.
  static CsrMatrix from_coo(const CooMatrix& coo);

  /// Identity matrix of size n.
  static CsrMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// y = A x. Requires x.size() == cols(); resizes y to rows().
  void multiply(const Vector& x, Vector& y) const;

  /// y += alpha * A x.
  void multiply_add(double alpha, const Vector& x, Vector& y) const;

  /// y = Aᵀ x. Requires x.size() == rows(); resizes y to cols().
  void multiply_transpose(const Vector& x, Vector& y) const;

  /// y += alpha * Aᵀ x.
  void multiply_transpose_add(double alpha, const Vector& x, Vector& y) const;

  /// Returns Aᵀ as an explicit CSR matrix.
  CsrMatrix transpose() const;

  /// Element access by binary search within the row; O(log nnz(row)).
  double at(std::size_t row, std::size_t col) const;

  /// CSR internals (for solvers that need direct traversal).
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  /// The cached Aᵀ, built on first use by a transpose product.
  const CsrMatrix& gather_view() const;

  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;

  // Lazily built Aᵀ (see class comment). shared_ptr so copies share the
  // already-built view; the mutex only guards the one-time build.
  mutable std::shared_ptr<const CsrMatrix> transpose_cache_;
  mutable std::mutex transpose_mutex_;
};

}  // namespace mch::linalg
