// Runtime SIMD dispatch for the numeric kernels.
//
// Three levels: portable scalar (always available, the bitwise reference),
// AVX2, and AVX-512. The active level is resolved once from the MCH_SIMD
// environment variable clamped to what the CPU supports, and every SIMD
// entry point (CSR gathers, block-diagonal sweeps, MMSIM half-steps)
// consults it at call time, so tests and benches can flip levels
// mid-process with set_simd_level().
//
//   MCH_SIMD=0|off|scalar   force the scalar reference kernels
//   MCH_SIMD=avx2           cap at AVX2 (4-wide double / 8-wide float)
//   MCH_SIMD=avx512         cap at AVX-512 (8-wide double / 16-wide float)
//   MCH_SIMD=auto (default) highest level the CPU reports
//
// The SIMD double kernels are bitwise identical to the scalar reference
// (see ALGORITHM.md par.13), so the level is a pure performance knob;
// determinism contracts (`match`, `.mt4`) hold at every level.
#pragma once

namespace mch::linalg {

enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// The highest level this CPU supports (scalar when not compiled in).
SimdLevel simd_level_supported();

/// The active dispatch level: MCH_SIMD clamped to simd_level_supported(),
/// resolved once and cached; later set_simd_level() calls override it.
SimdLevel simd_level();

/// Overrides the active level (clamped to hardware support); used by tests
/// and benches to compare levels in one process. Returns the level
/// actually installed.
SimdLevel set_simd_level(SimdLevel level);

/// "scalar" / "avx2" / "avx512".
const char* simd_level_name(SimdLevel level);

}  // namespace mch::linalg
