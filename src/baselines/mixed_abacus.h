// Mixed-cell-height Abacus-style legalizer in the spirit of Wang et al.
// (ASP-DAC'17, reference [18] of the paper).
//
// Their algorithm analyzes why plain Abacus fails on multi-row cells and
// extends its cluster mechanics to handle them while honoring the GP cell
// ordering. The binary is not public; this reimplementation keeps the
// essential structure:
//
//   * cells are processed in GP x-order (ordering preserved, as [18]
//     emphasizes);
//   * single-height cells use exact Abacus cluster collapse within a row,
//     bounded below by the rightmost multi-row obstacle in that row;
//   * multi-row cells are seated at the joint frontier of their spanned
//     rows (the first x where every spanned row is free), choosing the
//     rail-correct base row with the cheapest quadratic displacement, and
//     then act as fixed obstacles for later clusters.
//
// The simplification relative to [18] — committed multi-row cells do not
// slide left during later collapses — is documented in DESIGN.md; it keeps
// the method clearly *better than purely local* placement (rows re-optimize
// around obstacles) and clearly *below the global MMSIM optimum*, matching
// the published ranking in Table 2.
#pragma once

#include "db/design.h"

namespace mch::baselines {

struct MixedAbacusStats {
  double seconds = 0.0;
  std::size_t failed_cells = 0;
};

/// Legalizes the design in place. Output is continuous (cluster positions);
/// follow with legal::tetris_allocate for site alignment.
MixedAbacusStats mixed_abacus_legalize(db::Design& design);

}  // namespace mch::baselines
