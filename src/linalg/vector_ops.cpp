#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mch::linalg {

double dot(const Vector& a, const Vector& b) {
  MCH_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  MCH_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vector& a) {
  double best = 0.0;
  for (double v : a) best = std::max(best, std::abs(v));
  return best;
}

double diff_norm_inf(const Vector& a, const Vector& b) {
  MCH_CHECK(a.size() == b.size());
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    best = std::max(best, std::abs(a[i] - b[i]));
  return best;
}

void scale(double alpha, Vector& a) {
  for (double& v : a) v *= alpha;
}

void abs_into(const Vector& a, Vector& out) {
  out.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::abs(a[i]);
}

void positive_part(const Vector& a, Vector& out) {
  out.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], 0.0);
}

}  // namespace mch::linalg
