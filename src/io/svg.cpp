#include "io/svg.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace mch::io {

std::string render_svg(const db::Design& design, const SvgOptions& options) {
  const db::Chip& chip = design.chip();
  const bool windowed = options.window_w > 0.0 && options.window_h > 0.0;
  const double wx = windowed ? options.window_x : 0.0;
  const double wy = windowed ? options.window_y : 0.0;
  const double ww = windowed ? options.window_w : chip.width();
  const double wh = windowed ? options.window_h : chip.height();
  const double s = options.pixels_per_unit;

  // SVG y grows downward; design y grows upward.
  const auto px = [&](double x) { return (x - wx) * s; };
  const auto py = [&](double y) { return (wy + wh - y) * s; };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << ww * s
     << "\" height=\"" << wh * s << "\" viewBox=\"0 0 " << ww * s << ' '
     << wh * s << "\">\n";
  os << "<rect x=\"0\" y=\"0\" width=\"" << ww * s << "\" height=\"" << wh * s
     << "\" fill=\"white\" stroke=\"black\" stroke-width=\"1\"/>\n";

  if (options.draw_rows) {
    for (std::size_t r = 0; r < chip.num_rows; ++r) {
      const double y0 = chip.row_y(r);
      if (y0 + chip.row_height < wy || y0 > wy + wh) continue;
      const char* fill =
          chip.rail_at(r) == db::RailType::kVss ? "#f4f4f4" : "#e8eef8";
      os << "<rect x=\"" << px(std::max(wx, 0.0)) << "\" y=\""
         << py(y0 + chip.row_height) << "\" width=\"" << ww * s
         << "\" height=\"" << chip.row_height * s << "\" fill=\"" << fill
         << "\" stroke=\"#cccccc\" stroke-width=\"0.3\"/>\n";
    }
  }

  // Cells (blue, as in Fig. 5).
  for (const db::Cell& cell : design.cells()) {
    const double h = static_cast<double>(cell.height_rows) * chip.row_height;
    if (cell.x + cell.width < wx || cell.x > wx + ww || cell.y + h < wy ||
        cell.y > wy + wh)
      continue;
    const char* fill = cell.fixed ? "#8a8a8a"
                       : cell.is_multi_row() ? "#1f4e9c"
                                             : "#5b8ed6";
    os << "<rect x=\"" << px(cell.x) << "\" y=\"" << py(cell.y + h)
       << "\" width=\"" << cell.width * s << "\" height=\"" << h * s
       << "\" fill=\"" << fill
       << "\" fill-opacity=\"0.75\" stroke=\"#17355f\" "
          "stroke-width=\"0.3\"/>\n";
  }

  // Displacement segments (red, GP center to placed center).
  if (options.draw_displacement) {
    for (const db::Cell& cell : design.cells()) {
      if (cell.fixed) continue;  // obstacles never move
      const double h =
          static_cast<double>(cell.height_rows) * chip.row_height;
      const double cx0 = cell.gp_x + cell.width / 2;
      const double cy0 = cell.gp_y + h / 2;
      const double cx1 = cell.x + cell.width / 2;
      const double cy1 = cell.y + h / 2;
      const bool visible = !(std::max(cx0, cx1) < wx ||
                             std::min(cx0, cx1) > wx + ww ||
                             std::max(cy0, cy1) < wy ||
                             std::min(cy0, cy1) > wy + wh);
      if (!visible) continue;
      os << "<line x1=\"" << px(cx0) << "\" y1=\"" << py(cy0) << "\" x2=\""
         << px(cx1) << "\" y2=\"" << py(cy1)
         << "\" stroke=\"#d03030\" stroke-width=\"0.5\"/>\n";
    }
  }

  os << "</svg>\n";
  return os.str();
}

void save_svg(const std::string& path, const db::Design& design,
              const SvgOptions& options) {
  std::ofstream file(path);
  MCH_CHECK_MSG(file.is_open(), "cannot open " << path << " for writing");
  file << render_svg(design, options);
  MCH_CHECK_MSG(file.good(), "stream failure writing " << path);
}

}  // namespace mch::io
