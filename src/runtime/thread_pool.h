// Fixed-size worker thread pool executing statically chunked jobs.
//
// The pool is the mechanism under runtime/parallel.h: a job is a count of
// chunks plus a callable invoked once per chunk index. Chunk *assignment* to
// threads is dynamic (threads race on an atomic cursor, so an unlucky
// scheduling cannot stall the job), but nothing a caller can observe depends
// on that assignment: the chunk *layout* is fixed by the caller, every chunk
// writes disjoint state, and reductions are combined in chunk-index order by
// the caller. This is what makes results independent of the thread count.
//
// The submitting thread participates in chunk execution, so a pool created
// for T threads runs jobs on exactly T threads using T-1 workers.
//
// Exceptions thrown by chunk bodies are caught, the first one is remembered,
// the remaining chunks still run (keeping the pool state consistent), and
// the stored exception is rethrown on the submitting thread once the job
// completes. The pool therefore survives throwing tasks and can be reused
// or destroyed cleanly afterwards.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mch::runtime {

class ThreadPool {
 public:
  /// Creates a pool that runs jobs on `thread_count` threads total: the
  /// submitting thread plus `thread_count - 1` workers. Requires >= 1.
  explicit ThreadPool(unsigned thread_count);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs task(c) for every c in [0, chunks), distributed over all threads,
  /// and blocks until every chunk has finished. Must be called from one
  /// top-level thread at a time (parallel.h routes nested calls inline).
  /// Rethrows the first exception thrown by any chunk.
  void run(std::size_t chunks, const std::function<void(std::size_t)>& task);

  /// True while the calling thread is executing a chunk body (on a worker
  /// *or* on the submitting thread helping out). Used to run nested
  /// parallel constructs inline instead of deadlocking on the pool.
  static bool in_task();

 private:
  void worker_main(unsigned worker_id);
  void execute_chunk(const std::function<void(std::size_t)>& task,
                     std::size_t chunk);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;  ///< signals workers: new job or shutdown
  std::condition_variable done_;  ///< signals submitter: last worker left
  bool shutdown_ = false;

  // State of the job in flight, guarded by mutex_ except for the cursor.
  // Workers copy task_/chunk_limit_ under the lock when they join a job
  // (generation_ tells them it is new), then race on next_chunk_. The
  // submitter drains the cursor itself and afterwards waits for
  // active_workers_ == 0: at that point every claimed chunk has finished,
  // so the job is complete and the state can be reused for the next job.
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t chunk_limit_ = 0;
  std::uint64_t generation_ = 0;  ///< bumped per job so workers join once
  std::size_t active_workers_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::exception_ptr first_error_;
};

}  // namespace mch::runtime
