#include "eval/suite_runner.h"

#include <gtest/gtest.h>

namespace mch::eval {
namespace {

db::Design small_suite_design(std::uint64_t seed = 1) {
  gen::GeneratorOptions opts;
  opts.scale = 0.02;
  opts.seed = seed;
  return gen::generate_design(gen::find_spec("fft_2"), opts);
}

class AllLegalizers : public ::testing::TestWithParam<Legalizer> {};

TEST_P(AllLegalizers, RunsLegallyAndFillsMetrics) {
  db::Design design = small_suite_design();
  const RunResult result = run_legalizer(design, GetParam());
  EXPECT_TRUE(result.legal) << to_string(GetParam()) << ": "
                            << result.legality_summary;
  EXPECT_EQ(result.benchmark, "fft_2");
  EXPECT_EQ(result.num_cells, design.num_cells());
  EXPECT_GT(result.gp_hpwl, 0.0);
  EXPECT_GT(result.hpwl, 0.0);
  EXPECT_GT(result.disp.total_sites, 0.0);
  EXPECT_GT(result.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllLegalizers,
    ::testing::Values(Legalizer::kMmsim, Legalizer::kTetris,
                      Legalizer::kLocalBase, Legalizer::kLocalImproved,
                      Legalizer::kMixedAbacus),
    [](const ::testing::TestParamInfo<Legalizer>& info) {
      std::string name = to_string(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(SuiteRunnerTest, MmsimFillsSolverFields) {
  db::Design design = small_suite_design();
  const RunResult result = run_legalizer(design, Legalizer::kMmsim);
  EXPECT_GT(result.solver_iterations, 0u);
  EXPECT_TRUE(result.solver_converged);
}

TEST(SuiteRunnerTest, BaselinesLeaveSolverFieldsEmpty) {
  db::Design design = small_suite_design();
  const RunResult result = run_legalizer(design, Legalizer::kTetris);
  EXPECT_EQ(result.solver_iterations, 0u);
  EXPECT_EQ(result.illegal_after_solver, 0u);
}

TEST(SuiteRunnerTest, ResetsPositionsBetweenRuns) {
  db::Design design = small_suite_design();
  const RunResult a = run_legalizer(design, Legalizer::kMmsim);
  const RunResult b = run_legalizer(design, Legalizer::kMmsim);
  EXPECT_DOUBLE_EQ(a.disp.total_sites, b.disp.total_sites);
  EXPECT_DOUBLE_EQ(a.hpwl, b.hpwl);
}

TEST(SuiteRunnerTest, ToStringCoversAll) {
  EXPECT_STREQ(to_string(Legalizer::kMmsim), "mmsim");
  EXPECT_STREQ(to_string(Legalizer::kTetris), "tetris");
  EXPECT_STREQ(to_string(Legalizer::kLocalBase), "local");
  EXPECT_STREQ(to_string(Legalizer::kLocalImproved), "local-imp");
  EXPECT_STREQ(to_string(Legalizer::kMixedAbacus), "mixed-abacus");
}

TEST(SuiteRunnerTest, DesignCharacteristicsReported) {
  db::Design design = small_suite_design();
  const RunResult result = run_legalizer(design, Legalizer::kTetris);
  EXPECT_EQ(result.num_single + result.num_double, result.num_cells);
  EXPECT_GT(result.density, 0.3);
  EXPECT_LT(result.density, 0.7);
}

}  // namespace
}  // namespace mch::eval
