// Local mixed-cell-height legalizer in the spirit of Chow, Pui & Young
// (DAC'16, reference [7] of the paper).
//
// Their algorithm places each cell at the nearest site-aligned,
// rail-matched position when that position is overlap-free; otherwise it
// picks a nearby local region that can accommodate the cell and legalizes
// within it. The binaries are not public; this reimplementation captures
// the algorithm class — greedy, per-cell, window-limited decisions:
//
//   * kBase ("DAC'16"): direct placement if free, otherwise the nearest
//     free position within a tight row window.
//   * kImproved ("DAC'16-Imp"): larger search window, cells processed in
//     decreasing area so bulky multi-row cells claim space first, and each
//     cell evaluates candidates on both rail parities before committing.
//
// Both remain local per-cell optimizers, so (as Table 2 of the paper shows
// for the originals) they trail the global MMSIM on displacement/ΔHPWL.
#pragma once

#include "db/design.h"

namespace mch::baselines {

enum class LocalVariant { kBase, kImproved };

struct LocalLegalizerStats {
  double seconds = 0.0;
  std::size_t direct_placements = 0;  ///< cells placed at their snap target
  std::size_t window_placements = 0;  ///< cells needing the local search
  std::size_t failed_cells = 0;
};

/// Legalizes the design in place (site-aligned output).
LocalLegalizerStats local_legalize(db::Design& design,
                                   LocalVariant variant = LocalVariant::kBase);

}  // namespace mch::baselines
