#include "io/svg.h"

#include <gtest/gtest.h>

#include <fstream>

#include "gen/generator.h"

namespace mch::io {
namespace {

db::Design sample_design() {
  gen::GeneratorOptions opts;
  opts.seed = 9;
  return gen::generate_random_design(30, 5, 0.4, opts);
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(SvgTest, WellFormedDocument) {
  const std::string svg = render_svg(sample_design());
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("xmlns"), std::string::npos);
}

TEST(SvgTest, OneRectPerCellPlusBackgroundAndRows) {
  const db::Design d = sample_design();
  const std::string svg = render_svg(d);
  // background + rows + cells
  EXPECT_EQ(count_occurrences(svg, "<rect"),
            1 + d.chip().num_rows + d.num_cells());
}

TEST(SvgTest, DisplacementLinesToggle) {
  db::Design d = sample_design();
  // Move every cell so a displacement segment exists.
  for (db::Cell& cell : d.cells()) cell.x += 1.0;
  SvgOptions with;
  with.draw_displacement = true;
  EXPECT_EQ(count_occurrences(render_svg(d, with), "<line"), d.num_cells());
  SvgOptions without;
  without.draw_displacement = false;
  EXPECT_EQ(count_occurrences(render_svg(d, without), "<line"), 0u);
}

TEST(SvgTest, RowShadingToggle) {
  const db::Design d = sample_design();
  SvgOptions no_rows;
  no_rows.draw_rows = false;
  EXPECT_EQ(count_occurrences(render_svg(d, no_rows), "<rect"),
            1 + d.num_cells());
}

TEST(SvgTest, WindowCullsOutsideCells) {
  db::Design d = sample_design();
  SvgOptions window;
  window.draw_displacement = false;
  window.draw_rows = false;
  window.window_x = 0;
  window.window_y = 0;
  window.window_w = 1.0;  // tiny window: most cells culled
  window.window_h = 1.0;
  const std::string svg = render_svg(d, window);
  EXPECT_LT(count_occurrences(svg, "<rect"), 1 + d.num_cells());
}

TEST(SvgTest, MultiRowCellsColoredDifferently) {
  const db::Design d = sample_design();
  const std::string svg = render_svg(d);
  EXPECT_NE(svg.find("#1f4e9c"), std::string::npos);  // multi-row fill
  EXPECT_NE(svg.find("#5b8ed6"), std::string::npos);  // single fill
}

TEST(SvgTest, FixedMacrosGrayAndWithoutDisplacementLines) {
  gen::GeneratorOptions opts;
  opts.seed = 10;
  opts.fixed_macros = 2;
  db::Design d = gen::generate_random_design(20, 3, 0.3, opts);
  for (db::Cell& cell : d.cells())
    if (!cell.fixed) cell.x += 1.0;  // movables get displacement lines
  SvgOptions options;
  options.draw_displacement = true;
  const std::string svg = render_svg(d, options);
  EXPECT_NE(svg.find("#8a8a8a"), std::string::npos);  // macro fill
  // Lines only for the movable cells.
  EXPECT_EQ(count_occurrences(svg, "<line"),
            d.num_cells() - d.num_fixed_cells());
}

TEST(SvgTest, SaveWritesFile) {
  const std::string path = testing::TempDir() + "/mch_svg_test.svg";
  save_svg(path, sample_design());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line.rfind("<svg", 0), 0u);
}

}  // namespace
}  // namespace mch::io
