#include "linalg/sparse.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace mch::linalg {
namespace {

CsrMatrix small_matrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  CooMatrix coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(0, 2, 2.0);
  coo.add(2, 0, 3.0);
  coo.add(2, 1, 4.0);
  return CsrMatrix::from_coo(coo);
}

TEST(SparseTest, FromCooBasicStructure) {
  const CsrMatrix a = small_matrix();
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_EQ(a.nnz(), 4u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(SparseTest, DuplicateEntriesAreSummed) {
  CooMatrix coo(2, 2);
  coo.add(0, 1, 1.5);
  coo.add(0, 1, 2.5);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_EQ(a.nnz(), 1u);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 4.0);
}

TEST(SparseTest, CancellingDuplicatesAreDropped) {
  CooMatrix coo(2, 2);
  coo.add(1, 0, 3.0);
  coo.add(1, 0, -3.0);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_EQ(a.nnz(), 0u);
}

TEST(SparseTest, OutOfRangeCooEntryThrows) {
  CooMatrix coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), CheckError);
  EXPECT_THROW(coo.add(0, 2, 1.0), CheckError);
}

TEST(SparseTest, Multiply) {
  const CsrMatrix a = small_matrix();
  Vector y;
  a.multiply({1, 2, 3}, y);
  EXPECT_EQ(y, (Vector{7, 0, 11}));
}

TEST(SparseTest, MultiplyTranspose) {
  const CsrMatrix a = small_matrix();
  Vector y;
  a.multiply_transpose({1, 2, 3}, y);
  // Aᵀ x = [1*1 + 3*3, 4*3, 2*1] = [10, 12, 2]
  EXPECT_EQ(y, (Vector{10, 12, 2}));
}

TEST(SparseTest, MultiplyAddAccumulates) {
  const CsrMatrix a = small_matrix();
  Vector y = {1, 1, 1};
  a.multiply_add(2.0, {1, 0, 0}, y);
  EXPECT_EQ(y, (Vector{3, 1, 7}));
}

TEST(SparseTest, TransposeExplicit) {
  const CsrMatrix at = small_matrix().transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(at.at(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(at.at(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(at.at(1, 2), 4.0);
}

TEST(SparseTest, Identity) {
  const CsrMatrix eye = CsrMatrix::identity(4);
  Vector y;
  eye.multiply({1, 2, 3, 4}, y);
  EXPECT_EQ(y, (Vector{1, 2, 3, 4}));
  EXPECT_EQ(eye.nnz(), 4u);
}

TEST(SparseTest, EmptyMatrix) {
  const CsrMatrix a(0, 0);
  Vector y;
  a.multiply({}, y);
  EXPECT_TRUE(y.empty());
}

TEST(SparseTest, SizeMismatchThrows) {
  const CsrMatrix a = small_matrix();
  Vector y;
  EXPECT_THROW(a.multiply({1, 2}, y), CheckError);
  EXPECT_THROW(a.multiply_transpose({1, 2}, y), CheckError);
}

// Property check: transpose-multiply agrees with explicit transpose on
// random matrices.
TEST(SparseTest, TransposeMultiplyMatchesExplicitTranspose) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = 1 + static_cast<std::size_t>(rng.uniform_int(0, 20));
    const std::size_t cols = 1 + static_cast<std::size_t>(rng.uniform_int(0, 20));
    CooMatrix coo(rows, cols);
    const int entries = static_cast<int>(rng.uniform_int(0, 60));
    for (int e = 0; e < entries; ++e)
      coo.add(static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(rows) - 1)),
              static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(cols) - 1)),
              rng.uniform(-2.0, 2.0));
    const CsrMatrix a = CsrMatrix::from_coo(coo);
    const CsrMatrix at = a.transpose();

    Vector x(rows);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    Vector via_transpose_mult, via_explicit;
    a.multiply_transpose(x, via_transpose_mult);
    at.multiply(x, via_explicit);
    ASSERT_EQ(via_transpose_mult.size(), via_explicit.size());
    for (std::size_t i = 0; i < via_explicit.size(); ++i)
      EXPECT_NEAR(via_transpose_mult[i], via_explicit[i], 1e-12);
  }
}

}  // namespace
}  // namespace mch::linalg
