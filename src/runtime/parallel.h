// Deterministic data-parallel primitives: parallel_for and parallel_reduce.
//
// Determinism contract
// --------------------
// Results are bitwise-identical for every thread count, including 1. The
// two rules that make this hold:
//
//   1. Static chunking. A range [begin, end) with grain g is split into
//      ceil(n/g) fixed chunks; the layout depends only on (n, g), never on
//      the thread count or on scheduling. The serial path iterates the same
//      chunks in the same layout, so even a reduction's rounding is shared
//      between the serial and parallel paths.
//   2. Ordered combination. parallel_reduce evaluates one partial value per
//      chunk (in whatever order the pool schedules them — each partial only
//      depends on its own chunk) and then folds the partials in ascending
//      chunk order on the calling thread. Floating-point reductions are
//      therefore reproducible run-to-run and across machine loads.
//
// parallel_for bodies must write disjoint state per index (the usual
// element-wise / row-parallel pattern); under that discipline rule 1 makes
// the result trivially thread-count independent.
//
// Nesting: a parallel_for inside a chunk body submits a *nested job* to the
// scheduler — its chunks are pushed as stealable children onto the calling
// worker's deque, so idle workers help instead of the construct silently
// serializing. The chunk layout is the same either way, so results are
// unchanged. With MCH_SCHED_NESTED=0 (or from a single-threaded runtime)
// the legacy inline fallback runs on the calling thread, and the chunks it
// serializes are counted in the `sched.nested_inline` metric.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "runtime/runtime.h"

namespace mch::runtime {

/// Default grain for element-wise kernels: small enough to spread work over
/// many threads on large designs, large enough that per-chunk dispatch cost
/// is negligible next to the arithmetic.
inline constexpr std::size_t kGrainElementwise = 4096;

/// Default grain for row-structured kernels (SpMV rows, matrix blocks),
/// whose per-index cost is a few multiplies rather than one.
inline constexpr std::size_t kGrainRows = 1024;

/// Number of fixed chunks for a range of n items at the given grain.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

/// Invokes fn(chunk_begin, chunk_end) over consecutive subranges of
/// [begin, end), each at most `grain` long. Chunks run concurrently when
/// the global Runtime has more than one thread; fn must write disjoint
/// state per index. Exceptions from fn propagate to the caller.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);

  Runtime& runtime = Runtime::instance();
  Scheduler* sched = runtime.scheduler();
  const bool nested = Scheduler::in_task();
  if (sched == nullptr || chunks == 1 ||
      (nested && !Scheduler::nested_scheduling_enabled())) {
    // Inline fallback. A nested construct that lands here serializes on
    // the calling thread; surface that in the sched.nested_inline metric.
    if (nested && chunks > 1) Scheduler::note_nested_inline(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = lo + grain < end ? lo + grain : end;
      fn(lo, hi);
    }
    return;
  }
  sched->run(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    fn(lo, hi);
  });
}

/// Deterministic reduction: partials[c] = map(chunk_begin, chunk_end) are
/// evaluated (possibly concurrently), then folded left-to-right in chunk
/// order: acc = combine(acc, partials[0]), combine(acc, partials[1]), ...
/// starting from `identity`. Bitwise-identical for every thread count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, Map&& map, Combine&& combine) {
  if (end <= begin) return identity;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(end - begin, grain);
  std::vector<T> partials(chunks, identity);
  parallel_for(begin, end, grain, [&](std::size_t lo, std::size_t hi) {
    // Chunk index recovered from the fixed layout: lo = begin + c * grain.
    partials[(lo - begin) / grain] = map(lo, hi);
  });
  T accumulator = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c)
    accumulator = combine(std::move(accumulator), partials[c]);
  return accumulator;
}

}  // namespace mch::runtime
