#include "db/design.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mch::db {

const char* to_string(RailType t) {
  return t == RailType::kVss ? "VSS" : "VDD";
}

std::size_t Design::add_cell(Cell cell) {
  cell.id = to_index(cells_.size());
  MCH_CHECK_MSG(cell.width > 0.0, "cell width must be positive");
  MCH_CHECK_MSG(cell.height_rows >= 1, "cell height must be >= 1 row");
  MCH_CHECK_MSG(cell.height_rows <= chip_.num_rows,
                "cell taller than the chip");
  cells_.push_back(cell);
  return cell.id;
}

std::size_t Design::add_net(Net net) {
  for (const Pin& pin : net.pins)
    MCH_CHECK_MSG(pin.cell < cells_.size(), "pin references unknown cell");
  if (net_first_.empty()) net_first_.push_back(0);
  check_index_range(net_pins_.size() + net.pins.size(), "netlist pins");
  net_pins_.insert(net_pins_.end(), net.pins.begin(), net.pins.end());
  net_first_.push_back(to_index(net_pins_.size()));
  return net_first_.size() - 2;
}

void Design::move_cell(std::size_t id, double gp_x, double gp_y) {
  MCH_CHECK_MSG(id < cells_.size(), "move_cell: unknown cell " << id);
  Cell& cell = cells_[id];
  MCH_CHECK_MSG(!cell.fixed, "move_cell: cell " << id << " is fixed");
  MCH_CHECK_MSG(!cell.erased, "move_cell: cell " << id << " is erased");
  const double height =
      static_cast<double>(cell.height_rows) * chip_.row_height;
  cell.gp_x = std::clamp(gp_x, 0.0, std::max(0.0, chip_.width() - cell.width));
  cell.gp_y = std::clamp(gp_y, 0.0, std::max(0.0, chip_.height() - height));
}

std::size_t Design::insert_cell(Cell cell) {
  cell.erased = false;
  const std::size_t id = add_cell(cell);
  Cell& placed = cells_[id];
  const double height =
      static_cast<double>(placed.height_rows) * chip_.row_height;
  placed.gp_x = std::clamp(placed.gp_x, 0.0,
                           std::max(0.0, chip_.width() - placed.width));
  placed.gp_y =
      std::clamp(placed.gp_y, 0.0, std::max(0.0, chip_.height() - height));
  // Fixed inserts are new obstacles: their GP position IS the placement,
  // so the outline must arrive row/site aligned; movable inserts get their
  // position from the next legalization anyway.
  placed.x = placed.gp_x;
  placed.y = placed.gp_y;
  return id;
}

void Design::erase_cell(std::size_t id) {
  MCH_CHECK_MSG(id < cells_.size(), "erase_cell: unknown cell " << id);
  MCH_CHECK_MSG(!cells_[id].erased,
                "erase_cell: cell " << id << " already erased");
  cells_[id].erased = true;
  // Compact the pin pool in place, dropping the erased cell's pins and
  // rewriting each net's offset to the surviving prefix.
  if (net_first_.empty()) return;
  std::size_t write = 0;
  std::size_t read = 0;
  for (std::size_t n = 0; n + 1 < net_first_.size(); ++n) {
    const std::size_t end = net_first_[n + 1];
    net_first_[n] = to_index(write);
    for (; read < end; ++read)
      if (net_pins_[read].cell != id) net_pins_[write++] = net_pins_[read];
  }
  net_first_.back() = to_index(write);
  net_pins_.resize(write);
}

std::size_t Design::num_erased_cells() const {
  return static_cast<std::size_t>(std::count_if(
      cells_.begin(), cells_.end(), [](const Cell& c) { return c.erased; }));
}

double Design::total_cell_area() const {
  double area = 0.0;
  for (const Cell& cell : cells_) {
    if (cell.erased) continue;
    area += cell.width * static_cast<double>(cell.height_rows) *
            chip_.row_height;
  }
  return area;
}

double Design::density() const {
  const double chip_area = chip_.width() * chip_.height();
  return chip_area > 0.0 ? total_cell_area() / chip_area : 0.0;
}

std::size_t Design::nearest_row(double y, std::size_t height_rows) const {
  MCH_CHECK(height_rows <= chip_.num_rows);
  const double raw = y / chip_.row_height;
  const auto max_row =
      static_cast<std::ptrdiff_t>(chip_.num_rows - height_rows);
  const auto row = static_cast<std::ptrdiff_t>(std::llround(raw));
  return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(row, 0, max_row));
}

std::size_t Design::nearest_legal_row(const Cell& cell) const {
  const std::size_t base = nearest_row(cell.gp_y, cell.height_rows);
  if (cell.rail_compatible(chip_, base)) return base;

  // Even-height cell on a mismatched rail: the matching rows are every
  // other row, so one of base±1 is compatible; pick the closer (then lower)
  // one that fits vertically.
  const std::size_t max_row = chip_.num_rows - cell.height_rows;
  double best_dist = std::numeric_limits<double>::infinity();
  std::size_t best_row = 0;
  bool found = false;
  for (const std::ptrdiff_t delta : {-1, +1}) {
    const auto candidate = static_cast<std::ptrdiff_t>(base) + delta;
    if (candidate < 0 || candidate > static_cast<std::ptrdiff_t>(max_row))
      continue;
    const auto row = static_cast<std::size_t>(candidate);
    if (!cell.rail_compatible(chip_, row)) continue;
    const double dist = std::abs(chip_.row_y(row) - cell.gp_y);
    if (dist < best_dist) {
      best_dist = dist;
      best_row = row;
      found = true;
    }
  }
  MCH_CHECK_MSG(found, "no rail-compatible row for cell " << cell.id);
  return best_row;
}

double Design::snap_x_to_site(double x, double width) const {
  const double max_x = chip_.width() - width;
  MCH_CHECK_MSG(max_x >= 0.0, "cell wider than the chip");
  const double snapped =
      std::round(x / chip_.site_width) * chip_.site_width;
  return std::clamp(snapped, 0.0, std::floor(max_x / chip_.site_width) *
                                      chip_.site_width);
}

std::size_t Design::count_cells_with_height(std::size_t height_rows) const {
  return static_cast<std::size_t>(
      std::count_if(cells_.begin(), cells_.end(), [&](const Cell& c) {
        return !c.fixed && !c.erased && c.height_rows == height_rows;
      }));
}

std::size_t Design::num_fixed_cells() const {
  return static_cast<std::size_t>(
      std::count_if(cells_.begin(), cells_.end(),
                    [](const Cell& c) { return c.fixed && !c.erased; }));
}

void Design::commit_positions_as_gp() {
  for (Cell& cell : cells_) {
    if (cell.erased) continue;
    cell.gp_x = cell.x;
    cell.gp_y = cell.y;
  }
}

void Design::reset_positions_to_gp() {
  for (Cell& cell : cells_) {
    if (cell.erased) continue;
    cell.x = cell.gp_x;
    cell.y = cell.gp_y;
  }
}

}  // namespace mch::db
