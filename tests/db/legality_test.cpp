#include "db/legality.h"

#include <gtest/gtest.h>

namespace mch::db {
namespace {

Chip test_chip() {
  Chip chip;
  chip.num_rows = 6;
  chip.num_sites = 50;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  return chip;
}

Design legal_design() {
  Design design(test_chip());
  Cell a;
  a.width = 5;
  a.height_rows = 1;
  a.x = 0;
  a.y = 0;
  design.add_cell(a);
  Cell b;
  b.width = 4;
  b.height_rows = 2;
  b.bottom_rail = RailType::kVss;
  b.x = 10;
  b.y = 0;
  design.add_cell(b);
  Cell c;
  c.width = 3;
  c.height_rows = 1;
  c.x = 5;
  c.y = 0;
  design.add_cell(c);
  return design;
}

TEST(LegalityTest, LegalDesignPasses) {
  const LegalityReport report = check_legality(legal_design());
  EXPECT_TRUE(report.legal());
  EXPECT_EQ(report.total_violations, 0u);
  EXPECT_EQ(report.summary(), "legal");
}

TEST(LegalityTest, AbuttingCellsAreLegal) {
  Design design(test_chip());
  Cell a;
  a.width = 5;
  a.x = 0;
  a.y = 0;
  design.add_cell(a);
  Cell b;
  b.width = 5;
  b.x = 5;  // touches a exactly
  b.y = 0;
  design.add_cell(b);
  EXPECT_TRUE(check_legality(design).legal());
}

TEST(LegalityTest, DetectsOverlap) {
  Design design = legal_design();
  design.cells()[2].x = 3.0;  // overlaps cell 0 ([0,5) vs [3,6))
  const LegalityReport report = check_legality(design);
  EXPECT_FALSE(report.legal());
  EXPECT_EQ(report.overlaps, 1u);
  EXPECT_NEAR(report.max_overlap_depth, 2.0, 1e-12);
}

TEST(LegalityTest, DetectsMultiRowOverlap) {
  Design design = legal_design();
  // Cell on row 1 horizontally inside the double-height cell 1's span.
  Cell c;
  c.width = 2;
  c.height_rows = 1;
  c.x = 11;
  c.y = 10;
  design.add_cell(c);
  const LegalityReport report = check_legality(design);
  EXPECT_FALSE(report.legal());
  EXPECT_EQ(report.overlaps, 1u);
}

TEST(LegalityTest, MultiRowPairCountedOnce) {
  Design design(test_chip());
  Cell a;
  a.width = 5;
  a.height_rows = 2;
  a.bottom_rail = RailType::kVss;
  a.x = 0;
  a.y = 0;
  design.add_cell(a);
  Cell b = a;  // same span: overlap in both rows, one pair
  b.x = 2;
  design.add_cell(b);
  const LegalityReport report = check_legality(design);
  EXPECT_EQ(report.overlaps, 1u);
}

TEST(LegalityTest, DetectsOutsideChip) {
  Design design = legal_design();
  design.cells()[0].x = 47.0;  // width 5 → extends to 52 > 50
  const LegalityReport report = check_legality(design);
  EXPECT_FALSE(report.legal());
  EXPECT_EQ(report.outside_chip, 1u);
}

TEST(LegalityTest, DetectsNegativeX) {
  Design design = legal_design();
  design.cells()[0].x = -1.0;
  EXPECT_GE(check_legality(design).outside_chip, 1u);
}

TEST(LegalityTest, DetectsOffSite) {
  Design design = legal_design();
  design.cells()[0].x = 0.5;
  const LegalityReport report = check_legality(design);
  EXPECT_FALSE(report.legal());
  EXPECT_EQ(report.off_site, 1u);
}

TEST(LegalityTest, OffSiteToleratedWhenDisabled) {
  Design design = legal_design();
  design.cells()[1].x = 20.5;  // off-site but clear of every other cell
  LegalityOptions options;
  options.require_site_alignment = false;
  EXPECT_TRUE(check_legality(design, options).legal());
  options.require_site_alignment = true;
  EXPECT_FALSE(check_legality(design, options).legal());
}

TEST(LegalityTest, DetectsOffRow) {
  Design design = legal_design();
  design.cells()[0].y = 3.0;
  const LegalityReport report = check_legality(design);
  EXPECT_FALSE(report.legal());
  EXPECT_EQ(report.off_row, 1u);
}

TEST(LegalityTest, DetectsRailMismatch) {
  Design design = legal_design();
  design.cells()[1].y = 10.0;  // VSS-bottom double cell on VDD row 1
  const LegalityReport report = check_legality(design);
  EXPECT_FALSE(report.legal());
  EXPECT_EQ(report.rail_mismatches, 1u);
}

TEST(LegalityTest, OddHeightNeverRailMismatches) {
  Design design = legal_design();
  design.cells()[0].y = 10.0;  // single-height on any row is fine
  design.cells()[0].bottom_rail = RailType::kVdd;
  EXPECT_TRUE(check_legality(design).legal());
}

TEST(LegalityTest, ViolationRecordingCapped) {
  Design design(test_chip());
  for (int i = 0; i < 10; ++i) {
    Cell c;
    c.width = 5;
    c.x = 0;  // all stacked: many overlapping pairs
    c.y = 0;
    design.add_cell(c);
  }
  LegalityOptions options;
  options.max_recorded = 3;
  const LegalityReport report = check_legality(design, options);
  EXPECT_EQ(report.violations.size(), 3u);
  EXPECT_GT(report.total_violations, 3u);
  EXPECT_EQ(report.overlaps, 45u);  // C(10,2)
}

TEST(LegalityTest, SummaryMentionsCounts) {
  Design design = legal_design();
  design.cells()[0].x = 0.5;
  const std::string summary = check_legality(design).summary();
  EXPECT_NE(summary.find("off-site=1"), std::string::npos);
}

TEST(LegalityTest, ToleranceForgivesRounding) {
  Design design = legal_design();
  design.cells()[0].x = 1e-9;
  EXPECT_TRUE(check_legality(design).legal());
}

// Regression: num_rows − height_rows is an unsigned difference that wraps
// for a cell taller than the chip, which made on_row spuriously true and
// hid the off-row violation. (add_cell rejects such cells at insert time,
// but designs mutated after loading can still carry them.)
TEST(LegalityTest, CellTallerThanChipIsOffRow) {
  Design design(test_chip());
  Cell a;
  a.width = 5;
  a.height_rows = 1;
  a.x = 0;
  a.y = 0;  // row-aligned, so only the vertical fit can reject it
  design.add_cell(a);
  design.cells()[0].height_rows = 7;  // chip has 6 rows
  const LegalityReport report = check_legality(design);
  EXPECT_FALSE(report.legal());
  EXPECT_GE(report.off_row, 1u);
  EXPECT_GE(report.outside_chip, 1u);
}

// Regression: off-row cells were never inserted into the row occupancy
// lists, so an off-row cell sitting on top of legal cells reported zero
// overlaps.
TEST(LegalityTest, OffRowCellStillReportsOverlaps) {
  Design design = legal_design();
  Cell c;
  c.width = 5;
  c.height_rows = 1;
  c.x = 0;  // directly on top of cell 0 ([0,5) in row 0)
  c.y = 3;  // off-row: outline touches rows 0 and 1
  design.add_cell(c);
  const LegalityReport report = check_legality(design);
  EXPECT_EQ(report.off_row, 1u);
  EXPECT_EQ(report.overlaps, 1u) << report.summary();
}

TEST(LegalityTest, OffRowOverlapPairCountedOnce) {
  Design design = legal_design();
  Cell c;
  c.width = 4;
  c.height_rows = 1;
  c.x = 10;  // over the double-height cell 1 ([10,14) in rows 0–1)
  c.y = 5;   // off-row: touches rows 0 and 1 — still one pair
  design.add_cell(c);
  const LegalityReport report = check_legality(design);
  EXPECT_EQ(report.overlaps, 1u) << report.summary();
}

// Regression: overlap depth was measured to the left cell's far edge, so a
// narrow cell contained inside a wide one over-reported the overlap.
TEST(LegalityTest, ContainedCellDepthClampedToItsWidth) {
  Design design(test_chip());
  Cell wide;
  wide.width = 10;
  wide.x = 0;
  wide.y = 0;
  design.add_cell(wide);
  Cell narrow;
  narrow.width = 2;
  narrow.x = 4;  // fully inside [0,10)
  narrow.y = 0;
  design.add_cell(narrow);
  const LegalityReport report = check_legality(design);
  EXPECT_EQ(report.overlaps, 1u);
  EXPECT_NEAR(report.max_overlap_depth, 2.0, 1e-12);
}

// Regression: pair dedup was a linear scan over a growing vector —
// quadratic in the violation count. A fully stacked row produces C(n,2)
// pairs and must still complete promptly.
TEST(LegalityTest, ViolationHeavyDesignCompletes) {
  Chip chip = test_chip();
  chip.num_sites = 1000;
  Design design(chip);
  const std::size_t n = 400;
  for (std::size_t i = 0; i < n; ++i) {
    Cell c;
    c.width = 5;
    c.x = 0;
    c.y = 0;
    design.add_cell(c);
  }
  const LegalityReport report = check_legality(design);
  EXPECT_EQ(report.overlaps, n * (n - 1) / 2);
}

}  // namespace
}  // namespace mch::db
