#include "dp/detailed.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "eval/metrics.h"
#include "legal/occupancy.h"
#include "util/check.h"
#include "util/timer.h"

namespace mch::dp {

namespace {

using legal::OccupancyGrid;
using legal::SiteIndex;

/// Cell → incident nets index plus incremental HPWL over a subset of nets.
class NetIndex {
 public:
  explicit NetIndex(const db::Design& design) : design_(design) {
    cell_nets_.resize(design.num_cells());
    for (std::size_t n = 0; n < design.num_nets(); ++n)
      for (const db::Pin& pin : design.nets()[n].pins)
        cell_nets_[pin.cell].push_back(n);
    for (auto& nets : cell_nets_) {
      std::sort(nets.begin(), nets.end());
      nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
    }
  }

  const std::vector<std::size_t>& nets_of(std::size_t cell) const {
    return cell_nets_[cell];
  }

  /// HPWL of one net at current positions.
  double net_hpwl(std::size_t net_id) const {
    const db::NetView net = design_.nets()[net_id];
    if (net.pins.size() < 2) return 0.0;
    double min_x = std::numeric_limits<double>::infinity();
    double max_x = -min_x, min_y = min_x, max_y = -min_x;
    for (const db::Pin& pin : net.pins) {
      const db::Cell& cell = design_.cells()[pin.cell];
      min_x = std::min(min_x, cell.x + pin.dx);
      max_x = std::max(max_x, cell.x + pin.dx);
      min_y = std::min(min_y, cell.y + pin.dy);
      max_y = std::max(max_y, cell.y + pin.dy);
    }
    return (max_x - min_x) + (max_y - min_y);
  }

  /// Sum of net HPWLs over the union of nets incident to `cells`.
  double local_hpwl(const std::vector<std::size_t>& cells) const {
    scratch_.clear();
    for (const std::size_t c : cells)
      scratch_.insert(scratch_.end(), cell_nets_[c].begin(),
                      cell_nets_[c].end());
    std::sort(scratch_.begin(), scratch_.end());
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    double total = 0.0;
    for (const std::size_t n : scratch_) total += net_hpwl(n);
    return total;
  }

 private:
  const db::Design& design_;
  std::vector<std::vector<std::size_t>> cell_nets_;
  mutable std::vector<std::size_t> scratch_;
};

/// Row bucketing of single-height movable cells (sorted by x).
std::vector<std::vector<std::size_t>> build_rows(const db::Design& design) {
  std::vector<std::vector<std::size_t>> rows(design.chip().num_rows);
  for (std::size_t c = 0; c < design.num_cells(); ++c) {
    const db::Cell& cell = design.cells()[c];
    if (cell.fixed || cell.height_rows != 1) continue;
    const auto row = static_cast<std::size_t>(
        std::llround(cell.y / design.chip().row_height));
    rows[row].push_back(c);
  }
  for (auto& row : rows)
    std::sort(row.begin(), row.end(), [&](std::size_t a, std::size_t b) {
      return design.cells()[a].x < design.cells()[b].x;
    });
  return rows;
}

/// Sliding-window exhaustive reorder within a row. The window cells are
/// re-packed left-to-right from the window's left edge; a window is only
/// eligible when that span is free of every non-window cell (multi-row
/// cells or macros may stand between two singles of the same row).
std::size_t reorder_pass(db::Design& design, const NetIndex& nets,
                         std::size_t window) {
  std::size_t moves = 0;
  const db::Chip& chip = design.chip();
  const auto rows = build_rows(design);

  OccupancyGrid grid(chip);
  for (const db::Cell& cell : design.cells()) {
    if (cell.fixed)
      grid.occupy_outline(cell);
    else
      grid.occupy_cell(cell);
  }

  std::vector<std::size_t> perm(window), best_perm(window);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() < window) continue;
    for (std::size_t start = 0; start + window <= row.size(); ++start) {
      const std::vector<std::size_t> cells(
          row.begin() + static_cast<std::ptrdiff_t>(start),
          row.begin() + static_cast<std::ptrdiff_t>(start + window));
      const double left_edge = design.cells()[cells.front()].x;
      const auto left_site = static_cast<SiteIndex>(
          std::llround(left_edge / chip.site_width));
      SiteIndex total_w = 0;
      for (const std::size_t c : cells)
        total_w += grid.width_sites(design.cells()[c]);

      std::vector<double> original_x;
      for (const std::size_t c : cells)
        original_x.push_back(design.cells()[c].x);

      // Lift the window out; the packed span must be free of everyone else.
      for (std::size_t k = 0; k < window; ++k)
        grid.release(r, 1,
                     static_cast<SiteIndex>(
                         std::llround(original_x[k] / chip.site_width)),
                     grid.width_sites(design.cells()[cells[k]]));
      const bool eligible = grid.is_free(r, 1, left_site, total_w);

      bool improved = false;
      if (eligible) {
        const double base_cost = nets.local_hpwl(cells);
        double best_cost = base_cost;
        std::iota(perm.begin(), perm.end(), std::size_t{0});
        std::iota(best_perm.begin(), best_perm.end(), std::size_t{0});

        const auto apply = [&](const std::vector<std::size_t>& p) {
          double x = left_edge;
          for (const std::size_t k : p) {
            design.cells()[cells[k]].x = x;
            x += design.cells()[cells[k]].width;
          }
        };

        while (std::next_permutation(perm.begin(), perm.end())) {
          apply(perm);
          const double cost = nets.local_hpwl(cells);
          if (cost < best_cost - 1e-9) {
            best_cost = cost;
            best_perm = perm;
            improved = true;
          }
        }
        if (improved) {
          apply(best_perm);
          ++moves;
        }
      }
      if (!improved) {
        for (std::size_t k = 0; k < window; ++k)
          design.cells()[cells[k]].x = original_x[k];
      }
      for (std::size_t k = 0; k < window; ++k)
        grid.occupy_cell(design.cells()[cells[k]]);
    }
  }
  return moves;
}

/// Equal-footprint vertical swaps between nearby rows.
std::size_t swap_pass(db::Design& design, const NetIndex& nets,
                      std::size_t row_radius) {
  std::size_t moves = 0;
  const db::Chip& chip = design.chip();
  const auto rows = build_rows(design);

  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (const std::size_t a : rows[r]) {
      db::Cell& ca = design.cells()[a];
      for (std::size_t dr = 1; dr <= row_radius; ++dr) {
        if (r + dr >= rows.size()) break;
        const auto& other = rows[r + dr];
        // Partner with the same width whose x-span is closest.
        for (const std::size_t b : other) {
          db::Cell& cb = design.cells()[b];
          if (cb.width != ca.width) continue;
          if (std::abs(cb.x - ca.x) > 8.0 * chip.row_height) continue;
          const double before = nets.local_hpwl({a, b});
          std::swap(ca.x, cb.x);
          std::swap(ca.y, cb.y);
          const double after = nets.local_hpwl({a, b});
          if (after < before - 1e-9) {
            ++moves;
            break;  // ca moved rows; restart its partner search
          }
          std::swap(ca.x, cb.x);
          std::swap(ca.y, cb.y);
        }
      }
    }
  }
  return moves;
}

/// Optimal independent shift: per cell, the 1-D HPWL-optimal x is the
/// median of its incident nets' preferred-interval endpoints; clamp into
/// the free gap around the cell and snap to sites.
std::size_t shift_pass(db::Design& design, const NetIndex& nets) {
  std::size_t moves = 0;
  const db::Chip& chip = design.chip();

  OccupancyGrid grid(chip);
  for (const db::Cell& cell : design.cells()) {
    if (cell.fixed)
      grid.occupy_outline(cell);
    else
      grid.occupy_cell(cell);
  }

  std::vector<double> endpoints;
  for (std::size_t c = 0; c < design.num_cells(); ++c) {
    db::Cell& cell = design.cells()[c];
    if (cell.fixed || nets.nets_of(c).empty()) continue;

    endpoints.clear();
    for (const std::size_t n : nets.nets_of(c)) {
      const db::NetView net = design.nets()[n];
      if (net.pins.size() < 2) continue;
      // Bounding interval of the net's *other* pins, and this cell's pin
      // offsets on the net.
      double other_min = std::numeric_limits<double>::infinity();
      double other_max = -other_min;
      double own_min_dx = std::numeric_limits<double>::infinity();
      double own_max_dx = -own_min_dx;
      for (const db::Pin& pin : net.pins) {
        if (pin.cell == c) {
          own_min_dx = std::min(own_min_dx, static_cast<double>(pin.dx));
          own_max_dx = std::max(own_max_dx, static_cast<double>(pin.dx));
        } else {
          const db::Cell& other = design.cells()[pin.cell];
          other_min = std::min(other_min, other.x + pin.dx);
          other_max = std::max(other_max, other.x + pin.dx);
        }
      }
      if (!std::isfinite(other_min)) continue;  // net entirely on this cell
      // The cell's x is HPWL-neutral inside [other_min − own_min_dx,
      // other_max − own_max_dx]; collect the interval ends.
      endpoints.push_back(other_min - own_min_dx);
      endpoints.push_back(other_max - own_max_dx);
    }
    if (endpoints.empty()) continue;
    std::sort(endpoints.begin(), endpoints.end());
    const double target =
        (endpoints[endpoints.size() / 2] +
         endpoints[(endpoints.size() - 1) / 2]) /
        2.0;

    // Free gap around the cell across its rows.
    const auto base = static_cast<std::size_t>(
        std::llround(cell.y / chip.row_height));
    const auto site = static_cast<SiteIndex>(
        std::llround(cell.x / chip.site_width));
    const SiteIndex w = grid.width_sites(cell);
    grid.release(base, cell.height_rows, site, w);
    const auto snapped = static_cast<SiteIndex>(std::llround(
        std::clamp(target, 0.0, chip.width() - cell.width) /
        chip.site_width));
    // Search the nearest feasible site to the target within this row span.
    const legal::PlacementCandidate cand = grid.find_in_rows(
        base, cell.height_rows, w,
        static_cast<double>(snapped) * chip.site_width);
    SiteIndex best = site;
    if (cand.found) best = cand.site;
    if (best != site) {
      const double before = nets.local_hpwl({c});
      const double old_x = cell.x;
      cell.x = static_cast<double>(best) * chip.site_width;
      const double after = nets.local_hpwl({c});
      if (after < before - 1e-9) {
        ++moves;
      } else {
        cell.x = old_x;
        best = site;
      }
    }
    grid.occupy(base, cell.height_rows, best, w);
  }
  return moves;
}

}  // namespace

DetailedPlacementStats refine(db::Design& design,
                              const DetailedPlacementOptions& options) {
  Timer timer;
  DetailedPlacementStats stats;
  stats.hpwl_before = eval::hpwl(design);

  const NetIndex nets(design);
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    std::size_t moves = 0;
    if (options.enable_reorder && options.window >= 2) {
      const std::size_t n = reorder_pass(design, nets, options.window);
      stats.reorder_moves += n;
      moves += n;
    }
    if (options.enable_vertical_swaps) {
      const std::size_t n =
          swap_pass(design, nets, options.swap_row_radius);
      stats.swap_moves += n;
      moves += n;
    }
    if (options.enable_shift) {
      const std::size_t n = shift_pass(design, nets);
      stats.shift_moves += n;
      moves += n;
    }
    stats.passes = pass + 1;
    if (moves == 0) break;
  }

  stats.hpwl_after = eval::hpwl(design);
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace mch::dp
