// Renders legalization results as SVG layouts (the Figure-5 visual):
// generates a benchmark, legalizes it with the MMSIM flow, and writes the
// before/after/zoom plots.
//
//   ./plot_layout [benchmark-name] [scale] [output-prefix]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/metrics.h"
#include "gen/generator.h"
#include "io/svg.h"
#include "legal/flow.h"

int main(int argc, char** argv) {
  using namespace mch;
  const std::string name = argc > 1 ? argv[1] : "fft_2";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;
  const std::string prefix = argc > 3 ? argv[3] : name;

  gen::GeneratorOptions options;
  options.scale = scale;
  db::Design design = gen::generate_design(gen::find_spec(name), options);

  // GP snapshot (cells at their global-placement positions, no red lines —
  // nothing has moved yet).
  io::SvgOptions style;
  style.pixels_per_unit = 1200.0 / design.chip().width();
  style.draw_displacement = false;
  io::save_svg(prefix + "_gp.svg", design, style);

  const legal::FlowResult flow = legal::legalize(design);
  std::printf("%s: %zu cells, legal: %s, displacement %.1f sites\n",
              name.c_str(), design.num_cells(), flow.legal ? "yes" : "no",
              eval::displacement(design).total_sites);

  // Fig. 5(a)-style: legalized layout with displacement segments.
  style.draw_displacement = true;
  io::save_svg(prefix + "_legal.svg", design, style);

  // Fig. 5(b)-style: zoom into the chip center.
  io::SvgOptions zoom = style;
  zoom.window_w = design.chip().width() / 10.0;
  zoom.window_h = design.chip().height() / 10.0;
  zoom.window_x = (design.chip().width() - zoom.window_w) / 2.0;
  zoom.window_y = (design.chip().height() - zoom.window_h) / 2.0;
  zoom.pixels_per_unit = 1200.0 / zoom.window_w;
  io::save_svg(prefix + "_zoom.svg", design, zoom);

  std::printf("wrote %s_gp.svg, %s_legal.svg, %s_zoom.svg\n", prefix.c_str(),
              prefix.c_str(), prefix.c_str());
  return flow.legal ? 0 : 1;
}
