// Shared configuration for the experiment harness binaries.
//
// Every table/figure bench regenerates its paper artifact on the synthetic
// suite. The suite scale is configurable so the whole harness runs in
// minutes by default yet can be pushed to the paper's full benchmark sizes:
//
//   MCH_BENCH_SCALE   fraction of each benchmark's published cell count
//                     (default 0.05; 1.0 = full scale, superblue12 ≈ 1.29M
//                     cells)
//   MCH_BENCH_SEED    generator seed (default 1)
//
// Thread count is shared with the rest of the harness: every bench accepts
// --threads N (and the MCH_THREADS environment variable) via
// bench_threads(), which forwards to runtime/options.h so examples, tools
// and benches all parse the knob identically.
//
// Experiment shapes (who wins, by what factor, where the crossovers are)
// are scale-invariant; see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/generator.h"
#include "runtime/options.h"
#include "util/rss.h"

namespace mch::bench {

/// The CMake build type the bench binary was compiled under (stamped by
/// bench/CMakeLists.txt). results/*.txt snapshots must say "Release" — the
/// bench build refuses to configure as Debug for exactly this reason.
inline const char* bench_build_type() {
#ifdef MCH_BUILD_TYPE
  return MCH_BUILD_TYPE;
#else
  return "unknown";
#endif
}

/// Prints the provenance header every bench emits at the top of its output
/// (and thus into its results/*.txt snapshot): build type, scale, seed.
inline void print_bench_banner(const char* name) {
  std::printf("# %s — build: %s, MCH_BENCH_SCALE=%s, MCH_BENCH_SEED=%s\n",
              name, bench_build_type(),
              std::getenv("MCH_BENCH_SCALE") ? std::getenv("MCH_BENCH_SCALE")
                                             : "(default)",
              std::getenv("MCH_BENCH_SEED") ? std::getenv("MCH_BENCH_SEED")
                                            : "(default)");
}

/// Configures the global Runtime from --threads/MCH_THREADS and returns the
/// resolved thread count. Call first thing in main(). Also stamps the
/// build-type provenance line into the output (every results/*.txt snapshot
/// starts with it).
inline unsigned bench_threads(int argc, char* const* argv) {
  const unsigned threads = runtime::configure_threads_from_cli(argc, argv);
  std::printf("# build: %s, threads: %u\n", bench_build_type(), threads);
  return threads;
}

/// Prints the process peak-RSS line every bench emits last (and thus into
/// the tail of its results/*.txt snapshot). getrusage's high-water mark is
/// process-monotone, so this covers the biggest design the bench touched.
inline void print_peak_rss() {
  std::printf("# peak RSS: %.1f MB\n", util::peak_rss_mb());
}

inline double bench_scale() {
  if (const char* env = std::getenv("MCH_BENCH_SCALE")) {
    const double value = std::atof(env);
    if (value > 0.0 && value <= 1.0) return value;
  }
  return 0.05;
}

inline std::uint64_t bench_seed() {
  if (const char* env = std::getenv("MCH_BENCH_SEED")) {
    const long long value = std::atoll(env);
    if (value > 0) return static_cast<std::uint64_t>(value);
  }
  return 1;
}

inline gen::GeneratorOptions bench_options() {
  gen::GeneratorOptions options;
  options.scale = bench_scale();
  options.seed = bench_seed();
  return options;
}

}  // namespace mch::bench
