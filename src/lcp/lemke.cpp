#include "lcp/lemke.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.h"

namespace mch::lcp {

namespace {
constexpr double kPivotEps = 1e-11;
}

LemkeResult solve_lemke(const DenseLcp& problem, std::size_t max_pivots) {
  const std::size_t n = problem.size();
  LemkeResult result;
  result.z.assign(n, 0.0);

  // Trivial case: q >= 0 means z = 0 is complementary.
  if (std::all_of(problem.q.begin(), problem.q.end(),
                  [](double v) { return v >= 0.0; })) {
    result.status = LemkeStatus::kSolved;
    return result;
  }

  // Tableau encodes  I·w − A·z − 1·z0 = q  with columns
  //   [0, n)      : w variables
  //   [n, 2n)     : z variables
  //   2n          : artificial z0
  //   2n + 1      : RHS
  // basis[row] = column index of the basic variable in that row.
  const std::size_t cols = 2 * n + 2;
  const std::size_t kZ0 = 2 * n;
  const std::size_t kRhs = 2 * n + 1;
  std::vector<std::vector<double>> tab(n, std::vector<double>(cols, 0.0));
  std::vector<std::size_t> basis(n);
  for (std::size_t i = 0; i < n; ++i) {
    tab[i][i] = 1.0;
    for (std::size_t j = 0; j < n; ++j) tab[i][n + j] = -problem.A(i, j);
    tab[i][kZ0] = -1.0;
    tab[i][kRhs] = problem.q[i];
    basis[i] = i;  // w_i basic
  }

  const auto pivot = [&](std::size_t row, std::size_t col) {
    const double pivot_value = tab[row][col];
    MCH_CHECK(std::abs(pivot_value) > kPivotEps);
    const double inv = 1.0 / pivot_value;
    for (double& v : tab[row]) v *= inv;
    for (std::size_t r = 0; r < n; ++r) {
      if (r == row) continue;
      const double factor = tab[r][col];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols; ++c)
        tab[r][c] -= factor * tab[row][c];
    }
    basis[row] = col;
  };

  // Initial pivot: bring z0 in at the row of the most negative q.
  std::size_t row = 0;
  for (std::size_t i = 1; i < n; ++i)
    if (tab[i][kRhs] < tab[row][kRhs]) row = i;
  std::size_t leaving = basis[row];
  pivot(row, kZ0);

  for (std::size_t iter = 0; iter < max_pivots; ++iter) {
    ++result.pivots;
    // Driving variable: complement of the one that just left.
    const std::size_t driving = leaving < n ? leaving + n : leaving - n;

    // Minimum-ratio test over rows with positive driving-column entries.
    std::size_t best_row = n;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < n; ++r) {
      const double coef = tab[r][driving];
      if (coef <= kPivotEps) continue;
      const double ratio = tab[r][kRhs] / coef;
      // Prefer the z0 row at (near-)ties so z0 can leave and terminate.
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && basis[r] == kZ0)) {
        best_ratio = ratio;
        best_row = r;
      }
    }
    if (best_row == n) {
      result.status = LemkeStatus::kRayTermination;
      return result;
    }

    leaving = basis[best_row];
    pivot(best_row, driving);

    if (leaving == kZ0) {
      // z0 left the basis: current basic solution is complementary.
      for (std::size_t r = 0; r < n; ++r)
        if (basis[r] >= n && basis[r] < 2 * n)
          result.z[basis[r] - n] = std::max(0.0, tab[r][kRhs]);
      result.status = LemkeStatus::kSolved;
      return result;
    }
  }
  result.status = LemkeStatus::kMaxIterations;
  return result;
}

}  // namespace mch::lcp
