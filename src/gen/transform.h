// The paper's benchmark modification, as a reusable transformation.
//
// §5: "10% of the cells were randomly selected to double their heights and
// half their widths to form mixed-cell-height standard-cell benchmarks.
// This modification maintains the total cell area." Applying this to a
// single-height design (e.g. an original ISPD-2015 Bookshelf load) yields
// an instance with exactly the structure the paper evaluates on.
#pragma once

#include <cstdint>

#include "db/design.h"

namespace mch::gen {

struct MixedHeightTransformStats {
  std::size_t converted_cells = 0;
  double area_before = 0.0;
  double area_after = 0.0;
};

/// Randomly converts `fraction` of the movable single-height cells to
/// double height with halved width (rounded up to a whole site so the cell
/// stays placeable). The doubled cell's bottom-rail type is taken from its
/// nearest rail-legal row, keeping the GP feasible. Deterministic for a
/// given seed. Fixed cells and cells taller than one row are left alone.
MixedHeightTransformStats make_mixed_height(db::Design& design,
                                            double fraction,
                                            std::uint64_t seed = 1);

}  // namespace mch::gen
