#include "lcp/lcp.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mch::lcp {

double LcpResidual::max() const {
  return std::max({z_negativity, w_negativity, complementarity});
}

LcpResidual residual(const DenseLcp& problem, const Vector& z) {
  MCH_CHECK(z.size() == problem.size());
  Vector w;
  problem.A.multiply(z, w);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] += problem.q[i];

  LcpResidual res;
  for (std::size_t i = 0; i < z.size(); ++i) {
    res.z_negativity = std::max(res.z_negativity, -z[i]);
    res.w_negativity = std::max(res.w_negativity, -w[i]);
    res.complementarity =
        std::max(res.complementarity, std::abs(z[i] * w[i]));
  }
  return res;
}

}  // namespace mch::lcp
