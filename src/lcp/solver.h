// Pluggable per-component LCP solver layer.
//
// The legalization constraint graph decomposes into independent connected
// components (see legal/partition.h), and the best solver differs by
// component size: a handful of variables is solved exactly by Lemke
// pivoting in microseconds, a constraint-free component (a cell alone
// between two obstacles) is a bound-constrained QP that PSOR handles
// directly, and everything else runs the paper's MMSIM. This header gives
// the three solvers one interface behind a factory so the legalizer's
// SolverPolicy can pick per component.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "lcp/lemke.h"
#include "lcp/mmsim.h"
#include "lcp/psor.h"
#include "lcp/qp.h"
#include "lcp/workspace.h"

namespace mch::lcp {

enum class LcpSolverKind {
  kMmsim,  ///< structured modulus splitting — the production path
  kPsor,   ///< projected SOR on the bound-constrained QP (m = 0 only)
  kLemke,  ///< dense complementary pivoting — exact, small systems only
};

const char* to_string(LcpSolverKind kind);

struct LcpSolveResult {
  Vector x;     ///< primal variables (cell/subcell positions)
  Vector dual;  ///< multipliers of the spacing rows (empty for PSOR)
  /// MMSIM/PSOR iterations, or Lemke pivots.
  std::size_t iterations = 0;
  /// Iterations the float32 MMSIM prelude contributed (counted inside
  /// `iterations`; 0 for full-double solves and for PSOR/Lemke).
  std::size_t mixed_iterations = 0;
  bool converged = false;
  /// True when the solve started from a matching warm-start payload in its
  /// workspace slot (MMSIM's s, PSOR's z). Always false for cold solves and
  /// for Lemke; session/ECO callers aggregate this into a hit rate.
  bool warm_started = false;
  double setup_seconds = 0.0;
  double solve_seconds = 0.0;
  /// MMSIM per-phase timing (zero for PSOR/Lemke and for tiny systems —
  /// see MmsimPhaseTimes).
  MmsimPhaseTimes phase;
};

struct LcpSolverConfig {
  MmsimOptions mmsim;
  PsorOptions psor;
  std::size_t lemke_max_pivots = 20000;
  /// For MMSIM on a sub-problem extracted from a larger system: rows whose
  /// tridiagonal Schur coupling to the preceding row must be dropped
  /// because the rows were not adjacent in the parent ordering (keeps the
  /// sub-solve iterating exactly as the parent would). Not owned; must
  /// outlive the solver. nullptr = no breaks.
  const std::vector<bool>* schur_coupling_breaks = nullptr;
};

/// Uniform interface over the LCP solvers. Instances are bound to one QP
/// (setup happens at construction); the QP must outlive the solver.
class LcpSolver {
 public:
  virtual ~LcpSolver() = default;
  virtual LcpSolverKind kind() const = 0;
  /// Solves the QP's KKT LCP from the zero start.
  virtual LcpSolveResult solve() const = 0;
  /// Workspace-backed solve: iterates in the slot's buffers (no per-solve
  /// allocation once the slot has seen the shape) and stores the final
  /// iterate back as the slot's warm-start payload. When `warm_start` is
  /// true and the slot holds a payload of matching shape, iteration starts
  /// from it — same fixed point, fewer iterations; when false the solve is
  /// bitwise identical to solve(). A null slot forwards to solve(); the
  /// base implementation (Lemke) ignores the slot entirely.
  virtual LcpSolveResult solve(SolverWorkspace::Slot* slot,
                               bool warm_start) const;
};

/// Builds the requested solver for the QP. Throws CheckError when the kind
/// cannot handle the QP's structure (PSOR with m > 0: the saddle KKT matrix
/// has zero diagonal entries, see lcp/psor.h).
std::unique_ptr<LcpSolver> make_lcp_solver(LcpSolverKind kind,
                                           const StructuredQp& qp,
                                           const LcpSolverConfig& config = {});

// ---------------------------------------------------------------------------
// Non-convergence escalation ladder.
//
// A failed solve must never be shipped silently: solve_with_recovery walks
// a fixed ladder of retries until one converges or the ladder is exhausted,
// in which case the caller degrades explicitly (the legalizer clamps the
// component to its row-assigned snap positions and records a SolveFailure).
// The ladder only runs after a failure, so converged solves are untouched —
// their results stay bitwise identical to a recovery-free build.

/// Which ladder rung produced the accepted result.
enum class RecoveryRung {
  kPrimary,    ///< the requested solver converged on the first attempt
  kEscalated,  ///< retry with escalated parameters (θ re-probe, relaxed γ,
               ///< multiplied iteration budget)
  kReference,  ///< the retained stage-by-stage (unfused) MMSIM path
  kPsor,       ///< PSOR fallback (bound-constrained components only)
  kLemke,      ///< exact Lemke pivoting (small systems only)
  kExhausted,  ///< no rung converged — the caller must degrade explicitly
};

const char* to_string(RecoveryRung rung);

struct RecoveryOptions {
  /// Master switch. When false a failed primary solve is returned as
  /// kExhausted immediately (the pre-recovery surface-the-failure path).
  bool enabled = true;
  /// Rung kEscalated: re-derive θ* from the Theorem-2 bound for this
  /// specific system via MmsimSolver::suggest_theta (the probe can only
  /// shrink θ*, never enlarge it — see lcp/mmsim.h).
  bool reprobe_theta = true;
  /// Rung kEscalated: γ for the retries; ≤ 0 keeps the configured γ. The
  /// modulus fixed point is γ-invariant, so relaxing γ to the classic
  /// modulus choice 1.0 changes the iteration trajectory, not the solution.
  double relaxed_gamma = 1.0;
  /// Rung kEscalated: iteration/pivot budget multiplier for every retry.
  std::size_t budget_multiplier = 4;
  /// Rung kPsor applies only to bound-constrained QPs (m = 0) of at most
  /// this many variables — the PSOR adapter materializes K densely.
  std::size_t psor_fallback_max_variables = 1024;
  /// Rung kLemke applies only to systems whose KKT dimension n + m is at
  /// most this — Lemke is exact but dense and cubic.
  std::size_t lemke_fallback_max_size = 256;
  /// Fault injection: treat the first `forced_failures` attempts as failed
  /// even when they converge, forcing the ladder onto later rungs. Set by
  /// tests and by the MCH_FORCE_SOLVER_FAILURE environment variable (see
  /// resolve_recovery_options); 0 in production.
  std::size_t forced_failures = 0;
};

/// Overlays the MCH_FORCE_SOLVER_FAILURE environment variable (a forced-
/// failure count for fault-injection test runs) onto `base`. The env var
/// applies only when base.forced_failures is 0, so explicit test settings
/// win over the ambient ctest variant.
RecoveryOptions resolve_recovery_options(RecoveryOptions base = {});

struct RecoveredSolve {
  /// The accepted result; only meaningful when rung != kExhausted.
  LcpSolveResult result;
  RecoveryRung rung = RecoveryRung::kPrimary;
  std::size_t attempts = 0;           ///< solve attempts, failed + accepted
  std::size_t wasted_iterations = 0;  ///< iterations burned by failed attempts
};

/// Solves the QP with the requested solver and, on failure, walks the
/// escalation ladder: escalated-parameter retry of the primary solver, the
/// unfused MMSIM reference path, then PSOR (m = 0) and Lemke (small
/// systems) where applicable. The slot (optional) is used for buffer reuse
/// and warm starts exactly as LcpSolver::solve; escalated MMSIM retries
/// warm-start from the failed iterate when a slot is present, so a budget
/// exhaustion resumes instead of restarting.
RecoveredSolve solve_with_recovery(LcpSolverKind primary,
                                   const StructuredQp& qp,
                                   const LcpSolverConfig& config,
                                   const RecoveryOptions& recovery,
                                   SolverWorkspace::Slot* slot = nullptr,
                                   bool warm_start = false);

}  // namespace mch::lcp
