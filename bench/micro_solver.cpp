// Google-benchmark microbenchmarks of the pipeline stages, demonstrating
// the linear-time scaling that underpins the paper's efficiency claim:
// model build, MMSIM setup + iterations, PlaceRow collapse, and the
// Tetris-like allocation all scale ~O(n).
//
// Run with --scaling for the thread-scaling sweep instead: MMSIM iteration
// throughput at 1/2/4/8 threads on the largest micro case (snapshot in
// results/micro_solver_scaling.txt). --threads N / MCH_THREADS set the
// thread count for the regular microbenchmarks.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "baselines/abacus.h"
#include "bench_common.h"
#include "gen/generator.h"
#include "lcp/mmsim.h"
#include "linalg/csr.h"
#include "linalg/simd.h"
#include "legal/flow.h"
#include "legal/model.h"
#include "legal/row_assign.h"
#include "legal/tetris_alloc.h"
#include "runtime/options.h"
#include "runtime/runtime.h"
#include "util/timer.h"

namespace {

using namespace mch;

const db::Design& cached_design(std::size_t cells) {
  static std::map<std::size_t, db::Design> cache;
  auto it = cache.find(cells);
  if (it == cache.end()) {
    gen::GeneratorOptions options;
    options.seed = 7;
    options.nets_per_cell = 0.0;
    it = cache
             .emplace(cells, gen::generate_random_design(
                                 cells - cells / 10, cells / 10, 0.6,
                                 options))
             .first;
  }
  return it->second;
}

void BM_ModelBuild(benchmark::State& state) {
  db::Design design = cached_design(static_cast<std::size_t>(state.range(0)));
  const legal::RowAssignment rows = legal::assign_rows(design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(legal::build_model(design, rows));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ModelBuild)->Range(1000, 64000)->Complexity(benchmark::oN);

void BM_MmsimIterations(benchmark::State& state) {
  db::Design design = cached_design(static_cast<std::size_t>(state.range(0)));
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  lcp::MmsimOptions options;
  options.max_iterations = 100;  // fixed budget: measures per-iteration cost
  options.tolerance = 0.0;
  options.residual_check = false;
  const lcp::MmsimSolver solver(model.qp, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MmsimIterations)->Range(1000, 64000)->Complexity(benchmark::oN);

/// The dispatch level the process started with (MCH_SIMD clamped to the
/// CPU), captured before any benchmark flips it.
linalg::SimdLevel default_simd_level() {
  static const linalg::SimdLevel level = linalg::simd_level();
  return level;
}

/// Installs the SIMD dispatch level a benchmark's arg asks for (0 = scalar
/// reference, 1 = the process default, i.e. MCH_SIMD/auto) and returns a
/// label suffix. The level is process-global, so each A/B run sets it
/// explicitly.
std::string apply_simd_arg(std::int64_t arg) {
  const linalg::SimdLevel level = linalg::set_simd_level(
      arg != 0 ? default_simd_level() : linalg::SimdLevel::kScalar);
  return std::string("/simd:") + linalg::simd_level_name(level);
}

// A/B of the fused single-sweep iteration kernels against the retained
// stage-by-stage reference path (arg 1: 0 = reference, 1 = fused; arg 2:
// 0 = scalar kernels, 1 = highest supported SIMD level). All double-kernel
// combinations compute bitwise-identical iterates
// (tests/lcp/mmsim_fused_test.cpp, tests/lcp/mmsim_simd_test.cpp), so the
// ratios are pure kernel-structure / vector-width speedup.
void BM_MmsimFusedVsUnfused(benchmark::State& state) {
  db::Design design = cached_design(static_cast<std::size_t>(state.range(0)));
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  lcp::MmsimOptions options;
  options.max_iterations = 100;  // fixed budget: measures per-iteration cost
  options.tolerance = 0.0;
  options.residual_check = false;
  options.fused = state.range(1) != 0;
  const std::string simd = apply_simd_arg(state.range(2));
  const lcp::MmsimSolver solver(model.qp, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
  state.SetLabel((options.fused ? "fused" : "reference") + simd);
}
BENCHMARK(BM_MmsimFusedVsUnfused)
    ->ArgsProduct({{8000, 32000, 64000}, {0, 1}, {0, 1}});

// Wall-clock to convergence of the full-double iterate against the opt-in
// mixed-precision iterate (float32 fused half-steps, float64 residual
// checkpoints, double polish; arg 1: 0 = double, 1 = mixed). Mixed has no
// bitwise contract — the deliverable is the same converged placement to
// solver tolerance in less time, so this measures end-to-end solve
// seconds, not per-iteration cost.
void BM_MmsimPrecision(benchmark::State& state) {
  db::Design design = cached_design(static_cast<std::size_t>(state.range(0)));
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  lcp::MmsimOptions options;
  options.precision = state.range(1) != 0 ? lcp::MmsimPrecision::kMixed
                                          : lcp::MmsimPrecision::kDouble;
  const lcp::MmsimSolver solver(model.qp, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
  state.SetLabel(state.range(1) != 0 ? "mixed" : "double");
}
BENCHMARK(BM_MmsimPrecision)->ArgsProduct({{8000, 64000}, {0, 1}});

// CSR sparse engine: one fused two-vector traversal (multiply_add2) against
// the two sequential single-vector products it replaces — the access
// pattern of the MMSIM rhs accumulation. arg 1: 0 = sequential pair,
// 1 = fused; arg 2: 0 = scalar kernels, 1 = highest supported SIMD level.
// The transpose variant runs through the cached Bᵀ view.
void csr_spmv(benchmark::State& state, bool transpose) {
  db::Design design = cached_design(static_cast<std::size_t>(state.range(0)));
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  const linalg::CsrMatrix& b = model.qp.B;
  const std::size_t xs = transpose ? b.rows() : b.cols();
  const std::size_t ys = transpose ? b.cols() : b.rows();
  const lcp::Vector x1(xs, 1.0), x2(xs, 0.5);
  lcp::Vector y(ys, 0.0);
  const bool fused = state.range(1) != 0;
  const std::string simd = apply_simd_arg(state.range(2));
  for (auto _ : state) {
    if (transpose) {
      if (fused) {
        b.multiply_transpose_add2(0.5, x1, -1.0, x2, y);
      } else {
        b.multiply_transpose_add(0.5, x1, y);
        b.multiply_transpose_add(-1.0, x2, y);
      }
    } else {
      if (fused) {
        b.multiply_add2(0.5, x1, -1.0, x2, y);
      } else {
        b.multiply_add(0.5, x1, y);
        b.multiply_add(-1.0, x2, y);
      }
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetComplexityN(state.range(0));
  state.SetLabel((fused ? "fused" : "pair") + simd);
}

void BM_CsrSpmv(benchmark::State& state) { csr_spmv(state, false); }
BENCHMARK(BM_CsrSpmv)->ArgsProduct({{8000, 64000}, {0, 1}, {0, 1}});

void BM_CsrSpmvTranspose(benchmark::State& state) { csr_spmv(state, true); }
BENCHMARK(BM_CsrSpmvTranspose)->ArgsProduct({{8000, 64000}, {0, 1}, {0, 1}});

void BM_MmsimSolveToConvergence(benchmark::State& state) {
  db::Design design = cached_design(static_cast<std::size_t>(state.range(0)));
  const legal::RowAssignment rows = legal::assign_rows(design);
  const legal::LegalizationModel model = legal::build_model(design, rows);
  const lcp::MmsimSolver solver(model.qp, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MmsimSolveToConvergence)->Range(1000, 16000);

// Obstacle-rich design for the decomposition benchmarks: fixed macros break
// the row chains, so the constraint graph falls into many independent
// components and the partitioned solve paths have real fan-out to exploit.
const db::Design& cached_obstacle_design(std::size_t cells) {
  static std::map<std::size_t, db::Design> cache;
  auto it = cache.find(cells);
  if (it == cache.end()) {
    gen::GeneratorOptions options;
    options.seed = 7;
    options.nets_per_cell = 0.0;
    options.fixed_macros = std::max<std::size_t>(4, cells / 250);
    it = cache
             .emplace(cells, gen::generate_random_design(
                                 cells - cells / 10, cells / 10, 0.6,
                                 options))
             .first;
  }
  return it->second;
}

void solve_partitioned(benchmark::State& state, legal::PartitionMode mode) {
  db::Design design =
      cached_obstacle_design(static_cast<std::size_t>(state.range(0)));
  const legal::RowAssignment rows = legal::assign_rows(design);
  legal::MmsimLegalizerOptions options;
  options.partition = mode;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        legal::mmsim_legalize_continuous(design, rows, options));
  }
  state.SetComplexityN(state.range(0));
}

void BM_SolveMonolithic(benchmark::State& state) {
  solve_partitioned(state, legal::PartitionMode::kOff);
}
BENCHMARK(BM_SolveMonolithic)->Range(1000, 16000);

void BM_SolvePartitionMatch(benchmark::State& state) {
  solve_partitioned(state, legal::PartitionMode::kMatch);
}
BENCHMARK(BM_SolvePartitionMatch)->Range(1000, 16000);

void BM_SolvePartitionTiered(benchmark::State& state) {
  solve_partitioned(state, legal::PartitionMode::kTiered);
}
BENCHMARK(BM_SolvePartitionTiered)->Range(1000, 16000);

void BM_PlaceRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<baselines::PlaceRowCell> cells;
  cells.reserve(n);
  double target = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    target += 3.0 + static_cast<double>(i % 5);
    cells.push_back({target * 0.8, 4.0});  // 20% compression: collapses
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::place_row(cells));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlaceRow)->Range(256, 65536)->Complexity(benchmark::oN);

void BM_TetrisAllocate(benchmark::State& state) {
  const db::Design& base = cached_design(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    db::Design design = base;
    legal::assign_rows(design);
    state.ResumeTiming();
    benchmark::DoNotOptimize(legal::tetris_allocate(design));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TetrisAllocate)->Range(1000, 32000);

void BM_FullFlow(benchmark::State& state) {
  const db::Design& base = cached_design(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    db::Design design = base;
    state.ResumeTiming();
    legal::FlowOptions options;
    options.verify = false;
    benchmark::DoNotOptimize(legal::legalize(design, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullFlow)->Range(1000, 16000);

// Thread-scaling sweep: fixed-budget MMSIM iterations on the largest micro
// case at 1/2/4/8 threads, reporting iterations/s and speedup over one
// thread. Determinism means every run computes the identical iterates, so
// the sweep measures runtime overhead/scaling and nothing else. A second
// section sweeps the SIMD dispatch level at one thread — on few-core
// machines vector width, not threads, is where the per-iteration speedup
// comes from.
void run_scaling_sweep(mch::bench::JsonSnapshot& json) {
  constexpr std::size_t kCells = 64000;
  constexpr std::size_t kIterations = 200;
  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};

  std::printf("MMSIM thread-scaling sweep — %zu cells, %zu iterations per "
              "run (hardware threads available: %u)\n\n",
              kCells, kIterations, std::thread::hardware_concurrency());

  const mch::db::Design& design = cached_design(kCells);
  mch::db::Design copy = design;
  const mch::legal::RowAssignment rows = mch::legal::assign_rows(copy);
  const mch::legal::LegalizationModel model =
      mch::legal::build_model(copy, rows);
  mch::lcp::MmsimOptions options;
  options.max_iterations = kIterations;  // fixed budget: per-iteration cost
  options.tolerance = 0.0;
  options.residual_check = false;
  const mch::lcp::MmsimSolver solver(model.qp, options);

  std::printf("%8s %12s %14s %10s\n", "threads", "seconds", "iters/s",
              "speedup");
  double baseline_seconds = 0.0;
  for (const unsigned threads : thread_counts) {
    mch::runtime::Runtime::configure(threads);
    solver.solve();  // warm-up: page in buffers, spin up the pool
    mch::Timer timer;
    solver.solve();
    const double seconds = timer.seconds();
    if (threads == 1) baseline_seconds = seconds;
    std::printf("%8u %12.3f %14.1f %9.2fx\n", threads, seconds,
                static_cast<double>(kIterations) / seconds,
                baseline_seconds / seconds);
    json.add("threads/" + std::to_string(threads), kCells, seconds);
  }
  mch::runtime::Runtime::configure(1);
  std::printf("\nSpeedup is bounded by the serial Thomas solve "
              "(runtime/parallel.h documents the determinism contract) and "
              "by the physical core count of the machine.\n");

  std::printf("\nSIMD-level sweep — same case, 1 thread (CPU supports %s; "
              "double kernels are bitwise identical at every level)\n\n",
              mch::linalg::simd_level_name(
                  mch::linalg::simd_level_supported()));
  std::printf("%8s %12s %14s %10s\n", "simd", "seconds", "iters/s",
              "speedup");
  double scalar_seconds = 0.0;
  for (const mch::linalg::SimdLevel level :
       {mch::linalg::SimdLevel::kScalar, mch::linalg::SimdLevel::kAvx2,
        mch::linalg::SimdLevel::kAvx512}) {
    if (mch::linalg::set_simd_level(level) != level) continue;  // unsupported
    solver.solve();  // warm-up at this level
    mch::Timer timer;
    solver.solve();
    const double seconds = timer.seconds();
    const char* name = mch::linalg::simd_level_name(level);
    if (level == mch::linalg::SimdLevel::kScalar) scalar_seconds = seconds;
    std::printf("%8s %12.3f %14.1f %9.2fx\n", name, seconds,
                static_cast<double>(kIterations) / seconds,
                scalar_seconds / seconds);
    json.add(std::string("simd/") + name, kCells, seconds);
  }
  mch::linalg::set_simd_level(mch::linalg::simd_level_supported());
}

/// Console reporter that also records every per-iteration run into the
/// machine-readable snapshot: name (with the A/B label appended), the first
/// benchmark argument as "cells", and mean wall seconds per iteration.
/// Aggregates (BigO/RMS rows) stay text-only.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(mch::bench::JsonSnapshot& json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.iterations == 0) continue;
      const std::string name = run.benchmark_name();
      std::size_t cells = 0;
      const std::size_t slash = name.find('/');
      if (slash != std::string::npos)
        cells = static_cast<std::size_t>(
            std::atoll(name.c_str() + slash + 1));
      std::string record = name;
      if (!run.report_label.empty()) record += " [" + run.report_label + "]";
      json_.add(std::move(record), cells,
                run.real_accumulated_time /
                    static_cast<double>(run.iterations));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  mch::bench::JsonSnapshot& json_;
};

}  // namespace

int main(int argc, char** argv) {
  mch::runtime::configure_threads_from_cli(argc, argv);
  mch::bench::print_bench_banner("micro_solver");
  default_simd_level();  // pin the MCH_SIMD-resolved default for the A/Bs
  // Strip our flags so google-benchmark does not reject them.
  std::vector<char*> filtered;
  bool scaling = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling") == 0) {
      scaling = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 ||
               std::strcmp(argv[i], "-j") == 0) {
      ++i;  // skip the value
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
    } else {
      filtered.push_back(argv[i]);
    }
  }
  if (scaling) {
    mch::bench::JsonSnapshot json("micro_solver_scaling");
    run_scaling_sweep(json);
    mch::bench::print_peak_rss();
    json.write();
    return 0;
  }
  mch::bench::JsonSnapshot json("micro_solver");
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  JsonTeeReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  mch::bench::print_peak_rss();
  json.write();
  return 0;
}
