// Baseline-ISA dispatch for the MMSIM sweep kernel tables. The per-ISA
// tables live in TUs compiled with their -m flags; this TU is compiled with
// the project baseline so the selection itself never executes wide
// instructions.
#include "lcp/mmsim_kernels.h"

namespace mch::lcp::kernels {

const MmsimSimdKernels* mmsim_simd_kernels(linalg::SimdLevel level) {
#if defined(MCH_SIMD_X86)
  switch (level) {
    case linalg::SimdLevel::kAvx512:
      return &kMmsimSimdAvx512;
    case linalg::SimdLevel::kAvx2:
      return &kMmsimSimdAvx2;
    case linalg::SimdLevel::kScalar:
      return nullptr;
  }
  return nullptr;
#else
  (void)level;
  return nullptr;
#endif
}

}  // namespace mch::lcp::kernels
