#include "linalg/power_iteration.h"

#include <gtest/gtest.h>

#include "linalg/dense_matrix.h"
#include "util/rng.h"

namespace mch::linalg {
namespace {

TEST(PowerIterationTest, DiagonalDominantEigenvalue) {
  DenseMatrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 2.0;
  const auto result = power_iteration(
      3, [&](const Vector& x, Vector& y) { a.multiply(x, y); });
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalue, 5.0, 1e-6);
}

TEST(PowerIterationTest, SymmetricMatrixKnownSpectrum) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  DenseMatrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  const auto result = power_iteration(
      2, [&](const Vector& x, Vector& y) { a.multiply(x, y); });
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalue, 3.0, 1e-6);
}

TEST(PowerIterationTest, ZeroOperator) {
  const auto result = power_iteration(4, [](const Vector& x, Vector& y) {
    y.assign(x.size(), 0.0);
  });
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.eigenvalue, 0.0);
}

TEST(PowerIterationTest, EmptyDimension) {
  const auto result =
      power_iteration(0, [](const Vector&, Vector&) { FAIL(); });
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.eigenvalue, 0.0);
}

TEST(PowerIterationTest, ScalingLinearity) {
  // Dominant eigenvalue of 10·A is 10·λmax(A).
  Rng rng(21);
  DenseMatrix g(5, 5);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) g(r, c) = rng.uniform(-1, 1);
  const DenseMatrix a = g.multiply(g.transpose());  // PSD: power iter safe
  const auto base = power_iteration(
      5, [&](const Vector& x, Vector& y) { a.multiply(x, y); });
  const auto scaled = power_iteration(5, [&](const Vector& x, Vector& y) {
    a.multiply(x, y);
    for (double& v : y) v *= 10.0;
  });
  EXPECT_TRUE(base.converged);
  EXPECT_TRUE(scaled.converged);
  EXPECT_NEAR(scaled.eigenvalue, 10.0 * base.eigenvalue,
              1e-4 * scaled.eigenvalue);
}

}  // namespace
}  // namespace mch::linalg
