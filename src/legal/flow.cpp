#include "legal/flow.h"

#include "util/timer.h"

namespace mch::legal {

FlowResult legalize(db::Design& design, const FlowOptions& options) {
  Timer timer;
  FlowResult result;

  // Step 1: nearest-correct-row assignment (fixes y).
  result.base_rows = assign_rows(design);

  // Steps 2–4: subcell split, MMSIM solve, restore (fixes continuous x).
  result.solver =
      mmsim_legalize_continuous(design, result.base_rows, options.solver);

  // Step 5: Tetris-like allocation (sites + right boundary + residual
  // overlaps from finite λ / finite tolerance).
  result.allocation = tetris_allocate(design);

  // Final orientations: odd-height cells flip to meet their row's rail.
  assign_orientations(design);

  result.total_seconds = timer.seconds();
  if (options.verify) {
    result.legality = db::check_legality(design);
    result.legal =
        result.legality.legal() && result.allocation.unplaced_cells == 0;
  }
  return result;
}

}  // namespace mch::legal
