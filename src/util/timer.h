// Wall-clock timer used for the runtime columns of the experiment tables.
#pragma once

#include <chrono>

namespace mch {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() { reset(); }

  /// Restarts the stopwatch.
  void reset();

  /// Seconds elapsed since construction or the last reset().
  double seconds() const;

  /// Milliseconds elapsed since construction or the last reset().
  double milliseconds() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mch
