#include "legal/occupancy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace mch::legal {

bool RowOccupancy::is_free(SiteIndex start, SiteIndex end) const {
  MCH_DCHECK(start <= end);
  if (start == end) return true;
  // First interval with key > start; its predecessor may cover start.
  auto it = intervals_.upper_bound(start);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) return false;
  }
  return it == intervals_.end() || it->first >= end;
}

void RowOccupancy::occupy(SiteIndex start, SiteIndex end) {
  MCH_CHECK_MSG(is_free(start, end),
                "occupy(" << start << "," << end << ") not free");
  if (start == end) return;
  // Coalesce with neighbors touching exactly at the boundaries.
  auto next = intervals_.lower_bound(start);
  if (next != intervals_.end() && next->first == end) {
    end = next->second;
    intervals_.erase(next);
  }
  if (!intervals_.empty()) {
    auto it = intervals_.lower_bound(start);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second == start) {
        prev->second = end;
        return;
      }
    }
  }
  intervals_[start] = end;
}

void RowOccupancy::release(SiteIndex start, SiteIndex end) {
  if (start == end) return;
  auto it = intervals_.upper_bound(start);
  MCH_CHECK_MSG(it != intervals_.begin(), "release of unoccupied span");
  --it;
  MCH_CHECK_MSG(it->first <= start && it->second >= end,
                "release(" << start << "," << end
                           << ") does not match an occupied span");
  const SiteIndex old_start = it->first;
  const SiteIndex old_end = it->second;
  intervals_.erase(it);
  if (old_start < start) intervals_[old_start] = start;
  if (end < old_end) intervals_[end] = old_end;
}

void RowOccupancy::collect(
    SiteIndex lo, SiteIndex hi,
    std::vector<std::pair<SiteIndex, SiteIndex>>& out) const {
  auto it = intervals_.upper_bound(lo);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > lo)
      out.emplace_back(std::max(prev->first, lo),
                       std::min(prev->second, hi));
  }
  for (; it != intervals_.end() && it->first < hi; ++it)
    out.emplace_back(it->first, std::min(it->second, hi));
}

OccupancyGrid::OccupancyGrid(const db::Chip& chip)
    : chip_(chip), rows_(chip.num_rows) {}

SiteIndex OccupancyGrid::width_sites(const db::Cell& cell) const {
  return static_cast<SiteIndex>(
      std::ceil(cell.width / chip_.site_width - 1e-9));
}

bool OccupancyGrid::is_free(std::size_t base_row, std::size_t height,
                            SiteIndex site, SiteIndex width_sites) const {
  if (site < 0 || site + width_sites > num_sites()) return false;
  if (base_row + height > chip_.num_rows) return false;
  for (std::size_t r = base_row; r < base_row + height; ++r)
    if (!rows_[r].is_free(site, site + width_sites)) return false;
  return true;
}

void OccupancyGrid::occupy(std::size_t base_row, std::size_t height,
                           SiteIndex site, SiteIndex width_sites) {
  MCH_CHECK(base_row + height <= chip_.num_rows);
  for (std::size_t r = base_row; r < base_row + height; ++r)
    rows_[r].occupy(site, site + width_sites);
}

void OccupancyGrid::release(std::size_t base_row, std::size_t height,
                            SiteIndex site, SiteIndex width_sites) {
  MCH_CHECK(base_row + height <= chip_.num_rows);
  for (std::size_t r = base_row; r < base_row + height; ++r)
    rows_[r].release(site, site + width_sites);
}

void OccupancyGrid::occupy_cell(const db::Cell& cell) {
  const auto row = static_cast<std::size_t>(
      std::llround(cell.y / chip_.row_height));
  const auto site =
      static_cast<SiteIndex>(std::llround(cell.x / chip_.site_width));
  occupy(row, cell.height_rows, site, width_sites(cell));
}

void OccupancyGrid::occupy_outline(const db::Cell& cell) {
  const double height =
      static_cast<double>(cell.height_rows) * chip_.row_height;
  const auto first_row = static_cast<std::size_t>(std::clamp(
      std::floor(cell.y / chip_.row_height + 1e-9), 0.0,
      static_cast<double>(chip_.num_rows)));
  const auto end_row = static_cast<std::size_t>(std::clamp(
      std::ceil((cell.y + height) / chip_.row_height - 1e-9), 0.0,
      static_cast<double>(chip_.num_rows)));
  const auto site_start = std::max<SiteIndex>(
      0,
      static_cast<SiteIndex>(std::floor(cell.x / chip_.site_width + 1e-9)));
  const auto site_end = std::min<SiteIndex>(
      num_sites(), static_cast<SiteIndex>(std::ceil(
                       (cell.x + cell.width) / chip_.site_width - 1e-9)));
  if (site_start >= site_end) return;
  for (std::size_t r = first_row; r < end_row; ++r)
    rows_[r].occupy(site_start, site_end);
}

void OccupancyGrid::release_cell(const db::Cell& cell) {
  const auto row = static_cast<std::size_t>(
      std::llround(cell.y / chip_.row_height));
  const auto site =
      static_cast<SiteIndex>(std::llround(cell.x / chip_.site_width));
  release(row, cell.height_rows, site, width_sites(cell));
}

PlacementCandidate OccupancyGrid::find_in_rows(std::size_t base_row,
                                               std::size_t height,
                                               SiteIndex width_sites,
                                               double target_x) const {
  PlacementCandidate best;
  if (base_row + height > chip_.num_rows) return best;
  const SiteIndex total = num_sites();
  if (width_sites > total) return best;

  const auto target_site = static_cast<SiteIndex>(
      std::llround(target_x / chip_.site_width));

  // Expanding-window scan: merge the occupied intervals of the spanned rows
  // inside [lo, hi), list the free gaps, and pick the gap position nearest
  // to the target. The window doubles until a position is found or the row
  // is fully covered.
  SiteIndex radius = std::max<SiteIndex>(4 * width_sites, 64);
  std::vector<std::pair<SiteIndex, SiteIndex>> occupied;
  while (true) {
    const SiteIndex lo = std::max<SiteIndex>(0, target_site - radius);
    const SiteIndex hi = std::min<SiteIndex>(total, target_site + radius);

    occupied.clear();
    for (std::size_t r = base_row; r < base_row + height; ++r)
      rows_[r].collect(lo, hi, occupied);
    std::sort(occupied.begin(), occupied.end());

    // Walk the merged gaps.
    double best_cost = std::numeric_limits<double>::infinity();
    SiteIndex best_site = 0;
    bool found = false;
    SiteIndex cursor = lo;
    const auto consider_gap = [&](SiteIndex g0, SiteIndex g1) {
      if (g1 - g0 < width_sites) return;
      const SiteIndex pos =
          std::clamp(target_site, g0, g1 - width_sites);
      const double cost =
          std::abs(static_cast<double>(pos - target_site)) * chip_.site_width;
      if (cost < best_cost) {
        best_cost = cost;
        best_site = pos;
        found = true;
      }
    };
    for (const auto& [s, e] : occupied) {
      if (s > cursor) consider_gap(cursor, s);
      cursor = std::max(cursor, e);
    }
    if (cursor < hi) consider_gap(cursor, hi);

    const bool window_covers_row = (lo == 0 && hi == total);
    if (found) {
      // A position at the window edge may be beaten by one just outside;
      // accept only if the window slack exceeds the found cost (or the
      // window is the whole row).
      const double slack =
          static_cast<double>(std::min(target_site - lo, hi - target_site)) *
          chip_.site_width;
      if (window_covers_row || best_cost <= slack) {
        best.found = true;
        best.base_row = base_row;
        best.site = best_site;
        best.cost = best_cost;
        return best;
      }
    }
    if (window_covers_row) return best;  // exhaustive and nothing found
    radius *= 2;
  }
}

PlacementCandidate OccupancyGrid::find_nearest(
    const db::Cell& cell, double target_x, double target_y,
    std::size_t max_row_distance) const {
  PlacementCandidate best;
  double best_cost = std::numeric_limits<double>::infinity();

  const std::size_t height = cell.height_rows;
  if (height > chip_.num_rows) return best;
  const std::size_t max_base = chip_.num_rows - height;
  const auto anchor = static_cast<std::ptrdiff_t>(std::clamp<double>(
      static_cast<double>(std::llround(target_y / chip_.row_height)), 0.0,
      static_cast<double>(max_base)));
  const SiteIndex w = width_sites(cell);

  // Candidate base rows in increasing |row_y − target_y|, alternating
  // above/below the anchor. Stop once the vertical cost alone exceeds the
  // best total cost found.
  for (std::size_t dist = 0;; ++dist) {
    if (max_row_distance > 0 && dist > max_row_distance) break;
    bool any_candidate = false;
    for (const int sign : {+1, -1}) {
      if (dist == 0 && sign < 0) continue;
      const std::ptrdiff_t row =
          anchor + sign * static_cast<std::ptrdiff_t>(dist);
      if (row < 0 || row > static_cast<std::ptrdiff_t>(max_base)) continue;
      any_candidate = true;
      const auto base = static_cast<std::size_t>(row);
      if (!cell.rail_compatible(chip_, base)) continue;

      const double dy = std::abs(chip_.row_y(base) - target_y);
      if (dy >= best_cost) continue;
      PlacementCandidate cand = find_in_rows(base, height, w, target_x);
      if (!cand.found) continue;
      const double cost = cand.cost + dy;
      if (cost < best_cost) {
        best_cost = cost;
        best = cand;
        best.cost = cost;
      }
    }
    if (!any_candidate) break;
    // Vertical lower bound of the next ring.
    const double next_dy =
        static_cast<double>(dist + 1) * chip_.row_height -
        std::abs(target_y - chip_.row_y(static_cast<std::size_t>(anchor)));
    if (best.found && next_dy > best_cost) break;
  }
  return best;
}

}  // namespace mch::legal
