// Two-level cross-design job scheduler over one shared worker pool.
//
// Level 1 is a global queue of *jobs* — one per top-level submission (a
// design legalization, a service request, a suite experiment). Level 2 is a
// set of per-worker deques holding job *tickets*: a ticket invites a worker
// to join a job and drain chunks from the job's atomic claim cursor. Any
// number of threads may submit jobs concurrently (the resident service's
// multi-client case); their component-solve chunks interleave on the same
// workers, replacing the old single-job ThreadPool::run barrier protocol
// that aborted on a second concurrent top-level submission.
//
// Ticket placement is what makes the two levels:
//
//   * top-level submissions from threads outside the pool enqueue tickets
//     on the global injection queue (FIFO across jobs, so a queue of many
//     designs drains fairly);
//   * nested submissions from inside a chunk body push their tickets onto
//     the submitting worker's own deque — the nested chunks become
//     *stealable children* instead of silently serializing inline.
//
// An idle worker pops its own deque first (newest first: children are
// cache-hot), then the injection queue (oldest job first), then *steals*
// from the other workers' deques (oldest first: coarse work travels,
// fine-grained work stays). The submitting thread always participates in
// its own job, so a lone submitter still runs on thread_count() threads
// exactly like the old pool.
//
// Determinism contract (unchanged from runtime/parallel.h): the chunk
// *layout* of every job is fixed by the caller, chunk bodies write disjoint
// state, and reductions fold in chunk-index order on the submitting thread.
// Chunk *assignment* — which worker claims which chunk, what gets stolen —
// only ever moves wall-clock time around; no observable result depends on
// it. A queue of `match`-mode legalization requests is therefore bitwise
// reproducible per request at any thread count and under any steal
// schedule (tests/service/scheduler_determinism_test.cpp holds the line).
//
// Exceptions thrown by chunk bodies — including stolen ones — are caught,
// the first is remembered on the job, the remaining chunks still run, and
// the stored exception is rethrown on the submitting thread once the job
// completes. The scheduler survives throwing jobs and stays usable.
//
// Knobs (process-wide, resolved from the environment at first use,
// settable by tests):
//
//   MCH_SCHED_NESTED=0       nested parallel constructs fall back to the
//                            legacy inline loop; the chunks that serialize
//                            this way are counted in the
//                            `sched.nested_inline` metric so the loss is
//                            visible in --metrics output.
//   MCH_SCHED_STEAL_FIRST=1  workers prefer stealing other workers' tickets
//                            over their own deque — a steal-heavy schedule
//                            for shaking out order dependence in tests.
//
// Metrics: `sched.jobs`, `sched.nested_jobs`, `sched.steals`,
// `sched.nested_inline` counters and the `sched.queue_depth` histogram
// (jobs in flight, observed at every top-level submission); workers carry
// `pool.worker.busy` spans. Worker trace/log identities are pool-scoped
// unique ("worker-<pool>.<index>", globally unique log ids), so processes
// holding several pools — the global Runtime's plus ad-hoc test pools —
// never alias worker names.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mch::runtime {

class Scheduler {
 public:
  /// Creates a scheduler that runs every job on up to `thread_count`
  /// threads: the submitting thread plus `thread_count - 1` workers.
  /// Requires >= 1. With several concurrent submitters the pool is shared:
  /// each job still completes on at most thread_count threads, but
  /// distinct jobs' chunks interleave on the same workers.
  explicit Scheduler(unsigned thread_count);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  /// Joins the workers. No job may be in flight (same contract as
  /// Runtime::configure: reconfiguration is quiescent-only).
  ~Scheduler();

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Pool-scoped unique id (process-wide counter), part of every worker's
  /// trace/log identity.
  unsigned pool_id() const { return pool_id_; }

  /// Runs task(c) for every c in [0, chunks) and blocks until every chunk
  /// has finished. Safe to call from any number of threads concurrently
  /// (each call is one job) and from inside a chunk body (the nested job's
  /// chunks become stealable children of the calling worker). Rethrows the
  /// first exception thrown by any chunk, wherever it ran.
  void run(std::size_t chunks, const std::function<void(std::size_t)>& task);

  /// True while the calling thread is executing a chunk body (worker or
  /// submitter helping out). parallel.h uses this to decide between a
  /// nested job and the inline fallback.
  static bool in_task();

  /// The calling thread's worker index within `this` pool, or -1 when the
  /// thread is not one of this scheduler's workers (external submitters,
  /// other pools' workers). Nested submissions from a worker land on that
  /// worker's own deque; tests use this to pin work onto a worker.
  int current_worker_index() const;

  /// Nested-scheduling knob; default from MCH_SCHED_NESTED (on unless "0").
  static bool nested_scheduling_enabled();
  static void set_nested_scheduling(bool enabled);

  /// Steal-heavy schedule knob; default from MCH_SCHED_STEAL_FIRST.
  static bool steal_first();
  static void set_steal_first(bool enabled);

  /// Component-staging knob (the legalizer's double-buffered gather-table
  /// prefetch); default from MCH_SCHED_STAGING (on unless "0").
  static bool staging_enabled();
  static void set_staging(bool enabled);

  /// Forgets every set_* override so the next query re-resolves from the
  /// environment; test teardowns call this instead of guessing defaults
  /// (sanitizer jobs sweep MCH_SCHED_* across whole test binaries).
  static void reset_knobs();

  /// Accounts `chunks` chunks of a nested parallel construct that ran
  /// inline on the calling thread (`sched.nested_inline`), so remaining
  /// serialization shows up in metrics output.
  static void note_nested_inline(std::size_t chunks);

 private:
  struct Job;

  /// One worker's ticket deque. Own pops take the back (newest: nested
  /// children), steals take the front (oldest: coarse top-level work).
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Job*> tickets;
  };

  void worker_main(unsigned index);
  /// Pops a ticket for worker `self` honoring the steal policy. `stolen`
  /// reports a take from another worker's deque.
  bool acquire_ticket(unsigned self, Job*& job, bool& stolen);
  /// Claims and executes chunks of `job` until its cursor is exhausted;
  /// returns how many chunks this thread executed.
  std::size_t drain(Job& job);
  void execute_chunk(Job& job, std::size_t chunk);
  /// Decrements the job's remaining count by `n`; the unique thread that
  /// zeroes it marks the job done and notifies the submitter.
  static void finish(Job& job, std::size_t n);
  /// Distributes `count` tickets: onto worker `home`'s deque when the
  /// submitter is one of this pool's workers (nested children), onto the
  /// global injection queue otherwise.
  void push_tickets(Job* job, std::size_t count, int home);
  /// Removes every not-yet-claimed ticket of `job` after its cursor
  /// drained, so a completed job never leaves dangling tickets behind.
  void cancel_tickets(Job* job);
  void wake_workers();

  const unsigned pool_id_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;  ///< one per worker

  /// Level 1: tickets of jobs submitted from outside the pool.
  std::mutex injection_mutex_;
  std::deque<Job*> injection_;

  /// Sleep/wake protocol: pushes bump epoch_ and notify when sleepers
  /// exist; a worker re-checks the epoch under sleep_mutex_ before
  /// blocking, so a push between its failed scan and its wait cannot be
  /// lost (seq_cst Dekker pairing on epoch_/sleepers_).
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> sleepers_{0};
  bool shutdown_ = false;  ///< guarded by sleep_mutex_

  /// Jobs in flight (top-level submissions), for sched.queue_depth.
  std::atomic<std::size_t> active_jobs_{0};
};

}  // namespace mch::runtime
