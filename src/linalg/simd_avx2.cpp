// AVX2 variants of the linalg sweep kernels (4-wide double). Compiled with
// -mavx2 and -ffp-contract=off; only reached through csr_simd_kernels()
// after the runtime CPU check. Same bitwise contract as the AVX-512 file;
// lane masks are sign-bit vectors (blendv / maskload semantics) instead of
// mask registers.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "linalg/simd_kernels.h"

#if defined(MCH_SIMD_X86)

namespace mch::linalg::kernels {
namespace {

inline __m128i load_idx4(const std::uint32_t* idx, std::size_t i) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
}

/// Row-length masks for rows [i, i+4) as all-ones/all-zero 64-bit lanes.
inline void len_masks4(const std::uint8_t* len, std::size_t i, __m256d& m1,
                       __m256d& m2) {
  std::uint32_t packed;
  std::memcpy(&packed, len + i, 4);
  const __m128i l = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(
      static_cast<int>(packed)));
  const __m128i ge1 = _mm_cmpgt_epi32(l, _mm_setzero_si128());
  const __m128i ge2 = _mm_cmpgt_epi32(l, _mm_set1_epi32(1));
  m1 = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(ge1));
  m2 = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(ge2));
}

inline __m256d row_sum4(const CsrGather2Ctx& g, std::size_t i, const double* x,
                        __m256d m1, __m256d m2) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d x0 = _mm256_mask_i32gather_pd(zero, x, load_idx4(g.c0, i),
                                              m1, 8);
  const __m256d x1 = _mm256_mask_i32gather_pd(zero, x, load_idx4(g.c1, i),
                                              m2, 8);
  const __m256d v0 = _mm256_loadu_pd(g.v0 + i);
  const __m256d v1 = _mm256_loadu_pd(g.v1 + i);
  // sum = (0 + v0·x0) for len>=1 lanes, else 0; then += v1·x1 for len==2.
  __m256d sum = _mm256_and_pd(
      m1, _mm256_add_pd(zero, _mm256_mul_pd(v0, x0)));
  sum = _mm256_blendv_pd(sum, _mm256_add_pd(sum, _mm256_mul_pd(v1, x1)), m2);
  return sum;
}

inline double row_sum_tail(const CsrGather2Ctx& g, std::size_t i,
                           const double* x) {
  double sum = 0.0;
  if (g.len[i] >= 1) sum += g.v0[i] * x[g.c0[i]];
  if (g.len[i] >= 2) sum += g.v1[i] * x[g.c1[i]];
  return sum;
}

void csr_add(const CsrGather2Ctx& g, double alpha, const double* x, double* y,
             std::size_t lo, std::size_t hi) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    __m256d m1, m2;
    len_masks4(g.len, i, m1, m2);
    const __m256d sum = row_sum4(g, i, x, m1, m2);
    const __m256d yv = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(yv, _mm256_mul_pd(va, sum)));
  }
  for (; i < hi; ++i) y[i] += alpha * row_sum_tail(g, i, x);
}

void csr_add2(const CsrGather2Ctx& g, double a1, const double* x1, double a2,
              const double* x2, double* y, std::size_t lo, std::size_t hi) {
  const __m256d va1 = _mm256_set1_pd(a1);
  const __m256d va2 = _mm256_set1_pd(a2);
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    __m256d m1, m2;
    len_masks4(g.len, i, m1, m2);
    const __m256d s1 = row_sum4(g, i, x1, m1, m2);
    const __m256d s2 = row_sum4(g, i, x2, m1, m2);
    __m256d yv = _mm256_loadu_pd(y + i);
    yv = _mm256_add_pd(yv, _mm256_mul_pd(va1, s1));
    yv = _mm256_add_pd(yv, _mm256_mul_pd(va2, s2));
    _mm256_storeu_pd(y + i, yv);
  }
  for (; i < hi; ++i) {
    y[i] += a1 * row_sum_tail(g, i, x1);
    y[i] += a2 * row_sum_tail(g, i, x2);
  }
}

void ew_scale_add(double alpha, const double* v, const double* x, double* y,
                  std::size_t lo, std::size_t hi) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256d t = _mm256_mul_pd(_mm256_mul_pd(va, _mm256_loadu_pd(v + i)),
                                    _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), t));
  }
  for (; i < hi; ++i) y[i] += alpha * v[i] * x[i];
}

void ew_mul(const double* v, const double* x, double* y, std::size_t lo,
            std::size_t hi) {
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_mul_pd(_mm256_loadu_pd(v + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < hi; ++i) y[i] = v[i] * x[i];
}

}  // namespace

const CsrSimdKernels kCsrSimdAvx2 = {csr_add, csr_add2, ew_scale_add, ew_mul};

}  // namespace mch::linalg::kernels

#endif  // MCH_SIMD_X86
