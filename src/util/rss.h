// Process-memory measurement for the scaling experiments and the service
// telemetry.
//
// peak_rss_bytes() is the getrusage ru_maxrss high-water mark: monotone
// over the process lifetime, which is exactly the "did this flow fit the
// budget" number the memory-wall work tracks (ROADMAP item 3). To compare
// configurations fairly, measure each in its own process —
// bench/scaling_memory.cpp re-execs itself per data point for this reason.
//
// current_rss_bytes() reads /proc/self/statm for an instantaneous resident
// size; it returns 0 on platforms without procfs, so callers must treat 0
// as "unavailable", not "no memory".
#pragma once

#include <cstddef>

namespace mch::util {

/// Peak resident set size of this process in bytes (0 if unavailable).
std::size_t peak_rss_bytes();

/// Current resident set size in bytes (0 if unavailable).
std::size_t current_rss_bytes();

/// Convenience: peak RSS in mebibytes.
double peak_rss_mb();

/// Convenience: current RSS in mebibytes (0.0 if unavailable).
double current_rss_mb();

}  // namespace mch::util
