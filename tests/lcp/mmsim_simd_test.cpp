// Bitwise-identity suite for the SIMD MMSIM sweeps: at every dispatch
// level the CPU supports, the fused half-step kernels must reproduce the
// scalar reference iteration bit for bit — iterate by iterate on z and the
// convergence delta, and on the final solve results (ALGORITHM.md ¶13).
// Registered again as ".mt4" (MCH_THREADS=4) so the contract holds through
// the parallel runtime's chunked sweeps, and as ".simd-off" (MCH_SIMD=0)
// where the loop below degenerates to scalar-vs-scalar.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gen/generator.h"
#include "lcp/mmsim.h"
#include "legal/model.h"
#include "legal/row_assign.h"
#include "linalg/simd.h"

namespace mch::lcp {
namespace {

bool bitwise_equal(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

std::vector<linalg::SimdLevel> simd_levels_above_scalar() {
  std::vector<linalg::SimdLevel> levels;
  if (linalg::simd_level_supported() >= linalg::SimdLevel::kAvx2)
    levels.push_back(linalg::SimdLevel::kAvx2);
  if (linalg::simd_level_supported() >= linalg::SimdLevel::kAvx512)
    levels.push_back(linalg::SimdLevel::kAvx512);
  return levels;
}

/// The cross-level bitwise contract is a *double*-kernel contract (the
/// float kernels of mixed mode carry none), so the suite pins kDouble
/// instead of inheriting MCH_PRECISION from the environment.
MmsimOptions double_options() {
  MmsimOptions options;
  options.precision = MmsimPrecision::kDouble;
  return options;
}

class LevelGuard {
 public:
  LevelGuard() : entry_(linalg::simd_level()) {}
  ~LevelGuard() { linalg::set_simd_level(entry_); }

 private:
  linalg::SimdLevel entry_;
};

legal::LegalizationModel make_model(std::size_t singles, std::size_t doubles,
                                    double density, std::uint64_t seed,
                                    double triple_fraction = 0.0,
                                    double quad_fraction = 0.0) {
  gen::GeneratorOptions opts;
  opts.seed = seed;
  opts.nets_per_cell = 0.0;
  opts.triple_fraction = triple_fraction;
  opts.quad_fraction = quad_fraction;
  db::Design design =
      gen::generate_random_design(singles, doubles, density, opts);
  const legal::RowAssignment rows = legal::assign_rows(design);
  return legal::build_model(design, rows);
}

/// One solver, levels flipped between runs: dispatch is consulted at call
/// time, so the same instance must produce the same bits at every level.
void expect_stepwise_bitwise(const legal::LegalizationModel& model,
                             std::size_t iterations) {
  LevelGuard guard;
  const MmsimSolver solver(model.qp, double_options());

  linalg::set_simd_level(linalg::SimdLevel::kScalar);
  MmsimSolver::State ref_state = solver.make_state();
  std::vector<double> ref_deltas;
  std::vector<Vector> ref_z;
  for (std::size_t it = 0; it < iterations; ++it) {
    ref_deltas.push_back(solver.step(ref_state));
    ref_z.push_back(ref_state.z);
  }

  for (const linalg::SimdLevel level : simd_levels_above_scalar()) {
    ASSERT_EQ(linalg::set_simd_level(level), level);
    MmsimSolver::State state = solver.make_state();
    for (std::size_t it = 0; it < iterations; ++it) {
      const double delta = solver.step(state);
      ASSERT_EQ(std::memcmp(&delta, &ref_deltas[it], sizeof(double)), 0)
          << linalg::simd_level_name(level) << ": delta diverged at "
          << it;
      ASSERT_TRUE(bitwise_equal(state.z, ref_z[it]))
          << linalg::simd_level_name(level) << ": z diverged at " << it;
    }
  }
}

TEST(MmsimSimdTest, StepwiseBitwiseSingleHeight) {
  expect_stepwise_bitwise(make_model(400, 0, 0.6, 3), 150);
}

TEST(MmsimSimdTest, StepwiseBitwiseMixedHeight) {
  expect_stepwise_bitwise(make_model(300, 60, 0.7, 5), 150);
}

// Triple/quad-height cells put general blocks in K: their lanes must be
// masked out of the vector primal sweep and handled by the block path.
TEST(MmsimSimdTest, StepwiseBitwiseTallBlocks) {
  expect_stepwise_bitwise(make_model(250, 40, 0.65, 9, 0.1, 0.05), 150);
}

TEST(MmsimSimdTest, SolveResultsBitwiseAcrossLevels) {
  LevelGuard guard;
  const legal::LegalizationModel model = make_model(500, 60, 0.7, 17);
  MmsimOptions options = double_options();
  options.tolerance = 1e-8;
  options.max_iterations = 50000;
  const MmsimSolver solver(model.qp, options);

  linalg::set_simd_level(linalg::SimdLevel::kScalar);
  const MmsimResult reference = solver.solve();
  ASSERT_TRUE(reference.converged);

  for (const linalg::SimdLevel level : simd_levels_above_scalar()) {
    ASSERT_EQ(linalg::set_simd_level(level), level);
    const MmsimResult result = solver.solve();
    ASSERT_TRUE(result.converged) << linalg::simd_level_name(level);
    EXPECT_EQ(result.iterations, reference.iterations)
        << linalg::simd_level_name(level);
    EXPECT_TRUE(bitwise_equal(result.z, reference.z))
        << linalg::simd_level_name(level);
    EXPECT_TRUE(bitwise_equal(result.x, reference.x))
        << linalg::simd_level_name(level);
    EXPECT_TRUE(bitwise_equal(result.dual, reference.dual))
        << linalg::simd_level_name(level);
  }
}

// The unfused (stage-by-stage) reference path also dispatches its CSR and
// block-diagonal sweeps; the whole fused/unfused/SIMD cube must agree.
TEST(MmsimSimdTest, UnfusedPathBitwiseAcrossLevels) {
  LevelGuard guard;
  const legal::LegalizationModel model = make_model(350, 50, 0.65, 29);
  MmsimOptions options = double_options();
  options.fused = false;
  const MmsimSolver solver(model.qp, options);

  linalg::set_simd_level(linalg::SimdLevel::kScalar);
  const MmsimResult reference = solver.solve();

  for (const linalg::SimdLevel level : simd_levels_above_scalar()) {
    ASSERT_EQ(linalg::set_simd_level(level), level);
    const MmsimResult result = solver.solve();
    EXPECT_EQ(result.iterations, reference.iterations)
        << linalg::simd_level_name(level);
    EXPECT_TRUE(bitwise_equal(result.z, reference.z))
        << linalg::simd_level_name(level);
  }
}

}  // namespace
}  // namespace mch::lcp
