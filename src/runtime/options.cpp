#include "runtime/options.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/runtime.h"
#include "util/log.h"

namespace mch::runtime {

namespace {
unsigned parse_count(const char* text) {
  const long value = std::atol(text);
  if (value < 1) {
    MCH_LOG(kWarn) << "ignoring invalid --threads value '" << text << "'";
    return 0;
  }
  return static_cast<unsigned>(value);
}
}  // namespace

unsigned threads_from_cli(int argc, char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 || std::strcmp(arg, "-j") == 0) {
      if (i + 1 < argc) return parse_count(argv[i + 1]);
      MCH_LOG(kWarn) << "--threads given without a value; ignoring";
      return 0;
    }
    if (std::strncmp(arg, "--threads=", 10) == 0) return parse_count(arg + 10);
  }
  return 0;
}

unsigned configure_threads_from_cli(int argc, char* const* argv) {
  Runtime::configure(threads_from_cli(argc, argv));
  return Runtime::instance().threads();
}

}  // namespace mch::runtime
