// Projected successive overrelaxation (PSOR) for dense LCPs.
//
// Classic iterative LCP solver (Cryer 1971). Requires a positive diagonal;
// converges for symmetric positive definite A with 0 < ω < 2. Mentioned in
// the paper's related-work discussion of LCP methods and implemented here
// both as a reference solver and as the "slower alternative" arm of the
// MMSIM-vs-other-LCP-methods ablation bench.
//
// Note: the saddle KKT matrix [K −Bᵀ; B 0] has zero diagonal entries, so
// PSOR does NOT apply to it directly — use it on standard-form LCPs (e.g.
// bound-constrained QPs) only. The ablation bench therefore compares on the
// x ≥ 0-only subproblem class where both methods are applicable.
#pragma once

#include <cstddef>

#include "lcp/lcp.h"

namespace mch::lcp {

struct PsorOptions {
  double omega = 1.4;       ///< relaxation parameter in (0, 2)
  double tolerance = 1e-10; ///< stop when ‖z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾‖∞ < tolerance
  std::size_t max_iterations = 100000;
};

struct PsorResult {
  Vector z;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Solves LCP(q, A) by PSOR. Requires A(i,i) > 0 for all i.
PsorResult solve_psor(const DenseLcp& problem, const PsorOptions& options = {});

/// Iteration count + convergence flag of an in-place PSOR run (the iterate
/// itself lives in the caller's buffer).
struct PsorRunStats {
  std::size_t iterations = 0;
  bool converged = false;
};

/// As solve_psor(), but iterates in the caller-owned buffer `z`, reusing its
/// capacity across solves (a SolverWorkspace slot keeps one alive). When
/// `warm_start` is true and `z` already has the problem's size, iteration
/// starts from its contents instead of zero — PSOR on an SPD matrix
/// converges from any start, so a warm start only changes the iteration
/// count, never the fixed point. The solution is left in `z`.
PsorRunStats solve_psor_in(const DenseLcp& problem, const PsorOptions& options,
                           Vector& z, bool warm_start = false);

}  // namespace mch::lcp
