// Union-find over QP variables — shared by the constraint-graph partition
// (partition.cpp) and the streamed model assembly (model.cpp), which unions
// each spacing chain the moment the constraint row is emitted.
//
// The canonical partition produced by finalize_partition() is independent
// of union order (components are renumbered by smallest member variable and
// the lists re-sorted), so the streamed incremental unions and the
// after-the-fact sweep over a finished B produce bit-identical partitions.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace mch::legal {

/// Plain union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace mch::legal
