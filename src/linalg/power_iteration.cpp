#include "linalg/power_iteration.h"

#include <cmath>

#include "util/check.h"

namespace mch::linalg {

PowerIterationResult power_iteration(
    std::size_t dimension,
    const std::function<void(const Vector&, Vector&)>& op,
    std::size_t max_iterations, double tolerance) {
  PowerIterationResult result;
  if (dimension == 0) {
    result.converged = true;
    return result;
  }

  Vector v(dimension);
  for (std::size_t i = 0; i < dimension; ++i)
    v[i] = 1.0 + static_cast<double>(i % 7) * 0.01;
  double norm = norm2(v);
  scale(1.0 / norm, v);

  Vector w;
  double prev_lambda = 0.0;
  for (std::size_t k = 0; k < max_iterations; ++k) {
    op(v, w);
    MCH_CHECK(w.size() == dimension);
    const double lambda = dot(v, w);  // Rayleigh quotient
    norm = norm2(w);
    if (norm < 1e-300) {
      // Operator annihilated the iterate: dominant eigenvalue ~ 0.
      result.eigenvalue = 0.0;
      result.iterations = k + 1;
      result.converged = true;
      return result;
    }
    v = w;
    scale(1.0 / norm, v);
    result.eigenvalue = lambda;
    result.iterations = k + 1;
    if (k > 0 && std::abs(lambda - prev_lambda) <=
                     tolerance * std::max(1.0, std::abs(lambda))) {
      result.converged = true;
      return result;
    }
    prev_lambda = lambda;
  }
  return result;
}

}  // namespace mch::linalg
