#include "io/design_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/generator.h"
#include "util/check.h"

namespace mch::io {
namespace {

db::Design sample_design() {
  gen::GeneratorOptions opts;
  opts.seed = 12;
  db::Design d = gen::generate_random_design(50, 8, 0.5, opts);
  d.name = "sample";
  return d;
}

TEST(DesignIoTest, RoundTripPreservesEverything) {
  const db::Design original = sample_design();
  std::stringstream ss;
  write_design(ss, original);
  const db::Design loaded = read_design(ss);

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.chip().num_rows, original.chip().num_rows);
  EXPECT_EQ(loaded.chip().num_sites, original.chip().num_sites);
  EXPECT_DOUBLE_EQ(loaded.chip().site_width, original.chip().site_width);
  EXPECT_DOUBLE_EQ(loaded.chip().row_height, original.chip().row_height);
  EXPECT_EQ(loaded.chip().bottom_rail, original.chip().bottom_rail);

  ASSERT_EQ(loaded.num_cells(), original.num_cells());
  for (std::size_t i = 0; i < loaded.num_cells(); ++i) {
    const db::Cell& a = loaded.cells()[i];
    const db::Cell& b = original.cells()[i];
    EXPECT_DOUBLE_EQ(a.width, b.width);
    EXPECT_EQ(a.height_rows, b.height_rows);
    EXPECT_EQ(a.bottom_rail, b.bottom_rail);
    EXPECT_DOUBLE_EQ(a.gp_x, b.gp_x);
    EXPECT_DOUBLE_EQ(a.gp_y, b.gp_y);
    EXPECT_DOUBLE_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.y, b.y);
  }

  ASSERT_EQ(loaded.num_nets(), original.num_nets());
  for (std::size_t i = 0; i < loaded.num_nets(); ++i) {
    const db::NetView a = loaded.nets()[i];
    const db::NetView b = original.nets()[i];
    ASSERT_EQ(a.pins.size(), b.pins.size());
    for (std::size_t p = 0; p < a.pins.size(); ++p) {
      EXPECT_EQ(a.pins[p].cell, b.pins[p].cell);
      EXPECT_DOUBLE_EQ(a.pins[p].dx, b.pins[p].dx);
      EXPECT_DOUBLE_EQ(a.pins[p].dy, b.pins[p].dy);
    }
  }
}

TEST(DesignIoTest, FileRoundTrip) {
  const db::Design original = sample_design();
  const std::string path = testing::TempDir() + "/mch_io_test.design";
  save_design(path, original);
  const db::Design loaded = load_design(path);
  EXPECT_EQ(loaded.num_cells(), original.num_cells());
  EXPECT_EQ(loaded.num_nets(), original.num_nets());
}

TEST(DesignIoTest, BadMagicRejected) {
  std::stringstream ss("notadesign 1\n");
  EXPECT_THROW(read_design(ss), CheckError);
}

TEST(DesignIoTest, BadVersionRejected) {
  std::stringstream ss("mchdesign 99\n");
  EXPECT_THROW(read_design(ss), CheckError);
}

TEST(DesignIoTest, TruncatedCellsRejected) {
  std::stringstream ss(
      "mchdesign 2\nname t\nchip 4 10 1 10 VSS\ncells 2\n3 1 VSS 0 0 0 0 0\n");
  EXPECT_THROW(read_design(ss), CheckError);
}

TEST(DesignIoTest, BadRailTokenRejected) {
  std::stringstream ss(
      "mchdesign 2\nname t\nchip 4 10 1 10 XXX\ncells 0\nnets 0\n");
  EXPECT_THROW(read_design(ss), CheckError);
}

TEST(DesignIoTest, MissingFileThrows) {
  EXPECT_THROW(load_design("/nonexistent/path/foo.design"), CheckError);
}

TEST(DesignIoTest, Version1WithoutFixedFlagStillReads) {
  std::stringstream ss(
      "mchdesign 1\nname old\nchip 4 10 1 10 VSS\ncells 1\n"
      "3 1 VDD 2 0 2 0\nnets 0\n");
  const db::Design d = read_design(ss);
  ASSERT_EQ(d.num_cells(), 1u);
  EXPECT_FALSE(d.cells()[0].fixed);
  EXPECT_DOUBLE_EQ(d.cells()[0].gp_x, 2.0);
}

TEST(DesignIoTest, FixedFlagRoundTrips) {
  db::Chip chip;
  chip.num_rows = 4;
  chip.num_sites = 20;
  db::Design d(chip);
  db::Cell macro;
  macro.width = 5;
  macro.height_rows = 2;
  macro.fixed = true;
  macro.x = macro.gp_x = 5.0;
  macro.y = macro.gp_y = 0.0;
  d.add_cell(macro);
  std::stringstream ss;
  write_design(ss, d);
  const db::Design loaded = read_design(ss);
  ASSERT_EQ(loaded.num_cells(), 1u);
  EXPECT_TRUE(loaded.cells()[0].fixed);
}

TEST(DesignIoTest, EmptyDesignRoundTrips) {
  db::Chip chip;
  chip.num_rows = 2;
  chip.num_sites = 4;
  db::Design d(chip);
  std::stringstream ss;
  write_design(ss, d);
  const db::Design loaded = read_design(ss);
  EXPECT_EQ(loaded.num_cells(), 0u);
  EXPECT_EQ(loaded.name, "unnamed");
}

}  // namespace
}  // namespace mch::io
