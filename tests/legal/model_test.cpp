// Constraint-builder tests, including exact reproductions of the paper's
// Figure 2 (single-height constraint matrix) and Figure 3 (mixed-height
// subcell splitting with the Ex = 0 coupling) — experiment E5 in DESIGN.md.
#include "legal/model.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/generator.h"

namespace mch::legal {
namespace {

db::Chip two_row_chip() {
  db::Chip chip;
  chip.num_rows = 2;
  chip.num_sites = 100;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  return chip;
}

// Figure 2 of the paper: cells c2, c4 on row 0 and c1, c3, c5 on row 1.
db::Design figure2_design() {
  db::Design design(two_row_chip());
  const auto add = [&](double width, double gp_x, double gp_y) {
    db::Cell cell;
    cell.width = width;
    cell.gp_x = gp_x;
    cell.gp_y = gp_y;
    design.add_cell(cell);
  };
  add(3.0, 10.0, 10.0);  // c1 (row 1, leftmost)
  add(2.0, 12.0, 0.0);   // c2 (row 0, leftmost)
  add(2.0, 20.0, 10.0);  // c3 (row 1, middle)
  add(4.0, 25.0, 0.0);   // c4 (row 0, right)
  add(3.0, 30.0, 10.0);  // c5 (row 1, right)
  return design;
}

TEST(ModelTest, Figure2ConstraintMatrix) {
  db::Design design = figure2_design();
  const RowAssignment rows = assign_rows(design);
  const LegalizationModel model = build_model(design, rows);

  // Five single-height cells: one variable each, identity Hessian blocks.
  ASSERT_EQ(model.num_variables(), 5u);
  ASSERT_EQ(model.qp.num_constraints(), 3u);
  for (std::size_t b = 0; b < 5; ++b) {
    ASSERT_EQ(model.qp.K.block_size(b), 1u);
    EXPECT_DOUBLE_EQ(model.qp.K.entry(b, b), 1.0);
  }

  // B exactly as in the paper (row 0 of the chip first):
  //   [ 0 −1  0  1  0 ]   x4 − x2 ≥ w2
  //   [−1  0  1  0  0 ]   x3 − x1 ≥ w1
  //   [ 0  0 −1  0  1 ]   x5 − x3 ≥ w3
  const double expected_b[3][5] = {{0, -1, 0, 1, 0},
                                   {-1, 0, 1, 0, 0},
                                   {0, 0, -1, 0, 1}};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 5; ++c)
      EXPECT_DOUBLE_EQ(model.qp.B.at(r, c), expected_b[r][c])
          << "B(" << r << "," << c << ")";

  // b = [w2, w1, w3] and p = −x'.
  EXPECT_EQ(model.qp.b, (lcp::Vector{2.0, 3.0, 2.0}));
  EXPECT_EQ(model.qp.p, (lcp::Vector{-10, -12, -20, -25, -30}));
}

// Figure 3 of the paper: double-height c1 and c3 with single-height c2
// between them on the lower row.
db::Design figure3_design() {
  db::Design design(two_row_chip());
  db::Cell c1;
  c1.width = 3.0;
  c1.height_rows = 2;
  c1.bottom_rail = db::RailType::kVss;
  c1.gp_x = 5.0;
  c1.gp_y = 0.0;
  design.add_cell(c1);
  db::Cell c2;
  c2.width = 2.0;
  c2.gp_x = 9.0;
  c2.gp_y = 0.0;
  design.add_cell(c2);
  db::Cell c3;
  c3.width = 3.0;
  c3.height_rows = 2;
  c3.bottom_rail = db::RailType::kVss;
  c3.gp_x = 14.0;
  c3.gp_y = 0.0;
  design.add_cell(c3);
  return design;
}

TEST(ModelTest, Figure3SubcellSplitting) {
  db::Design design = figure3_design();
  const RowAssignment rows = assign_rows(design);
  const ModelOptions options;  // λ = 1000
  const LegalizationModel model = build_model(design, rows, options);

  // Variables: c1 → {0,1}, c2 → {2}, c3 → {3,4}.
  ASSERT_EQ(model.num_variables(), 5u);
  EXPECT_EQ(model.cell_first_var, (std::vector<mch::index_t>{0, 2, 3}));
  EXPECT_EQ(model.variables[1].cell, 0u);
  EXPECT_EQ(model.variables[1].subrow, 1u);

  // Constraints (paper's example, in our variable order):
  //   row 0:  x_c2 − x_c1,0 ≥ w1;  x_c3,0 − x_c2 ≥ w2
  //   row 1:  x_c3,1 − x_c1,1 ≥ w1
  ASSERT_EQ(model.qp.num_constraints(), 3u);
  const double expected_b[3][5] = {{-1, 0, 1, 0, 0},
                                   {0, 0, -1, 1, 0},
                                   {0, -1, 0, 0, 1}};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 5; ++c)
      EXPECT_DOUBLE_EQ(model.qp.B.at(r, c), expected_b[r][c])
          << "B(" << r << "," << c << ")";
  EXPECT_EQ(model.qp.b, (lcp::Vector{3.0, 2.0, 3.0}));

  // p duplicates the GP target for each subcell.
  EXPECT_EQ(model.qp.p, (lcp::Vector{-5, -5, -9, -14, -14}));

  // The Ex = 0 coupling folded into K: I + λ·[[1,−1],[−1,1]] per tall cell.
  const auto& block = model.qp.K.block(0);
  ASSERT_EQ(block.rows(), 2u);
  EXPECT_DOUBLE_EQ(block(0, 0), 1.0 + options.lambda);
  EXPECT_DOUBLE_EQ(block(0, 1), -options.lambda);
  EXPECT_DOUBLE_EQ(block(1, 0), -options.lambda);
  EXPECT_DOUBLE_EQ(block(1, 1), 1.0 + options.lambda);
  EXPECT_EQ(model.qp.K.block_size(1), 1u);
}

TEST(ModelTest, RowOrderingByGpXWithIdTieBreak) {
  db::Design design(two_row_chip());
  db::Cell cell;
  cell.width = 2.0;
  cell.gp_y = 0.0;
  cell.gp_x = 5.0;
  design.add_cell(cell);  // id 0
  design.add_cell(cell);  // id 1, same gp_x → id order
  cell.gp_x = 1.0;
  design.add_cell(cell);  // id 2, leftmost
  const RowAssignment rows = assign_rows(design);
  const LegalizationModel model = build_model(design, rows);
  ASSERT_EQ(model.row_variables[0].size(), 3u);
  EXPECT_EQ(model.row_variables[0][0], 2u);
  EXPECT_EQ(model.row_variables[0][1], 0u);
  EXPECT_EQ(model.row_variables[0][2], 1u);
}

TEST(ModelTest, ConstraintRowsHaveExactlyTwoNonzeros) {
  gen::GeneratorOptions opts;
  opts.seed = 77;
  db::Design design = gen::generate_random_design(150, 30, 0.7, opts);
  const RowAssignment rows = assign_rows(design);
  const LegalizationModel model = build_model(design, rows);
  const auto& B = model.qp.B;
  for (std::size_t r = 0; r < B.rows(); ++r) {
    const std::size_t nnz = B.row_ptr()[r + 1] - B.row_ptr()[r];
    ASSERT_EQ(nnz, 2u) << "constraint " << r;
    double sum = 0.0;
    for (std::size_t k = B.row_ptr()[r]; k < B.row_ptr()[r + 1]; ++k)
      sum += B.values()[k];
    EXPECT_DOUBLE_EQ(sum, 0.0);  // one −1 and one +1
  }
}

TEST(ModelTest, VariablesAppearInAtMostTwoConstraints) {
  // Full-row-rank argument of Propositions 1 and 2 rests on this.
  gen::GeneratorOptions opts;
  opts.seed = 78;
  db::Design design = gen::generate_random_design(150, 30, 0.8, opts);
  const RowAssignment rows = assign_rows(design);
  const LegalizationModel model = build_model(design, rows);
  std::vector<int> uses(model.num_variables(), 0);
  const auto& B = model.qp.B;
  for (std::size_t k = 0; k < B.nnz(); ++k) ++uses[B.col_idx()[k]];
  for (std::size_t v = 0; v < uses.size(); ++v)
    EXPECT_LE(uses[v], 2) << "variable " << v;
}

TEST(ModelTest, SpacingRhsIsLeftCellWidth) {
  gen::GeneratorOptions opts;
  opts.seed = 79;
  db::Design design = gen::generate_random_design(80, 10, 0.6, opts);
  const RowAssignment rows = assign_rows(design);
  const LegalizationModel model = build_model(design, rows);
  const auto& B = model.qp.B;
  for (std::size_t r = 0; r < B.rows(); ++r) {
    // Find the −1 column (the left cell's variable).
    std::size_t left_var = 0;
    for (std::size_t k = B.row_ptr()[r]; k < B.row_ptr()[r + 1]; ++k)
      if (B.values()[k] < 0) left_var = B.col_idx()[k];
    const std::size_t cell = model.variables[left_var].cell;
    EXPECT_DOUBLE_EQ(model.qp.b[r], design.cells()[cell].width);
  }
}

TEST(ModelTest, CellXAveragesSubcells) {
  db::Design design = figure3_design();
  const RowAssignment rows = assign_rows(design);
  const LegalizationModel model = build_model(design, rows);
  lcp::Vector x = {4.0, 6.0, 9.0, 14.0, 14.0};
  EXPECT_DOUBLE_EQ(model.cell_x(x, 0), 5.0);
  EXPECT_DOUBLE_EQ(model.cell_x(x, 1), 9.0);
  EXPECT_DOUBLE_EQ(model.cell_x(x, 2), 14.0);
  EXPECT_DOUBLE_EQ(model.cell_mismatch(x, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.cell_mismatch(x, 1), 0.0);
  EXPECT_DOUBLE_EQ(model.max_mismatch(x), 1.0);
}

TEST(ModelTest, LambdaValidated) {
  db::Design design = figure2_design();
  const RowAssignment rows = assign_rows(design);
  ModelOptions options;
  options.lambda = 0.0;
  EXPECT_THROW(build_model(design, rows, options), CheckError);
}

TEST(ModelTest, TripleHeightChainBlock) {
  db::Chip chip = two_row_chip();
  chip.num_rows = 4;
  db::Design design(chip);
  db::Cell cell;
  cell.width = 2.0;
  cell.height_rows = 3;
  cell.gp_x = 5.0;
  cell.gp_y = 0.0;
  design.add_cell(cell);
  const RowAssignment rows = assign_rows(design);
  ModelOptions options;
  options.lambda = 10.0;
  const LegalizationModel model = build_model(design, rows, options);
  ASSERT_EQ(model.num_variables(), 3u);
  const auto& block = model.qp.K.block(0);
  // I + 10·chain-Laplacian of a 3-path: diag (11, 21, 11), off −10.
  EXPECT_DOUBLE_EQ(block(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(block(1, 1), 21.0);
  EXPECT_DOUBLE_EQ(block(2, 2), 11.0);
  EXPECT_DOUBLE_EQ(block(0, 1), -10.0);
  EXPECT_DOUBLE_EQ(block(1, 2), -10.0);
  EXPECT_DOUBLE_EQ(block(0, 2), 0.0);
}

}  // namespace
}  // namespace mch::legal
