#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "util/log.h"

namespace mch::obs {

namespace {

bool env_truthy(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

std::atomic<bool> g_enabled{env_truthy("MCH_METRICS")};

/// std::map keeps node addresses stable across inserts, so references
/// handed out by counter()/gauge()/histogram() never move.
struct MetricsStore {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::string, std::string, std::less<>> attributes;
};

MetricsStore& store() {
  static MetricsStore* s = new MetricsStore;  // leaked: outlives all threads
  return *s;
}

template <typename T>
T& lookup(std::map<std::string, std::unique_ptr<T>, std::less<>>& table,
          std::string_view name) {
  MetricsStore& s = store();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = table.find(name);
  if (it == table.end()) {
    it = table.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

std::string labeled_name(std::string_view base, std::string_view key,
                         std::string_view value) {
  std::string name;
  name.reserve(base.size() + key.size() + value.size() + 3);
  name.append(base);
  name += '{';
  name.append(key);
  name += '=';
  name.append(value);
  name += '}';
  return name;
}

constexpr double kTicksPerUnit = 1e9;

/// Lower edge of `bucket` in original value units. Bucket b holds ticks
/// in [2^(b-1), 2^b) for b >= 1; bucket 0 holds ticks <= 0.
double bucket_lower(int bucket) {
  if (bucket <= 0) return 0.0;
  return static_cast<double>(std::uint64_t{1} << (bucket - 1)) / kTicksPerUnit;
}

double bucket_upper(int bucket) {
  if (bucket >= Histogram::kNumBuckets - 1) return bucket_lower(bucket) * 2.0;
  return static_cast<double>(std::uint64_t{1} << bucket) / kTicksPerUnit;
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double value) {
  char scratch[64];
  std::snprintf(scratch, sizeof scratch, "%.9g", value);
  out += scratch;
}

}  // namespace

bool metrics_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_metrics_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::observe(double value) {
  const double ticks = value * kTicksPerUnit;
  int bucket = 0;
  if (ticks >= 1.0) {
    const std::uint64_t t =
        ticks >= 9.2e18 ? ~std::uint64_t{0} : static_cast<std::uint64_t>(ticks);
    bucket = std::bit_width(t);
    if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> requires C++20 + hardware support; a CAS
  // loop keeps the sum portable. Contention here is rare (one add per
  // request/solve, not per iteration).
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t in_bucket = bucket_count(b);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      const double lo = bucket_lower(b);
      const double hi = bucket_upper(b);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bucket_upper(kNumBuckets - 1);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  return lookup(store().counters, name);
}

Gauge& gauge(std::string_view name) { return lookup(store().gauges, name); }

Histogram& histogram(std::string_view name) {
  return lookup(store().histograms, name);
}

Counter& counter(std::string_view base, std::string_view label_key,
                 std::string_view label_value) {
  return counter(labeled_name(base, label_key, label_value));
}

Gauge& gauge(std::string_view base, std::string_view label_key,
             std::string_view label_value) {
  return gauge(labeled_name(base, label_key, label_value));
}

void set_metrics_attribute(std::string_view key, std::string_view value) {
  MetricsStore& s = store();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.attributes[std::string(key)] = std::string(value);
}

std::string metrics_json() {
  MetricsStore& s = store();
  std::lock_guard<std::mutex> lock(s.mutex);

  std::string out;
  out.reserve(1 << 14);
  out += "{\n  \"schema\": \"mch-metrics/1\",\n  \"attributes\": {";
  bool first = true;
  for (const auto& [key, value] : s.attributes) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_json_escaped(out, key);
    out += "\": \"";
    append_json_escaped(out, value);
    out += '"';
  }
  out += "},\n  \"counters\": {";
  first = true;
  for (const auto& [name, c] : s.counters) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"";
    append_json_escaped(out, name);
    char scratch[32];
    std::snprintf(scratch, sizeof scratch, "\": %llu",
                  static_cast<unsigned long long>(c->value()));
    out += scratch;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : s.gauges) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"";
    append_json_escaped(out, name);
    out += "\": ";
    append_double(out, g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"";
    append_json_escaped(out, name);
    out += "\": {\"count\": ";
    char scratch[32];
    std::snprintf(scratch, sizeof scratch, "%llu",
                  static_cast<unsigned long long>(h->count()));
    out += scratch;
    out += ", \"sum\": ";
    append_double(out, h->sum());
    out += ", \"mean\": ";
    append_double(out, h->mean());
    out += ", \"p50\": ";
    append_double(out, h->percentile(0.50));
    out += ", \"p95\": ";
    append_double(out, h->percentile(0.95));
    out += ", \"p99\": ";
    append_double(out, h->percentile(0.99));
    out += ", \"buckets\": {";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const std::uint64_t in_bucket = h->bucket_count(b);
      if (in_bucket == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      std::snprintf(scratch, sizeof scratch, "\"%d\": %llu", b,
                    static_cast<unsigned long long>(in_bucket));
      out += scratch;
    }
    out += "}}";
  }
  out += "\n  }\n}\n";
  return out;
}

bool write_metrics(const std::string& path) {
  const std::string json = metrics_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    MCH_LOG(kWarn) << "metrics: cannot open " << path << " for writing";
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

void reset_metrics() {
  MetricsStore& s = store();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& [name, c] : s.counters) c->reset();
  for (auto& [name, g] : s.gauges) g->reset();
  for (auto& [name, h] : s.histograms) h->reset();
}

}  // namespace mch::obs
