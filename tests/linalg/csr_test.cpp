// CSR sparse engine tests: structure from COO, products against dense
// reference sums, and the bitwise contract of the fused two-vector forms
// (multiply_add2 / multiply_transpose_add2) against the sequential pairs
// they replace. Runs again as ".mt4" with MCH_THREADS=4, so the bitwise
// assertions also cover the parallel row sweeps.
#include "linalg/csr.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "linalg/sparse.h"

namespace mch::linalg {
namespace {

bool bitwise_equal(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// A random sparse matrix with the spacing-constraint shape: ~2 entries
/// per row, values of both signs, plus a few duplicate adds so from_coo's
/// summing is exercised.
CsrMatrix random_matrix(std::size_t rows, std::size_t cols,
                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> col(0, cols - 1);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  CooMatrix coo(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    coo.add(r, col(rng), val(rng));
    coo.add(r, col(rng), val(rng));
    if (r % 7 == 0) coo.add(r, col(rng), val(rng));  // duplicate-prone
  }
  return CsrMatrix::from_coo(coo);
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  Vector v(n);
  for (double& x : v) x = val(rng);
  return v;
}

TEST(CsrTest, MultiplyMatchesExplicitSum) {
  const CsrMatrix a = random_matrix(40, 30, 11);
  const Vector x = random_vector(30, 12);
  Vector y;
  a.multiply(x, y);
  ASSERT_EQ(y.size(), 40u);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k)
      sum += a.values()[k] * x[a.col_idx()[k]];
    EXPECT_DOUBLE_EQ(y[r], sum) << "row " << r;
  }
}

TEST(CsrTest, TransposeViewMatchesTranspose) {
  const CsrMatrix a = random_matrix(25, 35, 21);
  const CsrMatrix& view = a.transpose_view();
  const CsrMatrix t = a.transpose();
  ASSERT_EQ(view.rows(), 35u);
  ASSERT_EQ(view.cols(), 25u);
  ASSERT_EQ(view.nnz(), a.nnz());
  for (std::size_t r = 0; r < t.rows(); ++r)
    for (std::size_t k = t.row_ptr()[r]; k < t.row_ptr()[r + 1]; ++k)
      EXPECT_EQ(view.at(r, t.col_idx()[k]), t.values()[k]);
}

// The fused two-vector traversal must produce the exact bits of the two
// sequential products it replaces — the MMSIM rhs accumulation relies on
// this for its bitwise-determinism contract.
TEST(CsrTest, MultiplyAdd2BitwiseEqualsSequentialPair) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const CsrMatrix a = random_matrix(600, 500, seed);
    const Vector x1 = random_vector(500, seed + 10);
    const Vector x2 = random_vector(500, seed + 20);
    Vector fused = random_vector(600, seed + 30);
    Vector sequential = fused;
    ASSERT_TRUE(bitwise_equal(fused, sequential));

    a.multiply_add2(0.5, x1, -1.0, x2, fused);
    a.multiply_add(0.5, x1, sequential);
    a.multiply_add(-1.0, x2, sequential);
    EXPECT_TRUE(bitwise_equal(fused, sequential)) << "seed " << seed;
  }
}

TEST(CsrTest, MultiplyTransposeAdd2BitwiseEqualsSequentialPair) {
  for (std::uint64_t seed : {4u, 5u, 6u}) {
    const CsrMatrix a = random_matrix(550, 650, seed);
    const Vector x1 = random_vector(550, seed + 10);
    const Vector x2 = random_vector(550, seed + 20);
    Vector fused = random_vector(650, seed + 30);
    Vector sequential = fused;

    a.multiply_transpose_add2(1.0, x1, 1.0, x2, fused);
    a.multiply_transpose_add(1.0, x1, sequential);
    a.multiply_transpose_add(1.0, x2, sequential);
    EXPECT_TRUE(bitwise_equal(fused, sequential)) << "seed " << seed;
  }
}

TEST(CsrTest, EmptyRowsAndIdentity) {
  CooMatrix coo(4, 3);
  coo.add(1, 2, 5.0);  // rows 0, 2, 3 empty
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  Vector y;
  a.multiply(Vector{1.0, 1.0, 1.0}, y);
  EXPECT_EQ(y, (Vector{0.0, 5.0, 0.0, 0.0}));

  const CsrMatrix eye = CsrMatrix::identity(3);
  Vector x{1.5, -2.0, 0.25};
  Vector ix;
  eye.multiply(x, ix);
  EXPECT_TRUE(bitwise_equal(ix, x));
}

}  // namespace
}  // namespace mch::linalg
