// Scoped-span tracing into lock-free per-thread ring buffers.
//
// A TraceSpan is an RAII scope: construction stamps a monotonic start time,
// destruction stamps the end and pushes one completed-span event into the
// calling thread's ring buffer. Each thread owns its buffer exclusively
// (single-producer, no locks or shared atomics on the hot path), so a span
// costs two clock reads plus one ring write when tracing is enabled and a
// single relaxed flag load when it is not — cheap enough to leave the
// instrumentation compiled into every build.
//
// Buffers are fixed-capacity rings: when a thread records more spans than
// its ring holds, the oldest events are overwritten and counted as dropped
// (trace_stats().dropped). Because a span is recorded at its *end*,
// enclosing spans always outlive — and are recorded after — their children,
// so overwrite pressure evicts fine-grained leaf events first and the
// phase-level structure survives. Allocation is bounded: one ring per
// thread that actually traced, never grown.
//
// Draining (write_chrome_trace / collect_trace_events / clear_trace) walks
// every registered thread buffer and must run while no span is in flight —
// in practice, after the parallel work completed (the runtime pool's job
// completion provides the necessary happens-before edge for worker
// buffers). The output is Chrome trace-event JSON: load it in
// chrome://tracing or https://ui.perfetto.dev.
//
// Tracing never touches solver state; every bitwise determinism contract
// (match mode, .mt4, .simd-off) holds with tracing on or off
// (tests/obs/identity_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace mch::obs {

/// Whether spans currently record anything. Resolved once at process start
/// from MCH_TRACE (unset/"0" = off), flippable at runtime.
bool tracing_enabled();
void set_tracing_enabled(bool enabled);

/// Ring capacity (events per thread) for buffers created *after* this call;
/// clear_trace() re-caps existing buffers too. Default 16384, overridable
/// with MCH_TRACE_RING. Intended for tests and memory-tight embeddings.
void set_trace_ring_capacity(std::size_t events);
std::size_t trace_ring_capacity();

/// Nanoseconds since the process-wide trace epoch (steady clock).
std::uint64_t trace_now_ns();

/// One key/value annotation on a span. Keys and string values must be
/// static or interned strings (see intern()) — the ring stores pointers.
struct TraceArg {
  enum class Kind : std::uint8_t { kNone, kInt, kDouble, kString };
  const char* key = nullptr;
  Kind kind = Kind::kNone;
  union {
    std::int64_t i;
    double d;
    const char* s;
  } value = {0};
};

/// Copies `text` into a process-lifetime intern pool and returns a stable
/// pointer, so dynamic strings (design names, …) can be span args. Repeat
/// calls with equal text return the same pointer; the pool is never freed.
const char* intern(std::string_view text);

/// Names the calling thread in the trace output ("main", "worker-3", …).
/// The runtime's pool workers register themselves; other threads default
/// to "thread-<tid>".
void set_trace_thread_name(std::string name);

class TraceSpan {
 public:
  /// `name` must be a static or interned string.
  explicit TraceSpan(const char* name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Annotates the span; silently ignored beyond kMaxArgs and when tracing
  /// was disabled at construction. Key (and string values) must be static
  /// or interned.
  TraceSpan& arg(const char* key, double value);
  TraceSpan& arg(const char* key, const char* value);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> || std::is_enum_v<T>,
                             int> = 0>
  TraceSpan& arg(const char* key, T value) {
    return arg_int(key, static_cast<std::int64_t>(value));
  }

  static constexpr std::size_t kMaxArgs = 6;

 private:
  TraceSpan& arg_int(const char* key, std::int64_t value);
  TraceArg& next_arg(const char* key);

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
  std::uint8_t num_args_ = 0;
  TraceArg args_[kMaxArgs];
};

/// Records an already-timed span (the RAII path calls this; tests and
/// adapters may too). No-op when tracing is disabled.
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, const TraceArg* args,
                 std::size_t num_args);

struct TraceStats {
  std::uint64_t recorded = 0;  ///< spans pushed since the last clear
  std::uint64_t dropped = 0;   ///< spans overwritten by ring wrap-around
  std::size_t buffered = 0;    ///< events currently held across all rings
  std::size_t threads = 0;     ///< thread buffers registered
};
TraceStats trace_stats();

/// A drained event, for tests and in-process consumers.
struct CollectedEvent {
  const char* name = nullptr;
  int tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::vector<TraceArg> args;
};

/// Snapshots every thread's ring (oldest first per thread). Caller must
/// ensure no span is in flight on other threads.
std::vector<CollectedEvent> collect_trace_events();

/// The Chrome trace-event JSON document for the current buffers.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; false when the file cannot be
/// opened.
bool write_chrome_trace(const std::string& path);

/// Empties every ring and resets the recorded/dropped counters (buffers
/// stay registered, re-capped to the current trace_ring_capacity()).
void clear_trace();

}  // namespace mch::obs
