// Constraint construction — the paper's Problems (6), (12), (13).
//
// Given a design and a row assignment, builds the relaxed legalization QP:
//
//   * one variable per single-height cell; one variable per occupied row
//     ("subcell") for each multi-row-height cell (paper §3.2);
//   * within every chip row, the (sub)cells assigned to it are ordered by
//     their global-placement x (ties by cell id), and each adjacent pair
//     (l, j) contributes a spacing row of B:  x_j − x_l ≥ w_l;
//   * fixed cells (macros/obstacles) contribute no variables; a movable
//     cell whose nearest preceding row entity is an obstacle gets the
//     single-sided bound  x_j ≥ obstacle_end  instead of a chain row (the
//     obstacle's right side is relaxed like the chip's right boundary and
//     repaired by the Tetris-like allocation);
//   * the subcell-equality constraints Ex = 0 are folded into the objective
//     with penalty λ (paper Eq. (13)), making the Hessian
//     K = Q + λEᵀE block diagonal with one block per cell:
//     a 1×1 identity block for singles, I_d + λ·Lap(chain) for a d-subcell
//     cell, where E stacks the d−1 chain differences x_{i,k+1} − x_{i,k};
//   * p_v = −x'_i for every variable v of cell i (Q is the identity, so a
//     d-row cell's displacement is weighted d times — moving tall cells
//     disturbs more rows, exactly as in the paper's formulation).
//
// The left chip boundary is the variable bound x ≥ 0 of the LCP; the right
// boundary is relaxed and repaired later by the Tetris-like allocation.
#pragma once

#include <cstddef>
#include <vector>

#include "db/design.h"
#include "lcp/qp.h"
#include "legal/row_assign.h"
#include "util/index.h"

namespace mch::legal {

struct ConstraintPartition;  // partition.h

/// Which cell and which of its subcells a QP variable represents. Packed to
/// 8 bytes (two 32-bit indices): the array has one entry per QP variable
/// and rides along with every model snapshot.
struct VariableInfo {
  index_t cell = 0;
  index_t subrow = 0;  ///< 0-based row offset within the cell
};

/// One connected component of the legalization QP, extracted as a
/// self-contained StructuredQp plus the scatter maps back to the global
/// numbering. Local variable/constraint order preserves the global
/// ascending order, so every per-row sum and per-block solve of a
/// sub-problem computes exactly what the monolithic system computes on the
/// same indices.
struct ComponentProblem {
  lcp::StructuredQp qp;
  std::vector<index_t> variables;    ///< local var -> global var
  std::vector<index_t> constraints;  ///< local row -> global B row
  /// Local rows whose predecessor was not globally adjacent: their
  /// tridiagonal Schur coupling must be dropped to match the monolithic
  /// approximation (see lcp::schur_tridiagonal).
  std::vector<bool> schur_coupling_breaks;
};

/// The assembled QP plus the bookkeeping to map solutions back to cells.
///
/// Every index array below stores mch::index_t: at multi-million-cell scale
/// these arrays (variables, per-cell maps, per-row lists, constraint rows)
/// are the model's memory spine, and halving them is a direct peak-RSS win.
struct LegalizationModel {
  /// cell_first_var value for fixed cells (they have no variables).
  /// index_t-typed so comparisons against the stored arrays never mix
  /// widths; widening it into a std::size_t local and comparing later
  /// still works (both sides widen to the same value).
  static constexpr index_t kNoVariable = kInvalidIndex;

  lcp::StructuredQp qp;
  double lambda = 0.0;
  std::vector<VariableInfo> variables;     ///< per QP variable
  std::vector<index_t> cell_first_var;     ///< cell -> first variable
  std::vector<index_t> cell_var_count;     ///< cell -> #variables (0=fixed)
  RowAssignment base_rows;                 ///< cell -> assigned base row
  /// Variables of each chip row in left-to-right constraint order.
  std::vector<std::vector<index_t>> row_variables;
  /// Chip row each spacing constraint (B row) was emitted in. Constraints
  /// are emitted row by row, so this is ascending; the incremental
  /// repartition uses it to walk only the constraints of affected rows.
  std::vector<index_t> constraint_row;

  std::size_t num_variables() const { return variables.size(); }

  /// Restored x position of a cell: the mean of its subcell variables
  /// (the exact value when the penalty held them together).
  double cell_x(const lcp::Vector& x, std::size_t cell) const;

  /// Largest |subcell − mean| over the cell's variables: the subcell
  /// mismatch the λ-penalty is meant to suppress (paper §4).
  double cell_mismatch(const lcp::Vector& x, std::size_t cell) const;

  /// Maximum mismatch over all cells.
  double max_mismatch(const lcp::Vector& x) const;

  /// Extracts the sub-problem spanning the given (sorted, ascending)
  /// variable and constraint index sets — one connected component as
  /// computed by legal::partition_model. The variable set must cover whole
  /// Hessian blocks and the constraints must only reference those
  /// variables; both hold for genuine components.
  ComponentProblem component_problem(const std::vector<index_t>& vars,
                                     const std::vector<index_t>& rows) const;
};

struct ModelOptions {
  double lambda = 1000.0;  ///< the paper's setting for Problem (12)
};

/// Builds the model for the given assignment (does not mutate the design).
///
/// Assembly is streamed: constraint rows are emitted chip-row by chip-row
/// directly into the final CSR arrays — no whole-design COO staging, no
/// pending-constraint list — so the build's transient memory is bounded by
/// one chip row's worth of work, not the constraint count. When
/// `partition_out` is non-null it additionally receives the constraint
/// partition, computed by a union-find running over the same stream (block
/// ties during the variable pass, chain ties at row emission); the result
/// is bit-identical to partition_model(model) at a fraction of the cost of
/// a separate sweep over the finished B.
LegalizationModel build_model(const db::Design& design,
                              const RowAssignment& base_rows,
                              const ModelOptions& options = {},
                              ConstraintPartition* partition_out = nullptr);

/// Reference assembler: stages every constraint in a COO triplet list and
/// converts at the end. Produces a bit-identical model to build_model —
/// ctest enforces this across the generator's spec families — and survives
/// as the oracle for that equivalence plus a baseline for the memory
/// scaling bench (bench/scaling_memory.cpp). Not for production use: its
/// staging roughly doubles the build's peak memory.
LegalizationModel build_model_monolithic(const db::Design& design,
                                         const RowAssignment& base_rows,
                                         const ModelOptions& options = {});

}  // namespace mch::legal
