#include "util/rss.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace mch::util {
namespace {

TEST(RssTest, PeakIsPositiveOnLinux) {
  // getrusage is POSIX; on the platforms this repo targets the high-water
  // mark of a running test binary is well above a few MB.
  EXPECT_GT(peak_rss_bytes(), std::size_t{1} << 20);
  EXPECT_GT(peak_rss_mb(), 1.0);
}

TEST(RssTest, PeakDominatesCurrentAndIsMonotone) {
  const std::size_t current = current_rss_bytes();
  if (current > 0)  // 0 = /proc unavailable, not "no memory"
    EXPECT_GE(peak_rss_bytes(), current);

  // The high-water mark never decreases, and a large transient allocation
  // must raise it even after the memory is freed again.
  const std::size_t before = peak_rss_bytes();
  {
    std::vector<char> ballast(64 << 20, 1);  // 64 MB, touched
    EXPECT_GE(peak_rss_bytes(), before);
  }
  const std::size_t after = peak_rss_bytes();
  EXPECT_GE(after, before);
  EXPECT_GE(after, before + (32 << 20));  // transient peak was recorded
}

TEST(RssTest, MbMatchesBytes) {
  EXPECT_NEAR(peak_rss_mb(),
              static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0),
              1e-9);
}

}  // namespace
}  // namespace mch::util
