// Scheduler determinism across designs: the same queue of mixed-size
// match-mode requests must produce bitwise-identical positions per request
// at 1/4/16 threads, under forced steal-heavy scheduling, and when the
// requests are submitted by concurrent clients sharing the worker pool.
// Work stealing and cross-job interleaving may only move wall-clock time
// around — never results (the contract documented in runtime/scheduler.h).
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "db/design.h"
#include "gen/generator.h"
#include "legal/flow.h"
#include "runtime/runtime.h"
#include "runtime/scheduler.h"
#include "service/session.h"

namespace mch::service {
namespace {

/// Heterogeneous request mix: small components-heavy designs next to
/// larger ones, so jobs of very different lengths share the pool.
struct RequestSpec {
  std::size_t cells;
  std::uint64_t seed;
};
const std::vector<RequestSpec>& request_mix() {
  static const std::vector<RequestSpec> specs = {
      {400, 101}, {1600, 102}, {700, 103},
      {2400, 104}, {500, 105}, {1100, 106}};
  return specs;
}

db::Design make_design(const RequestSpec& spec) {
  gen::GeneratorOptions options;
  options.seed = spec.seed;
  return gen::generate_random_design(spec.cells - spec.cells / 10,
                                     spec.cells / 10, 0.7, options);
}

struct Positions {
  std::vector<double> x, y;
};

Positions snapshot(const db::Design& design) {
  Positions p;
  p.x.reserve(design.num_cells());
  p.y.reserve(design.num_cells());
  for (std::size_t c = 0; c < design.num_cells(); ++c) {
    p.x.push_back(design.cells()[c].x);
    p.y.push_back(design.cells()[c].y);
  }
  return p;
}

void expect_bitwise_equal(const Positions& got, const Positions& want,
                          const char* label, std::size_t request) {
  ASSERT_EQ(got.x.size(), want.x.size());
  for (std::size_t c = 0; c < got.x.size(); ++c) {
    ASSERT_EQ(got.x[c], want.x[c])
        << label << ": request " << request << " cell " << c;
    ASSERT_EQ(got.y[c], want.y[c])
        << label << ": request " << request << " cell " << c;
  }
}

Positions serve_one(const RequestSpec& spec) {
  LegalizationSession session(make_design(spec));
  const SessionResult result = session.full_legalize(SolveMode::kMatch);
  EXPECT_TRUE(result.legal) << result.legality_summary;
  return snapshot(session.design());
}

class SchedulerDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The one-shot reference for every request, computed serially once per
    // process: the session's match-mode answer is contracted bitwise to
    // legal::legalize.
    static const std::vector<Positions> reference = [] {
      runtime::Runtime::configure(1);
      std::vector<Positions> snapshots;
      for (const RequestSpec& spec : request_mix()) {
        db::Design design = make_design(spec);
        legal::FlowOptions options;
        options.solver.partition = legal::PartitionMode::kMatch;
        const legal::FlowResult result = legal::legalize(design, options);
        EXPECT_TRUE(result.legal);
        snapshots.push_back(snapshot(design));
      }
      return snapshots;
    }();
    reference_ = reference;
  }

  void TearDown() override {
    runtime::Runtime::configure(1);
    runtime::Scheduler::reset_knobs();
  }

  std::vector<Positions> reference_;
};

TEST_F(SchedulerDeterminismTest, QueueBitwiseStableAcrossThreadCounts) {
  for (const unsigned threads : {1u, 4u, 16u}) {
    runtime::Runtime::configure(threads);
    for (std::size_t r = 0; r < request_mix().size(); ++r) {
      const Positions got = serve_one(request_mix()[r]);
      expect_bitwise_equal(got, reference_[r], "threads", r);
    }
  }
}

TEST_F(SchedulerDeterminismTest, QueueBitwiseStableUnderStealHeavySchedule) {
  runtime::Runtime::configure(4);
  runtime::Scheduler::set_steal_first(true);
  for (std::size_t r = 0; r < request_mix().size(); ++r) {
    const Positions got = serve_one(request_mix()[r]);
    expect_bitwise_equal(got, reference_[r], "steal-first", r);
  }
}

// The multi-client case: several threads submit their requests at once, so
// component solves from different designs interleave on the shared workers
// (the exact situation the old pool aborted on). Every client must still
// get the serial reference answer, bitwise.
TEST_F(SchedulerDeterminismTest, ConcurrentClientsBitwiseStable) {
  runtime::Runtime::configure(4);
  const std::size_t num = request_mix().size();
  std::vector<Positions> got(num);
  std::atomic<int> ready{0};
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      // Client c serves requests c, c+kClients, ... — all clients overlap.
      for (std::size_t r = static_cast<std::size_t>(client); r < num;
           r += kClients)
        got[r] = serve_one(request_mix()[r]);
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t r = 0; r < num; ++r)
    expect_bitwise_equal(got[r], reference_[r], "concurrent", r);
}

}  // namespace
}  // namespace mch::service
