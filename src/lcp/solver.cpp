#include "lcp/solver.h"

#include <cstdlib>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/timer.h"

namespace mch::lcp {

namespace {

class MmsimLcpSolver final : public LcpSolver {
 public:
  MmsimLcpSolver(const StructuredQp& qp, const LcpSolverConfig& config)
      : solver_(qp, config.mmsim, config.schur_coupling_breaks),
        num_variables_(qp.num_variables()),
        num_constraints_(qp.num_constraints()) {}

  LcpSolverKind kind() const override { return LcpSolverKind::kMmsim; }

  LcpSolveResult solve() const override { return pack(solver_.solve()); }

  LcpSolveResult solve(SolverWorkspace::Slot* slot,
                       bool warm_start) const override {
    if (slot == nullptr) return solve();
    const Vector* s0 = nullptr;
    if (warm_start && slot->warm_variables == num_variables_ &&
        slot->warm_constraints == num_constraints_ &&
        slot->warm_s.size() == num_variables_ + num_constraints_) {
      s0 = &slot->warm_s;
    }
    const bool warm = s0 != nullptr;
    MmsimResult mmsim = solver_.solve_in(slot->state, s0);
    slot->warm_s = std::move(mmsim.s);
    slot->warm_variables = num_variables_;
    slot->warm_constraints = num_constraints_;
    LcpSolveResult result = pack(std::move(mmsim));
    result.warm_started = warm;
    return result;
  }

 private:
  LcpSolveResult pack(MmsimResult mmsim) const {
    LcpSolveResult result;
    result.x = std::move(mmsim.x);
    result.dual = std::move(mmsim.dual);
    result.iterations = mmsim.iterations;
    result.mixed_iterations = mmsim.mixed_iterations;
    result.converged = mmsim.converged;
    result.setup_seconds = mmsim.setup_seconds;
    result.solve_seconds = mmsim.solve_seconds;
    result.phase = mmsim.phase;
    return result;
  }

  MmsimSolver solver_;
  std::size_t num_variables_ = 0;
  std::size_t num_constraints_ = 0;
};

class PsorLcpSolver final : public LcpSolver {
 public:
  PsorLcpSolver(const StructuredQp& qp, const LcpSolverConfig& config)
      : options_(config.psor) {
    MCH_CHECK_MSG(qp.num_constraints() == 0,
                  "PSOR requires a positive diagonal; the saddle KKT matrix "
                  "of a constrained QP has zero diagonal entries (m = "
                      << qp.num_constraints() << ")");
    Timer timer;
    // Bound-constrained QP: LCP(p, K) with K SPD — PSOR's home turf.
    const std::size_t n = qp.num_variables();
    problem_.A = linalg::DenseMatrix(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) problem_.A(i, j) = qp.K.entry(i, j);
    problem_.q = qp.p;
    setup_seconds_ = timer.seconds();
  }

  LcpSolverKind kind() const override { return LcpSolverKind::kPsor; }

  LcpSolveResult solve() const override {
    Timer timer;
    PsorResult psor = solve_psor(problem_, options_);
    LcpSolveResult result;
    result.x = std::move(psor.z);
    result.iterations = psor.iterations;
    result.converged = psor.converged;
    result.setup_seconds = setup_seconds_;
    result.solve_seconds = timer.seconds();
    return result;
  }

  LcpSolveResult solve(SolverWorkspace::Slot* slot,
                       bool warm_start) const override {
    if (slot == nullptr) return solve();
    Timer timer;
    const std::size_t n = problem_.size();
    const bool warm = warm_start && slot->warm_variables == n &&
                      slot->warm_constraints == 0 && slot->psor_z.size() == n;
    const PsorRunStats stats =
        solve_psor_in(problem_, options_, slot->psor_z, warm);
    slot->warm_variables = n;
    slot->warm_constraints = 0;
    LcpSolveResult result;
    result.x = slot->psor_z;  // buffer stays in the slot for the next solve
    result.iterations = stats.iterations;
    result.converged = stats.converged;
    result.warm_started = warm;
    result.setup_seconds = setup_seconds_;
    result.solve_seconds = timer.seconds();
    return result;
  }

 private:
  PsorOptions options_;
  DenseLcp problem_;
  double setup_seconds_ = 0.0;
};

class LemkeLcpSolver final : public LcpSolver {
 public:
  LemkeLcpSolver(const StructuredQp& qp, const LcpSolverConfig& config)
      : num_variables_(qp.num_variables()),
        max_pivots_(config.lemke_max_pivots) {
    Timer timer;
    problem_ = qp.to_dense_lcp();
    setup_seconds_ = timer.seconds();
  }

  LcpSolverKind kind() const override { return LcpSolverKind::kLemke; }

  LcpSolveResult solve() const override {
    Timer timer;
    LemkeResult lemke = solve_lemke(problem_, max_pivots_);
    LcpSolveResult result;
    const auto split =
        lemke.z.begin() + static_cast<std::ptrdiff_t>(num_variables_);
    result.x.assign(lemke.z.begin(), split);
    result.dual.assign(split, lemke.z.end());
    result.iterations = lemke.pivots;
    result.converged = lemke.status == LemkeStatus::kSolved;
    result.setup_seconds = setup_seconds_;
    result.solve_seconds = timer.seconds();
    return result;
  }

 private:
  std::size_t num_variables_;
  std::size_t max_pivots_;
  DenseLcp problem_;
  double setup_seconds_ = 0.0;
};

}  // namespace

LcpSolveResult LcpSolver::solve(SolverWorkspace::Slot* /*slot*/,
                                bool /*warm_start*/) const {
  return solve();
}

const char* to_string(LcpSolverKind kind) {
  switch (kind) {
    case LcpSolverKind::kMmsim:
      return "mmsim";
    case LcpSolverKind::kPsor:
      return "psor";
    case LcpSolverKind::kLemke:
      return "lemke";
  }
  return "unknown";
}

std::unique_ptr<LcpSolver> make_lcp_solver(LcpSolverKind kind,
                                           const StructuredQp& qp,
                                           const LcpSolverConfig& config) {
  switch (kind) {
    case LcpSolverKind::kMmsim:
      return std::make_unique<MmsimLcpSolver>(qp, config);
    case LcpSolverKind::kPsor:
      return std::make_unique<PsorLcpSolver>(qp, config);
    case LcpSolverKind::kLemke:
      return std::make_unique<LemkeLcpSolver>(qp, config);
  }
  MCH_CHECK_MSG(false, "unknown LcpSolverKind");
  return nullptr;
}

const char* to_string(RecoveryRung rung) {
  switch (rung) {
    case RecoveryRung::kPrimary:
      return "primary";
    case RecoveryRung::kEscalated:
      return "escalated";
    case RecoveryRung::kReference:
      return "reference";
    case RecoveryRung::kPsor:
      return "psor";
    case RecoveryRung::kLemke:
      return "lemke";
    case RecoveryRung::kExhausted:
      return "exhausted";
  }
  return "unknown";
}

RecoveryOptions resolve_recovery_options(RecoveryOptions base) {
  if (base.forced_failures == 0) {
    if (const char* env = std::getenv("MCH_FORCE_SOLVER_FAILURE")) {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(env, &end, 10);
      if (end != env)
        base.forced_failures = static_cast<std::size_t>(value);
    }
  }
  return base;
}

namespace {

/// The rung-kEscalated parameter set: θ* re-probed for this system (the
/// probe is capped at the configured θ*, so it can only help), γ relaxed,
/// and every iteration/pivot budget multiplied.
LcpSolverConfig escalate_config(const StructuredQp& qp,
                                const LcpSolverConfig& config,
                                const RecoveryOptions& recovery) {
  LcpSolverConfig escalated = config;
  const std::size_t mult = std::max<std::size_t>(1, recovery.budget_multiplier);
  if (recovery.reprobe_theta && qp.num_constraints() > 0) {
    const MmsimSolver probe(qp, config.mmsim, config.schur_coupling_breaks);
    escalated.mmsim.theta = probe.suggest_theta();
  }
  if (recovery.relaxed_gamma > 0.0)
    escalated.mmsim.gamma = recovery.relaxed_gamma;
  escalated.mmsim.max_iterations = config.mmsim.max_iterations * mult;
  escalated.psor.max_iterations = config.psor.max_iterations * mult;
  escalated.lemke_max_pivots = config.lemke_max_pivots * mult;
  return escalated;
}

}  // namespace

RecoveredSolve solve_with_recovery(LcpSolverKind primary,
                                   const StructuredQp& qp,
                                   const LcpSolverConfig& config,
                                   const RecoveryOptions& recovery,
                                   SolverWorkspace::Slot* slot,
                                   bool warm_start) {
  RecoveredSolve out;
  const auto attempt = [&](LcpSolverKind kind, const LcpSolverConfig& cfg,
                           RecoveryRung rung, bool warm) {
    obs::counter("recovery.attempts", "rung", to_string(rung)).add();
    LcpSolveResult result = make_lcp_solver(kind, qp, cfg)->solve(slot, warm);
    ++out.attempts;
    const bool forced_fail = out.attempts <= recovery.forced_failures;
    if (result.converged && !forced_fail) {
      if (result.warm_started) {
        static obs::Counter& warm_hits =
            obs::counter("solve.warm_start_hits");
        warm_hits.add();
      }
      obs::counter("recovery.solved", "rung", to_string(rung)).add();
      out.result = std::move(result);
      out.rung = rung;
      return true;
    }
    out.wasted_iterations += result.iterations;
    return false;
  };

  if (attempt(primary, config, RecoveryRung::kPrimary, warm_start)) return out;
  if (!recovery.enabled) {
    out.rung = RecoveryRung::kExhausted;
    return out;
  }

  // Rung 1: the primary solver again with escalated parameters. An MMSIM
  // retry warm-starts from the failed iterate (kept in the slot), so a pure
  // budget exhaustion resumes where it stopped.
  const LcpSolverConfig escalated = escalate_config(qp, config, recovery);
  if (attempt(primary, escalated, RecoveryRung::kEscalated,
              /*warm=*/slot != nullptr))
    return out;

  // Rung 2: the retained stage-by-stage MMSIM reference path, cold-started.
  // The fused kernels are bitwise-contracted to it, so this rung is
  // insurance against the contract being violated, not expected to differ.
  if (primary != LcpSolverKind::kMmsim || escalated.mmsim.fused) {
    LcpSolverConfig reference = escalated;
    reference.mmsim.fused = false;
    if (attempt(LcpSolverKind::kMmsim, reference, RecoveryRung::kReference,
                /*warm=*/false))
      return out;
  }

  // Rung 3: PSOR, applicable to bound-constrained QPs the adapter can
  // afford to densify.
  if (primary != LcpSolverKind::kPsor && qp.num_constraints() == 0 &&
      qp.num_variables() <= recovery.psor_fallback_max_variables) {
    if (attempt(LcpSolverKind::kPsor, escalated, RecoveryRung::kPsor,
                /*warm=*/false))
      return out;
  }

  // Rung 4: exact Lemke pivoting for systems small enough to densify.
  if (primary != LcpSolverKind::kLemke &&
      qp.lcp_size() <= recovery.lemke_fallback_max_size) {
    if (attempt(LcpSolverKind::kLemke, escalated, RecoveryRung::kLemke,
                /*warm=*/false))
      return out;
  }

  out.rung = RecoveryRung::kExhausted;
  {
    static obs::Counter& exhausted = obs::counter("recovery.exhausted");
    exhausted.add();
  }
  return out;
}

}  // namespace mch::lcp
