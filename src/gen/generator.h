// Synthetic mixed-cell-height design generator.
//
// Substitutes for the (non-public) GP results of the paper's benchmark set.
// The construction mirrors how real global placements look to a legalizer:
//
//   1. Cell population: single-height cells with widths drawn from a small
//      discrete range of sites; double-height cells with halved widths (the
//      paper's modification rule); optional triple/quad-height cells for the
//      generality experiments.
//   2. Chip sizing: near-square chip dimensioned so that total cell area /
//      chip area equals the requested density.
//   3. Base placement: a legal Tetris-style packing sweep — each cell takes
//      the leftmost cursor among a few randomly sampled rail-compatible
//      rows, with exponential random gaps sized so the packing fills the
//      row width. This yields a spread-out, legal-like configuration with a
//      well-defined cell ordering.
//   4. GP perturbation: Gaussian noise on x (a few sites) and y (a fraction
//      of a row) turns the base into a realistic global placement: locally
//      overlapping, off-grid, off-row — exactly what a legalizer receives.
//   5. Netlist: spatially local nets (2–5 pins on nearby cells via a bucket
//      grid), matching the post-GP locality that makes legalization ΔHPWL
//      small in the paper.
//
// Fully deterministic for a given (spec, options.seed).
#pragma once

#include <cstdint>

#include "db/design.h"
#include "gen/spec.h"

namespace mch::gen {

struct GeneratorOptions {
  /// Fraction of the spec's cell counts to generate (1.0 = full scale).
  /// Benches default to 0.05 so the whole suite runs in seconds; the shapes
  /// of all experiments are scale-invariant (see EXPERIMENTS.md).
  double scale = 1.0;
  std::uint64_t seed = 1;

  double site_width = 1.0;
  double row_height = 12.0;  ///< ISPD-2015-like row height : site width ratio

  /// Single-height cell widths are uniform in [min, max] sites; double-
  /// height cells get half the drawn width (the paper's benchmark rule).
  int min_width_sites = 2;
  int max_width_sites = 12;

  /// GP perturbation magnitudes. Real global placements are *near-legal*:
  /// row loads stay balanced and overlaps are local. Large y-noise would
  /// overload random rows, which no fixed-row legalizer (the paper's
  /// included) can absorb at high density — so the defaults keep the
  /// perturbation a fraction of a row.
  double noise_x_sites = 1.5;  ///< σ of GP x perturbation, in site widths
  double noise_y_rows = 0.1;   ///< σ of GP y perturbation, in row heights

  /// Relative spread of the inter-cell gaps in the base packing. Real GP
  /// density is smooth, so gaps are near-uniform (low variance); 1.0 would
  /// give fully random (exponential-like) gaps, which produce local
  /// overloads no real global placement exhibits.
  double gap_jitter = 0.5;

  double nets_per_cell = 1.1;
  int min_pins = 2;
  int max_pins = 5;

  /// Extensions beyond the paper's 10%-double benchmarks: fractions of the
  /// single-cell budget converted to triple/quadruple height.
  double triple_fraction = 0.0;
  double quad_fraction = 0.0;

  /// Number of candidate rows sampled per cell during the packing sweep.
  int row_candidates = 8;

  /// Fixed macros (obstacles). The paper's benchmarks dropped the contest's
  /// fence regions/blockages, so the suite default is 0; obstacle-aware
  /// experiments (bench/ablation_obstacles) raise it. Macros are placed
  /// first at random non-overlapping row/site-aligned spots; the packing
  /// sweep and the GP synthesis both avoid them. Chip sizing accounts for
  /// macro area so the *effective* movable density stays at `density`.
  std::size_t fixed_macros = 0;
  std::size_t macro_height_rows = 6;
  double macro_width_sites = 40.0;
};

/// Generates the design for a Table-1 benchmark spec.
db::Design generate_design(const BenchmarkSpec& spec,
                           const GeneratorOptions& options = {});

/// Generates an ad-hoc design with explicit cell counts and density.
db::Design generate_random_design(std::size_t num_single,
                                  std::size_t num_double, double density,
                                  const GeneratorOptions& options = {});

/// Pathological inputs for the solver-recovery fault-injection tests —
/// conditions generate_random_design deliberately avoids (its GP synthesis
/// stays near-legal), handcrafted so every rung of the escalation ladder
/// can be exercised on something other than a healthy design.
enum class DegenerateMode {
  /// Triple-height cells stacked into one dense column: every spacing
  /// constraint in every coupled row is active at the optimum and the rows
  /// all share cells, so the KKT system is one big stiff component.
  kNearSingularCoupling,
  /// Total movable width ≈ 1.7× the whole chip's site capacity: no legal
  /// placement exists, and the spacing LCP is pushed against an infeasible
  /// constraint set.
  kInfeasibleRowCapacity,
  /// Two fixed macro walls leave a mid-chip corridor far narrower than the
  /// movable cells crowded into it.
  kObstacleSaturatedRows,
};

const char* to_string(DegenerateMode mode);

/// Builds the requested pathological design. Positions are committed as the
/// GP input (gp == current), fully deterministic for a given (mode, seed).
db::Design generate_degenerate_design(DegenerateMode mode,
                                      std::size_t num_cells,
                                      std::uint64_t seed = 1);

/// Families of the production-scale sweep (bench/scaling_memory): the same
/// construction as generate_random_design, differing in what stresses the
/// model's memory spine hardest at 1M–10M cells.
enum class ScaleVariant {
  /// The paper's benchmark mix: 10% double-height, density 0.8, no macros.
  kBaseline,
  /// One fixed macro per ~2000 cells. Obstacles split row chains, so the
  /// component count explodes while each row's obstacle bookkeeping grows.
  kObstacleHeavy,
  /// Density 0.92: rows near capacity, long spacing chains, many active
  /// constraints — the largest constraint systems per cell.
  kHighUtilization,
};

const char* to_string(ScaleVariant variant);

/// Generates a design of ~num_cells cells from the given family. Thin
/// deterministic wrapper over generate_random_design — same (variant,
/// num_cells, seed) always yields the same design.
db::Design generate_scale_design(ScaleVariant variant, std::size_t num_cells,
                                 std::uint64_t seed = 1);

}  // namespace mch::gen
