// Partitioner tests: component membership on hand-built designs whose rows
// are split by obstacles, sub-problem extraction, and the solve-invariance
// guarantees of the partitioned legalizer (lockstep == monolithic bitwise;
// tiered == monolithic to solver tolerance).
#include "legal/partition.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "gen/generator.h"
#include "legal/mmsim_legalizer.h"
#include "legal/model.h"
#include "legal/row_assign.h"
#include "util/rng.h"

namespace mch::legal {
namespace {

db::Chip two_row_chip() {
  db::Chip chip;
  chip.num_rows = 2;
  chip.num_sites = 100;
  chip.site_width = 1.0;
  chip.row_height = 10.0;
  return chip;
}

void add_movable(db::Design& design, double width, double gp_x, double gp_y) {
  db::Cell cell;
  cell.width = width;
  cell.gp_x = gp_x;
  cell.gp_y = gp_y;
  design.add_cell(cell);
}

void add_obstacle(db::Design& design, double x, double y, double width) {
  db::Cell cell;
  cell.fixed = true;
  cell.width = width;
  cell.x = x;
  cell.y = y;
  cell.gp_x = x;
  cell.gp_y = y;
  design.add_cell(cell);
}

/// Row 0: a, b | obstacle | c, d.  Row 1: e, f.  Three components.
db::Design split_row_design() {
  db::Design design(two_row_chip());
  add_movable(design, 3.0, 5.0, 0.0);    // a → var 0
  add_movable(design, 3.0, 12.0, 0.0);   // b → var 1
  add_movable(design, 3.0, 40.0, 0.0);   // c → var 2 (right of obstacle)
  add_movable(design, 3.0, 48.0, 0.0);   // d → var 3
  add_movable(design, 3.0, 8.0, 10.0);   // e → var 4
  add_movable(design, 3.0, 15.0, 10.0);  // f → var 5
  add_obstacle(design, 20.0, 0.0, 10.0);
  return design;
}

TEST(PartitionTest, ObstacleSplitsRowIntoComponents) {
  db::Design design = split_row_design();
  const RowAssignment rows = assign_rows(design);
  const LegalizationModel model = build_model(design, rows);
  ASSERT_EQ(model.num_variables(), 6u);
  // Constraints: a-b chain, obstacle bound on c, c-d chain, e-f chain.
  ASSERT_EQ(model.qp.num_constraints(), 4u);

  const ConstraintPartition partition = partition_model(model);
  ASSERT_EQ(partition.num_components(), 3u);
  EXPECT_EQ(partition.variable_component,
            (std::vector<mch::index_t>{0, 0, 1, 1, 2, 2}));
  EXPECT_EQ(partition.component_variables[0],
            (std::vector<mch::index_t>{0, 1}));
  EXPECT_EQ(partition.component_variables[1],
            (std::vector<mch::index_t>{2, 3}));
  EXPECT_EQ(partition.component_variables[2],
            (std::vector<mch::index_t>{4, 5}));
  EXPECT_EQ(partition.constraint_component,
            (std::vector<mch::index_t>{0, 1, 1, 2}));
  EXPECT_EQ(partition.component_constraints[1],
            (std::vector<mch::index_t>{1, 2}));

  EXPECT_EQ(partition.component_size(0), 3u);  // 2 vars + 1 constraint
  EXPECT_EQ(partition.component_size(1), 4u);
  EXPECT_EQ(partition.max_component_size(), 4u);
  EXPECT_DOUBLE_EQ(partition.mean_component_size(), 10.0 / 3.0);
}

TEST(PartitionTest, TallCellBridgesRows) {
  db::Design design = split_row_design();
  // A double-height cell left of the obstacle chains into row 0 (with a, b)
  // and row 1 (with e, f), merging their components.
  db::Cell tall;
  tall.width = 2.0;
  tall.height_rows = 2;
  tall.bottom_rail = db::RailType::kVss;
  tall.gp_x = 2.0;
  tall.gp_y = 0.0;
  design.add_cell(tall);

  const RowAssignment rows = assign_rows(design);
  const LegalizationModel model = build_model(design, rows);
  const ConstraintPartition partition = partition_model(model);
  ASSERT_EQ(partition.num_components(), 2u);
  // {tall, a, b, e, f} together; {c, d} still isolated by the obstacle.
  const std::size_t cd_component = partition.variable_component[2];
  EXPECT_EQ(partition.component_variables[cd_component],
            (std::vector<mch::index_t>{2, 3}));
  EXPECT_EQ(partition.variable_component[0],
            partition.variable_component[4]);
}

TEST(PartitionTest, ComponentProblemExtraction) {
  db::Design design = split_row_design();
  const RowAssignment rows = assign_rows(design);
  const LegalizationModel model = build_model(design, rows);
  const ConstraintPartition partition = partition_model(model);

  // Component {c, d}: the obstacle bound on c plus the c-d chain.
  const ComponentProblem component = model.component_problem(
      partition.component_variables[1], partition.component_constraints[1]);
  EXPECT_EQ(component.variables, (std::vector<mch::index_t>{2, 3}));
  EXPECT_EQ(component.constraints, (std::vector<mch::index_t>{1, 2}));
  ASSERT_EQ(component.qp.num_variables(), 2u);
  ASSERT_EQ(component.qp.num_constraints(), 2u);
  EXPECT_EQ(component.qp.p, (lcp::Vector{-40.0, -48.0}));
  // Row 0: obstacle bound x_c ≥ 30 (obstacle end). Row 1: x_d − x_c ≥ w_c.
  EXPECT_DOUBLE_EQ(component.qp.B.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(component.qp.B.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(component.qp.B.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(component.qp.B.at(1, 1), 1.0);
  EXPECT_EQ(component.qp.b, (lcp::Vector{30.0, 3.0}));
  // Global rows 1 and 2 are adjacent, so only the leading break is set.
  EXPECT_EQ(component.schur_coupling_breaks,
            (std::vector<bool>{true, false}));
}

db::Design invariance_design() {
  gen::GeneratorOptions options;
  options.seed = 11;
  options.nets_per_cell = 0.0;
  options.fixed_macros = 6;
  return gen::generate_random_design(300, 40, 0.6, options);
}

MmsimLegalizerStats run_mode(const db::Design& base, PartitionMode mode,
                             db::Design& out, bool auto_theta = false) {
  out = base;
  const RowAssignment rows = assign_rows(out);
  MmsimLegalizerOptions options;
  options.partition = mode;
  options.auto_theta = auto_theta;
  return mmsim_legalize_continuous(out, rows, options);
}

// The tentpole guarantee: the lockstep partitioned solve reproduces the
// monolithic iterates exactly — positions bitwise equal, same iteration
// count, objective identical to rounding (≤ 1e-9).
TEST(PartitionTest, LockstepMatchesMonolithicBitwise) {
  const db::Design base = invariance_design();
  db::Design mono, part;
  const MmsimLegalizerStats off = run_mode(base, PartitionMode::kOff, mono);
  const MmsimLegalizerStats match =
      run_mode(base, PartitionMode::kMatch, part);

  EXPECT_EQ(off.num_components, 0u);
  ASSERT_GT(match.num_components, 1u);
  EXPECT_EQ(match.components_mmsim, match.num_components);
  EXPECT_EQ(off.iterations, match.iterations);
  EXPECT_EQ(off.converged, match.converged);
  EXPECT_NEAR(off.objective, match.objective, 1e-9);
  EXPECT_EQ(off.max_mismatch, match.max_mismatch);
  ASSERT_EQ(mono.num_cells(), part.num_cells());
  for (std::size_t c = 0; c < mono.num_cells(); ++c) {
    EXPECT_EQ(mono.cells()[c].x, part.cells()[c].x) << "cell " << c;
    EXPECT_EQ(mono.cells()[c].y, part.cells()[c].y) << "cell " << c;
  }
}

TEST(PartitionTest, LockstepMatchesMonolithicUnderAutoTheta) {
  const db::Design base = invariance_design();
  db::Design mono, part;
  const MmsimLegalizerStats off =
      run_mode(base, PartitionMode::kOff, mono, /*auto_theta=*/true);
  const MmsimLegalizerStats match =
      run_mode(base, PartitionMode::kMatch, part, /*auto_theta=*/true);
  // The θ probe runs on the monolithic system in every mode.
  EXPECT_EQ(off.theta_used, match.theta_used);
  EXPECT_EQ(off.iterations, match.iterations);
  for (std::size_t c = 0; c < mono.num_cells(); ++c)
    EXPECT_EQ(mono.cells()[c].x, part.cells()[c].x) << "cell " << c;
}

TEST(PartitionTest, TieredMatchesMonolithicWithinTolerance) {
  const db::Design base = invariance_design();
  db::Design mono, part;
  const MmsimLegalizerStats off = run_mode(base, PartitionMode::kOff, mono);
  const MmsimLegalizerStats tiered =
      run_mode(base, PartitionMode::kTiered, part);

  ASSERT_GT(tiered.num_components, 1u);
  EXPECT_TRUE(tiered.converged);
  EXPECT_EQ(tiered.components_mmsim + tiered.components_psor +
                tiered.components_lemke,
            tiered.num_components);
  // Independent termination: small components stop early, so the summed
  // iteration count beats every-component-runs-to-the-global-stop.
  EXPECT_LT(tiered.component_iterations,
            off.iterations * tiered.num_components);
  EXPECT_NEAR(tiered.objective, off.objective,
              1e-6 * (1.0 + std::abs(off.objective)));
  for (std::size_t c = 0; c < mono.num_cells(); ++c)
    EXPECT_NEAR(mono.cells()[c].x, part.cells()[c].x, 1e-2) << "cell " << c;
}

TEST(PartitionTest, EnvResolvesAutoMode) {
  const char* saved = std::getenv("MCH_PARTITION");
  const std::string saved_value = saved ? saved : "";

  const db::Design base = invariance_design();
  db::Design scratch;

  ::setenv("MCH_PARTITION", "off", 1);
  EXPECT_EQ(run_mode(base, PartitionMode::kAuto, scratch).num_components,
            0u);
  ::setenv("MCH_PARTITION", "tiered", 1);
  const MmsimLegalizerStats tiered =
      run_mode(base, PartitionMode::kAuto, scratch);
  EXPECT_GT(tiered.num_components, 1u);
  EXPECT_GT(tiered.components_lemke + tiered.components_psor, 0u);
  ::unsetenv("MCH_PARTITION");
  EXPECT_GT(run_mode(base, PartitionMode::kAuto, scratch).num_components,
            1u);  // default: match

  if (saved)
    ::setenv("MCH_PARTITION", saved_value.c_str(), 1);
  else
    ::unsetenv("MCH_PARTITION");
}

void expect_same_partition(const ConstraintPartition& a,
                           const ConstraintPartition& b) {
  EXPECT_EQ(a.variable_component, b.variable_component);
  EXPECT_EQ(a.constraint_component, b.constraint_component);
  EXPECT_EQ(a.component_variables, b.component_variables);
  EXPECT_EQ(a.component_constraints, b.component_constraints);
}

/// Applies an ECO batch the way the service layer does — db helpers plus
/// delta tracking — and returns the delta. `rows` is updated in place.
PartitionDelta apply_eco(db::Design& design, RowAssignment& rows,
                         const std::vector<std::size_t>& moves,
                         const std::vector<double>& gp_x,
                         const std::vector<double>& gp_y) {
  PartitionDelta delta;
  delta.affected_rows.assign(design.chip().num_rows, 0);
  const auto mark = [&](std::size_t first, std::size_t count) {
    for (std::size_t r = first;
         r < std::min(first + count, design.chip().num_rows); ++r)
      delta.affected_rows[r] = 1;
  };
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const std::size_t id = moves[i];
    mark(rows[id], design.cells()[id].height_rows);
    design.move_cell(id, gp_x[i], gp_y[i]);
    rows[id] = design.nearest_legal_row(design.cells()[id]);
    mark(rows[id], design.cells()[id].height_rows);
  }
  delta.touched_cells.assign(design.num_cells(), 0);
  for (const std::size_t id : moves) delta.touched_cells[id] = 1;
  return delta;
}

TEST(PartitionTest, RepartitionMatchesScratchOnHandBuiltMove) {
  db::Design design = split_row_design();
  RowAssignment rows = assign_rows(design);
  const LegalizationModel before = build_model(design, rows);
  const ConstraintPartition part_before = partition_model(before);
  ASSERT_EQ(part_before.num_components(), 3u);

  // Move c from right of the obstacle into row 1: components merge.
  const PartitionDelta delta =
      apply_eco(design, rows, {2}, {8.0}, {10.0});
  const LegalizationModel after = build_model(design, rows);
  expect_same_partition(
      repartition_model(after, before, part_before, delta),
      partition_model(after));
}

TEST(PartitionTest, RepartitionMatchesScratchOnRandomEcoStream) {
  gen::GeneratorOptions options;
  options.seed = 31;
  db::Design design = gen::generate_random_design(1800, 200, 0.7, options);
  RowAssignment rows = assign_rows(design);
  LegalizationModel model = build_model(design, rows);
  ConstraintPartition partition = partition_model(model);
  ASSERT_GT(partition.num_components(), 1u);

  Rng rng(57);
  for (int batch = 0; batch < 4; ++batch) {
    std::vector<std::size_t> moves;
    std::vector<double> gp_x;
    std::vector<double> gp_y;
    while (moves.size() < 7) {
      const auto id = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(design.num_cells()) - 1));
      if (design.cells()[id].fixed) continue;
      moves.push_back(id);
      gp_x.push_back(design.cells()[id].gp_x +
                     rng.normal(0.0, 8.0 * design.chip().site_width));
      gp_y.push_back(design.cells()[id].gp_y +
                     rng.normal(0.0, 1.5 * design.chip().row_height));
    }
    const PartitionDelta delta = apply_eco(design, rows, moves, gp_x, gp_y);
    LegalizationModel after = build_model(design, rows);
    const ConstraintPartition scratch = partition_model(after);
    expect_same_partition(
        repartition_model(after, model, partition, delta), scratch);
    model = std::move(after);
    partition = scratch;
  }
}

}  // namespace
}  // namespace mch::legal
