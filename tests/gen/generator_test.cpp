#include "gen/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "db/legality.h"

namespace mch::gen {
namespace {

GeneratorOptions small_options() {
  GeneratorOptions opts;
  opts.seed = 5;
  return opts;
}

TEST(GeneratorTest, CellCountsMatchRequest) {
  const db::Design d = generate_random_design(200, 30, 0.5, small_options());
  EXPECT_EQ(d.num_cells(), 230u);
  EXPECT_EQ(d.count_cells_with_height(1), 200u);
  EXPECT_EQ(d.count_cells_with_height(2), 30u);
}

TEST(GeneratorTest, DensityApproximatelyHonored) {
  for (const double target : {0.2, 0.5, 0.8}) {
    const db::Design d =
        generate_random_design(500, 50, target, small_options());
    EXPECT_NEAR(d.density(), target, 0.08) << "target " << target;
  }
}

TEST(GeneratorTest, Deterministic) {
  const db::Design a = generate_random_design(100, 10, 0.5, small_options());
  const db::Design b = generate_random_design(100, 10, 0.5, small_options());
  ASSERT_EQ(a.num_cells(), b.num_cells());
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells()[i].gp_x, b.cells()[i].gp_x);
    EXPECT_DOUBLE_EQ(a.cells()[i].gp_y, b.cells()[i].gp_y);
    EXPECT_DOUBLE_EQ(a.cells()[i].width, b.cells()[i].width);
  }
  ASSERT_EQ(a.num_nets(), b.num_nets());
}

TEST(GeneratorTest, SeedChangesOutput) {
  GeneratorOptions other = small_options();
  other.seed = 6;
  const db::Design a = generate_random_design(100, 10, 0.5, small_options());
  const db::Design b = generate_random_design(100, 10, 0.5, other);
  int differing = 0;
  for (std::size_t i = 0; i < a.num_cells(); ++i)
    if (a.cells()[i].gp_x != b.cells()[i].gp_x) ++differing;
  EXPECT_GT(differing, 50);
}

TEST(GeneratorTest, GpPositionsInsideChip) {
  const db::Design d = generate_random_design(300, 40, 0.6, small_options());
  const db::Chip& chip = d.chip();
  for (const db::Cell& cell : d.cells()) {
    EXPECT_GE(cell.gp_x, 0.0);
    EXPECT_LE(cell.gp_x + cell.width, chip.width() + 1e-9);
    EXPECT_GE(cell.gp_y, 0.0);
    EXPECT_LE(cell.gp_y + static_cast<double>(cell.height_rows) *
                              chip.row_height,
              chip.height() + 1e-9);
  }
}

TEST(GeneratorTest, CurrentPositionsStartAtGp) {
  const db::Design d = generate_random_design(50, 5, 0.5, small_options());
  for (const db::Cell& cell : d.cells()) {
    EXPECT_DOUBLE_EQ(cell.x, cell.gp_x);
    EXPECT_DOUBLE_EQ(cell.y, cell.gp_y);
  }
}

TEST(GeneratorTest, WidthsArePositiveIntegralSites) {
  const db::Design d = generate_random_design(300, 50, 0.5, small_options());
  for (const db::Cell& cell : d.cells()) {
    EXPECT_GT(cell.width, 0.0);
    const double sites = cell.width / d.chip().site_width;
    EXPECT_NEAR(sites, std::round(sites), 1e-9);
  }
}

TEST(GeneratorTest, DoubleHeightCellsNarrower) {
  const db::Design d = generate_random_design(400, 400, 0.5, small_options());
  double single_width = 0.0, double_width = 0.0;
  for (const db::Cell& cell : d.cells()) {
    if (cell.height_rows == 1)
      single_width += cell.width;
    else
      double_width += cell.width;
  }
  // Halved widths: the double-height population is markedly narrower.
  EXPECT_LT(double_width, 0.75 * single_width);
}

TEST(GeneratorTest, NetlistSizeTracksOption) {
  GeneratorOptions opts = small_options();
  opts.nets_per_cell = 2.0;
  const db::Design d = generate_random_design(100, 10, 0.5, opts);
  EXPECT_EQ(d.num_nets(), 220u);
  for (const db::NetView& net : d.nets()) {
    EXPECT_GE(net.pins.size(), static_cast<std::size_t>(opts.min_pins));
    EXPECT_LE(net.pins.size(), static_cast<std::size_t>(opts.max_pins));
  }
}

TEST(GeneratorTest, NoNetsWhenDisabled) {
  GeneratorOptions opts = small_options();
  opts.nets_per_cell = 0.0;
  const db::Design d = generate_random_design(100, 10, 0.5, opts);
  EXPECT_EQ(d.num_nets(), 0u);
}

TEST(GeneratorTest, TripleAndQuadHeights) {
  GeneratorOptions opts = small_options();
  opts.triple_fraction = 0.1;
  opts.quad_fraction = 0.05;
  const db::Design d = generate_random_design(200, 20, 0.5, opts);
  EXPECT_EQ(d.count_cells_with_height(3), 20u);
  EXPECT_EQ(d.count_cells_with_height(4), 10u);
  EXPECT_EQ(d.count_cells_with_height(1), 170u);
  EXPECT_EQ(d.num_cells(), 220u);
}

TEST(GeneratorTest, SuiteSpecScaling) {
  GeneratorOptions opts = small_options();
  opts.scale = 0.01;
  const BenchmarkSpec& spec = find_spec("fft_a");  // 28718 + 1907
  const db::Design d = generate_design(spec, opts);
  EXPECT_EQ(d.name, "fft_a");
  EXPECT_EQ(d.count_cells_with_height(1), 287u);
  EXPECT_EQ(d.count_cells_with_height(2), 19u);
  EXPECT_NEAR(d.density(), spec.density, 0.08);
}

TEST(GeneratorTest, DifferentSuiteEntriesDiffer) {
  GeneratorOptions opts = small_options();
  opts.scale = 0.01;
  const db::Design a = generate_design(find_spec("fft_a"), opts);
  const db::Design b = generate_design(find_spec("fft_b"), opts);
  // Same counts but different derived seeds → different placements.
  ASSERT_EQ(a.num_cells(), b.num_cells());
  int differing = 0;
  for (std::size_t i = 0; i < a.num_cells(); ++i)
    if (a.cells()[i].gp_x != b.cells()[i].gp_x) ++differing;
  EXPECT_GT(differing, 100);
}

TEST(GeneratorTest, GpIsNearLegal) {
  // The GP synthesis perturbs a legal packing: after snapping cells back to
  // rows/sites the overlap count should be a small fraction of all cells.
  GeneratorOptions opts = small_options();
  const db::Design d = generate_random_design(1000, 100, 0.5, opts);
  db::Design snapped = d;
  for (db::Cell& cell : snapped.cells()) {
    cell.y = snapped.chip().row_y(snapped.nearest_row(cell.gp_y,
                                                      cell.height_rows));
    cell.x = snapped.snap_x_to_site(cell.gp_x, cell.width);
  }
  db::LegalityOptions lo;
  lo.max_recorded = 0;
  const db::LegalityReport report = db::check_legality(snapped, lo);
  // Most cells are *not* involved in any overlap.
  EXPECT_LT(report.overlaps, snapped.num_cells() / 2);
}

TEST(GeneratorTest, EvenHeightRailTypesConsistentWithSomeLegalRow) {
  const db::Design d = generate_random_design(100, 100, 0.4, small_options());
  for (const db::Cell& cell : d.cells()) {
    if (!cell.is_even_height()) continue;
    // Some row in the chip accommodates this rail type.
    bool any = false;
    for (std::size_t r = 0; r + cell.height_rows <= d.chip().num_rows; ++r)
      any = any || cell.rail_compatible(d.chip(), r);
    EXPECT_TRUE(any);
  }
}

}  // namespace
}  // namespace mch::gen
