// Block-diagonal SPD matrices with contiguous blocks.
//
// The Hessian K = Q + λEᵀE of the penalized legalization QP couples only
// the subcell variables of one cell, so K is block diagonal with one block
// per cell (a 1x1 block for single-row-height cells). This class stores the
// blocks and their explicit inverses, giving O(n) apply/solve and O(1)
// access to individual entries of K⁻¹ — the access pattern needed to form
// the tridiagonal Schur-complement approximation D.
//
// Storage is split by block size. Single-row-height cells dominate a design
// (typically ≥ 90% of blocks), and a DenseMatrix carries two heap
// allocations plus size bookkeeping — ~160 bytes for a 1×1 value. Scalar
// blocks therefore live *only* in the flat scalar_values_/scalar_inverses_
// arrays (8 bytes each per variable, which the iteration kernels sweep
// anyway); DenseMatrix storage exists just for the general (non-1×1)
// blocks. At 10M cells this removes ~1.5 GB of per-block overhead without
// changing a single arithmetic result: a 1×1 inverse is computed as exactly
// 1.0/v by DenseMatrix::solve's back-substitution, which add_scalar_block
// reproduces verbatim.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"
#include "util/index.h"

namespace mch::linalg {

class BlockDiagMatrix {
 public:
  BlockDiagMatrix() = default;

  /// Appends an SPD block at the next free offset. Throws CheckError if the
  /// block is not invertible. 1×1 blocks are routed to add_scalar_block.
  /// Returns the block index.
  std::size_t add_block(const DenseMatrix& block);

  /// Appends a 1×1 block holding `value` without materializing a
  /// DenseMatrix. Bitwise identical to add_block on the equivalent 1×1
  /// matrix: the stored inverse is exactly 1.0/value, and the singularity
  /// threshold (|value| < 1e-300) matches DenseMatrix::solve's pivot check.
  std::size_t add_scalar_block(double value);

  /// Appends a copy of this matrix's block b — block and stored inverse —
  /// to dst, skipping the re-inversion add_block would do. Used when
  /// extracting sub-problems that reuse existing blocks verbatim. Returns
  /// dst's new block index.
  std::size_t append_block_to(BlockDiagMatrix& dst, std::size_t b) const;

  /// Total matrix dimension (sum of block sizes).
  std::size_t size() const { return size_; }
  std::size_t block_count() const { return offsets_.size(); }

  /// Starting variable index of a block.
  std::size_t block_offset(std::size_t b) const { return offsets_[b]; }
  /// Dimension of a block (O(1): derived from the offset deltas).
  std::size_t block_size(std::size_t b) const {
    const std::size_t next =
        b + 1 < offsets_.size() ? offsets_[b + 1] : size_;
    return next - offsets_[b];
  }

  /// True when block b is a 1×1 block (stored only in the flat arrays).
  bool is_scalar_block(std::size_t b) const { return scalar_mask_[b]; }

  /// Dense view of a *general* (non-1×1) block. Scalar blocks have no
  /// DenseMatrix representation — read them through scalar_values() /
  /// entry(); calling block() on one throws CheckError.
  const DenseMatrix& block(std::size_t b) const {
    return general_dense_[general_slot(b)];
  }
  const DenseMatrix& block_inverse(std::size_t b) const {
    return general_inverses_[general_slot(b)];
  }

  /// Block index owning variable i (O(log #blocks)).
  std::size_t block_of(std::size_t i) const;

  /// Entry K(i, j); zero when i and j belong to different blocks.
  double entry(std::size_t i, std::size_t j) const;

  /// Entry K⁻¹(i, j); zero when i and j belong to different blocks.
  double inverse_entry(std::size_t i, std::size_t j) const;

  /// y = K x.
  void multiply(const Vector& x, Vector& y) const;

  /// y += alpha * K x.
  void multiply_add(double alpha, const Vector& x, Vector& y) const;

  /// Solves K y = x exactly via the stored block inverses.
  void solve(const Vector& x, Vector& y) const;

  /// Solves (alpha*K + beta*I) y = x. Each block system is solved densely;
  /// requires the shifted blocks to be nonsingular (true for alpha,beta > 0
  /// since K is SPD).
  void solve_shifted(double alpha, double beta, const Vector& x,
                     Vector& y) const;

  /// Flat per-variable view of the dominant 1×1 blocks: K(i,i) where
  /// variable i is a scalar block, 0.0 at positions owned by larger blocks.
  /// This is the exact array multiply_add sweeps, exposed so fused iteration
  /// kernels (lcp/mmsim.cpp) can replicate its arithmetic in place.
  const std::vector<double>& scalar_values() const { return scalar_values_; }
  /// Flat per-variable view of 1/K(i,i), zeros at non-scalar positions.
  const std::vector<double>& scalar_inverses() const {
    return scalar_inverses_;
  }
  /// Block indices of the non-1×1 blocks, in ascending offset order.
  /// Position g in this list is also the storage slot behind block() for
  /// that block, so loops over general blocks pay no lookup.
  const std::vector<index_t>& general_block_indices() const {
    return general_blocks_;
  }

 private:
  /// Storage slot of a general block; throws if b is scalar.
  std::size_t general_slot(std::size_t b) const;

  std::size_t size_ = 0;
  std::vector<index_t> offsets_;

  // Fast path for the dominant 1×1 blocks (single-row-height cells are
  // ~90% of a design): their values and inverses live in flat arrays so
  // multiply/solve touch them in one vectorizable sweep — and, since the
  // compaction, these arrays are the *only* storage scalar blocks have.
  // `scalar_mask_[b]` marks 1×1 blocks; scalar_* are indexed by variable,
  // with zeros at positions owned by larger blocks.
  std::vector<bool> scalar_mask_;
  std::vector<double> scalar_values_;    ///< K(i,i) for scalar blocks, else 0
  std::vector<double> scalar_inverses_;  ///< 1/K(i,i) for scalar blocks, else 0

  // Dense storage exists only for the non-1×1 blocks. general_blocks_ maps
  // storage slot → block index (ascending); general_slot() inverts it by
  // binary search for the by-block-index accessors.
  std::vector<index_t> general_blocks_;      ///< slot → block index
  std::vector<DenseMatrix> general_dense_;   ///< slot → block
  std::vector<DenseMatrix> general_inverses_;  ///< slot → inverse
};

}  // namespace mch::linalg
