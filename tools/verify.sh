#!/usr/bin/env bash
# Repo verification driver: tier-1 build + ctest, the env-variant ctest
# jobs (.recovery/.session/.simd-off/.mixed/.trace), the observability
# disabled-overhead smoke (BM_MmsimIterations/32768 vs the committed
# snapshot), the multi-client scheduler bench (bitwise stability + parallel
# efficiency of concurrent request submission), an AddressSanitizer job
# over the solver/legalizer suites (the workspace arena hands slot
# references to parallel workers — ASan is what would catch a stale one), a
# UBSan job over the SIMD/mixed kernel suites, and a ThreadSanitizer job
# over the work-stealing scheduler (concurrent submitters, stolen tickets,
# the sleep/wake Dekker protocol — TSan is what would catch a misordered
# wake or a job freed under a late steal).
#
#   tools/verify.sh            # full: Release + ctest + ASan + UBSan + TSan
#   tools/verify.sh --fast     # skip the sanitizer jobs
#   tools/verify.sh --bigmem   # additionally run the 1M-cell memory smoke
#
# Build trees: ./build (default config), ./build-asan (MCH_ENABLE_ASAN),
# ./build-ubsan (MCH_ENABLE_UBSAN) and ./build-tsan (MCH_ENABLE_TSAN), all
# RelWithDebInfo sanitizer trees. All are incremental across runs.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
BIGMEM=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --bigmem) BIGMEM=1 ;;
    *) echo "usage: tools/verify.sh [--fast] [--bigmem]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build (Release default) =="
cmake -B build -S . >/dev/null
cmake --build build -j4

echo "== tier-1: ctest =="
(cd build && ctest -j2 --output-on-failure)

echo "== recovery: fault-injected legal/lcp suites =="
# The .recovery ctest variant runs with MCH_FORCE_SOLVER_FAILURE=1, so
# every legalization solve exercises the escalation ladder and must still
# meet its contracts; the plain legality/recovery regression suites ride
# along for the checker fixes.
(cd build && ctest -j2 --output-on-failure \
  -R '\.recovery$|RecoveryLadderTest|DegenerateDesignTest|LegalityTest')

echo "== session: resident-service suites =="
# The .session ctest variant runs the eval/integration suites with
# MCH_SESSION=1, serving every MMSIM legalization through a resident
# service::LegalizationSession; the SessionTest suite covers the
# incremental ECO path and the match-mode bitwise contract directly.
(cd build && ctest -j2 --output-on-failure \
  -R '\.session$|SessionTest')

echo "== simd-off: scalar-reference kernel suites =="
# The .simd-off ctest variant runs the kernel/solver suites with MCH_SIMD=0
# so the scalar fallback — the bitwise reference the AVX kernels are
# contracted against — stays exercised on hardware that would otherwise
# always dispatch the vector paths; the Simd* suites run the cross-level
# bitwise-identity assertions directly.
(cd build && ctest -j2 --output-on-failure \
  -R '\.simd-off$|SimdDispatchTest|SimdCsrTest|SimdBlockDiagTest|MmsimSimdTest')

echo "== mixed: float32-iterate solver suites =="
# The .mixed ctest variant opts every MMSIM solve into the mixed-precision
# iterate (MCH_PRECISION=mixed: float32 sweeps, float64 residual checks,
# double polish); the MmsimMixedTest suite covers the displacement
# tolerance, the kOff/kMatch demotion, and the recovery handoff directly.
(cd build && ctest -j2 --output-on-failure \
  -R '\.mixed$|MmsimMixedTest')

echo "== trace: observability-enabled suites =="
# The .trace ctest variant re-runs the eval/service/integration suites with
# MCH_TRACE=1 and MCH_METRICS=1 — spans recording into every thread's ring
# and the metrics registry armed, no artifacts written. Tracing is
# contracted to be a pure observer (tests/obs/identity_test.cpp holds the
# bitwise line), so every assertion in those suites must still pass; the
# obs unit suites ride along.
(cd build && ctest -j2 --output-on-failure \
  -R '\.trace$|TraceTest|MetricsTest|ObsIdentityTest')

echo "== obs: disabled-overhead smoke =="
# src/obs/ is compiled into every build and gated by a relaxed flag load,
# which is only acceptable if the disabled cost stays invisible. Re-run the
# instrumented BM_MmsimIterations/32768 (tracing/metrics off) and fail if
# the best of three runs regresses more than 1% + noise floor against the
# committed snapshot in results/micro_solver.json. MCH_BENCH_JSON_DIR is
# pointed at a scratch dir so the smoke never overwrites the snapshot it
# compares against.
cmake --build build -j4 --target micro_solver
OVH_DIR="$(mktemp -d)"
trap 'rm -rf "$OVH_DIR"' EXIT
for rep in 1 2 3; do
  MCH_BENCH_JSON_DIR="$OVH_DIR" build/bench/micro_solver \
    --benchmark_filter='^BM_MmsimIterations/32768$' \
    --benchmark_out="$OVH_DIR/rep$rep.json" \
    --benchmark_out_format=json >/dev/null
done
python3 - "$OVH_DIR" <<'EOF'
import json, sys
scratch = sys.argv[1]
best_ns = min(
    b["real_time"]
    for rep in (1, 2, 3)
    for b in json.load(open(f"{scratch}/rep{rep}.json"))["benchmarks"]
    if b["name"] == "BM_MmsimIterations/32768"
)
snapshot = json.load(open("results/micro_solver.json"))
baseline_s = next(r["seconds"] for r in snapshot["records"]
                  if r["name"] == "BM_MmsimIterations/32768")
# 1% is the whole instrumentation budget for the disabled path — a relaxed
# flag load per span site. Taking the best of three runs keeps scheduler
# noise out of the measurement; an un-gated span or a registry lookup on
# the sweep path would blow the limit by an order of magnitude.
limit_s = baseline_s * 1.01
best_s = best_ns / 1e9
verdict = "OK" if best_s <= limit_s else "FAIL"
print(f"obs overhead smoke: best {best_s:.6f}s vs baseline "
      f"{baseline_s:.6f}s (limit {limit_s:.6f}s) -> {verdict}")
sys.exit(0 if best_s <= limit_s else 1)
EOF

echo "== sched: multi-client throughput + bitwise stability =="
# A reduced run of the --multi bench mode: a queue of heterogeneous designs
# served serially, then drained by concurrent clients sharing the worker
# pool. The bench itself exits non-zero if any request's positions diverge
# bitwise from the single-client phase (or, sampled, from the one-shot
# legal::legalize), or if parallel efficiency at the machine's core count
# drops below 0.7. MCH_BENCH_JSON_DIR points at the scratch dir so the
# committed results/service_throughput_multi.json snapshot (written by a
# full 120-design run) is never overwritten.
cmake --build build -j4 --target service_throughput
MCH_THREADS=4 MCH_BENCH_JSON_DIR="$OVH_DIR" \
  build/bench/service_throughput --multi 24 3

if [[ "$FAST" == 0 ]]; then
  echo "== tsan: build scheduler/service suites =="
  # The scheduler's whole job is cross-thread: per-worker deques, stolen
  # tickets, the combined remaining-counter retirement, the epoch/sleepers
  # Dekker handshake. TSan over the scheduler suite (which includes the
  # concurrent-submission regression for the old pool's abort) and the
  # concurrent-clients determinism test is the check that those protocols
  # are data-race-free, not merely lucky.
  cmake -B build-tsan -S . -DMCH_ENABLE_TSAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  TSAN_TARGETS=(runtime_scheduler_test service_scheduler_determinism_test)
  for t in "${TSAN_TARGETS[@]}"; do
    cmake --build build-tsan -j4 --target "$t"
  done

  echo "== tsan: run (4-thread pool, plus steal-first) =="
  sched_bin="$(find build-tsan/tests -name runtime_scheduler_test -type f | head -1)"
  MCH_THREADS=4 "$sched_bin" --gtest_brief=1
  MCH_THREADS=4 MCH_SCHED_STEAL_FIRST=1 "$sched_bin" --gtest_brief=1
  det_bin="$(find build-tsan/tests -name service_scheduler_determinism_test -type f | head -1)"
  # The concurrent-clients case only — the full determinism matrix already
  # runs in the tier-1 and MT4 ctest jobs, and TSan's value here is the
  # overlap of distinct sessions on shared workers, not the thread sweep.
  MCH_THREADS=4 "$det_bin" --gtest_brief=1 \
    --gtest_filter='*ConcurrentClientsBitwiseStable*'

  echo "== asan: build solver/legalizer suites =="
  cmake -B build-asan -S . -DMCH_ENABLE_ASAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  ASAN_TARGETS=(
    lcp_mmsim_test lcp_mmsim_fused_test lcp_solver_test lcp_psor_test
    legal_mmsim_legalizer_test legal_partition_test linalg_csr_test
  )
  for t in "${ASAN_TARGETS[@]}"; do
    cmake --build build-asan -j4 --target "$t"
  done

  echo "== asan: run (serial and 4-thread pool) =="
  for t in "${ASAN_TARGETS[@]}"; do
    bin="$(find build-asan/tests -name "$t" -type f | head -1)"
    "$bin" --gtest_brief=1
    MCH_THREADS=4 "$bin" --gtest_brief=1
  done

  echo "== ubsan: build SIMD/mixed kernel suites =="
  # The vector kernels are the one place the codebase hand-rolls pointer
  # arithmetic over SoA gather tables and reinterprets masks — UBSan over
  # the kernel suites (at every dispatch level and in mixed precision) is
  # what would catch a misaligned load or out-of-lane index.
  cmake -B build-ubsan -S . -DMCH_ENABLE_UBSAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  UBSAN_TARGETS=(
    linalg_simd_test linalg_csr_test lcp_mmsim_simd_test
    lcp_mmsim_mixed_test lcp_mmsim_fused_test
  )
  for t in "${UBSAN_TARGETS[@]}"; do
    cmake --build build-ubsan -j4 --target "$t"
  done

  echo "== ubsan: run (native SIMD, forced-scalar, mixed) =="
  for t in "${UBSAN_TARGETS[@]}"; do
    bin="$(find build-ubsan/tests -name "$t" -type f | head -1)"
    "$bin" --gtest_brief=1
    MCH_SIMD=0 "$bin" --gtest_brief=1
    MCH_PRECISION=mixed "$bin" --gtest_brief=1
  done
fi

if [[ "$BIGMEM" == 1 ]]; then
  echo "== bigmem: 1M-cell legalization under an address-space cap =="
  # Opt-in (several minutes of solve time): legalize the 1M-cell baseline
  # scale design end to end inside a ulimit -v cap. The streamed spine
  # peaks near 0.5 GB at 1M cells and the pre-refactor layout needed ~1.1 GB
  # (see results/scaling_memory.txt), so a 1 GiB address-space cap gives
  # the current layout 2x headroom while a regression that reintroduces a
  # staging copy or an extract-everything high-water mark aborts on
  # allocation instead of silently fitting. Requires the Release bench
  # build from the tier-1 step above.
  cmake --build build -j4 --target scaling_memory
  (
    ulimit -v $((1024 * 1024))  # 1 GiB of address space
    build/bench/scaling_memory --point baseline 1000000 streamed
  )
fi

echo "verify: OK"
