#include "linalg/tridiagonal.h"

#include <cmath>

#include "runtime/parallel.h"
#include "util/check.h"

namespace mch::linalg {

Tridiagonal Tridiagonal::scaled_plus_identity(double alpha,
                                              double beta) const {
  Tridiagonal out(size());
  for (std::size_t i = 0; i < size(); ++i)
    out.diag_[i] = alpha * diag_[i] + beta;
  for (std::size_t i = 0; i + 1 < size(); ++i) {
    out.lower_[i] = alpha * lower_[i];
    out.upper_[i] = alpha * upper_[i];
  }
  return out;
}

void Tridiagonal::multiply(const Vector& x, Vector& y) const {
  const std::size_t n = size();
  MCH_CHECK(x.size() == n);
  y.assign(n, 0.0);
  // Row-parallel: each output reads only its neighbors of the input.
  runtime::parallel_for(
      std::size_t{0}, n, runtime::kGrainElementwise,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          double sum = diag_[i] * x[i];
          if (i > 0) sum += lower_[i - 1] * x[i - 1];
          if (i + 1 < n) sum += upper_[i] * x[i + 1];
          y[i] = sum;
        }
      });
}

// The Thomas recurrences are inherently sequential (each pivot depends on
// the previous one), so the solve intentionally stays on one thread; it is
// the only serial O(m) term left in an MMSIM iteration.
bool Tridiagonal::solve(const Vector& rhs, Vector& x) const {
  Vector c_prime, d_prime;
  return solve_with(rhs, x, c_prime, d_prime);
}

bool Tridiagonal::solve_with(const Vector& rhs, Vector& x, Vector& scratch_c,
                             Vector& scratch_d) const {
  const std::size_t n = size();
  MCH_CHECK(rhs.size() == n);
  x.assign(n, 0.0);
  if (n == 0) return true;

  // Thomas forward sweep on scratch copies of the super-diagonal and rhs.
  Vector& c_prime = scratch_c;
  Vector& d_prime = scratch_d;
  c_prime.assign(n > 1 ? n - 1 : 0, 0.0);
  d_prime.assign(n, 0.0);
  double pivot = diag_[0];
  if (std::abs(pivot) < 1e-300) return false;
  if (n > 1) c_prime[0] = upper_[0] / pivot;
  d_prime[0] = rhs[0] / pivot;
  for (std::size_t i = 1; i < n; ++i) {
    pivot = diag_[i] - lower_[i - 1] * c_prime[i - 1];
    if (std::abs(pivot) < 1e-300) return false;
    if (i + 1 < n) c_prime[i] = upper_[i] / pivot;
    d_prime[i] = (rhs[i] - lower_[i - 1] * d_prime[i - 1]) / pivot;
  }

  // Back substitution.
  x[n - 1] = d_prime[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) x[i] = d_prime[i] - c_prime[i] * x[i + 1];
  return true;
}

bool TridiagonalFactorization::factor(const Tridiagonal& t) {
  const std::size_t n = t.size();
  valid_ = false;
  c_prime_.assign(n > 1 ? n - 1 : 0, 0.0);
  inv_pivot_.assign(n, 0.0);
  g_.assign(n, 0.0);
  if (n == 0) {
    valid_ = true;
    return true;
  }
  // Same pivot recurrence as Tridiagonal::solve_with; only the per-solve
  // coefficients 1/pivot and lower/pivot are stored in its place.
  double pivot = t.diag(0);
  if (std::abs(pivot) < 1e-300) return false;
  inv_pivot_[0] = 1.0 / pivot;
  if (n > 1) c_prime_[0] = t.upper(0) / pivot;
  for (std::size_t i = 1; i < n; ++i) {
    pivot = t.diag(i) - t.lower(i - 1) * c_prime_[i - 1];
    if (std::abs(pivot) < 1e-300) return false;
    inv_pivot_[i] = 1.0 / pivot;
    g_[i] = t.lower(i - 1) / pivot;
    if (i + 1 < n) c_prime_[i] = t.upper(i) / pivot;
  }
  valid_ = true;
  return true;
}

void TridiagonalFactorization::solve(const Vector& rhs, Vector& x,
                                     Vector& scratch) const {
  const std::size_t n = inv_pivot_.size();
  MCH_CHECK(valid_ && rhs.size() == n);
  x.resize(n);
  if (n == 0) return;

  Vector& d_prime = scratch;
  d_prime.resize(n);
  d_prime[0] = rhs[0] * inv_pivot_[0];
  for (std::size_t i = 1; i < n; ++i)
    d_prime[i] = rhs[i] * inv_pivot_[i] - g_[i] * d_prime[i - 1];

  x[n - 1] = d_prime[n - 1];
  for (std::size_t i = n - 1; i-- > 0;)
    x[i] = d_prime[i] - c_prime_[i] * x[i + 1];
}

}  // namespace mch::linalg
