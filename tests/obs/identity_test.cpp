// Tracing/metrics must be pure observers: a legalization run with the
// whole obs subsystem enabled must produce bitwise-identical placements,
// iteration counts, and convergence flags to the same run with it
// disabled. This is the determinism contract ALGORITHM.md ¶14 states, and
// it is what lets the `.trace` ctest variants re-run the eval/service
// suites with MCH_TRACE=1 and still rely on every numeric assertion.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "db/design.h"
#include "gen/generator.h"
#include "legal/flow.h"
#include "obs/obs.h"

namespace mch {
namespace {

struct ObsState {
  bool tracing;
  bool metrics;
};

ObsState snapshot_obs() {
  return {obs::tracing_enabled(), obs::metrics_enabled()};
}

void restore_obs(const ObsState& state) {
  obs::set_tracing_enabled(state.tracing);
  obs::set_metrics_enabled(state.metrics);
}

/// Legalizes a fresh copy of `design` with the obs subsystem forced to
/// `enabled`, returning the flattened (x, y) result bits.
std::vector<double> legalize_with_obs(const db::Design& design, bool enabled,
                                      const legal::FlowOptions& options,
                                      legal::FlowResult* result_out) {
  obs::set_tracing_enabled(enabled);
  obs::set_metrics_enabled(enabled);
  db::Design copy = design;
  const legal::FlowResult result = legal::legalize(copy, options);
  if (result_out != nullptr) *result_out = result;
  std::vector<double> coords;
  coords.reserve(copy.num_cells() * 2);
  for (const db::Cell& cell : copy.cells()) {
    coords.push_back(cell.x);
    coords.push_back(cell.y);
  }
  if (enabled) obs::clear_trace();
  return coords;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

TEST(ObsIdentityTest, LegalizationIsBitwiseIdenticalWithTracingOnOrOff) {
  const ObsState saved = snapshot_obs();
  gen::GeneratorOptions gen_options;
  gen_options.seed = 7;
  db::Design design = gen::generate_random_design(600, 120, 0.7, gen_options);

  legal::FlowOptions options;
  legal::FlowResult off_result;
  legal::FlowResult on_result;
  const std::vector<double> off =
      legalize_with_obs(design, false, options, &off_result);
  const std::vector<double> on =
      legalize_with_obs(design, true, options, &on_result);
  restore_obs(saved);

  expect_bitwise_equal(off, on);
  EXPECT_EQ(off_result.legal, on_result.legal);
  EXPECT_EQ(off_result.solver.iterations, on_result.solver.iterations);
  EXPECT_EQ(off_result.solver.converged, on_result.solver.converged);
  EXPECT_EQ(off_result.solver.num_components, on_result.solver.num_components);
}

TEST(ObsIdentityTest, IdentityHoldsAcrossRepeatedTracedRuns) {
  // A traced run must also equal another traced run (no hidden state from
  // the first drain leaking into the second solve).
  const ObsState saved = snapshot_obs();
  gen::GeneratorOptions gen_options;
  gen_options.seed = 11;
  db::Design design = gen::generate_random_design(400, 80, 0.6, gen_options);

  legal::FlowOptions options;
  const std::vector<double> first =
      legalize_with_obs(design, true, options, nullptr);
  const std::vector<double> second =
      legalize_with_obs(design, true, options, nullptr);
  restore_obs(saved);

  expect_bitwise_equal(first, second);
}

}  // namespace
}  // namespace mch
