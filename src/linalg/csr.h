// Immutable compressed-sparse-row matrix — the sparse engine behind the
// constraint matrix B of the legalization QP.
//
// Storage is the classic three-array CSR layout (row_ptr / col_idx /
// values). Transpose products gather through a lazily built and cached CSR
// view of Aᵀ instead of scattering into y: each output element is then
// owned by exactly one loop iteration, which lets the runtime parallelize
// transpose products row-wise with results independent of the thread count.
// transpose_view() exposes that cached view so fused iteration kernels
// (lcp/mmsim.cpp) can traverse Aᵀ rows directly without re-entering the
// build lock per product.
//
// The two-vector forms multiply_add2 / multiply_transpose_add2 traverse the
// matrix once for two accumulations and are bitwise identical to the two
// corresponding single-vector calls issued back to back — each output
// element folds its terms in the same order either way.
//
// Matrices are assembled either through the COO triplet builder in sparse.h
// (from_coo) or adopted pre-built from a streaming assembler (from_parts).
// Column indices are stored as mch::index_t (32-bit by default): at
// multi-million-constraint scale col_idx_ is one of the largest arrays in
// the process, and halving it is a straight RSS win with no arithmetic
// consequence.
//
// When every row has at most two entries (always true for the pairwise
// spacing constraints B and its transpose), gather2_view() exposes a lazily
// built structure-of-arrays slot table (per-row value/column pairs plus a
// length byte) that the SIMD product kernels (linalg/simd_kernels.h) and
// the fused MMSIM sweeps traverse instead of the row_ptr indirection. The
// SIMD paths of the multiply entry points are bitwise identical to the
// scalar CSR loops (masked loads, no padded arithmetic), so the active
// SIMD level never changes a product's bits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "linalg/vector_ops.h"
#include "util/index.h"

namespace mch::linalg {

class CooMatrix;

/// Width-2 SoA gather table of a CSR matrix: row r's entries live in slots
/// (v0[r], c0[r]) and (v1[r], c1[r]), len[r] in 0..2 counts the real ones;
/// padding slots hold value 0.0 and column 0. Built by
/// CsrMatrix::gather2_view() when every row fits (and columns fit uint32).
struct CsrGather2 {
  AlignedVector<double> v0, v1;
  AlignedVector<std::uint32_t> c0, c1;
  AlignedVector<std::uint8_t> len;
  bool eligible = false;
};

class CsrMatrix {
 public:
  /// Empty rows x cols matrix with no entries.
  CsrMatrix(std::size_t rows = 0, std::size_t cols = 0);

  CsrMatrix(const CsrMatrix& other);
  CsrMatrix& operator=(const CsrMatrix& other);
  CsrMatrix(CsrMatrix&& other) noexcept;
  CsrMatrix& operator=(CsrMatrix&& other) noexcept;

  /// Builds from a COO accumulator; duplicate entries are summed, explicit
  /// zeros (after summing) are kept out of the structure.
  static CsrMatrix from_coo(const CooMatrix& coo);

  /// Adopts pre-built CSR arrays without staging a COO copy — the zero-copy
  /// entry point for streamed assembly (legal/model.cpp emits constraint
  /// rows in ascending order directly into these arrays). Requires
  /// row_ptr.size() == rows + 1 with row_ptr.front() == 0 and
  /// row_ptr.back() == col_idx.size() == values.size(); per-row columns
  /// must be strictly ascending (the from_coo invariant).
  static CsrMatrix from_parts(std::size_t rows, std::size_t cols,
                              std::vector<std::size_t> row_ptr,
                              std::vector<index_t> col_idx, Vector values);

  /// Identity matrix of size n.
  static CsrMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// y = A x. Requires x.size() == cols(); resizes y to rows().
  void multiply(const Vector& x, Vector& y) const;

  /// y += alpha * A x.
  void multiply_add(double alpha, const Vector& x, Vector& y) const;

  /// y += a1 * A x1 + a2 * A x2 in one traversal of A. Bitwise identical
  /// to multiply_add(a1, x1, y) followed by multiply_add(a2, x2, y).
  void multiply_add2(double a1, const Vector& x1, double a2, const Vector& x2,
                     Vector& y) const;

  /// y = Aᵀ x. Requires x.size() == rows(); resizes y to cols().
  void multiply_transpose(const Vector& x, Vector& y) const;

  /// y += alpha * Aᵀ x.
  void multiply_transpose_add(double alpha, const Vector& x, Vector& y) const;

  /// y += a1 * Aᵀ x1 + a2 * Aᵀ x2 in one traversal of the cached Aᵀ.
  /// Bitwise identical to the two multiply_transpose_add calls in sequence.
  void multiply_transpose_add2(double a1, const Vector& x1, double a2,
                               const Vector& x2, Vector& y) const;

  /// The cached Aᵀ (row r of the view = column r of A), built on first use.
  /// The build is thread-safe; the returned reference stays valid for this
  /// matrix's lifetime (copies share the already-built view).
  const CsrMatrix& transpose_view() const;

  /// The cached width-2 SoA gather table, built on first use; nullptr when
  /// the matrix does not qualify (a row with more than two entries, or
  /// dimensions beyond uint32). Thread-safe like transpose_view(); the
  /// returned pointer stays valid for this matrix's lifetime.
  const CsrGather2* gather2_view() const;

  /// Returns Aᵀ as an independent CSR matrix.
  CsrMatrix transpose() const;

  /// Element access by binary search within the row; O(log nnz(row)).
  double at(std::size_t row, std::size_t col) const;

  /// CSR internals (for solvers that need direct traversal). Column
  /// indices are index_t; reading one into a std::size_t is a free
  /// widening, so traversal loops are unchanged.
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<index_t>& col_idx() const { return col_idx_; }
  const Vector& values() const { return values_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_ptr_;
  std::vector<index_t> col_idx_;
  Vector values_;  ///< 64-byte aligned (feeds SIMD loads)

  // Lazily built Aᵀ and gather table (see class comment). shared_ptr so
  // copies share the already-built caches; the mutex only guards each
  // one-time build. An ineligible gather table is cached too (with
  // eligible == false), so the qualification scan runs at most once.
  mutable std::shared_ptr<const CsrMatrix> transpose_cache_;
  mutable std::shared_ptr<const CsrGather2> gather2_cache_;
  mutable std::mutex transpose_mutex_;
};

}  // namespace mch::linalg
