#include "io/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace mch::io {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MCH_CHECK(!headers_.empty());
}

Table& Table::row() {
  MCH_CHECK_MSG(rows_.empty() || rows_.back().size() == headers_.size(),
                "previous row incomplete");
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  MCH_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  MCH_CHECK_MSG(rows_.back().size() < headers_.size(), "row overfull");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::size_t value) {
  return cell(std::to_string(value));
}

Table& Table::percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return cell(os.str());
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& value = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << value;
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c], '-') << "  ";
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << ' ' << (c < row.size() ? row[c] : std::string()) << " |";
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  const auto escape = [](const std::string& value) {
    if (value.find_first_of(",\"\n") == std::string::npos) return value;
    std::string out = "\"";
    for (const char ch : value) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ',';
      os << escape(c < row.size() ? row[c] : std::string());
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace mch::io
