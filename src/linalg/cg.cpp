#include "linalg/cg.h"

#include <cmath>

#include "util/check.h"

namespace mch::linalg {

CgResult conjugate_gradient(
    const std::function<void(const Vector&, Vector&)>& apply,
    const Vector& diagonal, const Vector& b, Vector& x,
    const CgOptions& options) {
  const std::size_t n = b.size();
  MCH_CHECK(diagonal.size() == n);
  if (x.size() != n) x.assign(n, 0.0);

  CgResult result;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  Vector r(n), z(n), p(n), ap(n);
  apply(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  for (std::size_t i = 0; i < n; ++i) {
    MCH_DCHECK(diagonal[i] > 0.0);
    z[i] = r[i] / diagonal[i];
  }
  p = z;
  double rz = dot(r, z);

  for (std::size_t k = 0; k < options.max_iterations; ++k) {
    result.residual_norm = norm2(r);
    result.iterations = k;
    if (result.residual_norm <= options.tolerance * b_norm) {
      result.converged = true;
      return result;
    }
    apply(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) break;  // loss of positive definiteness (roundoff)
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diagonal[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual_norm = norm2(r);
  return result;
}

}  // namespace mch::linalg
