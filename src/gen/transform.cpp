#include "gen/transform.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace mch::gen {

MixedHeightTransformStats make_mixed_height(db::Design& design,
                                            double fraction,
                                            std::uint64_t seed) {
  MCH_CHECK(fraction >= 0.0 && fraction <= 1.0);
  MixedHeightTransformStats stats;
  stats.area_before = design.total_cell_area();

  std::vector<std::size_t> candidates;
  for (const db::Cell& cell : design.cells())
    if (!cell.fixed && cell.height_rows == 1) candidates.push_back(cell.id);

  // Deterministic Fisher–Yates prefix selection.
  Rng rng(seed);
  const auto target = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(candidates.size())));
  for (std::size_t i = 0; i < target && i < candidates.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(candidates.size()) - 1));
    std::swap(candidates[i], candidates[j]);

    db::Cell& cell = design.cells()[candidates[i]];
    const db::Chip& chip = design.chip();
    MCH_CHECK_MSG(chip.num_rows >= 2, "chip too short for double heights");
    cell.height_rows = 2;
    // Halve the width, rounded up to a whole site (area preserved up to
    // site quantization, exactly as in the paper's construction).
    const double half_sites =
        std::ceil(cell.width / (2.0 * chip.site_width) - 1e-9);
    cell.width = std::max(1.0, half_sites) * chip.site_width;
    // Rail type of the nearest legal row keeps the GP feasible.
    const std::size_t row = design.nearest_row(cell.gp_y, cell.height_rows);
    cell.bottom_rail = chip.rail_at(row);
    ++stats.converted_cells;
  }

  stats.area_after = design.total_cell_area();
  return stats;
}

}  // namespace mch::gen
