// MMSIM legalization step: model build + Algorithm 1 + subcell restore.
//
// Produces the continuous, row-aligned placement that is optimal for the
// relaxed problem (13); the Tetris-like allocation then snaps it to sites
// and repairs right-boundary spills. Split from the flow driver so the
// optimality experiments (§5.3) can run the solver in isolation.
//
// The solve decomposes over the connected components of the constraint
// graph (legal/partition.h): obstacles break the row chains, and rows that
// share no tall cell are independent, so real designs fall apart into many
// small sub-problems. Three execution modes:
//
//   * kOff    — the legacy monolithic solve (escape hatch / reference);
//   * kMatch  — per-component MMSIM solvers advanced in lockstep under the
//               monolithic stopping rule. Every kernel of the iteration is
//               elementwise, per-block, per-row, or max-fold, so the
//               per-component iterates are bitwise identical to the
//               monolithic iterates restricted to the component — this mode
//               produces the exact monolithic result while parallelizing
//               the otherwise-serial Thomas stage across components;
//   * kTiered — per-component solver choice by SolverPolicy (exact Lemke
//               pivoting for tiny components, PSOR for constraint-free
//               ones, MMSIM otherwise) with independent termination: each
//               component stops as soon as *it* converges, which is where
//               the decomposition's iteration savings come from. Results
//               agree with the monolithic solve to solver tolerance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "db/design.h"
#include "lcp/mmsim.h"
#include "lcp/solver.h"
#include "lcp/workspace.h"
#include "linalg/simd.h"
#include "legal/model.h"
#include "legal/partition.h"
#include "legal/row_assign.h"

namespace mch::legal {

/// How the legalizer decomposes (or not) the relaxed LCP.
enum class PartitionMode {
  /// Resolve from the MCH_PARTITION environment variable
  /// ("off" | "match" | "tiered"); defaults to kMatch when unset.
  kAuto,
  kOff,     ///< monolithic solve — the pre-decomposition code path
  kMatch,   ///< lockstep per-component MMSIM, bitwise equal to kOff
  kTiered,  ///< per-component solver policy + independent termination
};

const char* to_string(PartitionMode mode);

/// Per-component solver selection for PartitionMode::kTiered.
struct SolverPolicy {
  /// Components whose KKT LCP dimension (n + m) is at most this are solved
  /// exactly by Lemke pivoting. 0 disables the Lemke tier.
  std::size_t lemke_max_size = 32;
  /// Constraint-free components (a lone cell between obstacles) are
  /// bound-constrained QPs; solve them with PSOR instead of the saddle
  /// MMSIM machinery.
  bool psor_for_unconstrained = true;
};

/// Machine-readable record of one component (or the monolithic system) that
/// exhausted every rung of the escalation ladder. The affected cells were
/// clamped to their row-assigned snap positions instead of receiving an
/// unconverged iterate; downstream consumers decide whether to re-run,
/// reject, or ship with the documented degradation.
struct SolveFailure {
  /// Component index within the partition that was recovered; kMonolithic
  /// when the failure covers the whole undecomposed system.
  static constexpr std::size_t kMonolithic = static_cast<std::size_t>(-1);
  std::size_t component = kMonolithic;
  std::size_t num_variables = 0;
  std::size_t num_constraints = 0;
  std::size_t attempts = 0;    ///< ladder attempts before giving up
  std::size_t iterations = 0;  ///< iterations burned across those attempts
  std::vector<std::size_t> cells;  ///< cells clamped to snap positions

  /// One-line human-readable form (cells listed by count, not id).
  std::string summary() const;
};

/// What the escalation ladder did during one legalization solve. All-zero
/// (attempted() == false) on the happy path: recovery only engages after a
/// failure, so converged runs stay bitwise identical to a recovery-free
/// build.
struct RecoveryStats {
  std::size_t escalations = 0;        ///< whole-solve escalated retries
  std::size_t component_ladders = 0;  ///< components routed through the
                                      ///< per-component solver ladder
  std::size_t ladder_attempts = 0;    ///< total attempts across those ladders
  std::size_t recovered_components = 0;  ///< ladder successes past the
                                         ///< primary rung
  std::size_t clamped_components = 0;    ///< ladders exhausted → snap-clamped
  std::size_t clamped_cells = 0;
  std::size_t extra_iterations = 0;  ///< iterations burned by failed attempts
  /// Post-write-back legality audit (pre-snap tolerances: sites not yet
  /// required). Runs whenever recovery engaged or the solve stayed
  /// unconverged, so no failure leaves the legalizer unverified.
  bool audit_ran = false;
  bool audit_legal = false;
  std::string audit_summary;
  /// Structured record per clamped component.
  std::vector<SolveFailure> failures;

  bool attempted() const {
    return escalations > 0 || component_ladders > 0;
  }
};

struct MmsimLegalizerOptions {
  ModelOptions model;        ///< λ penalty (paper: 1000)
  lcp::MmsimOptions mmsim;   ///< β*, θ*, γ, tolerance (paper: 0.5/0.5)
  /// When true, θ* is re-derived from the Theorem-2 bound via power
  /// iteration instead of using options.mmsim.theta. Under partitioning the
  /// probe runs on the monolithic system, so the derived θ* is identical in
  /// every mode.
  bool auto_theta = false;
  PartitionMode partition = PartitionMode::kAuto;
  SolverPolicy policy;       ///< used by PartitionMode::kTiered
  /// Solver scratch arena reused across components and across calls (see
  /// lcp/workspace.h). Not owned; must outlive the call. When null the
  /// legalizer uses a thread-local default arena, so repeated calls from
  /// the same thread still reuse buffers. Pass an explicit arena to share
  /// warm starts across call sites or to control its lifetime. Only the
  /// tiered mode warm-starts from the arena's previous solutions; kOff and
  /// kMatch use it for buffer reuse only, preserving their bitwise
  /// cold-start contracts.
  lcp::SolverWorkspace* workspace = nullptr;
  /// Non-convergence escalation ladder (see lcp/solver.h). forced_failures
  /// is additionally resolved from MCH_FORCE_SOLVER_FAILURE for the
  /// fault-injection ctest variant. Disable to restore the legacy behavior
  /// of surfacing converged == false without retrying (the unconverged
  /// iterate is still written back then — tests of the surfacing path only).
  lcp::RecoveryOptions recovery;
  /// Absolute tolerance of the post-recovery legality audit. The audited
  /// result is continuous (pre-snap), so the tolerance must absorb solver
  /// tolerance and residual λ-mismatch; 1e-2 is far below a site width.
  double audit_tolerance = 1e-2;
  /// Component-at-a-time scheduling for kTiered and the recovery rungs:
  /// each worker extracts one component sub-problem, solves it, scatters
  /// the solution, and releases it before taking the next, visiting
  /// components largest-first. The solve's high-water mark then holds at
  /// most one extracted sub-problem per pool thread instead of every
  /// component at once. Per-component results are unchanged (each depends
  /// only on its own QP and workspace slot); false restores the legacy
  /// extract-everything-up-front layout. kMatch always extracts all — its
  /// lockstep driver needs every per-component solver alive at once.
  bool component_at_a_time = true;

  /// Double-buffered staging for the component-at-a-time drivers: each lane
  /// extracts the next component's gather tables before the current solve
  /// occupies it, so solves never wait on extraction (at most two live
  /// sub-problems per lane). Results are unchanged — extraction is pure and
  /// every result is keyed by component id. Also gated globally by
  /// MCH_SCHED_STAGING (runtime::Scheduler::staging_enabled()).
  bool staged_extraction = true;

  // Session hooks (src/service/): a resident session builds the model once
  // per request itself and keeps the solution/partition across requests.

  /// When set, the legalizer uses this model instead of building its own.
  /// Must have been built from the same design and the same base_rows
  /// (checked); not owned, must outlive the call.
  const LegalizationModel* prebuilt_model = nullptr;
  /// Optional partition of prebuilt_model (e.g. streamed out of
  /// build_model's partition_out). Lets the legalizer skip its own
  /// union-find pass; must match prebuilt_model. Not owned.
  const ConstraintPartition* prebuilt_partition = nullptr;
  /// When set, receives the continuous per-variable solution (the global x
  /// the restored cell positions are means of).
  lcp::Vector* solution_out = nullptr;
  /// When set, receives the constraint partition if the solve computed one
  /// (always under kMatch/kTiered; under kOff only when recovery had to
  /// decompose). Left empty otherwise.
  ConstraintPartition* partition_out = nullptr;
};

struct MmsimLegalizerStats {
  std::size_t num_variables = 0;
  std::size_t num_constraints = 0;
  /// Monolithic / kMatch: global MMSIM iterations. kTiered: the maximum
  /// over components — the parallel critical path.
  std::size_t iterations = 0;
  bool converged = false;
  double max_mismatch = 0.0;     ///< worst subcell disagreement before restore
  double theta_used = 0.0;
  double model_seconds = 0.0;
  /// Wall-clock time of the whole solve section, including solver setup
  /// and the auto-θ probe when enabled.
  double solve_seconds = 0.0;
  double objective = 0.0;        ///< relaxed QP objective at the solution

  // Decomposition stats (zero when the monolithic path ran).
  std::size_t num_components = 0;
  std::size_t max_component_size = 0;    ///< largest per-component n + m
  double mean_component_size = 0.0;
  std::size_t components_mmsim = 0;      ///< components solved by MMSIM
  std::size_t components_psor = 0;       ///< ... by PSOR (kTiered only)
  std::size_t components_lemke = 0;      ///< ... by Lemke (kTiered only)
  /// Total iterations (or Lemke pivots) summed over components. Under
  /// kTiered this is the decomposition's headline saving: components stop
  /// independently instead of all running to the slowest one's count.
  std::size_t component_iterations = 0;
  /// Iterations the float32 MMSIM prelude contributed, summed over
  /// components (0 unless the mixed-precision iterate actually ran).
  std::size_t mixed_iterations = 0;
  /// The iterate precision that actually ran: the requested precision after
  /// the mode gate (mixed is forced back to double outside kTiered and
  /// inside the recovery ladder).
  lcp::MmsimPrecision precision_used = lcp::MmsimPrecision::kDouble;
  /// Active SIMD dispatch level during the solve.
  linalg::SimdLevel simd_level = linalg::SimdLevel::kScalar;
  /// Per-phase MMSIM solve time summed over components in component order
  /// (deterministic). Only systems of ≥ 256 LCP variables contribute — see
  /// lcp::MmsimPhaseTimes — so the sum can be well below solve_seconds.
  lcp::MmsimPhaseTimes phase;

  /// Escalation-ladder activity. attempted() == false on the happy path;
  /// clamped_components > 0 (with per-failure records in failures) when the
  /// ladder was exhausted somewhere — in that case converged is false and
  /// the affected cells hold snap positions, never an unconverged iterate.
  RecoveryStats recovery;
};

/// Solves the relaxed problem for the given row assignment and writes the
/// restored positions (continuous x, row-aligned y) into the design.
MmsimLegalizerStats mmsim_legalize_continuous(
    db::Design& design, const RowAssignment& base_rows,
    const MmsimLegalizerOptions& options = {});

/// One component-solve job for solve_components: the component's sorted
/// variable and constraint index lists (typically pointers straight into a
/// ConstraintPartition — the sub-problem itself is extracted inside the
/// solve, one live extraction per worker), the workspace slot that backs
/// (and may warm-start) it, and the component's id in its partition for
/// failure records.
struct ComponentSolveJob {
  const std::vector<index_t>* variables = nullptr;
  const std::vector<index_t>* constraints = nullptr;
  lcp::SolverWorkspace::Slot* slot = nullptr;
  std::size_t component_id = 0;
};

/// What solve_components did, in the same vocabulary as
/// MmsimLegalizerStats: per-solver component counts, iteration max/sum,
/// ladder activity, and the cells that had to be snap-clamped.
struct ComponentSolveReport {
  std::size_t iterations = 0;            ///< max over jobs (critical path)
  std::size_t component_iterations = 0;  ///< summed over jobs
  std::size_t mixed_iterations = 0;      ///< float32-prelude share, summed
  std::size_t components_mmsim = 0;
  std::size_t components_psor = 0;
  std::size_t components_lemke = 0;
  /// Jobs whose accepted solve actually started from a matching warm-start
  /// payload in its slot.
  std::size_t warm_started = 0;
  bool converged = true;  ///< false iff some ladder was exhausted
  lcp::MmsimPhaseTimes phase;
  RecoveryStats recovery;  ///< ladder attempts, clamps, failure records
  /// Cells of exhausted components; their entries in x hold snap positions
  /// (gp_x clamped into the chip) and the caller must clamp the restored
  /// position the same way the legalizer does.
  std::vector<std::size_t> clamped_cells;
};

/// Solves an explicit set of components of `model` — each through the
/// tiered solver policy and the per-component escalation ladder — and
/// scatters every primal solution into the global vector `x` (entries of
/// other components are left untouched). Each job's sub-problem is
/// extracted, solved, scattered, and released inside its worker, so at most
/// one extraction per pool thread is live at a time. Jobs run in parallel;
/// each slot warm-starts its solve when it holds a matching-shape payload,
/// and exhausted ladders degrade to snap clamps exactly like the full
/// legalizer. This is the session/ECO building block: the caller decides
/// which components are dirty and which slot backs each one.
ComponentSolveReport solve_components(const db::Design& design,
                                      const LegalizationModel& model,
                                      const std::vector<ComponentSolveJob>& jobs,
                                      const MmsimLegalizerOptions& options,
                                      const lcp::RecoveryOptions& recovery,
                                      lcp::Vector& x);

}  // namespace mch::legal
