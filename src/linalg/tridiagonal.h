// Tridiagonal matrices and the Thomas solve.
//
// The MMSIM splitting approximates the Schur complement B·K⁻¹·Bᵀ by its
// tridiagonal part D, so the (2,2) block of every per-iteration linear solve
// is (D/θ* + I) — a tridiagonal system solved in O(m) by the Thomas
// algorithm. The algorithm is stable here because the systems we feed it are
// symmetric positive definite (D is the tridiagonal part of an SPD matrix
// shifted by +I).
#pragma once

#include <cstddef>

#include "linalg/vector_ops.h"

namespace mch::linalg {

/// Symmetric-storage-free tridiagonal matrix with independent bands.
class Tridiagonal {
 public:
  /// Zero matrix of size n.
  explicit Tridiagonal(std::size_t n = 0)
      : diag_(n, 0.0),
        lower_(n > 0 ? n - 1 : 0, 0.0),
        upper_(n > 0 ? n - 1 : 0, 0.0) {}

  std::size_t size() const { return diag_.size(); }

  double& diag(std::size_t i) { return diag_[i]; }
  double diag(std::size_t i) const { return diag_[i]; }
  /// Sub-diagonal entry (i+1, i), 0 <= i < n-1.
  double& lower(std::size_t i) { return lower_[i]; }
  double lower(std::size_t i) const { return lower_[i]; }
  /// Super-diagonal entry (i, i+1), 0 <= i < n-1.
  double& upper(std::size_t i) { return upper_[i]; }
  double upper(std::size_t i) const { return upper_[i]; }

  /// Returns alpha * this + beta * I as a new matrix.
  Tridiagonal scaled_plus_identity(double alpha, double beta) const;

  /// y = T x.
  void multiply(const Vector& x, Vector& y) const;

  /// Solves T x = rhs by the Thomas algorithm. Requires T nonsingular
  /// without pivoting (guaranteed for the SPD-shifted systems used here).
  /// Returns false if a pivot underflows.
  bool solve(const Vector& rhs, Vector& x) const;

 private:
  Vector diag_;
  Vector lower_;
  Vector upper_;
};

}  // namespace mch::linalg
