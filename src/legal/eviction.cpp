#include "legal/eviction.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mch::legal {

void OwnedOccupancy::place(db::Design& design, std::size_t id,
                           std::size_t base_row, SiteIndex site) {
  db::Cell& cell = design.cells()[id];
  const SiteIndex w = grid_.width_sites(cell);
  grid_.occupy(base_row, cell.height_rows, site, w);
  for (std::size_t r = base_row; r < base_row + cell.height_rows; ++r)
    owners_[r][site] = {site + w, id};
  cell.x = static_cast<double>(site) * chip().site_width;
  cell.y = chip().row_y(base_row);
}

void OwnedOccupancy::remove(db::Design& design, std::size_t id) {
  db::Cell& cell = design.cells()[id];
  const auto base_row = static_cast<std::size_t>(
      std::llround(cell.y / chip().row_height));
  const auto site =
      static_cast<SiteIndex>(std::llround(cell.x / chip().site_width));
  grid_.release(base_row, cell.height_rows, site, grid_.width_sites(cell));
  for (std::size_t r = base_row; r < base_row + cell.height_rows; ++r)
    owners_[r].erase(site);
}

void OwnedOccupancy::place_fixed(const db::Design& design, std::size_t id) {
  const db::Cell& cell = design.cells()[id];
  MCH_CHECK(cell.fixed);
  const double height =
      static_cast<double>(cell.height_rows) * chip().row_height;
  const auto first_row = static_cast<std::size_t>(std::clamp(
      std::floor(cell.y / chip().row_height + 1e-9), 0.0,
      static_cast<double>(chip().num_rows)));
  const auto end_row = static_cast<std::size_t>(std::clamp(
      std::ceil((cell.y + height) / chip().row_height - 1e-9), 0.0,
      static_cast<double>(chip().num_rows)));
  const auto site_start = std::max<SiteIndex>(
      0, static_cast<SiteIndex>(std::floor(cell.x / chip().site_width + 1e-9)));
  const auto site_end = std::min<SiteIndex>(
      grid_.num_sites(),
      static_cast<SiteIndex>(
          std::ceil((cell.x + cell.width) / chip().site_width - 1e-9)));
  if (site_start >= site_end) return;
  for (std::size_t r = first_row; r < end_row; ++r) {
    grid_.occupy(r, 1, site_start, site_end - site_start);
    owners_[r][site_start] = {site_end, id};
  }
}

std::vector<std::size_t> OwnedOccupancy::blockers(std::size_t base_row,
                                                  std::size_t height,
                                                  SiteIndex site,
                                                  SiteIndex width) const {
  std::vector<std::size_t> ids;
  for (std::size_t r = base_row; r < base_row + height; ++r) {
    const auto& row = owners_[r];
    auto it = row.upper_bound(site);
    if (it != row.begin()) {
      auto prev = std::prev(it);
      if (prev->second.first > site) ids.push_back(prev->second.second);
    }
    for (; it != row.end() && it->first < site + width; ++it)
      ids.push_back(it->second.second);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

bool OwnedOccupancy::place_with_eviction(db::Design& design, std::size_t id,
                                         double target_x, double target_y) {
  db::Cell& cell = design.cells()[id];
  const PlacementCandidate direct =
      grid_.find_nearest(cell, target_x, target_y);
  if (direct.found) {
    place(design, id, direct.base_row, direct.site);
    return true;
  }

  const std::size_t h = cell.height_rows;
  if (h > chip().num_rows) return false;
  const std::size_t max_base = chip().num_rows - h;
  const SiteIndex w = grid_.width_sites(cell);
  const auto anchor = design.nearest_row(target_y, h);

  for (std::size_t dist = 0; dist <= chip().num_rows; ++dist) {
    bool any = false;
    for (const int sign : {+1, -1}) {
      if (dist == 0 && sign < 0) continue;
      const auto row = static_cast<std::ptrdiff_t>(anchor) +
                       sign * static_cast<std::ptrdiff_t>(dist);
      if (row < 0 || row > static_cast<std::ptrdiff_t>(max_base)) continue;
      any = true;
      const auto base = static_cast<std::size_t>(row);
      if (!cell.rail_compatible(chip(), base)) continue;

      const auto site = std::clamp<SiteIndex>(
          static_cast<SiteIndex>(std::llround(target_x / chip().site_width)),
          0, grid_.num_sites() - w);
      const std::vector<std::size_t> victims = blockers(base, h, site, w);
      const bool all_single =
          std::all_of(victims.begin(), victims.end(), [&](std::size_t v) {
            return !design.cells()[v].fixed &&
                   design.cells()[v].height_rows == 1;
          });
      if (!all_single) continue;

      for (const std::size_t v : victims) remove(design, v);
      place(design, id, base, site);
      for (const std::size_t v : victims) {
        db::Cell& evicted = design.cells()[v];
        const PlacementCandidate spot =
            grid_.find_nearest(evicted, evicted.gp_x, evicted.gp_y);
        if (!spot.found) return false;  // chip genuinely has no capacity
        place(design, v, spot.base_row, spot.site);
      }
      return true;
    }
    if (!any) break;
  }
  return false;
}

}  // namespace mch::legal
