// LegalizationSession tests: the resident service must serve full solves
// bitwise identical to the one-shot flow, match-mode ECO requests bitwise
// identical to a from-scratch legalization of the same design state, and
// incremental ECO requests that stay legal while re-solving only the dirty
// components. Registered with the MT4/PART/RECOVERY variants so the same
// contracts hold with a 4-thread pool, under the tiered partition mode, and
// with the fault-injected recovery ladder engaged.
#include "service/session.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "gen/generator.h"
#include "legal/flow.h"
#include "util/rng.h"

namespace mch::service {
namespace {

db::Design random_design(std::size_t cells, std::uint64_t seed,
                         double density = 0.7) {
  gen::GeneratorOptions options;
  options.seed = seed;
  return gen::generate_random_design(cells - cells / 10, cells / 10, density,
                                     options);
}

std::vector<EcoOp> jitter_moves(const db::Design& design, std::size_t count,
                                std::uint64_t seed) {
  const db::Chip& chip = design.chip();
  Rng rng(seed);
  std::vector<EcoOp> ops;
  while (ops.size() < count) {
    const auto id = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(design.num_cells()) - 1));
    const db::Cell& cell = design.cells()[id];
    if (cell.fixed || cell.erased) continue;
    ops.push_back(EcoOp::move(
        id, cell.gp_x + rng.normal(0.0, 4.0 * chip.site_width),
        cell.gp_y + rng.normal(0.0, 0.6 * chip.row_height)));
  }
  return ops;
}

void expect_same_positions(const db::Design& a, const db::Design& b) {
  ASSERT_EQ(a.num_cells(), b.num_cells());
  for (std::size_t c = 0; c < a.num_cells(); ++c) {
    ASSERT_EQ(a.cells()[c].erased, b.cells()[c].erased) << "cell " << c;
    if (a.cells()[c].erased) continue;
    EXPECT_EQ(a.cells()[c].x, b.cells()[c].x) << "cell " << c;
    EXPECT_EQ(a.cells()[c].y, b.cells()[c].y) << "cell " << c;
    EXPECT_EQ(a.cells()[c].flipped, b.cells()[c].flipped) << "cell " << c;
  }
}

TEST(SessionTest, FullLegalizeMatchesOneShotBitwise) {
  db::Design design = random_design(2000, 21);
  db::Design reference = design;

  LegalizationSession session(design);
  const SessionResult served = session.full_legalize(SolveMode::kMatch);
  EXPECT_TRUE(served.legal) << served.legality_summary;
  EXPECT_EQ(served.kind, RequestKind::kFullLegalize);

  legal::FlowOptions options;
  options.solver.partition = legal::PartitionMode::kMatch;
  const legal::FlowResult one_shot = legal::legalize(reference, options);
  ASSERT_TRUE(one_shot.legal);

  expect_same_positions(session.design(), reference);
}

TEST(SessionTest, MatchModeEcoBitwiseIdenticalToScratch) {
  db::Design design = random_design(2000, 22);
  LegalizationSession session(std::move(design));
  ASSERT_TRUE(session.full_legalize(SolveMode::kMatch).legal);

  EcoRequest request;
  request.ops = jitter_moves(session.design(), 12, 77);
  request.mode = SolveMode::kMatch;
  const SessionResult served = session.eco(request);
  EXPECT_TRUE(served.legal) << served.legality_summary;
  EXPECT_EQ(served.mode, SolveMode::kMatch);
  EXPECT_FALSE(served.session.incremental);

  // The session already applied the ops, so its design *is* the post-ECO
  // state; a from-scratch lockstep legalization of a copy must reproduce
  // the served positions bit for bit.
  db::Design scratch = session.design();
  legal::FlowOptions options;
  options.solver.partition = legal::PartitionMode::kMatch;
  const legal::FlowResult reference = legal::legalize(scratch, options);
  ASSERT_TRUE(reference.legal);

  expect_same_positions(session.design(), scratch);
}

TEST(SessionTest, IncrementalEcoLegalAndSkipsCleanComponents) {
  db::Design design = random_design(5000, 23);
  LegalizationSession session(std::move(design));
  ASSERT_TRUE(session.full_legalize().legal);
  session.commit_legal_as_gp();
  ASSERT_TRUE(session.full_legalize().legal);

  const SessionResult served =
      session.eco(jitter_moves(session.design(), 6, 78));
  EXPECT_TRUE(served.legal) << served.legality_summary;
  EXPECT_EQ(served.kind, RequestKind::kEco);
  EXPECT_EQ(served.session.touched_cells, 6u);
  EXPECT_GT(served.session.affected_rows, 0u);
  if (served.session.full_solve_fallbacks == 0) {
    EXPECT_TRUE(served.session.incremental);
    EXPECT_GT(served.session.components_dirty, 0u);
    EXPECT_LT(served.session.components_dirty,
              served.session.components_total);
    EXPECT_GT(served.session.components_reused, 0u);
    EXPECT_EQ(served.session.components_dirty +
                  served.session.components_reused,
              served.session.components_total);
  }
}

TEST(SessionTest, IncrementalInsertAndEraseStayLegal) {
  db::Design design = random_design(3000, 24);
  LegalizationSession session(std::move(design));
  ASSERT_TRUE(session.full_legalize().legal);
  session.commit_legal_as_gp();
  ASSERT_TRUE(session.full_legalize().legal);

  // Insert a clone of a movable cell near mid-chip, erase another cell.
  const db::Chip& chip = session.design().chip();
  db::Cell payload;
  std::size_t victim = 0;
  for (std::size_t c = 0; c < session.design().num_cells(); ++c) {
    if (session.design().cells()[c].fixed) continue;
    payload = session.design().cells()[c];
    victim = c + 1;
    break;
  }
  while (session.design().cells()[victim].fixed) ++victim;
  payload.gp_x = chip.width() / 2.0;
  payload.gp_y = chip.height() / 2.0;

  std::vector<EcoOp> ops;
  ops.push_back(EcoOp::insert(payload));
  ops.push_back(EcoOp::erase(victim));
  const SessionResult served = session.eco(std::move(ops));
  EXPECT_TRUE(served.legal) << served.legality_summary;
  EXPECT_EQ(session.design().num_erased_cells(), 1u);
  EXPECT_TRUE(session.design().cells()[victim].erased);
  // The inserted cell landed inside the die (the legality check already
  // covers overlaps and alignment for it).
  const db::Cell& inserted = session.design().cells().back();
  EXPECT_FALSE(inserted.erased);
  EXPECT_GE(inserted.x, 0.0);
  EXPECT_LE(inserted.x + inserted.width, chip.width());
}

TEST(SessionTest, DeterministicReplay) {
  // Two sessions replaying the same script must produce bit-identical
  // placements and identical per-request bookkeeping (runs again under
  // MCH_THREADS=4 via the .mt4 variant).
  std::vector<SessionResult> results[2];
  db::Design designs[2] = {random_design(3000, 25), random_design(3000, 25)};
  for (int run = 0; run < 2; ++run) {
    LegalizationSession session(std::move(designs[run]));
    results[run].push_back(session.full_legalize());
    session.commit_legal_as_gp();
    results[run].push_back(session.full_legalize());
    for (std::uint64_t r = 0; r < 3; ++r)
      results[run].push_back(
          session.eco(jitter_moves(session.design(), 5, 100 + r)));
    designs[run] = session.design();
  }
  ASSERT_EQ(results[0].size(), results[1].size());
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_EQ(results[0][i].legal, results[1][i].legal) << "request " << i;
    EXPECT_EQ(results[0][i].session.components_dirty,
              results[1][i].session.components_dirty)
        << "request " << i;
    EXPECT_EQ(results[0][i].session.components_reused,
              results[1][i].session.components_reused)
        << "request " << i;
    EXPECT_EQ(results[0][i].solver.iterations, results[1][i].solver.iterations)
        << "request " << i;
  }
  expect_same_positions(designs[0], designs[1]);
}

TEST(SessionTest, WarmStartHitsOnRepeatedRegion) {
  if (std::getenv("MCH_FORCE_SOLVER_FAILURE") != nullptr)
    GTEST_SKIP() << "fault injection discards the primary (warm) attempt";

  db::Design design = random_design(4000, 26);
  LegalizationSession session(std::move(design));
  ASSERT_TRUE(session.full_legalize().legal);
  session.commit_legal_as_gp();
  ASSERT_TRUE(session.full_legalize().legal);

  // Nudge one cell horizontally twice: the second request re-dirties the
  // same component (same anchor, same shape), whose workspace slot now
  // holds that component's previous solution — a warm-start hit.
  std::size_t id = 0;
  while (session.design().cells()[id].fixed) ++id;
  const double x0 = session.design().cells()[id].gp_x;
  const double y0 = session.design().cells()[id].gp_y;
  const double site = session.design().chip().site_width;

  const SessionResult first =
      session.eco({EcoOp::move(id, x0 + 3.0 * site, y0)});
  ASSERT_TRUE(first.legal) << first.legality_summary;
  const SessionResult second =
      session.eco({EcoOp::move(id, x0 + 5.0 * site, y0)});
  ASSERT_TRUE(second.legal) << second.legality_summary;
  if (second.session.incremental && second.session.components_dirty == 1) {
    EXPECT_GE(second.session.warm_start_hits, 1u);
    EXPECT_GT(second.session.warm_start_rate, 0.0);
  }
}

// The resident partition is now streamed out of build_model during
// run_full (no separate partition_model pass). A burst of incremental ECO
// requests right after that streamed build must find a usable partition:
// every request stays legal, the dirty/reused split covers all components,
// and repeated requests keep working as the partition is incrementally
// repatched on top of the streamed original.
TEST(SessionTest, EcoAfterStreamedBuildServesIncrementalRequests) {
  db::Design design = random_design(3000, 31);
  LegalizationSession session(std::move(design));
  ASSERT_TRUE(session.full_legalize().legal);
  session.commit_legal_as_gp();
  const SessionResult resident = session.full_legalize();
  ASSERT_TRUE(resident.legal);
  ASSERT_GT(resident.session.components_total, 0u);

  for (std::uint64_t batch = 0; batch < 3; ++batch) {
    const SessionResult served =
        session.eco(jitter_moves(session.design(), 5, 400 + batch));
    ASSERT_TRUE(served.legal) << served.legality_summary;
    EXPECT_EQ(served.session.touched_cells, 5u);
    if (served.session.full_solve_fallbacks == 0) {
      EXPECT_TRUE(served.session.incremental);
      EXPECT_GT(served.session.components_dirty, 0u);
      EXPECT_EQ(served.session.components_dirty +
                    served.session.components_reused,
                served.session.components_total);
    }
  }

  // The served end state must itself legalize from scratch (the streamed
  // partition fed the solver real components, not stale index lists).
  db::Design scratch = session.design();
  const legal::FlowResult reference = legal::legalize(scratch);
  EXPECT_TRUE(reference.legal);
}

TEST(SessionTest, EcoBeforeFirstSolveFallsBackToFull) {
  db::Design design = random_design(1500, 27);
  LegalizationSession session(std::move(design));
  const SessionResult served =
      session.eco(jitter_moves(session.design(), 3, 79));
  EXPECT_TRUE(served.legal) << served.legality_summary;
  // No resident solve existed, so the request ran the full pipeline.
  EXPECT_FALSE(served.session.incremental);
  EXPECT_GT(served.session.components_total, 0u);
}

}  // namespace
}  // namespace mch::service
