// Configurable index width for the placement database and the legalization
// model — the memory spine of the flow.
//
// Multi-million-cell designs spend their peak RSS on index arrays: variable
// maps, per-row variable lists, CSR column indices, partition component
// lists. All of these count entities of one design (cells, QP variables,
// constraint rows), none of which approach 2^32 even at 10M cells, so the
// repo-wide default is a 32-bit index — half the footprint of the
// std::size_t these containers used to hold. Configuring with
// -DMCH_INDEX64=ON widens mch::index_t back to 64 bits for hypothetical
// beyond-4G-entity workloads; everything is written against index_t, so the
// switch is a recompile, not a port.
//
// Convention: public API boundaries (function parameters, loop counters,
// return values) stay std::size_t — widening a 32-bit index to size_t is
// free and keeps call sites unchanged. Only the *stored* arrays narrow.
// Every bulk fill of an index container is guarded by check_index_range()
// so a too-large design fails loudly instead of wrapping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "util/check.h"

namespace mch {

#ifdef MCH_INDEX64
using index_t = std::uint64_t;
#else
using index_t = std::uint32_t;
#endif

static_assert(std::is_unsigned_v<index_t>, "index_t must be unsigned");

/// Sentinel for "no index" (mirrors the old static_cast<std::size_t>(-1)
/// convention; compares equal to it after widening only when index_t is
/// 64-bit, so compare against kInvalidIndex, never against size_t's -1).
inline constexpr index_t kInvalidIndex = std::numeric_limits<index_t>::max();

/// Largest entity count representable (kInvalidIndex stays a sentinel).
inline constexpr std::size_t kMaxIndexCount =
    static_cast<std::size_t>(kInvalidIndex);

/// True when `count` entities can be indexed by index_t.
constexpr bool index_fits(std::size_t count) { return count < kMaxIndexCount; }

/// Checked narrowing cast for one value.
inline index_t to_index(std::size_t value) {
  MCH_CHECK_MSG(index_fits(value),
                "index " << value << " exceeds the " << sizeof(index_t) * 8
                         << "-bit mch::index_t; rebuild with -DMCH_INDEX64=ON");
  return static_cast<index_t>(value);
}

/// Guards a bulk fill: call once with the container's final size, then cast
/// freely inside the loop.
inline void check_index_range(std::size_t count, const char* what) {
  MCH_CHECK_MSG(index_fits(count),
                what << ": " << count << " entities exceed the "
                     << sizeof(index_t) * 8
                     << "-bit mch::index_t; rebuild with -DMCH_INDEX64=ON");
}

}  // namespace mch
