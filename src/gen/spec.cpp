#include "gen/spec.h"

#include "util/check.h"

namespace mch::gen {

const std::vector<BenchmarkSpec>& ispd2015_mch_suite() {
  // Values transcribed from Table 1 of the paper.
  static const std::vector<BenchmarkSpec> suite = {
      {"des_perf_1", 103842, 8802, 0.91},
      {"des_perf_a", 99775, 8513, 0.43},
      {"des_perf_b", 103842, 8802, 0.50},
      {"edit_dist_a", 121913, 5500, 0.46},
      {"fft_1", 30297, 1984, 0.84},
      {"fft_2", 30297, 1984, 0.50},
      {"fft_a", 28718, 1907, 0.25},
      {"fft_b", 28718, 1907, 0.28},
      {"matrix_mult_1", 152427, 2898, 0.80},
      {"matrix_mult_2", 152427, 2898, 0.79},
      {"matrix_mult_a", 146837, 2813, 0.42},
      {"matrix_mult_b", 143695, 2740, 0.31},
      {"matrix_mult_c", 143695, 2740, 0.31},
      {"pci_bridge32_a", 26268, 3249, 0.38},
      {"pci_bridge32_b", 25734, 3180, 0.14},
      {"superblue11_a", 861314, 64302, 0.43},
      {"superblue12", 1172586, 114362, 0.45},
      {"superblue14", 564769, 47474, 0.56},
      {"superblue16_a", 625419, 55031, 0.48},
      {"superblue19", 478109, 27988, 0.52},
  };
  return suite;
}

const BenchmarkSpec& find_spec(const std::string& name) {
  for (const BenchmarkSpec& spec : ispd2015_mch_suite())
    if (spec.name == name) return spec;
  MCH_CHECK_MSG(false, "unknown benchmark: " << name);
  // Unreachable; MCH_CHECK_MSG throws.
  return ispd2015_mch_suite().front();
}

}  // namespace mch::gen
