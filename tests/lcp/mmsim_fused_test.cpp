// Bitwise-equivalence suite for the fused MMSIM iteration kernels: the
// fused path must reproduce the reference (stage-by-stage) path bit for
// bit — iterate by iterate, on z, the convergence delta, and the final
// solve results. Registered again as ".mt4" with MCH_THREADS=4 so the
// contract is also checked through the parallel runtime's chunked sweeps.
#include <gtest/gtest.h>

#include <cstring>

#include "gen/generator.h"
#include "lcp/mmsim.h"
#include "legal/model.h"
#include "legal/row_assign.h"

namespace mch::lcp {
namespace {

bool bitwise_equal(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// The fused/unfused bitwise contract is a *double*-kernel contract: the
/// mixed iterate engages only on the fused path (and carries no bitwise
/// guarantee), so the suite pins kDouble instead of inheriting
/// MCH_PRECISION from the environment.
MmsimOptions double_options() {
  MmsimOptions options;
  options.precision = MmsimPrecision::kDouble;
  return options;
}

legal::LegalizationModel make_model(std::size_t singles, std::size_t doubles,
                                    double density, std::uint64_t seed,
                                    double triple_fraction = 0.0,
                                    double quad_fraction = 0.0) {
  gen::GeneratorOptions opts;
  opts.seed = seed;
  opts.nets_per_cell = 0.0;
  opts.triple_fraction = triple_fraction;
  opts.quad_fraction = quad_fraction;
  db::Design design =
      gen::generate_random_design(singles, doubles, density, opts);
  const legal::RowAssignment rows = legal::assign_rows(design);
  return legal::build_model(design, rows);
}

void expect_stepwise_bitwise(const legal::LegalizationModel& model,
                             std::size_t iterations) {
  MmsimOptions options = double_options();
  options.fused = false;
  const MmsimSolver reference(model.qp, options);
  options.fused = true;
  const MmsimSolver fused(model.qp, options);

  MmsimSolver::State ref_state = reference.make_state();
  MmsimSolver::State fused_state = fused.make_state();
  for (std::size_t it = 0; it < iterations; ++it) {
    const double ref_delta = reference.step(ref_state);
    const double fused_delta = fused.step(fused_state);
    ASSERT_EQ(std::memcmp(&ref_delta, &fused_delta, sizeof(double)), 0)
        << "delta diverged at iteration " << it;
    ASSERT_TRUE(bitwise_equal(ref_state.z, fused_state.z))
        << "z diverged at iteration " << it;
  }
}

TEST(MmsimFusedTest, StepwiseBitwiseSingleHeight) {
  expect_stepwise_bitwise(make_model(400, 0, 0.6, 3), 150);
}

TEST(MmsimFusedTest, StepwiseBitwiseMixedHeight) {
  expect_stepwise_bitwise(make_model(300, 60, 0.7, 5), 150);
}

// Triple/quad-height cells exercise the runtime-sized fallback of the
// fused block sweep next to the unrolled 2×2 path.
TEST(MmsimFusedTest, StepwiseBitwiseTallBlocks) {
  expect_stepwise_bitwise(make_model(250, 40, 0.65, 9, 0.1, 0.05), 150);
}

TEST(MmsimFusedTest, SolveResultsBitwiseIdentical) {
  const legal::LegalizationModel model = make_model(500, 60, 0.7, 17);
  MmsimOptions options = double_options();
  options.tolerance = 1e-8;
  options.max_iterations = 50000;
  options.fused = false;
  const MmsimResult reference = MmsimSolver(model.qp, options).solve();
  options.fused = true;
  const MmsimResult fused = MmsimSolver(model.qp, options).solve();

  ASSERT_TRUE(reference.converged);
  ASSERT_TRUE(fused.converged);
  EXPECT_EQ(reference.iterations, fused.iterations);
  EXPECT_TRUE(bitwise_equal(reference.z, fused.z));
  EXPECT_TRUE(bitwise_equal(reference.x, fused.x));
  EXPECT_TRUE(bitwise_equal(reference.dual, fused.dual));
}

// The solve must not depend on where s⁽⁰⁾ came from: solve_in on a reused
// state is the same computation as solve_from on a fresh one.
TEST(MmsimFusedTest, SolveInMatchesSolveFromBitwise) {
  const legal::LegalizationModel model = make_model(300, 30, 0.65, 23);
  const MmsimSolver solver(model.qp, double_options());
  const MmsimResult fresh = solver.solve();

  MmsimSolver::State state = solver.make_state();
  solver.solve_in(state);                       // dirty the buffers
  const MmsimResult reused = solver.solve_in(state);  // cold restart
  EXPECT_TRUE(bitwise_equal(fresh.z, reused.z));
  EXPECT_EQ(fresh.iterations, reused.iterations);
}

}  // namespace
}  // namespace mch::lcp
