#include "io/bookshelf.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace mch::io {

namespace {

/// Strips comments (#...) and whitespace; returns false at end of stream.
bool next_content_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim.
    const auto begin = line.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r\n");
    line = line.substr(begin, end - begin + 1);
    if (!line.empty()) return true;
  }
  return false;
}

/// Splits on whitespace, treating ':' as its own token.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char ch : line) {
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == ':') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      if (ch == ':') tokens.emplace_back(":");
    } else {
      current += ch;
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

double to_double(const std::string& token) {
  std::size_t consumed = 0;
  const double value = std::stod(token, &consumed);
  MCH_CHECK_MSG(consumed == token.size(), "bad number: " << token);
  return value;
}

struct BookshelfNode {
  std::string name;
  double width = 0.0;
  double height = 0.0;
  bool terminal = false;
  double x = 0.0;
  double y = 0.0;
  bool fixed = false;
  std::size_t cell_index = 0;  ///< index in the Design after conversion
};

struct BookshelfRow {
  double coordinate = 0.0;  ///< y of the row's bottom edge
  double height = 0.0;
  double site_width = 1.0;
  double site_spacing = 1.0;
  double subrow_origin = 0.0;
  double num_sites = 0.0;
};

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream file(path);
  MCH_CHECK_MSG(file.is_open(), "cannot open " << path);
  return file;
}

std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

void parse_nodes(const std::string& path,
                 std::vector<BookshelfNode>& nodes,
                 std::map<std::string, std::size_t>& index) {
  std::ifstream file = open_or_throw(path);
  std::string line;
  MCH_CHECK_MSG(next_content_line(file, line) &&
                    line.rfind("UCLA nodes", 0) == 0,
                path << ": missing 'UCLA nodes' header");
  while (next_content_line(file, line)) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "NumNodes" || tokens[0] == "NumTerminals") continue;
    MCH_CHECK_MSG(tokens.size() >= 3, path << ": bad node line: " << line);
    BookshelfNode node;
    node.name = tokens[0];
    node.width = to_double(tokens[1]);
    node.height = to_double(tokens[2]);
    node.terminal =
        tokens.size() >= 4 && tokens[3].rfind("terminal", 0) == 0;
    MCH_CHECK_MSG(index.emplace(node.name, nodes.size()).second,
                  path << ": duplicate node " << node.name);
    nodes.push_back(std::move(node));
  }
}

void parse_pl(const std::string& path, std::vector<BookshelfNode>& nodes,
              const std::map<std::string, std::size_t>& index) {
  std::ifstream file = open_or_throw(path);
  std::string line;
  MCH_CHECK_MSG(next_content_line(file, line) &&
                    line.rfind("UCLA pl", 0) == 0,
                path << ": missing 'UCLA pl' header");
  while (next_content_line(file, line)) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.size() < 3) continue;
    const auto it = index.find(tokens[0]);
    MCH_CHECK_MSG(it != index.end(), path << ": unknown node " << tokens[0]);
    BookshelfNode& node = nodes[it->second];
    node.x = to_double(tokens[1]);
    node.y = to_double(tokens[2]);
    node.fixed = line.find("/FIXED") != std::string::npos;
  }
}

std::vector<BookshelfRow> parse_scl(const std::string& path) {
  std::ifstream file = open_or_throw(path);
  std::string line;
  MCH_CHECK_MSG(next_content_line(file, line) &&
                    line.rfind("UCLA scl", 0) == 0,
                path << ": missing 'UCLA scl' header");
  std::vector<BookshelfRow> rows;
  bool in_row = false;
  BookshelfRow current;
  while (next_content_line(file, line)) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "CoreRow") {
      in_row = true;
      current = BookshelfRow{};
      continue;
    }
    if (tokens[0] == "End") {
      if (in_row) rows.push_back(current);
      in_row = false;
      continue;
    }
    if (!in_row) continue;
    // Key : value [Key : value ...] pairs.
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i + 1] != ":") continue;
      const std::string& key = tokens[i];
      const std::string& value = tokens[i + 2];
      if (key == "Coordinate") current.coordinate = to_double(value);
      else if (key == "Height") current.height = to_double(value);
      else if (key == "Sitewidth") current.site_width = to_double(value);
      else if (key == "Sitespacing") current.site_spacing = to_double(value);
      else if (key == "SubrowOrigin") current.subrow_origin = to_double(value);
      else if (key == "NumSites") current.num_sites = to_double(value);
    }
  }
  MCH_CHECK_MSG(!rows.empty(), path << ": no CoreRow blocks");
  return rows;
}

struct BookshelfPin {
  std::string node;
  double dx = 0.0;  ///< offset from node CENTER (Bookshelf convention)
  double dy = 0.0;
};

std::vector<std::vector<BookshelfPin>> parse_nets(const std::string& path) {
  std::ifstream file = open_or_throw(path);
  std::string line;
  MCH_CHECK_MSG(next_content_line(file, line) &&
                    line.rfind("UCLA nets", 0) == 0,
                path << ": missing 'UCLA nets' header");
  std::vector<std::vector<BookshelfPin>> nets;
  while (next_content_line(file, line)) {
    std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty() || tokens[0] == "NumNets" || tokens[0] == "NumPins")
      continue;
    if (tokens[0] == "NetDegree") {
      MCH_CHECK_MSG(tokens.size() >= 3 && tokens[1] == ":",
                    path << ": bad NetDegree line: " << line);
      const auto degree = static_cast<std::size_t>(to_double(tokens[2]));
      std::vector<BookshelfPin> pins;
      pins.reserve(degree);
      for (std::size_t p = 0; p < degree; ++p) {
        MCH_CHECK_MSG(next_content_line(file, line),
                      path << ": truncated net");
        tokens = tokenize(line);
        MCH_CHECK_MSG(!tokens.empty(), path << ": bad pin line");
        BookshelfPin pin;
        pin.node = tokens[0];
        // Format: name I/O/B : dx dy — offsets optional.
        const auto colon = std::find(tokens.begin(), tokens.end(), ":");
        if (colon != tokens.end() && std::distance(colon, tokens.end()) >= 3) {
          pin.dx = to_double(*(colon + 1));
          pin.dy = to_double(*(colon + 2));
        }
        pins.push_back(pin);
      }
      nets.push_back(std::move(pins));
    }
  }
  return nets;
}

}  // namespace

db::Design load_bookshelf(const std::string& aux_path) {
  // 1. The .aux names the other files.
  std::string nodes_path, nets_path, pl_path, scl_path;
  {
    std::ifstream aux = open_or_throw(aux_path);
    std::string line;
    MCH_CHECK_MSG(next_content_line(aux, line), aux_path << ": empty .aux");
    const std::string dir = directory_of(aux_path);
    for (const std::string& token : tokenize(line)) {
      const auto assign = [&](const char* ext, std::string& out) {
        if (token.size() > std::strlen(ext) &&
            token.rfind(ext) == token.size() - std::strlen(ext))
          out = dir + "/" + token;
      };
      assign(".nodes", nodes_path);
      assign(".nets", nets_path);
      assign(".pl", pl_path);
      assign(".scl", scl_path);
    }
  }
  MCH_CHECK_MSG(!nodes_path.empty() && !pl_path.empty() && !scl_path.empty(),
                aux_path << ": .aux must reference .nodes, .pl and .scl");

  // 2. Rows — must be uniform.
  const std::vector<BookshelfRow> rows = parse_scl(scl_path);
  const BookshelfRow& first = rows.front();
  double min_y = first.coordinate;
  double min_x = first.subrow_origin;
  for (const BookshelfRow& row : rows) {
    MCH_CHECK_MSG(row.height == first.height &&
                      row.site_width == first.site_width &&
                      row.site_spacing == first.site_spacing &&
                      row.num_sites == first.num_sites &&
                      row.subrow_origin == first.subrow_origin,
                  scl_path << ": non-uniform rows are not supported");
    min_y = std::min(min_y, row.coordinate);
    min_x = std::min(min_x, row.subrow_origin);
  }
  MCH_CHECK_MSG(first.site_spacing == first.site_width,
                scl_path << ": site spacing != site width unsupported");

  db::Chip chip;
  chip.num_rows = rows.size();
  chip.num_sites = static_cast<std::size_t>(first.num_sites);
  chip.site_width = first.site_width;
  chip.row_height = first.height;
  db::Design design(chip);

  // 3. Nodes + placement.
  std::vector<BookshelfNode> nodes;
  std::map<std::string, std::size_t> index;
  parse_nodes(nodes_path, nodes, index);
  parse_pl(pl_path, nodes, index);

  for (BookshelfNode& node : nodes) {
    db::Cell cell;
    cell.width = node.width;
    const double rows_exact = node.height / chip.row_height;
    if (node.terminal || node.fixed) {
      cell.fixed = true;
      cell.height_rows = db::to_height_rows(std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(rows_exact - 1e-9))));
    } else {
      const double rounded = std::round(rows_exact);
      MCH_CHECK_MSG(std::abs(rows_exact - rounded) < 1e-6 && rounded >= 1.0,
                    nodes_path << ": movable node " << node.name
                               << " height " << node.height
                               << " is not a row multiple");
      cell.height_rows = db::to_height_rows(static_cast<std::size_t>(rounded));
    }
    cell.gp_x = cell.x = node.x - min_x;
    cell.gp_y = cell.y = node.y - min_y;
    node.cell_index = design.add_cell(cell);
  }

  // Rail feasibility for even-height movables: adopt the rail of the
  // nearest legal row so the loaded GP is always placeable.
  for (const BookshelfNode& node : nodes) {
    db::Cell& cell = design.cells()[node.cell_index];
    if (cell.fixed || !cell.is_even_height()) continue;
    const std::size_t row = design.nearest_row(cell.gp_y, cell.height_rows);
    cell.bottom_rail = chip.rail_at(row);
  }

  // 4. Nets (pin offsets: Bookshelf center-relative → bottom-left).
  if (!nets_path.empty()) {
    for (const auto& pins : parse_nets(nets_path)) {
      db::Net net;
      net.pins.reserve(pins.size());
      for (const BookshelfPin& pin : pins) {
        const auto it = index.find(pin.node);
        MCH_CHECK_MSG(it != index.end(),
                      nets_path << ": unknown node " << pin.node);
        const BookshelfNode& node = nodes[it->second];
        db::Pin converted;
        converted.cell = node.cell_index;
        converted.dx = node.width / 2.0 + pin.dx;
        converted.dy = node.height / 2.0 + pin.dy;
        net.pins.push_back(converted);
      }
      design.add_net(std::move(net));
    }
  }

  const std::size_t slash = aux_path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? aux_path : aux_path.substr(slash + 1);
  if (base.size() > 4 && base.rfind(".aux") == base.size() - 4)
    base.erase(base.size() - 4);
  design.name = base;
  return design;
}

void save_bookshelf_pl(const std::string& path, const db::Design& design) {
  std::ofstream pl(path);
  MCH_CHECK_MSG(pl.is_open(), "cannot open " << path);
  pl << std::setprecision(17);
  pl << "UCLA pl 1.0\n\n";
  for (const db::Cell& cell : design.cells()) {
    pl << 'o' << cell.id << '\t' << cell.x << '\t' << cell.y << "\t: "
       << (cell.flipped ? "FS" : "N");
    if (cell.fixed) pl << " /FIXED";
    pl << '\n';
  }
  MCH_CHECK_MSG(pl.good(), "stream failure writing " << path);
}

void save_bookshelf(const std::string& directory, const std::string& name,
                    const db::Design& design) {
  const db::Chip& chip = design.chip();
  const std::string prefix = directory + "/" + name;

  {
    std::ofstream aux(prefix + ".aux");
    MCH_CHECK_MSG(aux.is_open(), "cannot open " << prefix << ".aux");
    aux << "RowBasedPlacement : " << name << ".nodes " << name << ".nets "
        << name << ".wts " << name << ".pl " << name << ".scl\n";
  }
  {
    std::ofstream nodes(prefix + ".nodes");
    nodes << std::setprecision(17);
    nodes << "UCLA nodes 1.0\n\n";
    nodes << "NumNodes : " << design.num_cells() << '\n';
    nodes << "NumTerminals : " << design.num_fixed_cells() << '\n';
    for (const db::Cell& cell : design.cells()) {
      nodes << "\to" << cell.id << '\t' << cell.width << '\t'
            << static_cast<double>(cell.height_rows) * chip.row_height;
      if (cell.fixed) nodes << "\tterminal";
      nodes << '\n';
    }
    MCH_CHECK_MSG(nodes.good(), "stream failure writing nodes");
  }
  {
    std::ofstream nets(prefix + ".nets");
    nets << std::setprecision(17);
    nets << "UCLA nets 1.0\n\n";
    std::size_t num_pins = 0;
    for (const db::NetView& net : design.nets()) num_pins += net.pins.size();
    nets << "NumNets : " << design.num_nets() << '\n';
    nets << "NumPins : " << num_pins << '\n';
    for (std::size_t n = 0; n < design.num_nets(); ++n) {
      const db::NetView net = design.nets()[n];
      nets << "NetDegree : " << net.pins.size() << "\tn" << n << '\n';
      for (const db::Pin& pin : net.pins) {
        const db::Cell& cell = design.cells()[pin.cell];
        const double height =
            static_cast<double>(cell.height_rows) * chip.row_height;
        nets << "\to" << cell.id << "\tB : "
             << pin.dx - cell.width / 2.0 << ' '
             << pin.dy - height / 2.0 << '\n';
      }
    }
    MCH_CHECK_MSG(nets.good(), "stream failure writing nets");
  }
  {
    std::ofstream wts(prefix + ".wts");
    wts << "UCLA wts 1.0\n";
  }
  save_bookshelf_pl(prefix + ".pl", design);
  {
    std::ofstream scl(prefix + ".scl");
    scl << std::setprecision(17);
    scl << "UCLA scl 1.0\n\n";
    scl << "NumRows : " << chip.num_rows << '\n';
    for (std::size_t r = 0; r < chip.num_rows; ++r) {
      scl << "CoreRow Horizontal\n";
      scl << "  Coordinate : " << chip.row_y(r) << '\n';
      scl << "  Height : " << chip.row_height << '\n';
      scl << "  Sitewidth : " << chip.site_width << '\n';
      scl << "  Sitespacing : " << chip.site_width << '\n';
      scl << "  SubrowOrigin : 0 NumSites : " << chip.num_sites << '\n';
      scl << "End\n";
    }
    MCH_CHECK_MSG(scl.good(), "stream failure writing scl");
  }
}

}  // namespace mch::io
