#include "eval/suite_runner.h"

#include "baselines/local.h"
#include "baselines/mixed_abacus.h"
#include "baselines/tetris.h"
#include "db/legality.h"
#include "legal/tetris_alloc.h"
#include "util/timer.h"

namespace mch::eval {

const char* to_string(Legalizer legalizer) {
  switch (legalizer) {
    case Legalizer::kMmsim:
      return "mmsim";
    case Legalizer::kTetris:
      return "tetris";
    case Legalizer::kLocalBase:
      return "local";
    case Legalizer::kLocalImproved:
      return "local-imp";
    case Legalizer::kMixedAbacus:
      return "mixed-abacus";
  }
  return "unknown";
}

RunResult run_legalizer(db::Design& design, Legalizer which,
                        const legal::FlowOptions& mmsim_options) {
  RunResult result;
  result.benchmark = design.name;
  result.legalizer = which;
  result.num_cells = design.num_cells();
  result.num_single = design.count_cells_with_height(1);
  result.num_double = design.count_cells_with_height(2);
  result.density = design.density();
  result.gp_hpwl = gp_hpwl(design);

  design.reset_positions_to_gp();

  Timer timer;
  switch (which) {
    case Legalizer::kMmsim: {
      legal::FlowOptions options = mmsim_options;
      options.verify = false;  // verified uniformly below
      const legal::FlowResult flow = legal::legalize(design, options);
      result.illegal_after_solver = flow.allocation.illegal_cells;
      result.solver_iterations = flow.solver.iterations;
      result.solver_converged = flow.solver.converged;
      break;
    }
    case Legalizer::kTetris:
      baselines::tetris_legalize(design);
      break;
    case Legalizer::kLocalBase:
      baselines::local_legalize(design, baselines::LocalVariant::kBase);
      break;
    case Legalizer::kLocalImproved:
      baselines::local_legalize(design, baselines::LocalVariant::kImproved);
      break;
    case Legalizer::kMixedAbacus:
      baselines::mixed_abacus_legalize(design);
      // Cluster output is continuous; snap to sites the same way the
      // MMSIM flow does.
      legal::tetris_allocate(design);
      break;
  }
  result.seconds = timer.seconds();

  const db::LegalityReport report = db::check_legality(design);
  result.legal = report.legal();
  result.legality_summary = report.summary();

  result.disp = displacement(design);
  result.hpwl = hpwl(design);
  result.delta_hpwl =
      result.gp_hpwl > 0.0 ? (result.hpwl - result.gp_hpwl) / result.gp_hpwl
                           : 0.0;
  return result;
}

}  // namespace mch::eval
