// AVX-512 variants of the linalg sweep kernels (8-wide double). Compiled
// with -mavx512f -mavx512vl -mavx512dq -mavx512bw and -ffp-contract=off;
// only reached through csr_simd_kernels() after the runtime CPU check.
//
// Bitwise contract: every lane replicates the scalar reference chain of
// csr.cpp / block_diag.cpp term for term (see simd_kernels.h). Short rows
// are handled with mask registers — masked gathers never touch memory for
// inactive lanes and masked adds keep the accumulator of a shorter row
// exactly what the scalar loop produces.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "linalg/simd_kernels.h"

#if defined(MCH_SIMD_X86)

namespace mch::linalg::kernels {
namespace {

inline __m256i load_idx8(const std::uint32_t* idx, std::size_t i) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
}

/// Row-length masks for rows [i, i+8): m1 = len >= 1, m2 = len >= 2.
inline void len_masks8(const std::uint8_t* len, std::size_t i, __mmask8& m1,
                       __mmask8& m2) {
  const __m128i l8 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(len + i));
  const __m512i l = _mm512_cvtepu8_epi64(l8);
  m1 = _mm512_cmp_epu64_mask(l, _mm512_set1_epi64(1), _MM_CMPINT_GE);
  m2 = _mm512_cmp_epu64_mask(l, _mm512_set1_epi64(2), _MM_CMPINT_GE);
}

/// sum = (0 + v0·x[c0]) for len>=1 lanes (0.0 for empty rows), then
/// += v1·x[c1] for len>=2 lanes — the scalar CSR row fold.
inline __m512d row_sum8(const CsrGather2Ctx& g, std::size_t i, const double* x,
                        __mmask8 m1, __mmask8 m2) {
  const __m512d zero = _mm512_setzero_pd();
  const __m512d x0 = _mm512_mask_i32gather_pd(zero, m1, load_idx8(g.c0, i),
                                              x, 8);
  const __m512d x1 = _mm512_mask_i32gather_pd(zero, m2, load_idx8(g.c1, i),
                                              x, 8);
  const __m512d v0 = _mm512_loadu_pd(g.v0 + i);
  const __m512d v1 = _mm512_loadu_pd(g.v1 + i);
  __m512d sum = _mm512_maskz_add_pd(m1, zero, _mm512_mul_pd(v0, x0));
  sum = _mm512_mask_add_pd(sum, m2, sum, _mm512_mul_pd(v1, x1));
  return sum;
}

inline double row_sum_tail(const CsrGather2Ctx& g, std::size_t i,
                           const double* x) {
  double sum = 0.0;
  if (g.len[i] >= 1) sum += g.v0[i] * x[g.c0[i]];
  if (g.len[i] >= 2) sum += g.v1[i] * x[g.c1[i]];
  return sum;
}

void csr_add(const CsrGather2Ctx& g, double alpha, const double* x, double* y,
             std::size_t lo, std::size_t hi) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    __mmask8 m1, m2;
    len_masks8(g.len, i, m1, m2);
    const __m512d sum = row_sum8(g, i, x, m1, m2);
    const __m512d yv = _mm512_loadu_pd(y + i);
    _mm512_storeu_pd(y + i, _mm512_add_pd(yv, _mm512_mul_pd(va, sum)));
  }
  for (; i < hi; ++i) y[i] += alpha * row_sum_tail(g, i, x);
}

void csr_add2(const CsrGather2Ctx& g, double a1, const double* x1, double a2,
              const double* x2, double* y, std::size_t lo, std::size_t hi) {
  const __m512d va1 = _mm512_set1_pd(a1);
  const __m512d va2 = _mm512_set1_pd(a2);
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    __mmask8 m1, m2;
    len_masks8(g.len, i, m1, m2);
    const __m512d s1 = row_sum8(g, i, x1, m1, m2);
    const __m512d s2 = row_sum8(g, i, x2, m1, m2);
    __m512d yv = _mm512_loadu_pd(y + i);
    yv = _mm512_add_pd(yv, _mm512_mul_pd(va1, s1));
    yv = _mm512_add_pd(yv, _mm512_mul_pd(va2, s2));
    _mm512_storeu_pd(y + i, yv);
  }
  for (; i < hi; ++i) {
    y[i] += a1 * row_sum_tail(g, i, x1);
    y[i] += a2 * row_sum_tail(g, i, x2);
  }
}

void ew_scale_add(double alpha, const double* v, const double* x, double* y,
                  std::size_t lo, std::size_t hi) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    // y[i] += (alpha * v[i]) * x[i] — the scalar sweep's left-to-right
    // association.
    const __m512d t = _mm512_mul_pd(_mm512_mul_pd(va, _mm512_loadu_pd(v + i)),
                                    _mm512_loadu_pd(x + i));
    _mm512_storeu_pd(y + i, _mm512_add_pd(_mm512_loadu_pd(y + i), t));
  }
  for (; i < hi; ++i) y[i] += alpha * v[i] * x[i];
}

void ew_mul(const double* v, const double* x, double* y, std::size_t lo,
            std::size_t hi) {
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_mul_pd(_mm512_loadu_pd(v + i), _mm512_loadu_pd(x + i)));
  }
  for (; i < hi; ++i) y[i] = v[i] * x[i];
}

}  // namespace

const CsrSimdKernels kCsrSimdAvx512 = {csr_add, csr_add2, ew_scale_add,
                                       ew_mul};

}  // namespace mch::linalg::kernels

#endif  // MCH_SIMD_X86
