// AVX-512 variants of the fused MMSIM sweeps: 8-wide double (bitwise equal
// to the scalar fused path) and 16-wide float (mixed-precision iterate).
// Compiled with -mavx512f -mavx512vl -mavx512dq -mavx512bw and
// -ffp-contract=off; entered only through mmsim_simd_kernels() after the
// runtime CPU check. See mmsim_kernels.h for the contracts.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "lcp/mmsim_kernels.h"

#if defined(MCH_SIMD_X86)

namespace mch::lcp::kernels {
namespace {

inline double dmax(double a, double b) { return a < b ? b : a; }
inline float fmax_(float a, float b) { return a < b ? b : a; }
inline double dabs(double a) { return __builtin_fabs(a); }
inline float fabs_(float a) { return __builtin_fabsf(a); }

inline __m512d vabs(__m512d v) {
  return _mm512_andnot_pd(_mm512_set1_pd(-0.0), v);
}
inline __m512 vabsf(__m512 v) {
  return _mm512_andnot_ps(_mm512_set1_ps(-0.0f), v);
}

// ---------------------------------------------------------------- double --

double primal(const PrimalCtx& c, std::size_t lo, std::size_t hi) {
  const __m512d zero = _mm512_setzero_pd();
  const __m512d vc1 = _mm512_set1_pd(c.c1);
  const __m512d vneg1 = _mm512_set1_pd(-1.0);
  const __m512d vgamma = _mm512_set1_pd(c.gamma);
  const __m512d vinvg = _mm512_set1_pd(c.inv_gamma);
  __m512d vbest = zero;
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m128i g8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(c.general + i));
    const __mmask8 keep = _mm512_cmp_epu64_mask(
        _mm512_cvtepu8_epi64(g8), _mm512_setzero_si512(), _MM_CMPINT_EQ);
    if (keep == 0) continue;  // whole group owned by the block sweep
    const __m512d s1 = _mm512_loadu_pd(c.s1 + i);
    const __m512d a1 = vabs(s1);
    // One traversal of the padded Bᵀ row slots feeds both gather terms,
    // slot 0 then slot 1 — the scalar fold order.
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c.bt_c0 + i));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c.bt_c1 + i));
    const __m512d x0 = _mm512_i32gather_pd(i0, c.s2, 8);
    const __m512d x1 = _mm512_i32gather_pd(i1, c.s2, 8);
    const __m512d v0 = _mm512_loadu_pd(c.bt_v0 + i);
    const __m512d v1 = _mm512_loadu_pd(c.bt_v1 + i);
    __m512d g_s2 = _mm512_add_pd(zero, _mm512_mul_pd(v0, x0));
    g_s2 = _mm512_add_pd(g_s2, _mm512_mul_pd(v1, x1));
    __m512d g_abs = _mm512_add_pd(zero, _mm512_mul_pd(v0, vabs(x0)));
    g_abs = _mm512_add_pd(g_abs, _mm512_mul_pd(v1, vabs(x1)));
    const __m512d kv = _mm512_loadu_pd(c.kv + i);
    // r chain in the scalar order: each += is one mul..mul then add.
    __m512d r = _mm512_add_pd(zero, _mm512_mul_pd(_mm512_mul_pd(vc1, kv), s1));
    r = _mm512_add_pd(r, g_s2);
    r = _mm512_add_pd(r, a1);
    r = _mm512_add_pd(r, _mm512_mul_pd(_mm512_mul_pd(vneg1, kv), a1));
    r = _mm512_add_pd(r, g_abs);
    r = _mm512_sub_pd(r, _mm512_mul_pd(vgamma, _mm512_loadu_pd(c.p + i)));
    const __m512d ns = _mm512_mul_pd(_mm512_loadu_pd(c.siv + i), r);
    _mm512_mask_storeu_pd(c.new_s1 + i, keep, ns);
    const __m512d zi = _mm512_mul_pd(_mm512_add_pd(vabs(ns), ns), vinvg);
    const __m512d diff = vabs(_mm512_sub_pd(zi, _mm512_loadu_pd(c.z + i)));
    _mm512_mask_storeu_pd(c.z + i, keep, zi);
    vbest = _mm512_mask_max_pd(vbest, keep, vbest, diff);
  }
  double best = _mm512_reduce_max_pd(vbest);
  for (; i < hi; ++i) {
    if (c.general[i]) continue;
    const double s1i = c.s1[i];
    const double a1 = dabs(s1i);
    double g_s2 = 0.0;
    double g_abs = 0.0;
    g_s2 += c.bt_v0[i] * c.s2[c.bt_c0[i]];
    g_abs += c.bt_v0[i] * dabs(c.s2[c.bt_c0[i]]);
    g_s2 += c.bt_v1[i] * c.s2[c.bt_c1[i]];
    g_abs += c.bt_v1[i] * dabs(c.s2[c.bt_c1[i]]);
    double r = 0.0;
    r += c.c1 * c.kv[i] * s1i;
    r += g_s2;
    r += a1;
    r += -1.0 * c.kv[i] * a1;
    r += g_abs;
    r -= c.gamma * c.p[i];
    const double ns = c.siv[i] * r;
    c.new_s1[i] = ns;
    const double zi = (dabs(ns) + ns) * c.inv_gamma;
    best = dmax(best, dabs(zi - c.z[i]));
    c.z[i] = zi;
  }
  return best;
}

/// One dual-rhs lane in the exact scalar chain (used for the i = 0 and
/// i = m−1 boundaries and the vector tail).
inline void dual_rhs_lane(const DualRhsCtx& c, std::size_t i) {
  double sum = c.diag[i] * c.s2[i];
  if (i > 0) sum += c.lower[i - 1] * c.s2[i - 1];
  if (i + 1 < c.m) sum += c.upper[i] * c.s2[i + 1];
  double t = c.inv_theta * sum + dabs(c.s2[i]) + c.gamma * c.b[i];
  double g_abs = 0.0;
  double g_used = 0.0;
  g_abs += c.b_v0[i] * dabs(c.s1[c.b_c0[i]]);
  g_used += c.b_v0[i] * c.s1_used[c.b_c0[i]];
  g_abs += c.b_v1[i] * dabs(c.s1[c.b_c1[i]]);
  g_used += c.b_v1[i] * c.s1_used[c.b_c1[i]];
  t += -1.0 * g_abs;
  t += -1.0 * g_used;
  c.rhs2[i] = t;
}

void dual_rhs(const DualRhsCtx& c, std::size_t lo, std::size_t hi) {
  const __m512d zero = _mm512_setzero_pd();
  const __m512d vneg1 = _mm512_set1_pd(-1.0);
  const __m512d vtheta = _mm512_set1_pd(c.inv_theta);
  const __m512d vgamma = _mm512_set1_pd(c.gamma);
  std::size_t i = lo;
  // Interior lanes have both tridiagonal neighbors; peel the boundaries.
  if (i == 0 && i < hi) {
    dual_rhs_lane(c, i);
    ++i;
  }
  const std::size_t vec_hi = hi == c.m ? (hi > 0 ? hi - 1 : 0) : hi;
  for (; i + 8 <= vec_hi; i += 8) {
    const __m512d s2 = _mm512_loadu_pd(c.s2 + i);
    __m512d sum = _mm512_mul_pd(_mm512_loadu_pd(c.diag + i), s2);
    sum = _mm512_add_pd(sum, _mm512_mul_pd(_mm512_loadu_pd(c.lower + i - 1),
                                           _mm512_loadu_pd(c.s2 + i - 1)));
    sum = _mm512_add_pd(sum, _mm512_mul_pd(_mm512_loadu_pd(c.upper + i),
                                           _mm512_loadu_pd(c.s2 + i + 1)));
    // t = ((1/θ·sum) + |s2|) + γ·b — the scalar expression's association.
    __m512d t = _mm512_add_pd(_mm512_mul_pd(vtheta, sum), vabs(s2));
    t = _mm512_add_pd(t, _mm512_mul_pd(vgamma, _mm512_loadu_pd(c.b + i)));
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c.b_c0 + i));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c.b_c1 + i));
    const __m512d u0 = _mm512_i32gather_pd(i0, c.s1, 8);
    const __m512d u1 = _mm512_i32gather_pd(i1, c.s1, 8);
    const __m512d w0 = _mm512_i32gather_pd(i0, c.s1_used, 8);
    const __m512d w1 = _mm512_i32gather_pd(i1, c.s1_used, 8);
    const __m512d v0 = _mm512_loadu_pd(c.b_v0 + i);
    const __m512d v1 = _mm512_loadu_pd(c.b_v1 + i);
    __m512d g_abs = _mm512_add_pd(zero, _mm512_mul_pd(v0, vabs(u0)));
    g_abs = _mm512_add_pd(g_abs, _mm512_mul_pd(v1, vabs(u1)));
    __m512d g_used = _mm512_add_pd(zero, _mm512_mul_pd(v0, w0));
    g_used = _mm512_add_pd(g_used, _mm512_mul_pd(v1, w1));
    t = _mm512_add_pd(t, _mm512_mul_pd(vneg1, g_abs));
    t = _mm512_add_pd(t, _mm512_mul_pd(vneg1, g_used));
    _mm512_storeu_pd(c.rhs2 + i, t);
  }
  for (; i < hi; ++i) dual_rhs_lane(c, i);
}

double dual_z(const DualZCtx& c, std::size_t lo, std::size_t hi) {
  const __m512d vinvg = _mm512_set1_pd(c.inv_gamma);
  __m512d vbest = _mm512_setzero_pd();
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m512d ns = _mm512_loadu_pd(c.new_s2 + i);
    const __m512d zi = _mm512_mul_pd(_mm512_add_pd(vabs(ns), ns), vinvg);
    const __m512d diff = vabs(_mm512_sub_pd(zi, _mm512_loadu_pd(c.z + i)));
    _mm512_storeu_pd(c.z + i, zi);
    vbest = _mm512_max_pd(vbest, diff);
  }
  double best = _mm512_reduce_max_pd(vbest);
  for (; i < hi; ++i) {
    const double ns = c.new_s2[i];
    const double zi = (dabs(ns) + ns) * c.inv_gamma;
    best = dmax(best, dabs(zi - c.z[i]));
    c.z[i] = zi;
  }
  return best;
}

// ----------------------------------------------------------------- float --

float primal_f(const PrimalCtxF& c, std::size_t lo, std::size_t hi) {
  const __m512 zero = _mm512_setzero_ps();
  const __m512 vc1 = _mm512_set1_ps(c.c1);
  const __m512 vneg1 = _mm512_set1_ps(-1.0f);
  const __m512 vgamma = _mm512_set1_ps(c.gamma);
  const __m512 vinvg = _mm512_set1_ps(c.inv_gamma);
  __m512 vbest = zero;
  std::size_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    const __m128i g16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c.general + i));
    const __mmask16 keep = _mm512_cmp_epu32_mask(
        _mm512_cvtepu8_epi32(g16), _mm512_setzero_si512(), _MM_CMPINT_EQ);
    if (keep == 0) continue;
    const __m512 s1 = _mm512_loadu_ps(c.s1 + i);
    const __m512 a1 = vabsf(s1);
    const __m512i i0 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(c.bt_c0 + i));
    const __m512i i1 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(c.bt_c1 + i));
    const __m512 x0 = _mm512_i32gather_ps(i0, c.s2, 4);
    const __m512 x1 = _mm512_i32gather_ps(i1, c.s2, 4);
    const __m512 v0 = _mm512_loadu_ps(c.bt_v0 + i);
    const __m512 v1 = _mm512_loadu_ps(c.bt_v1 + i);
    __m512 g_s2 = _mm512_add_ps(zero, _mm512_mul_ps(v0, x0));
    g_s2 = _mm512_add_ps(g_s2, _mm512_mul_ps(v1, x1));
    __m512 g_abs = _mm512_add_ps(zero, _mm512_mul_ps(v0, vabsf(x0)));
    g_abs = _mm512_add_ps(g_abs, _mm512_mul_ps(v1, vabsf(x1)));
    const __m512 kv = _mm512_loadu_ps(c.kv + i);
    __m512 r = _mm512_add_ps(zero, _mm512_mul_ps(_mm512_mul_ps(vc1, kv), s1));
    r = _mm512_add_ps(r, g_s2);
    r = _mm512_add_ps(r, a1);
    r = _mm512_add_ps(r, _mm512_mul_ps(_mm512_mul_ps(vneg1, kv), a1));
    r = _mm512_add_ps(r, g_abs);
    r = _mm512_sub_ps(r, _mm512_mul_ps(vgamma, _mm512_loadu_ps(c.p + i)));
    const __m512 ns = _mm512_mul_ps(_mm512_loadu_ps(c.siv + i), r);
    _mm512_mask_storeu_ps(c.new_s1 + i, keep, ns);
    const __m512 zi = _mm512_mul_ps(_mm512_add_ps(vabsf(ns), ns), vinvg);
    const __m512 diff = vabsf(_mm512_sub_ps(zi, _mm512_loadu_ps(c.z + i)));
    _mm512_mask_storeu_ps(c.z + i, keep, zi);
    vbest = _mm512_mask_max_ps(vbest, keep, vbest, diff);
  }
  float best = _mm512_reduce_max_ps(vbest);
  for (; i < hi; ++i) {
    if (c.general[i]) continue;
    const float s1i = c.s1[i];
    const float a1 = fabs_(s1i);
    float g_s2 = 0.0f;
    float g_abs = 0.0f;
    g_s2 += c.bt_v0[i] * c.s2[c.bt_c0[i]];
    g_abs += c.bt_v0[i] * fabs_(c.s2[c.bt_c0[i]]);
    g_s2 += c.bt_v1[i] * c.s2[c.bt_c1[i]];
    g_abs += c.bt_v1[i] * fabs_(c.s2[c.bt_c1[i]]);
    float r = 0.0f;
    r += c.c1 * c.kv[i] * s1i;
    r += g_s2;
    r += a1;
    r += -1.0f * c.kv[i] * a1;
    r += g_abs;
    r -= c.gamma * c.p[i];
    const float ns = c.siv[i] * r;
    c.new_s1[i] = ns;
    const float zi = (fabs_(ns) + ns) * c.inv_gamma;
    best = fmax_(best, fabs_(zi - c.z[i]));
    c.z[i] = zi;
  }
  return best;
}

inline void dual_rhs_lane_f(const DualRhsCtxF& c, std::size_t i) {
  float sum = c.diag[i] * c.s2[i];
  if (i > 0) sum += c.lower[i - 1] * c.s2[i - 1];
  if (i + 1 < c.m) sum += c.upper[i] * c.s2[i + 1];
  float t = c.inv_theta * sum + fabs_(c.s2[i]) + c.gamma * c.b[i];
  float g_abs = 0.0f;
  float g_used = 0.0f;
  g_abs += c.b_v0[i] * fabs_(c.s1[c.b_c0[i]]);
  g_used += c.b_v0[i] * c.s1_used[c.b_c0[i]];
  g_abs += c.b_v1[i] * fabs_(c.s1[c.b_c1[i]]);
  g_used += c.b_v1[i] * c.s1_used[c.b_c1[i]];
  t += -1.0f * g_abs;
  t += -1.0f * g_used;
  c.rhs2[i] = t;
}

void dual_rhs_f(const DualRhsCtxF& c, std::size_t lo, std::size_t hi) {
  const __m512 zero = _mm512_setzero_ps();
  const __m512 vneg1 = _mm512_set1_ps(-1.0f);
  const __m512 vtheta = _mm512_set1_ps(c.inv_theta);
  const __m512 vgamma = _mm512_set1_ps(c.gamma);
  std::size_t i = lo;
  if (i == 0 && i < hi) {
    dual_rhs_lane_f(c, i);
    ++i;
  }
  const std::size_t vec_hi = hi == c.m ? (hi > 0 ? hi - 1 : 0) : hi;
  for (; i + 16 <= vec_hi; i += 16) {
    const __m512 s2 = _mm512_loadu_ps(c.s2 + i);
    __m512 sum = _mm512_mul_ps(_mm512_loadu_ps(c.diag + i), s2);
    sum = _mm512_add_ps(sum, _mm512_mul_ps(_mm512_loadu_ps(c.lower + i - 1),
                                           _mm512_loadu_ps(c.s2 + i - 1)));
    sum = _mm512_add_ps(sum, _mm512_mul_ps(_mm512_loadu_ps(c.upper + i),
                                           _mm512_loadu_ps(c.s2 + i + 1)));
    __m512 t = _mm512_add_ps(_mm512_mul_ps(vtheta, sum), vabsf(s2));
    t = _mm512_add_ps(t, _mm512_mul_ps(vgamma, _mm512_loadu_ps(c.b + i)));
    const __m512i i0 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(c.b_c0 + i));
    const __m512i i1 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(c.b_c1 + i));
    const __m512 u0 = _mm512_i32gather_ps(i0, c.s1, 4);
    const __m512 u1 = _mm512_i32gather_ps(i1, c.s1, 4);
    const __m512 w0 = _mm512_i32gather_ps(i0, c.s1_used, 4);
    const __m512 w1 = _mm512_i32gather_ps(i1, c.s1_used, 4);
    const __m512 v0 = _mm512_loadu_ps(c.b_v0 + i);
    const __m512 v1 = _mm512_loadu_ps(c.b_v1 + i);
    __m512 g_abs = _mm512_add_ps(zero, _mm512_mul_ps(v0, vabsf(u0)));
    g_abs = _mm512_add_ps(g_abs, _mm512_mul_ps(v1, vabsf(u1)));
    __m512 g_used = _mm512_add_ps(zero, _mm512_mul_ps(v0, w0));
    g_used = _mm512_add_ps(g_used, _mm512_mul_ps(v1, w1));
    t = _mm512_add_ps(t, _mm512_mul_ps(vneg1, g_abs));
    t = _mm512_add_ps(t, _mm512_mul_ps(vneg1, g_used));
    _mm512_storeu_ps(c.rhs2 + i, t);
  }
  for (; i < hi; ++i) dual_rhs_lane_f(c, i);
}

float dual_z_f(const DualZCtxF& c, std::size_t lo, std::size_t hi) {
  const __m512 vinvg = _mm512_set1_ps(c.inv_gamma);
  __m512 vbest = _mm512_setzero_ps();
  std::size_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    const __m512 ns = _mm512_loadu_ps(c.new_s2 + i);
    const __m512 zi = _mm512_mul_ps(_mm512_add_ps(vabsf(ns), ns), vinvg);
    const __m512 diff = vabsf(_mm512_sub_ps(zi, _mm512_loadu_ps(c.z + i)));
    _mm512_storeu_ps(c.z + i, zi);
    vbest = _mm512_max_ps(vbest, diff);
  }
  float best = _mm512_reduce_max_ps(vbest);
  for (; i < hi; ++i) {
    const float ns = c.new_s2[i];
    const float zi = (fabs_(ns) + ns) * c.inv_gamma;
    best = fmax_(best, fabs_(zi - c.z[i]));
    c.z[i] = zi;
  }
  return best;
}

}  // namespace

const MmsimSimdKernels kMmsimSimdAvx512 = {primal,   dual_rhs,   dual_z,
                                           primal_f, dual_rhs_f, dual_z_f};

}  // namespace mch::lcp::kernels

#endif  // MCH_SIMD_X86
