#include "linalg/block_diag.h"

#include <algorithm>

#include "runtime/parallel.h"
#include "util/check.h"

namespace mch::linalg {

namespace {
using runtime::kGrainElementwise;
using runtime::parallel_for;

/// Grain for the non-1×1 block sweeps: blocks are small dense systems, a
/// few hundred per chunk keeps dispatch cost negligible.
constexpr std::size_t kGrainBlocks = 256;
}  // namespace

std::size_t BlockDiagMatrix::add_block(const DenseMatrix& block) {
  MCH_CHECK(block.rows() == block.cols() && block.rows() > 0);
  DenseMatrix inv;
  MCH_CHECK_MSG(block.inverse(inv), "block is singular");
  offsets_.push_back(size_);
  blocks_.push_back(block);
  inverses_.push_back(std::move(inv));

  const bool scalar = block.rows() == 1;
  scalar_mask_.push_back(scalar);
  scalar_values_.resize(size_ + block.rows(), 0.0);
  scalar_inverses_.resize(size_ + block.rows(), 0.0);
  if (scalar) {
    scalar_values_[size_] = block(0, 0);
    scalar_inverses_[size_] = inverses_.back()(0, 0);
  } else {
    general_blocks_.push_back(offsets_.size() - 1);
  }

  size_ += block.rows();
  return offsets_.size() - 1;
}

std::size_t BlockDiagMatrix::append_block_to(BlockDiagMatrix& dst,
                                             std::size_t b) const {
  MCH_CHECK(b < blocks_.size());
  const DenseMatrix& block = blocks_[b];
  dst.offsets_.push_back(dst.size_);
  dst.blocks_.push_back(block);
  dst.inverses_.push_back(inverses_[b]);

  const bool scalar = block.rows() == 1;
  dst.scalar_mask_.push_back(scalar);
  dst.scalar_values_.resize(dst.size_ + block.rows(), 0.0);
  dst.scalar_inverses_.resize(dst.size_ + block.rows(), 0.0);
  if (scalar) {
    dst.scalar_values_[dst.size_] = block(0, 0);
    dst.scalar_inverses_[dst.size_] = inverses_[b](0, 0);
  } else {
    dst.general_blocks_.push_back(dst.offsets_.size() - 1);
  }

  dst.size_ += block.rows();
  return dst.offsets_.size() - 1;
}

std::size_t BlockDiagMatrix::block_of(std::size_t i) const {
  MCH_CHECK(i < size_);
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), i);
  return static_cast<std::size_t>(it - offsets_.begin()) - 1;
}

double BlockDiagMatrix::entry(std::size_t i, std::size_t j) const {
  const std::size_t b = block_of(i);
  if (block_of(j) != b) return 0.0;
  return blocks_[b](i - offsets_[b], j - offsets_[b]);
}

double BlockDiagMatrix::inverse_entry(std::size_t i, std::size_t j) const {
  const std::size_t b = block_of(i);
  if (block_of(j) != b) return 0.0;
  return inverses_[b](i - offsets_[b], j - offsets_[b]);
}

void BlockDiagMatrix::multiply(const Vector& x, Vector& y) const {
  y.assign(size_, 0.0);
  multiply_add(1.0, x, y);
}

void BlockDiagMatrix::multiply_add(double alpha, const Vector& x,
                                   Vector& y) const {
  MCH_CHECK(x.size() == size_ && y.size() == size_);
  // One flat sweep covers every scalar block (zeros elsewhere are benign);
  // a second sweep handles the multi-row blocks. Both are parallel: every
  // y element is owned by one index of one sweep (general blocks overwrite
  // only their own offsets, and the sweeps are separated by a barrier).
  parallel_for(std::size_t{0}, size_, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   y[i] += alpha * scalar_values_[i] * x[i];
               });
  parallel_for(std::size_t{0}, general_blocks_.size(), kGrainBlocks,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t g = lo; g < hi; ++g) {
                   const std::size_t b = general_blocks_[g];
                   const std::size_t off = offsets_[b];
                   const std::size_t n = blocks_[b].rows();
                   for (std::size_t r = 0; r < n; ++r) {
                     double sum = 0.0;
                     for (std::size_t c = 0; c < n; ++c)
                       sum += blocks_[b](r, c) * x[off + c];
                     y[off + r] += alpha * sum;
                   }
                 }
               });
}

void BlockDiagMatrix::solve(const Vector& x, Vector& y) const {
  MCH_CHECK(x.size() == size_);
  y.resize(size_);
  parallel_for(std::size_t{0}, size_, kGrainElementwise,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   y[i] = scalar_inverses_[i] * x[i];
               });
  parallel_for(std::size_t{0}, general_blocks_.size(), kGrainBlocks,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t g = lo; g < hi; ++g) {
                   const std::size_t b = general_blocks_[g];
                   const std::size_t off = offsets_[b];
                   const std::size_t n = blocks_[b].rows();
                   for (std::size_t r = 0; r < n; ++r) {
                     double sum = 0.0;
                     for (std::size_t c = 0; c < n; ++c)
                       sum += inverses_[b](r, c) * x[off + c];
                     y[off + r] = sum;
                   }
                 }
               });
}

void BlockDiagMatrix::solve_shifted(double alpha, double beta, const Vector& x,
                                    Vector& y) const {
  MCH_CHECK(x.size() == size_);
  y.assign(size_, 0.0);
  Vector rhs, sol;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const std::size_t off = offsets_[b];
    const std::size_t n = blocks_[b].rows();
    if (n == 1) {
      // Dominant fast path: single-height cells.
      y[off] = x[off] / (alpha * blocks_[b](0, 0) + beta);
      continue;
    }
    DenseMatrix shifted = blocks_[b];
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        shifted(r, c) = alpha * blocks_[b](r, c) + (r == c ? beta : 0.0);
    rhs.assign(x.begin() + static_cast<std::ptrdiff_t>(off),
               x.begin() + static_cast<std::ptrdiff_t>(off + n));
    MCH_CHECK_MSG(shifted.solve(rhs, sol), "shifted block singular");
    std::copy(sol.begin(), sol.end(),
              y.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

}  // namespace mch::linalg
