#include "util/timer.h"

namespace mch {

void Timer::reset() { start_ = std::chrono::steady_clock::now(); }

double Timer::seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

}  // namespace mch
