// Shared command-line plumbing for the thread-count knob.
//
// Every bench, example, and tool accepts the same flag:
//
//   --threads N      run on N threads (N >= 1)
//   --threads=N      same
//
// Precedence matches runtime/runtime.h: an explicit flag beats MCH_THREADS,
// which beats hardware concurrency. bench/bench_common.h forwards here so
// the whole harness parses the flag uniformly.
#pragma once

namespace mch::runtime {

/// Scans argv for --threads/-j, configures the global Runtime accordingly
/// (falling back to MCH_THREADS / hardware concurrency when absent), and
/// returns the resolved thread count. Unrelated arguments are ignored, so
/// binaries with their own positional arguments can call this first.
unsigned configure_threads_from_cli(int argc, char* const* argv);

/// Parses the flag without configuring anything; returns 0 when absent.
unsigned threads_from_cli(int argc, char* const* argv);

}  // namespace mch::runtime
