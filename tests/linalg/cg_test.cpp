#include "linalg/cg.h"

#include <gtest/gtest.h>

#include "linalg/dense_matrix.h"
#include "linalg/sparse.h"
#include "util/rng.h"

namespace mch::linalg {
namespace {

TEST(CgTest, DiagonalSystem) {
  const Vector diag = {2.0, 4.0, 8.0};
  const auto apply = [&](const Vector& x, Vector& y) {
    y.resize(3);
    for (int i = 0; i < 3; ++i) y[i] = diag[i] * x[i];
  };
  Vector x;
  const CgResult result = conjugate_gradient(apply, diag, {2, 4, 8}, x);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 1.0, 1e-8);
  EXPECT_NEAR(x[1], 1.0, 1e-8);
  EXPECT_NEAR(x[2], 1.0, 1e-8);
}

TEST(CgTest, ZeroRhsGivesZero) {
  const Vector diag = {1.0, 1.0};
  const auto apply = [&](const Vector& x, Vector& y) { y = x; };
  Vector x = {5.0, -3.0};
  const CgResult result = conjugate_gradient(apply, diag, {0, 0}, x);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(x, (Vector{0, 0}));
}

TEST(CgTest, RandomSpdSystems) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5 + static_cast<std::size_t>(rng.uniform_int(0, 30));
    DenseMatrix g(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1, 1);
    DenseMatrix a = g.multiply(g.transpose());
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;

    Vector diag(n);
    for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
    Vector b(n);
    for (double& v : b) v = rng.uniform(-3, 3);

    const auto apply = [&](const Vector& x, Vector& y) { a.multiply(x, y); };
    Vector x;
    CgOptions options;
    options.tolerance = 1e-10;
    const CgResult result = conjugate_gradient(apply, diag, b, x, options);
    ASSERT_TRUE(result.converged) << "trial " << trial;

    Vector back;
    a.multiply(x, back);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(back[i], b[i], 1e-6) << trial;
  }
}

TEST(CgTest, WarmStartReducesIterations) {
  Rng rng(6);
  const std::size_t n = 50;
  // Laplacian of a chain + I: well-conditioned SPD.
  CooMatrix coo(n, n);
  for (std::size_t i = 0; i < n; ++i) coo.add(i, i, 3.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    coo.add(i, i + 1, -1.0);
    coo.add(i + 1, i, -1.0);
  }
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  Vector diag(n, 3.0), b(n);
  for (double& v : b) v = rng.uniform(-1, 1);
  const auto apply = [&](const Vector& x, Vector& y) { a.multiply(x, y); };

  Vector cold;
  const CgResult cold_result = conjugate_gradient(apply, diag, b, cold);
  ASSERT_TRUE(cold_result.converged);

  Vector warm = cold;  // start at the solution
  const CgResult warm_result = conjugate_gradient(apply, diag, b, warm);
  EXPECT_TRUE(warm_result.converged);
  EXPECT_LE(warm_result.iterations, 1u);
}

TEST(CgTest, IterationCapRespected) {
  Rng rng(7);
  const std::size_t n = 64;
  DenseMatrix g(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.uniform(-1, 1);
  DenseMatrix a = g.multiply(g.transpose());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.01;  // ill-conditioned
  Vector diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  Vector b(n, 1.0), x;
  CgOptions options;
  options.max_iterations = 3;
  options.tolerance = 1e-14;
  const CgResult result = conjugate_gradient(
      [&](const Vector& v, Vector& y) { a.multiply(v, y); }, diag, b, x,
      options);
  EXPECT_LE(result.iterations, 3u);
}

}  // namespace
}  // namespace mch::linalg
