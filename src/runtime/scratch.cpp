#include "runtime/scratch.h"

#include <array>

#include "util/check.h"

namespace mch::runtime {

std::vector<double>& thread_scratch(std::size_t slot, std::size_t min_size) {
  thread_local std::array<std::vector<double>, kScratchSlots> buffers;
  MCH_DCHECK(slot < kScratchSlots);
  std::vector<double>& buffer = buffers[slot];
  if (buffer.size() < min_size) buffer.resize(min_size);
  return buffer;
}

}  // namespace mch::runtime
