// Preconditioned conjugate gradient for sparse SPD systems.
//
// Used by the quadratic global placer (the substrate that *produces* the
// paper's input): its systems are graph Laplacians plus positive anchor
// diagonals — SPD, well-conditioned after Jacobi scaling.
#pragma once

#include <cstddef>
#include <functional>

#include "linalg/vector_ops.h"

namespace mch::linalg {

struct CgOptions {
  double tolerance = 1e-8;  ///< stop at ‖r‖₂ ≤ tolerance·‖b‖₂
  std::size_t max_iterations = 1000;
};

struct CgResult {
  std::size_t iterations = 0;
  bool converged = false;
  double residual_norm = 0.0;
};

/// Solves A x = b for SPD operator `apply` (y = A x) with Jacobi
/// preconditioning by `diagonal` (the diagonal of A; entries must be > 0).
/// `x` is used as the starting guess and receives the solution.
CgResult conjugate_gradient(
    const std::function<void(const Vector&, Vector&)>& apply,
    const Vector& diagonal, const Vector& b, Vector& x,
    const CgOptions& options = {});

}  // namespace mch::linalg
