#include "db/columns.h"

namespace mch::db {

CellColumns CellColumns::from(const Design& design) {
  const std::vector<Cell>& cells = design.cells();
  CellColumns cols;
  const std::size_t n = cells.size();
  cols.gp_x.resize(n);
  cols.gp_y.resize(n);
  cols.width.resize(n);
  cols.x.resize(n);
  cols.y.resize(n);
  cols.height_rows.resize(n);
  cols.flags.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Cell& c = cells[i];
    cols.gp_x[i] = c.gp_x;
    cols.gp_y[i] = c.gp_y;
    cols.width[i] = c.width;
    cols.x[i] = c.x;
    cols.y[i] = c.y;
    cols.height_rows[i] = c.height_rows;
    cols.flags[i] = static_cast<std::uint8_t>((c.fixed ? kFixed : 0) |
                                              (c.erased ? kErased : 0));
  }
  return cols;
}

}  // namespace mch::db
